package steghide_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"steghide"
)

// runMetricsOracle is the pipeline oracle workload with the metrics
// registry as the toggled variable: a journaled Construction-2 stack
// on a traced in-memory device, a fixed interleaving of real writes
// and dummy bursts, and every observable collected — trace, final
// image, scheduler counters, spatial-uniformity and Definition-1
// verdicts. When reg is non-nil the full observability plane is live
// (scheduler histograms, journal gauges, seal/async series).
func runMetricsOracle(t *testing.T, reg *steghide.Metrics) pipelineRun {
	t.Helper()
	tap := &steghide.Collector{}
	mem := steghide.NewMemDevice(512, 4096)
	opts := []steghide.Option{
		steghide.WithFormat(steghide.FormatOptions{FillSeed: []byte("obs-oracle-fill")}),
		steghide.WithConstruction2(),
		steghide.WithSeed([]byte("obs-oracle-agent")),
		steghide.WithTrace(tap),
		steghide.WithJournal("obs-oracle-journal"),
		steghide.WithPipeline(4),
	}
	if reg != nil {
		opts = append(opts, steghide.WithMetrics(reg), steghide.WithVolumeName("obsvault"))
	}
	stack, err := steghide.Mount(mem, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fs, err := stack.Login("carol", "obs-oracle-pass")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateDummy(ctx, "/obs-cover", 96); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(ctx, "/obs-hidden-doc"); err != nil {
		t.Fatal(err)
	}
	agent := stack.Agent2()
	ua := steghide.NewUpdateAnalyzer(512, 4096)
	if err := ua.Observe(mem.Snapshot()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, err := agent.DummyUpdateBurst(40); err != nil {
			t.Fatal(err)
		}
	}
	if err := ua.Observe(mem.Snapshot()); err != nil {
		t.Fatal(err)
	}
	idle := ua.ChangedBlocks()

	payload := bytes.Repeat([]byte("metrics oracle "), 20)
	w, err := fs.OpenWrite(ctx, "/obs-hidden-doc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.WriteAt(payload, int64(i*len(payload))); err != nil {
			t.Fatal(err)
		}
		if _, err := agent.DummyUpdateBurst(40); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ua.Observe(mem.Snapshot()); err != nil {
		t.Fatal(err)
	}
	active := ua.ChangedBlocks()

	uniform, err := ua.SpatialUniformity(16)
	if err != nil {
		t.Fatal(err)
	}
	def1, err := steghide.CompareStreams(idle, active, mem.NumBlocks(), 16)
	if err != nil {
		t.Fatal(err)
	}
	stats := agent.Stats()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}
	return pipelineRun{
		events:  tap.Events(),
		image:   mem.Snapshot(),
		stats:   stats,
		uniform: uniform,
		def1:    def1,
	}
}

// TestMetricsObservableInvariance is the leakage oracle of the
// observability plane: attaching the full metrics registry must not
// move a single bit an attacker can see. The device trace, final
// volume image, scheduler counters, and both §3.2 verdicts have to
// be identical with the registry on and off — instrumentation that
// changed the observable stream would itself be a covert channel.
func TestMetricsObservableInvariance(t *testing.T) {
	off := runMetricsOracle(t, nil)
	reg := steghide.NewMetrics()
	on := runMetricsOracle(t, reg)

	if len(off.events) != len(on.events) {
		t.Fatalf("trace length moved: %d off vs %d on", len(off.events), len(on.events))
	}
	for i := range off.events {
		oe, ne := off.events[i], on.events[i]
		if oe.Op != ne.Op || oe.Block != ne.Block || oe.Count != ne.Count {
			t.Fatalf("tap diverged at op %d: off %+v on %+v", i, oe, ne)
		}
	}
	if !bytes.Equal(off.image, on.image) {
		t.Fatal("final volume images differ between metrics-off and metrics-on runs")
	}
	if off.stats != on.stats {
		t.Fatalf("scheduler counters moved: off %+v on %+v", off.stats, on.stats)
	}
	if off.uniform != on.uniform || off.def1 != on.def1 {
		t.Fatalf("attacker verdicts moved:\noff %+v / %+v\non  %+v / %+v",
			off.uniform, off.def1, on.uniform, on.def1)
	}
	if off.def1.Detected {
		t.Fatalf("Definition-1 attacker separated idle from active on the baseline: %+v", off.def1)
	}

	// The exposition itself is an operator-facing surface: it must
	// carry the series the run populated and none of the hidden-volume
	// material — pathnames, passphrases, usernames, journal secrets.
	var prom, vars strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&vars); err != nil {
		t.Fatal(err)
	}
	for surface, text := range map[string]string{"prometheus": prom.String(), "json": vars.String()} {
		for _, want := range []string{
			"steghide_sched_data_updates_total",
			"steghide_sched_dummy_updates_total",
			"steghide_seal_batches_total",
			"steghide_journal_ring_slots",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("%s exposition missing %s", surface, want)
			}
		}
		for _, secret := range []string{
			"obs-hidden-doc", "obs-cover", // pathnames (dummy and hidden alike)
			"obs-oracle-pass",    // passphrase
			"obs-oracle-journal", // journal passphrase
			"carol",              // local-login identity (not wire-visible here)
		} {
			if strings.Contains(text, secret) {
				t.Errorf("%s exposition leaks %q", surface, secret)
			}
		}
	}
}
