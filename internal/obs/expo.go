package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per family,
// then every series of that family, in registration order. Histogram
// buckets are cumulative with le-inclusive bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.snapshotMetrics()
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for _, m := range snap {
		if !seen[m.family] {
			seen[m.family] = true
			if m.help != "" {
				bw.WriteString("# HELP " + m.family + " " + m.help + "\n")
			}
			bw.WriteString("# TYPE " + m.family + " " + m.kind.String() + "\n")
		}
		switch m.kind {
		case kindCounter:
			bw.WriteString(m.family + m.labels + " " + fmtFloat(float64(m.counter.Load())) + "\n")
		case kindGauge:
			bw.WriteString(m.family + m.labels + " " + fmtFloat(float64(m.gauge.Load())) + "\n")
		case kindGaugeFunc:
			bw.WriteString(m.family + m.labels + " " + fmtFloat(m.gaugeFn()) + "\n")
		case kindHistogram:
			h := m.hist.snapshot()
			var cum uint64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				bw.WriteString(m.family + "_bucket" + withLabel(m.labels, "le", fmtFloat(bound)) +
					" " + fmtFloat(float64(cum)) + "\n")
			}
			cum += h.Counts[len(h.Counts)-1]
			bw.WriteString(m.family + "_bucket" + withLabel(m.labels, "le", "+Inf") +
				" " + fmtFloat(float64(cum)) + "\n")
			bw.WriteString(m.family + "_sum" + m.labels + " " + fmtFloat(h.Sum) + "\n")
			bw.WriteString(m.family + "_count" + m.labels + " " + fmtFloat(float64(h.Count)) + "\n")
		}
	}
	return bw.Flush()
}

// withLabel splices one extra label pair into an already-rendered
// label fragment.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WriteJSON renders the registry as a single JSON object in the
// expvar style: scalar series map to numbers, histograms to
// {buckets, counts, sum, count} objects. Series keys include the
// label fragment, so two labeled series stay distinct.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	for _, v := range r.Snapshot() {
		key := v.Name + v.Labels
		if v.Hist != nil {
			out[key] = map[string]any{
				"buckets": v.Hist.Bounds,
				"counts":  v.Hist.Counts,
				"sum":     v.Hist.Sum,
				"count":   v.Hist.Count,
			}
			continue
		}
		out[key] = v.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// snapshotMetrics copies the registration table under the read lock
// so exposition iterates without holding it.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}
