package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"steghide/internal/race"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steghide_test_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Get-or-create returns the same series.
	if again := r.Counter("steghide_test_total", "test counter"); again != c {
		t.Fatal("Counter did not return the existing series")
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset counter = %d, want 0", got)
	}

	g := r.Gauge("steghide_test_gauge", "test gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegisterCounterRebinds(t *testing.T) {
	r := NewRegistry()
	var own Counter
	own.Add(5)
	r.RegisterCounter("steghide_owned_total", "externally owned", &own)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 5 {
		t.Fatalf("snapshot = %+v, want one series at 5", snap)
	}
	// A restarted component re-registers a fresh counter; last wins.
	var own2 Counter
	own2.Add(9)
	r.RegisterCounter("steghide_owned_total", "externally owned", &own2)
	snap = r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 9 {
		t.Fatalf("after rebind snapshot = %+v, want one series at 9", snap)
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("steghide_fn_gauge", "sampled", func() float64 { return v })
	if got := r.Snapshot()[0].Value; got != 1 {
		t.Fatalf("gauge fn = %v, want 1", got)
	}
	v = 2
	if got := r.Snapshot()[0].Value; got != 2 {
		t.Fatalf("gauge fn = %v, want 2 after change", got)
	}
	// Rebind wins.
	r.GaugeFunc("steghide_fn_gauge", "sampled", func() float64 { return 7 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 7 {
		t.Fatalf("after rebind snapshot = %+v, want one series at 7", snap)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive Prometheus
// convention: a value exactly on a bucket's upper bound counts in
// that bucket, the next greater value spills to the next bucket, and
// values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{
		0.5, // < first bound → bucket 0
		1,   // exactly on first bound → bucket 0 (le-inclusive)
		1.0000001,
		2, // exactly on second bound → bucket 1
		5, // exactly on last bound → bucket 2
		6, // above all bounds → +Inf bucket
	} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+5+6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestLabelsRenderAndEscape(t *testing.T) {
	r := NewRegistry()
	r.Counter("steghide_l_total", "labeled", "volume", "vault").Add(3)
	r.Counter("steghide_l_total", "labeled", "volume", `we"ird\n`).Add(4)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`steghide_l_total{volume="vault"} 3`,
		`steghide_l_total{volume="we\"ird\\n"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE pair per family, not per series.
	if got := strings.Count(out, "# TYPE steghide_l_total"); got != 1 {
		t.Fatalf("TYPE lines for family = %d, want 1\n%s", got, out)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("steghide_c_total", "a counter").Add(7)
	r.Gauge("steghide_g", "a gauge").Set(-2)
	h := r.Histogram("steghide_h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP steghide_c_total a counter",
		"# TYPE steghide_c_total counter",
		"steghide_c_total 7",
		"# TYPE steghide_g gauge",
		"steghide_g -2",
		"# TYPE steghide_h_seconds histogram",
		`steghide_h_seconds_bucket{le="0.1"} 1`,
		`steghide_h_seconds_bucket{le="1"} 2`,
		`steghide_h_seconds_bucket{le="+Inf"} 3`,
		"steghide_h_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("steghide_c_total", "a counter").Add(7)
	r.Histogram("steghide_h", "a histogram", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if got := m["steghide_c_total"]; got != 7.0 {
		t.Fatalf("json counter = %v, want 7", got)
	}
	if _, ok := m["steghide_h"].(map[string]any); !ok {
		t.Fatalf("json histogram = %T, want object", m["steghide_h"])
	}
}

// TestRegistryContention is the -race stress: concurrent writers on
// every metric type racing with snapshot and exposition readers and
// with get-or-create registration. Correctness assertion: counts add
// up afterwards; the race detector does the rest.
func TestRegistryContention(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steghide_stress_total", "stress")
	g := r.Gauge("steghide_stress_gauge", "stress")
	h := r.Histogram("steghide_stress_seconds", "stress", LatencyBuckets)
	r.GaugeFunc("steghide_stress_fn", "stress", func() float64 { return float64(c.Load()) })

	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-5)
				// Concurrent get-or-create on shared and per-writer keys.
				r.Counter("steghide_stress_total", "stress").Load()
				r.Counter("steghide_stress_w_total", "stress",
					"w", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			r.Snapshot()
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			buf.Reset()
			_ = r.WriteJSON(&buf)
		}
	}()
	wg.Wait()
	<-readerDone

	if got := c.Load(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
	var total uint64
	for _, v := range r.Snapshot() {
		if v.Name == "steghide_stress_w_total" {
			total += uint64(v.Value)
		}
	}
	if total != writers*perG {
		t.Fatalf("per-writer counters sum = %d, want %d", total, writers*perG)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-6)
			i++
		}
	})
}

// TestAllocBudgets pins the labeled get-or-create hit path at zero
// heap allocations: the key is built on the stack, the map index does
// not copy it, and the label pairs never escape. Regressions here put
// per-observation garbage back into every instrumented hot loop.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (instrumentation defeats escape analysis)")
	}
	r := NewRegistry()
	r.Counter("steghide_alloc_total", "h", "volume", "v0")
	r.Histogram("steghide_alloc_seconds", "h", LatencyBuckets, "volume", "v0")
	if n := testing.AllocsPerRun(200, func() {
		r.Counter("steghide_alloc_total", "h", "volume", "v0").Inc()
	}); n > 0 {
		t.Errorf("labeled Counter hit path: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.Histogram("steghide_alloc_seconds", "h", LatencyBuckets, "volume", "v0").Observe(1e-4)
	}); n > 0 {
		t.Errorf("labeled Histogram hit path: %.1f allocs/op, want 0", n)
	}
}

func BenchmarkLabeledCounterHit(b *testing.B) {
	r := NewRegistry()
	r.Counter("steghide_bench_total", "h", "volume", "v0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("steghide_bench_total", "h", "volume", "v0").Inc()
	}
}
