// Package obs is the leakage-audited observability plane: a
// zero-dependency metrics registry (atomic counters, gauges,
// fixed-bucket histograms) with a snapshot API and Prometheus-text /
// expvar-JSON exposition.
//
// The steg-specific constraint that shapes this package: a metrics
// endpoint is an operator-facing side channel, and the paper's §3
// attacker is allowed to read it. Every metric exported through a
// Registry must therefore disclose nothing an attacker watching the
// raw device or the wire could not already compute — counts and
// latencies of the *observable* stream (whose distribution is uniform
// by construction, Definition 1) are fine; anything keyed by hidden
// pathnames, locator secrets, or the real-vs-dummy classification of
// individual updates is forbidden. DESIGN.md ("Observability plane")
// carries the per-metric leakage argument, and the facade's
// invariance oracle pins that attaching a registry moves no
// observable byte.
//
// Concurrency: all metric write paths are single atomic operations
// (counters, gauges) or a bounded CAS loop (histogram sum), safe for
// any number of writers; snapshots and exposition take a read lock on
// the registration table only, never on the hot counters, so a
// scrape cannot stall the update path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a Counter may live inside another struct (the
// scheduler embeds its stream counters directly) and be registered
// into a Registry later — one source of truth for both the Go-level
// stats snapshot and the exposition surface.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter (ResetStats semantics; exposition scrapers
// see the reset like any process restart).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative buckets with inclusive upper bounds, plus a sum and a
// count. Buckets are fixed at construction; Observe is lock-free (one
// atomic add per observation plus a CAS loop for the float sum).
type Histogram struct {
	bounds []float64       // sorted inclusive upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given upper bounds (must
// be sorted ascending and non-empty; a trailing +Inf is implicit).
// Prefer Registry.Histogram, which also registers it.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted and distinct")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v: the first bucket whose upper bound is >= v
// counts it (Prometheus "le" semantics — a value exactly on a
// boundary lands in that boundary's bucket).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns how many observations the histogram has absorbed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistSnapshot is one histogram's state at a moment: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf bucket
// at the end of Counts.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

func (h *Histogram) snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// kind tags a registered metric.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered series.
type metric struct {
	family  string // metric family name (HELP/TYPE anchor)
	labels  string // rendered `{k="v",...}` fragment, or ""
	help    string
	kind    kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

func (m *metric) key() string { return m.family + m.labels }

// Registry holds a set of metrics and renders them. The zero value is
// not usable; call NewRegistry. Registration is get-or-create keyed
// by (family, labels): enabling metrics twice for the same component
// returns the same series instead of erroring, so restartable
// components (daemons, servers in tests) re-bind cleanly.
type Registry struct {
	mu    sync.RWMutex
	order []*metric
	index map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}}
}

// Labels renders variadic k1, v1, k2, v2, ... pairs into a label
// fragment. Label values are escaped; an odd trailing key is dropped.
func renderLabels(pairs []string) string {
	return string(appendLabels(nil, pairs))
}

// appendLabels appends the rendered `{k="v",...}` fragment to dst.
// Byte-compatible with renderLabels so fragments built on a stack
// buffer key the same index entries as the stored strings.
func appendLabels(dst []byte, pairs []string) []byte {
	if len(pairs) < 2 {
		return dst
	}
	dst = append(dst, '{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, pairs[i]...)
		dst = append(dst, '=', '"')
		dst = appendEscaped(dst, pairs[i+1])
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// appendEscaped appends v with Prometheus label-value escaping
// (backslash, double quote, newline). A manual loop instead of
// strings.NewReplacer: the replacer allocated its state machine on
// every call, which made each labeled get-or-create cost ~10 heap
// objects even on the hit path.
func appendEscaped(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func escapeLabel(v string) string {
	return string(appendEscaped(nil, v))
}

// lookup is the alloc-free hit path of get-or-create: it builds the
// (family, labels) key in a stack buffer and indexes the table under a
// read lock — string(key) in the map expression does not copy, and the
// label pairs never escape, so a hit costs zero heap allocations. A
// miss (or kind mismatch) returns nil and the caller takes the slow
// write-locked path.
func (r *Registry) lookup(family string, pairs []string, k kind) *metric {
	var stack [128]byte
	key := append(stack[:0], family...)
	key = appendLabels(key, pairs)
	r.mu.RLock()
	m := r.index[string(key)]
	r.mu.RUnlock()
	if m != nil && m.kind == k {
		return m
	}
	return nil
}

// get returns the series under (family, labels) if registered, with
// kind checked, or nil.
func (r *Registry) get(family, labels string, k kind) *metric {
	if m, ok := r.index[family+labels]; ok && m.kind == k {
		return m
	}
	return nil
}

func (r *Registry) add(m *metric) {
	r.index[m.key()] = m
	r.order = append(r.order, m)
}

// Counter returns the counter registered under name (+labels),
// creating it on first use. labels are k, v pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if m := r.lookup(name, labels, kindCounter); m != nil {
		return m.counter
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.get(name, ls, kindCounter); m != nil {
		return m.counter
	}
	c := &Counter{}
	r.add(&metric{family: name, labels: ls, help: help, kind: kindCounter, counter: c})
	return c
}

// RegisterCounter registers an externally owned counter — how a
// component whose counters predate the registry (the scheduler's
// stream counters) exports them without a second copy. Re-registering
// the same key rebinds the series to c (a restarted component wins).
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...string) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.get(name, ls, kindCounter); m != nil {
		m.counter = c
		return
	}
	r.add(&metric{family: name, labels: ls, help: help, kind: kindCounter, counter: c})
}

// Gauge returns the gauge registered under name (+labels), creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if m := r.lookup(name, labels, kindGauge); m != nil {
		return m.gauge
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.get(name, ls, kindGauge); m != nil {
		return m.gauge
	}
	g := &Gauge{}
	r.add(&metric{family: name, labels: ls, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled at scrape time. fn must be safe
// to call from any goroutine; it runs only during Snapshot/exposition,
// so it may take locks the hot path also takes. Re-registering the
// same key rebinds to fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.get(name, ls, kindGaugeFunc); m != nil {
		m.gaugeFn = fn
		return
	}
	r.add(&metric{family: name, labels: ls, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram returns the histogram registered under name (+labels),
// creating it with the given bounds on first use (bounds are ignored
// when the series already exists).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if m := r.lookup(name, labels, kindHistogram); m != nil {
		return m.hist
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.get(name, ls, kindHistogram); m != nil {
		return m.hist
	}
	h := NewHistogram(bounds)
	r.add(&metric{family: name, labels: ls, help: help, kind: kindHistogram, hist: h})
	return h
}

// Value is one series' state in a Snapshot.
type Value struct {
	// Name is the metric family; Labels the rendered fragment ("" when
	// unlabeled); Kind one of "counter", "gauge", "histogram".
	Name   string
	Labels string
	Kind   string
	// Value carries counter and gauge readings (histograms use Hist).
	Value float64
	// Hist is set for histograms.
	Hist *HistSnapshot
}

// Snapshot reads every registered series at one moment (per-series
// atomic reads; no cross-series barrier — the registry never stops
// the world). Order is registration order.
func (r *Registry) Snapshot() []Value {
	r.mu.RLock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.RUnlock()
	out := make([]Value, 0, len(metrics))
	for _, m := range metrics {
		v := Value{Name: m.family, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			v.Value = float64(m.counter.Load())
		case kindGauge:
			v.Value = float64(m.gauge.Load())
		case kindGaugeFunc:
			v.Value = m.gaugeFn()
		case kindHistogram:
			v.Hist = m.hist.snapshot()
		}
		out = append(out, v)
	}
	return out
}

// LatencyBuckets are the default bounds for operation-latency
// histograms, in seconds: 1µs to 5s in a 1-5 ladder wide enough for
// in-memory devices and remote volumes alike.
var LatencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// IterationBuckets are the default bounds for iterations-per-update
// histograms: the Figure-6 loop's draw count is geometrically
// distributed, so a doubling ladder covers it.
var IterationBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// fmtFloat renders a value the way Prometheus text exposition wants.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
