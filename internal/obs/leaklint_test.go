package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// forbiddenIdent matches identifier fragments that name hidden-volume
// material: pathnames, locator/access keys, passphrases, real-vs-dummy
// classification. None of these may flow into a log call or a metric
// label — the observability plane's privacy contract (DESIGN.md,
// "Observability plane").
var forbiddenIdent = regexp.MustCompile(`(?i)(passphrase|passwd|password|locator|secret|fak\b|hiddenpath|pathname|isreal|isdummy)`)

// logFuncs are call targets whose arguments become operator-visible
// log output or metric label values.
var logFuncs = map[string]bool{
	"Info": true, "Warn": true, "Error": true, "Debug": true,
	"logEvent": true,
	// obs.Registry label-bearing constructors: variadic tail is
	// "key", value, ... label pairs.
	"Counter": true, "Gauge": true, "Histogram": true,
	"GaugeFunc": true, "RegisterCounter": true,
}

// TestNoSecretFlowsIntoLogsOrLabels walks every non-test Go file in
// the module and inspects each call site that feeds the operator
// surface (slog methods, logEvent, registry label arguments). Any
// argument expression mentioning an identifier that names secret
// material fails the build. This is a static complement to the
// dynamic invariance oracle: the oracle proves one workload leaks
// nothing, this proves no call site CAN route the usual suspects out.
func TestNoSecretFlowsIntoLogsOrLabels(t *testing.T) {
	root := "../.." // module root from internal/obs
	fset := token.NewFileSet()
	var checked int
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == "related" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		checked++
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !logFuncs[name] {
				return true
			}
			// err.Error() and friends: no arguments, nothing flows.
			for _, arg := range call.Args {
				for _, ident := range identsIn(arg) {
					if forbiddenIdent.MatchString(ident) {
						pos := fset.Position(call.Pos())
						t.Errorf("%s: %s(...) argument mentions forbidden identifier %q — secret material must not reach logs or metric labels",
							pos, name, ident)
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 20 {
		t.Fatalf("walked only %d Go files — lint is not seeing the module", checked)
	}
}

// calleeName extracts the called function's final name.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// identsIn collects every identifier, selector field and string
// literal inside an argument expression.
func identsIn(expr ast.Expr) []string {
	var out []string
	ast.Inspect(expr, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			out = append(out, v.Name)
		case *ast.BasicLit:
			if v.Kind == token.STRING {
				out = append(out, v.Value)
			}
		}
		return true
	})
	return out
}
