package oblivious

import (
	"fmt"

	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// FS composes the oblivious store with a StegFS partition into the
// full system of §5.1: reads are served from the oblivious cache;
// blocks not yet cached are fetched from the StegFS partition with
// the randomized read_stegfs algorithm of Fig. 8(a); writes go to the
// StegFS partition (through whatever update policy the agent uses)
// and are repeated into the cache.
//
// Like the Store, FS is single-threaded by design: the agent owns it.
type FS struct {
	store *Store
	vol   *stegfs.Volume
	rng   *prng.PRNG

	files map[uint64]*stegfs.File
	// nextOrd backs NextOrdinal, so compositions layered on top can
	// allocate collision-free registration ordinals.
	nextOrd uint64

	// fetched is S in Fig. 8(a): blocks already copied into the
	// oblivious store. The list gives O(1) random sampling for decoy
	// reads.
	fetched     map[BlockID]bool
	fetchedList []BlockID

	// Reusable scratch (the FS is single-threaded, like the Store):
	// padBuf widens payloads to the cache value size, readBuf absorbs
	// decoy and dummy block reads whose contents are discarded.
	padBuf  []byte
	readBuf []byte

	stats FSStats
}

// FSStats counts the observable work of the StegFS-partition side.
type FSStats struct {
	Fetches    uint64 // real copies steg-store → obli-store
	Decoys     uint64 // re-reads of already-cached blocks (camouflage)
	DummyReads uint64 // idle dummy reads on the StegFS partition
}

// NewFS wires a store to a StegFS partition. The store's value size
// must fit a full StegFS block payload.
func NewFS(store *Store, vol *stegfs.Volume, rng *prng.PRNG) (*FS, error) {
	if store.ValueSize() < vol.PayloadSize() {
		return nil, fmt.Errorf("oblivious: store values (%d bytes) cannot hold StegFS payloads (%d bytes); use a larger cache block size",
			store.ValueSize(), vol.PayloadSize())
	}
	return &FS{
		store:   store,
		vol:     vol,
		rng:     rng.Child("obli-fs"),
		files:   map[uint64]*stegfs.File{},
		fetched: map[BlockID]bool{},
		padBuf:  make([]byte, store.ValueSize()),
		readBuf: make([]byte, vol.BlockSize()),
	}, nil
}

// Store exposes the underlying oblivious store.
func (o *FS) Store() *Store { return o.store }

// Stats returns the StegFS-partition counters.
func (o *FS) Stats() FSStats { return o.stats }

// ResetStats zeroes the FS counters.
func (o *FS) ResetStats() { o.stats = FSStats{} }

// Register makes a hidden file readable through the cache under the
// given agent-chosen ordinal. Explicit ordinals advance the
// NextOrdinal sequence past themselves, so manual registration and
// NextOrdinal-based compositions can share one cache without
// colliding.
func (o *FS) Register(ordinal uint64, f *stegfs.File) error {
	if _, dup := o.files[ordinal]; dup {
		return fmt.Errorf("oblivious: ordinal %d already registered", ordinal)
	}
	o.files[ordinal] = f
	if ordinal > o.nextOrd {
		o.nextOrd = ordinal
	}
	return nil
}

// NextOrdinal returns a fresh registration ordinal, never reused for
// the lifetime of this FS (single-threaded, like every FS method).
func (o *FS) NextOrdinal() uint64 {
	o.nextOrd++
	return o.nextOrd
}

// Unregister forgets a registered file. Cached entries under the
// ordinal become unreachable (ordinals are never reused by callers
// that allocate them monotonically); decoy reads that still sample
// the old entries fall back to uniformly random steg blocks.
func (o *FS) Unregister(ordinal uint64) {
	delete(o.files, ordinal)
}

func (o *FS) file(ordinal uint64) (*stegfs.File, error) {
	f, ok := o.files[ordinal]
	if !ok {
		return nil, fmt.Errorf("oblivious: no file registered under ordinal %d", ordinal)
	}
	return f, nil
}

// pad widens a StegFS payload to the cache's value size. The returned
// slice is shared scratch, valid until the next pad call — both
// callers hand it straight to store.Put, which copies.
func (o *FS) pad(payload []byte) []byte {
	n := copy(o.padBuf, payload)
	clear(o.padBuf[n:]) // fresh-make semantics: the tail is zero
	return o.padBuf
}

// ReadBlock obliviously reads logical block li of the registered file.
// Cache hits touch one slot per cache level; misses run the
// read_stegfs fetch — a geometrically distributed number of reads on
// the StegFS partition, of which all but the last are decoy re-reads
// of already-cached blocks — and then insert the block into the cache.
func (o *FS) ReadBlock(ordinal, li uint64) ([]byte, error) {
	id := BlockID{File: ordinal, Index: li}
	if v, ok, err := o.store.Get(id); err != nil {
		return nil, err
	} else if ok {
		return v[:o.vol.PayloadSize()], nil
	}

	f, err := o.file(ordinal)
	if err != nil {
		return nil, err
	}
	// Fig. 8(a): with probability |S|/M per draw, read a random
	// already-fetched block from the steg partition and redraw.
	m := o.vol.NumBlocks() - o.vol.FirstDataBlock()
	for {
		x := o.rng.Uint64n(m)
		if x < uint64(len(o.fetchedList)) {
			if err := o.decoyRead(); err != nil {
				return nil, err
			}
			continue
		}
		payload, err := f.ReadBlockAt(li)
		if err != nil {
			return nil, err
		}
		o.stats.Fetches++
		if !o.fetched[id] {
			o.fetched[id] = true
			o.fetchedList = append(o.fetchedList, id)
		}
		if err := o.store.Put(id, o.pad(payload)); err != nil {
			return nil, err
		}
		return payload, nil
	}
}

// decoyRead re-reads one random already-cached block from the StegFS
// partition, following the block through any relocations via the
// owning file's map. If the block no longer exists (file shrank), a
// uniformly random steg block is read instead.
func (o *FS) decoyRead() error {
	o.stats.Decoys++
	id := o.fetchedList[o.rng.Intn(len(o.fetchedList))]
	buf := o.readBuf
	if f, ok := o.files[id.File]; ok {
		if loc, err := f.BlockLoc(id.Index); err == nil {
			return o.vol.Device().ReadBlock(loc, buf)
		}
	}
	first := o.vol.FirstDataBlock()
	loc := first + o.rng.Uint64n(o.vol.NumBlocks()-first)
	return o.vol.Device().ReadBlock(loc, buf)
}

// DummyRead is the idle-time camouflage on the StegFS partition
// (Fig. 8(a), else-branch): one uniformly random block read.
func (o *FS) DummyRead() error {
	o.stats.DummyReads++
	first := o.vol.FirstDataBlock()
	loc := first + o.rng.Uint64n(o.vol.NumBlocks()-first)
	return o.vol.Device().ReadBlock(loc, o.readBuf)
}

// WriteBlock updates logical block li of the registered file: the
// write lands on the StegFS partition through the agent's update
// policy (relocation et al.) and is repeated into the cache so
// subsequent oblivious reads see it (§5.1.2).
func (o *FS) WriteBlock(ordinal, li uint64, payload []byte, policy stegfs.UpdatePolicy) error {
	f, err := o.file(ordinal)
	if err != nil {
		return err
	}
	if len(payload) != o.vol.PayloadSize() {
		return fmt.Errorf("%w: %d != %d", ErrValueSize, len(payload), o.vol.PayloadSize())
	}
	if err := f.WriteBlockAt(li, payload, policy); err != nil {
		return err
	}
	id := BlockID{File: ordinal, Index: li}
	return o.store.Put(id, o.pad(payload))
}

// ReadAt obliviously reads len(p) bytes at byte offset off.
func (o *FS) ReadAt(ordinal uint64, p []byte, off uint64) (int, error) {
	f, err := o.file(ordinal)
	if err != nil {
		return 0, err
	}
	if off >= f.Size() {
		return 0, nil
	}
	if off+uint64(len(p)) > f.Size() {
		p = p[:f.Size()-off]
	}
	ps := uint64(o.vol.PayloadSize())
	read := 0
	for read < len(p) {
		li := (off + uint64(read)) / ps
		bo := (off + uint64(read)) % ps
		payload, err := o.ReadBlock(ordinal, li)
		if err != nil {
			return read, err
		}
		read += copy(p[read:], payload[bo:])
	}
	return read, nil
}
