package oblivious

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// newFS builds a StegFS volume plus an oblivious cache big enough for
// it. The cache device uses a larger block size so a full StegFS
// payload fits a slot.
func newFS(t *testing.T) (*FS, *stegfs.Volume, *stegfs.BitmapSource, *blockdev.Collector) {
	t.Helper()
	vol, err := stegfs.Format(blockdev.NewMem(128, 1024), stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("fs")})
	if err != nil {
		t.Fatal(err)
	}
	src := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(1))

	// Slot must fit payload(112) + meta(48) + IV(16) = 176 → 192.
	col := &blockdev.Collector{}
	const bufCap, levels = 8, 4
	cacheDev := blockdev.NewTraced(blockdev.NewMem(192, Footprint(bufCap, levels)), col)
	store, err := New(Config{
		Dev:          cacheDev,
		Key:          sealer.DeriveKey([]byte("session"), "cache"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFS(store, vol, prng.NewFromUint64(3))
	if err != nil {
		t.Fatal(err)
	}
	return fs, vol, src, col
}

func TestNewFSRejectsSmallSlots(t *testing.T) {
	vol, err := stegfs.Format(blockdev.NewMem(128, 64), stegfs.FormatOptions{KDFIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	small, err := New(Config{
		Dev:          blockdev.NewMem(128, Footprint(4, 2)), // value 64 < payload 112
		Key:          sealer.DeriveKey([]byte("k"), "c"),
		BufferBlocks: 4,
		Levels:       2,
		RNG:          prng.NewFromUint64(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFS(small, vol, prng.NewFromUint64(1)); err == nil {
		t.Fatal("undersized slots accepted")
	}
}

func TestFSReadThroughCache(t *testing.T) {
	fs, vol, src, _ := newFS(t)
	fak := stegfs.DeriveFAK("p", "/data", vol)
	f, err := stegfs.CreateFile(vol, fak, "/data", src)
	if err != nil {
		t.Fatal(err)
	}
	content := prng.NewFromUint64(9).Bytes(10 * vol.PayloadSize())
	if _, err := f.WriteAt(content, 0, stegfs.InPlacePolicy{Vol: vol}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Register(1, f); err != nil {
		t.Fatal(err)
	}
	if err := fs.Register(1, f); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	// First pass: misses + fetches.
	got := make([]byte, len(content))
	if _, err := fs.ReadAt(1, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("first read mismatch")
	}
	st := fs.Stats()
	if st.Fetches != 10 {
		t.Fatalf("fetches %d, want 10", st.Fetches)
	}

	// Second pass: served by the cache, no new fetches.
	got2 := make([]byte, len(content))
	if _, err := fs.ReadAt(1, got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, content) {
		t.Fatal("cached read mismatch")
	}
	if fs.Stats().Fetches != 10 {
		t.Fatalf("re-read fetched again: %d", fs.Stats().Fetches)
	}
}

func TestFSEachStegBlockFetchedOnce(t *testing.T) {
	// Fig. 8(a): "read operations are conducted at most once for each
	// data block" — real fetches, not decoys, are at most one per
	// block even under repeated random reads.
	fs, vol, src, _ := newFS(t)
	fak := stegfs.DeriveFAK("p", "/w", vol)
	f, err := stegfs.CreateFile(vol, fak, "/w", src)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 12
	content := prng.NewFromUint64(4).Bytes(blocks * vol.PayloadSize())
	if _, err := f.WriteAt(content, 0, stegfs.InPlacePolicy{Vol: vol}); err != nil {
		t.Fatal(err)
	}
	fs.Register(1, f)
	rng := prng.NewFromUint64(5)
	for op := 0; op < 300; op++ {
		li := uint64(rng.Intn(blocks))
		payload, err := fs.ReadBlock(1, li)
		if err != nil {
			t.Fatal(err)
		}
		want := content[int(li)*vol.PayloadSize() : (int(li)+1)*vol.PayloadSize()]
		if !bytes.Equal(payload, want) {
			t.Fatalf("block %d mismatch at op %d", li, op)
		}
	}
	if got := fs.Stats().Fetches; got != blocks {
		t.Fatalf("%d fetches for %d blocks", got, blocks)
	}
}

func TestFSWriteThrough(t *testing.T) {
	fs, vol, src, _ := newFS(t)
	fak := stegfs.DeriveFAK("p", "/rw", vol)
	f, err := stegfs.CreateFile(vol, fak, "/rw", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := stegfs.InPlacePolicy{Vol: vol}
	content := prng.NewFromUint64(6).Bytes(6 * vol.PayloadSize())
	if _, err := f.WriteAt(content, 0, policy); err != nil {
		t.Fatal(err)
	}
	fs.Register(7, f)

	// Read everything through the cache, then update block 3 and
	// verify both the cache and the persistent copy see it.
	buf := make([]byte, len(content))
	fs.ReadAt(7, buf, 0)
	newPayload := prng.NewFromUint64(8).Bytes(vol.PayloadSize())
	if err := fs.WriteBlock(7, 3, newPayload, policy); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadBlock(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newPayload) {
		t.Fatal("cache did not see the write")
	}
	persisted, err := f.ReadBlockAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(persisted, newPayload) {
		t.Fatal("StegFS partition did not see the write")
	}
	if err := fs.WriteBlock(7, 0, []byte{1, 2}, policy); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := fs.ReadBlock(99, 0); err == nil {
		t.Fatal("unregistered ordinal accepted")
	}
}

func TestFSDummyReadsAndDecoysTouchStegPartition(t *testing.T) {
	fs, vol, src, _ := newFS(t)
	fak := stegfs.DeriveFAK("p", "/d", vol)
	f, _ := stegfs.CreateFile(vol, fak, "/d", src)
	content := prng.NewFromUint64(10).Bytes(8 * vol.PayloadSize())
	f.WriteAt(content, 0, stegfs.InPlacePolicy{Vol: vol})
	fs.Register(1, f)

	for i := 0; i < 50; i++ {
		if err := fs.DummyRead(); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Stats().DummyReads != 50 {
		t.Fatal("dummy reads not counted")
	}
	// Read all blocks, then read a second file to force more misses.
	// Total distinct blocks (8 + 40) stays within the cache capacity
	// of 64.
	buf := make([]byte, len(content))
	if _, err := fs.ReadAt(1, buf, 0); err != nil {
		t.Fatal(err)
	}
	fak2 := stegfs.DeriveFAK("p", "/d2", vol)
	f2, _ := stegfs.CreateFile(vol, fak2, "/d2", src)
	c2 := prng.NewFromUint64(11).Bytes(40 * vol.PayloadSize())
	f2.WriteAt(c2, 0, stegfs.InPlacePolicy{Vol: vol})
	fs.Register(2, f2)
	buf2 := make([]byte, len(c2))
	if _, err := fs.ReadAt(2, buf2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, c2) {
		t.Fatal("second file mismatch")
	}
}

func TestFSCapacityOverflowSurfaces(t *testing.T) {
	// Reading more distinct blocks than the cache capacity must fail
	// loudly with ErrCacheFull, never silently drop blocks.
	fs, vol, src, _ := newFS(t) // capacity 64
	fak := stegfs.DeriveFAK("p", "/big", vol)
	f, _ := stegfs.CreateFile(vol, fak, "/big", src)
	c := prng.NewFromUint64(12).Bytes(120 * vol.PayloadSize())
	if _, err := f.WriteAt(c, 0, stegfs.InPlacePolicy{Vol: vol}); err != nil {
		t.Fatal(err)
	}
	fs.Register(1, f)
	buf := make([]byte, len(c))
	if _, err := fs.ReadAt(1, buf, 0); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("expected ErrCacheFull, got %v", err)
	}
}
