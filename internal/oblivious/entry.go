// Package oblivious implements the oblivious storage of §5: a
// hierarchy of k = log2(N/B) levels used as a cache in front of the
// StegFS partition, hiding read patterns the way the oblivious RAM of
// Goldreich–Ostrovsky hides memory accesses.
//
// Level i holds 2^i·B slots, of which at most half carry real cached
// blocks; the rest are indistinguishable dummies. Every read touches
// exactly one slot in every level — the real slot where the block was
// found, a uniformly random untouched dummy slot everywhere else — so
// the observable sequence is one random-looking probe per level per
// read, regardless of what (or whether anything) is being read.
// Because a found block is promoted to the agent's buffer and levels
// are re-shuffled before their untouched slots run out, no slot is
// ever touched twice between shuffles: the classic hierarchical-ORAM
// invariant, property-tested in this package.
//
// Shuffles are external merge sorts (internal/extsort) over a keyed
// pseudo-random tag, re-encrypting on every pass so positions cannot
// be linked across passes. Their I/O is mostly sequential, which is
// why the sorting overhead costs far less wall-clock time than its
// I/O count suggests (Fig. 12b).
package oblivious

import (
	"encoding/binary"
	"errors"
	"fmt"

	"steghide/internal/sealer"
)

// BlockID names a cached block: an agent-side logical address,
// invisible to the storage attacker.
type BlockID struct {
	// File is an agent-chosen ordinal for the hidden file.
	File uint64
	// Index is the logical block index within the file.
	Index uint64
}

// Sentinel errors.
var (
	// ErrCacheFull reports more distinct blocks than the last level
	// can hold; size the store for the working set.
	ErrCacheFull = errors.New("oblivious: last level full")
	// ErrValueSize reports a value that does not fit a slot.
	ErrValueSize = errors.New("oblivious: value size mismatch")
	// ErrCorruptSlot reports a slot that fails its integrity check.
	ErrCorruptSlot = errors.New("oblivious: corrupt slot")
)

// Slot payload layout (inside the sealed data field):
//
//	off  0  checksum uint64  keyed over payload[8:]
//	off  8  flags    uint32  bit0 = real entry, bit1 = low shuffle class
//	off 12  _        uint32  padding
//	off 16  version  uint64  global write counter; newest wins on merge
//	off 24  nonce    uint64  per-epoch random identity; PRF input for tags
//	off 32  id.File  uint64
//	off 40  id.Index uint64
//	off 48  value    [payload-48]byte
const (
	entryMetaSize = 48
	flagReal      = 1 << 0
	flagLowClass  = 1 << 1
)

// entry is the decoded form of a slot.
type entry struct {
	real     bool
	lowClass bool
	version  uint64
	nonce    uint64
	id       BlockID
	value    []byte // nil for dummies
}

// codec seals and opens slots under the store's key. Like the Store
// it serves, it is not safe for concurrent use: encode and decode
// share per-codec scratch buffers so the hot paths (probes, flushes,
// shuffle passes) allocate nothing per block.
type codec struct {
	seal     *sealer.Sealer
	key      sealer.Key
	payload  int
	valueLen int
	encBuf   []byte // plaintext scratch for encode
	decBuf   []byte // plaintext scratch for decode
	summer   *sealer.Summer
}

func newCodec(key sealer.Key, blockSize int) (*codec, error) {
	s, err := sealer.New(key, blockSize)
	if err != nil {
		return nil, err
	}
	payload := s.DataSize()
	if payload <= entryMetaSize {
		return nil, fmt.Errorf("oblivious: block size %d leaves no room for values", blockSize)
	}
	return &codec{
		seal:     s,
		key:      key,
		payload:  payload,
		valueLen: payload - entryMetaSize,
		encBuf:   make([]byte, payload),
		decBuf:   make([]byte, payload),
		summer:   sealer.NewSummer(key, "obli-slot"),
	}, nil
}

// encode seals e into a full raw slot. Dummies may have short or nil
// values; real values must be exactly valueLen bytes. fill supplies
// padding/dummy bytes.
func (c *codec) encode(dst []byte, e *entry, iv []byte, fill func([]byte)) error {
	payload := c.encBuf
	// Every field below is overwritten except the padding word; clear
	// it so reused scratch never leaks stale bytes into the ciphertext.
	binary.BigEndian.PutUint32(payload[12:], 0)
	var flags uint32
	if e.real {
		flags |= flagReal
	}
	if e.lowClass {
		flags |= flagLowClass
	}
	binary.BigEndian.PutUint32(payload[8:], flags)
	binary.BigEndian.PutUint64(payload[16:], e.version)
	binary.BigEndian.PutUint64(payload[24:], e.nonce)
	binary.BigEndian.PutUint64(payload[32:], e.id.File)
	binary.BigEndian.PutUint64(payload[40:], e.id.Index)
	if e.real {
		if len(e.value) != c.valueLen {
			return fmt.Errorf("%w: %d != %d", ErrValueSize, len(e.value), c.valueLen)
		}
		copy(payload[entryMetaSize:], e.value)
	} else {
		fill(payload[entryMetaSize:])
	}
	sum := c.summer.Sum(payload[8:])
	binary.BigEndian.PutUint64(payload, sum)
	return c.seal.Seal(dst, iv, payload)
}

// decode opens a raw slot. The value slice is freshly allocated for
// real entries.
func (c *codec) decode(raw []byte) (*entry, error) {
	e := new(entry)
	if err := c.decodeInto(e, raw); err != nil {
		return nil, err
	}
	return e, nil
}

// decodeInto opens a raw slot into a caller-owned entry, reusing its
// value backing when capacity allows — the alloc-free decode used by
// the probe, flush and shuffle hot paths (the per-comparison tag
// extraction goes further; see peek). A non-real slot leaves e.value
// truncated to zero length but keeps the backing for reuse.
func (c *codec) decodeInto(e *entry, raw []byte) error {
	payload := c.decBuf
	if err := c.seal.Open(payload, raw); err != nil {
		return err
	}
	sum := binary.BigEndian.Uint64(payload)
	if sum != c.summer.Sum(payload[8:]) {
		return ErrCorruptSlot
	}
	flags := binary.BigEndian.Uint32(payload[8:])
	e.real = flags&flagReal != 0
	e.lowClass = flags&flagLowClass != 0
	e.version = binary.BigEndian.Uint64(payload[16:])
	e.nonce = binary.BigEndian.Uint64(payload[24:])
	e.id = BlockID{
		File:  binary.BigEndian.Uint64(payload[32:]),
		Index: binary.BigEndian.Uint64(payload[40:]),
	}
	if e.real {
		e.value = append(e.value[:0], payload[entryMetaSize:]...)
	} else {
		e.value = e.value[:0]
	}
	return nil
}

// slotMeta is the header of a decoded slot without its value — what
// the shuffle's sort key and the merge's winner scan actually need.
type slotMeta struct {
	real     bool
	lowClass bool
	version  uint64
	nonce    uint64
	id       BlockID
}

// peek opens a raw slot into the shared scratch and returns only its
// header, allocating nothing. The shuffle sorts call this once per
// slot to build cached keys instead of decoding (and copying a value)
// per comparison.
func (c *codec) peek(raw []byte) (slotMeta, error) {
	payload := c.decBuf
	if err := c.seal.Open(payload, raw); err != nil {
		return slotMeta{}, err
	}
	sum := binary.BigEndian.Uint64(payload)
	if sum != c.summer.Sum(payload[8:]) {
		return slotMeta{}, ErrCorruptSlot
	}
	flags := binary.BigEndian.Uint32(payload[8:])
	return slotMeta{
		real:     flags&flagReal != 0,
		lowClass: flags&flagLowClass != 0,
		version:  binary.BigEndian.Uint64(payload[16:]),
		nonce:    binary.BigEndian.Uint64(payload[24:]),
		id: BlockID{
			File:  binary.BigEndian.Uint64(payload[32:]),
			Index: binary.BigEndian.Uint64(payload[40:]),
		},
	}, nil
}
