package oblivious

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"steghide/internal/prng"
	"steghide/internal/sealer"
)

func newTestCodec(t *testing.T, blockSize int) *codec {
	t.Helper()
	c, err := newCodec(sealer.DeriveKey([]byte("k"), "codec"), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodecRoundTripReal(t *testing.T) {
	c := newTestCodec(t, 128)
	rng := prng.NewFromUint64(1)
	e := &entry{
		real:    true,
		version: 42,
		nonce:   777,
		id:      BlockID{File: 3, Index: 9},
		value:   rng.Bytes(c.valueLen),
	}
	raw := make([]byte, 128)
	if err := c.encode(raw, e, rng.Bytes(sealer.IVSize), func(p []byte) { rng.Read(p) }); err != nil {
		t.Fatal(err)
	}
	got, err := c.decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.real || got.version != 42 || got.nonce != 777 || got.id != e.id {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if !bytes.Equal(got.value, e.value) {
		t.Fatal("value mismatch")
	}
}

func TestCodecRoundTripDummy(t *testing.T) {
	c := newTestCodec(t, 128)
	rng := prng.NewFromUint64(2)
	e := &entry{nonce: 5, lowClass: true}
	raw := make([]byte, 128)
	if err := c.encode(raw, e, rng.Bytes(sealer.IVSize), func(p []byte) { rng.Read(p) }); err != nil {
		t.Fatal(err)
	}
	got, err := c.decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.real || !got.lowClass || got.nonce != 5 {
		t.Fatalf("dummy metadata mismatch: %+v", got)
	}
	if got.value != nil {
		t.Fatal("dummy carried a value")
	}
}

func TestCodecRejectsWrongValueSize(t *testing.T) {
	c := newTestCodec(t, 128)
	e := &entry{real: true, value: make([]byte, 3)}
	raw := make([]byte, 128)
	iv := make([]byte, sealer.IVSize)
	if err := c.encode(raw, e, iv, func([]byte) {}); !errors.Is(err, ErrValueSize) {
		t.Fatalf("short value: %v", err)
	}
}

func TestCodecDetectsTamperAndWrongKey(t *testing.T) {
	c := newTestCodec(t, 128)
	rng := prng.NewFromUint64(3)
	e := &entry{real: true, nonce: 1, id: BlockID{1, 2}, value: rng.Bytes(c.valueLen)}
	raw := make([]byte, 128)
	if err := c.encode(raw, e, rng.Bytes(sealer.IVSize), func(p []byte) { rng.Read(p) }); err != nil {
		t.Fatal(err)
	}
	// Bit flip anywhere in the ciphertext must fail the checksum.
	bad := append([]byte(nil), raw...)
	bad[40] ^= 0x01
	if _, err := c.decode(bad); !errors.Is(err, ErrCorruptSlot) {
		t.Fatalf("tampered slot: %v", err)
	}
	// A different key cannot decode the slot.
	other, err := newCodec(sealer.DeriveKey([]byte("other"), "codec"), 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.decode(raw); !errors.Is(err, ErrCorruptSlot) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestCodecMinimumGeometry(t *testing.T) {
	if _, err := newCodec(sealer.DeriveKey([]byte("k"), "g"), 64); err == nil {
		t.Fatal("64-byte slots leave no value room but were accepted")
	}
	c := newTestCodec(t, 96)
	if c.valueLen != 96-16-entryMetaSize {
		t.Fatalf("value len %d", c.valueLen)
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	c := newTestCodec(t, 160)
	f := func(seed, file, index, nonce, version uint64, lowClass bool) bool {
		rng := prng.NewFromUint64(seed)
		e := &entry{
			real:     true,
			lowClass: lowClass,
			version:  version,
			nonce:    nonce,
			id:       BlockID{File: file, Index: index},
			value:    rng.Bytes(c.valueLen),
		}
		raw := make([]byte, 160)
		if err := c.encode(raw, e, rng.Bytes(sealer.IVSize), func(p []byte) { rng.Read(p) }); err != nil {
			return false
		}
		got, err := c.decode(raw)
		if err != nil {
			return false
		}
		return got.real == e.real && got.lowClass == e.lowClass &&
			got.version == e.version && got.nonce == e.nonce &&
			got.id == e.id && bytes.Equal(got.value, e.value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
