package oblivious

import (
	"fmt"
	"sort"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/extsort"
	"steghide/internal/prng"
	"steghide/internal/sealer"
)

// Config describes an oblivious store.
type Config struct {
	// Dev is the store's partition: levels followed by sort scratch.
	// Its block size fixes the slot size; use Footprint to size it.
	Dev blockdev.Device
	// Key seals every slot (a session key of the agent).
	Key sealer.Key
	// BufferBlocks is B: the agent's in-memory buffer capacity. Level
	// i holds 2^i·B slots.
	BufferBlocks int
	// Levels is k: the number of levels. The last level's 2^k·B slots
	// cache up to 2^(k-1)·B distinct blocks.
	Levels int
	// RNG drives every random choice.
	RNG *prng.PRNG
	// Clock, if non-nil, is sampled around shuffles and retrievals to
	// split access time into sorting vs retrieving overhead (Fig. 12b).
	// Experiments pass the simulated disk's virtual clock.
	Clock func() time.Duration
	// RelaxFactor implements the optimization sketched in §5.2/§7:
	// "relax the security requirement and reduce … the frequency that
	// the blocks are re-sorted". A factor of F ≥ 2 stretches the
	// shuffle schedule by F, cutting the amortized sorting cost ~F×;
	// the price is that a level's untouched-dummy pool can run dry
	// between shuffles, after which dummy probes re-touch random
	// slots — a bounded, measurable leak counted in Stats.ReTouches.
	// 0 or 1 means the strict schedule (no leak).
	RelaxFactor int
}

// Footprint returns the number of device blocks a store with the
// given geometry occupies: all level regions plus the sort scratch
// (sized for the largest combined region, 3·2^(k-1)·B).
func Footprint(bufferBlocks, levels int) uint64 {
	b := uint64(bufferBlocks)
	var total uint64
	for i := 1; i <= levels; i++ {
		total += (uint64(1) << uint(i)) * b
	}
	return total + 3*(uint64(1)<<uint(levels-1))*b
}

// Stats aggregates the store's observable work.
type Stats struct {
	Gets          uint64 // Get calls
	BufferHits    uint64 // served from the in-memory buffer (no I/O)
	Hits          uint64 // found in some level
	Misses        uint64 // not cached (caller fetches from StegFS)
	DummyReads    uint64 // DummyRead calls
	LevelReads    uint64 // slot reads during retrieval
	Puts          uint64
	Flushes       uint64 // buffer → level 1
	Dumps         uint64 // level i → level i+1 merges
	ShuffleReads  uint64 // slot reads during shuffles/merges
	ShuffleWrites uint64 // slot writes during shuffles/merges
	// ReTouches counts dummy probes that had to re-touch an
	// already-touched slot because the relaxed schedule drained a
	// level's pool — the measurable security cost of RelaxFactor.
	ReTouches    uint64
	SortTime     time.Duration
	RetrieveTime time.Duration
}

// level is one tier of the hierarchy.
type level struct {
	region    extsort.Region
	capReal   int                // 2^(i-1)·B — at most half the slots are real
	realCount int                //
	index     map[BlockID]uint64 // id → absolute slot, rebuilt per epoch
	// unreadDummies are the dummy slots not yet touched this epoch;
	// dummy probes draw from here so they can never collide with a
	// future real probe (real slots are each touched at most once by
	// construction).
	unreadDummies []uint64
	epoch         uint64
}

// Store is the oblivious storage. It is not safe for concurrent use;
// the agent serializes access (as it does all storage I/O).
type Store struct {
	dev    blockdev.Device
	codec  *codec
	rng    *prng.PRNG
	clock  func() time.Duration
	bufCap int

	buffer  map[BlockID]*entry
	levels  []*level // levels[0] is level 1
	scratch extsort.Region
	relax   int // schedule stretch factor (1 = strict)

	version  uint64 // global write counter
	accesses uint64 // drives the deterministic shuffle schedule
	stats    Stats

	// epochSeeds feed the shuffle-tag PRF; refreshed per shuffle.
	tagRNG *prng.PRNG

	// Reusable scratch. The store is not safe for concurrent use (the
	// agent serializes access), so one set of buffers serves every hot
	// path instead of a make per call:
	ioBufs    [][]byte // B blocks for batched level scans (flush/format)
	probeIdx  []uint64 // one slot index per level (Get/DummyRead)
	probeBufs [][]byte // one block per level (Get/DummyRead)
	iv        []byte   // IV scratch for sealing
	sortWin   [][]byte // extsort window, reused across every dump
	reseal    func([]byte) error

	// Flush scratch, all sized once for level 1 (the only level flush
	// rewrites): survivor list, permutation, slot→entry placement, the
	// realSlots set handed to resetEpoch, and a reusable dummy entry.
	entriesBuf []*entry
	permBuf    []int
	placeBuf   []*entry
	realSlots  map[uint64]bool
	dummyEnt   entry

	// Merge scratch: the winner set, a spare index map swapped with the
	// target level's (the old map is cleared and becomes next dump's
	// spare), and one entry reused by the rewrite pass.
	winnersBuf map[uint64]bool
	spareIndex map[BlockID]uint64
	mergeEnt   entry

	// freeEntries recycles entry structs (and their value backings)
	// between the buffer and the flush path, so steady-state Puts and
	// promotions allocate nothing.
	freeEntries []*entry
}

// newEntry pops a recycled entry (value backing retained, fields
// zeroed) or allocates one.
func (s *Store) newEntry() *entry {
	if n := len(s.freeEntries); n > 0 {
		e := s.freeEntries[n-1]
		s.freeEntries = s.freeEntries[:n-1]
		v := e.value
		*e = entry{value: v[:0]}
		return e
	}
	return new(entry)
}

// freeEntry returns an entry to the freelist. Callers must not retain
// the pointer (Get hands copies of values to its caller, never the
// entry itself, so the only holders are the buffer map and flush's
// transient survivor list).
func (s *Store) freeEntry(e *entry) {
	if e != nil {
		s.freeEntries = append(s.freeEntries, e)
	}
}

// New builds and formats an oblivious store: every level slot is
// initialized as a sealed dummy so that from the first access on, all
// slots are valid ciphertext.
func New(cfg Config) (*Store, error) {
	if cfg.BufferBlocks < 2 {
		return nil, fmt.Errorf("oblivious: buffer of %d blocks", cfg.BufferBlocks)
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("oblivious: %d levels", cfg.Levels)
	}
	need := Footprint(cfg.BufferBlocks, cfg.Levels)
	if cfg.Dev.NumBlocks() < need {
		return nil, fmt.Errorf("oblivious: device has %d blocks, geometry needs %d", cfg.Dev.NumBlocks(), need)
	}
	cdc, err := newCodec(cfg.Key, cfg.Dev.BlockSize())
	if err != nil {
		return nil, err
	}
	relax := cfg.RelaxFactor
	if relax < 1 {
		relax = 1
	}
	s := &Store{
		dev:    cfg.Dev,
		codec:  cdc,
		rng:    cfg.RNG.Child("obli"),
		clock:  cfg.Clock,
		bufCap: cfg.BufferBlocks,
		relax:  relax,
		buffer: make(map[BlockID]*entry, cfg.BufferBlocks),
	}
	s.tagRNG = s.rng.Child("tags")
	start := uint64(0)
	b := uint64(cfg.BufferBlocks)
	for i := 1; i <= cfg.Levels; i++ {
		slots := (uint64(1) << uint(i)) * b
		lv := &level{
			region:  extsort.Region{Start: start, Len: slots},
			capReal: int(slots / 2),
			index:   map[BlockID]uint64{},
		}
		s.levels = append(s.levels, lv)
		start += slots
	}
	s.scratch = extsort.Region{Start: start, Len: 3 * (uint64(1) << uint(cfg.Levels-1)) * b}
	s.ioBufs = blockdev.AllocBlocks(cfg.BufferBlocks, s.dev.BlockSize())
	s.probeIdx = make([]uint64, cfg.Levels)
	s.probeBufs = blockdev.AllocBlocks(cfg.Levels, s.dev.BlockSize())
	s.iv = make([]byte, sealer.IVSize)
	s.sortWin = blockdev.AllocBlocks(cfg.BufferBlocks, s.dev.BlockSize())
	l1Slots := int(s.levels[0].region.Len)
	s.entriesBuf = make([]*entry, 0, l1Slots)
	s.permBuf = make([]int, l1Slots)
	s.placeBuf = make([]*entry, l1Slots)
	s.realSlots = make(map[uint64]bool, l1Slots)
	s.winnersBuf = make(map[uint64]bool)
	s.spareIndex = make(map[BlockID]uint64)
	{
		// The reseal transform is built once: its scratch and IV live
		// for the store, and every dump draws through the same closure
		// in the same order the per-dump closures did.
		scratch := make([]byte, cdc.payload)
		iv := make([]byte, sealer.IVSize)
		s.reseal = func(raw []byte) error {
			s.rng.Read(iv)
			return cdc.seal.Reseal(raw, iv, scratch)
		}
	}

	// Format: seal a dummy into every slot, written out in batched
	// sequential passes of B blocks.
	for _, lv := range s.levels {
		for slot := lv.region.Start; slot < lv.region.End(); {
			n := min(uint64(len(s.ioBufs)), lv.region.End()-slot)
			for i := uint64(0); i < n; i++ {
				s.rng.Read(s.iv)
				s.dummyEnt = entry{nonce: s.rng.Uint64()}
				if err := s.codec.encode(s.ioBufs[i], &s.dummyEnt, s.iv, func(p []byte) { s.rng.Read(p) }); err != nil {
					return nil, err
				}
			}
			if err := blockdev.WriteBlocks(s.dev, slot, s.ioBufs[:n]); err != nil {
				return nil, err
			}
			slot += n
		}
		lv.resetEpoch(s, nil)
	}
	return s, nil
}

// ValueSize returns the exact size of cached values.
func (s *Store) ValueSize() int { return s.codec.valueLen }

// BufferCap returns B, the buffer capacity in blocks.
func (s *Store) BufferCap() int { return s.bufCap }

// NumLevels returns k.
func (s *Store) NumLevels() int { return len(s.levels) }

// Capacity returns the number of distinct blocks the store can hold.
func (s *Store) Capacity() int { return s.levels[len(s.levels)-1].capReal }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *Store) ResetStats() { s.stats = Stats{} }

// LevelEpoch returns the shuffle epoch of level i (1-based); test hook
// for the never-touch-twice invariant.
func (s *Store) LevelEpoch(i int) uint64 { return s.levels[i-1].epoch }

// resetEpoch rebuilds the unread-dummy pool after a shuffle. realSlots
// marks which absolute slots hold real entries (nil = none).
func (lv *level) resetEpoch(s *Store, realSlots map[uint64]bool) {
	lv.unreadDummies = lv.unreadDummies[:0]
	for slot := lv.region.Start; slot < lv.region.End(); slot++ {
		if realSlots == nil || !realSlots[slot] {
			lv.unreadDummies = append(lv.unreadDummies, slot)
		}
	}
	lv.epoch++
}

// drawDummy consumes a uniformly random untouched dummy slot. Under
// a relaxed schedule an exhausted pool falls back to re-touching a
// uniformly random slot — the bounded leak RelaxFactor buys its
// speedup with.
func (lv *level) drawDummy(s *Store) (uint64, error) {
	n := len(lv.unreadDummies)
	if n == 0 {
		if s.relax > 1 {
			s.stats.ReTouches++
			return lv.region.Start + s.rng.Uint64n(lv.region.Len), nil
		}
		return 0, fmt.Errorf("oblivious: level %v exhausted its dummy slots (shuffle cadence bug)", lv.region)
	}
	i := s.rng.Intn(n)
	slot := lv.unreadDummies[i]
	lv.unreadDummies[i] = lv.unreadDummies[n-1]
	lv.unreadDummies = lv.unreadDummies[:n-1]
	return slot, nil
}

func (s *Store) now() time.Duration {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

// readSlots performs the observable probe reads of one access as a
// single scattered batch — one slot per level, one device call.
func (s *Store) readSlots(idx []uint64, bufs [][]byte) error {
	if err := blockdev.ReadBlocksAt(s.dev, idx, bufs); err != nil {
		return err
	}
	s.stats.LevelReads += uint64(len(idx))
	return nil
}

// Get looks the block up. Buffer hits cost no I/O and are invisible
// to the attacker. Otherwise exactly one slot per level is read —
// the real slot at the first level holding the block, a random
// untouched dummy everywhere else — and, if found, the block is
// promoted into the buffer (possibly triggering a flush). A miss
// still probes every level (the caller then fetches from the StegFS
// partition via the read_stegfs algorithm and Puts the block).
func (s *Store) Get(id BlockID) ([]byte, bool, error) {
	s.stats.Gets++
	if e, ok := s.buffer[id]; ok {
		s.stats.BufferHits++
		return append([]byte(nil), e.value...), true, nil
	}
	t0 := s.now()
	sort0 := s.stats.SortTime

	// Pick the probe slot of every level up front — the slot choices
	// never depend on the reads — then fetch them in one batch.
	realLevel := -1
	for li, lv := range s.levels {
		if slot, here := lv.index[id]; here && realLevel < 0 {
			realLevel = li
			s.probeIdx[li] = slot
			continue
		}
		slot, err := lv.drawDummy(s)
		if err != nil {
			return nil, false, err
		}
		s.probeIdx[li] = slot
	}
	if err := s.readSlots(s.probeIdx, s.probeBufs); err != nil {
		return nil, false, err
	}

	var found *entry
	if realLevel >= 0 {
		lv := s.levels[realLevel]
		e := s.newEntry()
		if err := s.codec.decodeInto(e, s.probeBufs[realLevel]); err != nil {
			s.freeEntry(e)
			return nil, false, err
		}
		if !e.real || e.id != id {
			s.freeEntry(e)
			return nil, false, fmt.Errorf("%w: index pointed at wrong entry", ErrCorruptSlot)
		}
		found = e
		// Consumed: the entry promotes to the buffer. The slot keeps
		// its (now stale) ciphertext until the next merge drops it,
		// but it no longer counts toward occupancy.
		delete(lv.index, id)
		if lv.realCount > 0 {
			lv.realCount--
		}
	}

	if found == nil {
		s.stats.Misses++
		if err := s.afterAccess(); err != nil {
			return nil, false, err
		}
		s.stats.RetrieveTime += (s.now() - t0) - (s.stats.SortTime - sort0)
		return nil, false, nil
	}
	s.stats.Hits++
	if err := s.bufferInsert(found); err != nil {
		return nil, false, err
	}
	if err := s.afterAccess(); err != nil {
		return nil, false, err
	}
	s.stats.RetrieveTime += (s.now() - t0) - (s.stats.SortTime - sort0)
	return append([]byte(nil), found.value...), true, nil
}

// DummyRead performs the idle-time equivalent of a Get: one random
// untouched dummy slot per level, nothing buffered. To the attacker it
// is indistinguishable from a real read.
func (s *Store) DummyRead() error {
	s.stats.DummyReads++
	t0 := s.now()
	sort0 := s.stats.SortTime
	for li, lv := range s.levels {
		slot, err := lv.drawDummy(s)
		if err != nil {
			return err
		}
		s.probeIdx[li] = slot
	}
	if err := s.readSlots(s.probeIdx, s.probeBufs); err != nil {
		return err
	}
	if err := s.afterAccess(); err != nil {
		return err
	}
	s.stats.RetrieveTime += (s.now() - t0) - (s.stats.SortTime - sort0)
	return nil
}

// Put inserts or updates a cached block (write path, §5.1.2: writes
// within the oblivious storage are hidden the same way as reads; the
// caller repeats the write on the StegFS partition for persistence).
func (s *Store) Put(id BlockID, value []byte) error {
	if len(value) != s.codec.valueLen {
		return fmt.Errorf("%w: %d != %d", ErrValueSize, len(value), s.codec.valueLen)
	}
	s.stats.Puts++
	s.version++
	e := s.newEntry()
	e.real = true
	e.version = s.version
	e.id = id
	e.value = append(e.value[:0], value...)
	if err := s.bufferInsert(e); err != nil {
		return err
	}
	return s.afterAccess()
}

// afterAccess drives the deterministic shuffle schedule, the
// Goldreich–Ostrovsky cadence: every B accesses the buffer flushes
// into level 1; at period p (p-th flush), with m the number of
// trailing zero bits of p (capped at k−1), the contents cascade
// onward — level 1 into 2, 2 into 3, …, m into m+1 — leaving levels
// 1..m empty. The net effect is that everything gathered since the
// last multiple of 2^m lands in level m+1, which was emptied at the
// last multiple of 2^(m+1), so level m+1 ends holding at most
// 2^m·B reals: exactly half its slots, leaving one untouched dummy
// slot per access until its next shuffle. The schedule is
// occupancy-independent — it runs even for pure dummy traffic —
// because each access consumes one untouched dummy slot per level
// and only shuffles replenish the pools. Intermediate cascade steps
// transiently pack a level full; the merge's dummy-count invariant
// (pass B) still holds at every step and the level is emptied before
// any probe can observe the transient.
func (s *Store) afterAccess() error {
	s.accesses++
	if s.accesses%uint64(s.bufCap) != 0 {
		return nil
	}
	if s.relax > 1 {
		// Relaxed mode (§7 optimization): flushes still happen every B
		// accesses (the buffer is a fixed memory budget), but the
		// expensive dumps run only when a level's real occupancy
		// demands it — dummy-heavy traffic then never pays for a sort.
		// Levels can outlive their untouched-dummy pools; drawDummy's
		// re-touch fallback absorbs that, counted as the leak it is.
		if err := s.ensureRoom(0, len(s.buffer)); err != nil {
			return err
		}
		return s.flush()
	}
	if err := s.flush(); err != nil {
		return err
	}
	period := s.accesses / uint64(s.bufCap)
	m := 0
	for m < len(s.levels)-1 && period%(1<<uint(m+1)) == 0 {
		m++
	}
	for i := 0; i < m; i++ {
		if err := s.dump(i); err != nil {
			return err
		}
	}
	return nil
}

// occupancyCap is the real-entry threshold that triggers a dump of
// level i under the relaxed schedule. Strict mode keeps levels at
// most half full so untouched-dummy pools always cover an epoch;
// relaxed mode lets levels fill to within slots/(2·relax) of their
// physical size — that slack times fewer dumps is exactly where the
// sort savings come from, paid for in re-touches once pools drain.
// The slack also keeps the merge invariant intact: ensureRoom bounds
// the combined reals below the target's slot count.
func (s *Store) occupancyCap(i int) int {
	lv := s.levels[i]
	if s.relax <= 1 {
		return lv.capReal
	}
	slack := int(lv.region.Len) / (2 * s.relax)
	if slack < 1 {
		slack = 1
	}
	c := int(lv.region.Len) - slack
	if c < lv.capReal {
		c = lv.capReal
	}
	return c
}

// ensureRoom guarantees level i can absorb `incoming` more real
// entries, cascading occupancy-driven dumps downward as needed. The
// last level never dumps: merging into it deduplicates, and dump()
// itself raises ErrCacheFull if the distinct working set genuinely
// exceeds its capacity.
func (s *Store) ensureRoom(i, incoming int) error {
	lv := s.levels[i]
	if i == len(s.levels)-1 || lv.realCount+incoming <= s.occupancyCap(i) {
		return nil
	}
	if err := s.ensureRoom(i+1, lv.realCount); err != nil {
		return err
	}
	return s.dump(i)
}

// bufferInsert adds an entry to the buffer, flushing first if full.
// A superseded duplicate goes straight back to the freelist.
func (s *Store) bufferInsert(e *entry) error {
	old, dup := s.buffer[e.id]
	if !dup && len(s.buffer) >= s.bufCap {
		if err := s.flush(); err != nil {
			return err
		}
	}
	if dup && old != e {
		s.freeEntry(old)
	}
	s.buffer[e.id] = e
	return nil
}

// Flush forces the buffer into level 1 (exposed for shutdown).
func (s *Store) Flush() error {
	if len(s.buffer) == 0 {
		return nil
	}
	return s.flush()
}

// flush empties the buffer into level 1: the level is rewritten
// whole — existing entries merged with the buffer, deduplicated by
// version, re-encrypted and placed at a fresh random permutation —
// and its epoch restarts. Cost: one sequential read + write pass over
// 2B slots. The shuffle schedule (afterAccess) guarantees capacity;
// overflow here means a scheduling bug.
func (s *Store) flush() error {
	t0 := s.now()
	defer func() { s.stats.SortTime += s.now() - t0 }()
	s.stats.Flushes++

	lv := s.levels[0]

	// Collect survivors: level-1 entries not superseded by the buffer.
	// The level is scanned in batched sequential passes of B blocks.
	// Every entry comes off the freelist and every one goes back at the
	// end of the flush, so a steady-state flush allocates nothing.
	entries := s.entriesBuf[:0]
	for slot := lv.region.Start; slot < lv.region.End(); {
		n := min(uint64(len(s.ioBufs)), lv.region.End()-slot)
		if err := blockdev.ReadBlocks(s.dev, slot, s.ioBufs[:n]); err != nil {
			return err
		}
		s.stats.ShuffleReads += n
		for i := uint64(0); i < n; i++ {
			e := s.newEntry()
			if err := s.codec.decodeInto(e, s.ioBufs[i]); err != nil {
				s.freeEntry(e)
				return err
			}
			if !e.real {
				s.freeEntry(e)
				continue
			}
			if b, ok := s.buffer[e.id]; ok && b.version >= e.version {
				s.freeEntry(e)
				continue
			}
			entries = append(entries, e)
		}
		slot += n
	}
	// Buffer entries join in version order, not map-iteration order:
	// versions are unique (a global counter), so this makes the whole
	// placement — and with it the sealed level image — a deterministic
	// function of the RNG stream, which is what lets the memory-plane
	// oracle compare full volume images across equal-seed runs.
	bufStart := len(entries)
	for _, e := range s.buffer {
		entries = append(entries, e)
	}
	sort.Slice(entries[bufStart:], func(i, j int) bool {
		return entries[bufStart+i].version < entries[bufStart+j].version
	})
	// At even periods the level transiently packs to its full slot
	// count; the cascade empties it before any probe. Physical
	// overflow would be a scheduling bug.
	if uint64(len(entries)) > lv.region.Len {
		return fmt.Errorf("oblivious: level 1 overflow (%d > %d slots)", len(entries), lv.region.Len)
	}

	// Random placement of reals among the 2B slots. The permutation is
	// drawn exactly as rng.Perm does (identity fill + Fisher–Yates), so
	// the RNG stream is untouched by the buffer reuse.
	slots := int(lv.region.Len)
	perm := s.permBuf[:slots]
	for i := range perm {
		perm[i] = i
	}
	s.rng.ShuffleInts(perm)
	clear(lv.index)
	clear(s.realSlots)
	place := s.placeBuf[:slots]
	clear(place)
	for i, e := range entries {
		place[perm[i]] = e
	}
	for off := 0; off < slots; {
		n := min(len(s.ioBufs), slots-off)
		for i := 0; i < n; i++ {
			slot := lv.region.Start + uint64(off+i)
			e := place[off+i]
			if e == nil {
				s.dummyEnt = entry{nonce: s.rng.Uint64()}
				e = &s.dummyEnt
			} else {
				e.nonce = s.rng.Uint64()
				lv.index[e.id] = slot
				s.realSlots[slot] = true
			}
			s.rng.Read(s.iv)
			if err := s.codec.encode(s.ioBufs[i], e, s.iv, func(p []byte) { s.rng.Read(p) }); err != nil {
				return err
			}
		}
		if err := blockdev.WriteBlocks(s.dev, lv.region.Start+uint64(off), s.ioBufs[:n]); err != nil {
			return err
		}
		s.stats.ShuffleWrites += uint64(n)
		off += n
	}
	lv.realCount = len(entries)
	lv.resetEpoch(s, s.realSlots)
	for _, e := range entries {
		s.freeEntry(e)
	}
	s.entriesBuf = entries[:0]
	clear(s.buffer)
	return nil
}
