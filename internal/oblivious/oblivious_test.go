package oblivious

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stats"
)

// newStore builds a small store: B=4, k=3 → levels of 8/16/32 slots,
// capacity 16 distinct blocks, on a 128-byte-block device.
func newStore(t *testing.T, bufCap, levels int) (*Store, *blockdev.Collector) {
	t.Helper()
	col := &blockdev.Collector{}
	need := Footprint(bufCap, levels)
	dev := blockdev.NewTraced(blockdev.NewMem(128, need), col)
	s, err := New(Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("k"), "obli-test"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	col.Reset()
	return s, col
}

func val(s *Store, seed uint64) []byte {
	return prng.NewFromUint64(seed).Bytes(s.ValueSize())
}

func TestFootprint(t *testing.T) {
	// B=4, k=3: 8+16+32 levels + 3*16 scratch = 104.
	if got := Footprint(4, 3); got != 104 {
		t.Fatalf("Footprint(4,3) = %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	dev := blockdev.NewMem(128, 10)
	key := sealer.DeriveKey([]byte("k"), "x")
	rng := prng.NewFromUint64(1)
	if _, err := New(Config{Dev: dev, Key: key, BufferBlocks: 1, Levels: 3, RNG: rng}); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	if _, err := New(Config{Dev: dev, Key: key, BufferBlocks: 4, Levels: 0, RNG: rng}); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := New(Config{Dev: dev, Key: key, BufferBlocks: 4, Levels: 3, RNG: rng}); err == nil {
		t.Fatal("undersized device accepted")
	}
	// 64-byte blocks leave exactly zero value bytes: rejected.
	if _, err := New(Config{Dev: blockdev.NewMem(64, 1000), Key: key, BufferBlocks: 4, Levels: 3, RNG: rng}); err == nil {
		t.Fatal("zero-value-capacity blocks accepted")
	}
	// 96-byte blocks leave 32 value bytes: fine.
	if _, err := New(Config{Dev: blockdev.NewMem(96, 1000), Key: key, BufferBlocks: 4, Levels: 3, RNG: rng}); err != nil {
		t.Fatalf("96-byte blocks should fit entries: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore(t, 4, 3)
	ids := make([]BlockID, 10)
	for i := range ids {
		ids[i] = BlockID{File: 1, Index: uint64(i)}
		if err := s.Put(ids[i], val(s, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Everything must be retrievable, across buffer and levels.
	for i, id := range ids {
		got, ok, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("block %d lost", i)
		}
		if !bytes.Equal(got, val(s, uint64(i))) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestGetMiss(t *testing.T) {
	s, _ := newStore(t, 4, 3)
	if _, ok, err := s.Get(BlockID{File: 9, Index: 9}); err != nil || ok {
		t.Fatalf("expected clean miss: %v %v", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	s, _ := newStore(t, 4, 3) // capacity 16 distinct blocks
	id := BlockID{File: 1, Index: 0}
	for v := 0; v < 14; v++ {
		if err := s.Put(id, val(s, uint64(v))); err != nil {
			t.Fatal(err)
		}
		// Interleave other traffic to force flushes and merges
		// (12 distinct extra ids + this one stays within capacity).
		if err := s.Put(BlockID{File: 2, Index: uint64(v % 12)}, val(s, 1000+uint64(v))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Get(id)
	if err != nil || !ok {
		t.Fatalf("lost overwritten block: %v %v", ok, err)
	}
	if !bytes.Equal(got, val(s, 13)) {
		t.Fatal("stale version returned after merges")
	}
}

func TestValueSizeChecked(t *testing.T) {
	s, _ := newStore(t, 4, 3)
	if err := s.Put(BlockID{}, make([]byte, 3)); !errors.Is(err, ErrValueSize) {
		t.Fatalf("short value: %v", err)
	}
}

func TestCapacityOverflow(t *testing.T) {
	s, _ := newStore(t, 4, 2) // capacity = 2^(2-1)*4 = 8 distinct blocks
	var err error
	for i := 0; i < 200 && err == nil; i++ {
		err = s.Put(BlockID{File: 1, Index: uint64(i)}, val(s, uint64(i)))
	}
	if !errors.Is(err, ErrCacheFull) {
		t.Fatalf("expected ErrCacheFull, got %v", err)
	}
}

func TestNeverTouchASlotTwice(t *testing.T) {
	// The hierarchical-ORAM invariant: within one epoch of a level, no
	// slot is read twice by the retrieval path. Ops that trigger a
	// shuffle are skipped (their trace mixes retrieval and shuffle
	// I/O); epochs reset at shuffles, so the per-epoch key stays sound
	// across them.
	s, col := newStore(t, 4, 3)
	rng := prng.NewFromUint64(5)
	const blocks = 12

	type key struct {
		level int
		epoch uint64
		slot  uint64
	}
	seen := map[key]bool{}
	levelOf := func(slot uint64) int {
		for i, lv := range s.levels {
			if lv.region.Contains(slot) {
				return i
			}
		}
		return -1
	}

	for i := 0; i < blocks; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val(s, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	checked := 0
	for op := 0; op < 600; op++ {
		col.Reset()
		before := s.Stats()
		switch rng.Intn(3) {
		case 0:
			id := BlockID{File: 1, Index: uint64(rng.Intn(blocks))}
			if _, _, err := s.Get(id); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, _, err := s.Get(BlockID{File: 7, Index: uint64(rng.Intn(50))}); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := s.DummyRead(); err != nil {
				t.Fatal(err)
			}
		}
		after := s.Stats()
		if after.Flushes+after.Dumps > before.Flushes+before.Dumps {
			continue // shuffle I/O mixed into this op's trace
		}
		for _, e := range col.Events() {
			if e.Op != blockdev.OpRead {
				continue
			}
			li := levelOf(e.Block)
			if li < 0 {
				continue // scratch traffic
			}
			k := key{level: li, epoch: s.levels[li].epoch, slot: e.Block}
			if seen[k] {
				t.Fatalf("op %d: slot %d of level %d read twice in epoch %d", op, e.Block, li+1, k.epoch)
			}
			seen[k] = true
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("invariant never exercised")
	}
}

func TestOneReadPerLevelPerAccess(t *testing.T) {
	// Each non-buffer-hit access reads exactly one slot per level.
	s, col := newStore(t, 4, 3)
	for i := 0; i < 10; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val(s, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the buffer so Gets hit levels.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	levelOf := func(slot uint64) int {
		for i, lv := range s.levels {
			if lv.region.Contains(slot) {
				return i
			}
		}
		return -1
	}
	rng := prng.NewFromUint64(3)
	for op := 0; op < 30; op++ {
		col.Reset()
		statsBefore := s.Stats()
		var err error
		if op%2 == 0 {
			_, _, err = s.Get(BlockID{File: 1, Index: uint64(rng.Intn(10))})
		} else {
			err = s.DummyRead()
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats().BufferHits > statsBefore.BufferHits {
			continue // buffer hit: no level I/O expected
		}
		shuffled := s.Stats().Flushes+s.Stats().Dumps > statsBefore.Flushes+statsBefore.Dumps
		counts := map[int]int{}
		reads := uint64(0)
		for _, e := range col.Events() {
			if e.Op == blockdev.OpRead {
				if li := levelOf(e.Block); li >= 0 {
					counts[li]++
					reads++
				}
			}
		}
		if shuffled {
			continue // shuffle reads pollute the count for this op
		}
		for li := range s.levels {
			if counts[li] != 1 {
				t.Fatalf("op %d: level %d read %d times (want 1); counts=%v", op, li+1, counts[li], counts)
			}
		}
	}
}

func TestDummyReadIndistinguishableFromGet(t *testing.T) {
	// Distribution check: the multiset of level-slot positions read by
	// dummy reads vs real reads must be statistically indistinguishable.
	s, _ := newStore(t, 8, 3)
	const blocks = 20
	for i := 0; i < blocks; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val(s, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	col := &blockdev.Collector{}
	// Rewire: re-wrap is not possible, so sample via the stats of slot
	// positions with a fresh store + traced device instead.
	_ = col

	collect := func(dummy bool, seed uint64) []uint64 {
		c := &blockdev.Collector{}
		need := Footprint(8, 3)
		dev := blockdev.NewTraced(blockdev.NewMem(128, need), c)
		st, err := New(Config{Dev: dev, Key: sealer.DeriveKey([]byte("k"), "d"),
			BufferBlocks: 8, Levels: 3, RNG: prng.NewFromUint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < blocks; i++ {
			if err := st.Put(BlockID{File: 1, Index: uint64(i)}, make([]byte, st.ValueSize())); err != nil {
				t.Fatal(err)
			}
		}
		st.Flush()
		c.Reset()
		rng := prng.NewFromUint64(seed + 1)
		lastLevel := st.levels[len(st.levels)-1].region
		for op := 0; op < 800; op++ {
			if dummy {
				if err := st.DummyRead(); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, _, err := st.Get(BlockID{File: 1, Index: uint64(rng.Intn(blocks))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		var out []uint64
		for _, e := range c.Events() {
			if e.Op == blockdev.OpRead && lastLevel.Contains(e.Block) {
				out = append(out, e.Block-lastLevel.Start)
			}
		}
		return out
	}

	dummyReads := collect(true, 100)
	realReads := collect(false, 200)
	h1 := stats.Histogram(dummyReads, s.levels[len(s.levels)-1].region.Len, 8)
	h2 := stats.Histogram(realReads, s.levels[len(s.levels)-1].region.Len, 8)
	_, p, err := stats.ChiSquareTwoSample(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("dummy and real reads distinguishable on last level: p=%v\nh1=%v\nh2=%v", p, h1, h2)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, _ := newStore(t, 4, 3)
	for i := 0; i < 6; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val(s, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(BlockID{File: 1, Index: 0})
	s.DummyRead()
	st := s.Stats()
	if st.Puts != 6 || st.Gets != 1 || st.DummyReads != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Flushes == 0 {
		t.Fatal("scheduled flushes did not run")
	}
	s.ResetStats()
	if s.Stats().Puts != 0 {
		t.Fatal("reset failed")
	}
}

func TestLevelGeometry(t *testing.T) {
	s, _ := newStore(t, 4, 3)
	if s.NumLevels() != 3 || s.BufferCap() != 4 {
		t.Fatal("geometry accessors")
	}
	if s.Capacity() != 16 {
		t.Fatalf("capacity %d, want 16", s.Capacity())
	}
	if s.ValueSize() != 128-16-48 {
		t.Fatalf("value size %d", s.ValueSize())
	}
	// Levels adjacent, doubling.
	want := uint64(0)
	for i, lv := range s.levels {
		if lv.region.Start != want {
			t.Fatalf("level %d starts at %d, want %d", i+1, lv.region.Start, want)
		}
		if lv.region.Len != uint64(4)<<uint(i+1) {
			t.Fatalf("level %d has %d slots", i+1, lv.region.Len)
		}
		want = lv.region.End()
	}
}

func TestManyBlocksChurn(t *testing.T) {
	// Random mixed workload against a mirror map.
	s, _ := newStore(t, 8, 4) // capacity 64
	rng := prng.NewFromUint64(77)
	mirror := map[BlockID][]byte{}
	for op := 0; op < 3000; op++ {
		id := BlockID{File: uint64(rng.Intn(3)), Index: uint64(rng.Intn(20))}
		switch rng.Intn(3) {
		case 0:
			v := val(s, uint64(op))
			if err := s.Put(id, v); err != nil {
				t.Fatal(err)
			}
			mirror[id] = v
		case 1:
			got, ok, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := mirror[id]
			if ok != exists {
				t.Fatalf("op %d: presence mismatch for %v: got %v want %v", op, id, ok, exists)
			}
			if ok && !bytes.Equal(got, want) {
				t.Fatalf("op %d: value mismatch for %v", op, id)
			}
		case 2:
			if err := s.DummyRead(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
