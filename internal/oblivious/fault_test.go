package oblivious

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/diskmodel"
	"steghide/internal/prng"
	"steghide/internal/sealer"
)

func TestStoreFaultDuringShuffle(t *testing.T) {
	const bufCap, levels = 4, 3
	fd := blockdev.NewFault(blockdev.NewMem(128, Footprint(bufCap, levels)))
	s, err := New(Config{
		Dev:          fd,
		Key:          sealer.DeriveKey([]byte("k"), "fault"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arm a write fault far enough ahead that it fires mid-shuffle.
	fd.FailWritesAfter(10)
	var sawErr bool
	for i := 0; i < 30; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, make([]byte, s.ValueSize())); err != nil {
			if !errors.Is(err, blockdev.ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected fault never surfaced")
	}
}

func TestStoreFaultOnGet(t *testing.T) {
	const bufCap, levels = 4, 3
	fd := blockdev.NewFault(blockdev.NewMem(128, Footprint(bufCap, levels)))
	s, err := New(Config{
		Dev:          fd,
		Key:          sealer.DeriveKey([]byte("k"), "fault2"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, make([]byte, s.ValueSize())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fd.FailReadsAfter(0)
	if _, _, err := s.Get(BlockID{File: 1, Index: 0}); !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("get fault not propagated: %v", err)
	}
}

func TestStoreClockSplitsSortAndRetrieve(t *testing.T) {
	// With a simulated disk attached, SortTime + RetrieveTime must
	// both accumulate and stay distinct.
	const bufCap, levels = 4, 3
	need := Footprint(bufCap, levels)
	disk := diskmodel.MustNew(diskmodel.Params2004(need, 4096))
	dev := blockdev.NewSim(blockdev.NewMem(128, need), disk)
	s, err := New(Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("k"), "clock"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(3),
		Clock:        disk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := prng.NewFromUint64(4).Bytes(s.ValueSize())
	for i := 0; i < 12; i++ {
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		v, ok, err := s.Get(BlockID{File: 1, Index: uint64(i)})
		if err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
		if !bytes.Equal(v, val) {
			t.Fatalf("block %d corrupted", i)
		}
	}
	st := s.Stats()
	if st.SortTime <= 0 {
		t.Fatalf("no sort time recorded: %+v", st)
	}
	if st.RetrieveTime <= 0 {
		t.Fatalf("no retrieve time recorded: %+v", st)
	}
	total := st.SortTime + st.RetrieveTime
	if total > disk.Now()+time.Millisecond {
		t.Fatalf("accounted time %v exceeds disk time %v", total, disk.Now())
	}
}
