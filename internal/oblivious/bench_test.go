package oblivious

import (
	"encoding/binary"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/sealer"
)

func benchStore(b testing.TB, bufferBlocks, levels int) *Store {
	b.Helper()
	dev := blockdev.NewMem(512, Footprint(bufferBlocks, levels)+8)
	s, err := New(Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("bench"), "obli"),
		BufferBlocks: bufferBlocks,
		Levels:       levels,
		RNG:          prng.NewFromUint64(42),
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkReshuffle drives the store's write path hard enough that
// every iteration pays for buffer flushes and level merges — the
// external-sort reshuffle whose allocation behaviour the batch plane
// and scratch reuse are meant to fix. Run with -benchmem.
func BenchmarkReshuffle(b *testing.B) {
	s := benchStore(b, 16, 4)
	val := make([]byte, s.ValueSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(val, uint64(i))
		if err := s.Put(BlockID{File: 1, Index: uint64(i % s.Capacity())}, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObliviousGet measures the steady-state probe path (one
// batched scattered read per access).
func BenchmarkObliviousGet(b *testing.B) {
	s := benchStore(b, 16, 4)
	val := make([]byte, s.ValueSize())
	for i := 0; i < s.Capacity()/2; i++ {
		binary.BigEndian.PutUint64(val, uint64(i))
		if err := s.Put(BlockID{File: 1, Index: uint64(i)}, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get(BlockID{File: 1, Index: uint64(i % (s.Capacity() / 2))}); err != nil {
			b.Fatal(err)
		}
	}
}
