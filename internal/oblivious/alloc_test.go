package oblivious

import (
	"bytes"
	"encoding/binary"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/mempool"
	"steghide/internal/prng"
	"steghide/internal/race"
	"steghide/internal/sealer"
)

// TestAllocBudgets pins the store's hot paths after the zero-alloc
// conversion. Put amortizes every buffer flush and level reshuffle the
// write stream triggers — the ISSUE bar is <=50 allocs/op amortized;
// steady state measures ~2 (map growth and entry churn at the
// freelist's edge). Get pins the probe path, whose batched scattered
// read reuses the store's slabs.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	s := benchStore(t, 16, 4)
	val := make([]byte, s.ValueSize())
	// Warm-up: fill past the first full-hierarchy reshuffle so every
	// lazily grown structure (entry freelist, sort window, spare index)
	// reaches its high-water mark.
	for i := 0; i < 4*s.Capacity(); i++ {
		binary.BigEndian.PutUint64(val, uint64(i))
		if err := s.Put(BlockID{File: 1, Index: uint64(i % s.Capacity())}, val); err != nil {
			t.Fatal(err)
		}
	}
	var i uint64
	allocs := testing.AllocsPerRun(512, func() {
		binary.BigEndian.PutUint64(val, i)
		if err := s.Put(BlockID{File: 1, Index: i % uint64(s.Capacity())}, val); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("Put (amortized over flush/reshuffle): %.2f allocs/op", allocs)
	if allocs > 50 {
		t.Errorf("Put = %.2f allocs/op amortized, budget 50", allocs)
	}

	gets := testing.AllocsPerRun(256, func() {
		if _, _, err := s.Get(BlockID{File: 1, Index: i % uint64(s.Capacity())}); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("Get (probe path): %.2f allocs/op", gets)
	if gets > 8 {
		t.Errorf("Get = %.2f allocs/op, budget 8", gets)
	}
}

// runPoolOracle executes a fixed write/read workload against a fresh
// store and returns the final device image plus every Get result. The
// flush path places buffer survivors in version order (not map order),
// so the sealed image is a deterministic function of the RNG stream —
// which is exactly what lets this oracle compare full images across
// the pool toggle.
func runPoolOracle(t *testing.T, pooled bool) ([]byte, [][]byte) {
	t.Helper()
	prev := mempool.Enabled()
	mempool.SetEnabled(pooled)
	defer mempool.SetEnabled(prev)

	dev := blockdev.NewMem(512, Footprint(16, 4)+8)
	s, err := New(Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("pool-oracle"), "obli"),
		BufferBlocks: 16,
		Levels:       4,
		RNG:          prng.NewFromUint64(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, s.ValueSize())
	for i := 0; i < 3*s.Capacity(); i++ {
		binary.BigEndian.PutUint64(val, uint64(i))
		if err := s.Put(BlockID{File: 1, Index: uint64(i % s.Capacity())}, val); err != nil {
			t.Fatal(err)
		}
	}
	var gets [][]byte
	for i := 0; i < s.Capacity(); i++ {
		v, ok, err := s.Get(BlockID{File: 1, Index: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			gets = append(gets, append([]byte(nil), v...))
		} else {
			gets = append(gets, nil)
		}
	}
	return dev.Snapshot(), gets
}

// TestMemPoolImageOracle pins the zero-alloc conversion of the store
// bit-for-bit: the entire sealed device image and every read-back
// value must be identical with the pools on and off.
func TestMemPoolImageOracle(t *testing.T) {
	imgOff, getsOff := runPoolOracle(t, false)
	imgOn, getsOn := runPoolOracle(t, true)
	if !bytes.Equal(imgOff, imgOn) {
		t.Fatal("sealed device images differ between pooled and unpooled runs")
	}
	for i := range getsOff {
		if !bytes.Equal(getsOff[i], getsOn[i]) {
			t.Fatalf("Get(%d) diverged between pooled and unpooled runs", i)
		}
	}
}
