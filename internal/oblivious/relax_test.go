package oblivious

import (
	"bytes"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/sealer"
)

// newRelaxed builds a store with the given relax factor.
func newRelaxed(t *testing.T, bufCap, levels, relax int, seed uint64) *Store {
	t.Helper()
	dev := blockdev.NewMem(128, Footprint(bufCap, levels))
	s, err := New(Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("k"), "relaxed"),
		BufferBlocks: bufCap,
		Levels:       levels,
		RNG:          prng.NewFromUint64(seed),
		RelaxFactor:  relax,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// workload drives a mixed read/write/dummy pattern and checks content.
func relaxWorkload(t *testing.T, s *Store, ops int) {
	t.Helper()
	rng := prng.NewFromUint64(99)
	mirror := map[BlockID][]byte{}
	for op := 0; op < ops; op++ {
		id := BlockID{File: 1, Index: uint64(rng.Intn(14))}
		switch rng.Intn(3) {
		case 0:
			v := prng.NewFromUint64(uint64(op)).Bytes(s.ValueSize())
			if err := s.Put(id, v); err != nil {
				t.Fatal(err)
			}
			mirror[id] = v
		case 1:
			got, ok, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := mirror[id]
			if ok != exists {
				t.Fatalf("op %d: presence mismatch for %v", op, id)
			}
			if ok && !bytes.Equal(got, want) {
				t.Fatalf("op %d: value mismatch for %v", op, id)
			}
		case 2:
			if err := s.DummyRead(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRelaxedStoreStaysCorrect(t *testing.T) {
	for _, relax := range []int{2, 4, 8} {
		s := newRelaxed(t, 4, 3, relax, uint64(relax))
		relaxWorkload(t, s, 2000)
	}
}

func TestRelaxedTradesSortsForReTouches(t *testing.T) {
	// Same workload, strict vs relaxed: the relaxed store must run
	// strictly fewer dumps and report the re-touch leak it incurs.
	strict := newRelaxed(t, 4, 3, 1, 7)
	relaxWorkload(t, strict, 2000)
	relaxed := newRelaxed(t, 4, 3, 8, 7)
	relaxWorkload(t, relaxed, 2000)

	ss, rs := strict.Stats(), relaxed.Stats()
	if rs.Dumps >= ss.Dumps {
		t.Fatalf("relaxed ran %d dumps, strict %d — no sort savings", rs.Dumps, ss.Dumps)
	}
	if rs.ShuffleReads+rs.ShuffleWrites >= ss.ShuffleReads+ss.ShuffleWrites {
		t.Fatalf("relaxed shuffle I/O %d not below strict %d",
			rs.ShuffleReads+rs.ShuffleWrites, ss.ShuffleReads+ss.ShuffleWrites)
	}
	if ss.ReTouches != 0 {
		t.Fatalf("strict schedule re-touched %d slots — invariant broken", ss.ReTouches)
	}
	if rs.ReTouches == 0 {
		t.Fatal("relaxed schedule reported no re-touches; either the leak counter or the schedule stretch is broken")
	}
	t.Logf("strict: dumps=%d shuffleIO=%d; relaxed: dumps=%d shuffleIO=%d retouches=%d",
		ss.Dumps, ss.ShuffleReads+ss.ShuffleWrites, rs.Dumps, rs.ShuffleReads+rs.ShuffleWrites, rs.ReTouches)
}

func TestRelaxedDummyOnlyTrafficNeverSorts(t *testing.T) {
	// The headline saving: pure dummy traffic on a relaxed store needs
	// no dumps at all (no real occupancy ever builds up).
	s := newRelaxed(t, 4, 3, 4, 11)
	for i := 0; i < 1000; i++ {
		if err := s.DummyRead(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Dumps != 0 {
		t.Fatalf("dummy-only traffic triggered %d dumps", st.Dumps)
	}
}

func BenchmarkRelaxAblation(b *testing.B) {
	// Ablation: shuffle I/O per access and the re-touch rate across
	// relax factors — the §7 trade-off curve.
	for _, relax := range []int{1, 2, 4, 8} {
		b.Run(map[bool]string{true: "strict", false: "relax" + string(rune('0'+relax))}[relax == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := blockdev.NewMem(128, Footprint(8, 4))
				s, err := New(Config{
					Dev: dev, Key: sealer.DeriveKey([]byte("k"), "ab"),
					BufferBlocks: 8, Levels: 4,
					RNG: prng.NewFromUint64(uint64(relax)), RelaxFactor: relax,
				})
				if err != nil {
					b.Fatal(err)
				}
				rng := prng.NewFromUint64(5)
				for op := 0; op < 3000; op++ {
					id := BlockID{File: 1, Index: uint64(rng.Intn(30))}
					if op%3 == 0 {
						if err := s.Put(id, make([]byte, s.ValueSize())); err != nil {
							b.Fatal(err)
						}
					} else if _, _, err := s.Get(id); err != nil {
						b.Fatal(err)
					}
				}
				st := s.Stats()
				accesses := float64(st.Gets - st.BufferHits + st.Puts)
				b.ReportMetric(float64(st.ShuffleReads+st.ShuffleWrites)/accesses, "shuffleIO/access")
				b.ReportMetric(float64(st.ReTouches)/accesses, "retouch/access")
			}
		})
	}
}
