package oblivious

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"steghide/internal/blockdev"
	"steghide/internal/extsort"
)

// dump merges level i (0-based) into level i+1 with O(B) memory and
// mostly sequential I/O, over the two levels' combined (adjacent)
// region:
//
//	pass A  one sequential rewrite of the combined region: entries
//	        whose slot is not a winner (per the in-memory indices:
//	        level i supersedes level i+1; consumed entries have no
//	        index at all) become dummies, everything gets a fresh
//	        nonce, and exactly |level i| dummies are tagged "low
//	        class";
//	pass B  external sort by class ‖ PRF(nonce), re-encrypting on
//	        every write: the low-class dummies land exactly in level
//	        i's region (leaving it empty) and the real entries are
//	        uniformly shuffled among level i+1's slots. The sort's
//	        final placement pass rebuilds level i+1's index via the
//	        OnOutput hook, so no separate scan is needed.
func (s *Store) dump(i int) error {
	if i+1 >= len(s.levels) {
		return fmt.Errorf("%w: cannot dump past level %d", ErrCacheFull, len(s.levels))
	}
	t0 := s.now()
	defer func() { s.stats.SortTime += s.now() - t0 }()
	s.stats.Dumps++

	li, lj := s.levels[i], s.levels[i+1]
	if lj.region.Start != li.region.End() {
		return fmt.Errorf("oblivious: levels %d/%d not adjacent", i+1, i+2)
	}
	combined := extsort.Region{Start: li.region.Start, Len: li.region.Len + lj.region.Len}
	dev := &shuffleDev{Device: s.dev, s: s}

	// Winner slots from the in-memory indices: every level i entry
	// survives; a level i+1 entry survives unless level i holds the
	// same id (the higher copy is always fresher).
	clear(s.winnersBuf)
	winners := s.winnersBuf
	reals := 0
	for _, slot := range li.index {
		winners[slot] = true
		reals++
	}
	for id, slot := range lj.index {
		if _, shadowed := li.index[id]; !shadowed {
			winners[slot] = true
			reals++
		}
	}
	if i+1 == len(s.levels)-1 && reals > lj.capReal {
		return fmt.Errorf("%w: %d distinct blocks exceed capacity %d", ErrCacheFull, reals, lj.capReal)
	}

	// Single shuffle sort by class ‖ PRF(nonce). Dedup, fresh nonces
	// and class assignment happen as run formation first reads each
	// slot (OnInput); the index of level i+1 is rebuilt as the final
	// pass places each block (OnOutput).
	lowCount := li.region.Len
	var dummies uint64
	onInput := func(pos uint64, raw []byte) error {
		e := &s.mergeEnt
		if err := s.codec.decodeInto(e, raw); err != nil {
			return err
		}
		if !winners[pos] {
			e.real = false
		}
		e.nonce = s.rng.Uint64()
		if e.real {
			e.lowClass = false
		} else {
			e.lowClass = dummies < lowCount
			dummies++
		}
		s.rng.Read(s.iv)
		return s.codec.encode(raw, e, s.iv, func(p []byte) { s.rng.Read(p) })
	}

	tagSeed := s.tagRNG.Uint64()
	tagKey := func(raw []byte) uint64 {
		// peek, not decode: the sort evaluates this once per block per
		// pass (cached in the run-formation key slice), and it needs
		// only the header — no value copy, no allocation.
		m, err := s.codec.peek(raw)
		if err != nil {
			return ^uint64(0)
		}
		tag := nonceTag(tagSeed, m.nonce) >> 1
		if !m.lowClass {
			tag |= uint64(1) << 63
		}
		return tag
	}
	clear(s.spareIndex)
	newIndex := s.spareIndex
	clear(s.realSlots)
	realSlots := s.realSlots
	var rebuildErr error
	onOutput := func(pos uint64, raw []byte) error {
		e, err := s.codec.peek(raw)
		if err != nil {
			return err
		}
		if !e.real {
			return nil
		}
		if pos < lj.region.Start {
			rebuildErr = fmt.Errorf("oblivious: real entry left in emptied level %d", i+1)
			return rebuildErr
		}
		if prev, dup := newIndex[e.id]; dup {
			rebuildErr = fmt.Errorf("oblivious: duplicate id %v at slots %d and %d after merge", e.id, prev, pos)
			return rebuildErr
		}
		newIndex[e.id] = pos
		realSlots[pos] = true
		return nil
	}
	if err := extsort.Sort(dev, combined, s.scratch, s.bufCap, tagKey,
		extsort.Options{Transform: s.reseal, OnInput: onInput, OnOutput: onOutput, Window: s.sortWin}); err != nil {
		return err
	}
	if rebuildErr != nil {
		return rebuildErr
	}
	if dummies < lowCount {
		return fmt.Errorf("oblivious: only %d dummies for a low class of %d (capacity invariant broken)", dummies, lowCount)
	}
	if len(newIndex) != reals {
		return fmt.Errorf("oblivious: merge placed %d reals, expected %d", len(newIndex), reals)
	}

	clear(li.index)
	li.realCount = 0
	li.resetEpoch(s, nil)
	// Swap rather than drop: the target level adopts the freshly built
	// index and its old map (cleared at the top of the next dump)
	// becomes the spare.
	lj.index, s.spareIndex = newIndex, lj.index
	lj.realCount = reals
	lj.resetEpoch(s, realSlots)
	return nil
}

// shuffleDev counts shuffle I/O. It forwards batches to the inner
// device's fast path (via the package helpers) so the merge sort's
// batched passes stay batched all the way down.
type shuffleDev struct {
	blockdev.Device
	s *Store
}

func (d *shuffleDev) ReadBlock(i uint64, buf []byte) error {
	if err := d.Device.ReadBlock(i, buf); err != nil {
		return err
	}
	d.s.stats.ShuffleReads++
	return nil
}

func (d *shuffleDev) WriteBlock(i uint64, data []byte) error {
	if err := d.Device.WriteBlock(i, data); err != nil {
		return err
	}
	d.s.stats.ShuffleWrites++
	return nil
}

// ReadBlocks implements blockdev.BatchDevice.
func (d *shuffleDev) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := blockdev.ReadBlocks(d.Device, start, bufs); err != nil {
		return err
	}
	d.s.stats.ShuffleReads += uint64(len(bufs))
	return nil
}

// WriteBlocks implements blockdev.BatchDevice.
func (d *shuffleDev) WriteBlocks(start uint64, data [][]byte) error {
	if err := blockdev.WriteBlocks(d.Device, start, data); err != nil {
		return err
	}
	d.s.stats.ShuffleWrites += uint64(len(data))
	return nil
}

// ReadBlocksAt implements blockdev.BatchDevice.
func (d *shuffleDev) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := blockdev.ReadBlocksAt(d.Device, idx, bufs); err != nil {
		return err
	}
	d.s.stats.ShuffleReads += uint64(len(idx))
	return nil
}

// WriteBlocksAt implements blockdev.BatchDevice.
func (d *shuffleDev) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := blockdev.WriteBlocksAt(d.Device, idx, data); err != nil {
		return err
	}
	d.s.stats.ShuffleWrites += uint64(len(idx))
	return nil
}

// nonceTag is the shuffle-placement PRF.
func nonceTag(seed, nonce uint64) uint64 {
	h := fnv.New64a()
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], seed)
	binary.BigEndian.PutUint64(b[8:], nonce)
	h.Write(b[:])
	return h.Sum64()
}
