package microbench

import (
	"fmt"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// SealPipelineSuite is the paired serial-vs-pipelined benchmark of the
// staged seal pipeline, at two levels: the raw sealer batch (pure
// AES-CBC, where multi-core speedup shows directly) and a full
// scheduler dummy burst (crypto overlapped with device I/O through
// the FIFO async ring). Both pipelined arms produce bit-identical
// output to their serial partners — only wall-clock may differ, and
// on a single-core host the pair should read roughly even.
func SealPipelineSuite() []bench {
	const n = 256
	const burst = 64
	return []bench{
		{fmt.Sprintf("seal-pipeline/serial-%d", n), func(b *testing.B) { sealBatch(b, n, false) }},
		{fmt.Sprintf("seal-pipeline/pipelined-%d", n), func(b *testing.B) { sealBatch(b, n, true) }},
		{fmt.Sprintf("seal-pipeline/burst-serial-%d", burst), func(b *testing.B) { dummyBurst(b, burst, false) }},
		{fmt.Sprintf("seal-pipeline/burst-pipelined-%d", burst), func(b *testing.B) { dummyBurst(b, burst, true) }},
	}
}

// sealBatch seals n fresh 4 KiB blocks per iteration, serially or
// across the worker pool.
func sealBatch(b *testing.B, n int, pipelined bool) {
	s, err := sealer.New(sealer.DeriveKey([]byte("bench"), "sealpipe"), benchBS)
	if err != nil {
		b.Fatal(err)
	}
	payloads := blockdev.AllocBlocks(n, s.DataSize())
	rng := prng.NewFromUint64(5)
	for _, p := range payloads {
		rng.Read(p)
	}
	nextIV := func(iv []byte) { rng.Read(iv) }
	raws := blockdev.AllocBlocks(n, benchBS)
	pipe := sealer.NewPipeline(0)
	b.SetBytes(int64(n * benchBS))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pipelined {
			err = pipe.SealMany(s, raws, nextIV, payloads)
		} else {
			err = s.SealMany(raws, nextIV, payloads)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// dummyBurst runs scheduler dummy bursts over a Construction-1 agent
// on an in-memory volume, serial or through the staged pipeline.
func dummyBurst(b *testing.B, burst int, pipelined bool) {
	vol, err := stegfs.Format(blockdev.NewMem(benchBS, 1<<11),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("sp")})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := steghide.NewNonVolatile(vol, []byte("bench-secret"), prng.NewFromUint64(6))
	if err != nil {
		b.Fatal(err)
	}
	if pipelined {
		agent.EnablePipeline(0)
	}
	b.SetBytes(int64(2 * burst * benchBS)) // one read + one write per block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.DummyUpdateBurst(burst); err != nil {
			b.Fatal(err)
		}
	}
}
