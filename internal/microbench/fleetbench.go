package microbench

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"steghide"
	"steghide/internal/prng"
)

// Fleet benchmark: aggregate Figure-6 update throughput of one
// deniable namespace sharded over sixteen agent daemons (the
// steghide.Cluster facade), against the single-daemon wire numbers
// above. Every shard runs its own scheduler, so session crypto and
// device I/O spread across the fleet; the keyed ring decides which
// daemon each worker's file — and therefore each update — lands on.
// One op = one single-block Figure-6 data update through the cluster.

const fleetShards = 16

func fleetPath(i int) string { return fmt.Sprintf("/f%02d", i) }

// fleetCluster serves nShards single-volume daemons, dials them as one
// cluster, lays dummy cover on every shard, and populates one file per
// worker. Returns the cluster and the shards' payload size.
func fleetCluster(b *testing.B, nShards, nClients int) (*steghide.Cluster, int) {
	b.Helper()
	ctx := context.Background()
	addrs := make([]string, nShards)
	payload := 0
	for i := 0; i < nShards; i++ {
		blocks := uint64(nClients*(ccFileBlocks+16) + ccDummyBlocks + 128)
		stack, err := steghide.Mount(steghide.NewMemDevice(ccBlockSize, blocks),
			steghide.WithFormat(steghide.FormatOptions{
				KDFIterations: 4, FillSeed: []byte(fmt.Sprintf("fleet-%02d", i))}),
			steghide.WithConstruction2(),
			steghide.WithSeed([]byte(fmt.Sprintf("fleet-agent-%02d", i))))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { stack.Close() })
		srv, err := steghide.NewAgentServer("127.0.0.1:0", stack.Agent2())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
		payload = stack.Volume().PayloadSize()
	}
	cl, err := steghide.DialClusterFS(ctx, addrs, "bench", "bench-pass")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	if err := cl.CoverAll(ctx, "/cover", ccDummyBlocks); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, ccFileBlocks*payload)
	for i := 0; i < nClients; i++ {
		if err := steghide.WriteFile(ctx, cl, fleetPath(i), data); err != nil {
			b.Fatal(err)
		}
	}
	return cl, payload
}

// concurrentFleet drives n workers, each rewriting random blocks of
// its own file through the shared cluster handle.
func concurrentFleet(b *testing.B, n int) {
	cl, ps := fleetCluster(b, fleetShards, n)
	ctx := context.Background()
	handles := make([]steghide.WriteHandle, n)
	for i := range handles {
		w, err := cl.OpenWrite(ctx, fleetPath(i))
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = w
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, w := range handles {
		wg.Add(1)
		go func(i int, w steghide.WriteHandle) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(4000 + i))
			chunk := make([]byte, ps)
			for k := share(b.N, n, i); k > 0; k-- {
				off := int64(rng.Intn(ccFileBlocks)) * int64(ps)
				if _, err := w.WriteAt(chunk, off); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	b.StopTimer()
	for _, w := range handles {
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// FleetSuite returns the sharded-fleet entries of the scaling
// benchmark: the 16-daemon cluster at the standard worker counts.
func FleetSuite() []bench {
	var out []bench
	for _, n := range []int{4, 16} {
		n := n
		out = append(out, bench{
			name: fmt.Sprintf("concurrent-clients/fleet-%dx%d", fleetShards, n),
			fn:   func(b *testing.B) { concurrentFleet(b, n) },
		})
	}
	return out
}
