package microbench

import (
	"fmt"
	"testing"
)

// BenchmarkConcurrentClients is the go-test entry point for the
// multi-client scaling suite benchrunner emits into
// BENCH_results.json: aggregate update throughput at 1/4/16/64
// concurrent sessions, locally and over TCP. One op = one Figure-6
// data update, so aggregate throughput scaling shows directly as
// ns/op shrinking while the session count grows.
func BenchmarkConcurrentClients(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("local-%d", n), func(b *testing.B) { concurrentLocal(b, n) })
	}
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("wire-%d", n), func(b *testing.B) { concurrentWire(b, n) })
	}
	// The sharded-fleet variant: the same aggregate-update workload
	// spread by the keyed ring over a 16-daemon cluster, one scheduler
	// per shard.
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("fleet-16x%d", n), func(b *testing.B) { concurrentFleet(b, n) })
	}
	// The wire protocol's paired pipelining benchmark: the identical
	// N-session × 8-deep read workload through the v1 lock-step client
	// and the v2 mux. The pipelined arm's gain over lockstep is pure
	// transport: request IDs let all N×8 reads share connections
	// in flight instead of serializing per connection.
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("pipeline-lockstep-%d", n), func(b *testing.B) { pipelineWire(b, n, true) })
		b.Run(fmt.Sprintf("pipeline-pipelined-%d", n), func(b *testing.B) { pipelineWire(b, n, false) })
	}
}
