package microbench

import (
	"testing"

	"steghide/internal/mempool"
)

// MemPoolSuite is the memory plane's paired benchmark arms: each
// converted hot path runs once with the pools disabled (the
// STEGHIDE_MEMPOOL=0 fallback, plain allocation) and once pooled, so
// BENCH_results.json carries both sides of the trade. The oracles pin
// the two arms bit-identical in behaviour; the arms exist to show the
// allocs/op and bytes/op gap and to catch a regression where pooling
// stops paying for itself.
func MemPoolSuite() []bench {
	pooled := func(on bool, fn func(*testing.B)) func(*testing.B) {
		return func(b *testing.B) {
			prev := mempool.Enabled()
			mempool.SetEnabled(on)
			defer mempool.SetEnabled(prev)
			fn(b)
		}
	}
	burst := func(b *testing.B) { metricsBurst(b, 64, false) }
	return []bench{
		{"mempool/wire-batch-off", pooled(false, func(b *testing.B) { remoteRead(b, true) })},
		{"mempool/wire-batch-on", pooled(true, func(b *testing.B) { remoteRead(b, true) })},
		{"mempool/reshuffle-off", pooled(false, obliviousReshuffle)},
		{"mempool/reshuffle-on", pooled(true, obliviousReshuffle)},
		{"mempool/seq-scan-off", pooled(false, stegfsScan)},
		{"mempool/seq-scan-on", pooled(true, stegfsScan)},
		{"mempool/burst-off", pooled(false, burst)},
		{"mempool/burst-on", pooled(true, burst)},
	}
}
