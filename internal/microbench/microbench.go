// Package microbench defines the fixed micro-benchmark suite that
// cmd/benchrunner can run outside `go test` and emit as
// machine-readable JSON (BENCH_results.json), giving successive PRs a
// perf trajectory to compare against. The suite covers the hot paths
// the batch I/O plane serves — raw device batches (local and remote),
// the oblivious reshuffle, a sequential hidden-file scan — and the
// multi-client scaling curve of the update scheduler
// (concurrent-clients/local-N and /wire-N: aggregate Figure-6 update
// throughput at 1/4/16/64 concurrent sessions) — plus the wire
// protocol's paired pipelining benchmark (wire-pipeline/lockstep-N vs
// /pipelined-N: the same N-session × 8-deep read workload through the
// v1 lock-step client and the v2 mux), the staged seal pipeline's
// paired arms (seal-pipeline/serial-N vs /pipelined-N, and the
// burst-level pair over a live scheduler), and the observability
// plane's paired overhead arms (obs/update-metrics-off vs /on: the
// same update burst with and without the metric registry attached).
package microbench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/journal"
	"steghide/internal/oblivious"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
	"steghide/internal/wire"
)

// Result is one benchmark's outcome in stable, diffable units.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
}

// bench is one suite entry.
type bench struct {
	name string
	fn   func(b *testing.B)
}

const (
	benchBS    = 4096
	benchBatch = 64
)

func suite() []bench {
	s := []bench{
		{"batch-read-mem/loop", func(b *testing.B) { devRead(b, blockdev.NewMem(benchBS, 1<<10), false) }},
		{"batch-read-mem/batched", func(b *testing.B) { devRead(b, blockdev.NewMem(benchBS, 1<<10), true) }},
		{"batch-read-wire/loop", func(b *testing.B) { remoteRead(b, false) }},
		{"batch-read-wire/batched", func(b *testing.B) { remoteRead(b, true) }},
		{"oblivious-reshuffle", obliviousReshuffle},
		{"stegfs-seq-scan", stegfsScan},
		{"journal/append", journalAppend},
		{"journal/recover", journalRecover},
	}
	s = append(s, ConcurrentClientSuite()...)
	s = append(s, FleetSuite()...)
	s = append(s, PipelineSuite()...)
	s = append(s, SealPipelineSuite()...)
	s = append(s, ObsSuite()...)
	return append(s, MemPoolSuite()...)
}

// Run executes the whole suite and returns the results.
func Run() []Result {
	var out []Result
	for _, bm := range suite() {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		res := Result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		out = append(out, res)
	}
	return out
}

// WriteJSON runs the suite and writes it to path.
func WriteJSON(path string) error {
	results := Run()
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("microbench: %w", err)
	}
	return nil
}

func devRead(b *testing.B, d blockdev.Device, batched bool) {
	bufs := blockdev.AllocBlocks(benchBatch, d.BlockSize())
	b.SetBytes(int64(benchBatch * d.BlockSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if err := blockdev.ReadBlocks(d, 0, bufs); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for j := range bufs {
			if err := d.ReadBlock(uint64(j), bufs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func remoteRead(b *testing.B, batched bool) {
	srv, err := wire.NewStorageServer("127.0.0.1:0", blockdev.NewMem(benchBS, 1<<8), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	dev, err := wire.DialStorage(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	devRead(b, dev, batched)
}

func obliviousReshuffle(b *testing.B) {
	const bufBlocks, levels = 16, 4
	dev := blockdev.NewMem(512, oblivious.Footprint(bufBlocks, levels)+8)
	s, err := oblivious.New(oblivious.Config{
		Dev:          dev,
		Key:          sealer.DeriveKey([]byte("bench"), "obli"),
		BufferBlocks: bufBlocks,
		Levels:       levels,
		RNG:          prng.NewFromUint64(42),
	})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, s.ValueSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(val, uint64(i))
		if err := s.Put(oblivious.BlockID{File: 1, Index: uint64(i % s.Capacity())}, val); err != nil {
			b.Fatal(err)
		}
	}
}

// journalAppend measures the per-element cost of the durability plane:
// one sealed intent slot write, the price every stream element pays
// when journaling is on.
func journalAppend(b *testing.B) {
	vol, err := stegfs.Format(blockdev.NewMem(benchBS, 1<<10),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("jb"), JournalBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	j, err := journal.Open(vol, sealer.DeriveKey([]byte("bench"), "journal"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(benchBS))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.AppendReloc(uint64(300+i%32), uint64(400+i%64), uint64(500+i%64)); err != nil {
			b.Fatal(err)
		}
	}
}

// journalRecover measures mount-time recovery: scan a populated ring
// and resolve every intent against the on-disk headers.
func journalRecover(b *testing.B) {
	vol, err := stegfs.Format(blockdev.NewMem(benchBS, 1<<11),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("jr"), JournalBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := steghide.NewNonVolatile(vol, []byte("bench-secret"), prng.NewFromUint64(3))
	if err != nil {
		b.Fatal(err)
	}
	if err := agent.EnableJournal(); err != nil {
		b.Fatal(err)
	}
	if _, err := agent.Create("u", "/f"); err != nil {
		b.Fatal(err)
	}
	content := make([]byte, 32*vol.PayloadSize())
	if err := agent.Write("/f", content, 0); err != nil {
		b.Fatal(err)
	}
	if err := agent.Sync("/f"); err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, vol.PayloadSize())
	for i := 0; i < 200; i++ {
		if err := agent.Write("/f", chunk, uint64(i%32)*uint64(vol.PayloadSize())); err != nil {
			b.Fatal(err)
		}
	}
	if err := agent.Sync("/f"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

func stegfsScan(b *testing.B) {
	vol, err := stegfs.Format(blockdev.NewMem(512, 1<<14),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("b")})
	if err != nil {
		b.Fatal(err)
	}
	src := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(1))
	fak := stegfs.DeriveFAK("u", "/scan", vol)
	f, err := stegfs.CreateFile(vol, fak, "/scan", src)
	if err != nil {
		b.Fatal(err)
	}
	const blocks = 128
	data := prng.NewFromUint64(2).Bytes(blocks * vol.PayloadSize())
	if _, err := f.WriteAt(data, 0, stegfs.InPlacePolicy{Vol: vol}); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
