package microbench

import (
	"fmt"
	"sync"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
	"steghide/internal/wire"
)

// Concurrent-clients benchmark: aggregate Figure-6 update throughput
// as the session count grows, on the Mem device directly and through
// the TCP agent protocol. Before the scheduler (PR 2) every session
// serialized on one agent-wide mutex, so 16 sessions ran at 1-session
// speed; with the per-volume scheduler their crypto and device I/O
// overlap. One op = one single-block Figure-6 data update, so ns/op
// is inverse aggregate throughput.

const (
	ccBlockSize   = 1024
	ccDummyBlocks = 96 // dummy cover per session
	ccFileBlocks  = 8  // written blocks per session's file
)

// ccAgent formats a volume sized for n sessions and logs each one in
// with cover and a populated file.
func ccAgent(b *testing.B, n int) (*stegfs.Volume, []*steghide.Session) {
	b.Helper()
	blocks := uint64(n*(ccDummyBlocks+ccFileBlocks+16) + 128)
	vol, err := stegfs.Format(blockdev.NewMem(ccBlockSize, blocks),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("cc")})
	if err != nil {
		b.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(7))
	sessions := make([]*steghide.Session, n)
	data := make([]byte, ccFileBlocks*vol.PayloadSize())
	for i := range sessions {
		s, err := agent.LoginWithPassphrase(fmt.Sprintf("u%02d", i), fmt.Sprintf("pw-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.CreateDummy("/d", ccDummyBlocks); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Create("/f"); err != nil {
			b.Fatal(err)
		}
		if err := s.Write("/f", data, 0); err != nil {
			b.Fatal(err)
		}
		sessions[i] = s
	}
	return vol, sessions
}

// share splits b.N updates across n workers.
func share(total, workers, i int) int {
	n := total / workers
	if i < total%workers {
		n++
	}
	return n
}

// concurrentLocal drives n in-process sessions concurrently.
func concurrentLocal(b *testing.B, n int) {
	vol, sessions := ccAgent(b, n)
	ps := vol.PayloadSize()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *steghide.Session) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(1000 + i))
			chunk := make([]byte, ps)
			for k := share(b.N, n, i); k > 0; k-- {
				off := uint64(rng.Intn(ccFileBlocks)) * uint64(ps)
				if err := s.Write("/f", chunk, off); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
}

// concurrentWire drives n sessions through the TCP agent protocol,
// one connection per session.
func concurrentWire(b *testing.B, n int) {
	blocks := uint64(n*(ccDummyBlocks+ccFileBlocks+16) + 128)
	vol, err := stegfs.Format(blockdev.NewMem(ccBlockSize, blocks),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("ccw")})
	if err != nil {
		b.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(8))
	srv, err := wire.NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	clients := make([]*wire.Client, n)
	ps := vol.PayloadSize()
	data := make([]byte, ccFileBlocks*ps)
	for i := range clients {
		cli, err := wire.DialAgent(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if err := cli.Login(fmt.Sprintf("u%02d", i), fmt.Sprintf("pw-%d", i)); err != nil {
			b.Fatal(err)
		}
		if err := cli.CreateDummy("/d", ccDummyBlocks); err != nil {
			b.Fatal(err)
		}
		if err := cli.Create("/f"); err != nil {
			b.Fatal(err)
		}
		if err := cli.Write("/f", data, 0); err != nil {
			b.Fatal(err)
		}
		clients[i] = cli
	}
	defer func() {
		for _, cli := range clients {
			cli.Close()
		}
	}()

	b.ResetTimer()
	var wg sync.WaitGroup
	for i, cli := range clients {
		wg.Add(1)
		go func(i int, cli *wire.Client) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(2000 + i))
			chunk := make([]byte, ps)
			for k := share(b.N, n, i); k > 0; k-- {
				off := uint64(rng.Intn(ccFileBlocks)) * uint64(ps)
				if err := cli.Write("/f", chunk, off); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, cli)
	}
	wg.Wait()
}

// ConcurrentClientSuite returns the suite entries for the scaling
// benchmark at the standard session counts.
func ConcurrentClientSuite() []bench {
	var out []bench
	for _, n := range []int{1, 4, 16, 64} {
		n := n
		out = append(out, bench{
			name: fmt.Sprintf("concurrent-clients/local-%d", n),
			fn:   func(b *testing.B) { concurrentLocal(b, n) },
		})
	}
	for _, n := range []int{1, 4, 16, 64} {
		n := n
		out = append(out, bench{
			name: fmt.Sprintf("concurrent-clients/wire-%d", n),
			fn:   func(b *testing.B) { concurrentWire(b, n) },
		})
	}
	return out
}

// Pipelined-vs-lockstep pairing: the same workload — n sessions, each
// keeping pipeDepth single-block reads in flight on its one
// connection — driven once through the v1 lock-step client (the
// connection mutex serializes the depth) and once through the v2 mux
// (all n×depth requests in flight at once). One op = one read RTT, so
// ns/op is inverse aggregate wire throughput. Reads are served from
// the session's open file without touching the Figure-6 scheduler,
// keeping the comparison transport-bound rather than crypto-bound.

const (
	pipeDepth      = 8
	pipeFileBlocks = 8
)

// pipelineWire builds the fixture and drives n connections × pipeDepth
// goroutines of single-block reads.
func pipelineWire(b *testing.B, n int, v1 bool) {
	blocks := uint64(n*(ccDummyBlocks/2+pipeFileBlocks+16) + 128)
	vol, err := stegfs.Format(blockdev.NewMem(ccBlockSize, blocks),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("ccp")})
	if err != nil {
		b.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(9))
	srv, err := wire.NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	dial := wire.DialAgent
	if v1 {
		dial = wire.DialAgentV1
	}
	clients := make([]*wire.Client, n)
	ps := vol.PayloadSize()
	data := make([]byte, pipeFileBlocks*ps)
	for i := range clients {
		cli, err := dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if err := cli.Login(fmt.Sprintf("u%02d", i), fmt.Sprintf("pw-%d", i)); err != nil {
			b.Fatal(err)
		}
		if err := cli.CreateDummy("/d", ccDummyBlocks/2); err != nil {
			b.Fatal(err)
		}
		if err := cli.Create("/f"); err != nil {
			b.Fatal(err)
		}
		if err := cli.Write("/f", data, 0); err != nil {
			b.Fatal(err)
		}
		clients[i] = cli
	}
	defer func() {
		for _, cli := range clients {
			cli.Close()
		}
	}()

	workers := n * pipeDepth
	b.SetBytes(int64(ps))
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := clients[w%n]
			rng := prng.NewFromUint64(uint64(3000 + w))
			buf := make([]byte, ps)
			for k := share(b.N, workers, w); k > 0; k-- {
				off := uint64(rng.Intn(pipeFileBlocks)) * uint64(ps)
				if _, err := cli.Read("/f", buf, off); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// PipelineSuite returns the paired lockstep/pipelined entries at the
// acceptance point (16 sessions × deep pipelines) plus a small size.
func PipelineSuite() []bench {
	var out []bench
	for _, n := range []int{4, 16} {
		n := n
		out = append(out,
			bench{
				name: fmt.Sprintf("wire-pipeline/lockstep-%d", n),
				fn:   func(b *testing.B) { pipelineWire(b, n, true) },
			},
			bench{
				name: fmt.Sprintf("wire-pipeline/pipelined-%d", n),
				fn:   func(b *testing.B) { pipelineWire(b, n, false) },
			},
		)
	}
	return out
}
