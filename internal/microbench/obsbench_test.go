package microbench

import "testing"

// BenchmarkObsOverhead is the go-test entry point for the paired
// observability-overhead arms benchrunner emits into
// BENCH_results.json: the identical scheduler update burst with the
// metric registry detached and attached. The on/off ratio is the
// whole cost of the observability plane on the update hot path.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("update-metrics-off", func(b *testing.B) { metricsBurst(b, 64, false) })
	b.Run("update-metrics-on", func(b *testing.B) { metricsBurst(b, 64, true) })
}
