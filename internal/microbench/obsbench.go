package microbench

import (
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/obs"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// ObsSuite is the paired overhead benchmark of the observability
// plane: the same scheduler update burst with no registry attached
// and with the full metric set live (counters, latency and iteration
// histograms). The acceptance bar in ISSUE 8 is ≤2% on this pair —
// the instrumentation is a handful of atomics per update and must
// stay invisible next to the seal+I/O cost it measures.
func ObsSuite() []bench {
	const burst = 64
	return []bench{
		{"obs/update-metrics-off", func(b *testing.B) { metricsBurst(b, burst, false) }},
		{"obs/update-metrics-on", func(b *testing.B) { metricsBurst(b, burst, true) }},
	}
}

// metricsBurst runs scheduler dummy bursts over a Construction-1
// agent on an in-memory volume, with or without metrics attached.
func metricsBurst(b *testing.B, burst int, instrumented bool) {
	vol, err := stegfs.Format(blockdev.NewMem(benchBS, 1<<11),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("ob")})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := steghide.NewNonVolatile(vol, []byte("bench-secret"), prng.NewFromUint64(9))
	if err != nil {
		b.Fatal(err)
	}
	if instrumented {
		agent.EnableMetrics(obs.NewRegistry(), "bench")
	}
	b.SetBytes(int64(2 * burst * benchBS)) // one read + one write per block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.DummyUpdateBurst(burst); err != nil {
			b.Fatal(err)
		}
	}
}
