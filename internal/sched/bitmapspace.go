package sched

import (
	"errors"
	"sync"

	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// ErrNoFreeSpace reports that the update space holds no relocatable
// (dummy) blocks, so the Figure-6 loop cannot terminate.
var ErrNoFreeSpace = errors.New("sched: update space has no free blocks")

// BitmapSpace is the Construction-1 style Space (§4.1): draws are
// uniform over the whole steg space, the data/dummy partition is a
// shared bitmap, and every block — data or dummy — reseals under the
// agent's one global key, so classification never goes stale in a way
// that matters: the camouflage action is the same for every block.
type BitmapSpace struct {
	source *stegfs.BitmapSource
	seal   *sealer.Sealer

	// vacate, when set (journaled agents), intercepts the release of a
	// relocation's vacated block: the block stays out of the dummy pool
	// — in "limbo", still marked used — until the owning file's header
	// save commits the move, because until then the on-disk header
	// still references it and a refill or reallocation would destroy
	// committed data the moment a crash rolls the relocation back.
	vacate func(oldLoc, newLoc uint64)

	mu    sync.Mutex // guards rng
	rng   *prng.PRNG
	first uint64
	span  uint64
}

// NewBitmapSpace builds the space over source; seal is the agent's
// global block sealer, rng drives the uniform draws.
func NewBitmapSpace(source *stegfs.BitmapSource, seal *sealer.Sealer, rng *prng.PRNG) *BitmapSpace {
	first, n := source.SpaceBounds()
	return &BitmapSpace{source: source, seal: seal, rng: rng, first: first, span: n - first}
}

func (b *BitmapSpace) draw() uint64 {
	b.mu.Lock()
	loc := b.first + b.rng.Uint64n(b.span)
	b.mu.Unlock()
	return loc
}

// DrawUpdate implements Space.
func (b *BitmapSpace) DrawUpdate(loc uint64) (Target, error) {
	if b.source.FreeCount() == 0 {
		return Target{}, ErrNoFreeSpace
	}
	b2 := b.draw()
	switch {
	case b2 == loc:
		return Target{Loc: loc, Kind: Self}, nil
	case b.source.IsFree(b2):
		// First phase of the relocation commit: acquiring B2 removes
		// it from the dummy pool so no concurrent draw can pick it. A
		// lost acquire race means another update claimed it first.
		if !b.source.Acquire(b2) {
			return Target{Kind: Redraw}, nil
		}
		return Target{Loc: b2, Kind: Relocate}, nil
	default:
		return Target{Loc: b2, Kind: Camouflage}, nil
	}
}

// SetVacateHook diverts vacated blocks into the journal adapter's
// limbo instead of releasing them immediately. Install before
// concurrent use.
func (b *BitmapSpace) SetVacateHook(fn func(oldLoc, newLoc uint64)) { b.vacate = fn }

// CommitRelocate implements Space: the vacated block becomes a dummy —
// immediately in the memory-only protocol, or after the owning file's
// next durable save when a journal holds it in limbo.
func (b *BitmapSpace) CommitRelocate(oldLoc, newLoc uint64, _ *sealer.Sealer) {
	if b.vacate != nil {
		b.vacate(oldLoc, newLoc)
		return
	}
	b.source.Release(oldLoc)
}

// AbortRelocate implements Space: the claimed target returns to the
// dummy pool; the data never left oldLoc.
func (b *BitmapSpace) AbortRelocate(_, newLoc uint64) {
	b.source.Release(newLoc)
}

// DrawDummy implements Space.
func (b *BitmapSpace) DrawDummy() (uint64, error) { return b.draw(), nil }

// DrawDummyBatch implements Space.
func (b *BitmapSpace) DrawDummyBatch(locs []uint64) (int, error) {
	b.mu.Lock()
	for i := range locs {
		locs[i] = b.first + b.rng.Uint64n(b.span)
	}
	b.mu.Unlock()
	return len(locs), nil
}

// Classify implements Space: under one global key a dummy update is
// always a reseal, whatever the block currently holds.
func (b *BitmapSpace) Classify(uint64) (Action, *sealer.Sealer) {
	return ActReseal, b.seal
}
