package sched

import (
	"slices"
	"sync"
)

// defaultShards is the number of lock shards when the caller does not
// choose one. Sharding keyed by block number lets updates on different
// blocks proceed concurrently while read-modify-write cycles on the
// same block serialize; 1024 shards cost 8 KB and make false sharing
// of hot blocks unlikely at realistic session counts.
const defaultShards = 1024

// BlockLocks is a sharded per-block lock map: block loc is guarded by
// shard loc mod n. It implements stegfs.BlockLocker, so one instance
// can serialize both the scheduler's own I/O and the Volume-level
// writes the file layer issues (growth, header/pointer saves).
//
// Deadlock discipline: every multi-block acquisition (Lock2,
// LockBlocks) takes shards in ascending index order, and no caller
// acquires a second shard while holding one outside those helpers.
type BlockLocks struct {
	shards []sync.Mutex
	mask   uint64
}

// NewBlockLocks builds a lock map of at least n shards (rounded up to
// a power of two); n <= 0 selects the default.
func NewBlockLocks(n int) *BlockLocks {
	if n <= 0 {
		n = defaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &BlockLocks{shards: make([]sync.Mutex, size), mask: uint64(size - 1)}
}

// LockBlock locks the shard guarding block loc.
func (l *BlockLocks) LockBlock(loc uint64) { l.shards[loc&l.mask].Lock() }

// UnlockBlock unlocks the shard guarding block loc.
func (l *BlockLocks) UnlockBlock(loc uint64) { l.shards[loc&l.mask].Unlock() }

// Lock2 locks the shards guarding blocks a and b (one acquisition if
// they share a shard) and returns the matching unlock.
func (l *BlockLocks) Lock2(a, b uint64) (unlock func()) {
	i, j := a&l.mask, b&l.mask
	if i == j {
		l.shards[i].Lock()
		return func() { l.shards[i].Unlock() }
	}
	if i > j {
		i, j = j, i
	}
	l.shards[i].Lock()
	l.shards[j].Lock()
	return func() {
		l.shards[j].Unlock()
		l.shards[i].Unlock()
	}
}

// LockBlocks locks every shard guarding a block in locs and returns
// the matching unlock. Duplicate blocks and shard collisions are
// deduplicated.
func (l *BlockLocks) LockBlocks(locs []uint64) (unlock func()) {
	if len(locs) == 0 {
		return func() {}
	}
	idx := make([]uint64, 0, len(locs))
	for _, loc := range locs {
		idx = append(idx, loc&l.mask)
	}
	slices.Sort(idx)
	idx = slices.Compact(idx)
	for _, i := range idx {
		l.shards[i].Lock()
	}
	return func() {
		for k := len(idx) - 1; k >= 0; k-- {
			l.shards[idx[k]].Unlock()
		}
	}
}
