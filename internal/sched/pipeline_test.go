package sched

import (
	"bytes"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// tracedRig is a bitmap rig over a traced in-memory device, so a test
// can compare the full observable stream (every block read and write,
// in order) and the final volume image across scheduler configs.
type tracedRig struct {
	s      *Scheduler
	vol    *stegfs.Volume
	source *stegfs.BitmapSource
	mem    *blockdev.Mem
	tap    *blockdev.Collector
}

// newTracedRig builds a rig whose every input — format fill, volume
// RNG, space draws — is seeded, so two rigs are bit-identical twins.
func newTracedRig(t testing.TB, nBlocks uint64, utilization float64) *tracedRig {
	t.Helper()
	mem := blockdev.NewMem(128, nBlocks)
	tap := &blockdev.Collector{}
	vol, err := stegfs.Format(blockdev.NewTraced(mem, tap),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("pipe")})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(23)
	source := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc"))
	seal, err := vol.NewSealer([32]byte{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	s := New(vol, NewBitmapSpace(source, seal, rng.Child("draws")))
	first, n := source.SpaceBounds()
	span := n - first
	for span-source.FreeCount() < uint64(float64(span)*utilization) {
		if _, err := source.AcquireRandom(); err != nil {
			t.Fatal(err)
		}
	}
	tap.Reset()
	return &tracedRig{s: s, vol: vol, source: source, mem: mem, tap: tap}
}

// runBurstWorkload drives one deterministic mixed workload: real
// updates interleaved with bursts of every interesting size relative
// to burstChunk (smaller, exact, multiple, multiple-plus-remainder).
func runBurstWorkload(t testing.TB, r *tracedRig) {
	t.Helper()
	seal, err := r.vol.NewSealer([32]byte{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := r.source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	payload := prng.NewFromUint64(3).Bytes(r.vol.PayloadSize())
	if err := r.vol.WriteSealed(loc, seal, payload); err != nil {
		t.Fatal(err)
	}
	cur := loc
	for _, n := range []int{1, 5, burstChunk, 2 * burstChunk, 40, 64} {
		if _, err := r.s.DummyUpdateBurst(n); err != nil {
			t.Fatal(err)
		}
		next, err := r.s.Update(cur, seal, payload)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	got, err := r.vol.ReadSealed(cur, seal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by workload")
	}
}

// TestBurstPipelineBitIdentical is the scheduler half of the
// determinism oracle: with the pipeline enabled, the device must see
// the same operations in the same order on the same blocks, the final
// volume image must match byte for byte, and every counter must agree
// with the serial scheduler — across burst sizes below, at, and above
// the chunk size, refill and reseal targets mixed.
func TestBurstPipelineBitIdentical(t *testing.T) {
	serial := newTracedRig(t, 1024, 0.4)
	runBurstWorkload(t, serial)

	for _, workers := range []int{1, 4} {
		piped := newTracedRig(t, 1024, 0.4)
		piped.s.EnablePipeline(workers)
		if !piped.s.Pipelined() {
			t.Fatal("EnablePipeline did not take")
		}
		runBurstWorkload(t, piped)

		se, pe := serial.tap.Events(), piped.tap.Events()
		if len(se) != len(pe) {
			t.Fatalf("workers=%d: %d traced ops serial vs %d pipelined", workers, len(se), len(pe))
		}
		for i := range se {
			if se[i].Op != pe[i].Op || se[i].Block != pe[i].Block || se[i].Count != pe[i].Count {
				t.Fatalf("workers=%d: op %d diverged: serial %+v pipelined %+v",
					workers, i, se[i], pe[i])
			}
		}
		if !bytes.Equal(serial.mem.Snapshot(), piped.mem.Snapshot()) {
			t.Fatalf("workers=%d: final volume images differ", workers)
		}
		if serial.s.Stats() != piped.s.Stats() {
			t.Fatalf("workers=%d: counters diverged: serial %+v pipelined %+v",
				workers, serial.s.Stats(), piped.s.Stats())
		}
	}
}

// TestBurstPipelinedIntents pins that the pipelined burst keeps the
// journal contract: one intent record per stream element, emitted on
// the serial control path before any payload I/O.
func TestBurstPipelinedIntents(t *testing.T) {
	r := newTracedRig(t, 512, 0.3)
	r.s.EnablePipeline(4)
	ci := &countingIntents{}
	r.s.SetIntentLog(ci)
	n, err := r.s.DummyUpdateBurst(48)
	if err != nil {
		t.Fatal(err)
	}
	if ci.dummies != n {
		t.Fatalf("%d intents for %d burst elements", ci.dummies, n)
	}
}

// TestBurstPipelinedConcurrent runs the concurrent-stream stress with
// the pipeline on: correctness (not determinism — interleaving with
// live updates is scheduling-dependent either way) under the race
// detector, payloads intact, counters exact.
func TestBurstPipelinedConcurrent(t *testing.T) {
	s, vol, source := newBitmapRig(t, 2048, 0.3)
	s.EnablePipeline(4)
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	payload := prng.NewFromUint64(9).Bytes(vol.PayloadSize())
	if err := vol.WriteSealed(loc, seal, payload); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		cur := loc
		for k := 0; k < 60; k++ {
			next, err := s.Update(cur, seal, payload)
			if err != nil {
				done <- err
				return
			}
			cur = next
		}
		loc = cur
		done <- nil
	}()
	go func() {
		for k := 0; k < 12; k++ {
			if _, err := s.DummyUpdateBurst(24); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, err := vol.ReadSealed(loc, seal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted under pipelined concurrency")
	}
	st := s.Stats()
	if st.DataUpdates != 60 || st.DummyUpdates != 12*24 {
		t.Fatalf("counters off: %+v", st)
	}
}
