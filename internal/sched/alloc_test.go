package sched

import (
	"testing"

	"steghide/internal/mempool"
	"steghide/internal/race"
)

// TestAllocBudgets pins the dummy-burst execute path's steady-state
// heap behaviour: after the first burst grows the pooled arena to its
// high-water mark, a 64-element burst must run in a handful of
// allocations (lock table bookkeeping, the unlock closure), never the
// per-block buffers it used to make. The ceiling is deliberately loose
// against incidental churn but far below the old cost of one slab +
// one IV + one fill per element.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	if !mempool.Enabled() {
		t.Skip("budgets pin the pooled configuration (STEGHIDE_MEMPOOL=0 set)")
	}
	s, _, _ := newBitmapRig(t, 1024, 0.5)
	const burst = 64
	// Warm-up: grow the arena and the draw/seal slices once.
	for i := 0; i < 3; i++ {
		if _, err := s.DummyUpdateBurst(burst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.DummyUpdateBurst(burst); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("DummyUpdateBurst(%d): %.1f allocs/burst (%.3f/element)", burst, allocs, allocs/burst)
	if allocs > 16 {
		t.Errorf("DummyUpdateBurst(%d) = %.1f allocs/burst, budget 16", burst, allocs)
	}
}
