package sched

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// newBitmapRig formats a small volume and builds a scheduler over a
// BitmapSpace at roughly the given utilization.
func newBitmapRig(t testing.TB, nBlocks uint64, utilization float64) (*Scheduler, *stegfs.Volume, *stegfs.BitmapSource) {
	t.Helper()
	vol, err := stegfs.Format(blockdev.NewMem(128, nBlocks),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("sched")})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(17)
	source := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc"))
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(vol, NewBitmapSpace(source, seal, rng.Child("draws")))
	first, n := source.SpaceBounds()
	span := n - first
	for span-source.FreeCount() < uint64(float64(span)*utilization) {
		if _, err := source.AcquireRandom(); err != nil {
			t.Fatal(err)
		}
	}
	return s, vol, source
}

func TestSchedulerUpdatePreservesPayloadAndPartition(t *testing.T) {
	s, vol, source := newBitmapRig(t, 512, 0.5)
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	payload := prng.NewFromUint64(1).Bytes(vol.PayloadSize())
	used := source.UsedCount()
	cur := loc
	for i := 0; i < 50; i++ {
		next, err := s.Update(cur, seal, payload)
		if err != nil {
			t.Fatal(err)
		}
		if source.IsFree(next) {
			t.Fatalf("data landed on a block still marked free: %d", next)
		}
		if next != cur && !source.IsFree(cur) {
			t.Fatalf("vacated block %d not returned to the dummy pool", cur)
		}
		cur = next
	}
	if got := source.UsedCount(); got != used {
		t.Fatalf("utilization drifted across relocations: %d -> %d", used, got)
	}
	got, err := vol.ReadSealed(cur, seal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost across relocating updates")
	}
	st := s.Stats()
	if st.DataUpdates != 50 || st.Iterations < 50 {
		t.Fatalf("counters off: %+v", st)
	}
	if st.InPlace+st.Relocations != 50 {
		t.Fatalf("every update must end in-place or relocated: %+v", st)
	}
}

func TestSchedulerNoFreeSpace(t *testing.T) {
	s, vol, source := newBitmapRig(t, 64, 0)
	seal, err := vol.NewSealer([32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	for { // exhaust
		if _, err := source.AcquireRandom(); err != nil {
			break
		}
	}
	_, err = s.Update(loc, seal, make([]byte, vol.PayloadSize()))
	if !errors.Is(err, ErrNoFreeSpace) {
		t.Fatalf("full space update: %v", err)
	}
	// A failed update emitted no I/O, so it must not count — counting
	// it would advance DataSeq and mute the adaptive daemon while the
	// stream is actually silent.
	if st := s.Stats(); st.DataUpdates != 0 || st.Iterations != 0 {
		t.Fatalf("failed update moved counters: %+v", st)
	}
	if s.DataSeq() != 0 {
		t.Fatal("failed update advanced DataSeq")
	}
}

func TestSchedulerDummyBurstCountsAndPreserves(t *testing.T) {
	s, vol, source := newBitmapRig(t, 512, 0.3)
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	payload := prng.NewFromUint64(2).Bytes(vol.PayloadSize())
	if err := vol.WriteSealed(loc, seal, payload); err != nil {
		t.Fatal(err)
	}
	n, err := s.DummyUpdateBurst(64)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("burst issued %d of 64", n)
	}
	if got := s.Stats().DummyUpdates; got != 64 {
		t.Fatalf("dummy counter %d", got)
	}
	got, err := vol.ReadSealed(loc, seal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("dummy burst corrupted sealed data")
	}
}

// TestSchedulerConcurrentStream is the core tentpole property: many
// goroutines of real updates interleaved with dummy bursts, every
// payload intact afterwards, counters exact, race detector clean.
func TestSchedulerConcurrentStream(t *testing.T) {
	s, vol, source := newBitmapRig(t, 2048, 0.3)
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const updates = 40
	locs := make([]uint64, workers)
	payloads := make([][]byte, workers)
	for i := range locs {
		loc, err := source.AcquireRandom()
		if err != nil {
			t.Fatal(err)
		}
		locs[i] = loc
		payloads[i] = prng.NewFromUint64(uint64(100 + i)).Bytes(vol.PayloadSize())
		if err := vol.WriteSealed(loc, seal, payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur := locs[i]
			for k := 0; k < updates; k++ {
				next, err := s.Update(cur, seal, payloads[i])
				if err != nil {
					errCh <- err
					return
				}
				cur = next
			}
			locs[i] = cur
		}(i)
	}
	wg.Add(1)
	go func() { // the daemon's role: dummy traffic against live updates
		defer wg.Done()
		for k := 0; k < 20; k++ {
			if _, err := s.DummyUpdateBurst(16); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i := range locs {
		got, err := vol.ReadSealed(locs[i], seal)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("worker %d payload corrupted under concurrency", i)
		}
	}
	st := s.Stats()
	if st.DataUpdates != workers*updates {
		t.Fatalf("data updates %d != %d", st.DataUpdates, workers*updates)
	}
	if st.DummyUpdates != 20*16 {
		t.Fatalf("dummy updates %d != %d", st.DummyUpdates, 20*16)
	}
	if st.Iterations != st.InPlace+st.Relocations+st.Camouflage {
		// Redraws only happen on acquire races; they add iterations
		// without a terminal class, so >= is the general invariant.
		if st.Iterations < st.InPlace+st.Relocations+st.Camouflage {
			t.Fatalf("iteration accounting broken: %+v", st)
		}
	}
}

func TestBlockLocksOrdering(t *testing.T) {
	l := NewBlockLocks(8)
	// Same shard twice must not self-deadlock.
	unlock := l.Lock2(1, 9) // 1 and 9 share shard 1 of 8
	unlock()
	unlock = l.LockBlocks([]uint64{3, 11, 3, 19, 5})
	unlock()
	// Reverse-order pairs must not deadlock against each other.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				var u func()
				if i%2 == 0 {
					u = l.Lock2(2, 7)
				} else {
					u = l.Lock2(7, 2)
				}
				u()
			}
		}(i)
	}
	wg.Wait()
}

// countingIntents records IntentLog traffic for the one-slot-per-
// element invariant.
type countingIntents struct {
	mu      sync.Mutex
	relocs  int
	dummies int
}

func (c *countingIntents) BeginReloc(oldLoc, newLoc uint64) error {
	c.mu.Lock()
	c.relocs++
	c.mu.Unlock()
	return nil
}

func (c *countingIntents) DummyIntent(n int) error {
	c.mu.Lock()
	c.dummies += n
	c.mu.Unlock()
	return nil
}

// TestIntentPerStreamElement asserts the journal contract: every
// element of the emitted update stream — in-place, relocation,
// camouflage, idle dummy — carries exactly one intent, so ring
// traffic reveals only the stream's cadence.
func TestIntentPerStreamElement(t *testing.T) {
	s, vol, source := newBitmapRig(t, 512, 0.5)
	ci := &countingIntents{}
	s.SetIntentLog(ci)
	seal, err := vol.NewSealer([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := source.AcquireRandom()
	if err != nil {
		t.Fatal(err)
	}
	payload := prng.NewFromUint64(2).Bytes(vol.PayloadSize())
	cur := loc
	for i := 0; i < 40; i++ {
		next, err := s.Update(cur, seal, payload)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	for i := 0; i < 25; i++ {
		if err := s.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.DummyUpdateBurst(16); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	elements := st.Iterations + st.DummyUpdates
	if got := uint64(ci.relocs + ci.dummies); got != elements {
		t.Fatalf("%d intents for %d stream elements", got, elements)
	}
	if uint64(ci.relocs) != st.Relocations {
		t.Fatalf("%d reloc intents for %d relocations", ci.relocs, st.Relocations)
	}
}
