// Package sched is the per-volume update scheduler: the one component
// that owns the observable block-update stream of the paper's §4
// constructions when many sessions drive an agent concurrently.
//
// The security argument (Definition 1, §3.2.4) is a property of the
// emitted stream — every write the attacker sees must land on a
// uniformly random block — not of which client requested each element.
// That is exactly what makes the stream mergeable: real-update intents
// from any number of sessions and dummy-update intents from the idle
// daemon all funnel into one Figure-6 draw loop, and the interleaving
// chosen by the scheduler is invisible to the attacker because every
// element of the stream is identically distributed by construction.
//
// Division of labour:
//
//   - The Space (construction-specific: the data/dummy bitmap of
//     Construction 1, the disclosed-block registry of Construction 2)
//     serializes the *decisions*: uniform draws, the data/dummy
//     partition, and relocation bookkeeping. Space methods are atomic
//     and memory-only, so the serialized section is tiny.
//   - The Scheduler performs the *I/O*: reads, seals/reseals and
//     writes run outside the Space's lock, guarded by sharded
//     per-block locks (BlockLocks), so the expensive AES/SHA work of
//     concurrent updates overlaps on different blocks.
//
// Two rules make the concurrency safe without a global mutex:
//
//  1. Relocation bookkeeping commits in two phases: the target leaves
//     the dummy pool at draw time (so no concurrent draw can pick it),
//     but the source block only becomes a dummy after the payload
//     write succeeds. A failed write aborts back to the pre-draw
//     partition.
//  2. Dummy updates re-classify their target under the block's I/O
//     lock (Space.Classify) immediately before acting, so a block that
//     changed role between draw and execution is resealed under its
//     current key — or skipped if it is mid-operation — never
//     clobbered with stale assumptions.
package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/mempool"
	"steghide/internal/obs"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// ErrNoTarget reports that repeated dummy draws found only blocks that
// are mid-operation (pending classification) and therefore unusable.
var ErrNoTarget = errors.New("sched: only mid-operation blocks visible to the dummy draw")

// Kind classifies one draw of the Figure-6 loop.
type Kind uint8

const (
	// Redraw marks an unusable draw (e.g. a mid-operation block); the
	// iteration is counted and the loop draws again.
	Redraw Kind = iota
	// Self marks a draw that hit the updated block itself: update in
	// place.
	Self
	// Relocate marks a draw that hit a relocatable dummy block: the
	// data moves there. The Space has already withdrawn the target
	// from the dummy pool; CommitRelocate/AbortRelocate finish or
	// revert the swap.
	Relocate
	// Camouflage marks a draw that hit another occupied block: issue a
	// dummy update on it and draw again.
	Camouflage
)

// Action is what a dummy update on a block must do, decided by
// Space.Classify under the block's I/O lock at execution time.
type Action uint8

const (
	// ActSkip marks a block that cannot be dummy-updated right now
	// (mid-operation); the scheduler does no I/O on it.
	ActSkip Action = iota
	// ActReseal re-encrypts the block under the sealer Classify
	// returned: decrypt, fresh IV, re-encrypt, write back.
	ActReseal
	// ActRefill overwrites the block with fresh random bytes — the
	// dummy update for blocks whose plaintext is meaningless (dummy
	// file content).
	ActRefill
)

// Target is one committed draw of the Figure-6 loop.
type Target struct {
	// Loc is the drawn block (meaningful unless Kind is Redraw).
	Loc uint64
	// Kind says how the scheduler must act on the draw.
	Kind Kind
}

// Space is the construction-specific state the scheduler draws from:
// the data/dummy partition and, for Construction 2, the ownership
// registry. All methods must be atomic (implementations serialize
// internally) and must not perform device I/O.
type Space interface {
	// DrawUpdate draws the next Figure-6 target for a data update of
	// block loc. When the draw lands on a relocatable dummy block the
	// Space atomically withdraws it from the dummy pool (first phase
	// of the relocation commit) before returning Kind Relocate.
	DrawUpdate(loc uint64) (Target, error)
	// CommitRelocate finishes a relocation after the payload write
	// succeeded: oldLoc joins the dummy pool, newLoc is recorded as
	// the data block (sealed under seal).
	CommitRelocate(oldLoc, newLoc uint64, seal *sealer.Sealer)
	// AbortRelocate reverts a relocation whose payload write failed:
	// newLoc returns to the dummy pool, oldLoc keeps the data.
	AbortRelocate(oldLoc, newLoc uint64)
	// DrawDummy draws one idle-time dummy-update target, uniform over
	// the space.
	DrawDummy() (uint64, error)
	// DrawDummyBatch fills locs with up to len(locs) dummy-update
	// targets, drawn exactly as DrawDummy draws them, and returns how
	// many it produced.
	DrawDummyBatch(locs []uint64) (int, error)
	// Classify decides what a dummy update on loc must do right now.
	// The scheduler calls it while holding loc's I/O lock, so the
	// answer cannot go stale before the I/O lands.
	Classify(loc uint64) (Action, *sealer.Sealer)
}

// IntentLog is the durability plane's hook into the update stream,
// implemented by the journal adapters in internal/steghide. The
// contract that keeps the stream deniable: the scheduler calls exactly
// one of these per emitted stream element — BeginReloc before a
// relocation's payload write, DummyIntent for everything else — so
// ring traffic is one slot write per element whatever the element is.
type IntentLog interface {
	// BeginReloc durably records the relocation intent before the
	// payload write lands on newLoc.
	BeginReloc(oldLoc, newLoc uint64) error
	// DummyIntent durably emits n filler records, one per in-place,
	// camouflage or dummy update about to be issued.
	DummyIntent(n int) error
}

// Scheduler owns a volume's update stream. It is safe for concurrent
// use by any number of sessions plus the dummy-traffic daemon.
type Scheduler struct {
	vol     *stegfs.Volume
	dev     blockdev.Device
	space   Space
	locks   *BlockLocks
	intents IntentLog // nil when the volume is not journaled

	scratch *blockdev.BufPool // single-block scratch buffers
	pipe    *sealer.Pipeline  // nil → serial bursts (the default)
	bursts  sync.Pool         // *burstScratch — per-burst buffers

	// Stream counters are obs.Counter so a registry can export the
	// same atomics Stats reads — one source of truth, no second copy.
	// They count regardless of whether a registry is attached (the
	// cost is the identical atomic add as before).
	dataUpdates  obs.Counter
	iterations   obs.Counter
	relocations  obs.Counter
	inPlace      obs.Counter
	camouflage   obs.Counter
	dummyUpdates obs.Counter

	metrics *metricsState // nil → no latency/shape instrumentation
}

// metricsState is the nil-gated extra instrumentation a registry
// attaches: latency and shape histograms plus the shared counters the
// per-burst async rings report into. Everything here describes the
// observable stream only — timings and counts of updates the attacker
// already sees — never which updates were real (see DESIGN.md,
// "Observability plane").
type metricsState struct {
	updateSeconds  *obs.Histogram // data-update draw-loop latency
	updateIters    *obs.Histogram // Figure-6 iterations per data update
	burstSeconds   *obs.Histogram // dummy-burst latency
	asyncSubmits   *obs.Counter
	asyncCompletes *obs.Counter
	asyncDepth     *obs.Gauge

	reg    *obs.Registry // kept so EnablePipeline can instrument late
	volume string
}

// burstScratch carries every buffer one dummy burst needs — target
// locations, per-target sealers, the block slab, pre-drawn IVs and
// refill staging — bump-carved from one arena that grows to the burst
// high-water mark and is then reused. Scratch structs are pooled on
// the Scheduler because bursts can run concurrently (daemon ticks and
// explicit calls); each burst owns one exclusively.
type burstScratch struct {
	arena mempool.Arena
	locs  []uint64
	seals []*sealer.Sealer
	raws  [][]byte
	fills [][]byte
}

func (s *Scheduler) getBurst() *burstScratch {
	b, _ := s.bursts.Get().(*burstScratch)
	if b == nil {
		b = new(burstScratch)
	}
	b.arena.Reset()
	return b
}

func (s *Scheduler) putBurst(b *burstScratch) { s.bursts.Put(b) }

// Stats is a snapshot of the scheduler's counters; the field meanings
// match steghide.UpdateStats.
type Stats struct {
	DataUpdates  uint64
	Iterations   uint64
	Relocations  uint64
	InPlace      uint64
	Camouflage   uint64
	DummyUpdates uint64
}

// New builds a scheduler for vol over space and installs its lock map
// as the volume's BlockLocker, so file-layer writes (growth, header
// and pointer saves) serialize with the scheduler's own I/O per block.
func New(vol *stegfs.Volume, space Space) *Scheduler {
	s := &Scheduler{
		vol:     vol,
		dev:     vol.Device(),
		space:   space,
		locks:   NewBlockLocks(0),
		scratch: blockdev.NewBufPool(vol.BlockSize()),
	}
	vol.SetBlockLocker(s.locks)
	return s
}

// Locks exposes the scheduler's per-block lock map.
func (s *Scheduler) Locks() *BlockLocks { return s.locks }

// SetIntentLog installs the journal hooks. Install before concurrent
// use; a nil log (the default) emits no ring traffic.
func (s *Scheduler) SetIntentLog(il IntentLog) { s.intents = il }

// EnablePipeline switches dummy bursts to the staged pipeline: reads
// and writes flow through a one-worker FIFO ring over the device while
// the reseal/refill crypto fans out over a sealer.Pipeline of the
// given width (<= 0 selects GOMAXPROCS). The observable stream — RNG
// draws, IVs, and the order blocks hit the device — is bit-identical
// to the serial path; see DummyUpdateBurst. Install before concurrent
// use.
func (s *Scheduler) EnablePipeline(workers int) {
	s.pipe = sealer.NewPipeline(workers)
	if s.metrics != nil {
		s.instrumentPipe(s.metrics.reg, s.metrics.volume)
	}
}

// Pipelined reports whether bursts run the staged pipeline.
func (s *Scheduler) Pipelined() bool { return s.pipe != nil }

// EnableMetrics exports the scheduler's stream counters through reg
// and attaches latency/shape histograms to the update paths. Like
// EnablePipeline, install before concurrent use. Every series is
// labeled by volume name only; block addresses, pathnames and the
// real-vs-dummy split of individual elements never reach the
// registry.
func (s *Scheduler) EnableMetrics(reg *obs.Registry, volume string) {
	l := []string{"volume", volume}
	reg.RegisterCounter("steghide_sched_data_updates_total",
		"data updates emitted on the observable stream", &s.dataUpdates, l...)
	reg.RegisterCounter("steghide_sched_iterations_total",
		"Figure-6 draw-loop iterations across all data updates", &s.iterations, l...)
	reg.RegisterCounter("steghide_sched_relocations_total",
		"data updates that relocated to a drawn dummy block", &s.relocations, l...)
	reg.RegisterCounter("steghide_sched_in_place_total",
		"data updates whose draw hit the block itself", &s.inPlace, l...)
	reg.RegisterCounter("steghide_sched_camouflage_total",
		"camouflage dummy updates issued by the draw loop", &s.camouflage, l...)
	reg.RegisterCounter("steghide_sched_dummy_updates_total",
		"idle-time dummy updates emitted", &s.dummyUpdates, l...)
	s.metrics = &metricsState{
		updateSeconds: reg.Histogram("steghide_sched_update_seconds",
			"data-update draw-loop latency", obs.LatencyBuckets, l...),
		updateIters: reg.Histogram("steghide_sched_update_iterations",
			"Figure-6 iterations per data update", obs.IterationBuckets, l...),
		burstSeconds: reg.Histogram("steghide_sched_burst_seconds",
			"dummy-burst latency", obs.LatencyBuckets, l...),
		asyncSubmits: reg.Counter("steghide_async_submits_total",
			"batched ops submitted to per-burst async device rings", l...),
		asyncCompletes: reg.Counter("steghide_async_completes_total",
			"batched ops completed by per-burst async device rings", l...),
		asyncDepth: reg.Gauge("steghide_async_queue_depth",
			"ops in flight on per-burst async device rings", l...),
		reg:    reg,
		volume: volume,
	}
	if s.pipe != nil {
		s.instrumentPipe(reg, volume)
	}
}

// instrumentPipe wires the staged seal pipeline's throughput counters
// into reg; split out so EnablePipeline-after-EnableMetrics still gets
// covered.
func (s *Scheduler) instrumentPipe(reg *obs.Registry, volume string) {
	l := []string{"volume", volume}
	s.pipe.Instrument(
		reg.Counter("steghide_seal_batches_total",
			"batches fanned out over the seal pipeline", l...),
		reg.Counter("steghide_seal_blocks_total",
			"blocks sealed/resealed through the pipeline", l...),
		reg.Gauge("steghide_seal_inflight",
			"blocks currently inside the seal pipeline", l...),
	)
}

// observeUpdate records one successful data update's latency and
// iteration count; nil-safe and free when no registry is attached.
func (s *Scheduler) observeUpdate(start time.Time, iters int) {
	m := s.metrics
	if m == nil {
		return
	}
	m.updateSeconds.Observe(time.Since(start).Seconds())
	m.updateIters.Observe(float64(iters))
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		DataUpdates:  s.dataUpdates.Load(),
		Iterations:   s.iterations.Load(),
		Relocations:  s.relocations.Load(),
		InPlace:      s.inPlace.Load(),
		Camouflage:   s.camouflage.Load(),
		DummyUpdates: s.dummyUpdates.Load(),
	}
}

// ResetStats zeroes the counters. A registry exporting them sees the
// reset as a counter restart, which Prometheus-style scrapers already
// handle (it looks like a process restart).
func (s *Scheduler) ResetStats() {
	s.dataUpdates.Reset()
	s.iterations.Reset()
	s.relocations.Reset()
	s.inPlace.Reset()
	s.camouflage.Reset()
	s.dummyUpdates.Reset()
}

// DataSeq returns a monotonically increasing count of data updates —
// the signal the adaptive daemon watches to fill only idle gaps.
func (s *Scheduler) DataSeq() uint64 { return s.dataUpdates.Load() }

func (s *Scheduler) getBuf() []byte  { return s.scratch.Get() }
func (s *Scheduler) putBuf(b []byte) { s.scratch.Put(b) }

// writeSealed seals payload under seal with a fresh IV and writes it
// to block loc, reusing raw as scratch. The caller holds loc's lock.
// The IV is drawn straight into raw's IV field and sealed from there
// (Seal's dst←iv copy degenerates to a self-copy), so the path needs
// no IV staging buffer at all — payload never aliases raw here.
func (s *Scheduler) writeSealed(loc uint64, seal *sealer.Sealer, payload, raw []byte) error {
	s.vol.NextIV(raw[:sealer.IVSize])
	if err := seal.Seal(raw, raw[:sealer.IVSize], payload); err != nil {
		return err
	}
	return s.dev.WriteBlock(loc, raw)
}

// Update runs the Figure-6 data-update algorithm for block loc: draw a
// uniformly random block B2; if B2 is loc itself update in place; if
// B2 is a dummy block relocate the data there; otherwise issue a
// camouflage dummy update on B2 and redraw. It returns the block the
// data finally landed on. Concurrent calls interleave safely: draws
// and partition bookkeeping serialize inside the Space, while the
// read/seal/write work of different blocks overlaps.
func (s *Scheduler) Update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	return s.UpdateCtx(context.Background(), loc, seal, payload)
}

// UpdateCtx is Update with cooperative cancellation: the context is
// consulted before every draw of the Figure-6 loop — the scheduler's
// wait point, where an update can spin arbitrarily long hunting for a
// dummy block on a crowded volume. A cancelled context aborts the
// update before the next draw; the iteration in flight always runs to
// completion, because a committed draw's two-phase bookkeeping
// (relocation withdraw/commit) must never be abandoned half-way. No
// I/O lands after the abort, so the block being updated keeps its
// pre-call content.
func (s *Scheduler) UpdateCtx(ctx context.Context, loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	var start time.Time
	if s.metrics != nil {
		start = time.Now()
	}
	iters := 0
	counted := false
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		t, err := s.space.DrawUpdate(loc)
		if err != nil {
			return 0, err
		}
		// Count the update only once a draw succeeded: an update that
		// fails outright (no dummy space) emits no I/O, and counting
		// it would advance DataSeq and wrongly tell the adaptive
		// daemon the stream is busy while it is in fact silent.
		if !counted {
			s.dataUpdates.Add(1)
			counted = true
		}
		s.iterations.Add(1)
		iters++
		switch t.Kind {
		case Redraw:
			continue

		case Self:
			// Update in place: read in B1, re-encrypt with a new IV.
			// In-place rewrites commit atomically with the block write
			// itself (the header keeps pointing at loc), so the ring
			// element is a filler — emitted all the same, to keep one
			// slot write per stream element.
			if s.intents != nil {
				if err := s.intents.DummyIntent(1); err != nil {
					return 0, err
				}
			}
			s.locks.LockBlock(loc)
			raw := s.getBuf()
			err := s.dev.ReadBlock(loc, raw)
			if err == nil {
				err = s.writeSealed(loc, seal, payload, raw)
			}
			s.putBuf(raw)
			s.locks.UnlockBlock(loc)
			if err != nil {
				return 0, err
			}
			s.inPlace.Add(1)
			s.observeUpdate(start, iters)
			return loc, nil

		case Relocate:
			// B2 is a dummy block: the data moves there; the old
			// location joins the dummy pool once the write succeeded.
			// The intent record must be durable before the payload
			// write, so recovery can find both endpoints.
			if s.intents != nil {
				if err := s.intents.BeginReloc(loc, t.Loc); err != nil {
					s.space.AbortRelocate(loc, t.Loc)
					return 0, err
				}
			}
			unlock := s.locks.Lock2(loc, t.Loc)
			raw := s.getBuf()
			err := s.dev.ReadBlock(loc, raw)
			if err == nil {
				err = s.writeSealed(t.Loc, seal, payload, raw)
			}
			if err != nil {
				s.putBuf(raw)
				unlock()
				s.space.AbortRelocate(loc, t.Loc)
				return 0, err
			}
			s.space.CommitRelocate(loc, t.Loc, seal)
			s.putBuf(raw)
			unlock()
			s.relocations.Add(1)
			s.observeUpdate(start, iters)
			return t.Loc, nil

		case Camouflage:
			// B2 holds something else: camouflage dummy update, redraw.
			done, err := s.dummyOn(t.Loc)
			if err != nil {
				return 0, err
			}
			if done {
				s.camouflage.Add(1)
			}
		}
	}
}

// dummyOn performs one dummy update on loc under its I/O lock. The
// target is re-classified at execution time, so role changes between
// draw and execution (relocations, allocations) are honoured. It
// reports whether any I/O was issued.
func (s *Scheduler) dummyOn(loc uint64) (bool, error) {
	s.locks.LockBlock(loc)
	defer s.locks.UnlockBlock(loc)
	act, seal := s.space.Classify(loc)
	if act == ActSkip {
		return false, nil
	}
	if s.intents != nil {
		if err := s.intents.DummyIntent(1); err != nil {
			return false, err
		}
	}
	raw := s.getBuf()
	defer s.putBuf(raw)
	// Read first either way, so the observable I/O of a refill matches
	// a reseal: one read, one write.
	if err := s.dev.ReadBlock(loc, raw); err != nil {
		return false, err
	}
	switch act {
	case ActReseal:
		var iv [sealer.IVSize]byte
		s.vol.NextIV(iv[:])
		if err := seal.Reseal(raw, iv[:], nil); err != nil {
			return false, err
		}
	case ActRefill:
		s.vol.FillRandom(raw)
	}
	if err := s.dev.WriteBlock(loc, raw); err != nil {
		return false, err
	}
	return true, nil
}

// DummyUpdate issues one idle-time dummy update on a uniformly random
// block of the space.
func (s *Scheduler) DummyUpdate() error {
	for try := 0; try < 64; try++ {
		loc, err := s.space.DrawDummy()
		if err != nil {
			return err
		}
		done, err := s.dummyOn(loc)
		if err != nil {
			return err
		}
		if done {
			s.dummyUpdates.Add(1)
			return nil
		}
	}
	return ErrNoTarget
}

// DummyUpdateBurst issues up to n dummy updates in one batched
// read-modify-write cycle: two scattered device batches instead of 2n
// single-block calls. Targets are drawn exactly as DummyUpdate draws
// them, so the observable stream keeps the same distribution; blocks
// whose classification went stale between draw and execution are
// skipped. It returns how many updates were issued.
func (s *Scheduler) DummyUpdateBurst(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	b := s.getBurst()
	defer s.putBurst(b)
	if cap(b.locs) < n {
		b.locs = make([]uint64, n)
	}
	locs := b.locs[:n]
	m, err := s.space.DrawDummyBatch(locs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, ErrNoTarget
	}
	locs = locs[:m]

	unlock := s.locks.LockBlocks(locs)
	defer unlock()

	// Classify every target under the locks, dropping stale ones.
	elig := locs[:0]
	seals := b.seals[:0]
	for _, loc := range locs {
		act, seal := s.space.Classify(loc)
		if act == ActSkip {
			continue
		}
		if act == ActRefill {
			seal = nil
		}
		elig = append(elig, loc)
		seals = append(seals, seal)
	}
	b.seals = seals // keep the grown backing for the next burst
	if len(elig) == 0 {
		return 0, nil
	}
	if s.intents != nil {
		if err := s.intents.DummyIntent(len(elig)); err != nil {
			return 0, err
		}
	}

	var start time.Time
	if s.metrics != nil {
		start = time.Now()
	}
	if s.pipe != nil {
		if err := s.burstPipelined(b, elig, seals); err != nil {
			return 0, err
		}
	} else if err := s.burstSerial(b, elig, seals); err != nil {
		return 0, err
	}
	if m := s.metrics; m != nil {
		m.burstSeconds.Observe(time.Since(start).Seconds())
	}
	s.dummyUpdates.Add(uint64(len(elig)))
	return len(elig), nil
}

// burstSerial is the reference execute stage of a dummy burst: one
// scattered read of every eligible block, the reseal/refill loop, one
// scattered write-back. The pipelined stage below is defined as
// observably equivalent to this code.
func (s *Scheduler) burstSerial(b *burstScratch, elig []uint64, seals []*sealer.Sealer) error {
	b.raws = b.arena.Blocks(b.raws[:0], len(elig), s.vol.BlockSize())
	raws := b.raws
	if err := blockdev.ReadBlocksAt(s.dev, elig, raws); err != nil {
		return err
	}
	var iv [sealer.IVSize]byte
	for i, raw := range raws {
		if seals[i] == nil {
			s.vol.FillRandom(raw)
			continue
		}
		s.vol.NextIV(iv[:])
		if err := seals[i].Reseal(raw, iv[:], nil); err != nil {
			return err
		}
	}
	return blockdev.WriteBlocksAt(s.dev, elig, raws)
}

// burstChunk is how many blocks ride each async submission of a
// pipelined burst: small enough that crypto on one chunk overlaps
// device I/O on its neighbours, large enough to amortize scattered-
// batch overhead.
const burstChunk = 16

// burstPipelined is the staged execute stage: crypto overlaps device
// I/O without moving a single observable byte relative to burstSerial.
//
// Three facts carry the bit-identity argument:
//
//  1. RNG order. All volume-RNG consumption (refill bytes, fresh IVs)
//     happens in a serial pre-draw pass in eligible order — exactly
//     the order the serial loop drains the stream — before any I/O or
//     worker runs. Refill bytes land in staging buffers and are copied
//     over the read data later; the copy consumes nothing.
//  2. Device order. The ring has one worker, so ops execute strictly
//     in submission order. Every read chunk is submitted before any
//     write chunk, and chunks are submitted in eligible order, so the
//     device sees R(e_0..e_k), W(e_0..e_k) — precisely the serial
//     ReadBlocksAt/WriteBlocksAt order, and the trace records per-
//     block events in batch order either way.
//  3. Completion order. FIFO execution means the c-th completion IS
//     read chunk c, so crypto for chunk c starts exactly when its data
//     is in memory, while the ring reads ahead and retires earlier
//     writes behind it.
//
// The caller holds every eligible block's lock and has already emitted
// the burst's single intent record on the serial control path, so the
// journal's one-slot-per-element invariant is untouched.
func (s *Scheduler) burstPipelined(b *burstScratch, elig []uint64, seals []*sealer.Sealer) error {
	n := len(elig)
	bs := s.vol.BlockSize()
	b.raws = b.arena.Blocks(b.raws[:0], n, bs)
	raws := b.raws

	// Serial RNG pre-draw in eligible order (fact 1).
	ivs := b.arena.Bytes(n * sealer.IVSize)
	fills := b.fills[:0]
	for i := range elig {
		if seals[i] == nil {
			f := b.arena.Bytes(bs)
			s.vol.FillRandom(f)
			fills = append(fills, f)
			continue
		}
		fills = append(fills, nil)
		s.vol.NextIV(ivs[i*sealer.IVSize : (i+1)*sealer.IVSize])
	}
	b.fills = fills

	chunks := (n + burstChunk - 1) / burstChunk
	ring := blockdev.NewAsync(s.dev, 1, 2*chunks)
	defer ring.Close()
	if m := s.metrics; m != nil {
		// Per-burst rings are ephemeral; they report into the
		// scheduler's shared series so queue depth and throughput
		// survive the ring.
		ring.Instrument(m.asyncSubmits, m.asyncCompletes, m.asyncDepth)
	}

	// All reads up front, in eligible order (fact 2); the queue is
	// sized for the whole burst so no Submit ever blocks.
	for c := 0; c < chunks; c++ {
		lo, hi := c*burstChunk, min((c+1)*burstChunk, n)
		ring.Submit(blockdev.AsyncOp{Idx: elig[lo:hi], Bufs: raws[lo:hi]})
	}
	for c := 0; c < chunks; c++ {
		lo, hi := c*burstChunk, min((c+1)*burstChunk, n)
		if _, err := ring.Complete(); err != nil { // read chunk c (fact 3)
			return err
		}
		err := s.pipe.Each(hi-lo, func(j int) error {
			i := lo + j
			if seals[i] == nil {
				copy(raws[i], fills[i])
				return nil
			}
			return seals[i].Reseal(raws[i], ivs[i*sealer.IVSize:(i+1)*sealer.IVSize], nil)
		})
		if err != nil {
			return err
		}
		ring.Submit(blockdev.AsyncOp{Write: true, Idx: elig[lo:hi], Bufs: raws[lo:hi]})
	}
	return ring.Drain()
}
