// Package sealer implements the per-block encryption used by the
// steganographic file system.
//
// Following §4.1.1 of the paper, every block on the raw storage —
// whether it carries file data or dummy random bytes — has the layout
//
//	block = IV ‖ CBC-AES(key, IV, data field)
//
// A "dummy update" re-encrypts the same data field under a freshly
// drawn IV, which changes every byte of the stored block; without the
// key an observer cannot tell whether the data field itself changed.
//
// The package also provides the key-derivation helpers used to build
// file access keys (FAKs) from user passphrases.
package sealer

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"

	"steghide/internal/mempool"
)

// IVSize is the length in bytes of the per-block initialization
// vector, equal to the AES block size.
const IVSize = aes.BlockSize

// KeySize is the length in bytes of all symmetric keys (AES-256).
const KeySize = 32

// Key is a symmetric encryption key.
type Key [KeySize]byte

// ErrBadBlockSize reports a device block size unusable by the sealer.
var ErrBadBlockSize = errors.New("sealer: block size must leave a data field that is a positive multiple of the AES block size")

// DeriveKey derives a labelled subkey from secret material. It is a
// single-step HKDF-like construction over HMAC-SHA256: independent
// labels yield independent keys.
func DeriveKey(secret []byte, label string) Key {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(label))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// KeyFromPassphrase stretches a passphrase and salt into a key by
// iterated hashing (a PBKDF1-style construction over SHA-256; the
// paper predates argon2 and the module is stdlib-only).
func KeyFromPassphrase(passphrase string, salt []byte, iterations int) Key {
	if iterations < 1 {
		iterations = 1
	}
	h := sha256.New()
	h.Write(salt)
	h.Write([]byte(passphrase))
	sum := h.Sum(nil)
	for i := 1; i < iterations; i++ {
		h.Reset()
		h.Write(sum)
		h.Write(salt)
		sum = h.Sum(sum[:0])
	}
	var k Key
	copy(k[:], sum)
	return k
}

// Sealer encrypts and decrypts fixed-size storage blocks under one key.
// It is safe for concurrent use: all methods operate on caller-supplied
// buffers, the cipher.Block is stateless, and the chained CBC modes are
// borrowed from a pool per call.
type Sealer struct {
	block     cipher.Block
	blockSize int // full on-disk block size, IV included

	// modes recycles CBC BlockMode pairs across Seal/Open calls.
	// cipher.NewCBCEncrypter allocates per call, which put a
	// one-alloc-per-block floor under every bulk path (a reshuffle
	// or scan touches hundreds of blocks); instead each mode is
	// created once with a zero IV and its chaining state is folded
	// into the next block's IV (see cbcScratch), so steady-state
	// Seal and Open allocate nothing.
	modes sync.Pool
}

// cbcScratch is one reusable encrypt/decrypt mode pair. A CBC mode's
// only state is its chaining vector — after CryptBlocks it equals the
// last ciphertext block processed, which we track in encPrev/decPrev.
// To encrypt under an arbitrary IV without constructing a fresh mode,
// XOR the first plaintext block with (prev ⊕ iv): the mode's internal
// chain contributes prev, the XOR cancels it and substitutes iv, and
// every later block chains off real ciphertext exactly as standard
// CBC does. Decryption fixes up the first output block the same way.
// The result is byte-for-byte cipher.NewCBC*(block, iv).CryptBlocks.
type cbcScratch struct {
	enc, dec cipher.BlockMode
	encPrev  [IVSize]byte // enc's internal chain: last ciphertext it produced
	decPrev  [IVSize]byte // dec's internal chain: last ciphertext it consumed
}

// getModes borrows a mode pair; returned by putModes.
func (s *Sealer) getModes() *cbcScratch {
	return s.modes.Get().(*cbcScratch)
}

func (s *Sealer) putModes(c *cbcScratch) { s.modes.Put(c) }

// getScratch borrows a DataSize-byte buffer from the repo-wide memory
// plane (size-class free lists shared with the wire and batch layers),
// so every sealer's Reseal path draws on one pool instead of each
// instance hoarding its own — the hot path stays at zero allocations
// per operation while the plane is on.
func (s *Sealer) getScratch() []byte { return mempool.Get(s.DataSize()) }

func (s *Sealer) putScratch(b []byte) { mempool.Recycle(b) }

// New returns a Sealer for devices with the given on-disk block size.
// The data field (blockSize − IVSize) must be a positive multiple of
// the AES block size.
func New(key Key, blockSize int) (*Sealer, error) {
	field := blockSize - IVSize
	if field <= 0 || field%aes.BlockSize != 0 {
		return nil, fmt.Errorf("%w: block size %d", ErrBadBlockSize, blockSize)
	}
	b, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sealer: %w", err)
	}
	s := &Sealer{block: b, blockSize: blockSize}
	s.modes.New = func() any {
		var zero [IVSize]byte
		return &cbcScratch{
			enc: cipher.NewCBCEncrypter(s.block, zero[:]),
			dec: cipher.NewCBCDecrypter(s.block, zero[:]),
		}
	}
	return s, nil
}

// BlockSize returns the full on-disk block size, IV included.
func (s *Sealer) BlockSize() int { return s.blockSize }

// DataSize returns the usable data-field size of each block.
func (s *Sealer) DataSize() int { return s.blockSize - IVSize }

// Seal writes IV ‖ CBC(key, IV, data) into dst. dst must be BlockSize
// bytes, data must be DataSize bytes, and iv must be IVSize bytes.
// dst must not alias data.
func (s *Sealer) Seal(dst, iv, data []byte) error {
	if len(dst) != s.blockSize {
		return fmt.Errorf("sealer: dst length %d, want %d", len(dst), s.blockSize)
	}
	if len(iv) != IVSize {
		return fmt.Errorf("sealer: iv length %d, want %d", len(iv), IVSize)
	}
	if len(data) != s.DataSize() {
		return fmt.Errorf("sealer: data length %d, want %d", len(data), s.DataSize())
	}
	copy(dst[:IVSize], iv)
	body := dst[IVSize:]
	copy(body, data)
	c := s.getModes()
	for i := 0; i < IVSize; i++ {
		body[i] ^= c.encPrev[i] ^ iv[i]
	}
	c.enc.CryptBlocks(body, body)
	copy(c.encPrev[:], body[len(body)-IVSize:])
	s.putModes(c)
	return nil
}

// Open decrypts a sealed block into dst. dst must be DataSize bytes and
// must not alias raw. raw must be BlockSize bytes.
func (s *Sealer) Open(dst, raw []byte) error {
	if len(raw) != s.blockSize {
		return fmt.Errorf("sealer: raw length %d, want %d", len(raw), s.blockSize)
	}
	if len(dst) != s.DataSize() {
		return fmt.Errorf("sealer: dst length %d, want %d", len(dst), s.DataSize())
	}
	c := s.getModes()
	prev := c.decPrev
	copy(c.decPrev[:], raw[len(raw)-IVSize:])
	c.dec.CryptBlocks(dst, raw[IVSize:])
	for i := 0; i < IVSize; i++ {
		dst[i] ^= prev[i] ^ raw[i]
	}
	s.putModes(c)
	return nil
}

// Reseal re-encrypts a sealed block in place under a fresh IV without
// changing the plaintext data field — the dummy-update primitive from
// §4.1.3. scratch, if non-nil, must be DataSize bytes; if nil a pooled
// buffer is used, so no allocation happens either way after warm-up.
func (s *Sealer) Reseal(raw, newIV, scratch []byte) error {
	if scratch == nil {
		p := s.getScratch()
		defer s.putScratch(p)
		scratch = p
	}
	if err := s.Open(scratch, raw); err != nil {
		return err
	}
	return s.Seal(raw, newIV, scratch)
}

// checkSealBatch validates a SealMany request up front, so a malformed
// batch fails before any buffer is touched or any IV is drawn — the
// same whole-batch-first contract the block I/O plane gives, and what
// lets the pipelined variant fan out with no per-block error paths.
func (s *Sealer) checkSealBatch(dsts [][]byte, datas [][]byte) error {
	if len(dsts) != len(datas) {
		return fmt.Errorf("sealer: %d destinations for %d payloads", len(dsts), len(datas))
	}
	for _, dst := range dsts {
		if len(dst) != s.blockSize {
			return fmt.Errorf("sealer: dst length %d, want %d", len(dst), s.blockSize)
		}
	}
	for _, data := range datas {
		if len(data) != s.DataSize() {
			return fmt.Errorf("sealer: data length %d, want %d", len(data), s.DataSize())
		}
	}
	return nil
}

// checkOpenBatch validates an OpenMany request up front.
func (s *Sealer) checkOpenBatch(dsts, raws [][]byte) error {
	if len(dsts) != len(raws) {
		return fmt.Errorf("sealer: %d destinations for %d raw blocks", len(dsts), len(raws))
	}
	for _, raw := range raws {
		if len(raw) != s.blockSize {
			return fmt.Errorf("sealer: raw length %d, want %d", len(raw), s.blockSize)
		}
	}
	for _, dst := range dsts {
		if len(dst) != s.DataSize() {
			return fmt.Errorf("sealer: dst length %d, want %d", len(dst), s.DataSize())
		}
	}
	return nil
}

// checkResealBatch validates a ResealMany request up front.
func (s *Sealer) checkResealBatch(raws [][]byte) error {
	for _, raw := range raws {
		if len(raw) != s.blockSize {
			return fmt.Errorf("sealer: raw length %d, want %d", len(raw), s.blockSize)
		}
	}
	return nil
}

// SealMany seals datas[i] into dsts[i] for every i, drawing each
// block's IV through nextIV. It is the batched companion of Seal for
// bulk writers (formats, reshuffles, flushes). The batch is validated
// whole before any IV is drawn.
func (s *Sealer) SealMany(dsts [][]byte, nextIV func(iv []byte), datas [][]byte) error {
	if err := s.checkSealBatch(dsts, datas); err != nil {
		return err
	}
	var iv [IVSize]byte
	for i, dst := range dsts {
		nextIV(iv[:])
		if err := s.Seal(dst, iv[:], datas[i]); err != nil {
			return err
		}
	}
	return nil
}

// OpenMany decrypts raws[i] into dsts[i] for every i — the batched
// companion of Open for bulk readers.
func (s *Sealer) OpenMany(dsts, raws [][]byte) error {
	if err := s.checkOpenBatch(dsts, raws); err != nil {
		return err
	}
	for i, dst := range dsts {
		if err := s.Open(dst, raws[i]); err != nil {
			return err
		}
	}
	return nil
}

// ResealMany re-encrypts every raw block in place under fresh IVs
// drawn through nextIV, sharing one pooled scratch buffer across the
// whole batch instead of allocating per block.
func (s *Sealer) ResealMany(raws [][]byte, nextIV func(iv []byte)) error {
	if err := s.checkResealBatch(raws); err != nil {
		return err
	}
	p := s.getScratch()
	defer s.putScratch(p)
	var iv [IVSize]byte
	for _, raw := range raws {
		nextIV(iv[:])
		if err := s.Reseal(raw, iv[:], p); err != nil {
			return err
		}
	}
	return nil
}

// Checksum computes an 8-byte integrity tag over data, keyed by the
// sealer's derivation of ctx. It is embedded inside encrypted headers
// to detect decryption under a wrong key.
func Checksum(key Key, ctx string, data []byte) uint64 {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte(ctx))
	mac.Write(data)
	return binary.BigEndian.Uint64(mac.Sum(nil))
}

// Summer computes Checksum-compatible tags for one (key, ctx) pair
// without allocating after construction: the HMAC state is reset and
// reused and the digest lands in an owned buffer. hmac.New and the
// string-to-bytes conversion inside Checksum cost ~6 allocations per
// call, which dominated header decodes and oblivious-slot probes; a
// Summer amortizes all of it to zero. Not safe for concurrent use —
// each owner (a codec, a volume) keeps its own.
type Summer struct {
	mac hash.Hash
	ctx []byte
	sum []byte
}

// NewSummer returns a Summer whose Sum(data) equals
// Checksum(key, ctx, data). The first Reset of an HMAC caches its
// marshaled pads, so construction pre-warms the state with one sum.
func NewSummer(key Key, ctx string) *Summer {
	s := &Summer{
		mac: hmac.New(sha256.New, key[:]),
		ctx: []byte(ctx),
		sum: make([]byte, 0, sha256.Size),
	}
	s.Sum(nil)
	return s
}

// Sum returns the 8-byte tag over data, keyed as at construction.
func (s *Summer) Sum(data []byte) uint64 {
	s.mac.Reset()
	s.mac.Write(s.ctx)
	s.mac.Write(data)
	s.sum = s.mac.Sum(s.sum[:0])
	return binary.BigEndian.Uint64(s.sum)
}
