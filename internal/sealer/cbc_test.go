package sealer

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"

	"steghide/internal/race"
)

// TestSealMatchesFreshCBC pins the pooled-mode IV-folding path against
// the textbook construction it replaces: a fresh cipher.NewCBCEncrypter
// per block. The sealed bytes are the on-disk format — any divergence
// would silently corrupt every existing volume — so this runs many
// blocks through one sealer (exercising the chained-mode reuse) and
// checks each against an independent fresh-mode seal.
func TestSealMatchesFreshCBC(t *testing.T) {
	for _, bs := range []int{IVSize + aes.BlockSize, 512, 4096} {
		key := DeriveKey([]byte("cbc-differential"), "seal")
		s, err := New(key, bs)
		if err != nil {
			t.Fatal(err)
		}
		block, _ := aes.NewCipher(key[:])
		rng := rand.New(rand.NewSource(7))
		data := make([]byte, s.DataSize())
		iv := make([]byte, IVSize)
		got := make([]byte, bs)
		want := make([]byte, bs)
		for i := 0; i < 64; i++ {
			rng.Read(data)
			rng.Read(iv)
			if err := s.Seal(got, iv, data); err != nil {
				t.Fatal(err)
			}
			copy(want[:IVSize], iv)
			cipher.NewCBCEncrypter(block, iv).CryptBlocks(want[IVSize:], data)
			if !bytes.Equal(got, want) {
				t.Fatalf("bs=%d block %d: pooled seal diverges from fresh CBC", bs, i)
			}
			// And the decrypt side, against a fresh decrypter.
			opened := make([]byte, s.DataSize())
			if err := s.Open(opened, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(opened, data) {
				t.Fatalf("bs=%d block %d: pooled open does not invert seal", bs, i)
			}
		}
	}
}

// TestSealOpenInterleaved drives Seal and Open in a mixed order so the
// chained modes see every state transition (seal-after-open and
// open-after-seal both fold the previous chain correctly).
func TestSealOpenInterleaved(t *testing.T) {
	key := DeriveKey([]byte("cbc-differential"), "interleave")
	s, err := New(key, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	type sealed struct{ raw, data []byte }
	var history []sealed
	for i := 0; i < 128; i++ {
		if rng.Intn(2) == 0 || len(history) == 0 {
			data := make([]byte, s.DataSize())
			iv := make([]byte, IVSize)
			rng.Read(data)
			rng.Read(iv)
			raw := make([]byte, 512)
			if err := s.Seal(raw, iv, data); err != nil {
				t.Fatal(err)
			}
			history = append(history, sealed{raw, data})
		} else {
			pick := history[rng.Intn(len(history))]
			out := make([]byte, s.DataSize())
			if err := s.Open(out, pick.raw); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, pick.data) {
				t.Fatalf("op %d: interleaved open returned wrong plaintext", i)
			}
		}
	}
}

// TestSealOpenZeroAlloc pins the whole point of the mode pool: a warm
// Seal/Open cycle allocates nothing.
func TestSealOpenZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc floors don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	key := DeriveKey([]byte("cbc-differential"), "allocs")
	s, err := New(key, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, s.DataSize())
	raw := make([]byte, 4096)
	iv := make([]byte, IVSize)
	out := make([]byte, s.DataSize())
	if err := s.Seal(raw, iv, data); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Seal(raw, iv, data); err != nil {
			t.Fatal(err)
		}
		if err := s.Open(out, raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Seal+Open allocated %.1f per op, want 0", allocs)
	}
}

// TestSummerMatchesChecksum pins Summer against the allocating
// Checksum it replaces, including empty and large inputs, and pins its
// steady state at zero allocations.
func TestSummerMatchesChecksum(t *testing.T) {
	key := DeriveKey([]byte("cbc-differential"), "summer")
	sm := NewSummer(key, "obli-slot")
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 31, 32, 33, 448, 4096} {
		data := make([]byte, n)
		rng.Read(data)
		if got, want := sm.Sum(data), Checksum(key, "obli-slot", data); got != want {
			t.Fatalf("len %d: Summer %#x != Checksum %#x", n, got, want)
		}
	}
	if race.Enabled {
		return // the alloc floor below doesn't hold under -race
	}
	data := make([]byte, 448)
	allocs := testing.AllocsPerRun(100, func() { sm.Sum(data) })
	if allocs > 0 {
		t.Fatalf("Summer.Sum allocated %.1f per op, want 0", allocs)
	}
}
