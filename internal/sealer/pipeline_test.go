package sealer

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/prng"

	"steghide/internal/race"
)

// sealFixtures builds n payload blocks and a deterministic IV source.
func sealFixtures(s *Sealer, n int, seed uint64) (payloads [][]byte, nextIV func([]byte)) {
	rng := prng.NewFromUint64(seed)
	payloads = blockdev.AllocBlocks(n, s.DataSize())
	for _, p := range payloads {
		rng.Read(p)
	}
	ivRNG := prng.NewFromUint64(seed ^ 0xABCD)
	return payloads, func(iv []byte) { ivRNG.Read(iv) }
}

// TestPipelineBitIdenticalToSerial is the package-level half of the
// determinism oracle: whatever the pool width, the pipelined batch
// methods must produce byte-for-byte the serial methods' output and
// drain the IV source in the same order.
func TestPipelineBitIdenticalToSerial(t *testing.T) {
	const bs = 256
	s := mustSealer(t, bs)
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			p := NewPipeline(workers)

			// SealMany.
			payloads, serialIV := sealFixtures(s, n, uint64(n))
			_, pipeIV := sealFixtures(s, n, uint64(n))
			want := blockdev.AllocBlocks(n, bs)
			got := blockdev.AllocBlocks(n, bs)
			if err := s.SealMany(want, serialIV, payloads); err != nil {
				t.Fatal(err)
			}
			if err := p.SealMany(s, got, pipeIV, payloads); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("workers=%d n=%d: SealMany diverged at block %d", workers, n, i)
				}
			}

			// OpenMany.
			wantOpen := blockdev.AllocBlocks(n, s.DataSize())
			gotOpen := blockdev.AllocBlocks(n, s.DataSize())
			if err := s.OpenMany(wantOpen, want); err != nil {
				t.Fatal(err)
			}
			if err := p.OpenMany(s, gotOpen, got); err != nil {
				t.Fatal(err)
			}
			for i := range wantOpen {
				if !bytes.Equal(wantOpen[i], gotOpen[i]) {
					t.Fatalf("workers=%d n=%d: OpenMany diverged at block %d", workers, n, i)
				}
			}

			// ResealMany: reuse the two identical sealed copies and two
			// identical IV streams; the raws must stay equal after.
			_, serialIV2 := sealFixtures(s, n, uint64(n)+99)
			_, pipeIV2 := sealFixtures(s, n, uint64(n)+99)
			if err := s.ResealMany(want, serialIV2); err != nil {
				t.Fatal(err)
			}
			if err := p.ResealMany(s, got, pipeIV2); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("workers=%d n=%d: ResealMany diverged at block %d", workers, n, i)
				}
			}
		}
	}
}

// TestBatchRejectsMismatchedLengths pins the whole-batch-first
// validation contract of both the serial and pipelined batch methods:
// a malformed batch fails before any buffer is touched or IV drawn.
func TestBatchRejectsMismatchedLengths(t *testing.T) {
	const bs = 64
	s := mustSealer(t, bs)
	p := NewPipeline(4)
	good := blockdev.AllocBlocks(3, bs)
	short := [][]byte{make([]byte, bs), make([]byte, bs-1), make([]byte, bs)}
	payloads := blockdev.AllocBlocks(3, s.DataSize())
	badPayloads := [][]byte{payloads[0], payloads[1][:4], payloads[2]}
	ivDrawn := 0
	countIV := func(iv []byte) { ivDrawn++ }

	cases := []struct {
		name string
		fn   func() error
	}{
		{"SealMany/count", func() error { return s.SealMany(good, countIV, payloads[:2]) }},
		{"SealMany/dst", func() error { return s.SealMany(short, countIV, payloads) }},
		{"SealMany/data", func() error { return s.SealMany(good, countIV, badPayloads) }},
		{"OpenMany/count", func() error { return s.OpenMany(payloads[:1], good) }},
		{"OpenMany/raw", func() error { return s.OpenMany(payloads, short) }},
		{"ResealMany/raw", func() error { return s.ResealMany(short, countIV) }},
		{"Pipeline/SealMany/count", func() error { return p.SealMany(s, good, countIV, payloads[:2]) }},
		{"Pipeline/SealMany/dst", func() error { return p.SealMany(s, short, countIV, payloads) }},
		{"Pipeline/OpenMany/count", func() error { return p.OpenMany(s, payloads[:1], good) }},
		{"Pipeline/ResealMany/raw", func() error { return p.ResealMany(s, short, countIV) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: malformed batch accepted", tc.name)
		}
	}
	if ivDrawn != 0 {
		t.Errorf("malformed batches drew %d IVs; validation must precede the RNG", ivDrawn)
	}
}

// TestBatchZeroLength pins that empty batches are no-ops that succeed
// without drawing IVs.
func TestBatchZeroLength(t *testing.T) {
	s := mustSealer(t, 64)
	p := NewPipeline(4)
	drew := false
	iv := func([]byte) { drew = true }
	for name, fn := range map[string]func() error{
		"SealMany":            func() error { return s.SealMany(nil, iv, nil) },
		"OpenMany":            func() error { return s.OpenMany(nil, nil) },
		"ResealMany":          func() error { return s.ResealMany(nil, iv) },
		"Pipeline/SealMany":   func() error { return p.SealMany(s, nil, iv, nil) },
		"Pipeline/OpenMany":   func() error { return p.OpenMany(s, nil, nil) },
		"Pipeline/ResealMany": func() error { return p.ResealMany(s, nil, iv) },
	} {
		if err := fn(); err != nil {
			t.Errorf("%s(empty): %v", name, err)
		}
	}
	if drew {
		t.Error("empty batch drew an IV")
	}
}

// TestSealerConcurrentBatches pins the safety property the pipeline is
// built on: one Sealer driven from many goroutines at once — mixed
// Seal/Open/Reseal singletons and batches, all sharing the scratch
// pool — under the race detector.
func TestSealerConcurrentBatches(t *testing.T) {
	const bs = 256
	s := mustSealer(t, bs)
	p := NewPipeline(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payloads, nextIV := sealFixtures(s, 16, uint64(g))
			raws := blockdev.AllocBlocks(16, bs)
			for round := 0; round < 20; round++ {
				var err error
				switch round % 3 {
				case 0:
					err = s.SealMany(raws, nextIV, payloads)
				case 1:
					err = p.SealMany(s, raws, nextIV, payloads)
				case 2:
					err = s.ResealMany(raws, nextIV)
				}
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				got := make([]byte, s.DataSize())
				if err := s.Open(got, raws[round%16]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEachPropagatesError pins that a failing index surfaces its error
// whatever worker hits it.
func TestEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		p := NewPipeline(workers)
		err := p.Each(64, func(i int) error {
			if i == 17 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

// TestResealAllocsFloor pins the scratch-pool fix: steady-state Reseal
// with pooled scratch must allocate exactly the two cipher.BlockMode
// structs that crypto/cipher forces per Open/Seal pair (no IV-reset
// API exists to pool them). The old putScratch boxed a fresh slice
// header on every call, making it three.
func TestResealAllocsFloor(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc floors don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	s := mustSealer(t, 4096)
	raw := make([]byte, 4096)
	iv := make([]byte, IVSize)
	if err := s.Reseal(raw, iv, nil); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Reseal(raw, iv, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Reseal allocates %.1f times per op, want <= 2 (the two BlockMode structs)", allocs)
	}
}

// TestPipelineSpeedupMultiCore asserts the acceptance criterion on
// hosts that can show it: with 4+ cores, pipelined sealing of a large
// batch must be at least 2× the serial throughput. Single-core hosts
// (the dev box) skip; the bit-identity tests above still pin
// correctness there.
func TestPipelineSpeedupMultiCore(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 cores, have %d", runtime.NumCPU())
	}
	const bs, n = 4096, 2048
	s := mustSealer(t, bs)
	payloads, nextIV := sealFixtures(s, n, 7)
	raws := blockdev.AllocBlocks(n, bs)
	p := NewPipeline(0)

	measure := func(fn func() error) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(func() error { return s.SealMany(raws, nextIV, payloads) })
	piped := measure(func() error { return p.SealMany(s, raws, nextIV, payloads) })
	speedup := float64(serial) / float64(piped)
	t.Logf("serial %v, pipelined %v (%d workers): %.2fx", serial, piped, p.Workers(), speedup)
	if speedup < 2 {
		t.Errorf("pipelined SealMany only %.2fx serial on %d cores, want >= 2x", speedup, runtime.NumCPU())
	}
}

// Paired go-bench arms of the microbench suite's seal-pipeline pair.
func BenchmarkSealPipeline(b *testing.B) {
	const bs, n = 4096, 256
	s, err := New(DeriveKey([]byte("bench"), "pipe"), bs)
	if err != nil {
		b.Fatal(err)
	}
	payloads, nextIV := sealFixtures(s, n, 11)
	raws := blockdev.AllocBlocks(n, bs)
	arms := []struct {
		name string
		fn   func() error
	}{
		{fmt.Sprintf("serial-%d", n), func() error { return s.SealMany(raws, nextIV, payloads) }},
		{fmt.Sprintf("pipelined-%d", n), func() error {
			p := NewPipeline(0)
			return p.SealMany(s, raws, nextIV, payloads)
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.SetBytes(int64(n * bs))
			for i := 0; i < b.N; i++ {
				if err := arm.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
