package sealer

import (
	"bytes"
	"testing"
	"testing/quick"

	"steghide/internal/prng"
)

func mustSealer(t *testing.T, blockSize int) *Sealer {
	t.Helper()
	s, err := New(DeriveKey([]byte("secret"), "test"), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	for _, bs := range []int{32, 64, 512, 4096} {
		s := mustSealer(t, bs)
		rng := prng.NewFromUint64(uint64(bs))
		data := rng.Bytes(s.DataSize())
		iv := rng.Bytes(IVSize)
		raw := make([]byte, bs)
		if err := s.Seal(raw, iv, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, s.DataSize())
		if err := s.Open(got, raw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("bs=%d: roundtrip mismatch", bs)
		}
	}
}

func TestBadBlockSizes(t *testing.T) {
	key := DeriveKey([]byte("k"), "x")
	for _, bs := range []int{0, 8, 16, 17, 30, 31, 33} {
		if _, err := New(key, bs); err == nil {
			t.Fatalf("New(%d) should fail", bs)
		}
	}
}

func TestSealRejectsBadLengths(t *testing.T) {
	s := mustSealer(t, 64)
	good := make([]byte, 64)
	iv := make([]byte, IVSize)
	data := make([]byte, s.DataSize())
	if err := s.Seal(good[:63], iv, data); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := s.Seal(good, iv[:8], data); err == nil {
		t.Fatal("short iv accepted")
	}
	if err := s.Seal(good, iv, data[:1]); err == nil {
		t.Fatal("short data accepted")
	}
	if err := s.Open(data[:8], good); err == nil {
		t.Fatal("short open dst accepted")
	}
	if err := s.Open(data, good[:8]); err == nil {
		t.Fatal("short raw accepted")
	}
}

func TestResealChangesEveryByteButNotPlaintext(t *testing.T) {
	s := mustSealer(t, 4096)
	rng := prng.NewFromUint64(3)
	data := rng.Bytes(s.DataSize())
	raw := make([]byte, 4096)
	if err := s.Seal(raw, rng.Bytes(IVSize), data); err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), raw...)
	if err := s.Reseal(raw, rng.Bytes(IVSize), nil); err != nil {
		t.Fatal(err)
	}
	// Plaintext must be preserved.
	got := make([]byte, s.DataSize())
	if err := s.Open(got, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reseal corrupted plaintext")
	}
	// The ciphertext should look completely different: with CBC under a
	// fresh IV, matching 16-byte cipher blocks are overwhelmingly
	// unlikely.
	same := 0
	for i := 0; i+16 <= len(raw); i += 16 {
		if bytes.Equal(before[i:i+16], raw[i:i+16]) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d cipher blocks unchanged after reseal", same)
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	a := DeriveKey([]byte("s"), "one")
	b := DeriveKey([]byte("s"), "two")
	c := DeriveKey([]byte("other"), "one")
	if a == b || a == c || b == c {
		t.Fatal("derived keys collided")
	}
	if a != DeriveKey([]byte("s"), "one") {
		t.Fatal("derivation not deterministic")
	}
}

func TestKeyFromPassphrase(t *testing.T) {
	k1 := KeyFromPassphrase("hunter2", []byte("salt"), 100)
	k2 := KeyFromPassphrase("hunter2", []byte("salt"), 100)
	if k1 != k2 {
		t.Fatal("not deterministic")
	}
	if k1 == KeyFromPassphrase("hunter2", []byte("pepper"), 100) {
		t.Fatal("salt ignored")
	}
	if k1 == KeyFromPassphrase("hunter3", []byte("salt"), 100) {
		t.Fatal("passphrase ignored")
	}
	if k1 == KeyFromPassphrase("hunter2", []byte("salt"), 101) {
		t.Fatal("iterations ignored")
	}
	// Degenerate iteration counts clamp rather than crash.
	_ = KeyFromPassphrase("p", nil, 0)
	_ = KeyFromPassphrase("p", nil, -5)
}

func TestWrongKeyGarbles(t *testing.T) {
	s1 := mustSealer(t, 256)
	s2, err := New(DeriveKey([]byte("different"), "test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(8)
	data := rng.Bytes(s1.DataSize())
	raw := make([]byte, 256)
	if err := s1.Seal(raw, rng.Bytes(IVSize), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, s2.DataSize())
	if err := s2.Open(got, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("wrong key decrypted correctly?!")
	}
}

func TestChecksumDetectsTamper(t *testing.T) {
	key := DeriveKey([]byte("k"), "chk")
	data := []byte("some header bytes")
	sum := Checksum(key, "hdr", data)
	if sum != Checksum(key, "hdr", data) {
		t.Fatal("not deterministic")
	}
	if sum == Checksum(key, "hdr", []byte("some header bytez")) {
		t.Fatal("tamper not detected")
	}
	if sum == Checksum(key, "other", data) {
		t.Fatal("context ignored")
	}
	if sum == Checksum(DeriveKey([]byte("k2"), "chk"), "hdr", data) {
		t.Fatal("key ignored")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := mustSealer(t, 128)
	f := func(seed uint64) bool {
		rng := prng.NewFromUint64(seed)
		data := rng.Bytes(s.DataSize())
		raw := make([]byte, 128)
		if err := s.Seal(raw, rng.Bytes(IVSize), data); err != nil {
			return false
		}
		got := make([]byte, s.DataSize())
		if err := s.Open(got, raw); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal4K(b *testing.B) {
	s, _ := New(DeriveKey([]byte("k"), "b"), 4096)
	rng := prng.NewFromUint64(1)
	data := rng.Bytes(s.DataSize())
	iv := rng.Bytes(IVSize)
	raw := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		s.Seal(raw, iv, data)
	}
}

func BenchmarkReseal4K(b *testing.B) {
	s, _ := New(DeriveKey([]byte("k"), "b"), 4096)
	rng := prng.NewFromUint64(1)
	raw := make([]byte, 4096)
	s.Seal(raw, rng.Bytes(IVSize), rng.Bytes(s.DataSize()))
	scratch := make([]byte, s.DataSize())
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		s.Reseal(raw, raw[:IVSize], scratch)
	}
}
