package sealer

import (
	"runtime"
	"sync"
	"sync/atomic"

	"steghide/internal/obs"
)

// Pipeline fans the batched seal operations out over a bounded pool of
// workers, one batch at a time. It exists because the update path of
// the constructions is pure CPU — one AES-CBC pass per block — and the
// serial SealMany/OpenMany/ResealMany loops cap a session at one core.
//
// Bit-identity contract: every Pipeline method produces byte-for-byte
// the output of its serial Sealer counterpart, and consumes the
// caller's IV source in exactly the serial order. IVs are drawn
// through nextIV serially, in index order, *before* any worker runs —
// parallelism never reorders the RNG stream — and each block's
// transform depends only on its own buffers, so the scatter across
// workers is invisible in the result. That is what lets the scheduler
// flip the pipeline on and off without moving a single observable
// byte (the regression oracle of Definition 1).
//
// Error semantics differ from the serial methods in one way: a serial
// loop stops at the first bad block, leaving a well-defined prefix
// transformed, while a parallel batch may have transformed an
// arbitrary subset when it reports the error. All length validation
// happens up front (no buffer is touched on a malformed batch), so in
// practice the divergence is unreachable for well-formed batches.
//
// A Pipeline is stateless (a worker count) and safe for concurrent use
// by any number of batches; workers are spawned per batch, bounded by
// the pool size, so an idle Pipeline costs nothing.
type Pipeline struct {
	workers int

	// Observability hooks, nil until Instrument: batch/block
	// throughput counters and an in-flight gauge. They record batch
	// sizes and counts only — never which blocks a batch touched.
	batches  *obs.Counter
	blocks   *obs.Counter
	inflight *obs.Gauge
}

// Instrument attaches throughput counters and an in-flight gauge,
// updated by Each (the primitive every batch method routes through).
// Install before concurrent use; nil hooks stay silent.
func (p *Pipeline) Instrument(batches, blocks *obs.Counter, inflight *obs.Gauge) {
	p.batches = batches
	p.blocks = blocks
	p.inflight = inflight
}

// NewPipeline returns a pipeline of the given width; workers <= 0
// selects GOMAXPROCS. Width 1 degenerates to the serial loops (used by
// the GOMAXPROCS=1 CI lane to pin that the parallel and serial paths
// are the same code shape).
func NewPipeline(workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{workers: workers}
}

// Workers returns the pool width.
func (p *Pipeline) Workers() int { return p.workers }

// Each runs fn(i) for every i in [0, n) across the pipeline's workers
// and returns the first error. It is the primitive the batch methods
// are built on, exported for callers whose batches mix sealers (the
// scheduler's dummy bursts reseal each block under its own key). fn
// must be safe to call from multiple goroutines on distinct indices;
// after an error the remaining indices may or may not run.
func (p *Pipeline) Each(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if p.batches != nil {
		p.batches.Inc()
		p.blocks.Add(uint64(n))
		p.inflight.Add(int64(n))
		defer p.inflight.Add(int64(-n))
	}
	workers := min(p.workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		first   error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { first = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// drawIVs consumes n IVs from nextIV serially, in index order, into
// one slab — the whole trick that keeps parallel sealing bit-identical
// to the serial loops: the RNG stream is drained exactly as the serial
// code would drain it, before any worker touches a block.
func drawIVs(n int, nextIV func(iv []byte)) []byte {
	ivs := make([]byte, n*IVSize)
	for i := 0; i < n; i++ {
		nextIV(ivs[i*IVSize : (i+1)*IVSize])
	}
	return ivs
}

// SealMany is Sealer.SealMany across the pool: IVs are drawn serially
// in index order, then datas[i] seals into dsts[i] on whichever worker
// picks i up. Output is bit-identical to the serial method.
func (p *Pipeline) SealMany(s *Sealer, dsts [][]byte, nextIV func(iv []byte), datas [][]byte) error {
	if err := s.checkSealBatch(dsts, datas); err != nil {
		return err
	}
	ivs := drawIVs(len(dsts), nextIV)
	return p.Each(len(dsts), func(i int) error {
		return s.Seal(dsts[i], ivs[i*IVSize:(i+1)*IVSize], datas[i])
	})
}

// OpenMany is Sealer.OpenMany across the pool.
func (p *Pipeline) OpenMany(s *Sealer, dsts, raws [][]byte) error {
	if err := s.checkOpenBatch(dsts, raws); err != nil {
		return err
	}
	return p.Each(len(dsts), func(i int) error {
		return s.Open(dsts[i], raws[i])
	})
}

// ResealMany is Sealer.ResealMany across the pool: IVs serial, the
// decrypt/re-encrypt of each block parallel, every worker borrowing
// scratch from the sealer's existing pool (at most `workers` buffers
// live at once, whatever the batch size).
func (p *Pipeline) ResealMany(s *Sealer, raws [][]byte, nextIV func(iv []byte)) error {
	if err := s.checkResealBatch(raws); err != nil {
		return err
	}
	ivs := drawIVs(len(raws), nextIV)
	return p.Each(len(raws), func(i int) error {
		scratch := s.getScratch()
		defer s.putScratch(scratch)
		return s.Reseal(raws[i], ivs[i*IVSize:(i+1)*IVSize], scratch)
	})
}
