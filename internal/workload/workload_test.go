package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"steghide/internal/prng"
)

func TestPopulationCoversTarget(t *testing.T) {
	rng := prng.NewFromUint64(1)
	specs, err := Population(rng, "u1", 1000, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	names := map[string]bool{}
	for _, s := range specs {
		if s.Blocks == 0 {
			t.Fatal("zero-block file")
		}
		if s.Blocks > 64 {
			t.Fatalf("file of %d blocks exceeds max", s.Blocks)
		}
		if names[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		total += s.Blocks
	}
	if total != 1000 {
		t.Fatalf("population covers %d blocks, want 1000", total)
	}
}

func TestPopulationValidation(t *testing.T) {
	rng := prng.NewFromUint64(1)
	if _, err := Population(rng, "u", 100, 0, 10); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := Population(rng, "u", 100, 20, 10); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestContentDeterministic(t *testing.T) {
	a := Content("/x", 100)
	b := Content("/x", 100)
	c := Content("/y", 100)
	if !bytes.Equal(a, b) {
		t.Fatal("content not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different names share content")
	}
}

func TestUpdatesInBounds(t *testing.T) {
	rng := prng.NewFromUint64(2)
	files := []FileSpec{{Name: "/a", Blocks: 10}, {Name: "/b", Blocks: 20}}
	ops, err := Updates(rng, files, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]uint64{"/a": 10, "/b": 20}
	for _, op := range ops {
		if op.Off+uint64(op.Blocks) > sizes[op.Name] {
			t.Fatalf("op %+v out of bounds", op)
		}
	}
	if _, err := Updates(rng, nil, 1, 1); err == nil {
		t.Fatal("empty file set accepted")
	}
	if _, err := Updates(rng, files, 1, 0); err == nil {
		t.Fatal("zero range accepted")
	}
	if _, err := Updates(rng, []FileSpec{{Name: "/tiny", Blocks: 2}}, 1, 5); err == nil {
		t.Fatal("range larger than file accepted")
	}
}

func TestReadStream(t *testing.T) {
	s := ReadStream(FileSpec{Name: "/f", Blocks: 4})
	want := []uint64{0, 1, 2, 3}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("stream %v", s)
		}
	}
}

func TestQuickPopulationInvariants(t *testing.T) {
	f := func(seed uint64, target uint16, minRaw, spanRaw uint8) bool {
		minB := uint64(minRaw)%32 + 1
		maxB := minB + uint64(spanRaw)%32
		specs, err := Population(prng.NewFromUint64(seed), "q", uint64(target), minB, maxB)
		if err != nil {
			return false
		}
		var total uint64
		for _, s := range specs {
			// The final file may be truncated below min to hit the
			// target exactly; everything else must respect the range.
			if s.Blocks > maxB || s.Blocks == 0 {
				return false
			}
			total += s.Blocks
		}
		return total == uint64(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
