// Package workload generates the file populations and operation
// streams of the paper's evaluation (Table 2): files of 4–8 MB on a
// 1 GB volume kept at or below 50% utilization, single-block and
// ranged updates at random positions, and per-user request streams
// for the concurrency experiments.
//
// Everything is driven by the deterministic PRNG so experiments are
// reproducible; scale factors shrink the absolute sizes without
// changing any ratio the paper's claims depend on.
package workload

import (
	"fmt"

	"steghide/internal/prng"
)

// FileSpec describes one generated file.
type FileSpec struct {
	Name   string
	Blocks uint64
}

// Population plans a set of files totalling roughly targetBlocks,
// with sizes uniform in [minBlocks, maxBlocks] (the paper's "(4, 8]
// MBytes" becomes a block range at any scale).
func Population(rng *prng.PRNG, prefix string, targetBlocks, minBlocks, maxBlocks uint64) ([]FileSpec, error) {
	if minBlocks == 0 || maxBlocks < minBlocks {
		return nil, fmt.Errorf("workload: size range [%d,%d]", minBlocks, maxBlocks)
	}
	var specs []FileSpec
	var total uint64
	for i := 0; total < targetBlocks; i++ {
		n := minBlocks + rng.Uint64n(maxBlocks-minBlocks+1)
		if total+n > targetBlocks {
			n = targetBlocks - total
			if n == 0 {
				break
			}
		}
		specs = append(specs, FileSpec{
			Name:   fmt.Sprintf("%s/file-%04d", prefix, i),
			Blocks: n,
		})
		total += n
	}
	return specs, nil
}

// Content produces deterministic pseudo-random file content of n
// bytes for a given name, so any copy can be re-derived for
// verification.
func Content(name string, n int) []byte {
	return prng.New([]byte("workload-content\x00" + name)).Bytes(n)
}

// UpdateOp is one update request: `Blocks` consecutive blocks starting
// at logical block Off of file Name.
type UpdateOp struct {
	Name   string
	Off    uint64
	Blocks int
}

// Updates generates count update ops of fixed range over the given
// files, at uniformly random positions.
func Updates(rng *prng.PRNG, files []FileSpec, count, rangeBlocks int) ([]UpdateOp, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("workload: no files")
	}
	if rangeBlocks < 1 {
		return nil, fmt.Errorf("workload: update range %d", rangeBlocks)
	}
	ops := make([]UpdateOp, 0, count)
	for i := 0; i < count; i++ {
		f := files[rng.Intn(len(files))]
		if f.Blocks < uint64(rangeBlocks) {
			return nil, fmt.Errorf("workload: file %s smaller than update range", f.Name)
		}
		off := rng.Uint64n(f.Blocks - uint64(rangeBlocks) + 1)
		ops = append(ops, UpdateOp{Name: f.Name, Off: off, Blocks: rangeBlocks})
	}
	return ops, nil
}

// ReadStream lists the logical blocks of a whole-file scan.
func ReadStream(f FileSpec) []uint64 {
	out := make([]uint64, f.Blocks)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}
