package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnBroken reports a client connection desynced by a transport
// fault (or, on a v1 lock-step connection, by an interrupted call);
// every further call fails until the caller redials. Protocol v2
// removed the cancellation case from this latch: a cancelled v2 call
// abandons only its own request ID — the demux reader discards the
// late reply by ID — so the connection stays healthy.
var ErrConnBroken = errors.New("wire: connection broken; redial")

// errConnClosed reports calls after a local Close.
var errConnClosed = errors.New("wire: connection closed")

// muxSendQueue bounds the writer goroutine's mailbox; callers block
// (honoring their contexts) when it is full.
const muxSendQueue = 64

// Send states of one queued request, for the retry layer's
// "provably never reached the server" decision. The caller and the
// writer race on a CAS: whoever moves the state first wins, so a
// request is either provably abandoned before any byte was written
// (caller won) or possibly on the wire (writer won) — never both.
const (
	sendQueued    = int32(0) // in the mailbox, no byte written
	sendStarted   = int32(1) // writer claimed it; bytes may be on the wire
	sendAbandoned = int32(2) // caller reclaimed it; writer will skip it
)

// muxReq is one frame in the writer's mailbox. state is nil for
// fire-and-forget control frames (msgCancel), which no caller tracks.
type muxReq struct {
	f     frame
	state *atomic.Int32
}

// abandon tries to reclaim a queued request before the writer starts
// it, reporting success. A true return proves no byte of the frame was
// ever written — the request is safe to retry even when it mutates.
func (r muxReq) abandon() bool {
	return r.state != nil && r.state.CompareAndSwap(sendQueued, sendAbandoned)
}

// muxConn is one client connection to a wire server, in either of two
// modes decided by the hello handshake at dial time:
//
//   - v2 (multiplexed): every call gets a request ID and a reply
//     channel; a writer goroutine serializes frames onto the socket
//     and a demux reader routes replies to their channels by ID, so
//     any number of calls from any goroutines are concurrently in
//     flight on one connection. Context cancellation sends msgCancel
//     and abandons just that request.
//   - v1 (lock-step): the peer predates the hello frame; a mutex
//     serializes whole round trips, and an interrupted call latches
//     the connection broken exactly as protocol v1 always did.
type muxConn struct {
	conn     net.Conn
	maxFrame uint64 // negotiated body limit (v1: maxBodySize)
	v1       bool

	// --- v1 lock-step state --------------------------------------
	lmu     sync.Mutex
	lbroken bool // guarded by lmu — a queued call must see the latch

	// brokenHint mirrors lbroken for lock-free health checks: lmu is
	// held across whole round trips, so a prober must not take it.
	brokenHint atomic.Bool

	// goaway is set when the server announced a drain (msgGoaway): the
	// connection still answers its in-flight requests, but a
	// redial-capable caller should place its next call elsewhere.
	goaway atomic.Bool

	// --- v2 mux state --------------------------------------------
	sendq    chan muxReq
	quit     chan struct{} // closed by Close
	dead     chan struct{} // closed when reader/writer hit a fault
	deadOnce sync.Once
	quitOnce sync.Once

	mu      sync.Mutex
	err     error // first transport fault, wrapped in ErrConnBroken
	pending map[uint32]chan frame
	nextID  uint32
}

// dialMux connects to addr and runs the hello handshake: a v2 answer
// starts the mux goroutines, a msgErr answer (an old server rejecting
// the unknown frame type) falls back to lock-step v1. forceV1 skips
// the handshake entirely and speaks v1 — the interop knob a client
// pinned to the old protocol uses.
func dialMux(ctx context.Context, addr string, proposeMax uint64, forceV1 bool) (*muxConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	m, err := newMux(ctx, conn, proposeMax, forceV1)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return m, nil
}

// newMux runs the handshake on an established connection.
func newMux(ctx context.Context, conn net.Conn, proposeMax uint64, forceV1 bool) (*muxConn, error) {
	if proposeMax == 0 || proposeMax > maxBodySize {
		proposeMax = maxBodySize
	}
	if forceV1 {
		return &muxConn{conn: conn, maxFrame: maxBodySize, v1: true}, nil
	}
	// The handshake itself is one lock-step round trip, bounded by
	// the dial context.
	stop := watchCtx(ctx, conn)
	resp, err := func() (frame, error) {
		if err := writeFrame(conn, frame{Type: msgHello, Body: helloBody(protoV2, proposeMax)}); err != nil {
			return frame{}, err
		}
		return readFrame(conn, maxBodySize)
	}()
	if cerr := stop(); cerr != nil {
		return nil, fmt.Errorf("wire: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	switch resp.Type {
	case msgHello:
		version, theirMax, err := decodeHello(resp.Body)
		resp.release()
		if err != nil {
			return nil, err
		}
		if version < protoV2 {
			// A server that answers hello but pins v1: lock-step.
			return &muxConn{conn: conn, maxFrame: maxBodySize, v1: true}, nil
		}
		m := &muxConn{
			conn:     conn,
			maxFrame: min(proposeMax, theirMax),
			sendq:    make(chan muxReq, muxSendQueue),
			quit:     make(chan struct{}),
			dead:     make(chan struct{}),
			pending:  map[uint32]chan frame{},
		}
		go m.writeLoop()
		go m.readLoop()
		return m, nil
	case msgErr:
		// A v1 server rejecting the unknown frame type — it is still
		// in frame sync (it answered), so speak v1 on the same
		// connection.
		resp.release()
		return &muxConn{conn: conn, maxFrame: maxBodySize, v1: true}, nil
	default:
		return nil, fmt.Errorf("wire: unexpected hello reply type %#x", resp.Type)
	}
}

// protoVersion reports the negotiated protocol version.
func (m *muxConn) protoVersion() int {
	if m.v1 {
		return protoV1
	}
	return protoV2
}

// call runs one request/reply exchange. On a v2 connection it
// pipelines with every other in-flight call; ctx cancellation
// abandons only this request (a best-effort msgCancel tells the
// server to stop working on it) and the connection stays usable. On
// a v1 connection it is the classic lock-step round trip with the
// broken-connection latch.
func (m *muxConn) call(ctx context.Context, req frame) (frame, error) {
	resp, _, err := m.callT(ctx, req)
	return resp, err
}

// callT is call with send tracking for the retry layer: on failure,
// sent=false proves no byte of the request ever hit the wire, so even
// a mutating request is safe to resend. sent=true means the request
// may have reached (and been applied by) the server. On success sent
// is always true.
func (m *muxConn) callT(ctx context.Context, req frame) (resp frame, sent bool, err error) {
	if uint64(len(req.Body)) > m.maxFrame {
		// Refuse before anything hits the wire: the peer would reject
		// the frame unread and drop the connection, killing every
		// other in-flight call for one oversized request.
		return frame{}, false, fmt.Errorf("%w: request of %d bytes (limit %d)", ErrFrameTooBig, len(req.Body), m.maxFrame)
	}
	if m.v1 {
		return m.callV1(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return frame{}, false, fmt.Errorf("wire: %w", err)
	}
	ch := make(chan frame, 1)
	id, err := m.register(ch)
	if err != nil {
		return frame{}, false, err
	}
	req.ID = id
	mr := muxReq{f: req, state: new(atomic.Int32)}
	select {
	case m.sendq <- mr:
	case <-ctx.Done():
		m.unregister(id)
		return frame{}, false, fmt.Errorf("wire: %w", ctx.Err())
	case <-m.dead:
		m.unregister(id)
		return frame{}, false, m.brokenErr()
	case <-m.quit:
		m.unregister(id)
		return frame{}, false, errConnClosed
	}
	select {
	case resp := <-ch:
		if resp.Type == msgErr {
			err := decodeRemoteError(resp.Body)
			resp.release() // decodeRemoteError copied what it kept
			return frame{}, true, err
		}
		return resp, true, nil
	case <-ctx.Done():
		// Abandon this request only: drop the pending entry (the
		// demux reader discards the late reply by ID) and tell the
		// server, best effort, to stop working on it.
		if m.unregister(id) {
			select {
			case m.sendq <- muxReq{f: frame{Type: msgCancel, ID: id}}:
			default: // writer saturated — the reply will be discarded anyway
			}
		}
		// Else the reply raced the cancellation and won; the exchange
		// completed intact, but the operation still reports the
		// cancellation (matching the v1 semantics for a round trip
		// that finished as the context fired).
		return frame{}, !mr.abandon(), fmt.Errorf("wire: %w", ctx.Err())
	case <-m.dead:
		// The reader may have delivered the reply just before dying.
		if resp, ok := m.take(ch); ok {
			if resp.Type == msgErr {
				err := decodeRemoteError(resp.Body)
				resp.release()
				return frame{}, true, err
			}
			return resp, true, nil
		}
		m.unregister(id)
		// If the abandon CAS wins, the dying writer never claimed this
		// frame: the request provably never left the mailbox.
		return frame{}, !mr.abandon(), m.brokenErr()
	case <-m.quit:
		m.unregister(id)
		return frame{}, !mr.abandon(), errConnClosed
	}
}

// take drains a buffered reply if one was delivered.
func (m *muxConn) take(ch chan frame) (frame, bool) {
	select {
	case resp := <-ch:
		return resp, true
	default:
		return frame{}, false
	}
}

// register allocates a request ID and parks its reply channel.
func (m *muxConn) register(ch chan frame) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConnBroken, m.err)
	}
	for {
		m.nextID++
		if m.nextID == 0 { // 0 is the v1 wildcard; never assign it
			m.nextID = 1
		}
		if _, busy := m.pending[m.nextID]; !busy {
			break
		}
	}
	id := m.nextID
	m.pending[id] = ch
	return id, nil
}

// unregister forgets a pending request, reporting whether it was
// still pending (false: the reader already delivered its reply).
func (m *muxConn) unregister(id uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, was := m.pending[id]
	delete(m.pending, id)
	return was
}

// writeLoop is the single writer: it serializes frames from every
// caller onto the socket, so concurrent calls never interleave bytes.
// Before writing a tracked frame it claims it (queued→started); a
// frame the caller already abandoned is skipped, so a true abandon is
// a proof that no byte was written.
func (m *muxConn) writeLoop() {
	for {
		select {
		case r := <-m.sendq:
			if r.state != nil && !r.state.CompareAndSwap(sendQueued, sendStarted) {
				continue // caller abandoned it before any byte hit the wire
			}
			if err := writeFrame(m.conn, r.f); err != nil {
				m.fail(err)
				return
			}
		case <-m.quit:
			return
		}
	}
}

// readLoop is the demux reader: it routes every reply to the pending
// channel its ID names. A reply whose ID is unknown belongs to a
// cancelled (abandoned) request and is discarded — this is what keeps
// a cancelled call from desyncing the stream.
func (m *muxConn) readLoop() {
	for {
		f, err := readFrame(m.conn, m.maxFrame)
		if err != nil {
			m.fail(err)
			return
		}
		if f.Type == msgGoaway {
			// Drain announcement: in-flight replies still arrive, but a
			// redial-capable caller should place its next call on a
			// fresh connection.
			m.goaway.Store(true)
			continue
		}
		m.mu.Lock()
		ch := m.pending[f.ID]
		delete(m.pending, f.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- f // the waiting caller owns the lease now
		} else {
			// A cancelled (abandoned) request's late reply: discard it
			// and return its lease — nobody will ever read it.
			f.release()
		}
	}
}

// fail latches the first transport fault and wakes every waiter.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.brokenHint.Store(true)
	m.deadOnce.Do(func() { close(m.dead) })
	m.conn.Close() // unblock the sibling loop
}

// brokenErr reports the latched transport fault. A fault caused by
// the local Close reports as a plain close, not a broken connection.
func (m *muxConn) brokenErr() error {
	select {
	case <-m.quit:
		return errConnClosed
	default:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrConnBroken, m.err)
}

// healthy reports whether the connection can still carry calls: no
// transport fault latched, not locally closed, and the server has not
// announced a drain. Lock-free — safe from any goroutine, including
// while calls are in flight.
func (m *muxConn) healthy() bool {
	if m.brokenHint.Load() || m.goaway.Load() {
		return false
	}
	if m.v1 {
		return true
	}
	select {
	case <-m.dead:
		return false
	case <-m.quit:
		return false
	default:
		return true
	}
}

// draining reports whether the server announced a drain (msgGoaway).
func (m *muxConn) draining() bool { return m.goaway.Load() }

// close tears the connection down; in v2 mode the loops exit via the
// quit channel and the socket close. Idempotent and safe to call
// concurrently with in-flight calls: every path closes the socket
// exactly once and later calls observe the quit latch.
func (m *muxConn) close() error {
	var err error
	m.quitOnce.Do(func() {
		if !m.v1 {
			close(m.quit)
		}
		err = m.conn.Close()
	})
	return err
}

// --- v1 lock-step ------------------------------------------------------

// callV1 is the classic one-at-a-time round trip. The broken latch is
// checked and set inside the connection's critical section: a call
// that was queued behind an interrupted one re-checks after acquiring
// the mutex, so it cannot run on the desynced stream.
func (m *muxConn) callV1(ctx context.Context, req frame) (frame, bool, error) {
	m.lmu.Lock()
	defer m.lmu.Unlock()
	if m.lbroken {
		// The request never touched the wire: the latch precedes it.
		return frame{}, false, ErrConnBroken
	}
	resp, desynced, err := callLocked(ctx, m.conn, req)
	if desynced {
		m.lbroken = true
		m.brokenHint.Store(true)
	}
	// In lock-step mode the round trip runs inline: any failure after
	// callLocked started may have put bytes on the wire, except a
	// pre-send context check — callLocked reports that as !desynced
	// with a ctx error, but distinguishing it is not worth the plumbing;
	// the conservative sent=true only matters for mutating retries.
	return resp, true, err
}

// callLocked is one lock-step round trip; the caller holds the
// connection's mutex. The returned desynced flag reports that the
// request may have reached the peer but its reply was not (fully)
// consumed — the stream is out of frame sync and the connection must
// not carry another call (a later request would pair with the stale
// reply). Cancellation *before* the request is sent leaves the stream
// healthy.
func callLocked(ctx context.Context, conn net.Conn, req frame) (resp frame, desynced bool, err error) {
	if err := ctx.Err(); err != nil {
		return frame{}, false, fmt.Errorf("wire: %w", err)
	}
	stop := watchCtx(ctx, conn)
	resp, ioErr := func() (frame, error) {
		if err := writeFrame(conn, req); err != nil {
			return frame{}, err
		}
		return readFrame(conn, maxBodySize)
	}()
	cerr := stop()
	if ioErr != nil {
		// Any I/O failure after the request started leaves the frame
		// stream unusable, whether the cause was the context firing or
		// a transport fault.
		if cerr != nil {
			return frame{}, true, fmt.Errorf("wire: %w", cerr)
		}
		return frame{}, true, ioErr
	}
	if cerr != nil {
		// The context fired but the round trip completed intact: the
		// stream is still in sync; the operation still reports the
		// cancellation.
		return frame{}, false, fmt.Errorf("wire: %w", cerr)
	}
	if resp.Type == msgErr {
		err := decodeRemoteError(resp.Body)
		resp.release()
		return frame{}, false, err
	}
	return resp, false, nil
}

// watchCtx arms conn with ctx's deadline and interrupts in-flight I/O
// on cancellation. The returned stop undoes both and reports the
// context's error if it fired. stop waits for the watcher goroutine
// to exit before clearing the deadline, so a watcher that raced the
// call's completion cannot expire the deadline afterwards and poison
// the connection's next call.
func watchCtx(ctx context.Context, conn net.Conn) func() error {
	if ctx.Done() == nil {
		return func() error { return nil }
	}
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d) //nolint:errcheck // best-effort bound
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			// Expire the deadline to unblock the frame read/write.
			conn.SetDeadline(time.Now()) //nolint:errcheck
		case <-done:
		}
	}()
	return func() error {
		close(done)
		<-exited
		conn.SetDeadline(time.Time{}) //nolint:errcheck
		return ctx.Err()
	}
}
