package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"steghide/internal/attack"
	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/steghide"
)

// This file is the chaos matrix: the conformance workloads driven
// through FaultListener fault schedules, asserting the self-healing
// contract — every operation either succeeds, fails with a taxonomy
// error, or (non-idempotent ops only) reports ErrMaybeApplied; the
// client never hangs and never latches broken. A model of the
// server's state rides along, with explicit two-valued ambiguity for
// maybe-applied writes, so the test also proves the retry layer never
// silently corrupts: every successful read matches the model.

// chaosPolicy is the retry budget the chaos clients run under: fast
// backoff (the faults are local), enough attempts to ride out a run
// of torn connections.
func chaosPolicy(seed uint64) RetryPolicy {
	return RetryPolicy{MaxRetries: 10, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: seed}
}

// chaosOutcome checks the taxonomy contract on a failed op: the error
// must be a retryable transport failure (budget exhausted), a typed
// maybe-applied, or a peer-reported sentinel — never anything else.
func chaosOutcome(t *testing.T, op string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrMaybeApplied) || errors.Is(err, ErrRemote) || transient(err) {
		return
	}
	t.Fatalf("%s: error outside the failure taxonomy: %v", op, err)
}

// chaosStoragePlan keeps budgets small for the whole run (the stock
// schedule's every-fourth-clean connection would fault-proof the rest
// of the test) while granting every sixth connection enough budget
// for a handful of calls, so retries always make progress.
func chaosStoragePlan(ord int, rng *prng.PRNG) FaultPlan {
	var p FaultPlan
	if ord%6 == 5 {
		p.CutAfter = 4096
	} else {
		p.CutAfter = 200 + rng.Uint64n(1200)
	}
	if rng.Uint64n(4) == 0 {
		p.ReadLatency = time.Duration(1+rng.Uint64n(2)) * time.Millisecond
	}
	return p
}

func TestChaosMatrixStorage(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const (
				blockSize = 128
				numBlocks = 512
				hotRange  = 48 // small address range keeps read/write collisions frequent
				ops       = 80
			)
			dev := blockdev.NewMem(blockSize, numBlocks)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fln := NewFaultListener(ln, seed)
			fln.Plan = chaosStoragePlan
			srv, err := NewStorageServerListener(fln, dev, nil)
			if err != nil {
				t.Fatal(err)
			}
			killed, kill := context.WithCancel(context.Background())
			kill()
			defer srv.Shutdown(killed) //nolint:errcheck // abrupt teardown

			cli, err := DialStorageRetry(context.Background(), chaosPolicy(seed), srv.Addr())
			if err != nil {
				t.Fatalf("initial dial never survived the fault schedule: %v", err)
			}
			defer cli.Close()

			// The model: definite contents per block, or a candidate set
			// after maybe-applied writes. (Stacked maybe-applied writes
			// accumulate candidates: each one may or may not have landed,
			// so the block can hold the original value or any of them.)
			// Unwritten blocks are zero (Mem's initial state).
			definite := map[uint64][]byte{}
			ambiguous := map[uint64][][]byte{}
			known := func(b uint64) []byte {
				if d, ok := definite[b]; ok {
					return d
				}
				return make([]byte, blockSize)
			}

			rng := prng.NewFromUint64(seed).Child("chaos-driver")
			var okN, maybeN, failN int
			for i := 0; i < ops; i++ {
				block := rng.Uint64n(hotRange)
				if rng.Uint64n(2) == 0 {
					data := bytes.Repeat([]byte{byte(i + 1)}, blockSize)
					err := cli.WriteBlock(block, data)
					switch {
					case err == nil:
						definite[block] = data
						delete(ambiguous, block)
						okN++
					case errors.Is(err, ErrMaybeApplied):
						if _, ok := ambiguous[block]; !ok {
							ambiguous[block] = [][]byte{known(block)}
						}
						ambiguous[block] = append(ambiguous[block], data)
						delete(definite, block)
						maybeN++
					default:
						chaosOutcome(t, "WriteBlock", err)
						failN++
					}
					continue
				}
				buf := make([]byte, blockSize)
				err := cli.ReadBlock(block, buf)
				if err != nil {
					chaosOutcome(t, "ReadBlock", err)
					if errors.Is(err, ErrMaybeApplied) {
						t.Fatalf("ReadBlock is idempotent; it must never report ErrMaybeApplied (got %v)", err)
					}
					failN++
					continue
				}
				okN++
				if cands, ok := ambiguous[block]; ok {
					// Maybe-applied writes resolve at the next read: the
					// block must hold one of the candidates, and reading
					// pins which.
					resolved := false
					for _, c := range cands {
						if bytes.Equal(buf, c) {
							definite[block] = c
							resolved = true
							break
						}
					}
					if !resolved {
						t.Fatalf("block %d holds none of the %d maybe-applied candidates", block, len(cands))
					}
					delete(ambiguous, block)
					continue
				}
				if want := known(block); !bytes.Equal(buf, want) {
					t.Fatalf("block %d: read diverged from model", block)
				}
			}
			t.Logf("chaos storage seed=%d: %d ok, %d maybe-applied, %d failed", seed, okN, maybeN, failN)

			// The client must never latch: a fresh call eventually lands on
			// a connection with budget and succeeds.
			buf := make([]byte, blockSize)
			for attempt := 0; ; attempt++ {
				if err := cli.ReadBlock(0, buf); err == nil {
					break
				} else if attempt > 50 {
					t.Fatalf("client latched: 50 post-chaos reads all failed, last: %v", err)
				}
			}
		})
	}
}

// chaosAgentPlan: agent calls are chattier (a reconnect replays login
// and disclosures before the retried op), so budgets are bigger, with
// every fifth connection roomy enough for sustained progress.
func chaosAgentPlan(ord int, rng *prng.PRNG) FaultPlan {
	var p FaultPlan
	if ord%5 == 4 {
		p.CutAfter = 1 << 20
	} else {
		p.CutAfter = 600 + rng.Uint64n(2000)
	}
	return p
}

func TestChaosMatrixAgent(t *testing.T) {
	for _, seed := range []uint64{4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const (
				path    = "/vault/chaos.dat"
				fileLen = 256
				ops     = 40
			)
			agent := testAgent(t, 70+seed)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fln := NewFaultListener(ln, seed)
			fln.Plan = chaosAgentPlan
			srv, err := NewMultiAgentServerListener(fln, map[string]*steghide.VolatileAgent{"": agent})
			if err != nil {
				t.Fatal(err)
			}
			killed, kill := context.WithCancel(context.Background())
			kill()
			defer srv.Shutdown(killed) //nolint:errcheck // abrupt teardown

			cli, err := DialAgentRetry(context.Background(), chaosPolicy(seed), srv.Addr())
			if err != nil {
				t.Fatalf("initial dial never survived the fault schedule: %v", err)
			}
			defer cli.Close()

			// Login and file creation must converge under chaos: login is
			// idempotent (plain retry), create reconciles a maybe-applied
			// by checking whether the file exists.
			for attempt := 0; ; attempt++ {
				if err := cli.Login("alice", "chaos-pass"); err == nil {
					break
				} else if attempt > 50 {
					t.Fatalf("login never succeeded: %v", err)
				} else {
					chaosOutcome(t, "Login", err)
				}
			}
			// Writes allocate from disclosed dummy space, so a dummy file
			// must converge first — same reconcile dance as Create.
			for attempt := 0; ; attempt++ {
				err := cli.CreateDummy("/vault/dummy", 64)
				if err == nil {
					break
				}
				if attempt > 50 {
					t.Fatalf("CreateDummy never converged: %v", err)
				}
				chaosOutcome(t, "CreateDummy", err)
				if _, _, derr := cli.Disclose("/vault/dummy"); derr == nil {
					break
				}
			}
			ensureFile(t, cli, path)

			// Establish definite contents with a converging rewrite: a
			// maybe-applied write of data D is reconciled by writing D
			// again — both candidate states agree once the rewrite lands.
			content := bytes.Repeat([]byte{0xA0}, fileLen)
			mustWrite(t, cli, path, content)

			var amb [][]byte // maybe-applied candidate contents, oldest first
			rng := prng.NewFromUint64(seed).Child("chaos-agent-driver")
			var okN, maybeN, failN int
			for i := 0; i < ops; i++ {
				switch rng.Uint64n(3) {
				case 0: // full-file rewrite
					data := bytes.Repeat([]byte{byte(i + 1)}, fileLen)
					err := cli.Write(path, data, 0)
					switch {
					case err == nil:
						content, amb = data, nil
						okN++
					case errors.Is(err, ErrMaybeApplied):
						if amb == nil {
							amb = [][]byte{content}
						}
						amb = append(amb, data)
						maybeN++
					default:
						chaosOutcome(t, "Write", err)
						failN++
					}
				case 1: // read back, resolving any pending ambiguity
					buf := make([]byte, fileLen)
					n, err := cli.Read(path, buf, 0)
					if err != nil {
						chaosOutcome(t, "Read", err)
						failN++
						continue
					}
					okN++
					got := buf[:n]
					if amb != nil {
						resolved := false
						for _, c := range amb {
							if bytes.Equal(got, c) {
								content, amb, resolved = c, nil, true
								break
							}
						}
						if !resolved {
							t.Fatalf("file holds none of the %d maybe-applied candidates", len(amb))
						}
						continue
					}
					if !bytes.Equal(got, content) {
						t.Fatalf("read diverged from model (%d bytes)", n)
					}
				case 2: // metadata ops: list (idempotent), save (not)
					if rng.Uint64n(2) == 0 {
						files, err := cli.Files()
						if err != nil {
							chaosOutcome(t, "Files", err)
							failN++
							continue
						}
						okN++
						found := false
						for _, f := range files {
							if f == path {
								found = true
							}
						}
						if !found {
							t.Fatalf("Files() lost %q", path)
						}
					} else {
						err := cli.Save(path)
						// Save is non-idempotent on the wire but a no-op to
						// repeat; content is unchanged either way.
						if err != nil {
							chaosOutcome(t, "Save", err)
							failN++
						} else {
							okN++
						}
					}
				}
			}
			t.Logf("chaos agent seed=%d: %d ok, %d maybe-applied, %d failed", seed, okN, maybeN, failN)

			// Never latched: liveness and a consistent final read both
			// eventually succeed.
			for attempt := 0; ; attempt++ {
				if err := cli.Ping(); err == nil {
					break
				} else if attempt > 50 {
					t.Fatalf("client latched: ping still failing: %v", err)
				}
			}
			for attempt := 0; ; attempt++ {
				buf := make([]byte, fileLen)
				n, err := cli.Read(path, buf, 0)
				if err != nil {
					if attempt > 50 {
						t.Fatalf("final read never succeeded: %v", err)
					}
					continue
				}
				got := buf[:n]
				if amb != nil {
					matched := false
					for _, c := range amb {
						matched = matched || bytes.Equal(got, c)
					}
					if !matched {
						t.Fatalf("final read holds none of the maybe-applied candidates")
					}
				} else if !bytes.Equal(got, content) {
					t.Fatalf("final read diverged from model")
				}
				break
			}
		})
	}
}

// ensureFile converges Create under chaos: a maybe-applied create is
// reconciled by disclosing the path — if the file exists the create
// landed; if not, try again.
func ensureFile(t *testing.T, cli *Client, path string) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := cli.Create(path)
		if err == nil {
			return
		}
		if attempt > 50 {
			t.Fatalf("Create never converged: %v", err)
		}
		chaosOutcome(t, "Create", err)
		if _, _, derr := cli.Disclose(path); derr == nil {
			return // the ambiguous create had in fact applied
		}
	}
}

// mustWrite converges a full-content write: rewriting identical bytes
// collapses maybe-applied ambiguity, so looping until a clean success
// always ends in a definite state.
func mustWrite(t *testing.T, cli *Client, path string, data []byte) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := cli.Write(path, data, 0)
		if err == nil {
			return
		}
		if attempt > 50 {
			t.Fatalf("write never converged: %v", err)
		}
		chaosOutcome(t, "Write", err)
	}
}

// driveStorageWorkload runs the deterministic Definition-1 reference
// workload — single-block and batched reads and writes over a seeded
// address stream — against dev. Identical seeds produce identical
// call sequences, so two servers driven this way must record
// identical traces.
func driveStorageWorkload(t *testing.T, dev *RemoteDevice, seed uint64, ops int) {
	t.Helper()
	rng := prng.NewFromUint64(seed).Child("def1-workload")
	blockSize := dev.BlockSize()
	n := dev.NumBlocks()
	for i := 0; i < ops; i++ {
		block := rng.Uint64n(n - 8)
		switch rng.Uint64n(4) {
		case 0:
			buf := make([]byte, blockSize)
			if err := dev.ReadBlock(block, buf); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := dev.WriteBlock(block, bytes.Repeat([]byte{byte(i)}, blockSize)); err != nil {
				t.Fatal(err)
			}
		case 2:
			bufs := make([][]byte, 4)
			for j := range bufs {
				bufs[j] = make([]byte, blockSize)
			}
			if err := dev.ReadBlocks(block, bufs); err != nil {
				t.Fatal(err)
			}
		case 3:
			data := make([][]byte, 4)
			for j := range data {
				data[j] = bytes.Repeat([]byte{byte(i + j)}, blockSize)
			}
			if err := dev.WriteBlocks(block, data); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestRetryTrafficIdenticalToDirect is the Definition-1 regression
// for the self-healing layer: with retries enabled on a fault-free
// link, the server-observed I/O stream — the adversary's view in the
// paper's model — is bit-identical to a plain client's, and every
// figure metric computed from it is unchanged. (The retry layer adds
// no probe traffic, reorders nothing, and duplicates nothing unless a
// fault actually fires.)
func TestRetryTrafficIdenticalToDirect(t *testing.T) {
	const (
		blockSize = 128
		numBlocks = 512
		ops       = 120
	)
	run := func(retry bool) []blockdev.Event {
		tap := &blockdev.Collector{}
		srv, err := NewStorageServer("127.0.0.1:0", blockdev.NewMem(blockSize, numBlocks), tap)
		if err != nil {
			t.Fatal(err)
		}
		var dev *RemoteDevice
		if retry {
			dev, err = DialStorageRetry(context.Background(), RetryPolicy{JitterSeed: 99}, srv.Addr())
		} else {
			dev, err = DialStorage(srv.Addr())
		}
		if err != nil {
			t.Fatal(err)
		}
		driveStorageWorkload(t, dev, 1234, ops)
		dev.Close()
		srv.Close()
		return tap.Events()
	}

	direct := run(false)
	retried := run(true)
	if !reflect.DeepEqual(direct, retried) {
		t.Fatalf("retry layer perturbed the observed stream: %d direct vs %d retried events", len(direct), len(retried))
	}

	// The figure metrics agree exactly — same stream, same verdicts.
	an := attack.NewTrafficAnalyzer(numBlocks)
	vd, err := an.FrequencySkew(direct, 16)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := an.FrequencySkew(retried, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vd != vr {
		t.Fatalf("FrequencySkew verdicts diverge: direct %+v, retried %+v", vd, vr)
	}
	rd, dd := an.RepeatedReads(direct)
	rr, dr := an.RepeatedReads(retried)
	if rd != rr || dd != dr {
		t.Fatalf("RepeatedReads diverge: direct (%d,%d), retried (%d,%d)", rd, dd, rr, dr)
	}
}

// BenchmarkRetryOverhead pairs a plain client against a retry-enabled
// one on a fault-free link: the per-op cost of the send-state
// tracking and the healthy-connection fast path. The acceptance bar
// is ≤2% on reads.
func BenchmarkRetryOverhead(b *testing.B) {
	const blockSize = 4096
	for _, mode := range []string{"direct", "retry"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			srv, err := NewStorageServer("127.0.0.1:0", blockdev.NewMem(blockSize, 1024), nil)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			var dev *RemoteDevice
			if mode == "retry" {
				dev, err = DialStorageRetry(context.Background(), RetryPolicy{JitterSeed: 7}, srv.Addr())
			} else {
				dev, err = DialStorage(srv.Addr())
			}
			if err != nil {
				b.Fatal(err)
			}
			defer dev.Close()
			buf := make([]byte, blockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dev.ReadBlock(uint64(i)%1024, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// FuzzFaultConnTear drives a frame through a FaultConn with an
// arbitrary byte budget: the peer must either decode the frame intact
// (budget not hit) or get a clean transport error from the torn
// prefix — never a corrupted frame, never a hang. This is the chaos
// harness's own conformance fuzz: the tearing machinery must tear
// frames, not bytes inside intact frames.
func FuzzFaultConnTear(f *testing.F) {
	f.Add([]byte("hello world"), uint16(5))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte("exactly"), uint16(16+7)) // cut lands on the frame boundary
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint16(200))
	f.Fuzz(func(t *testing.T, body []byte, cut uint16) {
		if uint64(len(body)) > fuzzLimit {
			return
		}
		client, server := net.Pipe()
		fc := NewFaultConn(client, FaultPlan{CutAfter: uint64(cut)})
		sent := frame{Type: msgWrite, ID: 9, Body: body}
		werr := make(chan error, 1)
		go func() {
			werr <- writeFrame(fc, sent)
			fc.Close()
		}()
		got, rerr := readFrame(server, fuzzLimit)
		server.Close()
		if rerr == nil {
			if got.Type != sent.Type || got.ID != sent.ID || !bytes.Equal(got.Body, sent.Body) {
				t.Fatalf("frame survived the fault plan but decoded differently")
			}
		}
		if err := <-werr; err != nil && !errors.Is(err, ErrInjectedFault) {
			// The writer either succeeds or reports the injected cut;
			// net.Pipe's close races can also surface as a pipe error,
			// which is the peer-hung-up case, fine too.
			if !errors.Is(err, io.ErrClosedPipe) {
				t.Fatalf("writer failed outside the fault taxonomy: %v", err)
			}
		}
	})
}
