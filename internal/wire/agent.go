package wire

import (
	"fmt"
	"net"
	"sync"

	"steghide/internal/steghide"
)

// AgentServer exposes a volatile agent (Construction 2) to clients
// over TCP. Each connection is one user's channel; the login state is
// connection-scoped, and dropping the connection logs the user out —
// the volatility property, enforced by transport lifetime.
//
// Connections are served concurrently, and since the agent's update
// path is itself concurrent (the per-volume scheduler in
// internal/sched merges all sessions' intents into one uniformly
// random stream), simultaneous requests from different users overlap
// their crypto and storage I/O instead of lock-stepping through an
// agent-wide mutex. Requests on a single connection are processed in
// order — one user's operations keep their sequential semantics.
type AgentServer struct {
	agent *steghide.VolatileAgent
	ln    net.Listener
	wg    sync.WaitGroup
}

// NewAgentServer starts serving the agent on addr.
func NewAgentServer(addr string, agent *steghide.VolatileAgent) (*AgentServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &AgentServer{agent: agent, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *AgentServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connections to drain.
func (s *AgentServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *AgentServer) serve(conn net.Conn) {
	var session *steghide.Session
	var user string
	defer func() {
		if session != nil {
			s.agent.Logout(user) //nolint:errcheck // best-effort cleanup
		}
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.handle(req, &session, &user)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *AgentServer) handle(req frame, session **steghide.Session, user *string) frame {
	d := &decoder{b: req.Body}
	switch req.Type {
	case msgLogin:
		if *session != nil {
			return errFrame(fmt.Errorf("wire: already logged in"))
		}
		u := d.str()
		pass := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		sess, err := s.agent.LoginWithPassphrase(u, pass)
		if err != nil {
			return errFrame(err)
		}
		*session = sess
		*user = u
		return frame{Type: msgOK}

	case msgLogout:
		if *session == nil {
			return errFrame(steghide.ErrUnknownUser)
		}
		err := s.agent.Logout(*user)
		*session = nil
		*user = ""
		if err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	}

	if *session == nil {
		return errFrame(fmt.Errorf("wire: not logged in"))
	}
	sess := *session
	switch req.Type {
	case msgCreate:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.Create(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgCreateDummy:
		path := d.str()
		blocks := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.CreateDummy(path, blocks); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgDisclose:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		f, err := sess.Disclose(path)
		if err != nil {
			return errFrame(err)
		}
		e := &encoder{}
		var dummy uint64
		if f.IsDummy() {
			dummy = 1
		}
		e.u64(dummy).u64(f.Size())
		return frame{Type: msgOK, Body: e.b}
	case msgRead:
		path := d.str()
		off := d.u64()
		n := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if n > maxBodySize {
			return errFrame(fmt.Errorf("wire: read of %d bytes exceeds limit", n))
		}
		buf := make([]byte, n)
		got, err := sess.Read(path, buf, off)
		if err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK, Body: buf[:got]}
	case msgWrite:
		path := d.str()
		off := d.u64()
		data := d.raw()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Write(path, data, off); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgSave:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Save(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	default:
		return errFrame(fmt.Errorf("wire: unknown message type %#x", req.Type))
	}
}

// Client is a user's connection to an AgentServer.
type Client struct {
	conn net.Conn
	mu   sync.Mutex
}

// DialAgent connects to an agent server.
func DialAgent(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close drops the connection (logging the user out server-side).
func (c *Client) Close() error { return c.conn.Close() }

// Login authenticates the connection's user.
func (c *Client) Login(user, passphrase string) error {
	e := &encoder{}
	e.str(user).str(passphrase)
	_, err := call(c.conn, &c.mu, frame{Type: msgLogin, Body: e.b})
	return err
}

// Logout ends the session, flushing disclosed files.
func (c *Client) Logout() error {
	_, err := call(c.conn, &c.mu, frame{Type: msgLogout})
	return err
}

// Create creates a hidden file.
func (c *Client) Create(path string) error {
	e := &encoder{}
	e.str(path)
	_, err := call(c.conn, &c.mu, frame{Type: msgCreate, Body: e.b})
	return err
}

// CreateDummy creates and discloses a dummy file of n blocks.
func (c *Client) CreateDummy(path string, blocks uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(blocks)
	_, err := call(c.conn, &c.mu, frame{Type: msgCreateDummy, Body: e.b})
	return err
}

// Disclose opens an existing file, reporting whether it is a dummy
// and its size.
func (c *Client) Disclose(path string) (isDummy bool, size uint64, err error) {
	e := &encoder{}
	e.str(path)
	resp, err := call(c.conn, &c.mu, frame{Type: msgDisclose, Body: e.b})
	if err != nil {
		return false, 0, err
	}
	d := &decoder{b: resp.Body}
	dummy := d.u64()
	size = d.u64()
	if d.err != nil {
		return false, 0, d.err
	}
	return dummy == 1, size, nil
}

// Read reads up to len(p) bytes at offset off of a disclosed file.
func (c *Client) Read(path string, p []byte, off uint64) (int, error) {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.u64(uint64(len(p)))
	resp, err := call(c.conn, &c.mu, frame{Type: msgRead, Body: e.b})
	if err != nil {
		return 0, err
	}
	return copy(p, resp.Body), nil
}

// Write writes data at offset off of a disclosed file.
func (c *Client) Write(path string, data []byte, off uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.bytes(data)
	_, err := call(c.conn, &c.mu, frame{Type: msgWrite, Body: e.b})
	return err
}

// Save flushes a disclosed file's block map.
func (c *Client) Save(path string) error {
	e := &encoder{}
	e.str(path)
	_, err := call(c.conn, &c.mu, frame{Type: msgSave, Body: e.b})
	return err
}
