package wire

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"steghide/internal/mempool"
	"steghide/internal/steghide"
)

// AgentServer exposes volatile agents (Construction 2) to clients
// over TCP. One daemon fronts a fleet of volumes: each mounted volume
// is registered under a name, and msgLogin picks the volume the
// connection's session lives on (the empty name is the default
// volume, which is all a v1 client can reach).
//
// Each connection is one user's channel; the login state is
// connection-scoped, and dropping the connection logs the user out —
// the volatility property, enforced by transport lifetime.
//
// Connections are served concurrently, and on protocol v2 so are the
// requests *within* one connection: a bounded worker pool overlaps a
// session's in-flight calls (the per-volume scheduler in
// internal/sched merges all sessions' intents into one uniformly
// random stream, so overlapping is safe), with backpressure once the
// pool's queue fills. A v1 connection keeps the lock-step in-order
// semantics it always had.
type AgentServer struct {
	vmu     sync.RWMutex
	volumes map[string]*steghide.VolatileAgent
	ln      net.Listener
	wg      sync.WaitGroup

	maxFrame uint64
	forceV1  bool // interop knob: behave like a pre-v2 server

	// Observability attachments (ServeOptions); both nil-safe.
	log     *slog.Logger
	metrics *serverMetrics

	// Graceful-drain state: live connections, and whether Shutdown has
	// begun (after which new connections are refused).
	cmu   sync.Mutex
	conns map[*connServer]struct{}
	down  bool
}

// NewAgentServer starts serving a single agent on addr as the default
// (unnamed) volume.
func NewAgentServer(addr string, agent *steghide.VolatileAgent) (*AgentServer, error) {
	return NewMultiAgentServer(addr, map[string]*steghide.VolatileAgent{"": agent})
}

// NewMultiAgentServer starts one daemon serving every agent in
// volumes, keyed by the volume name clients pass at login. An entry
// under the empty name is the default volume.
func NewMultiAgentServer(addr string, volumes map[string]*steghide.VolatileAgent) (*AgentServer, error) {
	return newAgentServer(addr, volumes, maxBodySize, false)
}

// newAgentServer is the option-carrying core; the knobs (frame limit
// offer, pinned-v1 behavior) must be fixed before the accept loop can
// hand a connection to them.
func newAgentServer(addr string, volumes map[string]*steghide.VolatileAgent, maxFrame uint64, forceV1 bool) (*AgentServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s, err := newAgentServerListener(ln, volumes, maxFrame, forceV1)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// NewMultiAgentServerListener is NewMultiAgentServer over an already
// established listener — the injection point a fleet router (or a
// chaos harness wrapping the listener in fault injection) uses to
// control the transport the daemon serves on. The server owns ln from
// here on.
func NewMultiAgentServerListener(ln net.Listener, volumes map[string]*steghide.VolatileAgent) (*AgentServer, error) {
	return newAgentServerListener(ln, volumes, maxBodySize, false)
}

// NewMultiAgentServerListenerOpts is NewMultiAgentServerListener with
// observability attachments: a structured lifecycle logger and/or a
// metrics registry (see ServeOptions for the privacy contract both
// honor). Attachments are fixed at construction — the accept loop
// starts before the constructor returns, so there is no later moment
// to install them race-free.
func NewMultiAgentServerListenerOpts(ln net.Listener, volumes map[string]*steghide.VolatileAgent, opts ServeOptions) (*AgentServer, error) {
	return newAgentServerListenerOpts(ln, volumes, maxBodySize, false, opts)
}

func newAgentServerListener(ln net.Listener, volumes map[string]*steghide.VolatileAgent, maxFrame uint64, forceV1 bool) (*AgentServer, error) {
	return newAgentServerListenerOpts(ln, volumes, maxFrame, forceV1, ServeOptions{})
}

func newAgentServerListenerOpts(ln net.Listener, volumes map[string]*steghide.VolatileAgent, maxFrame uint64, forceV1 bool, opts ServeOptions) (*AgentServer, error) {
	if len(volumes) == 0 {
		return nil, fmt.Errorf("wire: agent server needs at least one volume")
	}
	vols := make(map[string]*steghide.VolatileAgent, len(volumes))
	for name, agent := range volumes {
		if agent == nil {
			return nil, fmt.Errorf("wire: volume %q has no agent", name)
		}
		vols[name] = agent
	}
	s := &AgentServer{
		volumes:  vols,
		ln:       ln,
		maxFrame: maxFrame,
		forceV1:  forceV1,
		log:      opts.Logger,
		metrics:  newServerMetrics(opts.Metrics),
		conns:    map[*connServer]struct{}{},
	}
	if reg := opts.Metrics; reg != nil {
		// Scrape-time gauges over the connection table. The counts are
		// facts the network side already exposes (TCP connections and
		// outstanding frames are visible on the path); nothing about
		// what the requests do is sampled.
		reg.GaugeFunc("steghide_wire_active_connections",
			"connections currently served", func() float64 {
				s.cmu.Lock()
				defer s.cmu.Unlock()
				return float64(len(s.conns))
			})
		reg.GaugeFunc("steghide_wire_inflight_requests",
			"requests dispatched but not yet replied, across all connections",
			func() float64 {
				s.cmu.Lock()
				defer s.cmu.Unlock()
				var n int64
				for cs := range s.conns {
					n += cs.inflightN.Load()
				}
				return float64(n)
			})
		reg.GaugeFunc("steghide_wire_draining",
			"1 while Shutdown is draining connections, else 0", func() float64 {
				if s.Draining() {
					return 1
				}
				return 0
			})
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Draining reports whether Shutdown has begun — the bit an ops
// health endpoint turns into a 503 so load balancers steer away
// while in-flight requests finish.
func (s *AgentServer) Draining() bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.down
}

// AddVolume registers another mounted volume under name while the
// server runs; it fails if the name is taken.
func (s *AgentServer) AddVolume(name string, agent *steghide.VolatileAgent) error {
	if agent == nil {
		return fmt.Errorf("wire: volume %q has no agent", name)
	}
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if _, taken := s.volumes[name]; taken {
		return fmt.Errorf("wire: volume %q already served", name)
	}
	s.volumes[name] = agent
	return nil
}

// Volumes lists the served volume names, sorted.
func (s *AgentServer) Volumes() []string {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	out := make([]string, 0, len(s.volumes))
	for name := range s.volumes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup resolves a volume name to its agent.
func (s *AgentServer) lookup(name string) *steghide.VolatileAgent {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return s.volumes[name]
}

// Addr returns the server's listen address.
func (s *AgentServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connections to drain.
func (s *AgentServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: it stops accepting, tells
// every v2 connection to take its next call elsewhere (msgGoaway),
// lets in-flight requests finish and their replies land, then closes
// the connections and returns. ctx bounds the drain — on expiry the
// remaining connections are closed abruptly, exactly the semantics a
// plain close always had, and ctx's error is returned. v1 peers get
// connection-close semantics unchanged (no goaway exists pre-v2).
func (s *AgentServer) Shutdown(ctx context.Context) error {
	s.cmu.Lock()
	s.down = true
	conns := make([]*connServer, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.cmu.Unlock()
	if s.log != nil {
		s.log.Info("wire: shutdown draining", "connections", len(conns))
	}
	s.ln.Close() //nolint:errcheck // re-Shutdown / racing Close
	var dwg sync.WaitGroup
	for _, cs := range conns {
		dwg.Add(1)
		go func(cs *connServer) {
			defer dwg.Done()
			cs.drain(ctx)
		}(cs)
	}
	dwg.Wait()
	s.wg.Wait()
	if s.log != nil {
		s.log.Info("wire: shutdown complete")
	}
	return ctx.Err()
}

// track registers a live connection, refusing once Shutdown began.
func (s *AgentServer) track(cs *connServer) bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.down {
		return false
	}
	s.conns[cs] = struct{}{}
	return true
}

func (s *AgentServer) untrack(cs *connServer) {
	s.cmu.Lock()
	delete(s.conns, cs)
	s.cmu.Unlock()
}

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			st := &connSession{remote: conn.RemoteAddr().String()}
			cs := &connServer{conn: conn, maxFrame: s.maxFrame, forceV1: s.forceV1,
				log: s.log, metrics: s.metrics}
			if !s.track(cs) {
				return // raced Shutdown: the listener is already closed
			}
			defer s.untrack(cs)
			if s.metrics != nil {
				s.metrics.connections.Inc()
			}
			cs.logEvent("wire: connection accepted")
			cs.serve(func(ctx context.Context, req frame, limit uint64) frame {
				return s.handle(ctx, req, st, limit)
			})
			// Transport lifetime enforces volatility: the connection
			// dropping logs the user out, flushing disclosed files.
			if sess, agent, user := st.get(); sess != nil {
				agent.Logout(user) //nolint:errcheck // best-effort cleanup
			}
		}()
	}
}

// connSession is one connection's login state. Workers serving
// pipelined requests share it, so access is mutex-guarded; the
// session object itself is safe for concurrent use (PR 2's scheduler
// merges all its I/O into the volume's update stream).
type connSession struct {
	remote string // peer address, fixed at accept (for log correlation)

	mu    sync.Mutex
	sess  *steghide.Session
	user  string
	agent *steghide.VolatileAgent
}

func (st *connSession) get() (*steghide.Session, *steghide.VolatileAgent, string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sess, st.agent, st.user
}

func (s *AgentServer) handle(ctx context.Context, req frame, st *connSession, limit uint64) frame {
	if err := ctx.Err(); err != nil {
		return errFrame(fmt.Errorf("wire: %w", err))
	}
	d := &decoder{b: req.Body}
	switch req.Type {
	case msgLogin:
		u := d.str()
		pass := d.str()
		volume := ""
		if d.err == nil && len(d.b) > 0 {
			// v2 logins name a volume; v1 bodies end after the
			// passphrase and land on the default volume.
			volume = d.str()
		}
		if d.err != nil {
			return errFrame(d.err)
		}
		agent := s.lookup(volume)
		if agent == nil {
			return errFrame(fmt.Errorf("%w: %q", ErrUnknownVolume, volume))
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.sess != nil {
			return errFrame(fmt.Errorf("wire: already logged in"))
		}
		sess, err := agent.LoginWithPassphrase(u, pass)
		if err != nil {
			return errFrame(err)
		}
		st.sess = sess
		st.user = u
		st.agent = agent
		s.metrics.login(volume)
		if s.log != nil {
			// Username and volume name ride the login frame in the
			// clear — already wire-visible. The passphrase is not
			// logged, here or anywhere.
			s.log.Info("wire: login", "user", u, "volume", volume, "remote", st.remote)
		}
		return frame{Type: msgOK}

	case msgLogout:
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.sess == nil {
			return errFrame(steghide.ErrUnknownUser)
		}
		user := st.user
		err := st.agent.Logout(st.user)
		st.sess = nil
		st.user = ""
		st.agent = nil
		if err != nil {
			return errFrame(err)
		}
		if s.log != nil {
			s.log.Info("wire: logout", "user", user, "remote", st.remote)
		}
		return frame{Type: msgOK}
	}

	sess, _, _ := st.get()
	if sess == nil {
		return errFrame(fmt.Errorf("wire: not logged in"))
	}
	switch req.Type {
	case msgCreate:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.Create(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgCreateDummy:
		path := d.str()
		blocks := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.CreateDummy(path, blocks); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgDisclose:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		f, err := sess.Disclose(path)
		if err != nil {
			return errFrame(err)
		}
		e := &encoder{}
		var dummy uint64
		if f.IsDummy() {
			dummy = 1
		}
		e.u64(dummy).u64(f.Size())
		return frame{Type: msgOK, Body: e.b}
	case msgRead:
		path := d.str()
		off := d.u64()
		n := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if n > limit {
			return errFrame(fmt.Errorf("wire: read of %d bytes exceeds limit", n))
		}
		// n is bounded by the negotiated frame limit (above) before any
		// allocation; the reply buffer is leased from the memory plane
		// and returned once the reply frame is written.
		buf := mempool.Get(int(n))
		got, err := sess.Read(path, buf, off)
		if err != nil {
			mempool.Recycle(buf)
			return errFrame(err)
		}
		return frame{Type: msgOK, Body: buf[:got], pooled: true}
	case msgWrite:
		path := d.str()
		off := d.u64()
		data := d.raw()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.WriteCtx(ctx, path, data, off); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgSave:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Save(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgDelete:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Delete(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgTruncate:
		path := d.str()
		size := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.TruncateCtx(ctx, path, size); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgList:
		paths := sess.Files() // sorted — listings are stable on the wire
		e := &encoder{}
		e.u64(uint64(len(paths)))
		for _, p := range paths {
			e.str(p)
		}
		return frame{Type: msgOK, Body: e.b}
	default:
		return errFrame(fmt.Errorf("wire: unknown message type %#x", req.Type))
	}
}

// Client is a user's connection to an AgentServer. It is safe for
// concurrent use: on a v2 connection every method call is one
// pipelined in-flight request, and cancelling one call's context
// abandons just that request — the connection stays healthy. On a v1
// (lock-step) connection calls serialize, and an interrupted call
// latches the connection broken (ErrConnBroken) exactly as before.
//
// A client dialed with DialAgentRetry self-heals instead of latching:
// a transport fault redials with backoff, replays the login and every
// disclosure (credentials are retained client-side for exactly this),
// and retries the interrupted call if it is read-class. A mutating
// call (create, write, save, delete, truncate) is retried only when
// the fault provably preceded its first byte on the wire; otherwise
// it fails with ErrMaybeApplied and the caller must reconcile.
type Client struct {
	m  *muxConn  // direct mode; nil in retry mode
	rd *Redialer // retry mode; nil in direct mode

	// Session replay state (retry mode only): the credentials and the
	// disclosed working set, re-established on every reconnect. The
	// server's session died with the old connection — volatility by
	// transport lifetime — so the client rebuilds it before the retried
	// call runs.
	smu       sync.Mutex
	loggedIn  bool
	volume    string
	user      string
	pass      string
	disclosed map[string]struct{}
}

// DialAgent connects to an agent server.
func DialAgent(addr string) (*Client, error) {
	return DialAgentCtx(context.Background(), addr)
}

// DialAgentCtx is DialAgent honoring the context while the
// connection is established and the protocol version negotiated.
func DialAgentCtx(ctx context.Context, addr string) (*Client, error) {
	m, err := dialMux(ctx, addr, maxBodySize, false)
	if err != nil {
		return nil, err
	}
	return &Client{m: m}, nil
}

// DialAgentV1 connects speaking the lock-step v1 protocol only — the
// compatibility client for pre-v2 servers (and the lock-step arm of
// the paired pipelining benchmark).
func DialAgentV1(addr string) (*Client, error) {
	m, err := dialMux(context.Background(), addr, maxBodySize, true)
	if err != nil {
		return nil, err
	}
	return &Client{m: m}, nil
}

// DialAgentRetry connects with self-healing: transport faults redial
// (rotating through addrs — extra addresses are fleet replicas or the
// same daemon's next incarnation) with backoff under policy's budget,
// and the session replays on every reconnect. The initial dial
// retries too, so a client can be started before its daemon is up.
func DialAgentRetry(ctx context.Context, policy RetryPolicy, addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("wire: no agent addresses")
	}
	c := &Client{disclosed: map[string]struct{}{}}
	rd := newRedialer(policy, maxBodySize, false, addrs...)
	rd.onConnect = c.onConnect
	c.rd = rd
	for attempt := 0; ; attempt++ {
		_, err := rd.acquire(ctx)
		if err == nil {
			return c, nil
		}
		if !transient(err) || attempt >= rd.policy.MaxRetries {
			rd.close() //nolint:errcheck // nothing live yet
			return nil, err
		}
		if serr := rd.sleep(ctx, attempt); serr != nil {
			rd.close() //nolint:errcheck // nothing live yet
			return nil, serr
		}
	}
}

// onConnect replays the session onto a fresh connection: login, then
// every disclosed path, in sorted order (stable replay order, like
// every other deliberate ordering in this codebase). A disclosure the
// server now cleanly refuses (the file is gone) is dropped from the
// replay set rather than failing the reconnect — the next direct use
// of that path reports the refusal to its caller.
func (c *Client) onConnect(ctx context.Context, m *muxConn) error {
	c.smu.Lock()
	loggedIn, volume, user, pass := c.loggedIn, c.volume, c.user, c.pass
	paths := make([]string, 0, len(c.disclosed))
	for p := range c.disclosed {
		paths = append(paths, p)
	}
	c.smu.Unlock()
	if !loggedIn {
		return nil
	}
	if volume != "" && m.v1 {
		return fmt.Errorf("wire: volume login requires protocol v2 (peer speaks v1)")
	}
	sort.Strings(paths)
	if err := c.replayLogin(ctx, m, volume, user, pass); err != nil {
		return err
	}
	for _, p := range paths {
		if _, err := m.call(ctx, discloseFrame(p)); err != nil {
			if errors.Is(err, ErrRemote) {
				c.smu.Lock()
				delete(c.disclosed, p)
				c.smu.Unlock()
				continue
			}
			return err
		}
	}
	return nil
}

// replayLogin re-authenticates on a fresh connection. The old
// connection's death triggers a server-side implicit logout (flushing
// the user's files), and the replayed login can race ahead of that
// flush — the server reports ErrUserBusy while it lasts — so busy
// answers are retried briefly before giving up.
func (c *Client) replayLogin(ctx context.Context, m *muxConn, volume, user, pass string) error {
	var err error
	for i := 0; i < 200; i++ {
		_, err = m.call(ctx, loginFrame(volume, user, pass))
		if err == nil || !errors.Is(err, steghide.ErrUserBusy) {
			return err
		}
		t := time.NewTimer(5 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("wire: %w", ctx.Err())
		}
	}
	return err
}

// ProtoVersion reports the negotiated protocol version (1 or 2).
func (c *Client) ProtoVersion() int {
	if c.rd != nil {
		if m := c.rd.current(); m != nil {
			return m.protoVersion()
		}
		return protoV2 // retry mode always negotiates
	}
	return c.m.protoVersion()
}

// v1Pinned reports whether the client speaks lock-step v1.
func (c *Client) v1Pinned() bool { return c.rd == nil && c.m.v1 }

// do runs one exchange on the mux. idempotent marks requests the
// retry layer may re-send even if the server already executed them;
// it is ignored in direct (non-retry) mode.
func (c *Client) do(ctx context.Context, req frame, idempotent bool) (frame, error) {
	if c.rd != nil {
		return c.rd.call(ctx, req, idempotent)
	}
	return c.m.call(ctx, req)
}

// Close drops the connection (logging the user out server-side).
// Idempotent and safe to call concurrently with in-flight calls,
// which fail cleanly instead of racing the teardown.
func (c *Client) Close() error {
	if c.rd != nil {
		return c.rd.close()
	}
	return c.m.close()
}

// Ping probes the server's liveness: one round trip, answered before
// any login — a load balancer or fleet router can health-check a
// daemon without credentials. Against a genuine pre-v2 server the
// probe fails with ErrRemote (the frame type predates it).
func (c *Client) Ping() error { return c.PingCtx(context.Background()) }

// PingCtx is Ping honoring the context at the wire wait point.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.do(ctx, frame{Type: msgPing}, true)
	return err
}

// Every operation has a context-honoring form; the plain methods are
// the same call under context.Background(). The context's deadline
// bounds the whole round trip; cancellation abandons the in-flight
// request (sending msgCancel so the server stops working on it) and,
// on protocol v2, leaves the connection healthy for other calls.

// Login authenticates the connection's user on the default volume.
func (c *Client) Login(user, passphrase string) error {
	return c.LoginCtx(context.Background(), user, passphrase)
}

// LoginCtx is Login honoring the context at the wire wait point.
func (c *Client) LoginCtx(ctx context.Context, user, passphrase string) error {
	return c.LoginVolumeCtx(ctx, "", user, passphrase)
}

// LoginVolume authenticates the connection's user on the named volume
// of a multi-volume server (the empty name is the default volume).
func (c *Client) LoginVolume(volume, user, passphrase string) error {
	return c.LoginVolumeCtx(context.Background(), volume, user, passphrase)
}

// LoginVolumeCtx is LoginVolume honoring the context at the wire wait
// point. Logins to the default volume omit the volume field, so they
// stay byte-compatible with v1 servers; a named volume requires a v2
// server and fails with ErrRemote against a v1 peer.
func (c *Client) LoginVolumeCtx(ctx context.Context, volume, user, passphrase string) error {
	if volume != "" && c.v1Pinned() {
		// A v1 server would silently ignore the trailing volume field
		// and log the user into the default volume — refuse instead.
		return fmt.Errorf("wire: volume login requires protocol v2 (peer speaks v1)")
	}
	// Safe to retry: a retried login lands on a fresh connection, whose
	// server-side session cannot already be logged in.
	_, err := c.do(ctx, loginFrame(volume, user, passphrase), true)
	if err == nil && c.rd != nil {
		c.smu.Lock()
		c.loggedIn = true
		c.volume, c.user, c.pass = volume, user, passphrase
		c.smu.Unlock()
	}
	return err
}

// loginFrame encodes a login request.
func loginFrame(volume, user, passphrase string) frame {
	e := &encoder{}
	e.str(user).str(passphrase)
	if volume != "" {
		e.str(volume)
	}
	return frame{Type: msgLogin, Body: e.b}
}

// discloseFrame encodes a disclosure request.
func discloseFrame(path string) frame {
	e := &encoder{}
	e.str(path)
	return frame{Type: msgDisclose, Body: e.b}
}

// remember records path into the replay set (retry mode only).
func (c *Client) remember(path string) {
	if c.rd == nil {
		return
	}
	c.smu.Lock()
	c.disclosed[path] = struct{}{}
	c.smu.Unlock()
}

// forget removes path from the replay set (retry mode only).
func (c *Client) forget(path string) {
	if c.rd == nil {
		return
	}
	c.smu.Lock()
	delete(c.disclosed, path)
	c.smu.Unlock()
}

// Logout ends the session, flushing disclosed files.
func (c *Client) Logout() error { return c.LogoutCtx(context.Background()) }

// LogoutCtx is Logout honoring the context at the wire wait point.
func (c *Client) LogoutCtx(ctx context.Context) error {
	// Safe to retry: a retried logout lands on a replayed session and
	// ends it just the same.
	_, err := c.do(ctx, frame{Type: msgLogout}, true)
	if err == nil && c.rd != nil {
		c.smu.Lock()
		c.loggedIn = false
		c.volume, c.user, c.pass = "", "", ""
		c.disclosed = map[string]struct{}{}
		c.smu.Unlock()
	}
	return err
}

// Create creates a hidden file.
func (c *Client) Create(path string) error { return c.CreateCtx(context.Background(), path) }

// CreateCtx is Create honoring the context at the wire wait point.
func (c *Client) CreateCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	// Mutating: retried only when provably unsent (ErrMaybeApplied
	// otherwise — the file may exist now).
	_, err := c.do(ctx, frame{Type: msgCreate, Body: e.b}, false)
	if err == nil {
		c.remember(path) // a created file is open in the session
	}
	return err
}

// CreateDummy creates and discloses a dummy file of n blocks.
func (c *Client) CreateDummy(path string, blocks uint64) error {
	return c.CreateDummyCtx(context.Background(), path, blocks)
}

// CreateDummyCtx is CreateDummy honoring the context at the wire wait
// point.
func (c *Client) CreateDummyCtx(ctx context.Context, path string, blocks uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(blocks)
	_, err := c.do(ctx, frame{Type: msgCreateDummy, Body: e.b}, false)
	if err == nil {
		c.remember(path)
	}
	return err
}

// Disclose opens an existing file, reporting whether it is a dummy
// and its size.
func (c *Client) Disclose(path string) (isDummy bool, size uint64, err error) {
	return c.DiscloseCtx(context.Background(), path)
}

// DiscloseCtx is Disclose honoring the context at the wire wait point.
func (c *Client) DiscloseCtx(ctx context.Context, path string) (isDummy bool, size uint64, err error) {
	resp, err := c.do(ctx, discloseFrame(path), true)
	if err != nil {
		return false, 0, err
	}
	c.remember(path)
	d := &decoder{b: resp.Body}
	dummy := d.u64()
	size = d.u64()
	resp.release()
	if d.err != nil {
		return false, 0, d.err
	}
	return dummy == 1, size, nil
}

// Read reads up to len(p) bytes at offset off of a disclosed file.
func (c *Client) Read(path string, p []byte, off uint64) (int, error) {
	return c.ReadCtx(context.Background(), path, p, off)
}

// ReadCtx is Read honoring the context at the wire wait point.
func (c *Client) ReadCtx(ctx context.Context, path string, p []byte, off uint64) (int, error) {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.u64(uint64(len(p)))
	resp, err := c.do(ctx, frame{Type: msgRead, Body: e.b}, true)
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Body)
	resp.release()
	return n, nil
}

// Write writes data at offset off of a disclosed file.
func (c *Client) Write(path string, data []byte, off uint64) error {
	return c.WriteCtx(context.Background(), path, data, off)
}

// WriteCtx is Write honoring the context at the wire wait point.
func (c *Client) WriteCtx(ctx context.Context, path string, data []byte, off uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.bytes(data)
	_, err := c.do(ctx, frame{Type: msgWrite, Body: e.b}, false)
	return err
}

// Save flushes a disclosed file's block map.
func (c *Client) Save(path string) error { return c.SaveCtx(context.Background(), path) }

// SaveCtx is Save honoring the context at the wire wait point.
func (c *Client) SaveCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	_, err := c.do(ctx, frame{Type: msgSave, Body: e.b}, false)
	return err
}

// Delete removes a disclosed file, donating its blocks to the user's
// dummy files.
func (c *Client) Delete(path string) error { return c.DeleteCtx(context.Background(), path) }

// DeleteCtx is Delete honoring the context at the wire wait point.
func (c *Client) DeleteCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	_, err := c.do(ctx, frame{Type: msgDelete, Body: e.b}, false)
	if err == nil {
		c.forget(path)
	}
	return err
}

// Truncate resizes a disclosed file to size bytes.
func (c *Client) Truncate(path string, size uint64) error {
	return c.TruncateCtx(context.Background(), path, size)
}

// TruncateCtx is Truncate honoring the context at the wire wait
// point.
func (c *Client) TruncateCtx(ctx context.Context, path string, size uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(size)
	_, err := c.do(ctx, frame{Type: msgTruncate, Body: e.b}, false)
	return err
}

// Files lists the session's disclosed real-file paths, sorted.
func (c *Client) Files() ([]string, error) { return c.FilesCtx(context.Background()) }

// FilesCtx is Files honoring the context at the wire wait point.
func (c *Client) FilesCtx(ctx context.Context) ([]string, error) {
	resp, err := c.do(ctx, frame{Type: msgList}, true)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: resp.Body}
	n := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	// The entry count cannot exceed what the (already size-bounded)
	// body can hold, so a lying count cannot drive the allocation.
	if n > uint64(len(d.b))/8 {
		return nil, fmt.Errorf("wire: listing of %d entries out of bounds", n)
	}
	paths := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		paths = append(paths, d.str()) // str() copies out of the body
	}
	resp.release()
	if d.err != nil {
		return nil, d.err
	}
	return paths, nil
}
