package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"steghide/internal/steghide"
)

// AgentServer exposes a volatile agent (Construction 2) to clients
// over TCP. Each connection is one user's channel; the login state is
// connection-scoped, and dropping the connection logs the user out —
// the volatility property, enforced by transport lifetime.
//
// Connections are served concurrently, and since the agent's update
// path is itself concurrent (the per-volume scheduler in
// internal/sched merges all sessions' intents into one uniformly
// random stream), simultaneous requests from different users overlap
// their crypto and storage I/O instead of lock-stepping through an
// agent-wide mutex. Requests on a single connection are processed in
// order — one user's operations keep their sequential semantics.
type AgentServer struct {
	agent *steghide.VolatileAgent
	ln    net.Listener
	wg    sync.WaitGroup
}

// NewAgentServer starts serving the agent on addr.
func NewAgentServer(addr string, agent *steghide.VolatileAgent) (*AgentServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &AgentServer{agent: agent, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *AgentServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connections to drain.
func (s *AgentServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *AgentServer) serve(conn net.Conn) {
	var session *steghide.Session
	var user string
	defer func() {
		if session != nil {
			s.agent.Logout(user) //nolint:errcheck // best-effort cleanup
		}
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.handle(req, &session, &user)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *AgentServer) handle(req frame, session **steghide.Session, user *string) frame {
	d := &decoder{b: req.Body}
	switch req.Type {
	case msgLogin:
		if *session != nil {
			return errFrame(fmt.Errorf("wire: already logged in"))
		}
		u := d.str()
		pass := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		sess, err := s.agent.LoginWithPassphrase(u, pass)
		if err != nil {
			return errFrame(err)
		}
		*session = sess
		*user = u
		return frame{Type: msgOK}

	case msgLogout:
		if *session == nil {
			return errFrame(steghide.ErrUnknownUser)
		}
		err := s.agent.Logout(*user)
		*session = nil
		*user = ""
		if err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	}

	if *session == nil {
		return errFrame(fmt.Errorf("wire: not logged in"))
	}
	sess := *session
	switch req.Type {
	case msgCreate:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.Create(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgCreateDummy:
		path := d.str()
		blocks := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if _, err := sess.CreateDummy(path, blocks); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgDisclose:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		f, err := sess.Disclose(path)
		if err != nil {
			return errFrame(err)
		}
		e := &encoder{}
		var dummy uint64
		if f.IsDummy() {
			dummy = 1
		}
		e.u64(dummy).u64(f.Size())
		return frame{Type: msgOK, Body: e.b}
	case msgRead:
		path := d.str()
		off := d.u64()
		n := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if n > maxBodySize {
			return errFrame(fmt.Errorf("wire: read of %d bytes exceeds limit", n))
		}
		buf := make([]byte, n)
		got, err := sess.Read(path, buf, off)
		if err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK, Body: buf[:got]}
	case msgWrite:
		path := d.str()
		off := d.u64()
		data := d.raw()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Write(path, data, off); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgSave:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Save(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgDelete:
		path := d.str()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Delete(path); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgTruncate:
		path := d.str()
		size := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := sess.Truncate(path, size); err != nil {
			return errFrame(err)
		}
		return frame{Type: msgOK}
	case msgList:
		paths := sess.Files() // sorted — listings are stable on the wire
		e := &encoder{}
		e.u64(uint64(len(paths)))
		for _, p := range paths {
			e.str(p)
		}
		return frame{Type: msgOK, Body: e.b}
	default:
		return errFrame(fmt.Errorf("wire: unknown message type %#x", req.Type))
	}
}

// ErrConnBroken reports a client whose connection was desynced by an
// interrupted call (context cancellation or transport fault mid
// frame); every further call fails until the caller redials. Without
// this latch a later request would silently pair with the stale
// reply of the interrupted one.
var ErrConnBroken = errors.New("wire: connection broken by an interrupted call; redial")

// Client is a user's connection to an AgentServer.
type Client struct {
	conn   net.Conn
	mu     sync.Mutex
	broken bool // guarded by mu — a queued call must see the latch
}

// do runs one round trip, latching the broken flag when an
// interrupted call leaves the frame stream out of sync. The latch is
// checked and set inside the connection's critical section: a call
// that was already queued behind the interrupted one re-checks after
// acquiring the mutex, so it cannot run on the desynced stream.
func (c *Client) do(ctx context.Context, req frame) (frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return frame{}, ErrConnBroken
	}
	resp, desynced, err := callLocked(ctx, c.conn, req)
	if desynced {
		c.broken = true
	}
	return resp, err
}

// DialAgent connects to an agent server.
func DialAgent(addr string) (*Client, error) {
	return DialAgentCtx(context.Background(), addr)
}

// DialAgentCtx is DialAgent honoring the context while the
// connection is being established.
func DialAgentCtx(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close drops the connection (logging the user out server-side).
func (c *Client) Close() error { return c.conn.Close() }

// Every operation has a context-honoring form; the plain methods are
// the same call under context.Background(). The context's deadline
// bounds the whole round trip and cancellation interrupts an
// in-flight frame (after which the connection is out of frame sync
// and must be dropped — the server logs the user out, preserving the
// volatility property).

// Login authenticates the connection's user.
func (c *Client) Login(user, passphrase string) error {
	return c.LoginCtx(context.Background(), user, passphrase)
}

// LoginCtx is Login honoring the context at the wire wait point.
func (c *Client) LoginCtx(ctx context.Context, user, passphrase string) error {
	e := &encoder{}
	e.str(user).str(passphrase)
	_, err := c.do(ctx, frame{Type: msgLogin, Body: e.b})
	return err
}

// Logout ends the session, flushing disclosed files.
func (c *Client) Logout() error { return c.LogoutCtx(context.Background()) }

// LogoutCtx is Logout honoring the context at the wire wait point.
func (c *Client) LogoutCtx(ctx context.Context) error {
	_, err := c.do(ctx, frame{Type: msgLogout})
	return err
}

// Create creates a hidden file.
func (c *Client) Create(path string) error { return c.CreateCtx(context.Background(), path) }

// CreateCtx is Create honoring the context at the wire wait point.
func (c *Client) CreateCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	_, err := c.do(ctx, frame{Type: msgCreate, Body: e.b})
	return err
}

// CreateDummy creates and discloses a dummy file of n blocks.
func (c *Client) CreateDummy(path string, blocks uint64) error {
	return c.CreateDummyCtx(context.Background(), path, blocks)
}

// CreateDummyCtx is CreateDummy honoring the context at the wire wait
// point.
func (c *Client) CreateDummyCtx(ctx context.Context, path string, blocks uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(blocks)
	_, err := c.do(ctx, frame{Type: msgCreateDummy, Body: e.b})
	return err
}

// Disclose opens an existing file, reporting whether it is a dummy
// and its size.
func (c *Client) Disclose(path string) (isDummy bool, size uint64, err error) {
	return c.DiscloseCtx(context.Background(), path)
}

// DiscloseCtx is Disclose honoring the context at the wire wait point.
func (c *Client) DiscloseCtx(ctx context.Context, path string) (isDummy bool, size uint64, err error) {
	e := &encoder{}
	e.str(path)
	resp, err := c.do(ctx, frame{Type: msgDisclose, Body: e.b})
	if err != nil {
		return false, 0, err
	}
	d := &decoder{b: resp.Body}
	dummy := d.u64()
	size = d.u64()
	if d.err != nil {
		return false, 0, d.err
	}
	return dummy == 1, size, nil
}

// Read reads up to len(p) bytes at offset off of a disclosed file.
func (c *Client) Read(path string, p []byte, off uint64) (int, error) {
	return c.ReadCtx(context.Background(), path, p, off)
}

// ReadCtx is Read honoring the context at the wire wait point.
func (c *Client) ReadCtx(ctx context.Context, path string, p []byte, off uint64) (int, error) {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.u64(uint64(len(p)))
	resp, err := c.do(ctx, frame{Type: msgRead, Body: e.b})
	if err != nil {
		return 0, err
	}
	return copy(p, resp.Body), nil
}

// Write writes data at offset off of a disclosed file.
func (c *Client) Write(path string, data []byte, off uint64) error {
	return c.WriteCtx(context.Background(), path, data, off)
}

// WriteCtx is Write honoring the context at the wire wait point.
func (c *Client) WriteCtx(ctx context.Context, path string, data []byte, off uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(off)
	e.bytes(data)
	_, err := c.do(ctx, frame{Type: msgWrite, Body: e.b})
	return err
}

// Save flushes a disclosed file's block map.
func (c *Client) Save(path string) error { return c.SaveCtx(context.Background(), path) }

// SaveCtx is Save honoring the context at the wire wait point.
func (c *Client) SaveCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	_, err := c.do(ctx, frame{Type: msgSave, Body: e.b})
	return err
}

// Delete removes a disclosed file, donating its blocks to the user's
// dummy files.
func (c *Client) Delete(path string) error { return c.DeleteCtx(context.Background(), path) }

// DeleteCtx is Delete honoring the context at the wire wait point.
func (c *Client) DeleteCtx(ctx context.Context, path string) error {
	e := &encoder{}
	e.str(path)
	_, err := c.do(ctx, frame{Type: msgDelete, Body: e.b})
	return err
}

// Truncate resizes a disclosed file to size bytes.
func (c *Client) Truncate(path string, size uint64) error {
	return c.TruncateCtx(context.Background(), path, size)
}

// TruncateCtx is Truncate honoring the context at the wire wait
// point.
func (c *Client) TruncateCtx(ctx context.Context, path string, size uint64) error {
	e := &encoder{}
	e.str(path)
	e.u64(size)
	_, err := c.do(ctx, frame{Type: msgTruncate, Body: e.b})
	return err
}

// Files lists the session's disclosed real-file paths, sorted.
func (c *Client) Files() ([]string, error) { return c.FilesCtx(context.Background()) }

// FilesCtx is Files honoring the context at the wire wait point.
func (c *Client) FilesCtx(ctx context.Context) ([]string, error) {
	resp, err := c.do(ctx, frame{Type: msgList})
	if err != nil {
		return nil, err
	}
	d := &decoder{b: resp.Body}
	n := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxBodySize/8 {
		return nil, fmt.Errorf("wire: listing of %d entries out of bounds", n)
	}
	paths := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		paths = append(paths, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	return paths, nil
}
