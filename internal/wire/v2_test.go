package wire

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// slowDevice wraps a device so every single-block op costs a fixed
// latency — an RTT-bound backend that makes pipelining visible even
// on a single CPU.
type slowDevice struct {
	blockdev.Device
	delay time.Duration
}

func (s *slowDevice) ReadBlock(i uint64, buf []byte) error {
	time.Sleep(s.delay)
	return s.Device.ReadBlock(i, buf)
}

func (s *slowDevice) WriteBlock(i uint64, data []byte) error {
	time.Sleep(s.delay)
	return s.Device.WriteBlock(i, data)
}

// Batched ops charge one latency per batch (like one seek), keeping
// fixture setup (volume format fill) out of the per-op cost.
func (s *slowDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	time.Sleep(s.delay)
	return blockdev.ReadBlocks(s.Device, start, bufs)
}

func (s *slowDevice) WriteBlocks(start uint64, data [][]byte) error {
	time.Sleep(s.delay)
	return blockdev.WriteBlocks(s.Device, start, data)
}

func (s *slowDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	time.Sleep(s.delay)
	return blockdev.ReadBlocksAt(s.Device, idx, bufs)
}

func (s *slowDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	time.Sleep(s.delay)
	return blockdev.WriteBlocksAt(s.Device, idx, data)
}

// --- interop matrix ----------------------------------------------------

// interopStorage runs the storage protocol across one client/server
// version pairing and asserts the negotiated version.
func interopStorage(t *testing.T, serverV1, clientV1 bool, wantProto int) {
	t.Helper()
	mem := blockdev.NewMem(256, 64)
	srv, err := newStorageServer("127.0.0.1:0", mem, nil, maxBodySize, serverV1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dial := DialStorage
	if clientV1 {
		dial = DialStorageV1
	}
	dev, err := dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if got := dev.ProtoVersion(); got != wantProto {
		t.Fatalf("negotiated protocol %d, want %d", got, wantProto)
	}
	data := prng.NewFromUint64(7).Bytes(256)
	if err := dev.WriteBlock(9, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := dev.ReadBlock(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
	// Batches must interop too (they chunk by the negotiated limit).
	bufs := blockdev.AllocBlocks(8, 256)
	if err := blockdev.ReadBlocks(dev, 4, bufs); err != nil {
		t.Fatal(err)
	}
}

// interopAgent runs the agent protocol across one version pairing.
func interopAgent(t *testing.T, serverV1, clientV1 bool, wantProto int) {
	t.Helper()
	vol, err := stegfs.Format(blockdev.NewMem(256, 2048),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("iop")})
	if err != nil {
		t.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(5))
	srv, err := newAgentServer("127.0.0.1:0",
		map[string]*steghide.VolatileAgent{"": agent}, maxBodySize, serverV1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dial := DialAgent
	if clientV1 {
		dial = DialAgentV1
	}
	cli, err := dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if got := cli.ProtoVersion(); got != wantProto {
		t.Fatalf("negotiated protocol %d, want %d", got, wantProto)
	}
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/d", 32); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(9).Bytes(500)
	if err := cli.Write("/f", msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := cli.Read("/f", got, 0); err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("content mismatch")
	}
	// Error taxonomy must survive whichever protocol carried it.
	if _, _, err := cli.Disclose("/nope"); !errors.Is(err, stegfs.ErrNotFound) {
		t.Fatalf("want ErrNotFound across the wire, got %v", err)
	}
	if err := cli.Logout(); err != nil {
		t.Fatal(err)
	}
}

// TestInteropMatrix pins both directions of v1↔v2 compatibility on
// both protocols: a v2 client downgrades against a v1 server, a v1
// client is served lock-step by a v2 server, and v2↔v2 negotiates the
// mux.
func TestInteropMatrix(t *testing.T) {
	cases := []struct {
		name               string
		serverV1, clientV1 bool
		want               int
	}{
		{"v2-client/v2-server", false, false, protoV2},
		{"v2-client/v1-server", true, false, protoV1},
		{"v1-client/v2-server", false, true, protoV1},
		{"v1-client/v1-server", true, true, protoV1},
	}
	for _, tc := range cases {
		t.Run("storage/"+tc.name, func(t *testing.T) {
			interopStorage(t, tc.serverV1, tc.clientV1, tc.want)
		})
		t.Run("agent/"+tc.name, func(t *testing.T) {
			interopAgent(t, tc.serverV1, tc.clientV1, tc.want)
		})
	}
}

// TestMultiVolumeServing pins the tentpole's fleet mode: one daemon,
// several independent volumes, routed by the login's volume name.
func TestMultiVolumeServing(t *testing.T) {
	mkAgent := func(seed string) *steghide.VolatileAgent {
		vol, err := stegfs.Format(blockdev.NewMem(256, 2048),
			stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte(seed)})
		if err != nil {
			t.Fatal(err)
		}
		return steghide.NewVolatile(vol, prng.New([]byte(seed)))
	}
	srv, err := NewMultiAgentServer("127.0.0.1:0", map[string]*steghide.VolatileAgent{
		"":     mkAgent("default"),
		"red":  mkAgent("red"),
		"blue": mkAgent("blue"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Volumes(); len(got) != 3 {
		t.Fatalf("volumes %v", got)
	}

	store := func(volume, path string, msg []byte) {
		cli, err := DialAgent(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if err := cli.LoginVolume(volume, "alice", "pw"); err != nil {
			t.Fatal(err)
		}
		if err := cli.CreateDummy("/d", 16); err != nil {
			t.Fatal(err)
		}
		if err := cli.Create(path); err != nil {
			t.Fatal(err)
		}
		if err := cli.Write(path, msg, 0); err != nil {
			t.Fatal(err)
		}
		if err := cli.Save(path); err != nil {
			t.Fatal(err)
		}
		if err := cli.Logout(); err != nil {
			t.Fatal(err)
		}
	}
	redMsg := []byte("red volume secret")
	blueMsg := []byte("blue volume secret")
	store("red", "/s", redMsg)
	store("blue", "/s", blueMsg)

	// Same user, same path, different volumes: different files.
	check := func(volume string, want []byte) {
		cli, err := DialAgent(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if err := cli.LoginVolume(volume, "alice", "pw"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cli.Disclose("/s"); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if _, err := cli.Read("/s", got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("volume %q served %q, want %q", volume, got, want)
		}
	}
	check("red", redMsg)
	check("blue", blueMsg)

	// The default volume never saw /s.
	cli, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Disclose("/s"); !errors.Is(err, stegfs.ErrNotFound) {
		t.Fatalf("default volume leaked another volume's file: %v", err)
	}

	// An unknown volume is a typed, sentinel-coded failure.
	cli2, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.LoginVolume("green", "alice", "pw"); !errors.Is(err, ErrUnknownVolume) {
		t.Fatalf("want ErrUnknownVolume, got %v", err)
	}
	// The failed login must not poison the connection (v2: no latch).
	if err := cli2.LoginVolume("red", "alice", "pw"); err != nil {
		t.Fatal(err)
	}
}

// TestFrameSizeLimit pins the negotiated max-frame bound: a declared
// body over the limit is rejected with the typed error before any
// allocation.
func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{Type: msgOK, Body: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(&buf, 1024); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
	// A hostile header declaring a huge length fails identically —
	// without the length check this would try to allocate 2^50 bytes.
	hostile := make([]byte, headerSize)
	hostile[8] = 0x04 // length = 2^50
	if _, err := readFrame(bytes.NewReader(hostile), maxBodySize); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig for hostile length, got %v", err)
	}
	// Under the limit passes.
	buf.Reset()
	if err := writeFrame(&buf, frame{Type: msgOK, ID: 42, Body: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(&buf, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != msgOK || f.ID != 42 || string(f.Body) != "ok" {
		t.Fatalf("frame %+v", f)
	}
}

// TestNegotiatedLimitChunksBatches proves a small server-side frame
// limit propagates through the hello and the client chunks its
// batches accordingly instead of tripping the bound.
func TestNegotiatedLimitChunksBatches(t *testing.T) {
	mem := blockdev.NewMem(512, 256)
	// 8 KiB limit: a 64-block batch cannot fit one frame.
	srv, err := newStorageServer("127.0.0.1:0", mem, nil, 8<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.m.maxFrame != 8<<10 {
		t.Fatalf("negotiated limit %d, want %d", dev.m.maxFrame, 8<<10)
	}
	data := blockdev.AllocBlocks(64, 512)
	for i, b := range data {
		for j := range b {
			b[j] = byte(i ^ j)
		}
	}
	if err := blockdev.WriteBlocks(dev, 0, data); err != nil {
		t.Fatal(err)
	}
	got := blockdev.AllocBlocks(64, 512)
	if err := blockdev.ReadBlocks(dev, 0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("chunked batch diverges at %d", i)
		}
	}
}

// TestOversizedRequestRefusedLocally: a request body over the
// negotiated limit is refused client-side with the typed error before
// anything hits the wire — the connection (and its other in-flight
// calls) stays healthy instead of being torn down by the peer's
// frame-bound rejection.
func TestOversizedRequestRefusedLocally(t *testing.T) {
	mem := blockdev.NewMem(512, 64)
	srv, err := newStorageServer("127.0.0.1:0", mem, nil, 8<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	huge := frame{Type: msgWriteBlock, Body: make([]byte, 16<<10)}
	if _, err := dev.m.call(context.Background(), huge); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
	// The connection still works.
	buf := make([]byte, 512)
	if err := dev.ReadBlock(1, buf); err != nil {
		t.Fatalf("connection unhealthy after refused request: %v", err)
	}
}

// --- cancellation under load -------------------------------------------

// TestCancelUnderLoad is the tentpole's cancellation contract: 64
// concurrent in-flight calls on one connection, half cancelled
// mid-flight; the survivors complete correctly and the connection
// stays healthy — no broken latch, next call works.
func TestCancelUnderLoad(t *testing.T) {
	slow := &slowDevice{Device: blockdev.NewMem(256, 4096), delay: 2 * time.Millisecond}
	vol, err := stegfs.Format(slow, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("cul")})
	if err != nil {
		t.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(11))
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.ProtoVersion() != protoV2 {
		t.Fatal("test needs a v2 connection")
	}
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/d", 64); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	ps := vol.PayloadSize()
	content := prng.NewFromUint64(12).Bytes(4 * ps)
	if err := cli.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}

	const calls = 64
	type result struct {
		canceled bool
		err      error
		got      []byte
	}
	results := make([]result, calls)
	cancels := make([]context.CancelFunc, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			buf := make([]byte, ps)
			off := uint64(i%4) * uint64(ps)
			_, err := cli.ReadCtx(ctx, "/f", buf, off)
			results[i] = result{canceled: i%2 == 1, err: err, got: buf}
		}(i, ctx)
	}
	// Let the pool fill, then cancel every odd call mid-flight.
	time.Sleep(5 * time.Millisecond)
	for i := 1; i < calls; i += 2 {
		cancels[i]()
	}
	wg.Wait()
	for i := 0; i < calls; i += 2 {
		cancels[i]()
	}

	for i, r := range results {
		if errors.Is(r.err, ErrConnBroken) {
			t.Fatalf("call %d hit the broken latch: %v", i, r.err)
		}
		if r.canceled {
			// A cancelled call either reports the cancellation or — if
			// its reply won the race — nothing; it must never report a
			// transport fault.
			if r.err != nil && !errors.Is(r.err, context.Canceled) {
				t.Fatalf("cancelled call %d: %v", i, r.err)
			}
			continue
		}
		if r.err != nil {
			t.Fatalf("surviving call %d failed: %v", i, r.err)
		}
		off := (i % 4) * ps
		if !bytes.Equal(r.got, content[off:off+ps]) {
			t.Fatalf("surviving call %d read wrong content", i)
		}
	}

	// The connection is still healthy: fresh calls work, no redial.
	buf := make([]byte, ps)
	if _, err := cli.Read("/f", buf, 0); err != nil {
		t.Fatalf("connection unhealthy after cancellations: %v", err)
	}
	if !bytes.Equal(buf, content[:ps]) {
		t.Fatal("post-cancel read returned wrong content")
	}
	if err := cli.Logout(); err != nil {
		t.Fatal(err)
	}
}

// --- pipelined vs lock-step --------------------------------------------

// runReads drives total single-block reads from depth goroutines.
func runReads(t *testing.T, dev *RemoteDevice, depth, total int) time.Duration {
	t.Helper()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, depth)
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, dev.BlockSize())
			for i := w; i < total; i += depth {
				if err := dev.ReadBlock(uint64(i%64), buf); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestPipelineSpeedup asserts the acceptance bound on an RTT-bound
// backend: with a per-op device latency dominating the cost (the Sim
// role — on a 1-vCPU container CPU-bound crypto would flatten a
// Mem-only comparison), a v2 client pipelining 8-deep over one
// connection must beat the lock-step v1 client by ≥3× on the same
// workload. The nominal ratio is ~8 (the pool width); 3 leaves CI
// scheduling plenty of slack.
func TestPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	slow := &slowDevice{Device: blockdev.NewMem(256, 64), delay: 2 * time.Millisecond}
	srv, err := NewStorageServer("127.0.0.1:0", slow, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const depth, total = 8, 96

	v1, err := DialStorageV1(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	lockstep := runReads(t, v1, depth, total)

	v2, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	pipelined := runReads(t, v2, depth, total)

	ratio := float64(lockstep) / float64(pipelined)
	t.Logf("lock-step %v, pipelined %v: %.1fx", lockstep, pipelined, ratio)
	if ratio < 3 {
		t.Fatalf("pipelining speedup %.2fx < 3x (lock-step %v, pipelined %v)", ratio, lockstep, pipelined)
	}
}

// TestV2SingleConnOrdering: one goroutine's sequential calls on a v2
// connection still observe their own writes (each call completes
// before the next is issued, pipelining or not).
func TestV2SingleConnOrdering(t *testing.T) {
	mem := blockdev.NewMem(128, 32)
	srv, err := NewStorageServer("127.0.0.1:0", mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	buf := make([]byte, 128)
	for i := 0; i < 20; i++ {
		data := prng.NewFromUint64(uint64(i)).Bytes(128)
		if err := dev.WriteBlock(3, data); err != nil {
			t.Fatal(err)
		}
		if err := dev.ReadBlock(3, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("iteration %d: read does not see own write", i)
		}
	}
}

// TestV1InterruptStillLatches pins the retained v1 semantics: on a
// lock-step connection an interrupted in-flight call still latches
// ErrConnBroken (the desync is real there — no IDs to discard by).
func TestV1InterruptStillLatches(t *testing.T) {
	slow := &slowDevice{Device: blockdev.NewMem(256, 4096), delay: 20 * time.Millisecond}
	vol, err := stegfs.Format(slow, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("lch")})
	if err != nil {
		t.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(13))
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialAgentV1(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/d", 32); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 2*vol.PayloadSize())
	if err := cli.Write("/f", big, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	buf := make([]byte, len(big))
	if _, err := cli.ReadCtx(ctx, "/f", buf, 0); err == nil {
		t.Fatal("interrupted call succeeded")
	}
	if _, err := cli.Read("/f", buf, 0); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("v1 interrupted call must latch ErrConnBroken, got %v", err)
	}
}
