package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Worker-pool geometry shared by both servers: each connection gets
// its own bounded pool, and the reader blocks once the queue fills —
// backpressure propagates to the client through TCP flow control
// instead of unbounded buffering.
const (
	connWorkers  = 8
	connQueueLen = 16
)

// handlerFunc serves one request frame. On v2 connections it runs on
// a pool worker, concurrently with the connection's other in-flight
// requests; ctx is cancelled when the client sends msgCancel for this
// request (or the connection is torn down). On v1 connections it runs
// inline on the read loop with an always-live ctx. limit is the
// connection's negotiated frame bound — reply bodies must stay under
// it, or a conforming peer will (rightly) drop the connection.
type handlerFunc func(ctx context.Context, req frame, limit uint64) frame

// connServer drives one accepted connection through version
// negotiation and then the appropriate frame loop.
type connServer struct {
	conn     net.Conn
	maxFrame uint64 // server's offer; lowered to the negotiated value
	forceV1  bool   // interop knob: behave like a pre-v2 server

	// Observability attachments, both nil-safe (see ServeOptions).
	log     *slog.Logger
	metrics *serverMetrics

	wmu sync.Mutex // one reply frame at a time on the socket

	// Drain bookkeeping: requests dispatched but not yet replied, and
	// whether the negotiated protocol understands msgGoaway.
	inflightN atomic.Int64
	isV2      atomic.Bool
}

// logEvent emits one lifecycle record tagged with the peer address —
// a fact the network already shows anyone on the path.
func (cs *connServer) logEvent(msg string, attrs ...any) {
	if cs.log == nil {
		return
	}
	cs.log.Info(msg, append([]any{"remote", cs.conn.RemoteAddr().String()}, attrs...)...)
}

// countRequest bumps the dispatched-request counter.
func (cs *connServer) countRequest() {
	if cs.metrics != nil {
		cs.metrics.requests.Inc()
	}
}

// closedByPeer reports whether a read-loop error is a clean
// teardown — EOF from the peer hanging up, or our own side closing
// the socket (drain, Shutdown) — as opposed to a transport fault.
func closedByPeer(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}

// finishRead classifies the read-loop error that ended the
// connection: clean closes log as disconnects, anything else counts
// and logs as a transport fault.
func (cs *connServer) finishRead(err error) {
	if closedByPeer(err) {
		cs.logEvent("wire: connection closed")
		return
	}
	if cs.metrics != nil {
		cs.metrics.faults.Inc()
	}
	if cs.log != nil {
		cs.log.Warn("wire: transport fault",
			"remote", cs.conn.RemoteAddr().String(), "err", err.Error())
	}
}

// job is one dispatched request with its cancellation handle.
type job struct {
	req    frame
	ctx    context.Context
	cancel context.CancelFunc
}

// serve negotiates and runs the connection until it drops. handle is
// the protocol logic; it must be safe for concurrent use.
func (cs *connServer) serve(handle handlerFunc) {
	// The first frame decides the protocol. Pre-negotiation the v1
	// ceiling applies — a v1 peer's first frame may legitimately be a
	// full-size batch write.
	first, err := readFrame(cs.conn, maxBodySize)
	if err != nil {
		cs.finishRead(err)
		return
	}
	if first.Type == msgHello && !cs.forceV1 {
		version, theirMax, err := decodeHello(first.Body)
		first.release() // decoded by value; the lease ends here
		if err != nil {
			cs.write(frame{Type: msgErr, ID: first.ID, Body: errFrame(err).Body})
			return
		}
		if version >= protoV2 {
			negotiated := min(cs.maxFrame, theirMax)
			cs.maxFrame = negotiated
			if err := cs.write(frame{Type: msgHello, ID: first.ID, Body: helloBody(protoV2, negotiated)}); err != nil {
				return
			}
			cs.isV2.Store(true)
			cs.logEvent("wire: hello negotiated", "version", 2, "max_frame", negotiated)
			cs.serveV2(handle)
			return
		}
		// A v1-pinned client that still speaks hello: acknowledge and
		// fall through to lock-step.
		if err := cs.write(frame{Type: msgHello, ID: first.ID, Body: helloBody(protoV1, maxBodySize)}); err != nil {
			return
		}
		cs.logEvent("wire: hello negotiated", "version", 1, "max_frame", uint64(maxBodySize))
		cs.serveV1(nil, handle)
		return
	}
	if first.Type == msgHello {
		// forceV1: answer exactly like a pre-v2 server — an error for
		// the unknown frame type — and keep serving lock-step. This is
		// the downgrade signal v2 dialers key on.
		first.release()
		if err := cs.write(errFrameID(first.ID, fmt.Errorf("wire: unknown message type %#x", first.Type))); err != nil {
			return
		}
		cs.serveV1(nil, handle)
		return
	}
	// No hello: a v1 client. Serve its first frame, then loop.
	cs.serveV1(&first, handle)
}

// serveV1 is the lock-step loop: one request, one reply, in order.
func (cs *connServer) serveV1(first *frame, handle handlerFunc) {
	ctx := context.Background()
	if first != nil {
		if err := cs.serveOne(ctx, *first, handle); err != nil {
			return
		}
	}
	for {
		req, err := readFrame(cs.conn, maxBodySize)
		if err != nil {
			cs.finishRead(err)
			return
		}
		if err := cs.serveOne(ctx, req, handle); err != nil {
			return
		}
	}
}

// serveOne answers a single lock-step request. msgPing is a protocol
// liveness probe, answered before (and without) any handler state —
// no login, no volume, no device.
func (cs *connServer) serveOne(ctx context.Context, req frame, handle handlerFunc) error {
	if req.Type == msgPing && !cs.forceV1 {
		// forceV1 keeps the pre-v2 emulation honest: a genuine old
		// server answers the unknown type with msgErr via the handler's
		// default arm, and so does the emulation.
		return cs.write(frame{Type: msgOK, ID: req.ID})
	}
	cs.countRequest()
	cs.inflightN.Add(1)
	resp := handle(ctx, req, maxBodySize)
	resp.ID = req.ID
	err := cs.write(resp)
	// serveOne owns both leases: the handler consumed the request body
	// (every mutating path copies synchronously), and the reply body is
	// on the wire once write returns.
	req.release()
	resp.release()
	cs.inflightN.Add(-1)
	return err
}

// serveV2 is the pipelined loop: the reader dispatches requests to a
// bounded worker pool and keeps reading, so a connection's requests
// overlap; replies carry the request ID and may complete out of
// order. msgCancel is handled inline on the reader — it overtakes
// work sitting in the job queue and cancels the named request's
// context whether queued or mid-handler. (Under full backpressure —
// queue full, reader blocked on dispatch — cancels wait in the TCP
// buffer behind the blocked frame like everything else; the client
// does not depend on delivery, since it discards the late reply by
// ID either way.)
func (cs *connServer) serveV2(handle handlerFunc) {
	connCtx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()

	var (
		imu      sync.Mutex
		inflight = map[uint32]context.CancelFunc{}
	)
	jobs := make(chan job, connQueueLen)
	var wg sync.WaitGroup
	for i := 0; i < connWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				resp := handle(j.ctx, j.req, cs.maxFrame)
				resp.ID = j.req.ID
				imu.Lock()
				delete(inflight, j.req.ID)
				imu.Unlock()
				j.cancel()
				if err := cs.write(resp); err != nil {
					// The socket is gone: cancel everything and close
					// the conn so the blocked reader exits too.
					cancelAll()
					cs.conn.Close()
				}
				// The worker owns both leases (see serveOne).
				j.req.release()
				resp.release()
				cs.inflightN.Add(-1)
			}
		}()
	}
	defer wg.Wait()
	defer close(jobs)

	for {
		req, err := readFrame(cs.conn, cs.maxFrame)
		if err != nil {
			cs.finishRead(err)
			return
		}
		if req.Type == msgCancel {
			imu.Lock()
			cancel := inflight[req.ID]
			imu.Unlock()
			if cancel != nil {
				cancel()
			}
			continue // cancels get no reply; the request itself answers
		}
		if req.Type == msgPing {
			// Liveness probe: answered inline on the reader, before any
			// handler state — no login, no queueing, no worker slot.
			if err := cs.write(frame{Type: msgOK, ID: req.ID}); err != nil {
				return
			}
			continue
		}
		jctx, jcancel := context.WithCancel(connCtx)
		imu.Lock()
		_, dup := inflight[req.ID]
		if !dup {
			inflight[req.ID] = jcancel
		}
		imu.Unlock()
		if dup {
			// A conforming client never reuses an in-flight ID.
			// Letting it through would leave one request uncancellable
			// and pair two replies with one ID at the peer — and any
			// reply we send now would carry the live ID and poison the
			// original call. A protocol violation this deep has no
			// in-band answer: drop the connection.
			jcancel()
			req.release()
			return
		}
		cs.countRequest()
		cs.inflightN.Add(1)
		select {
		case jobs <- job{req: req, ctx: jctx, cancel: jcancel}:
			// The worker's copy of the frame owns the lease now.
		case <-connCtx.Done():
			cs.inflightN.Add(-1)
			jcancel()
			req.release()
			return
		}
	}
}

// write sends one frame under the writer lock.
func (cs *connServer) write(f frame) error {
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	return writeFrame(cs.conn, f)
}

// drain gracefully winds the connection down: a v2 peer is told to
// take its next call elsewhere (msgGoaway), in-flight requests finish
// and their replies are written, then the connection closes. ctx
// bounds the wait — on expiry the connection closes with requests
// still in flight, which is exactly the abrupt-close behavior a
// non-draining shutdown always had. v1 peers get no announcement
// (there is no frame for it pre-v2): their in-flight request drains
// and the close itself is the signal, unchanged semantics.
func (cs *connServer) drain(ctx context.Context) {
	cs.logEvent("wire: draining connection", "inflight", cs.inflightN.Load())
	if cs.isV2.Load() {
		// Best effort: a peer that already hung up just fails the
		// write, and the close below is a no-op on a dead socket.
		cs.write(frame{Type: msgGoaway}) //nolint:errcheck
		if cs.metrics != nil {
			cs.metrics.goaways.Inc()
		}
		cs.logEvent("wire: goaway sent")
	}
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for cs.inflightN.Load() != 0 {
		select {
		case <-ctx.Done():
			cs.conn.Close()
			return
		case <-t.C:
		}
	}
	cs.conn.Close()
}

// errFrameID is errFrame with the reply ID stamped.
func errFrameID(id uint32, err error) frame {
	f := errFrame(err)
	f.ID = id
	return f
}
