package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"steghide/internal/prng"
)

// This file is the network sibling of blockdev.FaultDevice: the chaos
// harness for the remote plane. A FaultConn injects transport faults
// — connection reset after a byte budget, torn frames (a partial
// prefix delivered, then the cut), one-shot stalls, per-read latency
// — and a FaultListener assigns deterministic per-connection fault
// plans from a seed, so a whole chaos run replays bit-identically.

// ErrInjectedFault reports an I/O operation killed by a FaultConn's
// plan. It reaches peers as a connection reset; locally (fuzzers,
// direct FaultConn users) it is the sentinel to assert on.
var ErrInjectedFault = fmt.Errorf("wire: injected fault")

// FaultPlan is one connection's injected-fault schedule. The zero
// value injects nothing.
type FaultPlan struct {
	// CutAfter is the connection's byte budget, counted across reads
	// and writes together. The operation that exhausts it transfers
	// the bytes still under budget — a torn frame, from the peer's
	// point of view — then the underlying connection closes and the
	// operation (and every later one) fails. 0 means no cut.
	CutAfter uint64
	// ReadLatency delays every read — a slow, but healthy, link.
	ReadLatency time.Duration
	// StallAfter arms a one-shot stall: once the cumulative byte count
	// passes it, the next operation sleeps StallFor before touching
	// the socket. Models a transient freeze (GC pause, packet loss
	// burst) rather than a failure; nothing errors.
	StallAfter uint64
	StallFor   time.Duration
}

// FaultConn wraps a net.Conn with an injected-fault plan. It is safe
// for the one-reader/one-writer discipline every mux connection uses;
// the byte budget is shared across both directions.
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu      sync.Mutex
	moved   uint64 // cumulative bytes across reads and writes
	cut     bool
	stalled bool // the one-shot stall has fired
}

// NewFaultConn arms conn with plan.
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	return &FaultConn{Conn: conn, plan: plan}
}

// admit reserves up to want bytes against the budget, reporting how
// many may move (0 with cut=true once the budget is gone) and whether
// the one-shot stall should fire now.
func (c *FaultConn) admit(want int) (allow int, cutNow, stallNow bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.StallFor > 0 && !c.stalled && c.moved >= c.plan.StallAfter {
		c.stalled = true
		stallNow = true
	}
	if c.cut {
		return 0, true, stallNow
	}
	if c.plan.CutAfter == 0 {
		return want, false, stallNow
	}
	left := c.plan.CutAfter - c.moved
	if left == 0 {
		c.cut = true
		return 0, true, stallNow
	}
	return int(min(uint64(want), left)), false, stallNow
}

// consume charges n moved bytes against the budget.
func (c *FaultConn) consume(n int) {
	c.mu.Lock()
	c.moved += uint64(n)
	c.mu.Unlock()
}

// Read implements net.Conn. A read that would cross the byte budget
// is truncated to the budget (the torn frame); the next operation
// finds the budget exhausted, closes the connection, and fails.
func (c *FaultConn) Read(p []byte) (int, error) {
	if c.plan.ReadLatency > 0 {
		time.Sleep(c.plan.ReadLatency)
	}
	allow, cutNow, stallNow := c.admit(len(p))
	if stallNow {
		time.Sleep(c.plan.StallFor)
	}
	if cutNow {
		c.Conn.Close() //nolint:errcheck // the fault is the point
		return 0, fmt.Errorf("%w: read after %d-byte budget", ErrInjectedFault, c.plan.CutAfter)
	}
	n, err := c.Conn.Read(p[:allow])
	c.consume(n)
	return n, err
}

// Write implements net.Conn. A write that would cross the byte budget
// delivers the prefix still under budget — the peer sees a torn frame
// — then closes the connection and reports the fault (a short write
// must error by the io.Writer contract).
func (c *FaultConn) Write(p []byte) (int, error) {
	allow, cutNow, stallNow := c.admit(len(p))
	if stallNow {
		time.Sleep(c.plan.StallFor)
	}
	if cutNow {
		c.Conn.Close() //nolint:errcheck // the fault is the point
		return 0, fmt.Errorf("%w: write after %d-byte budget", ErrInjectedFault, c.plan.CutAfter)
	}
	n, err := c.Conn.Write(p[:allow])
	c.consume(n)
	if err == nil && allow < len(p) {
		c.Conn.Close() //nolint:errcheck // torn frame delivered; now the reset
		return n, fmt.Errorf("%w: write after %d-byte budget", ErrInjectedFault, c.plan.CutAfter)
	}
	return n, err
}

// PlanFunc assigns a fault plan to the ordinal-th accepted
// connection, drawing any randomness from rng (deterministic: the
// listener owns one seeded stream and calls plans in accept order).
type PlanFunc func(ordinal int, rng *prng.PRNG) FaultPlan

// FaultListener wraps a listener so every accepted connection carries
// an injected-fault plan. Plans come from Plan, or from a default
// schedule whose byte budgets grow with the connection ordinal and
// which leaves every fourth connection effectively clean — so a
// retrying client always makes progress, while early connections die
// quickly enough to exercise every failure path.
type FaultListener struct {
	net.Listener
	Plan PlanFunc // optional; nil uses the default schedule

	mu  sync.Mutex
	rng *prng.PRNG
	n   int
}

// NewFaultListener wraps ln with the deterministic fault schedule
// derived from seed.
func NewFaultListener(ln net.Listener, seed uint64) *FaultListener {
	return &FaultListener{Listener: ln, rng: prng.NewFromUint64(seed).Child("wire/fault-listener")}
}

// Accept implements net.Listener.
func (l *FaultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	ord := l.n
	l.n++
	plan := l.planFor(ord)
	l.mu.Unlock()
	return NewFaultConn(conn, plan), nil
}

// planFor draws the ordinal's plan; the caller holds l.mu (the rng is
// a shared stream, consumed in accept order for determinism).
func (l *FaultListener) planFor(ord int) FaultPlan {
	if l.Plan != nil {
		return l.Plan(ord, l.rng)
	}
	return defaultPlan(ord, l.rng)
}

// defaultPlan is the stock chaos schedule: small byte budgets early
// (handshakes and single calls get torn), doubling every other
// connection; every fourth connection gets a huge budget so retried
// work completes; occasional latency and one-shot stalls ride along.
func defaultPlan(ord int, rng *prng.PRNG) FaultPlan {
	var p FaultPlan
	if ord%4 == 3 {
		// Effectively clean: room for a whole test's traffic, yet still
		// finite so a long-lived fleet connection recycles eventually.
		p.CutAfter = 16 << 20
	} else {
		base := uint64(96) << min(uint64(ord/2), 12)
		p.CutAfter = base + rng.Uint64n(base)
	}
	switch rng.Uint64n(4) {
	case 0:
		p.ReadLatency = time.Duration(1+rng.Uint64n(3)) * time.Millisecond
	case 1:
		p.StallAfter = rng.Uint64n(p.CutAfter)
		p.StallFor = time.Duration(1+rng.Uint64n(10)) * time.Millisecond
	}
	return p
}
