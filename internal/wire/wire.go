// Package wire implements the system model of §3.2 over TCP: users
// talk to a trusted agent through a private channel, and the agent
// talks to the shared raw storage over a channel an attacker can
// observe.
//
// Two servers are provided:
//
//   - StorageServer exposes a block device (the raw storage). Its
//     protocol carries only block indices and ciphertext, and an
//     optional tap publishes every request to a Tracer — the
//     wire-level traffic-analysis attacker's view.
//   - AgentServer exposes volatile agents (Construction 2) to
//     clients: login (naming one of the served volumes), disclose,
//     create, read, write, logout. In a real deployment this channel
//     would be TLS; the protocol layer is orthogonal to the
//     constructions being reproduced.
//
// The framing is a fixed 16-byte header (type, request ID, length)
// followed by a binary body, all big-endian. Protocol v2 multiplexes:
// every frame carries a request ID, clients keep any number of calls
// in flight on one connection, servers work them on a bounded pool
// and reply out of order, and msgCancel abandons one request without
// touching the rest. The first frame negotiates the version and the
// maximum frame size; v1 peers (no hello, or rejecting it) get the
// classic lock-step protocol on the same port.
package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"steghide/internal/blockdev"
	"steghide/internal/mempool"
)

// --- storage server ----------------------------------------------------

// StorageServer exposes a block device over TCP.
type StorageServer struct {
	dev blockdev.Device
	tap blockdev.Tracer // optional: the wire attacker's observation
	ln  net.Listener
	wg  sync.WaitGroup
	seq atomic.Uint64

	maxFrame uint64
	forceV1  bool // interop knob: behave like a pre-v2 server

	// Graceful-drain state: live connections, and whether Shutdown has
	// begun (after which new connections are refused).
	cmu   sync.Mutex
	conns map[*connServer]struct{}
	down  bool
}

// NewStorageServer starts serving dev on addr (e.g. "127.0.0.1:0").
// tap may be nil.
func NewStorageServer(addr string, dev blockdev.Device, tap blockdev.Tracer) (*StorageServer, error) {
	return newStorageServer(addr, dev, tap, maxBodySize, false)
}

// NewStorageServerListener is NewStorageServer over an already
// established listener — the injection point for fault-injecting
// transports (the chaos harness) and custom routing. The server owns
// ln from here on.
func NewStorageServerListener(ln net.Listener, dev blockdev.Device, tap blockdev.Tracer) (*StorageServer, error) {
	s := &StorageServer{dev: dev, tap: tap, ln: ln, maxFrame: maxBodySize, conns: map[*connServer]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// newStorageServer is the option-carrying core; the knobs (frame
// limit offer, pinned-v1 behavior) must be fixed before the accept
// loop can hand a connection to them.
func newStorageServer(addr string, dev blockdev.Device, tap blockdev.Tracer, maxFrame uint64, forceV1 bool) (*StorageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &StorageServer{dev: dev, tap: tap, ln: ln, maxFrame: maxFrame, forceV1: forceV1, conns: map[*connServer]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *StorageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connections to drain.
func (s *StorageServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: stop accepting, goaway every
// v2 connection, let in-flight requests reply, then close. See
// AgentServer.Shutdown for the full contract.
func (s *StorageServer) Shutdown(ctx context.Context) error {
	s.cmu.Lock()
	s.down = true
	conns := make([]*connServer, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.cmu.Unlock()
	s.ln.Close() //nolint:errcheck // re-Shutdown / racing Close
	var dwg sync.WaitGroup
	for _, cs := range conns {
		dwg.Add(1)
		go func(cs *connServer) {
			defer dwg.Done()
			cs.drain(ctx)
		}(cs)
	}
	dwg.Wait()
	s.wg.Wait()
	return ctx.Err()
}

// track registers a live connection, refusing once Shutdown began.
func (s *StorageServer) track(cs *connServer) bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.down {
		return false
	}
	s.conns[cs] = struct{}{}
	return true
}

func (s *StorageServer) untrack(cs *connServer) {
	s.cmu.Lock()
	delete(s.conns, cs)
	s.cmu.Unlock()
}

func (s *StorageServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			cs := &connServer{conn: conn, maxFrame: s.maxFrame, forceV1: s.forceV1}
			if !s.track(cs) {
				return // raced Shutdown: the listener is already closed
			}
			defer s.untrack(cs)
			cs.serve(s.handle)
		}()
	}
}

// handle serves one storage request; on v2 connections it runs
// concurrently on the connection's worker pool, so it allocates its
// own buffers and bumps the tap sequence atomically. limit is the
// connection's negotiated frame bound; batch replies must fit it.
func (s *StorageServer) handle(ctx context.Context, req frame, limit uint64) frame {
	if err := ctx.Err(); err != nil {
		return errFrame(fmt.Errorf("wire: %w", err))
	}
	switch req.Type {
	case msgDevInfo:
		e := &encoder{}
		e.u64(uint64(s.dev.BlockSize())).u64(s.dev.NumBlocks())
		return frame{Type: msgOK, Body: e.b}
	case msgReadBlock:
		d := &decoder{b: req.Body}
		idx := d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		buf := mempool.Get(s.dev.BlockSize())
		if err := s.dev.ReadBlock(idx, buf); err != nil {
			mempool.Recycle(buf)
			return errFrame(err)
		}
		s.record(blockdev.Event{Op: blockdev.OpRead, Block: idx})
		return frame{Type: msgOK, Body: buf, pooled: true}
	case msgWriteBlock:
		d := &decoder{b: req.Body}
		idx := d.u64()
		data := d.raw()
		if d.err != nil {
			return errFrame(d.err)
		}
		if err := s.dev.WriteBlock(idx, data); err != nil {
			return errFrame(err)
		}
		s.record(blockdev.Event{Op: blockdev.OpWrite, Block: idx})
		return frame{Type: msgOK}
	case msgReadBlocks:
		d := &decoder{b: req.Body}
		start, count := d.u64(), d.u64()
		if d.err != nil {
			return errFrame(d.err)
		}
		bufs, err := s.batchBufs(count, limit)
		if err != nil {
			return errFrame(err)
		}
		if err := blockdev.ReadBlocks(s.dev, start, bufs); err != nil {
			mempool.Recycle(slabOf(bufs))
			return errFrame(err)
		}
		s.record(blockdev.Event{Op: blockdev.OpRead, Block: start, Count: count})
		return frame{Type: msgOK, Body: slabOf(bufs), pooled: true}
	case msgWriteBlocks:
		d := &decoder{b: req.Body}
		start, count := d.u64(), d.u64()
		data, err := s.splitBlocks(d, count, limit)
		if err != nil {
			return errFrame(err)
		}
		if err := blockdev.WriteBlocks(s.dev, start, data); err != nil {
			return errFrame(err)
		}
		s.record(blockdev.Event{Op: blockdev.OpWrite, Block: start, Count: count})
		return frame{Type: msgOK}
	case msgReadBlocksAt:
		d := &decoder{b: req.Body}
		idx := decodeIndices(d)
		if d.err != nil {
			return errFrame(d.err)
		}
		bufs, err := s.batchBufs(uint64(len(idx)), limit)
		if err != nil {
			return errFrame(err)
		}
		if err := blockdev.ReadBlocksAt(s.dev, idx, bufs); err != nil {
			mempool.Recycle(slabOf(bufs))
			return errFrame(err)
		}
		for _, i := range idx {
			s.record(blockdev.Event{Op: blockdev.OpRead, Block: i})
		}
		return frame{Type: msgOK, Body: slabOf(bufs), pooled: true}
	case msgWriteBlocksAt:
		d := &decoder{b: req.Body}
		idx := decodeIndices(d)
		data, err := s.splitBlocks(d, uint64(len(idx)), limit)
		if err != nil {
			return errFrame(err)
		}
		if err := blockdev.WriteBlocksAt(s.dev, idx, data); err != nil {
			return errFrame(err)
		}
		for _, i := range idx {
			s.record(blockdev.Event{Op: blockdev.OpWrite, Block: i})
		}
		return frame{Type: msgOK}
	default:
		return errFrame(fmt.Errorf("wire: unknown message type %#x", req.Type))
	}
}

// record publishes one event to the tap with a fresh sequence number;
// concurrent workers interleave, so the counter is atomic.
func (s *StorageServer) record(e blockdev.Event) {
	if s.tap == nil {
		return
	}
	e.Seq = s.seq.Add(1)
	s.tap.Record(e)
}

// batchBufs carves count block buffers out of one reply slab, leased
// from the memory plane (the reply's consumer recycles it via the
// frame's pooled flag). The count is bounded so the reply frame stays
// under the connection's negotiated frame limit.
func (s *StorageServer) batchBufs(count, limit uint64) ([][]byte, error) {
	bs := s.dev.BlockSize()
	if count == 0 || count > limit/uint64(bs) {
		return nil, fmt.Errorf("wire: batch of %d blocks out of bounds", count)
	}
	slab := mempool.Get(int(count) * bs)
	bufs := make([][]byte, count)
	for i := range bufs {
		bufs[i] = slab[i*bs : (i+1)*bs]
	}
	return bufs, nil
}

// slabOf stitches buffers carved by batchBufs back into their
// underlying slab without copying. bufs[0]'s capacity spans the whole
// leased slab and is deliberately preserved (not re-capped at n), so
// releasing the result returns the full class-sized buffer to its
// pool.
func slabOf(bufs [][]byte) []byte {
	n := len(bufs) * len(bufs[0])
	return bufs[0][:n]
}

// splitBlocks views the decoder's remaining body as count raw blocks.
func (s *StorageServer) splitBlocks(d *decoder, count, limit uint64) ([][]byte, error) {
	if d.err != nil {
		return nil, d.err
	}
	bs := s.dev.BlockSize()
	if count == 0 || count > limit/uint64(bs) {
		return nil, fmt.Errorf("wire: batch of %d blocks out of bounds", count)
	}
	if uint64(len(d.b)) != count*uint64(bs) {
		return nil, fmt.Errorf("wire: batch body %d bytes, want %d", len(d.b), count*uint64(bs))
	}
	data := make([][]byte, count)
	for i := range data {
		data[i] = d.b[i*bs : (i+1)*bs]
	}
	return data, nil
}

// decodeIndices parses a u64 count followed by that many u64 indices.
func decodeIndices(d *decoder) []uint64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n == 0 || uint64(len(d.b)) < n*8 || n > maxBodySize/8 {
		d.err = fmt.Errorf("wire: index set of %d out of bounds", n)
		return nil
	}
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = d.u64()
	}
	return idx
}

// RemoteDevice is a blockdev.Device backed by a StorageServer. It is
// safe for concurrent use; on a v2 connection concurrent requests
// pipeline on the one connection instead of serializing. Wrapping one
// in a blockdev.Async ring turns submission depth directly into wire
// depth: every in-flight op is an outstanding request ID on the mux,
// so the async plane is native here, not emulated.
//
// A device dialed with DialStorageRetry self-heals: block and batch
// reads retry transparently across reconnects; block and batch writes
// retry only when the fault provably preceded the request's first
// byte on the wire, and otherwise fail with ErrMaybeApplied (the
// write may have landed — the caller must re-read to reconcile).
type RemoteDevice struct {
	m  *muxConn  // direct mode; nil in retry mode
	rd *Redialer // retry mode; nil in direct mode

	blockSize  int
	numBlocks  uint64
	frameLimit uint64 // negotiated at first connect; batches size to it
	protoVer   int
}

// DialStorage connects to a storage server and fetches its geometry.
func DialStorage(addr string) (*RemoteDevice, error) {
	return dialStorage(context.Background(), addr, false)
}

// DialStorageV1 connects speaking the lock-step v1 protocol only —
// the compatibility client for pre-v2 servers (and the lock-step arm
// of the paired pipelining benchmark).
func DialStorageV1(addr string) (*RemoteDevice, error) {
	return dialStorage(context.Background(), addr, true)
}

// DialStorageRetry connects with self-healing: transport faults
// redial (rotating through addrs) with backoff under policy's budget,
// and the geometry handshake replays on every reconnect. The initial
// dial itself retries too, so a device can be dialed while its server
// is still coming up.
func DialStorageRetry(ctx context.Context, policy RetryPolicy, addrs ...string) (*RemoteDevice, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("wire: no storage addresses")
	}
	d := &RemoteDevice{}
	rd := newRedialer(policy, maxBodySize, false, addrs...)
	rd.onConnect = d.onConnect
	d.rd = rd
	for attempt := 0; ; attempt++ {
		_, err := rd.acquire(ctx)
		if err == nil {
			return d, nil
		}
		if !transient(err) || attempt >= rd.policy.MaxRetries {
			rd.close() //nolint:errcheck // nothing live yet
			return nil, err
		}
		if serr := rd.sleep(ctx, attempt); serr != nil {
			rd.close() //nolint:errcheck // nothing live yet
			return nil, serr
		}
	}
}

// onConnect fetches the geometry on a fresh connection. The first
// connect fixes it (before the device escapes to any caller); every
// reconnect must present the same device — a changed geometry means
// we reached a different (or reformatted) store, where resuming block
// I/O would corrupt silently.
func (d *RemoteDevice) onConnect(ctx context.Context, m *muxConn) error {
	resp, err := m.call(ctx, frame{Type: msgDevInfo})
	if err != nil {
		return err
	}
	dec := &decoder{b: resp.Body}
	bs := int(dec.u64())
	nb := dec.u64()
	resp.release()
	if dec.err != nil {
		return dec.err
	}
	if bs <= 0 {
		return fmt.Errorf("wire: bad device geometry (block size %d)", bs)
	}
	if d.blockSize == 0 {
		d.blockSize = bs
		d.numBlocks = nb
		d.frameLimit = m.maxFrame
		d.protoVer = m.protoVersion()
		return nil
	}
	if bs != d.blockSize || nb != d.numBlocks {
		return fmt.Errorf("wire: device geometry changed across reconnect (%d×%d -> %d×%d)",
			d.blockSize, d.numBlocks, bs, nb)
	}
	if m.maxFrame < d.frameLimit {
		// In-flight batch sizing assumed the original limit; a smaller
		// renegotiated frame would make those batches oversized.
		return fmt.Errorf("wire: frame limit shrank across reconnect (%d -> %d)", d.frameLimit, m.maxFrame)
	}
	return nil
}

// do routes one exchange through the retry layer when enabled.
func (d *RemoteDevice) do(ctx context.Context, req frame, idempotent bool) (frame, error) {
	if d.rd != nil {
		return d.rd.call(ctx, req, idempotent)
	}
	return d.m.call(ctx, req)
}

func dialStorage(ctx context.Context, addr string, forceV1 bool) (*RemoteDevice, error) {
	m, err := dialMux(ctx, addr, maxBodySize, forceV1)
	if err != nil {
		return nil, err
	}
	d := &RemoteDevice{m: m}
	if err := d.onConnect(ctx, m); err != nil {
		m.close()
		return nil, err
	}
	return d, nil
}

// ProtoVersion reports the negotiated protocol version (1 or 2).
func (d *RemoteDevice) ProtoVersion() int { return d.protoVer }

// BlockSize implements blockdev.Device.
func (d *RemoteDevice) BlockSize() int { return d.blockSize }

// NumBlocks implements blockdev.Device.
func (d *RemoteDevice) NumBlocks() uint64 { return d.numBlocks }

// ReadBlock implements blockdev.Device.
func (d *RemoteDevice) ReadBlock(i uint64, buf []byte) error {
	if len(buf) != d.blockSize {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(buf), d.blockSize)
	}
	e := &encoder{}
	e.u64(i)
	resp, err := d.do(context.Background(), frame{Type: msgReadBlock, Body: e.b}, true)
	if err != nil {
		return err
	}
	if len(resp.Body) != d.blockSize {
		resp.release()
		return fmt.Errorf("wire: short block read (%d bytes)", len(resp.Body))
	}
	copy(buf, resp.Body)
	resp.release()
	return nil
}

// WriteBlock implements blockdev.Device.
func (d *RemoteDevice) WriteBlock(i uint64, data []byte) error {
	if len(data) != d.blockSize {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(data), d.blockSize)
	}
	e := &encoder{}
	e.u64(i)
	e.bytes(data)
	_, err := d.do(context.Background(), frame{Type: msgWriteBlock, Body: e.b}, false)
	return err
}

// Close implements blockdev.Device. Idempotent and safe to call
// concurrently with in-flight calls, which fail cleanly.
func (d *RemoteDevice) Close() error {
	if d.rd != nil {
		return d.rd.close()
	}
	return d.m.close()
}

// maxBatch is how many blocks fit one frame with headroom for the
// index/count fields, under the negotiated frame limit.
func (d *RemoteDevice) maxBatch() int {
	limit := d.frameLimit
	n := (limit - min(limit/2, 4096)) / uint64(d.blockSize+8)
	if n < 1 {
		n = 1
	}
	return int(n)
}

// checkBufs validates a batch's buffer vector against the device
// geometry before anything hits the wire.
func (d *RemoteDevice) checkBufs(bufs [][]byte) error {
	for _, b := range bufs {
		if len(b) != d.blockSize {
			return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(b), d.blockSize)
		}
	}
	return nil
}

// scatter copies a concatenated-blocks reply into the buffer vector
// and releases the reply's lease — the copy-out is the last read of
// the body on every path, including the size-mismatch error.
func (d *RemoteDevice) scatter(resp *frame, bufs [][]byte) error {
	defer resp.release()
	body := resp.Body
	if len(body) != len(bufs)*d.blockSize {
		return fmt.Errorf("wire: batch reply %d bytes, want %d", len(body), len(bufs)*d.blockSize)
	}
	for i, b := range bufs {
		copy(b, body[i*d.blockSize:])
	}
	return nil
}

// ReadBlocks implements blockdev.BatchDevice: each chunk of the range
// costs one round trip instead of one per block.
func (d *RemoteDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := d.checkBufs(bufs); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(bufs); off += chunk {
		hi := min(off+chunk, len(bufs))
		e := &encoder{}
		e.u64(start + uint64(off)).u64(uint64(hi - off))
		resp, err := d.do(context.Background(), frame{Type: msgReadBlocks, Body: e.b}, true)
		if err != nil {
			return err
		}
		if err := d.scatter(&resp, bufs[off:hi]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements blockdev.BatchDevice.
func (d *RemoteDevice) WriteBlocks(start uint64, data [][]byte) error {
	if err := d.checkBufs(data); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(data); off += chunk {
		hi := min(off+chunk, len(data))
		e := &encoder{b: mempool.Get(16 + (hi-off)*d.blockSize)[:0]}
		e.u64(start + uint64(off)).u64(uint64(hi - off))
		for _, b := range data[off:hi] {
			e.b = append(e.b, b...)
		}
		if _, err := d.do(context.Background(), frame{Type: msgWriteBlocks, Body: e.b}, false); err != nil {
			// The frame may still sit in a v2 writer's mailbox on this
			// path — dropping the buffer to the GC is the safe release.
			return err
		}
		mempool.Recycle(e.b)
	}
	return nil
}

// ReadBlocksAt implements blockdev.BatchDevice.
func (d *RemoteDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if len(idx) != len(bufs) {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBatchShape, len(idx), len(bufs))
	}
	if err := d.checkBufs(bufs); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(idx); off += chunk {
		hi := min(off+chunk, len(idx))
		e := &encoder{}
		e.u64(uint64(hi - off))
		for _, i := range idx[off:hi] {
			e.u64(i)
		}
		resp, err := d.do(context.Background(), frame{Type: msgReadBlocksAt, Body: e.b}, true)
		if err != nil {
			return err
		}
		if err := d.scatter(&resp, bufs[off:hi]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksAt implements blockdev.BatchDevice.
func (d *RemoteDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if len(idx) != len(data) {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBatchShape, len(idx), len(data))
	}
	if err := d.checkBufs(data); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(idx); off += chunk {
		hi := min(off+chunk, len(idx))
		e := &encoder{b: mempool.Get(16 + (hi-off)*(d.blockSize+8))[:0]}
		e.u64(uint64(hi - off))
		for _, i := range idx[off:hi] {
			e.u64(i)
		}
		for _, b := range data[off:hi] {
			e.b = append(e.b, b...)
		}
		if _, err := d.do(context.Background(), frame{Type: msgWriteBlocksAt, Body: e.b}, false); err != nil {
			// See WriteBlocks: on failure the buffer may still be
			// referenced by the send queue; leave it to the GC.
			return err
		}
		mempool.Recycle(e.b)
	}
	return nil
}
