// Package wire implements the system model of §3.2 over TCP: users
// talk to a trusted agent through a private channel, and the agent
// talks to the shared raw storage over a channel an attacker can
// observe.
//
// Two servers are provided:
//
//   - StorageServer exposes a block device (the raw storage). Its
//     protocol carries only block indices and ciphertext, and an
//     optional tap publishes every request to a Tracer — the
//     wire-level traffic-analysis attacker's view.
//   - AgentServer exposes a volatile agent (Construction 2) to
//     clients: login, disclose, create, read, write, logout. In a real
//     deployment this channel would be TLS; the protocol layer is
//     orthogonal to the constructions being reproduced.
//
// The framing is deliberately simple: fixed 16-byte header (type,
// flags, length) followed by a binary body, all big-endian.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// Message types.
const (
	// Storage protocol.
	msgReadBlock  = 0x01
	msgWriteBlock = 0x02
	msgDevInfo    = 0x03
	// Batched storage protocol: a whole block range (or index set) per
	// round trip, so remote batch cost is one network latency instead
	// of one per block.
	msgReadBlocks    = 0x04
	msgWriteBlocks   = 0x05
	msgReadBlocksAt  = 0x06
	msgWriteBlocksAt = 0x07
	// Agent protocol.
	msgLogin       = 0x10
	msgLogout      = 0x11
	msgCreate      = 0x12
	msgCreateDummy = 0x13
	msgDisclose    = 0x14
	msgRead        = 0x15
	msgWrite       = 0x16
	msgSave        = 0x17
	msgDelete      = 0x18
	msgList        = 0x19
	msgTruncate    = 0x1A
	// Replies.
	msgOK  = 0x70
	msgErr = 0x7F
)

// Error codes carried in msgErr bodies so the sentinel errors of the
// file layer survive the wire: errors.Is against ErrNotFound,
// ErrVolumeFull, ErrNoDummySpace and friends works on a remote client
// exactly as it does against a local agent, instead of every remote
// failure collapsing to an opaque string. Code 0 is a plain error.
const (
	codeGeneric      = 0
	codeNotFound     = 1
	codeVolumeFull   = 2
	codeNoDummySpace = 3
	codeNotDisclosed = 4
	codeUnknownUser  = 5
)

// errCode tags err with the sentinel code the peer should rebuild.
func errCode(err error) uint64 {
	switch {
	case errors.Is(err, stegfs.ErrNotFound):
		return codeNotFound
	case errors.Is(err, stegfs.ErrVolumeFull):
		return codeVolumeFull
	case errors.Is(err, steghide.ErrNoDummySpace):
		return codeNoDummySpace
	case errors.Is(err, steghide.ErrNotDisclosed):
		return codeNotDisclosed
	case errors.Is(err, steghide.ErrUnknownUser):
		return codeUnknownUser
	default:
		return codeGeneric
	}
}

// codeSentinel maps a wire code back to the sentinel it names.
func codeSentinel(code uint64) error {
	switch code {
	case codeNotFound:
		return stegfs.ErrNotFound
	case codeVolumeFull:
		return stegfs.ErrVolumeFull
	case codeNoDummySpace:
		return steghide.ErrNoDummySpace
	case codeNotDisclosed:
		return steghide.ErrNotDisclosed
	case codeUnknownUser:
		return steghide.ErrUnknownUser
	default:
		return nil
	}
}

// remoteError is a peer-reported failure. It unwraps to ErrRemote
// and, when the peer tagged a sentinel code, to that sentinel too.
type remoteError struct {
	sentinel error
	msg      string
}

func (e *remoteError) Error() string { return "wire: remote error: " + e.msg }

func (e *remoteError) Unwrap() []error {
	if e.sentinel == nil {
		return []error{ErrRemote}
	}
	return []error{ErrRemote, e.sentinel}
}

// decodeRemoteError rebuilds a peer's msgErr body: code plus message.
func decodeRemoteError(body []byte) error {
	d := &decoder{b: body}
	code := d.u64()
	msg := d.str()
	if d.err != nil {
		// A malformed error body still reports as a remote failure.
		return fmt.Errorf("%w: %s", ErrRemote, body)
	}
	return &remoteError{sentinel: codeSentinel(code), msg: msg}
}

const (
	headerSize  = 16
	maxBodySize = 64 << 20 // defensive bound on a frame body
)

// ErrRemote carries an error string returned by the peer.
var ErrRemote = errors.New("wire: remote error")

// frame is one protocol message.
type frame struct {
	Type uint32
	Body []byte
}

func writeFrame(w io.Writer, f frame) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], f.Type)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(f.Body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(f.Body) > 0 {
		if _, err := w.Write(f.Body); err != nil {
			return fmt.Errorf("wire: write body: %w", err)
		}
	}
	return nil
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint64(hdr[8:])
	if n > maxBodySize {
		return frame{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	f := frame{Type: binary.BigEndian.Uint32(hdr[0:])}
	if n > 0 {
		f.Body = make([]byte, n)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return frame{}, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return f, nil
}

// call sends a request and decodes the reply, translating msgErr.
func call(conn net.Conn, mu *sync.Mutex, req frame) (frame, error) {
	resp, _, err := callCtx(context.Background(), conn, mu, req)
	return resp, err
}

// callCtx is call honoring the context at the wire wait point: the
// context's deadline bounds the whole round trip, and cancellation
// interrupts an in-flight frame by expiring the connection deadline.
// The returned desynced flag reports that the request may have
// reached the peer but its reply was not (fully) consumed — the
// stream is out of frame sync and the connection must not carry
// another call (a later request would pair with the stale reply).
// Cancellation *before* the request is sent leaves the stream
// healthy.
func callCtx(ctx context.Context, conn net.Conn, mu *sync.Mutex, req frame) (resp frame, desynced bool, err error) {
	mu.Lock()
	defer mu.Unlock()
	return callLocked(ctx, conn, req)
}

// callLocked is callCtx's core; the caller holds the connection's
// mutex (Client.do locks it itself so the broken-latch check and the
// round trip are one critical section).
func callLocked(ctx context.Context, conn net.Conn, req frame) (resp frame, desynced bool, err error) {
	if err := ctx.Err(); err != nil {
		return frame{}, false, fmt.Errorf("wire: %w", err)
	}
	stop := watchCtx(ctx, conn)
	resp, ioErr := func() (frame, error) {
		if err := writeFrame(conn, req); err != nil {
			return frame{}, err
		}
		return readFrame(conn)
	}()
	cerr := stop()
	if ioErr != nil {
		// Any I/O failure after the request started leaves the frame
		// stream unusable, whether the cause was the context firing or
		// a transport fault.
		if cerr != nil {
			return frame{}, true, fmt.Errorf("wire: %w", cerr)
		}
		return frame{}, true, ioErr
	}
	if cerr != nil {
		// The context fired but the round trip completed intact: the
		// stream is still in sync; the operation still reports the
		// cancellation.
		return frame{}, false, fmt.Errorf("wire: %w", cerr)
	}
	if resp.Type == msgErr {
		return frame{}, false, decodeRemoteError(resp.Body)
	}
	return resp, false, nil
}

// watchCtx arms conn with ctx's deadline and interrupts in-flight I/O
// on cancellation. The returned stop undoes both and reports the
// context's error if it fired. stop waits for the watcher goroutine
// to exit before clearing the deadline, so a watcher that raced the
// call's completion cannot expire the deadline afterwards and poison
// the connection's next call.
func watchCtx(ctx context.Context, conn net.Conn) func() error {
	if ctx.Done() == nil {
		return func() error { return nil }
	}
	if d, ok := ctx.Deadline(); ok {
		conn.SetDeadline(d) //nolint:errcheck // best-effort bound
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			// Expire the deadline to unblock the frame read/write.
			conn.SetDeadline(time.Now()) //nolint:errcheck
		case <-done:
		}
	}()
	return func() error {
		close(done)
		<-exited
		conn.SetDeadline(time.Time{}) //nolint:errcheck
		return ctx.Err()
	}
}

// encoder builds binary bodies.
type encoder struct{ b []byte }

func (e *encoder) u64(v uint64) *encoder {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	e.b = append(e.b, tmp[:]...)
	return e
}

func (e *encoder) str(s string) *encoder {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
	return e
}

func (e *encoder) bytes(p []byte) *encoder {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
	return e
}

// decoder parses binary bodies.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("wire: truncated body")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string { return string(d.raw()) }

func (d *decoder) raw() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("wire: truncated body")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// --- storage server ----------------------------------------------------

// StorageServer exposes a block device over TCP.
type StorageServer struct {
	dev blockdev.Device
	tap blockdev.Tracer // optional: the wire attacker's observation
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewStorageServer starts serving dev on addr (e.g. "127.0.0.1:0").
// tap may be nil.
func NewStorageServer(addr string, dev blockdev.Device, tap blockdev.Tracer) (*StorageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &StorageServer{dev: dev, tap: tap, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *StorageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connections to drain.
func (s *StorageServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *StorageServer) acceptLoop() {
	defer s.wg.Done()
	var seq uint64
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn, &seq)
		}()
	}
}

func (s *StorageServer) serve(conn net.Conn, seq *uint64) {
	buf := make([]byte, s.dev.BlockSize())
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		var resp frame
		switch req.Type {
		case msgDevInfo:
			e := &encoder{}
			e.u64(uint64(s.dev.BlockSize())).u64(s.dev.NumBlocks())
			resp = frame{Type: msgOK, Body: e.b}
		case msgReadBlock:
			d := &decoder{b: req.Body}
			idx := d.u64()
			if d.err != nil {
				resp = errFrame(d.err)
				break
			}
			if err := s.dev.ReadBlock(idx, buf); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpRead, Block: idx})
			}
			resp = frame{Type: msgOK, Body: append([]byte(nil), buf...)}
		case msgWriteBlock:
			d := &decoder{b: req.Body}
			idx := d.u64()
			data := d.raw()
			if d.err != nil {
				resp = errFrame(d.err)
				break
			}
			if err := s.dev.WriteBlock(idx, data); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpWrite, Block: idx})
			}
			resp = frame{Type: msgOK}
		case msgReadBlocks:
			d := &decoder{b: req.Body}
			start, count := d.u64(), d.u64()
			if d.err != nil {
				resp = errFrame(d.err)
				break
			}
			bufs, err := s.batchBufs(count)
			if err != nil {
				resp = errFrame(err)
				break
			}
			if err := blockdev.ReadBlocks(s.dev, start, bufs); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpRead, Block: start, Count: count})
			}
			resp = frame{Type: msgOK, Body: slabOf(bufs)}
		case msgWriteBlocks:
			d := &decoder{b: req.Body}
			start, count := d.u64(), d.u64()
			data, err := s.splitBlocks(d, count)
			if err != nil {
				resp = errFrame(err)
				break
			}
			if err := blockdev.WriteBlocks(s.dev, start, data); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpWrite, Block: start, Count: count})
			}
			resp = frame{Type: msgOK}
		case msgReadBlocksAt:
			d := &decoder{b: req.Body}
			idx := decodeIndices(d)
			if d.err != nil {
				resp = errFrame(d.err)
				break
			}
			bufs, err := s.batchBufs(uint64(len(idx)))
			if err != nil {
				resp = errFrame(err)
				break
			}
			if err := blockdev.ReadBlocksAt(s.dev, idx, bufs); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				for _, i := range idx {
					s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpRead, Block: i})
				}
			}
			resp = frame{Type: msgOK, Body: slabOf(bufs)}
		case msgWriteBlocksAt:
			d := &decoder{b: req.Body}
			idx := decodeIndices(d)
			data, err := s.splitBlocks(d, uint64(len(idx)))
			if err != nil {
				resp = errFrame(err)
				break
			}
			if err := blockdev.WriteBlocksAt(s.dev, idx, data); err != nil {
				resp = errFrame(err)
				break
			}
			if s.tap != nil {
				for _, i := range idx {
					s.tap.Record(blockdev.Event{Seq: bump(seq), Op: blockdev.OpWrite, Block: i})
				}
			}
			resp = frame{Type: msgOK}
		default:
			resp = errFrame(fmt.Errorf("wire: unknown message type %#x", req.Type))
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func bump(seq *uint64) uint64 {
	*seq++
	return *seq
}

// batchBufs carves count block buffers out of one reply slab. The
// count is bounded so the reply frame stays under maxBodySize.
func (s *StorageServer) batchBufs(count uint64) ([][]byte, error) {
	bs := s.dev.BlockSize()
	if count == 0 || count > uint64(maxBodySize/bs) {
		return nil, fmt.Errorf("wire: batch of %d blocks out of bounds", count)
	}
	return blockdev.AllocBlocks(int(count), bs), nil
}

// slabOf stitches buffers carved by AllocBlocks back into their
// underlying slab without copying (bufs[0]'s capacity spans the slab).
func slabOf(bufs [][]byte) []byte {
	n := len(bufs) * len(bufs[0])
	return bufs[0][:n:n]
}

// splitBlocks views the decoder's remaining body as count raw blocks.
func (s *StorageServer) splitBlocks(d *decoder, count uint64) ([][]byte, error) {
	if d.err != nil {
		return nil, d.err
	}
	bs := s.dev.BlockSize()
	if count == 0 || count > uint64(maxBodySize/bs) {
		return nil, fmt.Errorf("wire: batch of %d blocks out of bounds", count)
	}
	if uint64(len(d.b)) != count*uint64(bs) {
		return nil, fmt.Errorf("wire: batch body %d bytes, want %d", len(d.b), count*uint64(bs))
	}
	data := make([][]byte, count)
	for i := range data {
		data[i] = d.b[i*bs : (i+1)*bs]
	}
	return data, nil
}

// decodeIndices parses a u64 count followed by that many u64 indices.
func decodeIndices(d *decoder) []uint64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n == 0 || n > maxBodySize/8 {
		d.err = fmt.Errorf("wire: index set of %d out of bounds", n)
		return nil
	}
	if uint64(len(d.b)) < n*8 {
		d.err = fmt.Errorf("wire: truncated body")
		return nil
	}
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = d.u64()
	}
	return idx
}

func errFrame(err error) frame {
	e := &encoder{}
	e.u64(errCode(err))
	e.str(err.Error())
	return frame{Type: msgErr, Body: e.b}
}

// RemoteDevice is a blockdev.Device backed by a StorageServer. It is
// safe for concurrent use (requests are serialized on one connection).
type RemoteDevice struct {
	conn      net.Conn
	mu        sync.Mutex
	blockSize int
	numBlocks uint64
}

// DialStorage connects to a storage server and fetches its geometry.
func DialStorage(addr string) (*RemoteDevice, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	d := &RemoteDevice{conn: conn}
	resp, err := call(conn, &d.mu, frame{Type: msgDevInfo})
	if err != nil {
		conn.Close()
		return nil, err
	}
	dec := &decoder{b: resp.Body}
	d.blockSize = int(dec.u64())
	d.numBlocks = dec.u64()
	if dec.err != nil {
		conn.Close()
		return nil, dec.err
	}
	return d, nil
}

// BlockSize implements blockdev.Device.
func (d *RemoteDevice) BlockSize() int { return d.blockSize }

// NumBlocks implements blockdev.Device.
func (d *RemoteDevice) NumBlocks() uint64 { return d.numBlocks }

// ReadBlock implements blockdev.Device.
func (d *RemoteDevice) ReadBlock(i uint64, buf []byte) error {
	if len(buf) != d.blockSize {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(buf), d.blockSize)
	}
	e := &encoder{}
	e.u64(i)
	resp, err := call(d.conn, &d.mu, frame{Type: msgReadBlock, Body: e.b})
	if err != nil {
		return err
	}
	if len(resp.Body) != d.blockSize {
		return fmt.Errorf("wire: short block read (%d bytes)", len(resp.Body))
	}
	copy(buf, resp.Body)
	return nil
}

// WriteBlock implements blockdev.Device.
func (d *RemoteDevice) WriteBlock(i uint64, data []byte) error {
	if len(data) != d.blockSize {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(data), d.blockSize)
	}
	e := &encoder{}
	e.u64(i)
	e.bytes(data)
	_, err := call(d.conn, &d.mu, frame{Type: msgWriteBlock, Body: e.b})
	return err
}

// Close implements blockdev.Device.
func (d *RemoteDevice) Close() error { return d.conn.Close() }

// maxBatch is how many blocks fit one frame with headroom for the
// index/count fields.
func (d *RemoteDevice) maxBatch() int {
	n := (maxBodySize - 4096) / (d.blockSize + 8)
	if n < 1 {
		n = 1
	}
	return n
}

// checkBufs validates a batch's buffer vector against the device
// geometry before anything hits the wire.
func (d *RemoteDevice) checkBufs(bufs [][]byte) error {
	for _, b := range bufs {
		if len(b) != d.blockSize {
			return fmt.Errorf("%w: %d != %d", blockdev.ErrBufSize, len(b), d.blockSize)
		}
	}
	return nil
}

// scatter copies a concatenated-blocks reply into the buffer vector.
func (d *RemoteDevice) scatter(body []byte, bufs [][]byte) error {
	if len(body) != len(bufs)*d.blockSize {
		return fmt.Errorf("wire: batch reply %d bytes, want %d", len(body), len(bufs)*d.blockSize)
	}
	for i, b := range bufs {
		copy(b, body[i*d.blockSize:])
	}
	return nil
}

// ReadBlocks implements blockdev.BatchDevice: each chunk of the range
// costs one round trip instead of one per block.
func (d *RemoteDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := d.checkBufs(bufs); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(bufs); off += chunk {
		hi := min(off+chunk, len(bufs))
		e := &encoder{}
		e.u64(start + uint64(off)).u64(uint64(hi - off))
		resp, err := call(d.conn, &d.mu, frame{Type: msgReadBlocks, Body: e.b})
		if err != nil {
			return err
		}
		if err := d.scatter(resp.Body, bufs[off:hi]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements blockdev.BatchDevice.
func (d *RemoteDevice) WriteBlocks(start uint64, data [][]byte) error {
	if err := d.checkBufs(data); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(data); off += chunk {
		hi := min(off+chunk, len(data))
		e := &encoder{b: make([]byte, 0, 16+(hi-off)*d.blockSize)}
		e.u64(start + uint64(off)).u64(uint64(hi - off))
		for _, b := range data[off:hi] {
			e.b = append(e.b, b...)
		}
		if _, err := call(d.conn, &d.mu, frame{Type: msgWriteBlocks, Body: e.b}); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocksAt implements blockdev.BatchDevice.
func (d *RemoteDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if len(idx) != len(bufs) {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBatchShape, len(idx), len(bufs))
	}
	if err := d.checkBufs(bufs); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(idx); off += chunk {
		hi := min(off+chunk, len(idx))
		e := &encoder{}
		e.u64(uint64(hi - off))
		for _, i := range idx[off:hi] {
			e.u64(i)
		}
		resp, err := call(d.conn, &d.mu, frame{Type: msgReadBlocksAt, Body: e.b})
		if err != nil {
			return err
		}
		if err := d.scatter(resp.Body, bufs[off:hi]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksAt implements blockdev.BatchDevice.
func (d *RemoteDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if len(idx) != len(data) {
		return fmt.Errorf("%w: %d != %d", blockdev.ErrBatchShape, len(idx), len(data))
	}
	if err := d.checkBufs(data); err != nil {
		return err
	}
	chunk := d.maxBatch()
	for off := 0; off < len(idx); off += chunk {
		hi := min(off+chunk, len(idx))
		e := &encoder{b: make([]byte, 0, 16+(hi-off)*(d.blockSize+8))}
		e.u64(uint64(hi - off))
		for _, i := range idx[off:hi] {
			e.u64(i)
		}
		for _, b := range data[off:hi] {
			e.b = append(e.b, b...)
		}
		if _, err := call(d.conn, &d.mu, frame{Type: msgWriteBlocksAt, Body: e.b}); err != nil {
			return err
		}
	}
	return nil
}
