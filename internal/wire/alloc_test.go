package wire

import (
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/race"
)

// TestAllocBudgets pins the batched remote read path, client and
// server together (AllocsPerRun counts every goroutine): one scattered
// 64-block read must run out of pooled frame and batch buffers on both
// ends. The budget allows per-call channel/ctx bookkeeping but sits
// far below the old one-frame-plus-one-payload-per-block regime.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	_, _, dev := newPair(t, 512, 256, nil)
	const n = 64
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = uint64((i * 37) % 256)
	}
	bufs := blockdev.AllocBlocks(n, 512)
	if err := blockdev.WriteBlocksAt(dev, idx, bufs); err != nil {
		t.Fatal(err)
	}
	if err := blockdev.ReadBlocksAt(dev, idx, bufs); err != nil { // warm pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := blockdev.ReadBlocksAt(dev, idx, bufs); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("ReadBlocksAt(%d scattered): %.1f allocs/batch (%.3f/block)", n, allocs, allocs/n)
	if allocs > 48 {
		t.Errorf("ReadBlocksAt(%d) = %.1f allocs/batch, budget 48", n, allocs)
	}
}
