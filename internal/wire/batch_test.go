package wire

import (
	"bytes"
	"testing"

	"steghide/internal/blockdev"
)

func newPair(t testing.TB, bs int, n uint64, tap blockdev.Tracer) (*blockdev.Mem, *StorageServer, *RemoteDevice) {
	t.Helper()
	mem := blockdev.NewMem(bs, n)
	srv, err := NewStorageServer("127.0.0.1:0", mem, tap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	return mem, srv, dev
}

// TestRemoteBatchRoundTrip drives all four batch frames end to end
// over a real TCP connection.
func TestRemoteBatchRoundTrip(t *testing.T) {
	var col blockdev.Collector
	mem, _, dev := newPair(t, 256, 64, &col)

	data := blockdev.AllocBlocks(10, 256)
	for i, b := range data {
		for j := range b {
			b[j] = byte(i*7 + j)
		}
	}
	if err := blockdev.WriteBlocks(dev, 3, data); err != nil {
		t.Fatal(err)
	}
	got := blockdev.AllocBlocks(10, 256)
	if err := blockdev.ReadBlocks(dev, 3, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("contiguous round trip diverges at %d", i)
		}
	}
	// The server really stored them (check the backing Mem directly).
	one := make([]byte, 256)
	if err := mem.ReadBlock(5, one); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, data[2]) {
		t.Fatal("server stored wrong content")
	}

	idx := []uint64{60, 1, 33, 12}
	sd := blockdev.AllocBlocks(len(idx), 256)
	for i, b := range sd {
		for j := range b {
			b[j] = byte(100 + i + j)
		}
	}
	if err := blockdev.WriteBlocksAt(dev, idx, sd); err != nil {
		t.Fatal(err)
	}
	sg := blockdev.AllocBlocks(len(idx), 256)
	if err := blockdev.ReadBlocksAt(dev, idx, sg); err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if !bytes.Equal(sg[i], sd[i]) {
			t.Fatalf("scattered round trip diverges at %d", i)
		}
	}

	// Tap view: contiguous batches are ranged events, scattered are
	// per-block; expanded, the totals match the blocks moved.
	var reads, writes uint64
	for _, e := range blockdev.ExpandEvents(col.Events()) {
		if e.Op == blockdev.OpRead {
			reads++
		} else {
			writes++
		}
	}
	if writes != 10+4 || reads != 10+4 {
		t.Fatalf("tap saw %d writes / %d reads, want 14/14", writes, reads)
	}
}

// TestRemoteBatchErrors verifies malformed batches are rejected
// remotely without corrupting the connection for later requests.
func TestRemoteBatchErrors(t *testing.T) {
	_, _, dev := newPair(t, 256, 16, nil)

	bufs := blockdev.AllocBlocks(4, 256)
	if err := blockdev.ReadBlocks(dev, 14, bufs); err == nil {
		t.Fatal("out-of-range remote batch succeeded")
	}
	if err := blockdev.ReadBlocksAt(dev, []uint64{1, 99}, bufs[:2]); err == nil {
		t.Fatal("out-of-range remote scattered batch succeeded")
	}
	if err := blockdev.WriteBlocks(dev, 0, [][]byte{make([]byte, 17)}); err == nil {
		t.Fatal("short buffer accepted")
	}
	// The connection still works.
	if err := blockdev.ReadBlocks(dev, 0, bufs); err != nil {
		t.Fatalf("connection broken after rejected batch: %v", err)
	}
}

// TestRemoteBatchChunking verifies batches beyond one frame's budget
// are split transparently.
func TestRemoteBatchChunking(t *testing.T) {
	_, _, dev := newPair(t, 256, 64, nil)
	if dev.maxBatch() < 1 {
		t.Fatal("degenerate chunk size")
	}
	// Force chunking by shrinking the client's view of the budget: use
	// a batch larger than maxBatch would ever be is impractical here
	// (64 MB frames), so drive the chunk loop with a small synthetic
	// chunk instead by issuing many maxed batches back to back.
	data := blockdev.AllocBlocks(64, 256)
	for i, b := range data {
		b[0] = byte(i)
	}
	if err := blockdev.WriteBlocks(dev, 0, data); err != nil {
		t.Fatal(err)
	}
	got := blockdev.AllocBlocks(64, 256)
	if err := blockdev.ReadBlocks(dev, 0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i][0] != byte(i) {
			t.Fatalf("block %d diverges", i)
		}
	}
}

// BenchmarkRemoteBatch pairs the per-block loop against the batched
// frames over a loopback TCP connection — the headline case: a remote
// batch costs one round trip instead of one per block.
func BenchmarkRemoteBatch(b *testing.B) {
	run := func(b *testing.B, batched bool) {
		_, _, dev := newPair(b, 4096, 256, nil)
		bufs := blockdev.AllocBlocks(64, 4096)
		b.SetBytes(int64(64 * 4096))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				if err := dev.ReadBlocks(0, bufs); err != nil {
					b.Fatal(err)
				}
				continue
			}
			for j := range bufs {
				if err := dev.ReadBlock(uint64(j), bufs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("read64/loop", func(b *testing.B) { run(b, false) })
	b.Run("read64/batched", func(b *testing.B) { run(b, true) })

	runW := func(b *testing.B, batched bool) {
		_, _, dev := newPair(b, 4096, 256, nil)
		data := blockdev.AllocBlocks(64, 4096)
		b.SetBytes(int64(64 * 4096))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				if err := dev.WriteBlocks(0, data); err != nil {
					b.Fatal(err)
				}
				continue
			}
			for j := range data {
				if err := dev.WriteBlock(uint64(j), data[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("write64/loop", func(b *testing.B) { runW(b, false) })
	b.Run("write64/batched", func(b *testing.B) { runW(b, true) })

	// Striped over three remote members: the batch fans out
	// per-member sub-batches concurrently, so a batch costs roughly
	// one round trip total instead of 64 serialized ones.
	runS := func(b *testing.B, batched bool) {
		var members []blockdev.Device
		for i := 0; i < 3; i++ {
			_, _, dev := newPair(b, 4096, 128, nil)
			members = append(members, dev)
		}
		s, err := blockdev.NewStriped(members...)
		if err != nil {
			b.Fatal(err)
		}
		bufs := blockdev.AllocBlocks(64, 4096)
		b.SetBytes(int64(64 * 4096))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				if err := s.ReadBlocks(0, bufs); err != nil {
					b.Fatal(err)
				}
				continue
			}
			for j := range bufs {
				if err := s.ReadBlock(uint64(j), bufs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("striped-read64/loop", func(b *testing.B) { runS(b, false) })
	b.Run("striped-read64/batched", func(b *testing.B) { runS(b, true) })
}
