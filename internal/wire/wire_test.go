package wire

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

func TestStorageServerRoundTrip(t *testing.T) {
	mem := blockdev.NewMem(256, 64)
	var tap blockdev.Collector
	srv, err := NewStorageServer("127.0.0.1:0", mem, &tap)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.BlockSize() != 256 || dev.NumBlocks() != 64 {
		t.Fatalf("geometry %d/%d", dev.BlockSize(), dev.NumBlocks())
	}

	data := prng.NewFromUint64(1).Bytes(256)
	if err := dev.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := dev.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remote roundtrip mismatch")
	}
	// The tap saw both operations — the attacker's wire view.
	if tap.Len() != 2 {
		t.Fatalf("tap saw %d events", tap.Len())
	}
	ev := tap.Events()
	if ev[0].Op != blockdev.OpWrite || ev[0].Block != 7 || ev[1].Op != blockdev.OpRead {
		t.Fatalf("tap events %+v", ev)
	}

	// Errors cross the wire as errors.
	if err := dev.ReadBlock(999, got); !errors.Is(err, ErrRemote) {
		t.Fatalf("out of range over wire: %v", err)
	}
	if err := dev.ReadBlock(1, got[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
	// Failed operations must not be visible on the tap.
	if tap.Len() != 2 {
		t.Fatal("failed op reached the tap")
	}
}

func TestStorageServerConcurrentClients(t *testing.T) {
	mem := blockdev.NewMem(128, 256)
	srv, err := NewStorageServer("127.0.0.1:0", mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev, err := DialStorage(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer dev.Close()
			rng := prng.NewFromUint64(uint64(w))
			for i := 0; i < 50; i++ {
				idx := uint64(w*64 + i%64)
				data := rng.Bytes(128)
				if err := dev.WriteBlock(idx, data); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 128)
				if err := dev.ReadBlock(idx, got); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("worker %d mismatch", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// newAgentFixture builds a full remote stack: storage server →
// remote device → volume → volatile agent → agent server.
func newAgentFixture(t *testing.T) (*AgentServer, func()) {
	t.Helper()
	mem := blockdev.NewMem(256, 2048)
	storageSrv, err := NewStorageServer("127.0.0.1:0", mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := DialStorage(storageSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	vol, err := stegfs.Format(remote, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("w")})
	if err != nil {
		t.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(5))
	agentSrv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		agentSrv.Close()
		remote.Close()
		storageSrv.Close()
	}
	return agentSrv, cleanup
}

func TestAgentOverWire(t *testing.T) {
	srv, cleanup := newAgentFixture(t)
	defer cleanup()

	cli, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Operations before login fail.
	if err := cli.Create("/x"); err == nil {
		t.Fatal("create before login accepted")
	}
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Login("alice", "pw"); err == nil {
		t.Fatal("double login accepted")
	}
	if err := cli.CreateDummy("/cover", 64); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/secret"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(9).Bytes(700)
	if err := cli.Write("/secret", msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := cli.Read("/secret", got, 0); err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("content mismatch over wire")
	}
	if err := cli.Save("/secret"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Logout(); err != nil {
		t.Fatal(err)
	}

	// A second session can disclose and read the file back.
	cli2, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	isDummy, size, err := cli2.Disclose("/secret")
	if err != nil {
		t.Fatal(err)
	}
	if isDummy || size != uint64(len(msg)) {
		t.Fatalf("disclose: dummy=%v size=%d", isDummy, size)
	}
	isDummy, _, err = cli2.Disclose("/cover")
	if err != nil {
		t.Fatal(err)
	}
	if !isDummy {
		t.Fatal("cover file should disclose as dummy")
	}
	got2 := make([]byte, len(msg))
	if _, err := cli2.Read("/secret", got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("content lost across remote sessions")
	}
	if err := cli2.Logout(); err != nil {
		t.Fatal(err)
	}
	// Wrong passphrase gives not-found on disclose (deniability).
	cli3, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli3.Close()
	if err := cli3.Login("alice", "wrong"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli3.Disclose("/secret"); err == nil {
		t.Fatal("wrong passphrase disclosed a file")
	}
}

func TestConnectionDropLogsOut(t *testing.T) {
	srv, cleanup := newAgentFixture(t)
	defer cleanup()

	cli, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Login("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	cli.Close() // drop without logout

	// The server must have logged bob out, so a fresh login works.
	cli2, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	for i := 0; i < 50; i++ {
		if err := cli2.Login("bob", "pw"); err == nil {
			return
		}
	}
	t.Fatal("session survived connection drop")
}

// TestAsyncRingOverRemote drives a blockdev.Async ring over a v2
// RemoteDevice: the ring's in-flight ops become outstanding request
// IDs on the one mux connection, so the async plane is exercising the
// wire protocol's native pipelining. A one-worker ring must keep the
// server-side tap in exact submission order — the determinism
// contract holds across the network too.
func TestAsyncRingOverRemote(t *testing.T) {
	const bs, n = 256, 64
	mem := blockdev.NewMem(bs, n)
	var tap blockdev.Collector
	srv, err := NewStorageServer("127.0.0.1:0", mem, &tap)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	// FIFO ring: writes in submission order, verified on the tap.
	ring := blockdev.NewAsync(dev, 1, 2*n)
	bufs := blockdev.AllocBlocks(n, bs)
	for i := range bufs {
		prng.NewFromUint64(uint64(i)).Read(bufs[i])
		ring.Submit(blockdev.AsyncOp{Write: true, Block: uint64((i * 13) % n), Buf: bufs[i]})
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	ev := tap.Events()
	if len(ev) != n {
		t.Fatalf("tap saw %d ops, want %d", len(ev), n)
	}
	for i := range ev {
		if ev[i].Op != blockdev.OpWrite || ev[i].Block != uint64((i*13)%n) {
			t.Fatalf("tap op %d out of submission order: %+v", i, ev[i])
		}
	}

	// Wide ring: reads pipeline concurrently on the mux; order is
	// free but every byte must come back right.
	ring = blockdev.NewAsync(dev, 4, 16)
	got := blockdev.AllocBlocks(n, bs)
	for i := range got {
		ring.Submit(blockdev.AsyncOp{Block: uint64((i * 13) % n), Buf: got[i]})
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Fatalf("pipelined read %d mismatch", i)
		}
	}
}
