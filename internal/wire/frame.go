package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"steghide/internal/mempool"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// Message types.
const (
	// Storage protocol.
	msgReadBlock  = 0x01
	msgWriteBlock = 0x02
	msgDevInfo    = 0x03
	// Batched storage protocol: a whole block range (or index set) per
	// round trip, so remote batch cost is one network latency instead
	// of one per block.
	msgReadBlocks    = 0x04
	msgWriteBlocks   = 0x05
	msgReadBlocksAt  = 0x06
	msgWriteBlocksAt = 0x07
	// Agent protocol.
	msgLogin       = 0x10
	msgLogout      = 0x11
	msgCreate      = 0x12
	msgCreateDummy = 0x13
	msgDisclose    = 0x14
	msgRead        = 0x15
	msgWrite       = 0x16
	msgSave        = 0x17
	msgDelete      = 0x18
	msgList        = 0x19
	msgTruncate    = 0x1A
	// Protocol v2 control plane. A v1 peer answers msgHello with
	// msgErr ("unknown message type"), which is exactly the fallback
	// signal the v2 dialer keys on; msgCancel names the request to
	// abandon in its header ID and carries no body.
	msgHello  = 0x40
	msgCancel = 0x41
	// Self-healing control plane. msgPing is a liveness probe answered
	// with msgOK before any login — load balancers and fleet routers
	// health-check a daemon without credentials. msgGoaway is sent by a
	// draining server (Shutdown) to v2 clients: in-flight requests will
	// still be answered, but the next call should go to a fresh
	// connection (a redial-enabled client dials its next address).
	// Both are unknown to genuine pre-v2 peers, which answer msgErr in
	// frame sync — exactly the degradation the callers handle.
	msgPing   = 0x42
	msgGoaway = 0x43
	// Replies.
	msgOK  = 0x70
	msgErr = 0x7F
)

// Protocol versions negotiated by the hello frame.
const (
	protoV1 = 1 // lock-step: one in-flight call per connection
	protoV2 = 2 // multiplexed: IDs pair replies, calls pipeline
)

// Error codes carried in msgErr bodies so the sentinel errors of the
// file layer survive the wire: errors.Is against ErrNotFound,
// ErrVolumeFull, ErrNoDummySpace and friends works on a remote client
// exactly as it does against a local agent, instead of every remote
// failure collapsing to an opaque string. Code 0 is a plain error.
const (
	codeGeneric       = 0
	codeNotFound      = 1
	codeVolumeFull    = 2
	codeNoDummySpace  = 3
	codeNotDisclosed  = 4
	codeUnknownUser   = 5
	codeUnknownVolume = 6
	codeCanceled      = 7
	codeUserBusy      = 8
)

// errCode tags err with the sentinel code the peer should rebuild.
func errCode(err error) uint64 {
	switch {
	case errors.Is(err, context.Canceled):
		return codeCanceled
	case errors.Is(err, stegfs.ErrNotFound):
		return codeNotFound
	case errors.Is(err, stegfs.ErrVolumeFull):
		return codeVolumeFull
	case errors.Is(err, steghide.ErrNoDummySpace):
		return codeNoDummySpace
	case errors.Is(err, steghide.ErrNotDisclosed):
		return codeNotDisclosed
	case errors.Is(err, steghide.ErrUnknownUser):
		return codeUnknownUser
	case errors.Is(err, ErrUnknownVolume):
		return codeUnknownVolume
	case errors.Is(err, steghide.ErrUserBusy):
		return codeUserBusy
	default:
		return codeGeneric
	}
}

// codeSentinel maps a wire code back to the sentinel it names.
func codeSentinel(code uint64) error {
	switch code {
	case codeNotFound:
		return stegfs.ErrNotFound
	case codeVolumeFull:
		return stegfs.ErrVolumeFull
	case codeNoDummySpace:
		return steghide.ErrNoDummySpace
	case codeNotDisclosed:
		return steghide.ErrNotDisclosed
	case codeUnknownUser:
		return steghide.ErrUnknownUser
	case codeUnknownVolume:
		return ErrUnknownVolume
	case codeUserBusy:
		return steghide.ErrUserBusy
	case codeCanceled:
		// A server-side cancellation (this request's msgCancel landed
		// mid-handler) reports as the context error the caller expects.
		return context.Canceled
	default:
		return nil
	}
}

// remoteError is a peer-reported failure. It unwraps to ErrRemote
// and, when the peer tagged a sentinel code, to that sentinel too.
type remoteError struct {
	sentinel error
	msg      string
}

func (e *remoteError) Error() string { return "wire: remote error: " + e.msg }

func (e *remoteError) Unwrap() []error {
	if e.sentinel == nil {
		return []error{ErrRemote}
	}
	return []error{ErrRemote, e.sentinel}
}

// decodeRemoteError rebuilds a peer's msgErr body: code plus message.
func decodeRemoteError(body []byte) error {
	d := &decoder{b: body}
	code := d.u64()
	msg := d.str()
	if d.err != nil {
		// A malformed error body still reports as a remote failure.
		return fmt.Errorf("%w: %s", ErrRemote, body)
	}
	return &remoteError{sentinel: codeSentinel(code), msg: msg}
}

const (
	headerSize = 16
	// maxBodySize is the protocol's hard ceiling on a frame body and
	// the pre-negotiation limit (v1 peers never negotiate a smaller
	// one). The hello exchange lowers it per connection.
	maxBodySize = 64 << 20
)

// ErrRemote carries an error string returned by the peer.
var ErrRemote = errors.New("wire: remote error")

// ErrUnknownVolume reports a login naming a volume the agent server
// does not serve.
var ErrUnknownVolume = errors.New("wire: unknown volume")

// ErrFrameTooBig reports a frame whose declared body length exceeds
// the connection's (negotiated) limit. The frame is never allocated
// or read; the connection is out of sync and must be dropped.
var ErrFrameTooBig = errors.New("wire: frame exceeds size limit")

// frame is one protocol message. ID pairs a reply with its request:
// protocol v1 peers leave it zero (the field occupies what v1 framed
// as padding, so the layouts are wire-compatible), v2 clients assign
// unique IDs to in-flight calls and the server echoes them.
//
// pooled marks a Body leased from the memory plane. Ownership follows
// the frame: whoever consumes the body last (copies it out, finishes
// decoding it, or discards the frame) calls release. Frames are copied
// by value through channels, so exactly one copy may release — the
// discipline at each hand-off is documented at the hand-off.
type frame struct {
	Type   uint32
	ID     uint32
	Body   []byte
	pooled bool
}

// release returns a leased body to the memory plane. Safe on frames
// with foreign or nil bodies (no-op), and idempotent on the same copy
// of the frame — but never call it on two copies of one frame.
func (f *frame) release() {
	if f.pooled && f.Body != nil {
		mempool.Recycle(f.Body)
	}
	f.Body, f.pooled = nil, false
}

func writeFrame(w io.Writer, f frame) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], f.Type)
	binary.BigEndian.PutUint32(hdr[4:], f.ID)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(f.Body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(f.Body) > 0 {
		if _, err := w.Write(f.Body); err != nil {
			return fmt.Errorf("wire: write body: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame, rejecting bodies over limit before any
// allocation happens — a hostile peer cannot force a huge allocation
// by declaring a huge length. The body is leased from the memory
// plane; the frame's consumer releases it.
func readFrame(r io.Reader, limit uint64) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint64(hdr[8:])
	if n > limit {
		return frame{}, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooBig, n, limit)
	}
	f := frame{
		Type: binary.BigEndian.Uint32(hdr[0:]),
		ID:   binary.BigEndian.Uint32(hdr[4:]),
	}
	if n > 0 {
		f.Body, f.pooled = mempool.Get(int(n)), true
		if _, err := io.ReadFull(r, f.Body); err != nil {
			f.release()
			return frame{}, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return f, nil
}

// helloBody encodes the version/limit offer (or answer).
func helloBody(version, maxFrame uint64) []byte {
	e := &encoder{}
	e.u64(version).u64(maxFrame)
	return e.b
}

// decodeHello parses a hello body.
func decodeHello(body []byte) (version, maxFrame uint64, err error) {
	d := &decoder{b: body}
	version = d.u64()
	maxFrame = d.u64()
	if d.err != nil {
		return 0, 0, d.err
	}
	if version < protoV1 || maxFrame == 0 {
		return 0, 0, fmt.Errorf("wire: malformed hello (version %d, limit %d)", version, maxFrame)
	}
	return version, maxFrame, nil
}

// encoder builds binary bodies.
type encoder struct{ b []byte }

func (e *encoder) u64(v uint64) *encoder {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	e.b = append(e.b, tmp[:]...)
	return e
}

func (e *encoder) str(s string) *encoder {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
	return e
}

func (e *encoder) bytes(p []byte) *encoder {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
	return e
}

// decoder parses binary bodies. Every accessor checks the remaining
// length before touching it, so truncated and hostile bodies error
// out instead of panicking; raw/str return views into the body, so a
// lying length prefix cannot drive an allocation either.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("wire: truncated body")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string { return string(d.raw()) }

func (d *decoder) raw() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("wire: truncated body")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// errFrame wraps err as a msgErr reply (the ID is stamped on send).
func errFrame(err error) frame {
	e := &encoder{}
	e.u64(errCode(err))
	e.str(err.Error())
	return frame{Type: msgErr, Body: e.b}
}
