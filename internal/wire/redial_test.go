package wire

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// testAgent builds a fresh volatile agent over a small formatted
// volume (fast KDF — these are protocol tests, not KDF tests).
func testAgent(t *testing.T, seed uint64) *steghide.VolatileAgent {
	t.Helper()
	vol, err := stegfs.Format(blockdev.NewMem(256, 2048),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("redial")})
	if err != nil {
		t.Fatal(err)
	}
	return steghide.NewVolatile(vol, prng.NewFromUint64(seed))
}

// quickRetry is a retry policy tuned for tests: generous budget, tiny
// backoff, deterministic jitter.
func quickRetry() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, JitterSeed: 11}
}

// TestPing probes liveness across the protocol matrix: answered
// before login on v2 and on a modern server's v1 connections, and
// refused (msgErr in frame sync) by a genuine pre-v2 server.
func TestPing(t *testing.T) {
	agent := testAgent(t, 1)
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialAgent(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("v2 ping before login: %v", err)
	}

	// A modern server answers pings on its lock-step connections too.
	v1cli, err := DialAgentV1(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v1cli.Close()
	if err := v1cli.Ping(); err != nil {
		t.Fatalf("v1-connection ping: %v", err)
	}

	// A genuine pre-v2 server does not know the frame type; the probe
	// fails cleanly as a remote error, the connection stays in sync.
	old, err := newAgentServer("127.0.0.1:0",
		map[string]*steghide.VolatileAgent{"": testAgent(t, 2)}, maxBodySize, true)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	oldCli, err := DialAgent(old.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer oldCli.Close()
	if err := oldCli.Ping(); !errors.Is(err, ErrRemote) {
		t.Fatalf("pre-v2 ping: want ErrRemote, got %v", err)
	}
	if err := oldCli.Login("alice", "pw"); err != nil {
		t.Fatalf("connection desynced by refused ping: %v", err)
	}
}

// TestCloseIdempotentConcurrent pins the Close contract: double
// Close, Close from many goroutines, and Close racing in-flight calls
// must neither panic nor double-close (run under -race).
func TestCloseIdempotentConcurrent(t *testing.T) {
	agent := testAgent(t, 3)
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, mode := range []string{"direct", "v1", "retry"} {
		t.Run(mode, func(t *testing.T) {
			var cli *Client
			var err error
			switch mode {
			case "direct":
				cli, err = DialAgent(srv.Addr())
			case "v1":
				cli, err = DialAgentV1(srv.Addr())
			case "retry":
				cli, err = DialAgentRetry(context.Background(), quickRetry(), srv.Addr())
			}
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cli.Ping() //nolint:errcheck // racing Close; any outcome is fine
				}()
			}
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := cli.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				}()
			}
			wg.Wait()
			if err := cli.Close(); err != nil {
				t.Errorf("re-Close: %v", err)
			}
		})
	}

	// RemoteDevice has the same contract.
	mem := blockdev.NewMem(256, 64)
	ssrv, err := NewStorageServer("127.0.0.1:0", mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ssrv.Close()
	dev, err := DialStorage(ssrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev.Close() //nolint:errcheck // concurrent Close is the point
		}()
	}
	wg.Wait()
	if err := dev.Close(); err != nil {
		t.Errorf("device re-Close: %v", err)
	}
}

// fakeV2Server accepts one connection, completes the v2 handshake,
// answers logins with msgOK, and on the first mutating frame reads it
// FULLY and then drops the connection without replying — the
// maybe-applied scenario: the request reached the server, the client
// cannot know whether it executed.
func fakeV2Server(t *testing.T, ln net.Listener) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	first, err := readFrame(conn, maxBodySize)
	if err != nil || first.Type != msgHello {
		return
	}
	if err := writeFrame(conn, frame{Type: msgHello, ID: first.ID, Body: helloBody(protoV2, maxBodySize)}); err != nil {
		return
	}
	for {
		req, err := readFrame(conn, maxBodySize)
		if err != nil {
			return
		}
		switch req.Type {
		case msgLogin, msgDisclose, msgPing:
			if err := writeFrame(conn, frame{Type: msgOK, ID: req.ID, Body: []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}}); err != nil {
				return
			}
		default:
			return // whole frame consumed; vanish without an answer
		}
	}
}

// TestMaybeApplied pins the non-retry contract for mutating calls: a
// write whose frame was fully sent before the transport died fails
// with ErrMaybeApplied — never a silent transparent retry.
func TestMaybeApplied(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go fakeV2Server(t, ln)

	cli, err := DialAgentRetry(context.Background(), quickRetry(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	err = cli.Create("/f")
	if !errors.Is(err, ErrMaybeApplied) {
		t.Fatalf("want ErrMaybeApplied, got %v", err)
	}
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("ErrMaybeApplied should wrap the transport fault, got %v", err)
	}
}

// TestReadRetriesTransparently is the idempotent counterpart: the
// same mid-call connection loss on a read-class call redials and
// retries without surfacing anything.
func TestReadRetriesTransparently(t *testing.T) {
	agent := testAgent(t, 4)
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialAgentRetry(context.Background(), quickRetry(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/cover", 32); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(7).Bytes(300)
	if err := cli.Write("/f", msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := cli.Save("/f"); err != nil {
		t.Fatal(err)
	}

	// Kill the live connection out from under the client.
	cli.rd.current().conn.Close()

	buf := make([]byte, len(msg))
	n, err := cli.Read("/f", buf, 0)
	if err != nil {
		t.Fatalf("read across reconnect: %v", err)
	}
	if n != len(msg) || string(buf) != string(msg) {
		t.Fatalf("read %d bytes across reconnect, content match=%v", n, string(buf) == string(msg))
	}
	// The session was replayed: listing still works and names /f.
	files, err := cli.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != "/f" {
		t.Fatalf("replayed session files = %v", files)
	}
}

// TestDrainHandsOffToNextAddress runs the drain choreography end to
// end: a server Shutdown lets the in-flight call finish, the goaway
// sends the client's next call to the next address, and the session
// replays there.
func TestDrainHandsOffToNextAddress(t *testing.T) {
	agent := testAgent(t, 5)
	srv1, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	cli, err := DialAgentRetry(context.Background(), quickRetry(), srv1.Addr(), srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/cover", 32); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(8).Bytes(200)
	if err := cli.Write("/f", msg, 0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The next calls land on srv2 with the session replayed; the write
	// above was flushed by the drain-triggered logout.
	buf := make([]byte, len(msg))
	if n, err := cli.Read("/f", buf, 0); err != nil || n != len(msg) {
		t.Fatalf("read after drain: %d, %v", n, err)
	}
	if string(buf) != string(msg) {
		t.Fatal("content lost across drain handoff")
	}
	if err := cli.Write("/f", msg, uint64(len(msg))); err != nil {
		t.Fatalf("write after drain: %v", err)
	}
}

// TestDrainLetsInflightFinish pins the drain ordering for a plain
// (non-retry) v2 client: a call in flight when Shutdown begins still
// gets its reply.
func TestDrainLetsInflightFinish(t *testing.T) {
	mem := blockdev.NewMem(256, 64)
	slow := &slowDevice{Device: mem, delay: 50 * time.Millisecond}
	srv, err := newStorageServer("127.0.0.1:0", slow, nil, maxBodySize, false)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := DialStorage(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		errc <- dev.ReadBlock(1, buf)
	}()
	time.Sleep(10 * time.Millisecond) // let the read reach the worker
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight read during drain: %v", err)
	}
	// After the drain the connection is gone: the next call fails with
	// the broken-connection taxonomy, not a hang.
	if err := dev.ReadBlock(2, make([]byte, 256)); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("post-drain call: want ErrConnBroken, got %v", err)
	}
}

// TestRetrySurvivesServerRestart kills a daemon abruptly and restarts
// it on the same address; the retrying client's next call redials
// until the new incarnation is up. This is the examples/remote-vault
// scenario.
func TestRetrySurvivesServerRestart(t *testing.T) {
	agent := testAgent(t, 6)
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	policy := RetryPolicy{MaxRetries: 20, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, JitterSeed: 3}
	cli, err := DialAgentRetry(context.Background(), policy, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Login("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateDummy("/cover", 32); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create("/f"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(9).Bytes(128)
	if err := cli.Write("/f", msg, 0); err != nil {
		t.Fatal(err)
	}

	// Kill abruptly: an already-expired drain context closes every
	// connection without waiting (Close would block until the retry
	// client hangs up, which it never does).
	killCtx, killCancel := context.WithCancel(context.Background())
	killCancel()
	srv.Shutdown(killCtx) //nolint:errcheck // the expired ctx is the point

	restarted := make(chan struct{})
	go func() {
		// Rebind the same address a beat later, while the client is
		// already failing and backing off against it.
		time.Sleep(30 * time.Millisecond)
		srv2, err := NewAgentServer(addr, agent)
		if err != nil {
			t.Errorf("rebind %s: %v", addr, err)
			close(restarted)
			return
		}
		t.Cleanup(func() { srv2.Close() })
		close(restarted)
	}()

	buf := make([]byte, len(msg))
	n, err := cli.Read("/f", buf, 0)
	<-restarted
	if err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if n != len(msg) || string(buf) != string(msg) {
		t.Fatal("content lost across restart")
	}
}

// TestCancelDuringReconnect pins two things about a context cancelled
// mid-backoff: the call abandons promptly, and nothing keeps redialing
// in the background afterwards (goroutine-count assertion).
func TestCancelDuringReconnect(t *testing.T) {
	// An address that refuses instantly: a bound-then-closed port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	before := runtime.NumGoroutine()

	policy := RetryPolicy{MaxRetries: 1 << 20, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, JitterSeed: 5}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond) // land mid-backoff
		cancel()
	}()
	start := time.Now()
	_, err = DialAgentRetry(ctx, policy, deadAddr)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}

	// No redial machinery may survive the abandoned call.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	t.Fatalf("leaked goroutines: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRetryBudgetExhausts pins that a permanently dead address fails
// with the transport taxonomy after the budget, instead of retrying
// forever.
func TestRetryBudgetExhausts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	policy := RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, JitterSeed: 7}
	_, err = DialAgentRetry(context.Background(), policy, deadAddr)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) && !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("want a dial error, got %v", err)
	}
}
