package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzLimit is the frame bound the fuzz targets run under: small
// enough that an over-allocation (a decode trusting a hostile length)
// would be caught by the post-conditions, large enough to cover real
// frames.
const fuzzLimit = 1 << 16

// FuzzFrameDecode throws arbitrary bytes at the frame reader: it must
// return a frame within the limit or an error — never panic, and
// never allocate a body the declared (possibly hostile) length asks
// for beyond the limit.
func FuzzFrameDecode(f *testing.F) {
	// Seeds: a well-formed empty frame, a bodied frame, a truncated
	// header, a truncated body, and a hostile length.
	var ok bytes.Buffer
	writeFrame(&ok, frame{Type: msgOK, ID: 7}) //nolint:errcheck
	f.Add(ok.Bytes())
	var bodied bytes.Buffer
	writeFrame(&bodied, frame{Type: msgWrite, ID: 1, Body: []byte("hello")}) //nolint:errcheck
	f.Add(bodied.Bytes())
	f.Add([]byte{0, 0, 0, 1})
	f.Add(bodied.Bytes()[:headerSize+2])
	hostile := make([]byte, headerSize)
	binary.BigEndian.PutUint64(hostile[8:], 1<<50)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data), fuzzLimit)
		if err != nil {
			return
		}
		if uint64(len(fr.Body)) > fuzzLimit {
			t.Fatalf("frame body %d bytes exceeds the %d limit", len(fr.Body), fuzzLimit)
		}
		// A decoded frame must re-encode to the bytes it came from.
		var out bytes.Buffer
		if err := writeFrame(&out, fr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("frame does not round-trip")
		}
	})
}

// FuzzDecoder drives every body decoder over arbitrary bytes:
// u64/str/raw on truncated and hostile lengths must error (the
// decoder's sticky err), never panic, and never slice beyond the
// body. The higher-level body parsers ride along, since their inputs
// are exactly these bodies.
func FuzzDecoder(f *testing.F) {
	e := &encoder{}
	e.u64(3).str("abc").bytes([]byte{1, 2})
	f.Add(e.b)
	lying := &encoder{}
	lying.u64(1 << 40) // length prefix far beyond the body
	f.Add(lying.b)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &decoder{b: data}
		_ = d.u64()
		s := d.str()
		r := d.raw()
		_ = d.u64()
		if d.err == nil && uint64(len(s)+len(r)) > uint64(len(data)) {
			t.Fatal("decoder returned more bytes than the body holds")
		}
		// The composite parsers over the same hostile bodies.
		decodeIndices(&decoder{b: data})
		_, _, _ = decodeHello(data)
		_ = decodeRemoteError(data)
	})
}
