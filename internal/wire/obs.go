package wire

import (
	"log/slog"

	"steghide/internal/obs"
)

// ServeOptions carries the observability attachments a server can be
// built with. Both are optional: a nil Logger is silent, a nil
// Metrics registry uninstrumented — the zero value is exactly the
// pre-observability server.
//
// Privacy contract (DESIGN.md "Observability plane"): lifecycle logs
// and metric labels carry only wire-visible facts — remote addresses,
// usernames and volume names from login frames, protocol versions,
// frame counts. Passphrases, hidden pathnames, locator secrets and
// any real-vs-dummy classification never reach either sink; the
// leakage lint test enforces the identifier flows.
type ServeOptions struct {
	Logger  *slog.Logger
	Metrics *obs.Registry
}

// serverMetrics is the per-server instrumentation bundle, nil when no
// registry is attached.
type serverMetrics struct {
	reg         *obs.Registry
	connections *obs.Counter // accepted connections
	requests    *obs.Counter // request frames dispatched to handlers
	faults      *obs.Counter // connections dropped by a transport fault
	goaways     *obs.Counter // goaway frames sent to v2 peers
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		reg: reg,
		connections: reg.Counter("steghide_wire_connections_total",
			"connections accepted by the wire server"),
		requests: reg.Counter("steghide_wire_requests_total",
			"request frames dispatched to protocol handlers"),
		faults: reg.Counter("steghide_wire_transport_faults_total",
			"connections dropped by a transport fault (not clean closes)"),
		goaways: reg.Counter("steghide_wire_goaways_total",
			"goaway frames sent to v2 peers during drain"),
	}
}

// login bumps the per-volume login counter (get-or-create: volumes
// registered after boot still get a series on first login). Volume
// names are operator-assigned serving labels from the login frame —
// wire-visible, not hidden material.
func (m *serverMetrics) login(volume string) {
	if m == nil {
		return
	}
	m.reg.Counter("steghide_wire_logins_total",
		"successful logins", "volume", volume).Inc()
}

// Client-side counters are package-level: Redialers are created per
// dial site, often transiently, so they share one set of series
// rather than each registering its own. They count whether or not a
// registry is attached (same atomic either way) and surface once
// RegisterClientMetrics exports them.
var (
	clientRedials      obs.Counter // fresh connections dialed by Redialers
	clientRetries      obs.Counter // call re-attempts after a transport fault
	clientMaybeApplied obs.Counter // calls surfaced as ErrMaybeApplied
)

// RegisterClientMetrics exports the self-healing client's counters
// through reg. Call once per registry; process-wide totals (a client
// process, unlike a server, rarely wants per-target split — and
// target addresses stay out of labels by design).
func RegisterClientMetrics(reg *obs.Registry) {
	reg.RegisterCounter("steghide_wire_redials_total",
		"connections dialed by self-healing clients", &clientRedials)
	reg.RegisterCounter("steghide_wire_retries_total",
		"client call re-attempts after transport faults", &clientRetries)
	reg.RegisterCounter("steghide_wire_maybe_applied_total",
		"client calls abandoned as possibly applied (ErrMaybeApplied)", &clientMaybeApplied)
}
