package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// TestAgentServerConcurrentSessions exercises the whole remote stack
// with several users writing simultaneously: each client's file must
// come back intact, proving the server no longer lock-steps sessions.
// Run with -race.
func TestAgentServerConcurrentSessions(t *testing.T) {
	vol, err := stegfs.Format(blockdev.NewMem(256, 4096),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("wc")})
	if err != nil {
		t.Fatal(err)
	}
	agent := steghide.NewVolatile(vol, prng.NewFromUint64(41))
	srv, err := NewAgentServer("127.0.0.1:0", agent)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const nClients = 4
	const writes = 15
	ps := vol.PayloadSize()

	type rig struct {
		cli     *Client
		content []byte
	}
	rigs := make([]*rig, nClients)
	for i := range rigs {
		cli, err := DialAgent(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Login(fmt.Sprintf("u%d", i), fmt.Sprintf("pw-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := cli.CreateDummy("/d", 100); err != nil {
			t.Fatal(err)
		}
		if err := cli.Create("/f"); err != nil {
			t.Fatal(err)
		}
		content := prng.NewFromUint64(uint64(10 + i)).Bytes(6 * ps)
		if err := cli.Write("/f", content, 0); err != nil {
			t.Fatal(err)
		}
		rigs[i] = &rig{cli: cli, content: content}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(400 + i))
			for k := 0; k < writes; k++ {
				li := rng.Intn(6)
				chunk := rng.Bytes(ps)
				copy(r.content[li*ps:], chunk)
				if err := r.cli.Write("/f", chunk, uint64(li*ps)); err != nil {
					errCh <- err
					return
				}
			}
		}(i, r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for i, r := range rigs {
		got := make([]byte, len(r.content))
		if _, err := r.cli.Read("/f", got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r.content) {
			t.Fatalf("client %d content corrupted by concurrent sessions", i)
		}
		if err := r.cli.Logout(); err != nil {
			t.Fatal(err)
		}
		if err := r.cli.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
