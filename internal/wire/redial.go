package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"steghide/internal/prng"
)

// ErrMaybeApplied reports a mutating request that may or may not have
// reached the server before the transport died: at least one byte of
// the frame was (or may have been) written, so blindly retrying could
// apply the update twice. The caller must reconcile — re-read the
// affected state, or re-issue only an idempotent form. Read-class
// requests never report this; they retry transparently.
var ErrMaybeApplied = errors.New("wire: request may have been applied; not retried")

// RetryPolicy bounds the self-healing client's reconnect behavior.
// The zero value means "defaults": a small retry budget with
// exponential backoff. Jitter is drawn from a deterministic stream
// seeded by JitterSeed, for the same reason every other random choice
// in this codebase is seeded: runs replay bit-identically, including
// their failure recovery.
type RetryPolicy struct {
	// MaxRetries is the per-call redial budget: how many times one
	// logical call may be re-attempted after a transport fault.
	// <= 0 means the default (4).
	MaxRetries int
	// BaseBackoff is the first retry's backoff; each further retry
	// doubles it up to MaxBackoff. <= 0 means the default (25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. <= 0 means the
	// default (1s).
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter stream. Any value is
	// valid; two clients with different seeds desynchronize their
	// retry storms, two runs with the same seed replay identically.
	JitterSeed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// backoff is the pre-jitter delay before retry attempt (0-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	return min(d, p.MaxBackoff)
}

// Redialer keeps one live muxConn on behalf of a client, replacing it
// when it breaks or the server announces a drain. Calls route through
// call, which classifies failures: transient transport faults redial
// (singleflight — concurrent callers share one dial) and retry under
// the policy's budget; remote taxonomy errors, cancellations, and
// local closes pass straight through; a mutating request that may
// have reached the server surfaces ErrMaybeApplied instead of
// retrying.
type Redialer struct {
	policy     RetryPolicy
	addrs      []string // dial targets, rotated on failure and drain
	proposeMax uint64
	forceV1    bool

	// onConnect replays session state (hello is already done by the
	// dialer; this layer re-runs login and disclosures) on every fresh
	// connection before any caller sees it. It must speak raw frames
	// on m — calling back into the Redialer would deadlock the
	// singleflight dial.
	onConnect func(ctx context.Context, m *muxConn) error

	mu      sync.Mutex
	conn    *muxConn
	dialing chan struct{} // non-nil while one caller dials for everyone
	closed  bool
	next    int // addr rotation cursor
	rng     *prng.PRNG
}

// newRedialer builds a Redialer over one or more addresses. The first
// address is preferred; the cursor advances past addresses that fail
// and past servers that announce a drain.
func newRedialer(policy RetryPolicy, proposeMax uint64, forceV1 bool, addrs ...string) *Redialer {
	p := policy.withDefaults()
	return &Redialer{
		policy:     p,
		addrs:      addrs,
		proposeMax: proposeMax,
		forceV1:    forceV1,
		rng:        prng.NewFromUint64(p.JitterSeed).Child("wire/redial-jitter"),
	}
}

// transient reports whether err is a transport-level fault worth a
// redial: a broken connection, a dial failure (the server may be
// restarting), or a torn handshake. Remote taxonomy errors mean the
// server answered — the connection is fine and the answer is final.
// Context errors are the caller's decision, never retried.
func transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, errConnClosed):
		return false // local Close is deliberate
	case errors.Is(err, ErrRemote):
		return false // the server answered; retrying re-asks a settled question
	case errors.Is(err, ErrConnBroken):
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return true // handshake torn mid-frame
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// call runs one request with retry. idempotent marks requests that are
// safe to re-send even if the server already executed them (reads,
// stats, listings, login, ping); a non-idempotent request is re-sent
// only when the fault provably preceded its first byte on the wire,
// and otherwise fails with ErrMaybeApplied wrapping the transport
// fault.
func (r *Redialer) call(ctx context.Context, req frame, idempotent bool) (frame, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			clientRetries.Inc()
		}
		m, err := r.acquire(ctx)
		if err == nil {
			var resp frame
			var sent bool
			resp, sent, err = m.callT(ctx, req)
			if err == nil {
				return resp, nil
			}
			if !transient(err) {
				return frame{}, err
			}
			r.invalidate(m)
			if sent && !idempotent {
				clientMaybeApplied.Inc()
				return frame{}, fmt.Errorf("%w: %w", ErrMaybeApplied, err)
			}
		} else if !transient(err) {
			return frame{}, err
		}
		if attempt >= r.policy.MaxRetries {
			return frame{}, err
		}
		if serr := r.sleep(ctx, attempt); serr != nil {
			return frame{}, serr
		}
	}
}

// sleep blocks for the attempt's jittered backoff, honoring ctx: a
// cancellation mid-backoff abandons the retry promptly (and, because
// dialing happens inline in the caller's goroutine, leaves nothing
// behind to leak).
func (r *Redialer) sleep(ctx context.Context, attempt int) error {
	d := r.policy.backoff(attempt)
	// Jitter into [d/2, d]: desynchronizes a thundering herd without
	// ever collapsing the delay to zero.
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	d = d/2 + time.Duration(f*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("wire: %w", ctx.Err())
	}
}

// acquire returns a healthy connection, dialing one if needed. Only
// one caller dials at a time; the rest wait on its outcome and
// re-check, so a burst of concurrent calls after a fault produces one
// reconnect, not a stampede.
func (r *Redialer) acquire(ctx context.Context) (*muxConn, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, errConnClosed
		}
		if r.conn != nil && r.conn.healthy() {
			m := r.conn
			r.mu.Unlock()
			return m, nil
		}
		if r.conn != nil {
			// Stale. A draining server still owes replies to in-flight
			// requests on this connection, so leave it open (the server
			// closes it once drained) and aim the next dial elsewhere; a
			// faulted connection is torn down (idempotent close).
			old := r.conn
			r.conn = nil
			if old.draining() {
				r.next++
			} else {
				old.close() //nolint:errcheck // already dead
			}
		}
		if r.dialing != nil {
			// Someone else is dialing; wait for their verdict, then
			// re-check from the top.
			done := r.dialing
			r.mu.Unlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, fmt.Errorf("wire: %w", ctx.Err())
			}
			continue
		}
		done := make(chan struct{})
		r.dialing = done
		addr := r.addrs[r.next%len(r.addrs)]
		r.mu.Unlock()

		m, err := r.dialOne(ctx, addr)

		r.mu.Lock()
		r.dialing = nil
		close(done)
		if err != nil {
			r.next++ // try the next address on the next attempt
			r.mu.Unlock()
			return nil, err
		}
		if r.closed {
			r.mu.Unlock()
			m.close() //nolint:errcheck // racing Close wins
			return nil, errConnClosed
		}
		r.conn = m
		r.mu.Unlock()
		return m, nil
	}
}

// dialOne establishes and initializes one connection: dial, hello
// negotiation, then the onConnect session replay.
func (r *Redialer) dialOne(ctx context.Context, addr string) (*muxConn, error) {
	clientRedials.Inc()
	m, err := dialMux(ctx, addr, r.proposeMax, r.forceV1)
	if err != nil {
		return nil, err
	}
	if r.onConnect != nil {
		if err := r.onConnect(ctx, m); err != nil {
			m.close() //nolint:errcheck // discarding a half-built conn
			return nil, err
		}
	}
	return m, nil
}

// invalidate drops m if it is still the current connection, so the
// next acquire dials fresh. Close is idempotent; racing invalidations
// are harmless.
func (r *Redialer) invalidate(m *muxConn) {
	r.mu.Lock()
	if r.conn == m {
		r.conn = nil
	}
	r.mu.Unlock()
	m.close() //nolint:errcheck // already broken
}

// current returns the live connection, if any, without dialing.
func (r *Redialer) current() *muxConn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn
}

// close shuts the Redialer down: no further dials, and the live
// connection (if any) is closed. Idempotent and safe to call
// concurrently with in-flight calls, which fail with errConnClosed.
func (r *Redialer) close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	m := r.conn
	r.conn = nil
	r.mu.Unlock()
	if m != nil {
		return m.close()
	}
	return nil
}
