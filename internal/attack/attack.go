// Package attack implements the two adversaries of §3.2.2, used by
// tests and examples to demonstrate that the baselines leak and the
// constructions do not:
//
//   - UpdateAnalyzer — the snapshot-diffing attacker: scans the raw
//     storage repeatedly, diffs consecutive snapshots, and looks for
//     structure in the changed-block sets (stable hot sets, non-uniform
//     spatial distribution).
//   - TrafficAnalyzer — the wire-tapping attacker: observes the I/O
//     request stream between agent and storage and looks for repeated
//     addresses and frequency skew.
//
// Both output a verdict with the statistical evidence, so experiments
// can report "detected hidden activity: yes/no (p = …)".
package attack

import (
	"bytes"
	"fmt"

	"steghide/internal/blockdev"
	"steghide/internal/stats"
)

// Verdict is an attacker's conclusion.
type Verdict struct {
	// Detected is true when the attacker found statistically
	// significant structure (p < Alpha).
	Detected bool
	// PValue is the probability of the observed structure under the
	// "nothing but noise" hypothesis.
	PValue float64
	// Evidence is a human-readable summary.
	Evidence string
}

// Alpha is the significance level attackers use.
const Alpha = 0.001

// UpdateAnalyzer diffs full-volume snapshots.
type UpdateAnalyzer struct {
	blockSize int
	nBlocks   uint64
	prev      []byte
	diffs     [][]uint64 // changed-block sets per snapshot interval
}

// NewUpdateAnalyzer creates an analyzer for a volume of the given
// geometry.
func NewUpdateAnalyzer(blockSize int, nBlocks uint64) *UpdateAnalyzer {
	return &UpdateAnalyzer{blockSize: blockSize, nBlocks: nBlocks}
}

// Observe takes the next snapshot. The first call establishes the
// baseline; subsequent calls record the set of changed blocks.
func (u *UpdateAnalyzer) Observe(snapshot []byte) error {
	if uint64(len(snapshot)) != uint64(u.blockSize)*u.nBlocks {
		return fmt.Errorf("attack: snapshot of %d bytes, want %d", len(snapshot), uint64(u.blockSize)*u.nBlocks)
	}
	if u.prev != nil {
		var changed []uint64
		for i := uint64(0); i < u.nBlocks; i++ {
			off := i * uint64(u.blockSize)
			if !bytes.Equal(u.prev[off:off+uint64(u.blockSize)], snapshot[off:off+uint64(u.blockSize)]) {
				changed = append(changed, i)
			}
		}
		u.diffs = append(u.diffs, changed)
	}
	u.prev = append(u.prev[:0], snapshot...)
	return nil
}

// Intervals returns the number of recorded snapshot intervals.
func (u *UpdateAnalyzer) Intervals() int { return len(u.diffs) }

// ChangedBlocks returns all changed blocks across intervals.
func (u *UpdateAnalyzer) ChangedBlocks() []uint64 {
	var all []uint64
	for _, d := range u.diffs {
		all = append(all, d...)
	}
	return all
}

// SpatialUniformity tests whether the changed blocks are spread
// uniformly over the volume. In-place update systems concentrate
// changes on the hidden file's blocks; Figure 6 spreads them
// uniformly. bins must satisfy the chi-square expected-count rule.
func (u *UpdateAnalyzer) SpatialUniformity(bins int) (Verdict, error) {
	all := u.ChangedBlocks()
	if len(all) == 0 {
		return Verdict{}, fmt.Errorf("attack: no changes observed")
	}
	hist := stats.Histogram(all, u.nBlocks, bins)
	stat, p, err := stats.ChiSquareUniform(hist)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Detected: p < Alpha,
		PValue:   p,
		Evidence: fmt.Sprintf("chi-square=%.1f over %d bins, %d changed blocks", stat, bins, len(all)),
	}, nil
}

// HotSetStability measures how similar consecutive changed-block sets
// are (mean Jaccard index). In-place systems rewrite the same blocks
// interval after interval (similarity → 1); relocating systems leave
// nothing stable (similarity → utilization-level noise). Returns the
// mean similarity and a verdict against the given threshold.
func (u *UpdateAnalyzer) HotSetStability(threshold float64) (float64, Verdict, error) {
	if len(u.diffs) < 2 {
		return 0, Verdict{}, fmt.Errorf("attack: need at least 2 intervals, have %d", len(u.diffs))
	}
	total := 0.0
	n := 0
	for i := 1; i < len(u.diffs); i++ {
		total += jaccard(u.diffs[i-1], u.diffs[i])
		n++
	}
	mean := total / float64(n)
	v := Verdict{
		Detected: mean > threshold,
		PValue:   0, // similarity test, not a p-value test
		Evidence: fmt.Sprintf("mean Jaccard similarity %.3f over %d intervals (threshold %.3f)", mean, n, threshold),
	}
	return mean, v, nil
}

func jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[uint64]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	for _, x := range b {
		if set[x] {
			inter++
		}
	}
	union := len(set) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TrafficAnalyzer inspects an observed I/O event stream.
type TrafficAnalyzer struct {
	nBlocks uint64
}

// NewTrafficAnalyzer creates an analyzer for a device of n blocks.
func NewTrafficAnalyzer(nBlocks uint64) *TrafficAnalyzer {
	return &TrafficAnalyzer{nBlocks: nBlocks}
}

// RepeatedReads counts addresses read more than once in the stream —
// the signature of an application re-reading data at a fixed location.
// The oblivious storage never re-reads a slot between shuffles, while
// direct StegFS reads repeat whenever the user does.
func (t *TrafficAnalyzer) RepeatedReads(events []blockdev.Event) (repeats int, distinct int) {
	seen := map[uint64]int{}
	for _, e := range blockdev.ExpandEvents(events) {
		if e.Op != blockdev.OpRead {
			continue
		}
		seen[e.Block]++
	}
	for _, c := range seen {
		if c > 1 {
			repeats += c - 1
		}
	}
	return repeats, len(seen)
}

// FrequencySkew tests whether read addresses are uniform across the
// observed region. Application access patterns (hot blocks, scans)
// skew it; dummy-mixed oblivious traffic does not.
func (t *TrafficAnalyzer) FrequencySkew(events []blockdev.Event, bins int) (Verdict, error) {
	var reads []uint64
	for _, e := range blockdev.ExpandEvents(events) {
		if e.Op == blockdev.OpRead {
			reads = append(reads, e.Block)
		}
	}
	if len(reads) == 0 {
		return Verdict{}, fmt.Errorf("attack: no reads observed")
	}
	hist := stats.Histogram(reads, t.nBlocks, bins)
	stat, p, err := stats.ChiSquareUniform(hist)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Detected: p < Alpha,
		PValue:   p,
		Evidence: fmt.Sprintf("chi-square=%.1f over %d bins, %d reads", stat, bins, len(reads)),
	}, nil
}

// CompareStreams is the operational form of Definition 1: given the
// write-address histograms of an idle (dummy-only) period and an
// active period, decide whether they differ. A secure construction
// yields Detected == false for any workload.
func CompareStreams(idle, active []uint64, nBlocks uint64, bins int) (Verdict, error) {
	h1 := stats.Histogram(idle, nBlocks, bins)
	h2 := stats.Histogram(active, nBlocks, bins)
	stat, p, err := stats.ChiSquareTwoSample(h1, h2)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Detected: p < Alpha,
		PValue:   p,
		Evidence: fmt.Sprintf("two-sample chi-square=%.1f over %d bins (%d vs %d events)", stat, bins, len(idle), len(active)),
	}, nil
}

// CompareStreamsK generalizes CompareStreams to k observation periods:
// the k-snapshot adversary diffs k+1 snapshots into k changed-block
// streams and asks whether any period's spatial distribution stands
// out from the rest (chi-square homogeneity over the k×bins table).
// A secure construction yields Detected == false no matter how the
// attacker slices the timeline.
func CompareStreamsK(streams [][]uint64, nBlocks uint64, bins int) (Verdict, error) {
	if len(streams) < 2 {
		return Verdict{}, fmt.Errorf("attack: need at least 2 streams, have %d", len(streams))
	}
	hists := make([][]uint64, len(streams))
	events := 0
	for i, s := range streams {
		hists[i] = stats.Histogram(s, nBlocks, bins)
		events += len(s)
	}
	stat, p, err := stats.ChiSquareKSample(hists...)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Detected: p < Alpha,
		PValue:   p,
		Evidence: fmt.Sprintf("%d-sample chi-square=%.1f over %d bins (%d events)", len(streams), stat, bins, events),
	}, nil
}

// SnapshotHomogeneity runs the k-snapshot diff adversary over the
// analyzer's own recorded intervals: each consecutive snapshot pair
// contributes one changed-block sample, and the test asks whether the
// per-interval spatial distributions are mutually homogeneous. With
// Figure-6 relocation every interval should look like an independent
// uniform draw; an in-place system betrays the workload's phases.
func (u *UpdateAnalyzer) SnapshotHomogeneity(bins int) (Verdict, error) {
	if len(u.diffs) < 2 {
		return Verdict{}, fmt.Errorf("attack: need at least 2 intervals, have %d", len(u.diffs))
	}
	return CompareStreamsK(u.diffs, u.nBlocks, bins)
}
