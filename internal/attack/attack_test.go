package attack

import (
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
)

func TestUpdateAnalyzerDiff(t *testing.T) {
	const bs, n = 64, 32
	u := NewUpdateAnalyzer(bs, n)
	vol := make([]byte, bs*n)
	if err := u.Observe(vol); err != nil {
		t.Fatal(err)
	}
	if u.Intervals() != 0 {
		t.Fatal("baseline snapshot counted as interval")
	}
	vol[5*bs] ^= 1
	vol[9*bs+63] ^= 1
	if err := u.Observe(vol); err != nil {
		t.Fatal(err)
	}
	if u.Intervals() != 1 {
		t.Fatal("interval not recorded")
	}
	got := u.ChangedBlocks()
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("changed = %v", got)
	}
	if err := u.Observe(vol[:10]); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestSpatialUniformityDetectsHotFile(t *testing.T) {
	// A 2048-block volume where only blocks 100..139 ever change —
	// the in-place StegFS signature. Must be detected.
	const bs, n = 16, 2048
	u := NewUpdateAnalyzer(bs, n)
	vol := make([]byte, bs*n)
	rng := prng.NewFromUint64(1)
	u.Observe(vol)
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			b := 100 + rng.Intn(40)
			vol[b*bs] ^= byte(1 + rng.Intn(255))
		}
		u.Observe(vol)
	}
	v, err := u.SpatialUniformity(16)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("hot file not detected: %+v", v)
	}
}

func TestSpatialUniformityAcceptsUniform(t *testing.T) {
	const bs, n = 16, 2048
	u := NewUpdateAnalyzer(bs, n)
	vol := make([]byte, bs*n)
	rng := prng.NewFromUint64(2)
	u.Observe(vol)
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			b := rng.Intn(n)
			vol[b*bs] ^= byte(1 + rng.Intn(255))
		}
		u.Observe(vol)
	}
	v, err := u.SpatialUniformity(16)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected {
		t.Fatalf("uniform changes flagged: %+v", v)
	}
}

func TestHotSetStability(t *testing.T) {
	const bs, n = 16, 256
	// Stable hot set: same 10 blocks change every interval.
	u := NewUpdateAnalyzer(bs, n)
	vol := make([]byte, bs*n)
	u.Observe(vol)
	for round := 0; round < 10; round++ {
		for b := 20; b < 30; b++ {
			vol[b*bs] ^= byte(round + 1)
		}
		u.Observe(vol)
	}
	mean, v, err := u.HotSetStability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected || mean < 0.99 {
		t.Fatalf("stable hot set missed: mean=%v %+v", mean, v)
	}

	// Shifting set: disjoint blocks each interval.
	u2 := NewUpdateAnalyzer(bs, n)
	vol2 := make([]byte, bs*n)
	u2.Observe(vol2)
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			b := (round*10 + i) % n
			vol2[b*bs] ^= byte(round + 1)
		}
		u2.Observe(vol2)
	}
	mean2, v2, err := u2.HotSetStability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Detected || mean2 > 0.01 {
		t.Fatalf("shifting set flagged: mean=%v %+v", mean2, v2)
	}

	if _, _, err := NewUpdateAnalyzer(bs, n).HotSetStability(0.5); err == nil {
		t.Fatal("stability with no intervals accepted")
	}
}

func TestRepeatedReads(t *testing.T) {
	ta := NewTrafficAnalyzer(100)
	events := []blockdev.Event{
		{Seq: 1, Op: blockdev.OpRead, Block: 5},
		{Seq: 2, Op: blockdev.OpRead, Block: 5},
		{Seq: 3, Op: blockdev.OpRead, Block: 5},
		{Seq: 4, Op: blockdev.OpRead, Block: 9},
		{Seq: 5, Op: blockdev.OpWrite, Block: 9},
	}
	repeats, distinct := ta.RepeatedReads(events)
	if repeats != 2 || distinct != 2 {
		t.Fatalf("repeats=%d distinct=%d", repeats, distinct)
	}
}

func TestFrequencySkew(t *testing.T) {
	ta := NewTrafficAnalyzer(1024)
	rng := prng.NewFromUint64(3)
	var uniform, hot []blockdev.Event
	for i := 0; i < 8000; i++ {
		uniform = append(uniform, blockdev.Event{Op: blockdev.OpRead, Block: rng.Uint64n(1024)})
		b := rng.Uint64n(1024)
		if i%2 == 0 {
			b = 10 + rng.Uint64n(16) // hot range
		}
		hot = append(hot, blockdev.Event{Op: blockdev.OpRead, Block: b})
	}
	v, err := ta.FrequencySkew(uniform, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected {
		t.Fatalf("uniform traffic flagged: %+v", v)
	}
	v, err = ta.FrequencySkew(hot, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("hot traffic missed: %+v", v)
	}
	if _, err := ta.FrequencySkew(nil, 16); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestCompareStreams(t *testing.T) {
	rng := prng.NewFromUint64(4)
	var idle, same, skew []uint64
	for i := 0; i < 20000; i++ {
		idle = append(idle, rng.Uint64n(512))
		same = append(same, rng.Uint64n(512))
		skew = append(skew, rng.Uint64n(256))
	}
	v, err := CompareStreams(idle, same, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected {
		t.Fatalf("identical distributions flagged: %+v", v)
	}
	v, err = CompareStreams(idle, skew, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("skewed workload missed: %+v", v)
	}
}

func TestCompareStreamsK(t *testing.T) {
	rng := prng.NewFromUint64(5)
	uniform := make([][]uint64, 6)
	for i := range uniform {
		for j := 0; j < 8000; j++ {
			uniform[i] = append(uniform[i], rng.Uint64n(512))
		}
	}
	v, err := CompareStreamsK(uniform, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected {
		t.Fatalf("homogeneous periods flagged: %+v", v)
	}

	// One anomalous period among six: the slicing attack 2-snapshot
	// CompareStreams cannot mount.
	mixed := make([][]uint64, 6)
	for i := range mixed {
		for j := 0; j < 8000; j++ {
			b := rng.Uint64n(512)
			if i == 4 {
				b = rng.Uint64n(256)
			}
			mixed[i] = append(mixed[i], b)
		}
	}
	v, err = CompareStreamsK(mixed, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("anomalous period missed: %+v", v)
	}

	if _, err := CompareStreamsK(mixed[:1], 512, 16); err == nil {
		t.Fatal("single stream accepted")
	}
}

func TestSnapshotHomogeneity(t *testing.T) {
	const bs, n = 16, 2048
	rng := prng.NewFromUint64(6)

	// Uniform relocation: every interval is an independent uniform
	// draw — homogeneous.
	u := NewUpdateAnalyzer(bs, n)
	vol := make([]byte, bs*n)
	u.Observe(vol)
	for round := 0; round < 8; round++ {
		for i := 0; i < 200; i++ {
			b := rng.Intn(n)
			vol[b*bs] ^= byte(1 + rng.Intn(255))
		}
		u.Observe(vol)
	}
	v, err := u.SnapshotHomogeneity(8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected {
		t.Fatalf("uniform intervals flagged: %+v", v)
	}

	// Phase change: intervals 0-3 uniform, 4-7 confined to the lower
	// quarter — an in-place system whose workload shifted.
	u2 := NewUpdateAnalyzer(bs, n)
	vol2 := make([]byte, bs*n)
	u2.Observe(vol2)
	for round := 0; round < 8; round++ {
		for i := 0; i < 200; i++ {
			b := rng.Intn(n)
			if round >= 4 {
				b = rng.Intn(n / 4)
			}
			vol2[b*bs] ^= byte(1 + rng.Intn(255))
		}
		u2.Observe(vol2)
	}
	v, err = u2.SnapshotHomogeneity(8)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Detected {
		t.Fatalf("phase change missed: %+v", v)
	}

	if _, err := NewUpdateAnalyzer(bs, n).SnapshotHomogeneity(8); err == nil {
		t.Fatal("no-interval analyzer accepted")
	}
}
