// Package mempool is the repo-wide memory plane: size-class free
// lists over sync.Pool for transient buffers (wire frame bodies,
// sealed-block slabs), a bump arena for per-burst scheduler scratch,
// and a leased-buffer discipline that turns ownership bugs
// (double-return, use-after-return, cross-size return) into panics
// instead of silent corruption.
//
// Leakage note: pools are keyed by size class only. A buffer's history
// (which request, which file, real or dummy) never influences which
// pool it lands in or which buffer a later request receives, and every
// hot path fully overwrites a buffer before its contents reach the
// wire or the device — so reuse cannot create an observable channel
// beyond the sizes an attacker already sees on the wire. See
// DESIGN.md, "Memory plane".
//
// The plane can be disabled process-wide (SetEnabled(false), the
// facade's WithMemPool(false), or STEGHIDE_MEMPOOL=0) for debugging:
// every Get degrades to a plain make and every Put to a no-op, which
// is exactly the allocation behavior the code had before pooling —
// the observable-equivalence oracles compare the two modes.
package mempool

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
)

// Size-class geometry: powers of two from minClass to maxClass.
// Requests above maxClass fall through to plain make — huge buffers
// are rare (negotiated wire frames cap batch sizes long before this)
// and pinning them in pools would just hoard memory.
const (
	minClassBits = 6  // 64 B
	maxClassBits = 21 // 2 MiB — covers a full 512-block × 4 KiB wire batch
	numClasses   = maxClassBits - minClassBits + 1

	minClass = 1 << minClassBits
	maxClass = 1 << maxClassBits
)

// enabled gates the whole plane; see SetEnabled.
var enabled atomic.Bool

func init() {
	enabled.Store(os.Getenv("STEGHIDE_MEMPOOL") != "0")
}

// SetEnabled switches the memory plane on or off process-wide and
// reports the previous state. Off means Get allocates fresh and Put
// discards — byte-for-byte the pre-pooling behavior. The switch is a
// debugging and oracle knob, not a per-request toggle: flipping it
// concurrently with hot-path traffic is safe (buffers in flight are
// simply dropped to the GC) but makes measurements meaningless.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether the memory plane is on.
func Enabled() bool { return enabled.Load() }

// classes[i] holds buffers of exactly 1<<(minClassBits+i) capacity.
// Boxed as *[]byte so the pool interface holds a pointer, not a
// slice header copy (which would allocate on every Put).
var classes [numClasses]sync.Pool

// boxes recycles the *[]byte headers themselves: without this, every
// Put would heap-allocate a fresh box for its slice header, putting a
// one-alloc floor under the whole plane. Get empties a box into the
// box pool; Put refills one from it.
var boxes = sync.Pool{New: func() any { return new([]byte) }}

// classFor returns the class index whose size is the smallest class
// ≥ n, or -1 if n is zero or above maxClass.
func classFor(n int) int {
	if n <= 0 || n > maxClass {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n), with n=1 -> 0
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// classSize is the capacity of class index c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Get returns a buffer of length n. When the plane is on and n fits a
// size class, the buffer comes from (and its capacity is exactly) that
// class; otherwise it is a fresh allocation. Contents are NOT zeroed —
// every caller fully overwrites the buffer before reading or
// publishing it, which is also why reuse leaks nothing.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 || !enabled.Load() {
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		box := v.(*[]byte)
		b := *box
		*box = nil
		boxes.Put(box)
		return b[:n]
	}
	b := make([]byte, classSize(c))
	return b[:n]
}

// Put returns a buffer obtained from Get to its size class. The
// capacity must be exactly a class size: anything else is a cross-size
// return — a buffer from somewhere else (or a sliced-down one) whose
// recycling would hand a short buffer to a later Get — and panics.
// Put(nil) is a no-op so error paths can return unconditionally.
func Put(b []byte) {
	if b == nil {
		return
	}
	c := classFor(cap(b))
	if c < 0 || classSize(c) != cap(b) {
		panic(fmt.Sprintf("mempool: cross-size return (cap %d is not a size class)", cap(b)))
	}
	if !enabled.Load() {
		return
	}
	box := boxes.Get().(*[]byte)
	*box = b[:cap(b)]
	classes[c].Put(box)
}

// pooled reports whether a buffer's capacity is a pool class — i.e.
// whether Put will accept it. Buffers from a disabled-plane Get (plain
// make of the requested length) intentionally fail this.
func pooled(b []byte) bool {
	c := classFor(cap(b))
	return c >= 0 && classSize(c) == cap(b)
}

// Recycle is the tolerant Put for release paths that may hold either a
// pooled buffer or a plain allocation (a Get while the plane was
// disabled, an oversize fall-through): class-capacity buffers return
// to their pool, everything else is simply dropped to the GC. Use Put
// where the buffer's provenance is known and a mismatch is a bug.
func Recycle(b []byte) {
	if pooled(b) {
		Put(b)
	}
}

// --- leases ------------------------------------------------------------

// Lease states.
const (
	leaseLive     = int32(1)
	leaseReleased = int32(2)
)

// Lease is a checked-ownership buffer: exactly one holder may use it,
// and exactly once may return it. Bytes after Release and a second
// Release both panic — under -race these are the bugs that would
// otherwise surface as silent cross-request data corruption.
//
// The header itself is a fresh (small) allocation per lease — headers
// are deliberately NOT recycled, because a reused header could be live
// again as a different lease by the time a stale holder misuses it,
// turning the panic the discipline promises into silent aliasing.
type Lease struct {
	buf   []byte
	state atomic.Int32
}

// GetLease acquires a buffer of length n under the lease discipline.
func GetLease(n int) *Lease {
	l := &Lease{buf: Get(n)}
	l.state.Store(leaseLive)
	return l
}

// Bytes returns the leased buffer. It panics if the lease was already
// released — a use-after-return.
func (l *Lease) Bytes() []byte {
	if l.state.Load() != leaseLive {
		panic("mempool: use after lease release")
	}
	return l.buf
}

// Release returns the buffer to its pool and retires the lease. A
// second Release panics — a double return would let two later holders
// share one buffer.
func (l *Lease) Release() {
	if !l.state.CompareAndSwap(leaseLive, leaseReleased) {
		panic("mempool: double lease release")
	}
	if pooled(l.buf) {
		Put(l.buf)
	}
	l.buf = nil
}

// --- arena -------------------------------------------------------------

// Arena is a bump allocator for scratch whose lifetime is one burst:
// carve as many slices as the burst needs, then Reset once. The
// backing slab grows to the high-water mark and is reused, so a
// steady-state burst allocates nothing. Not safe for concurrent use;
// each scheduler owns its own.
type Arena struct {
	buf []byte
	off int
}

// Reset forgets every outstanding carve. Slices handed out earlier
// become invalid (their contents will be overwritten by the next
// burst) — the caller must not retain them across Reset.
func (a *Arena) Reset() { a.off = 0 }

// Bytes carves an n-byte slice from the arena.
func (a *Arena) Bytes(n int) []byte {
	a.reserve(n)
	b := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// reserve grows the slab so n more bytes fit. Growth doubles, so the
// arena reaches its steady-state size in O(log n) bursts.
func (a *Arena) reserve(n int) {
	if a.off+n <= len(a.buf) {
		return
	}
	newLen := len(a.buf) * 2
	if newLen < a.off+n {
		newLen = a.off + n
	}
	if newLen < minClass {
		newLen = minClass
	}
	grown := make([]byte, newLen)
	copy(grown, a.buf[:a.off])
	a.buf = grown
}

// Blocks carves count contiguous n-byte slices (one slab, split like
// blockdev.AllocBlocks), appending them to dst to avoid allocating the
// outer slice too.
func (a *Arena) Blocks(dst [][]byte, count, n int) [][]byte {
	slab := a.Bytes(count * n)
	for i := 0; i < count; i++ {
		dst = append(dst, slab[i*n:(i+1)*n:(i+1)*n])
	}
	return dst
}
