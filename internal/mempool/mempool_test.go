package mempool

import (
	"bytes"
	"sync"
	"testing"
)

// restore re-enables the plane after tests that toggle it.
func restore(t *testing.T) {
	prev := SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestClassGeometry(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {minClass, 0}, {minClass + 1, 1},
		{511, classFor(512)}, {512, classFor(512)},
		{4096, classFor(4096)}, {maxClass, numClasses - 1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
		if got := Get(c.n); len(got) != c.n {
			t.Errorf("Get(%d) len = %d", c.n, len(got))
		}
	}
	if classFor(0) != -1 || classFor(-1) != -1 || classFor(maxClass+1) != -1 {
		t.Errorf("out-of-range sizes must not map to a class")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	restore(t)
	b := Get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("Get(1000): len %d cap %d", len(b), cap(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	Put(b)
	// The recycled buffer keeps its class capacity and full length on
	// the next Get of the same class.
	c := Get(700)
	if len(c) != 700 || cap(c) != 1024 {
		t.Fatalf("recycled Get(700): len %d cap %d", len(c), cap(c))
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	restore(t)
	b := Get(maxClass + 1)
	if len(b) != maxClass+1 {
		t.Fatalf("oversize Get len %d", len(b))
	}
	if pooled(b) {
		t.Fatalf("oversize buffer must not be pool-returnable")
	}
}

func TestDisabledIsPlainMake(t *testing.T) {
	restore(t)
	SetEnabled(false)
	b := Get(1000)
	if len(b) != 1000 || cap(b) != 1000 {
		t.Fatalf("disabled Get(1000): len %d cap %d (want plain make)", len(b), cap(b))
	}
	Put(Get(512)) // class-capacity buffer: Put must accept and drop it
}

func TestPutCrossSizePanics(t *testing.T) {
	restore(t)
	for _, bad := range [][]byte{
		make([]byte, 1000),       // cap not a class size
		Get(1024)[:500:500],      // sliced down past any class boundary
		make([]byte, maxClass*2), // above any class
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Put(cap=%d) did not panic", cap(bad))
				}
			}()
			Put(bad)
		}()
	}
}

func TestLeaseLifecycle(t *testing.T) {
	restore(t)
	l := GetLease(4096)
	if len(l.Bytes()) != 4096 {
		t.Fatalf("lease len %d", len(l.Bytes()))
	}
	copy(l.Bytes(), []byte("hello"))
	if !bytes.Equal(l.Bytes()[:5], []byte("hello")) {
		t.Fatalf("lease bytes lost")
	}
	l.Release()
}

func TestLeaseDoubleReleasePanics(t *testing.T) {
	restore(t)
	l := GetLease(64)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	l.Release()
}

func TestLeaseUseAfterReleasePanics(t *testing.T) {
	restore(t)
	l := GetLease(64)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("use after release did not panic")
		}
	}()
	_ = l.Bytes()
}

// TestLeaseConcurrentRelease races two releasers at one lease: exactly
// one must win, the other must panic — under -race this also proves
// the CAS discipline is data-race-free.
func TestLeaseConcurrentRelease(t *testing.T) {
	restore(t)
	for i := 0; i < 100; i++ {
		l := GetLease(256)
		var wg sync.WaitGroup
		panics := make(chan struct{}, 2)
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if recover() != nil {
						panics <- struct{}{}
					}
				}()
				l.Release()
			}()
		}
		wg.Wait()
		if got := len(panics); got != 1 {
			t.Fatalf("round %d: %d panics, want exactly 1", i, got)
		}
	}
}

func TestArenaReuse(t *testing.T) {
	var a Arena
	if got := a.Bytes(100); len(got) != 100 {
		t.Fatalf("arena carve len %d", len(got))
	}
	bufs := a.Blocks(nil, 4, 512)
	if len(bufs) != 4 {
		t.Fatalf("arena blocks %d", len(bufs))
	}
	for i, b := range bufs {
		if len(b) != 512 {
			t.Fatalf("arena block %d len %d", i, len(b))
		}
		b[0] = byte(i)
	}
	// Blocks must not alias each other.
	for i, b := range bufs {
		if b[0] != byte(i) {
			t.Fatalf("arena blocks alias (block %d)", i)
		}
	}
	// After the high-water mark is reached, Reset+carve reuses the slab.
	a.Reset()
	mark := a.Bytes(100)
	a.Reset()
	again := a.Bytes(100)
	if &again[0] != &mark[0] {
		t.Fatalf("arena did not reuse its slab after Reset")
	}
}

// TestArenaSteadyStateZeroAlloc pins the arena's whole point: after
// warm-up, a burst-shaped carve pattern allocates nothing.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	var a Arena
	burst := func() {
		a.Reset()
		_ = a.Bytes(4096)
		_ = a.Bytes(40 * 8)
		bufs := a.Blocks(nil, 8, 512) // outer slice: measured separately below
		_ = bufs
	}
	burst() // reach the high-water mark
	var scratch [][]byte
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		_ = a.Bytes(4096)
		_ = a.Bytes(40 * 8)
		scratch = a.Blocks(scratch[:0], 8, 512)
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena burst: %v allocs/op, want 0", allocs)
	}
}

// TestGetPutSteadyStateZeroAlloc pins the free-list fast path. The
// lease variant tolerates the occasional pool miss after a GC.
func TestGetPutSteadyStateZeroAlloc(t *testing.T) {
	restore(t)
	Put(Get(4096))
	allocs := testing.AllocsPerRun(100, func() { Put(Get(4096)) })
	if allocs > 1 { // headroom: a GC between runs clears sync.Pool
		t.Fatalf("steady-state Get/Put: %v allocs/op", allocs)
	}
}

// FuzzLeaseLifecycle drives a random acquire/use/return interleaving
// across a small set of lease slots and checks the discipline: live
// leases always serve their full length, releases of live leases
// succeed, and every operation on a retired lease panics (and is
// caught here). Buffers are stamped per-slot so cross-lease aliasing
// of two live leases is detected.
func FuzzLeaseLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x81, 0x82, 3, 0x80})
	f.Add([]byte{0x80, 0x81, 0, 0, 0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		prev := SetEnabled(true)
		defer SetEnabled(prev)
		const slots = 4
		live := [slots]*Lease{}
		stamp := [slots]byte{}
		expectPanic := func(fn func()) {
			defer func() {
				if recover() == nil {
					t.Fatalf("misuse did not panic")
				}
			}()
			fn()
		}
		for i, op := range ops {
			slot := int(op) % slots
			switch {
			case op < 0x40: // acquire (release first if held)
				if live[slot] != nil {
					live[slot].Release()
				}
				n := 64 + int(op)*37%2000
				live[slot] = GetLease(n)
				stamp[slot] = byte(i)
				b := live[slot].Bytes()
				if len(b) != n {
					t.Fatalf("lease len %d want %d", len(b), n)
				}
				for j := range b {
					b[j] = stamp[slot]
				}
			case op < 0x80: // use
				if live[slot] == nil {
					continue
				}
				b := live[slot].Bytes()
				if b[0] != stamp[slot] || b[len(b)-1] != stamp[slot] {
					t.Fatalf("lease %d contents clobbered while live", slot)
				}
			case op < 0xC0: // release
				if live[slot] == nil {
					continue
				}
				live[slot].Release()
				retired := live[slot]
				live[slot] = nil
				expectPanic(func() { retired.Release() })
			default: // use-after-release probe
				if live[slot] == nil {
					continue
				}
				l := live[slot]
				l.Release()
				live[slot] = nil
				expectPanic(func() { _ = l.Bytes() })
			}
		}
		for _, l := range live {
			if l != nil {
				l.Release()
			}
		}
	})
}
