package baseline

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/diskmodel"
	"steghide/internal/prng"
)

func storeContract(t *testing.T, s Store) {
	t.Helper()
	rng := prng.NewFromUint64(1)
	data := rng.Bytes(20*s.BlockPayload() + 37) // unaligned tail
	if err := s.Write("/a", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("/a", data); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate write: %v", err)
	}
	got, err := s.Read("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
	if _, err := s.Read("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing read: %v", err)
	}

	// Block-aligned update in the middle.
	upd := rng.Bytes(3 * s.BlockPayload())
	if err := s.UpdateBlocks("/a", 5, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[5*s.BlockPayload():], upd)
	got, err = s.Read("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("update corrupted file")
	}
	if err := s.UpdateBlocks("/a", 0, upd[:10]); err == nil {
		t.Fatal("unaligned update accepted")
	}
	if err := s.UpdateBlocks("/a", 20, upd); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if err := s.UpdateBlocks("/missing", 0, upd); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}

	blocks, err := s.FileBlocks("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 21 {
		t.Fatalf("FileBlocks returned %d", len(blocks))
	}
	if _, err := s.FileBlocks("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blocks of missing: %v", err)
	}
}

func TestCleanDiskContract(t *testing.T) {
	storeContract(t, NewCleanDisk(blockdev.NewMem(256, 512)))
}

func TestFragDiskContract(t *testing.T) {
	storeContract(t, NewFragDisk(blockdev.NewMem(256, 512), prng.NewFromUint64(7)))
}

func TestCleanDiskContiguous(t *testing.T) {
	c := NewCleanDisk(blockdev.NewMem(256, 128))
	c.Write("/f", make([]byte, 10*256))
	blocks, _ := c.FileBlocks("/f")
	for i := 1; i < len(blocks); i++ {
		if blocks[i] != blocks[i-1]+1 {
			t.Fatalf("not contiguous at %d", i)
		}
	}
}

func TestFragDiskFragmented(t *testing.T) {
	f := NewFragDisk(blockdev.NewMem(256, 1024), prng.NewFromUint64(3))
	f.Write("/f", make([]byte, 64*256)) // 8 fragments
	blocks, _ := f.FileBlocks("/f")
	// Within a fragment: contiguous. Across fragments: scattered.
	jumps := 0
	for i := 1; i < len(blocks); i++ {
		if blocks[i] != blocks[i-1]+1 {
			jumps++
			if i%FragmentBlocks != 0 {
				t.Fatalf("discontinuity inside a fragment at block %d", i)
			}
		}
	}
	if jumps < 4 {
		t.Fatalf("only %d fragment jumps; placement not scattered", jumps)
	}
}

func TestOutOfSpace(t *testing.T) {
	c := NewCleanDisk(blockdev.NewMem(256, 8))
	if err := c.Write("/big", make([]byte, 9*256)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("clean overflow: %v", err)
	}
	f := NewFragDisk(blockdev.NewMem(256, 16), prng.NewFromUint64(1))
	if err := f.Write("/big", make([]byte, 17*256)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("frag overflow: %v", err)
	}
}

func TestSequentialAdvantage(t *testing.T) {
	// The reason these baselines exist: single-user streaming on
	// CleanDisk must be far faster than on FragDisk, which in turn
	// beats fully random layouts (Fig. 10a's ordering).
	const nBlocks = 4096
	mkDisk := func() (*blockdev.Sim, *diskmodel.Disk) {
		d := diskmodel.MustNew(diskmodel.Params2004(nBlocks, 4096))
		return blockdev.NewSim(blockdev.NewMem(4096, nBlocks), d), d
	}
	data := make([]byte, 512*4096) // 2 MB file

	cleanDev, cleanDisk := mkDisk()
	clean := NewCleanDisk(cleanDev)
	clean.Write("/f", data)
	cleanDisk.ResetStats()
	t0 := cleanDisk.Now()
	clean.Read("/f")
	cleanTime := cleanDisk.Now() - t0

	fragDev, fragDisk := mkDisk()
	frag := NewFragDisk(fragDev, prng.NewFromUint64(5))
	frag.Write("/f", data)
	t0 = fragDisk.Now()
	frag.Read("/f")
	fragTime := fragDisk.Now() - t0

	if cleanTime*2 > fragTime {
		t.Fatalf("CleanDisk (%v) should be ≫ faster than FragDisk (%v)", cleanTime, fragTime)
	}
}
