// Package baseline implements the two conventional file systems the
// paper compares against (Table 3):
//
//   - CleanDisk — a fresh Linux file system whose files reside on
//     contiguous blocks, so single-user streaming enjoys sequential
//     I/O;
//   - FragDisk — a well-used, fragmented file system, simulated (as
//     in the paper) by breaking each file into fragments of 8 blocks
//     placed at scattered positions.
//
// Neither hides anything; they exist to show what the steganographic
// constructions pay (Figs. 10 and 11) and where the gap closes (high
// concurrency).
package baseline

import (
	"errors"
	"fmt"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
)

// FragmentBlocks is the fragment size of FragDisk, from §6.2: "we
// simulate it by breaking each file into fragments of 8 blocks".
const FragmentBlocks = 8

// Sentinel errors.
var (
	ErrNoSpace  = errors.New("baseline: out of space")
	ErrNotFound = errors.New("baseline: no such file")
	ErrExists   = errors.New("baseline: file exists")
)

// Store is the minimal file-store surface the experiments exercise on
// every system: whole-file write and read, and in-place block-range
// updates.
type Store interface {
	// Write creates a file with the given content.
	Write(name string, data []byte) error
	// Read returns the file's full content.
	Read(name string) ([]byte, error)
	// UpdateBlocks overwrites data starting at block blockIdx; len(data)
	// must be a multiple of BlockPayload.
	UpdateBlocks(name string, blockIdx uint64, data []byte) error
	// BlockPayload returns the usable bytes per block.
	BlockPayload() int
	// FileBlocks returns the physical block sequence of a file in
	// logical order, for building replayable I/O streams.
	FileBlocks(name string) ([]uint64, error)
}

// CleanDisk allocates every file as one contiguous extent.
type CleanDisk struct {
	dev   blockdev.Device
	next  uint64
	files map[string]extent
}

type extent struct {
	start  uint64
	blocks uint64
	size   uint64
}

// NewCleanDisk builds a fresh contiguous-allocation store on dev.
func NewCleanDisk(dev blockdev.Device) *CleanDisk {
	return &CleanDisk{dev: dev, files: map[string]extent{}}
}

// BlockPayload implements Store.
func (c *CleanDisk) BlockPayload() int { return c.dev.BlockSize() }

func (c *CleanDisk) blocksFor(n int) uint64 {
	bs := uint64(c.dev.BlockSize())
	return (uint64(n) + bs - 1) / bs
}

// Write implements Store.
func (c *CleanDisk) Write(name string, data []byte) error {
	if _, dup := c.files[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	blocks := c.blocksFor(len(data))
	if c.next+blocks > c.dev.NumBlocks() {
		return fmt.Errorf("%w: need %d blocks", ErrNoSpace, blocks)
	}
	ext := extent{start: c.next, blocks: blocks, size: uint64(len(data))}
	if err := writeRange(c.dev, ext.start, data); err != nil {
		return err
	}
	c.next += blocks
	c.files[name] = ext
	return nil
}

// Read implements Store.
func (c *CleanDisk) Read(name string) ([]byte, error) {
	ext, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	out := make([]byte, ext.size)
	buf := make([]byte, c.dev.BlockSize())
	for i := uint64(0); i < ext.blocks; i++ {
		if err := c.dev.ReadBlock(ext.start+i, buf); err != nil {
			return nil, err
		}
		copy(out[i*uint64(c.dev.BlockSize()):], buf)
	}
	return out, nil
}

// UpdateBlocks implements Store: read-modify-write in place.
func (c *CleanDisk) UpdateBlocks(name string, blockIdx uint64, data []byte) error {
	ext, ok := c.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	n := c.blocksFor(len(data))
	if len(data)%c.dev.BlockSize() != 0 {
		return fmt.Errorf("baseline: update not block-aligned (%d bytes)", len(data))
	}
	if blockIdx+n > ext.blocks {
		return fmt.Errorf("baseline: update range [%d,%d) beyond %d blocks", blockIdx, blockIdx+n, ext.blocks)
	}
	buf := make([]byte, c.dev.BlockSize())
	for i := uint64(0); i < n; i++ {
		loc := ext.start + blockIdx + i
		if err := c.dev.ReadBlock(loc, buf); err != nil { // read-modify-write
			return err
		}
		copy(buf, data[i*uint64(c.dev.BlockSize()):])
		if err := c.dev.WriteBlock(loc, buf); err != nil {
			return err
		}
	}
	return nil
}

// FileBlocks implements Store.
func (c *CleanDisk) FileBlocks(name string) ([]uint64, error) {
	ext, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	out := make([]uint64, ext.blocks)
	for i := range out {
		out[i] = ext.start + uint64(i)
	}
	return out, nil
}

// FragDisk allocates files in fixed-size fragments scattered across
// the volume.
type FragDisk struct {
	dev       blockdev.Device
	rng       *prng.PRNG
	freeFrags []uint64 // fragment start blocks, pre-shuffled
	files     map[string]*fragFile
}

type fragFile struct {
	frags []uint64 // fragment start blocks
	size  uint64
}

// NewFragDisk builds a fragmented store on dev. Fragment placement is
// a random permutation of the volume's fragments, modelling years of
// allocation churn.
func NewFragDisk(dev blockdev.Device, rng *prng.PRNG) *FragDisk {
	nFrags := dev.NumBlocks() / FragmentBlocks
	frags := make([]uint64, nFrags)
	for i := range frags {
		frags[i] = uint64(i) * FragmentBlocks
	}
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	return &FragDisk{dev: dev, rng: rng, freeFrags: frags, files: map[string]*fragFile{}}
}

// BlockPayload implements Store.
func (f *FragDisk) BlockPayload() int { return f.dev.BlockSize() }

// Write implements Store.
func (f *FragDisk) Write(name string, data []byte) error {
	if _, dup := f.files[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	bs := uint64(f.dev.BlockSize())
	blocks := (uint64(len(data)) + bs - 1) / bs
	nFrags := (blocks + FragmentBlocks - 1) / FragmentBlocks
	if uint64(len(f.freeFrags)) < nFrags {
		return fmt.Errorf("%w: need %d fragments", ErrNoSpace, nFrags)
	}
	ff := &fragFile{size: uint64(len(data))}
	ff.frags = append(ff.frags, f.freeFrags[:nFrags]...)
	f.freeFrags = f.freeFrags[nFrags:]
	buf := make([]byte, bs)
	for i := uint64(0); i < blocks; i++ {
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, data[i*bs:])
		if err := f.dev.WriteBlock(ff.block(i), buf); err != nil {
			return err
		}
	}
	f.files[name] = ff
	return nil
}

func (ff *fragFile) block(i uint64) uint64 {
	return ff.frags[i/FragmentBlocks] + i%FragmentBlocks
}

func (ff *fragFile) blocks(bs uint64) uint64 {
	return (ff.size + bs - 1) / bs
}

// Read implements Store.
func (f *FragDisk) Read(name string) ([]byte, error) {
	ff, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	bs := uint64(f.dev.BlockSize())
	out := make([]byte, ff.size)
	buf := make([]byte, bs)
	for i := uint64(0); i < ff.blocks(bs); i++ {
		if err := f.dev.ReadBlock(ff.block(i), buf); err != nil {
			return nil, err
		}
		copy(out[i*bs:], buf)
	}
	return out, nil
}

// UpdateBlocks implements Store.
func (f *FragDisk) UpdateBlocks(name string, blockIdx uint64, data []byte) error {
	ff, ok := f.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	bs := uint64(f.dev.BlockSize())
	if uint64(len(data))%bs != 0 {
		return fmt.Errorf("baseline: update not block-aligned (%d bytes)", len(data))
	}
	n := uint64(len(data)) / bs
	if blockIdx+n > ff.blocks(bs) {
		return fmt.Errorf("baseline: update range beyond file")
	}
	buf := make([]byte, bs)
	for i := uint64(0); i < n; i++ {
		loc := ff.block(blockIdx + i)
		if err := f.dev.ReadBlock(loc, buf); err != nil {
			return err
		}
		copy(buf, data[i*bs:])
		if err := f.dev.WriteBlock(loc, buf); err != nil {
			return err
		}
	}
	return nil
}

// FileBlocks implements Store.
func (f *FragDisk) FileBlocks(name string) ([]uint64, error) {
	ff, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	bs := uint64(f.dev.BlockSize())
	out := make([]uint64, ff.blocks(bs))
	for i := range out {
		out[i] = ff.block(uint64(i))
	}
	return out, nil
}

func writeRange(dev blockdev.Device, start uint64, data []byte) error {
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	blocks := (len(data) + bs - 1) / bs
	for i := 0; i < blocks; i++ {
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, data[i*bs:])
		if err := dev.WriteBlock(start+uint64(i), buf); err != nil {
			return err
		}
	}
	return nil
}
