//go:build !race

// Package race reports whether the race detector is compiled in.
// Allocation-budget tests consult it: the race runtime intentionally
// randomizes sync.Pool reuse (dropping puts to widen interleavings),
// so alloc ceilings only hold in non-race builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
