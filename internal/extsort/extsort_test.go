package extsort

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"steghide/internal/blockdev"
	"steghide/internal/diskmodel"
	"steghide/internal/prng"
)

// keyFromPrefix reads the sort key from the first 8 bytes of a block.
func keyFromPrefix(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// fillRandom writes blocks with random keys into region src and
// returns the keys in storage order.
func fillRandom(t *testing.T, dev blockdev.Device, src Region, seed uint64) []uint64 {
	t.Helper()
	rng := prng.NewFromUint64(seed)
	keys := make([]uint64, src.Len)
	buf := make([]byte, dev.BlockSize())
	for i := uint64(0); i < src.Len; i++ {
		k := rng.Uint64()
		keys[i] = k
		rng.Read(buf)
		binary.BigEndian.PutUint64(buf, k)
		if err := dev.WriteBlock(src.Start+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func verifySorted(t *testing.T, dev blockdev.Device, src Region, wantKeys []uint64) {
	t.Helper()
	buf := make([]byte, dev.BlockSize())
	var last uint64
	seen := make(map[uint64]int)
	for i := uint64(0); i < src.Len; i++ {
		if err := dev.ReadBlock(src.Start+i, buf); err != nil {
			t.Fatal(err)
		}
		k := keyFromPrefix(buf)
		if i > 0 && k < last {
			t.Fatalf("not sorted at offset %d: %d < %d", i, k, last)
		}
		last = k
		seen[k]++
	}
	for _, k := range wantKeys {
		seen[k]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("multiset mismatch for key %d (delta %d)", k, c)
		}
	}
}

func TestSortSizesAndMemory(t *testing.T) {
	for _, tc := range []struct {
		n   uint64
		mem int
	}{
		{1, 2}, {2, 2}, {3, 2}, {16, 2}, {17, 2},
		{64, 4}, {100, 7}, {128, 8}, {129, 8}, {1000, 16}, {1024, 3},
	} {
		dev := blockdev.NewMem(64, 2100)
		src := Region{Start: 0, Len: tc.n}
		scratch := Region{Start: 1050, Len: tc.n}
		keys := fillRandom(t, dev, src, tc.n*31+uint64(tc.mem))
		if err := Sort(dev, src, scratch, tc.mem, keyFromPrefix); err != nil {
			t.Fatalf("n=%d mem=%d: %v", tc.n, tc.mem, err)
		}
		verifySorted(t, dev, src, keys)
	}
}

func TestSortAlreadySortedAndReverse(t *testing.T) {
	dev := blockdev.NewMem(64, 300)
	src := Region{Start: 0, Len: 100}
	scratch := Region{Start: 100, Len: 100}
	buf := make([]byte, 64)
	var keys []uint64
	for i := uint64(0); i < 100; i++ {
		k := 100 - i // reverse order
		binary.BigEndian.PutUint64(buf, k)
		dev.WriteBlock(src.Start+i, buf)
		keys = append(keys, k)
	}
	if err := Sort(dev, src, scratch, 4, keyFromPrefix); err != nil {
		t.Fatal(err)
	}
	verifySorted(t, dev, src, keys)
	// Sorting again (already sorted) must be a no-op result-wise.
	if err := Sort(dev, src, scratch, 4, keyFromPrefix); err != nil {
		t.Fatal(err)
	}
	verifySorted(t, dev, src, keys)
}

func TestSortDuplicateKeys(t *testing.T) {
	dev := blockdev.NewMem(64, 200)
	src := Region{Start: 0, Len: 64}
	scratch := Region{Start: 100, Len: 64}
	buf := make([]byte, 64)
	var keys []uint64
	rng := prng.NewFromUint64(5)
	for i := uint64(0); i < 64; i++ {
		k := uint64(rng.Intn(4)) // heavy duplication
		binary.BigEndian.PutUint64(buf, k)
		buf[63] = byte(i)
		dev.WriteBlock(src.Start+i, buf)
		keys = append(keys, k)
	}
	if err := Sort(dev, src, scratch, 3, keyFromPrefix); err != nil {
		t.Fatal(err)
	}
	verifySorted(t, dev, src, keys)
	// Every payload byte must survive: check the multiset of tags.
	seen := map[byte]bool{}
	for i := uint64(0); i < 64; i++ {
		dev.ReadBlock(src.Start+i, buf)
		if seen[buf[63]] {
			t.Fatalf("payload %d duplicated", buf[63])
		}
		seen[buf[63]] = true
	}
}

func TestSortErrors(t *testing.T) {
	dev := blockdev.NewMem(64, 100)
	src := Region{Start: 0, Len: 40}
	if err := Sort(dev, src, Region{Start: 50, Len: 40}, 1, keyFromPrefix); err == nil {
		t.Fatal("memBlocks=1 accepted")
	}
	if err := Sort(dev, src, Region{Start: 50, Len: 39}, 4, keyFromPrefix); err == nil {
		t.Fatal("small scratch accepted")
	}
	if err := Sort(dev, src, Region{Start: 30, Len: 40}, 4, keyFromPrefix); err == nil {
		t.Fatal("overlapping scratch accepted")
	}
	if err := Sort(dev, Region{Start: 80, Len: 40}, Region{Start: 0, Len: 40}, 4, keyFromPrefix); err == nil {
		t.Fatal("src beyond device accepted")
	}
	if err := Sort(dev, Region{Start: 0, Len: 0}, Region{}, 4, keyFromPrefix); err != nil {
		t.Fatalf("empty sort should succeed: %v", err)
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Start: 10, Len: 5}
	if r.End() != 15 || !r.Contains(10) || !r.Contains(14) || r.Contains(15) || r.Contains(9) {
		t.Fatal("Region geometry broken")
	}
	if !r.Overlaps(Region{Start: 14, Len: 1}) || r.Overlaps(Region{Start: 15, Len: 5}) {
		t.Fatal("Overlaps broken")
	}
}

func TestSortIOPatternMostlySequential(t *testing.T) {
	// The point of external merge sort in the paper (Fig. 12b) is that
	// its I/O is mostly sequential. Verify ≥50% sequential accesses on
	// the simulated disk for a multi-pass sort.
	// Memory is 1/32 of the data — a realistic external-sort ratio
	// (the paper's is 8 MB buffer vs 256 MB+ levels).
	const n = 1024
	base := blockdev.NewMem(64, 3*n)
	disk := diskmodel.MustNew(diskmodel.Params2004(3*n, 64))
	dev := blockdev.NewSim(base, disk)
	src := Region{Start: 0, Len: n}
	scratch := Region{Start: n, Len: n}
	keys := fillRandom(t, base, src, 77)
	disk.ResetStats()
	if err := Sort(dev, src, scratch, 32, keyFromPrefix); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	frac := float64(st.Sequential) / float64(st.Accesses)
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of sort I/O sequential (%d/%d)", frac*100, st.Sequential, st.Accesses)
	}
	verifySorted(t, base, src, keys)
}

func TestQuickSortMatchesInMemory(t *testing.T) {
	f := func(seed uint64, nRaw uint8, memRaw uint8) bool {
		n := uint64(nRaw)%200 + 1
		mem := int(memRaw)%10 + 2
		dev := blockdev.NewMem(32, 500)
		src := Region{Start: 0, Len: n}
		scratch := Region{Start: 250, Len: n}
		rng := prng.NewFromUint64(seed)
		keys := make([]uint64, n)
		buf := make([]byte, 32)
		for i := uint64(0); i < n; i++ {
			k := uint64(rng.Intn(50))
			keys[i] = k
			binary.BigEndian.PutUint64(buf, k)
			dev.WriteBlock(i, buf)
		}
		if err := Sort(dev, src, scratch, mem, keyFromPrefix); err != nil {
			return false
		}
		// Compare against an in-memory sort of the key multiset.
		counts := map[uint64]int{}
		for _, k := range keys {
			counts[k]++
		}
		var last uint64
		for i := uint64(0); i < n; i++ {
			dev.ReadBlock(i, buf)
			k := keyFromPrefix(buf)
			if i > 0 && k < last {
				return false
			}
			last = k
			counts[k]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSort1024Blocks(b *testing.B) {
	dev := blockdev.NewMem(4096, 2200)
	src := Region{Start: 0, Len: 1024}
	scratch := Region{Start: 1100, Len: 1024}
	rng := prng.NewFromUint64(1)
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := uint64(0); j < src.Len; j++ {
			binary.BigEndian.PutUint64(buf, rng.Uint64())
			dev.WriteBlock(j, buf)
		}
		b.StartTimer()
		if err := Sort(dev, src, scratch, 16, keyFromPrefix); err != nil {
			b.Fatal(err)
		}
	}
}
