// Package extsort implements external merge sort over a region of a
// block device, using a bounded amount of memory.
//
// The oblivious storage (§5.1.2) re-orders each level to a random
// permutation by sorting its blocks on a keyed pseudo-random tag; the
// paper prescribes external merge sort and reserves a scratch
// partition for it. The sort's I/O pattern — long sequential runs —
// is what makes the sorting overhead cheap relative to its I/O count
// (Fig. 12b), so we reproduce the access pattern faithfully: run
// formation reads and writes sequentially, and each merge pass
// advances a bounded set of run cursors.
package extsort

import (
	"container/heap"
	"fmt"
	"sort"

	"steghide/internal/blockdev"
)

// Region is a contiguous span of blocks [Start, Start+Len).
type Region struct {
	Start uint64
	Len   uint64
}

// End returns the first block after the region.
func (r Region) End() uint64 { return r.Start + r.Len }

// Contains reports whether block i lies in the region.
func (r Region) Contains(i uint64) bool { return i >= r.Start && i < r.End() }

// Overlaps reports whether two regions share any block.
func (r Region) Overlaps(o Region) bool {
	return r.Start < o.End() && o.Start < r.End()
}

// KeyFunc extracts the sort key from a raw block. It must be
// deterministic for the duration of one Sort call. For the oblivious
// shuffle the key is a PRF over the block's entry nonce, so sorting by
// it realizes a uniformly random permutation.
type KeyFunc func(block []byte) uint64

// Options tune a Sort call.
type Options struct {
	// Transform, if non-nil, is applied to every block immediately
	// before each write. The oblivious shuffle uses it to re-encrypt
	// under a fresh IV on every pass, so an observer cannot link a
	// block's positions across passes by ciphertext equality. The
	// transform must preserve the sort key.
	Transform func(block []byte) error
	// OnOutput, if non-nil, is invoked once per block with its final
	// position (after Transform). The oblivious storage rebuilds its
	// per-level hash index here, saving a dedicated scan pass.
	OnOutput func(pos uint64, block []byte) error
	// OnInput, if non-nil, is invoked once per block with its original
	// position as it is first read (before any sorting). It may mutate
	// the block — the oblivious storage folds its dedup/re-key pass in
	// here — but must leave the sort key consistent with what KeyFunc
	// will observe afterwards.
	OnInput func(pos uint64, block []byte) error
	// Window, if non-nil, supplies the in-memory block buffers (at
	// least memBlocks of them, each a full device block) instead of
	// Sort allocating its own. A caller that sorts repeatedly — the
	// oblivious store reshuffles on every level dump — passes the same
	// window every time so the sort's buffer footprint is allocated
	// once for the life of the store. Contents are scratch; Sort
	// overwrites them freely.
	Window [][]byte
}

// Sort orders the blocks of src ascending by key, using scratch as
// temporary space and at most memBlocks block buffers of memory.
// The sorted result is left in src. scratch must not overlap src and
// must be at least as long. memBlocks must be ≥ 2: run formation
// sorts memBlocks blocks at a time, and merging uses up to memBlocks
// run cursors per pass.
func Sort(dev blockdev.Device, src, scratch Region, memBlocks int, key KeyFunc, opts ...Options) error {
	if src.Len == 0 {
		return nil
	}
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	// write places a batch of blocks at [start, start+len(blocks)) in
	// one device batch, applying Transform first. All of the sort's
	// write traffic is contiguous, so every write is one batch call.
	write := func(start uint64, blocks [][]byte) error {
		if opt.Transform != nil {
			for _, b := range blocks {
				if err := opt.Transform(b); err != nil {
					return fmt.Errorf("extsort: transform: %w", err)
				}
			}
		}
		if err := blockdev.WriteBlocks(dev, start, blocks); err != nil {
			return fmt.Errorf("extsort: %w", err)
		}
		return nil
	}
	// writeFinal is used for writes that place blocks at their final
	// position, so OnOutput observes the settled layout exactly once
	// per block.
	writeFinal := func(start uint64, blocks [][]byte) error {
		if err := write(start, blocks); err != nil {
			return err
		}
		if opt.OnOutput != nil {
			for i, b := range blocks {
				if err := opt.OnOutput(start+uint64(i), b); err != nil {
					return fmt.Errorf("extsort: on-output: %w", err)
				}
			}
		}
		return nil
	}
	if memBlocks < 2 {
		return fmt.Errorf("extsort: memBlocks %d < 2", memBlocks)
	}
	if scratch.Len < src.Len {
		return fmt.Errorf("extsort: scratch %d blocks < src %d blocks", scratch.Len, src.Len)
	}
	if src.Overlaps(scratch) {
		return fmt.Errorf("extsort: src and scratch overlap")
	}
	if src.End() > dev.NumBlocks() || scratch.End() > dev.NumBlocks() {
		return fmt.Errorf("extsort: region beyond device (%d blocks)", dev.NumBlocks())
	}

	bs := dev.BlockSize()

	// The window holds every in-memory block buffer the sort uses —
	// run-formation loads, merge cursors and merge output all carve
	// from it, so a caller-supplied window makes repeated sorts
	// allocation-free apart from small bookkeeping.
	window := opt.Window
	if len(window) < memBlocks {
		window = blockdev.AllocBlocks(memBlocks, bs)
	}

	// readIn pulls a contiguous range in one device batch and runs
	// OnInput over it in position order.
	readIn := func(start uint64, bufs [][]byte) error {
		if err := blockdev.ReadBlocks(dev, start, bufs); err != nil {
			return fmt.Errorf("extsort: %w", err)
		}
		if opt.OnInput != nil {
			for i, b := range bufs {
				if err := opt.OnInput(start+uint64(i), b); err != nil {
					return fmt.Errorf("extsort: on-input: %w", err)
				}
			}
		}
		return nil
	}

	// In-memory fast path: everything fits in the window.
	if src.Len <= uint64(memBlocks) {
		blocks := window[:src.Len]
		if err := readIn(src.Start, blocks); err != nil {
			return err
		}
		sortBlocks(blocks, key)
		return writeFinal(src.Start, blocks)
	}

	// Merge geometry. The fan-in is balanced against the per-cursor
	// buffer size (√memBlocks each): chunked refills and flushes keep
	// the I/O mostly sequential, which is what makes the sorting
	// overhead cheap in wall-clock terms (Fig. 12b) despite its I/O
	// count.
	fanIn := intSqrt(memBlocks)
	if fanIn < 2 {
		fanIn = 2
	}
	numRuns := int((src.Len + uint64(memBlocks) - 1) / uint64(memBlocks))
	passes := 0
	for r := numRuns; r > 1; r = (r + fanIn - 1) / fanIn {
		passes++
	}

	// Pass 0 — run formation: read windows of memBlocks, sort in
	// memory, write back sequentially. Runs are placed so that after
	// `passes` ping-pong merge passes the final run lands in src with
	// no extra copy: even pass count → form runs in src (in place),
	// odd → form runs in scratch.
	runBase := src
	if passes%2 == 1 {
		runBase = scratch
	}
	var runs []Region
	for off := uint64(0); off < src.Len; {
		n := uint64(memBlocks)
		if src.Len-off < n {
			n = src.Len - off
		}
		if err := readIn(src.Start+off, window[:n]); err != nil {
			return err
		}
		sortBlocks(window[:n], key)
		if err := write(runBase.Start+off, window[:n]); err != nil {
			return err
		}
		runs = append(runs, Region{Start: runBase.Start + off, Len: n})
		off += n
	}

	cur, other := runBase, src
	if runBase.Start == src.Start {
		other = scratch
	}
	for len(runs) > 1 {
		finalPass := len(runs) <= fanIn && other.Start == src.Start
		w := write
		if finalPass {
			w = writeFinal
		}
		var next []Region
		off := uint64(0)
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			chunk := memBlocks / (hi - lo + 1)
			if chunk < 1 {
				chunk = 1
			}
			merged, err := mergeRuns(dev, runs[lo:hi], other.Start+off, chunk, key, w, window)
			if err != nil {
				return err
			}
			next = append(next, merged)
			off += merged.Len
		}
		runs = next
		cur, other = other, cur
	}

	// By the parity choice above the result is already in src; the
	// chunked copy below is a safety net should the geometry logic
	// ever disagree.
	if final := runs[0]; final.Start != src.Start {
		for off := uint64(0); off < final.Len; {
			n := uint64(memBlocks)
			if final.Len-off < n {
				n = final.Len - off
			}
			if err := blockdev.ReadBlocks(dev, final.Start+off, window[:n]); err != nil {
				return fmt.Errorf("extsort: %w", err)
			}
			if err := writeFinal(src.Start+off, window[:n]); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// keyedBlocks sorts blocks by precomputed keys. Computing each key
// once per block instead of once per comparison matters because the
// oblivious shuffle's key is a full decrypt-and-PRF of the block —
// O(n log n) key calls were the dominant cost of a sort pass. A
// stable sort over cached keys yields the identical permutation the
// old key-per-comparison sort.SliceStable produced: stability makes
// the output ordering unique for a fixed key assignment.
type keyedBlocks struct {
	blocks [][]byte
	keys   []uint64
}

func (k *keyedBlocks) Len() int           { return len(k.blocks) }
func (k *keyedBlocks) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedBlocks) Swap(i, j int) {
	k.blocks[i], k.blocks[j] = k.blocks[j], k.blocks[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}

func sortBlocks(blocks [][]byte, key KeyFunc) {
	kb := keyedBlocks{blocks: blocks, keys: make([]uint64, len(blocks))}
	for i, b := range blocks {
		kb.keys[i] = key(b)
	}
	sort.Stable(&kb)
}

func intSqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// cursor tracks the head of one run during a merge. It refills a
// multi-block buffer with sequential reads, so most of the merge's
// input I/O continues the previous access.
type cursor struct {
	key   uint64
	buf   []byte // current block (points into chunk)
	chunk [][]byte
	have  int // blocks buffered
	next  int // index within chunk of the current block
	pos   uint64
	run   Region
	tie   int // run ordinal, makes the merge stable
	done  bool
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].tie < h[j].tie
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*cursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

func (c *cursor) advance(dev blockdev.Device, key KeyFunc) error {
	if c.next >= c.have {
		// Refill the chunk with one batched sequential read from the run.
		c.have = 0
		c.next = 0
		if n := min(uint64(len(c.chunk)), c.run.Len-c.pos); n > 0 {
			if err := blockdev.ReadBlocks(dev, c.run.Start+c.pos, c.chunk[:n]); err != nil {
				return fmt.Errorf("extsort: %w", err)
			}
			c.pos += n
			c.have = int(n)
		}
		if c.have == 0 {
			c.done = true
			return nil
		}
	}
	c.buf = c.chunk[c.next]
	c.next++
	c.key = key(c.buf)
	return nil
}

// mergeRuns k-way merges the given runs into a region starting at
// dstStart and returns it. Each cursor and the output use a buffer of
// `chunk` blocks, refilled and flushed as single device batches, so
// the pass's I/O stays mostly sequential and costs one batch call per
// chunk. The output buffers are reused across flushes — the merge
// allocates nothing per block.
func mergeRuns(dev blockdev.Device, runs []Region, dstStart uint64, chunk int, key KeyFunc, write func(uint64, [][]byte) error, window [][]byte) (Region, error) {
	bs := dev.BlockSize()
	// Cursor chunks and the output chunk carve from the run-formation
	// window: chunk = memBlocks/(fanIn+1), so (len(runs)+1)·chunk fits
	// in the memBlocks-long window whenever the geometry honors the
	// fan-in bound. The allocating path only runs for degenerate
	// geometries (memBlocks barely above 2).
	carve := func(i int) [][]byte {
		if (i+1)*chunk <= len(window) {
			return window[i*chunk : (i+1)*chunk]
		}
		return blockdev.AllocBlocks(chunk, bs)
	}
	cursors := make([]cursor, len(runs))
	h := make(cursorHeap, 0, len(runs))
	var total uint64
	for i, r := range runs {
		total += r.Len
		c := &cursors[i]
		c.run, c.tie, c.chunk = r, i, carve(i)
		if err := c.advance(dev, key); err != nil {
			return Region{}, err
		}
		if !c.done {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	out := dstStart
	outChunk := carve(len(runs))
	outN := 0
	flush := func() error {
		if outN == 0 {
			return nil
		}
		if err := write(out, outChunk[:outN]); err != nil {
			return err
		}
		out += uint64(outN)
		outN = 0
		return nil
	}
	for h.Len() > 0 {
		c := h[0]
		copy(outChunk[outN], c.buf)
		outN++
		k := c.key
		if err := c.advance(dev, key); err != nil {
			return Region{}, err
		}
		if c.done {
			heap.Pop(&h)
		} else {
			if c.key < k {
				return Region{}, fmt.Errorf("extsort: key function unstable during merge")
			}
			heap.Fix(&h, 0)
		}
		if outN == chunk {
			if err := flush(); err != nil {
				return Region{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return Region{}, err
	}
	return Region{Start: dstStart, Len: total}, nil
}
