// Package fleet places hidden pathnames onto shard volumes with keyed
// consistent hashing, so one logical namespace spans many independent
// daemons.
//
// Two properties matter for the paper's threat model:
//
//   - The placement function is HMAC-SHA256 under a key derived from
//     the login secret. An observer holding the ciphertext of every
//     shard — or even the full shard address list — cannot evaluate
//     the map, so "which shard does this file live on" is as hidden as
//     the pathname itself.
//   - Each shard runs its own daemon and scheduler, so its observable
//     update stream is generated exactly as a standalone volume's is.
//     Definition 1 (§3.2.4) therefore holds per shard: the ring only
//     decides which per-disk uniform process a file's updates join.
//
// The ring uses virtual nodes for balance and moves only the minimal
// set of keys when shards are added or removed, which keeps rebalance
// traffic (already shaped as ordinary update traffic) small.
package fleet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per shard. 128
// points keeps the max/min load ratio under ~1.3 for small fleets
// while the ring stays cheap to rebuild.
const DefaultVirtualNodes = 128

// Ring is an immutable keyed consistent-hash ring over named shards.
// All methods are safe for concurrent use; mutation returns a new
// Ring (WithShard / WithoutShard), so lookups never lock.
type Ring struct {
	key    []byte
	vnodes int
	shards []string // sorted, for deterministic iteration
	points []point  // sorted by hash
}

type point struct {
	hash  uint64
	shard string
}

// New builds a ring over the given shard names with DefaultVirtualNodes
// points each. key is the placement key (derive it from the login
// secret; never a public value). Duplicate or empty shard names and an
// empty key are rejected.
func New(key []byte, shards ...string) (*Ring, error) {
	return NewWithVnodes(key, DefaultVirtualNodes, shards...)
}

// NewWithVnodes is New with an explicit virtual-node count.
func NewWithVnodes(key []byte, vnodes int, shards ...string) (*Ring, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("fleet: empty placement key")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("fleet: vnodes %d < 1", vnodes)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards")
	}
	seen := make(map[string]bool, len(shards))
	sorted := make([]string, 0, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("fleet: duplicate shard %q", s)
		}
		seen[s] = true
		sorted = append(sorted, s)
	}
	sort.Strings(sorted)
	r := &Ring{
		key:    append([]byte(nil), key...),
		vnodes: vnodes,
		shards: sorted,
	}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for _, s := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: r.hashPoint(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// hashPoint positions virtual node v of a shard on the ring.
func (r *Ring) hashPoint(shard string, v int) uint64 {
	mac := hmac.New(sha256.New, r.key)
	mac.Write([]byte("shard\x00"))
	mac.Write([]byte(shard))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	mac.Write(buf[:])
	return binary.BigEndian.Uint64(mac.Sum(nil))
}

// hashName maps a hidden pathname onto the ring.
func (r *Ring) hashName(name string) uint64 {
	mac := hmac.New(sha256.New, r.key)
	mac.Write([]byte("name\x00"))
	mac.Write([]byte(name))
	return binary.BigEndian.Uint64(mac.Sum(nil))
}

// Owner returns the shard responsible for the given hidden pathname.
func (r *Ring) Owner(name string) string {
	h := r.hashName(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the shard names in sorted order.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Len returns the number of shards.
func (r *Ring) Len() int { return len(r.shards) }

// Has reports whether the ring contains the named shard.
func (r *Ring) Has(shard string) bool {
	i := sort.SearchStrings(r.shards, shard)
	return i < len(r.shards) && r.shards[i] == shard
}

// WithShard returns a new ring with the shard added.
func (r *Ring) WithShard(shard string) (*Ring, error) {
	if r.Has(shard) {
		return nil, fmt.Errorf("fleet: duplicate shard %q", shard)
	}
	return NewWithVnodes(r.key, r.vnodes, append(r.Shards(), shard)...)
}

// WithoutShard returns a new ring with the shard removed. Removing the
// last shard is an error: a fleet cannot serve from zero daemons.
func (r *Ring) WithoutShard(shard string) (*Ring, error) {
	if !r.Has(shard) {
		return nil, fmt.Errorf("fleet: unknown shard %q", shard)
	}
	var rest []string
	for _, s := range r.shards {
		if s != shard {
			rest = append(rest, s)
		}
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("fleet: cannot remove last shard %q", shard)
	}
	return NewWithVnodes(r.key, r.vnodes, rest...)
}

// Moves returns the names from the given list whose owner differs
// between r and next — the exact set a rebalance must relocate.
func (r *Ring) Moves(next *Ring, names []string) []string {
	var moved []string
	for _, n := range names {
		if r.Owner(n) != next.Owner(n) {
			moved = append(moved, n)
		}
	}
	return moved
}
