package fleet

import (
	"fmt"
	"testing"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/user/file-%04d", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a, err := New(testKey, "s2", "s0", "s1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testKey, "s1", "s2", "s0") // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names(500) {
		if a.Owner(n) != b.Owner(n) {
			t.Fatalf("owner of %q differs between identical rings", n)
		}
	}
	got := a.Shards()
	if len(got) != 3 || got[0] != "s0" || got[1] != "s1" || got[2] != "s2" {
		t.Fatalf("shards = %v", got)
	}
	if a.Len() != 3 || !a.Has("s1") || a.Has("nope") {
		t.Fatal("Len/Has wrong")
	}
}

func TestRingKeyDependence(t *testing.T) {
	// Placement under a different login secret must be a different
	// function — otherwise an observer could evaluate the map.
	a, _ := New(testKey, "s0", "s1", "s2", "s3")
	b, _ := New([]byte("another-placement-key-entirely!!"), "s0", "s1", "s2", "s3")
	same := 0
	all := names(1000)
	for _, n := range all {
		if a.Owner(n) == b.Owner(n) {
			same++
		}
	}
	// Independent maps over 4 shards agree ~25% of the time; agreeing
	// on more than half would mean key-independent structure.
	if same > len(all)/2 {
		t.Fatalf("placement barely depends on key: %d/%d identical", same, len(all))
	}
}

func TestRingBalance(t *testing.T) {
	r, err := New(testKey, "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	all := names(8000)
	for _, n := range all {
		counts[r.Owner(n)]++
	}
	want := len(all) / r.Len()
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %s owns %d of %d names (expected ~%d)", s, c, len(all), want)
		}
	}
}

func TestRingMinimalMovementOnAdd(t *testing.T) {
	r, _ := New(testKey, "s0", "s1", "s2", "s3")
	next, err := r.WithShard("s4")
	if err != nil {
		t.Fatal(err)
	}
	all := names(4000)
	moved := r.Moves(next, all)
	// Consistent hashing moves ~1/(n+1) of keys to the new shard and
	// nothing between old shards.
	if len(moved) > len(all)/3 {
		t.Fatalf("add moved %d of %d names", len(moved), len(all))
	}
	if len(moved) == 0 {
		t.Fatal("new shard received nothing")
	}
	for _, n := range moved {
		if next.Owner(n) != "s4" {
			t.Fatalf("%q moved between old shards: %s -> %s", n, r.Owner(n), next.Owner(n))
		}
	}
}

func TestRingMinimalMovementOnRemove(t *testing.T) {
	r, _ := New(testKey, "s0", "s1", "s2", "s3")
	next, err := r.WithoutShard("s2")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names(4000) {
		was, now := r.Owner(n), next.Owner(n)
		if was == "s2" {
			if now == "s2" {
				t.Fatalf("%q still owned by removed shard", n)
			}
			continue
		}
		if was != now {
			t.Fatalf("%q moved between surviving shards: %s -> %s", n, was, now)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := New(nil, "s0"); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := New(testKey); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, err := New(testKey, "s0", "s0"); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := New(testKey, ""); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewWithVnodes(testKey, 0, "s0"); err == nil {
		t.Fatal("zero vnodes accepted")
	}
	r, _ := New(testKey, "s0")
	if _, err := r.WithShard("s0"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if _, err := r.WithoutShard("sX"); err == nil {
		t.Fatal("unknown remove accepted")
	}
	if _, err := r.WithoutShard("s0"); err == nil {
		t.Fatal("removing last shard accepted")
	}
}
