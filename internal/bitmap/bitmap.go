// Package bitmap provides the block-allocation bitmap used by the
// agent to distinguish data blocks from dummy blocks (§6.1 of the
// paper: "we use a bitmap to mark data blocks against dummy blocks"),
// and by the baseline file systems' allocators.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-size bit set over block indices [0, N).
// The zero value is unusable; create one with New.
type Bitmap struct {
	words []uint64
	n     uint64 // number of valid bits
	set   uint64 // population count, maintained incrementally
}

// New returns a bitmap over n bits, all clear.
func New(n uint64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() uint64 { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() uint64 { return b.set }

func (b *Bitmap) check(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i uint64) bool {
	b.check(i)
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Set sets bit i and reports whether it changed.
func (b *Bitmap) Set(i uint64) bool {
	b.check(i)
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.set++
	return true
}

// Clear clears bit i and reports whether it changed.
func (b *Bitmap) Clear(i uint64) bool {
	b.check(i)
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.set--
	return true
}

// NextClear returns the smallest clear bit index ≥ from, or ok=false
// if every bit from `from` onward is set.
func (b *Bitmap) NextClear(from uint64) (idx uint64, ok bool) {
	if from >= b.n {
		return 0, false
	}
	w := from / 64
	// Mask off bits below `from` in the first word by treating them
	// as set.
	cur := b.words[w] | ((1 << (from % 64)) - 1)
	for {
		if cur != ^uint64(0) {
			bit := uint64(bits.TrailingZeros64(^cur))
			idx = w*64 + bit
			if idx >= b.n {
				return 0, false
			}
			return idx, true
		}
		w++
		if w*64 >= b.n {
			return 0, false
		}
		cur = b.words[w]
	}
}

// NextSet returns the smallest set bit index ≥ from, or ok=false.
func (b *Bitmap) NextSet(from uint64) (idx uint64, ok bool) {
	if from >= b.n {
		return 0, false
	}
	w := from / 64
	cur := b.words[w] &^ ((1 << (from % 64)) - 1)
	for {
		if cur != 0 {
			bit := uint64(bits.TrailingZeros64(cur))
			idx = w*64 + bit
			if idx >= b.n {
				return 0, false
			}
			return idx, true
		}
		w++
		if w*64 >= b.n {
			return 0, false
		}
		cur = b.words[w]
	}
}

// FindRun returns the start of the first run of `length` consecutive
// clear bits at or after from, or ok=false if none exists.
func (b *Bitmap) FindRun(from, length uint64) (start uint64, ok bool) {
	if length == 0 {
		return from, from <= b.n
	}
	i := from
	for {
		s, found := b.NextClear(i)
		if !found {
			return 0, false
		}
		// Extend the run from s.
		end := s + 1
		for end < b.n && end-s < length && !b.Get(end) {
			end++
		}
		if end-s >= length {
			return s, true
		}
		if end >= b.n {
			return 0, false
		}
		i = end
	}
}

// SetRange sets bits [start, start+length).
func (b *Bitmap) SetRange(start, length uint64) {
	for i := start; i < start+length; i++ {
		b.Set(i)
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n, set: b.set}
	copy(out.words, b.words)
	return out
}

// MarshalBinary serializes the bitmap (length-prefixed words).
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.BigEndian.PutUint64(out, b.n)
	for i, w := range b.words {
		binary.BigEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary restores a bitmap serialized by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitmap: truncated header")
	}
	n := binary.BigEndian.Uint64(data)
	words := int((n + 63) / 64)
	if len(data) != 8+8*words {
		return fmt.Errorf("bitmap: length %d does not match %d bits", len(data), n)
	}
	b.n = n
	b.words = make([]uint64, words)
	b.set = 0
	for i := range b.words {
		b.words[i] = binary.BigEndian.Uint64(data[8+8*i:])
		b.set += uint64(bits.OnesCount64(b.words[i]))
	}
	// Bits beyond n must be clear for Count to stay exact.
	if rem := n % 64; rem != 0 && words > 0 {
		extra := b.words[words-1] >> rem
		if extra != 0 {
			return fmt.Errorf("bitmap: stray bits beyond length")
		}
	}
	return nil
}
