package bitmap

import (
	"testing"
	"testing/quick"

	"steghide/internal/prng"
)

func TestBasicSetClearGet(t *testing.T) {
	b := New(130)
	if b.Count() != 0 || b.Len() != 130 {
		t.Fatal("fresh bitmap not empty")
	}
	for _, i := range []uint64{0, 1, 63, 64, 65, 127, 128, 129} {
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported no change", i)
		}
		if b.Set(i) {
			t.Fatalf("double Set(%d) reported change", i)
		}
		if !b.Get(i) {
			t.Fatalf("Get(%d) false after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	for _, i := range []uint64{0, 129} {
		if !b.Clear(i) {
			t.Fatalf("Clear(%d) reported no change", i)
		}
		if b.Clear(i) {
			t.Fatalf("double Clear(%d) reported change", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, f := range map[string]func(){
		"Get":   func() { b.Get(10) },
		"Set":   func() { b.Set(11) },
		"Clear": func() { b.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNextClearNextSet(t *testing.T) {
	b := New(200)
	b.SetRange(0, 64) // fill first word exactly
	b.Set(70)
	if idx, ok := b.NextClear(0); !ok || idx != 64 {
		t.Fatalf("NextClear(0) = %d,%v want 64", idx, ok)
	}
	if idx, ok := b.NextClear(70); !ok || idx != 71 {
		t.Fatalf("NextClear(70) = %d,%v want 71", idx, ok)
	}
	if idx, ok := b.NextSet(64); !ok || idx != 70 {
		t.Fatalf("NextSet(64) = %d,%v want 70", idx, ok)
	}
	if _, ok := b.NextSet(71); ok {
		t.Fatal("NextSet past last set bit should fail")
	}
	if _, ok := b.NextClear(200); ok {
		t.Fatal("NextClear(len) should fail")
	}
	full := New(65)
	full.SetRange(0, 65)
	if _, ok := full.NextClear(0); ok {
		t.Fatal("NextClear on full bitmap should fail")
	}
}

func TestFindRun(t *testing.T) {
	b := New(100)
	b.SetRange(0, 10)
	b.SetRange(15, 10) // clear gap [10,15) of 5, then [25,100) clear
	if s, ok := b.FindRun(0, 5); !ok || s != 10 {
		t.Fatalf("FindRun(0,5) = %d,%v want 10", s, ok)
	}
	if s, ok := b.FindRun(0, 6); !ok || s != 25 {
		t.Fatalf("FindRun(0,6) = %d,%v want 25", s, ok)
	}
	if s, ok := b.FindRun(0, 75); !ok || s != 25 {
		t.Fatalf("FindRun(0,75) = %d,%v want 25", s, ok)
	}
	if _, ok := b.FindRun(0, 76); ok {
		t.Fatal("FindRun longer than any gap should fail")
	}
	if s, ok := b.FindRun(30, 5); !ok || s != 30 {
		t.Fatalf("FindRun(30,5) = %d,%v want 30", s, ok)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New(64)
	b.Set(3)
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Fatal("clone shares storage")
	}
	if !c.Get(3) {
		t.Fatal("clone lost bits")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := prng.NewFromUint64(4)
	for _, n := range []uint64{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		for i := uint64(0); i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Bitmap
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got.Len() != b.Len() || got.Count() != b.Count() {
			t.Fatalf("n=%d: len/count mismatch after roundtrip", n)
		}
		for i := uint64(0); i < n; i++ {
			if got.Get(i) != b.Get(i) {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated accepted")
	}
	src := New(10)
	data, _ := src.MarshalBinary()
	if err := b.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("short body accepted")
	}
	// Stray bits beyond the declared length must be rejected.
	data[8+7] |= 0x80 // bit 63 of word 0, beyond n=10... set high bit
	bad := append([]byte(nil), data...)
	bad[8] |= 0xFF // bits 56..63 within big-endian word layout
	if err := b.UnmarshalBinary(bad); err == nil {
		t.Fatal("stray bits accepted")
	}
}

func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(seed uint64, nSmall uint8) bool {
		n := uint64(nSmall) + 1
		rng := prng.NewFromUint64(seed)
		b := New(n)
		naive := 0
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
				naive++
			}
		}
		return b.Count() == uint64(naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextClearConsistent(t *testing.T) {
	f := func(seed uint64, nSmall uint8, fromSmall uint8) bool {
		n := uint64(nSmall) + 1
		from := uint64(fromSmall) % n
		rng := prng.NewFromUint64(seed)
		b := New(n)
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		idx, ok := b.NextClear(from)
		// Naive scan.
		var nidx uint64
		nok := false
		for i := from; i < n; i++ {
			if !b.Get(i) {
				nidx, nok = i, true
				break
			}
		}
		return ok == nok && (!ok || idx == nidx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
