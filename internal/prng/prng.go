// Package prng implements the deterministic pseudo-random number
// generator used throughout the steganographic file system.
//
// The paper (§6.1) constructs its generator from SHA-256; we follow it
// by running SHA-256 in counter mode over a seed:
//
//	block_i = SHA256(seed ‖ uint64(i))
//
// The stream is deterministic for a given seed, which makes every
// randomized decision in the system (block picks, IVs, shuffles,
// workloads) reproducible in tests and experiments. The generator is
// NOT safe for concurrent use; wrap it in a lock or derive independent
// child generators with Child.
package prng

import (
	"crypto/sha256"
	"encoding/binary"
)

// PRNG is a deterministic SHA-256 counter-mode generator.
type PRNG struct {
	seed    [32]byte
	counter uint64
	buf     [32]byte
	avail   int // unread bytes remaining at the tail of buf
}

// New returns a generator seeded by hashing the given seed material.
func New(seed []byte) *PRNG {
	p := &PRNG{}
	p.seed = sha256.Sum256(seed)
	return p
}

// NewFromUint64 seeds a generator from an integer; convenient in tests.
func NewFromUint64(seed uint64) *PRNG {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	return New(b[:])
}

// Child derives an independent generator from this one's seed and a
// label, without consuming any of the parent's stream. Two children
// with different labels produce independent streams.
func (p *PRNG) Child(label string) *PRNG {
	h := sha256.New()
	h.Write(p.seed[:])
	h.Write([]byte{0xC4}) // domain separator
	h.Write([]byte(label))
	var seed []byte
	seed = h.Sum(seed)
	return New(seed)
}

func (p *PRNG) refill() {
	// One-shot Sum256 instead of sha256.New/Write/Sum: the digest of
	// seed ‖ counter is byte-identical, but the streaming API costs two
	// heap allocations per 32-byte refill — which made the PRNG the
	// top allocator of the whole reshuffle path (every dummy fill and
	// IV draws through here).
	var in [40]byte
	copy(in[:32], p.seed[:])
	binary.BigEndian.PutUint64(in[32:], p.counter)
	p.buf = sha256.Sum256(in[:])
	p.counter++
	p.avail = len(p.buf)
}

// Read fills b with pseudo-random bytes. It never fails; the error is
// always nil and is present only to satisfy io.Reader.
func (p *PRNG) Read(b []byte) (int, error) {
	n := len(b)
	for len(b) > 0 {
		if p.avail == 0 {
			p.refill()
		}
		off := len(p.buf) - p.avail
		c := copy(b, p.buf[off:])
		p.avail -= c
		b = b[c:]
	}
	return n, nil
}

// Bytes returns n fresh pseudo-random bytes.
func (p *PRNG) Bytes(n int) []byte {
	b := make([]byte, n)
	p.Read(b)
	return b
}

// Uint64 returns a uniformly distributed 64-bit value.
func (p *PRNG) Uint64() uint64 {
	var b [8]byte
	p.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Modulo bias is removed by rejection sampling.
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return p.Uint64() & (n - 1)
	}
	// Rejection sampling: draw until the value falls below the largest
	// multiple of n representable in 64 bits.
	limit := ^uint64(0) - (^uint64(0) % n)
	for {
		v := p.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (p *PRNG) Float64() float64 {
	// 53 random mantissa bits, the standard construction.
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// produced by a Fisher–Yates shuffle.
func (p *PRNG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.ShuffleInts(out)
	return out
}

// ShuffleInts permutes s in place.
func (p *PRNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements in place using the provided swap
// function, mirroring math/rand's contract.
func (p *PRNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}
