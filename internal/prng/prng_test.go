package prng

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewFromUint64(42)
	b := NewFromUint64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewFromUint64(1)
	b := NewFromUint64(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("independent streams collided %d times in 64 draws", same)
	}
}

func TestReadExactLengths(t *testing.T) {
	p := NewFromUint64(7)
	for _, n := range []int{0, 1, 7, 31, 32, 33, 64, 100, 4096} {
		b := make([]byte, n)
		got, err := p.Read(b)
		if err != nil || got != n {
			t.Fatalf("Read(%d) = %d, %v", n, got, err)
		}
	}
}

func TestReadMatchesBytesAcrossSplits(t *testing.T) {
	// Reading 64 bytes in one call must equal reading the same stream
	// in odd-sized chunks.
	a := NewFromUint64(9)
	b := NewFromUint64(9)
	one := a.Bytes(64)
	var parts []byte
	for _, n := range []int{1, 3, 5, 7, 11, 13, 24} {
		parts = append(parts, b.Bytes(n)...)
	}
	if !bytes.Equal(one, parts) {
		t.Fatal("chunked reads diverge from bulk read")
	}
}

func TestChildIndependence(t *testing.T) {
	p := NewFromUint64(5)
	c1 := p.Child("alpha")
	c2 := p.Child("beta")
	c1again := p.Child("alpha")
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("same-label children must agree")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("different-label children should not collide")
	}
	// Deriving children must not consume the parent stream.
	q := NewFromUint64(5)
	if p.Uint64() != q.Uint64() {
		t.Fatal("Child consumed parent stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	p := NewFromUint64(11)
	for _, n := range []uint64{1, 2, 3, 10, 255, 256, 1 << 40, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := p.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromUint64(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for Intn(%d)", n)
				}
			}()
			NewFromUint64(1).Intn(n)
		}()
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// 10 bins, 100k draws. Chi-square with 9 degrees of freedom:
	// critical value at p=0.001 is 27.88.
	p := NewFromUint64(123)
	const bins, draws = 10, 100000
	var counts [bins]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(bins)]++
	}
	expected := float64(draws) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-square %.2f exceeds 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	p := NewFromUint64(77)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v deviates from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := NewFromUint64(seed)
		perm := p.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(perm) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniform(t *testing.T) {
	// Every permutation of 3 elements should appear ~1/6 of the time.
	p := NewFromUint64(99)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		s := []int{0, 1, 2}
		p.ShuffleInts(s)
		counts[[3]int{s[0], s[1], s[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 permutations, got %d", len(counts))
	}
	for perm, c := range counts {
		ratio := float64(c) / (trials / 6.0)
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("permutation %v frequency off: %v", perm, ratio)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	p := NewFromUint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Uint64()
	}
}

func BenchmarkRead4K(b *testing.B) {
	p := NewFromUint64(1)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		p.Read(buf)
	}
}
