package journal

import (
	"fmt"

	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// FsckReport is the journal half of a volume check: ring integrity
// plus the intents no completed save has covered. It is what turns
// "the volume mounted" into "the volume is clean" — a dirty ring
// means a crash interrupted the update stream and Recover must run.
type FsckReport struct {
	// Slots is the ring capacity.
	Slots uint64
	// Valid is how many slots decoded as authentic records.
	Valid int
	// SeqLo and SeqHi bound the surviving sequence numbers (zero when
	// the ring is empty).
	SeqLo, SeqHi uint64
	// Missing counts sequence numbers inside [SeqLo, SeqHi] with no
	// surviving record: slots lost to torn writes (a crash mid-append)
	// or reused by the ring's wrap.
	Missing int
	// LastCheckpoint is the newest OpCheckpoint's sequence number.
	LastCheckpoint uint64
	// Pending lists intents (reloc/alloc/free) not covered by a later
	// save record of the same file — the "unreplayed intents" a clean
	// shutdown never leaves behind.
	Pending []Record
}

// Ok reports whether the ring shows a cleanly retired log: every
// intent covered by a save and no sequence gaps.
func (r *FsckReport) Ok() bool { return len(r.Pending) == 0 && r.Missing == 0 }

// String renders a one-line summary.
func (r *FsckReport) String() string {
	return fmt.Sprintf("journal: %d/%d slots valid, seq [%d,%d], %d missing, %d pending intents",
		r.Valid, r.Slots, r.SeqLo, r.SeqHi, r.Missing, len(r.Pending))
}

// Fsck verifies the journal region of vol under the journal key: slot
// integrity (every record's seal and tag), sequence continuity, and
// which intents remain unreplayed. It needs only the journal key —
// no file keys — so it reports pending intents without being able to
// resolve them; the agents' Recover methods do that.
func Fsck(vol *stegfs.Volume, key sealer.Key) (*FsckReport, error) {
	j, err := Open(vol, key)
	if err != nil {
		return nil, err
	}
	recs, err := j.Scan()
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{Slots: j.Slots(), Valid: len(recs)}
	if len(recs) == 0 {
		return rep, nil
	}
	rep.SeqLo = recs[0].Seq
	rep.SeqHi = recs[len(recs)-1].Seq
	rep.Missing = int(rep.SeqHi-rep.SeqLo+1) - len(recs)

	// An intent is pending until a later save of its file commits it.
	lastSave := map[uint64]uint64{}
	for _, rec := range recs {
		switch rec.Op {
		case OpSave:
			lastSave[rec.FileH] = rec.Seq
		case OpCheckpoint:
			rep.LastCheckpoint = rec.Seq
		}
	}
	for _, rec := range recs {
		switch rec.Op {
		case OpReloc, OpAlloc, OpFree:
			if lastSave[rec.FileH] < rec.Seq {
				rep.Pending = append(rep.Pending, rec)
			}
		}
	}
	return rep, nil
}
