package journal

import (
	"testing"

	"steghide/internal/race"
)

// TestAllocBudgets pins the intent append path at zero steady-state
// heap allocations per record: encode reuses the cached slot images
// and tag scratch, the IV stream draws through the alloc-free PRNG,
// and the ring write lands in the device's own storage. Any regression
// here multiplies across every dummy burst the daemon emits.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	vol, _ := newVol(t, 512, 256, 32)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: first appends populate lazy state (tag snapshot, sum buffer).
	if err := j.AppendDummy(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendReloc(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := j.AppendDummy(); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendDummy: %.1f allocs/op, budget 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := j.AppendReloc(7, 8, 9); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendReloc: %.1f allocs/op, budget 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := j.AppendDummies(16); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendDummies(16): %.1f allocs/op, budget 0", n)
	}
}
