// Package journal implements the steganographic intent journal: a
// crash-consistency plane for the Figure-6 update stream whose own
// on-disk footprint discloses nothing.
//
// A conventional write-ahead log would hand the §3 snapshot attacker a
// labelled record of exactly the accesses the constructions hide. The
// journal therefore holds itself to the same bar as the stream it
// protects:
//
//   - Slots live in a fixed ring region of the volume (right after the
//     superblock, carved out via blockdev.SubDevice) that format fills
//     with random bytes, so an empty ring and a full ring look alike.
//   - Every record is sealed under a journal key the agent derives
//     from its secret: a fixed-size CBC-encrypted record area with a
//     fresh IV and a keyed integrity tag. Ciphertext is
//     indistinguishable from the random fill; the tag is what
//     separates "record" from "noise" for the key holder, so slot
//     occupancy itself is invisible without the key.
//   - Every slot overwrite changes the same fixed prefix of the slot
//     (IV + sealed record area), whatever the record says. The bytes
//     past the prefix are static cover inherited from the previous
//     slot content, so a dummy filler and a ten-address allocation
//     record are byte-for-byte indistinguishable in how they touch
//     the disk.
//   - The scheduler emits exactly one slot write per element of the
//     update stream — real intents before relocations, dummy fillers
//     for dummy and camouflage updates — so ring traffic carries the
//     stream's cadence and nothing else: journaling changes
//     throughput, never the observable address distribution.
//
// Recovery (the agents' Recover methods in internal/steghide) scans
// the ring under the key and resolves every intent against the disk
// truth: a file's durable header is its commit point, so an intent is
// committed exactly when the saved block map references its target.
//
// Ordering assumption: the device persists writes in issue order (the
// in-memory and fault devices do by construction; a file-backed
// deployment on a writeback cache would need an fsync barrier between
// an intent append and the payload write it precedes — the Device
// plane has no such barrier today, and DESIGN.md records the gap).
package journal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sort"
	"sync"

	"steghide/internal/blockdev"
	"steghide/internal/obs"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// Op is the type of one intent record.
type Op uint8

const (
	// OpDummy is the filler record emitted for dummy and camouflage
	// updates, keeping ring traffic one-to-one with the stream.
	OpDummy Op = iota + 1
	// OpReloc is the intent "the data at OldLoc moves to NewLoc",
	// durable before the payload write.
	OpReloc
	// OpAlloc is the intent "the file at FileH acquired Locs", durable
	// before any of them is written or referenced.
	OpAlloc
	// OpFree is the intent "the file at FileH gives up Locs", durable
	// before they are released.
	OpFree
	// OpSave marks the file's header save as durable: every earlier
	// intent of the file is now decided by the on-disk header.
	OpSave
	// OpCheckpoint marks an external state snapshot (Construction 1's
	// bitmap export); fsck uses it to bound "dirty since".
	OpCheckpoint
	opMax
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpDummy:
		return "dummy"
	case OpReloc:
		return "reloc"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpSave:
		return "save"
	case OpCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one decoded intent.
type Record struct {
	// Seq is the record's position in the append order; the ring slot
	// is Seq-1 mod ring size.
	Seq uint64
	// Op says what the record intends.
	Op Op
	// FileH is the header location of the file the intent concerns
	// (zero for dummies and checkpoints).
	FileH uint64
	// OldLoc and NewLoc are the relocation endpoints (OpReloc only).
	OldLoc, NewLoc uint64
	// Locs are the blocks an OpAlloc/OpFree concerns.
	Locs []uint64
}

// touches returns every steg-space location the record makes a claim
// about.
func (r *Record) touches() []uint64 {
	switch r.Op {
	case OpReloc:
		return []uint64{r.OldLoc, r.NewLoc}
	case OpAlloc, OpFree:
		return r.Locs
	default:
		return nil
	}
}

// Record area layout (plaintext, fixed recordArea bytes, sealed as
// IV ‖ CBC(area) at the head of the slot):
//
//	off  0  magic  [4]byte "SJR1"
//	off  4  op     uint8
//	off  5  nLocs  uint8
//	off  6  pad    uint16 (zero)
//	off  8  seq    uint64
//	off 16  fileH  uint64
//	off 24  oldLoc uint64
//	off 32  newLoc uint64
//	off 40  locs   [nLocs]uint64
//	...     zero padding
//	tail 8  keyed checksum over area[:len-8]
const (
	recMagic   = "SJR1"
	recFixed   = 40
	recTagSize = 8
	// maxArea caps the sealed prefix: 256 bytes hold 25 addresses per
	// record and keep the per-append crypto a small fraction of a
	// block seal; smaller blocks use the whole data field.
	maxArea  = 256
	minSlots = 4 // smallest ring Open accepts
)

// be is the on-disk byte order.
var be = binary.BigEndian

// Sentinel errors.
var (
	ErrNoJournal = errors.New("journal: volume has no journal region")
	ErrRecordBig = errors.New("journal: record exceeds slot capacity")
)

// Journal is an open intent ring. All methods are safe for concurrent
// use; appends serialize internally (the ring is one stream).
type Journal struct {
	vol   *stegfs.Volume
	dev   blockdev.Device // the ring SubDevice
	seal  *sealer.Sealer  // over IVSize+area bytes
	key   sealer.Key      // tag key
	area  int             // plaintext record-area size
	slots uint64

	// tagState is the SHA-256 state after absorbing the tag key and
	// label, marshaled once so each append restores it instead of
	// re-keying an HMAC (the tag is truncated and key-prefixed, so
	// length extension buys an attacker nothing).
	tagState []byte

	mu      sync.Mutex
	seq     uint64     // next sequence number to assign
	images  [][]byte   // cached slot images: sealed prefix + static tail
	scratch []byte     // record-area scratch for encode
	sumbuf  []byte     // tag scratch
	tagHash hash.Hash  // reusable SHA-256 for tags
	ivrng   *prng.PRNG // journal IV stream
	// enc is a persistent CBC encryptor for the append path, re-aimed
	// per record through the cipher package's SetIV fast path; nil
	// when the platform's BlockMode does not support it.
	enc interface {
		cipher.BlockMode
		SetIV([]byte)
	}
}

// Open attaches to the journal ring of vol, sealing records under
// key. It scans the ring once to find the current sequence horizon
// (so appends after a crash continue where the log left off) and to
// cache the slots' static tail bytes.
func Open(vol *stegfs.Volume, key sealer.Key) (*Journal, error) {
	region, err := vol.JournalRegion()
	if err != nil {
		return nil, ErrNoJournal
	}
	if region.NumBlocks() < minSlots {
		return nil, fmt.Errorf("journal: ring of %d slots too small", region.NumBlocks())
	}
	field := vol.BlockSize() - sealer.IVSize
	area := field
	if area > maxArea {
		area = maxArea
	}
	sealKey := sealer.DeriveKey(key[:], "journal-slot-seal")
	sl, err := sealer.New(sealKey, area+sealer.IVSize)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		vol:     vol,
		dev:     region,
		seal:    sl,
		key:     sealer.DeriveKey(key[:], "journal-slot-tag"),
		area:    area,
		slots:   region.NumBlocks(),
		scratch: make([]byte, area),
		sumbuf:  make([]byte, 0, sha256.Size),
		tagHash: sha256.New(),
	}
	h := sha256.New()
	h.Write(j.key[:])
	h.Write([]byte("journal-record"))
	j.tagState, err = h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, err
	}
	if blk, err := aes.NewCipher(sealKey[:]); err == nil {
		var zero [sealer.IVSize]byte
		if m, ok := cipher.NewCBCEncrypter(blk, zero[:]).(interface {
			cipher.BlockMode
			SetIV([]byte)
		}); ok {
			j.enc = m
		}
	}
	if _, err := j.scan(true); err != nil {
		return nil, err
	}
	// The IV stream is seeded from the key, the volume salt, the
	// resume point, and a digest of the ring's current slot prefixes.
	// The last ingredient matters: a torn append leaves its IV on disk
	// while the resume sequence number stays put, and a reopen seeded
	// from (key, salt, seq) alone would replay that exact IV onto the
	// same slot — an unchanged-IV/changed-ciphertext overwrite that
	// random fill cannot produce. Hashing what the slots actually hold
	// makes every reopen's stream diverge from what is already there.
	seedH := sha256.New()
	seedH.Write(key[:])
	seedH.Write(vol.Salt())
	var seqb [8]byte
	be.PutUint64(seqb[:], j.seq)
	seedH.Write(seqb[:])
	for _, img := range j.images {
		seedH.Write(img[:sealer.IVSize])
	}
	j.ivrng = prng.New(seedH.Sum(nil)).Child("journal-iv")
	return j, nil
}

// tag computes the keyed 8-byte record tag on the append path by
// restoring the precomputed post-key hash state. Caller holds j.mu
// (reuses the hash and sum scratch).
func (j *Journal) tag(data []byte) uint64 {
	if u, ok := j.tagHash.(encoding.BinaryUnmarshaler); ok && u.UnmarshalBinary(j.tagState) == nil {
		j.tagHash.Write(data)
		j.sumbuf = j.tagHash.Sum(j.sumbuf[:0])
		return be.Uint64(j.sumbuf)
	}
	return j.tagOf(data)
}

// Slots returns the ring capacity in records.
func (j *Journal) Slots() uint64 { return j.slots }

// EnableMetrics registers the ring's occupancy series with reg,
// sampled at scrape time (the gauges take j.mu briefly; the append
// path is untouched). Occupancy and sequence numbers mirror the slot
// writes an attacker already counts on the device — which slots hold
// live records vs noise stays invisible without the key, and no
// record content, address, or real-vs-filler split is exported.
func (j *Journal) EnableMetrics(reg *obs.Registry, volume string) {
	l := []string{"volume", volume}
	reg.GaugeFunc("steghide_journal_ring_slots",
		"journal ring capacity in records", func() float64 {
			return float64(j.slots)
		}, l...)
	reg.GaugeFunc("steghide_journal_ring_occupancy",
		"ring slots written at least once (saturates at capacity)",
		func() float64 {
			return float64(min(j.Seq(), j.slots))
		}, l...)
	reg.GaugeFunc("steghide_journal_seq",
		"sequence number the next journal append will use", func() float64 {
			return float64(j.Seq())
		}, l...)
}

// Seq returns the sequence number the next append will use.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// maxLocs returns how many addresses one record carries.
func (j *Journal) maxLocs() int { return (j.area - recFixed - recTagSize) / 8 }

// encode seals rec into its cached slot image (the sealed prefix is
// rewritten, the static tail is already in place). Caller holds j.mu.
func (j *Journal) encode(rec *Record, slot uint64) error {
	if len(rec.Locs) > j.maxLocs() {
		return ErrRecordBig
	}
	area := j.scratch
	clear(area)
	copy(area, recMagic)
	area[4] = byte(rec.Op)
	area[5] = byte(len(rec.Locs))
	be.PutUint64(area[8:], rec.Seq)
	be.PutUint64(area[16:], rec.FileH)
	be.PutUint64(area[24:], rec.OldLoc)
	be.PutUint64(area[32:], rec.NewLoc)
	for i, loc := range rec.Locs {
		be.PutUint64(area[recFixed+8*i:], loc)
	}
	// The tag covers the used bytes only (the padding is zeros by
	// construction and bounded by nLocs); writing it at the fixed tail
	// keeps the slot layout size-independent.
	be.PutUint64(area[j.area-recTagSize:], j.tag(area[:recFixed+8*len(rec.Locs)]))

	dst := j.images[slot][:sealer.IVSize+j.area]
	j.ivrng.Read(dst[:sealer.IVSize])
	if j.enc != nil {
		j.enc.SetIV(dst[:sealer.IVSize])
		j.enc.CryptBlocks(dst[sealer.IVSize:], area)
		return nil
	}
	var iv [sealer.IVSize]byte
	copy(iv[:], dst[:sealer.IVSize])
	return j.seal.Seal(dst, iv[:], area)
}

// tagOf recomputes the keyed tag without touching the append-path
// scratch (used by the lock-free decode during scans).
func (j *Journal) tagOf(data []byte) uint64 {
	h := sha256.New()
	h.Write(j.key[:])
	h.Write([]byte("journal-record"))
	h.Write(data)
	return be.Uint64(h.Sum(nil))
}

// decode parses one raw slot, returning nil when the slot holds no
// valid record (random fill, foreign key, or a torn write — the tag
// rejects all three alike).
func (j *Journal) decode(raw []byte) *Record {
	area := make([]byte, j.area)
	if err := j.seal.Open(area, raw[:sealer.IVSize+j.area]); err != nil {
		return nil
	}
	if string(area[:4]) != recMagic {
		return nil
	}
	op := Op(area[4])
	if op == 0 || op >= opMax {
		return nil
	}
	n := int(area[5])
	if n > j.maxLocs() {
		return nil
	}
	if be.Uint64(area[j.area-recTagSize:]) != j.tagOf(area[:recFixed+8*n]) {
		return nil
	}
	rec := &Record{
		Seq:    be.Uint64(area[8:]),
		Op:     op,
		FileH:  be.Uint64(area[16:]),
		OldLoc: be.Uint64(area[24:]),
		NewLoc: be.Uint64(area[32:]),
	}
	if n > 0 {
		rec.Locs = make([]uint64, n)
		for i := range rec.Locs {
			rec.Locs[i] = be.Uint64(area[recFixed+8*i:])
		}
	}
	return rec
}

// scan reads the whole ring and returns the valid records in sequence
// order. With init it also caches the slot images (whose bytes past
// the sealed prefix are the static cover every overwrite preserves)
// and the sequence horizon. A record whose slot disagrees with its
// sequence number is a leftover from before a reformat and is dropped.
func (j *Journal) scan(init bool) ([]Record, error) {
	raws := blockdev.AllocBlocks(int(j.slots), j.vol.BlockSize())
	if err := blockdev.ReadBlocks(j.dev, 0, raws); err != nil {
		return nil, err
	}
	var recs []Record
	maxSeq := uint64(0)
	for i, raw := range raws {
		rec := j.decode(raw)
		if rec == nil {
			continue
		}
		if (rec.Seq-1)%j.slots != uint64(i) {
			continue
		}
		recs = append(recs, *rec)
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	if init {
		j.mu.Lock()
		j.images = raws
		j.seq = maxSeq + 1
		j.mu.Unlock()
	}
	return recs, nil
}

// Scan returns every valid record currently in the ring, oldest
// first. Slots overwritten by the ring's wrap are gone — the ring
// must be sized so it outlives the window between state snapshots.
func (j *Journal) Scan() ([]Record, error) { return j.scan(false) }

// append seals rec (assigning its sequence number) and overwrites its
// ring slot.
func (j *Journal) append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.seq
	slot := (rec.Seq - 1) % j.slots
	if err := j.encode(&rec, slot); err != nil {
		return err
	}
	if err := j.dev.WriteBlock(slot, j.images[slot]); err != nil {
		return err
	}
	j.seq++
	return nil
}

// AppendReloc durably records the intent "fileH's data at oldLoc
// moves to newLoc". Call before the payload write.
func (j *Journal) AppendReloc(fileH, oldLoc, newLoc uint64) error {
	return j.append(Record{Op: OpReloc, FileH: fileH, OldLoc: oldLoc, NewLoc: newLoc})
}

// AppendAlloc durably records that fileH acquired locs, splitting
// across slots when the list outgrows one record.
func (j *Journal) AppendAlloc(fileH uint64, locs []uint64) error {
	return j.appendList(OpAlloc, fileH, locs)
}

// AppendFree durably records that fileH gives up locs.
func (j *Journal) AppendFree(fileH uint64, locs []uint64) error {
	return j.appendList(OpFree, fileH, locs)
}

func (j *Journal) appendList(op Op, fileH uint64, locs []uint64) error {
	for len(locs) > 0 {
		n := min(len(locs), j.maxLocs())
		if err := j.append(Record{Op: op, FileH: fileH, Locs: locs[:n]}); err != nil {
			return err
		}
		locs = locs[n:]
	}
	return nil
}

// AppendSave records that fileH's header save is durable.
func (j *Journal) AppendSave(fileH uint64) error {
	return j.append(Record{Op: OpSave, FileH: fileH})
}

// AppendCheckpoint records an external state snapshot.
func (j *Journal) AppendCheckpoint() error {
	return j.append(Record{Op: OpCheckpoint})
}

// AppendDummy emits one filler record.
func (j *Journal) AppendDummy() error {
	return j.append(Record{Op: OpDummy})
}

// AppendDummies emits n filler records, batching contiguous slot runs
// into single device writes — the companion of the agents' burst
// paths, so a dummy burst costs O(1) ring round trips, not n.
func (j *Journal) AppendDummies(n int) error {
	if n <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for n > 0 {
		slot := (j.seq - 1) % j.slots
		run := min(uint64(n), j.slots-slot)
		for i := uint64(0); i < run; i++ {
			rec := Record{Op: OpDummy, Seq: j.seq + i}
			if err := j.encode(&rec, slot+i); err != nil {
				return err
			}
		}
		if err := blockdev.WriteBlocks(j.dev, slot, j.images[slot:slot+run]); err != nil {
			return err
		}
		j.seq += run
		n -= int(run)
	}
	return nil
}
