package journal

import (
	"errors"
	"fmt"

	"steghide/internal/stegfs"
)

// Resolver reads the disk truth for one file: the set of block
// locations the durable header rooted at fileH references (see
// stegfs.ReferencedAt). It returns stegfs.ErrNotFound when no header
// decodes there — every location the intents attributed to that file
// is then free — and ErrNoKey when the caller cannot decode the
// header at all (Construction 2 before the file is disclosed).
type Resolver func(fileH uint64) (map[uint64]bool, error)

// ErrNoKey is the Resolver's "cannot decide yet": the record stays
// unresolved instead of producing a verdict.
var ErrNoKey = errors.New("journal: no key for this file's header")

// Verdict is the recovered truth for one block location.
type Verdict struct {
	// Loc is the block the verdict concerns.
	Loc uint64
	// Used reports whether the durable state holds live data at Loc.
	Used bool
	// Seq is the record that decided the verdict — the newest one
	// touching Loc, because later intents supersede earlier ones.
	Seq uint64
}

// Resolution is the outcome of resolving a ring scan against disk.
type Resolution struct {
	// Verdicts holds one entry per distinct location the ring makes
	// claims about, decided newest-intent-first.
	Verdicts []Verdict
	// Committed maps each OpReloc sequence number to whether the
	// relocation's file durably references NewLoc (true: the data
	// lives at NewLoc; false: the save never landed and the data is
	// still at OldLoc).
	Committed map[uint64]bool
	// Unresolved lists intents whose file the resolver had no key for,
	// newest first. Their locations received no verdict and must stay
	// quarantined until the key appears.
	Unresolved []Record
	// Broken lists file headers whose chain failed structurally
	// (stegfs.ErrCorrupt): their intents resolve to "free", but the
	// condition is worth surfacing.
	Broken []uint64
}

// Resolve decides every intent in recs against the disk truth the
// resolver reads. Records are processed newest first and the first
// verdict for a location wins: a location reused by a later file is
// decided by that later file's header, exactly as the disk would
// answer. Dummy, save, and checkpoint records carry no claims and are
// skipped.
func Resolve(recs []Record, resolve Resolver) (*Resolution, error) {
	res := &Resolution{Committed: map[uint64]bool{}}
	refsOf := map[uint64]map[uint64]bool{} // fileH → referenced set (nil: no file)
	noKey := map[uint64]bool{}
	lookup := func(fileH uint64) (map[uint64]bool, bool, error) {
		if noKey[fileH] {
			return nil, false, nil
		}
		refs, seen := refsOf[fileH]
		if seen {
			return refs, true, nil
		}
		refs, err := resolve(fileH)
		switch {
		case err == nil:
		case errors.Is(err, ErrNoKey):
			noKey[fileH] = true
			return nil, false, nil
		case errors.Is(err, stegfs.ErrNotFound):
			refs = nil // no such file: nothing referenced
		case errors.Is(err, stegfs.ErrCorrupt):
			refs = nil
			res.Broken = append(res.Broken, fileH)
		default:
			return nil, false, err
		}
		refsOf[fileH] = refs
		return refs, true, nil
	}

	claimed := map[uint64]bool{}
	for i := len(recs) - 1; i >= 0; i-- {
		rec := &recs[i]
		locs := rec.touches()
		if len(locs) == 0 {
			continue
		}
		refs, ok, err := lookup(rec.FileH)
		if err != nil {
			return nil, err
		}
		if !ok {
			res.Unresolved = append(res.Unresolved, *rec)
			continue
		}
		if rec.Op == OpReloc {
			res.Committed[rec.Seq] = refs[rec.NewLoc]
		}
		for _, loc := range locs {
			if claimed[loc] {
				continue
			}
			claimed[loc] = true
			res.Verdicts = append(res.Verdicts, Verdict{Loc: loc, Used: refs[loc], Seq: rec.Seq})
		}
	}
	return res, nil
}

// Report summarizes a recovery run for logs and fsck output.
type Report struct {
	// Records is how many valid records the ring scan returned.
	Records int
	// RelocsCommitted and RelocsRolledBack split the resolved
	// relocation intents by outcome.
	RelocsCommitted, RelocsRolledBack int
	// MarkedUsed and MarkedFree count the partition corrections
	// applied.
	MarkedUsed, MarkedFree int
	// Unresolved counts intents awaiting a key (Construction 2).
	Unresolved int
	// BrokenFiles counts headers whose pointer chain failed.
	BrokenFiles int
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("journal recovery: %d records, %d relocs committed, %d rolled back, %d→used %d→free, %d unresolved, %d broken files",
		r.Records, r.RelocsCommitted, r.RelocsRolledBack, r.MarkedUsed, r.MarkedFree, r.Unresolved, r.BrokenFiles)
}
