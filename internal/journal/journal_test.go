package journal

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

func newVol(t *testing.T, blockSize int, nBlocks, journal uint64) (*stegfs.Volume, *blockdev.Mem) {
	t.Helper()
	dev := blockdev.NewMem(blockSize, nBlocks)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{
		KDFIterations: 4,
		FillSeed:      []byte("journal-test"),
		JournalBlocks: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vol, dev
}

func testKey() sealer.Key { return sealer.DeriveKey([]byte("secret"), "journal-test-key") }

func TestOpenRequiresRegion(t *testing.T) {
	vol, _ := newVol(t, 512, 64, 0)
	if _, err := Open(vol, testKey()); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("Open on journalless volume: %v", err)
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 16)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if recs, _ := j.Scan(); len(recs) != 0 {
		t.Fatalf("fresh ring has %d records", len(recs))
	}
	if err := j.AppendReloc(40, 41, 42); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAlloc(40, []uint64{50, 51, 52}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDummy(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendFree(40, []uint64{50}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSave(40); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCheckpoint(); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpReloc, OpAlloc, OpDummy, OpFree, OpSave, OpCheckpoint}
	if len(recs) != len(wantOps) {
		t.Fatalf("scan returned %d records, want %d", len(recs), len(wantOps))
	}
	for i, rec := range recs {
		if rec.Op != wantOps[i] {
			t.Fatalf("record %d op %v, want %v", i, rec.Op, wantOps[i])
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d", i, rec.Seq)
		}
	}
	if recs[0].OldLoc != 41 || recs[0].NewLoc != 42 || recs[0].FileH != 40 {
		t.Fatalf("reloc decoded as %+v", recs[0])
	}
	if len(recs[1].Locs) != 3 || recs[1].Locs[2] != 52 {
		t.Fatalf("alloc decoded as %+v", recs[1])
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 16)
	key := testKey()
	j, err := Open(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.AppendDummy(); err != nil {
			t.Fatal(err)
		}
	}
	j2, err := Open(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Seq(); got != 6 {
		t.Fatalf("reopened journal resumes at seq %d, want 6", got)
	}
	if err := j2.AppendSave(7); err != nil {
		t.Fatal(err)
	}
	recs, _ := j2.Scan()
	if len(recs) != 6 || recs[5].Op != OpSave || recs[5].Seq != 6 {
		t.Fatalf("append after reopen: %+v", recs)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 8)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := j.AppendAlloc(100+i, []uint64{200 + i}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("wrapped ring holds %d records, want 8", len(recs))
	}
	if recs[0].Seq != 13 || recs[7].Seq != 20 {
		t.Fatalf("wrapped ring seq range [%d,%d], want [13,20]", recs[0].Seq, recs[7].Seq)
	}
}

func TestAppendDummiesBatchesAndWraps(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 8)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSave(99); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDummies(11); err != nil { // wraps past slot 8
		t.Fatal(err)
	}
	recs, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records", len(recs))
	}
	for _, rec := range recs {
		if rec.Op != OpDummy {
			t.Fatalf("unexpected %v after dummy burst", rec.Op)
		}
	}
	if recs[7].Seq != 12 {
		t.Fatalf("last seq %d, want 12", recs[7].Seq)
	}
}

func TestTornSlotIsIgnored(t *testing.T) {
	vol, dev := newVol(t, 512, 128, 8)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendReloc(10, 11, 12); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the middle record: overwrite half its slot (ring block 1 =
	// volume block 2) as a power cut mid-write would.
	raw := make([]byte, 512)
	if err := dev.ReadBlock(2, raw); err != nil {
		t.Fatal(err)
	}
	copy(raw[256:], bytes.Repeat([]byte{0xAB}, 256))
	if err := dev.WriteBlock(2, raw); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("scan after torn slot returned %d records, want 2", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 3 {
		t.Fatalf("surviving seqs %d,%d", recs[0].Seq, recs[1].Seq)
	}
}

func TestWrongKeySeesNothing(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 8)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.AppendReloc(1, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	other, err := Open(vol, sealer.DeriveKey([]byte("intruder"), "journal-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	if recs, _ := other.Scan(); len(recs) != 0 {
		t.Fatalf("foreign key decoded %d records", len(recs))
	}
	if other.Seq() != 1 {
		t.Fatalf("foreign key sees seq horizon %d", other.Seq())
	}
}

func TestSlotWritesChangeFixedPrefixOnly(t *testing.T) {
	// Every append must touch the same prefix of its slot and leave
	// the static tail alone, whatever the record carries — that is the
	// "one slot overwrite looks like any other" property.
	vol, dev := newVol(t, 4096, 64, 8)
	j, err := Open(vol, testKey())
	if err != nil {
		t.Fatal(err)
	}
	prefix := sealer.IVSize + maxArea
	before := make([]byte, 4096)
	after := make([]byte, 4096)
	appends := []func() error{
		func() error { return j.AppendDummy() },
		func() error { return j.AppendReloc(9, 10, 11) },
		func() error { return j.AppendAlloc(9, []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) },
		func() error { return j.AppendSave(9) },
	}
	for i, ap := range appends {
		slot := uint64(i) + 1 // ring slot i = volume block 1+i
		if err := dev.ReadBlock(slot, before); err != nil {
			t.Fatal(err)
		}
		if err := ap(); err != nil {
			t.Fatal(err)
		}
		if err := dev.ReadBlock(slot, after); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(before[:prefix], after[:prefix]) {
			t.Fatalf("append %d left the sealed prefix unchanged", i)
		}
		if !bytes.Equal(before[prefix:], after[prefix:]) {
			t.Fatalf("append %d disturbed the static tail", i)
		}
	}
}

func TestResolveNewestFirstWins(t *testing.T) {
	// Location 70 appears in two files' intents; the newer file's
	// header decides it.
	refs := map[uint64]map[uint64]bool{
		10: nil,                  // file 10: never saved
		20: {20: true, 70: true}, // file 20 owns 70
		30: {30: true, 31: true}, // file 30: reloc rolled back
	}
	resolve := func(fileH uint64) (map[uint64]bool, error) {
		r, ok := refs[fileH]
		if !ok || r == nil {
			return nil, stegfs.ErrNotFound
		}
		return r, nil
	}
	recs := []Record{
		{Seq: 1, Op: OpAlloc, FileH: 10, Locs: []uint64{70}},
		{Seq: 2, Op: OpAlloc, FileH: 20, Locs: []uint64{70}},
		{Seq: 3, Op: OpReloc, FileH: 30, OldLoc: 31, NewLoc: 32},
		{Seq: 4, Op: OpAlloc, FileH: 99, Locs: []uint64{80}},
	}
	res, err := Resolve(recs, func(fileH uint64) (map[uint64]bool, error) {
		if fileH == 99 {
			return nil, ErrNoKey
		}
		return resolve(fileH)
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[uint64]Verdict{}
	for _, v := range res.Verdicts {
		verdicts[v.Loc] = v
	}
	if v := verdicts[70]; !v.Used || v.Seq != 2 {
		t.Fatalf("loc 70 verdict %+v, want used by seq 2", v)
	}
	if v := verdicts[31]; !v.Used {
		t.Fatalf("rolled-back reloc old loc should stay used: %+v", v)
	}
	if v := verdicts[32]; v.Used {
		t.Fatalf("rolled-back reloc new loc should be free: %+v", v)
	}
	if res.Committed[3] {
		t.Fatal("reloc 3 reported committed; header references oldLoc")
	}
	if len(res.Unresolved) != 1 || res.Unresolved[0].FileH != 99 {
		t.Fatalf("unresolved %+v", res.Unresolved)
	}
}

func TestFsckReportsPending(t *testing.T) {
	vol, _ := newVol(t, 512, 128, 16)
	key := testKey()
	j, err := Open(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAlloc(40, []uint64{50}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSave(40); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendReloc(40, 50, 60); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendReloc(41, 51, 61); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSave(41); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 5 {
		t.Fatalf("fsck valid %d", rep.Valid)
	}
	if len(rep.Pending) != 1 || rep.Pending[0].Seq != 3 {
		t.Fatalf("pending %+v, want the uncovered reloc (seq 3)", rep.Pending)
	}
	if rep.Ok() {
		t.Fatal("dirty ring reported Ok")
	}
}

func TestReopenAfterTornAppendDoesNotReuseIV(t *testing.T) {
	// A torn append leaves its IV on disk while the resume sequence
	// stays put; the reopened journal must not replay that IV onto the
	// same slot (an unchanged-IV overwrite would prove the slot holds
	// keyed structure).
	vol, dev := newVol(t, 512, 128, 8)
	key := testKey()
	j, err := Open(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendReloc(10, 11, 12); err != nil {
		t.Fatal(err)
	}
	// Tear the slot (ring slot 0 = volume block 1): the IV survives,
	// the record body does not, so a rescan resumes at seq 1.
	raw := make([]byte, 512)
	if err := dev.ReadBlock(1, raw); err != nil {
		t.Fatal(err)
	}
	tornIV := append([]byte(nil), raw[:sealer.IVSize]...)
	copy(raw[sealer.IVSize+32:], bytes.Repeat([]byte{0xEE}, 64))
	if err := dev.WriteBlock(1, raw); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(vol, key)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 1 {
		t.Fatalf("resume seq %d, want 1 (torn record dropped)", j2.Seq())
	}
	if err := j2.AppendSave(99); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadBlock(1, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw[:sealer.IVSize], tornIV) {
		t.Fatal("re-append after a torn write reused the on-disk IV")
	}
}
