package experiments

import (
	"fmt"
	"io"
)

// Runner regenerates one table or figure.
type Runner func(Scale) (*Table, error)

// Experiment pairs an ID with its runner and the paper's claim.
type Experiment struct {
	ID    string
	Claim string
	Run   Runner
}

// All lists every reproduced experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig10a", "steg systems retrieve alike; CleanDisk ≪ steg; FragDisk between", Fig10a},
		{"fig10b", "baselines' sequential advantage vanishes by ~16 concurrent users", Fig10b},
		{"fig11a", "update cost of the hiding constructions grows as E=N/D; others flat", Fig11a},
		{"fig11b", "steg update cost linear in range; conventional roughly flat", Fig11b},
		{"fig11c", "concurrency erases the baselines' update advantage", Fig11c},
		{"table4", "height 7→3 and overhead 70→30 as the buffer grows 8→128 MB", Table4},
		{"fig12a", "oblivious reads cost 5–12× StegFS, improving with buffer size", Fig12a},
		{"fig12b", "sorting < 30% of access time despite its I/O count", Fig12b},
		{"eq1", "measured update overhead matches E = N/D", Eq1},
		{"security", "Definition 1: workload indistinguishable from dummy traffic", SecurityDef1},
		{"journal", "intent journal: ≤25% update overhead, stream still indistinguishable", JournalOverhead},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAndPrint executes the experiment and writes its table to w.
func (e Experiment) RunAndPrint(s Scale, w io.Writer) error {
	t, err := e.Run(s)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "# claim: %s\n", e.Claim)
	t.Print(w)
	return nil
}
