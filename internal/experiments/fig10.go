package experiments

import "fmt"

// Fig10a reproduces Figure 10(a): access time of retrieving a single
// file of 2–10 MB in a single-user environment, across the five
// systems. Expected shape: the three steganographic systems are
// nearly identical (random block placement); CleanDisk is far below
// them (sequential layout); FragDisk sits between.
func Fig10a(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10a",
		Title:   "Performance on data retrieval — sensitivity to file size (access time, seconds)",
		Columns: append([]string{"file size (MB)"}, SystemNames()...),
	}
	for _, blocks := range s.Fig10aFileBlocks {
		row := []any{fmt.Sprintf("%.1f", s.FileMB(blocks))}
		for _, name := range SystemNames() {
			sys, _, err := NewSystem(name, s, s.Seed)
			if err != nil {
				return nil, err
			}
			if err := sys.CreateFile("u0", "/target", blocks); err != nil {
				return nil, err
			}
			stream, err := sys.ScanStream("u0", "/target")
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(replaySolo(s, readStream(stream))))
		}
		t.AddRow(row...)
	}
	t.Note("steg systems read randomly placed blocks; CleanDisk streams a contiguous extent; FragDisk seeks once per %d-block fragment", 8)
	return t, nil
}

// Fig10b reproduces Figure 10(b): per-user access time retrieving an
// 8 MB file as the number of concurrent users grows. Expected shape:
// the baselines lose their sequential advantage as interleaving
// destroys locality; from ~16 users on, all five systems converge.
func Fig10b(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10b",
		Title:   "Performance on data retrieval — sensitivity to concurrency (mean access time, seconds)",
		Columns: append([]string{"concurrency"}, SystemNames()...),
	}
	maxUsers := 0
	for _, c := range s.Concurrency {
		if c > maxUsers {
			maxUsers = c
		}
	}
	// Build each system once with every user's file, then replay the
	// per-user streams at each concurrency level.
	streams := map[string][][]ioEvent{}
	for _, name := range SystemNames() {
		sys, _, err := NewSystem(name, s, s.Seed+1)
		if err != nil {
			return nil, err
		}
		var userStreams [][]ioEvent
		for u := 0; u < maxUsers; u++ {
			user := fmt.Sprintf("u%02d", u)
			if err := sys.CreateFile(user, "/data", s.Fig10bFileBlocks); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			stream, err := sys.ScanStream(user, "/data")
			if err != nil {
				return nil, err
			}
			userStreams = append(userStreams, readStream(stream))
		}
		streams[name] = userStreams
	}
	for _, c := range s.Concurrency {
		row := []any{c}
		for _, name := range SystemNames() {
			times := replayRoundRobin(s, streams[name][:c])
			row = append(row, seconds(meanDuration(times)))
		}
		t.AddRow(row...)
	}
	t.Note("per-user completion time under FCFS interleaving at the shared disk; file size %.1f MB", s.FileMB(s.Fig10bFileBlocks))
	return t, nil
}
