package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/diskmodel"
	"steghide/internal/oblivious"
	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// ObliPoint is one buffer-size point of the oblivious-storage sweep
// behind Table 4 and Figures 12(a)/(b).
type ObliPoint struct {
	Label           string        // buffer size at paper scale
	BufferSlots     int           // B
	Height          int           // k = log2(lastLevel/B)
	TheoryOverhead  float64       // 2k + 4k·(⌈log_B 2^k⌉ + 1), §5.2
	MeasuredIOs     float64       // observed I/Os per cached read
	ObliRead        time.Duration // mean cached-read time
	StegRead        time.Duration // mean direct StegFS read time
	Ratio           float64       // ObliRead / StegRead
	SortFraction    float64       // sorting share of access time
	RetrieveFrac    float64       // retrieving share of access time
	DistinctBlocks  int           // working set read through the store
	ShuffleSeqShare float64       // sequential share of shuffle I/O
}

// sweepCache memoizes RunObliSweep results: Table 4 and Figures
// 12(a)/(b) are three views of the same deterministic sweep, so one
// run serves all of them.
var sweepCache sync.Map // string key → []ObliPoint

// RunObliSweep runs the oblivious-storage experiment for every buffer
// size in the scale: populate a StegFS partition, warm the cache with
// every block, then read the whole working set again through the
// cache and measure per-read cost, I/O counts and the sort/retrieve
// time split.
func RunObliSweep(s Scale) ([]ObliPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%d/%d/%v/%d/%d", s.ObliLastLevelSlots, s.LayoutBlockSize,
		s.ObliBufferSlots, s.TimingBlockSize, s.Seed)
	if cached, ok := sweepCache.Load(key); ok {
		return cached.([]ObliPoint), nil
	}
	var out []ObliPoint
	for i, bufSlots := range s.ObliBufferSlots {
		p, err := runObliPoint(s, bufSlots, s.ObliBufferLabels[i])
		if err != nil {
			return nil, fmt.Errorf("buffer %s: %w", s.ObliBufferLabels[i], err)
		}
		out = append(out, *p)
	}
	sweepCache.Store(key, out)
	return out, nil
}

func runObliPoint(s Scale, bufSlots int, label string) (*ObliPoint, error) {
	last := s.ObliLastLevelSlots
	if last%uint64(bufSlots) != 0 {
		return nil, fmt.Errorf("experiments: last level %d not a multiple of buffer %d", last, bufSlots)
	}
	k := int(math.Round(math.Log2(float64(last) / float64(bufSlots))))
	if uint64(bufSlots)<<uint(k) != last {
		return nil, fmt.Errorf("experiments: last level / buffer not a power of two")
	}
	rng := prng.NewFromUint64(s.Seed + uint64(bufSlots))

	// StegFS partition with the working set. Distinct blocks = a
	// quarter of the last level: comfortably within cache capacity
	// (half the last level) even with shuffle-churn duplicates.
	distinct := int(last / 4)
	stegBlocks := uint64(distinct)*2 + 64
	stegDisk := diskmodel.MustNew(diskmodel.Params2004(stegBlocks, s.TimingBlockSize))
	stegDev := blockdev.NewSim(blockdev.NewMem(s.LayoutBlockSize, stegBlocks), stegDisk)
	vol, err := stegfs.Format(stegDev, stegfs.FormatOptions{KDFIterations: 4, FillSeed: rng.Bytes(16)})
	if err != nil {
		return nil, err
	}
	src := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc"))

	maxPerFile := int(vol.MaxFileBlocks())
	type filePart struct {
		f      *stegfs.File
		blocks int
	}
	var parts []filePart
	for left, ord := distinct, 0; left > 0; ord++ {
		n := min(left, maxPerFile)
		fak := stegfs.DeriveFAK("owner", fmt.Sprintf("/ws/%d", ord), vol)
		f, err := stegfs.CreateFile(vol, fak, fmt.Sprintf("/ws/%d", ord), src)
		if err != nil {
			return nil, err
		}
		if err := f.Resize(uint64(n)*uint64(vol.PayloadSize()), stegfs.InPlacePolicy{Vol: vol}); err != nil {
			return nil, err
		}
		if err := f.Save(); err != nil {
			return nil, err
		}
		parts = append(parts, filePart{f: f, blocks: n})
		left -= n
	}

	// Oblivious cache on its own partition; slot = payload + entry
	// metadata. Timing uses the 4 KB-class geometry.
	slotSize := s.LayoutBlockSize + 64
	footprint := oblivious.Footprint(bufSlots, k)
	cacheDisk := diskmodel.MustNew(diskmodel.Params2004(footprint, s.TimingBlockSize))
	cacheDev := blockdev.NewSim(blockdev.NewMem(slotSize, footprint), cacheDisk)
	store, err := oblivious.New(oblivious.Config{
		Dev:          cacheDev,
		Key:          sealer.DeriveKey(rng.Bytes(32), "session-cache"),
		BufferBlocks: bufSlots,
		Levels:       k,
		RNG:          rng.Child("store"),
		Clock:        cacheDisk.Now,
	})
	if err != nil {
		return nil, err
	}
	fs, err := oblivious.NewFS(store, vol, rng.Child("fs"))
	if err != nil {
		return nil, err
	}
	for ord, p := range parts {
		if err := fs.Register(uint64(ord), p.f); err != nil {
			return nil, err
		}
		_ = p
	}

	// Warm phase: pull every block into the cache (read_stegfs path).
	for ord, p := range parts {
		for li := 0; li < p.blocks; li++ {
			if _, err := fs.ReadBlock(uint64(ord), uint64(li)); err != nil {
				return nil, err
			}
		}
	}

	// Measure phase: read the whole working set again, in random
	// order, through the cache.
	type ref struct{ ord, li uint64 }
	refs := make([]ref, 0, distinct)
	for ord, p := range parts {
		for li := 0; li < p.blocks; li++ {
			refs = append(refs, ref{uint64(ord), uint64(li)})
		}
	}
	rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })

	store.ResetStats()
	cacheDisk.ResetStats()
	t0 := cacheDisk.Now()
	for _, r := range refs {
		if _, err := fs.ReadBlock(r.ord, r.li); err != nil {
			return nil, err
		}
	}
	elapsed := cacheDisk.Now() - t0
	st := store.Stats()
	cst := cacheDisk.Stats()
	if st.Misses > 0 {
		return nil, fmt.Errorf("experiments: %d unexpected cache misses in measure phase", st.Misses)
	}

	// Direct StegFS comparison: the same reads without the cache.
	stegDisk.ResetStats()
	d0 := stegDisk.Now()
	for _, r := range refs {
		if _, err := parts[r.ord].f.ReadBlockAt(r.li); err != nil {
			return nil, err
		}
	}
	stegElapsed := stegDisk.Now() - d0

	reads := float64(len(refs))
	theory := theoreticalOverhead(k, bufSlots)
	total := st.SortTime + st.RetrieveTime
	point := &ObliPoint{
		Label:          label,
		BufferSlots:    bufSlots,
		Height:         k,
		TheoryOverhead: theory,
		MeasuredIOs:    float64(st.LevelReads+st.ShuffleReads+st.ShuffleWrites) / reads,
		ObliRead:       elapsed / time.Duration(len(refs)),
		StegRead:       stegElapsed / time.Duration(len(refs)),
		DistinctBlocks: distinct,
	}
	if point.StegRead > 0 {
		point.Ratio = float64(point.ObliRead) / float64(point.StegRead)
	}
	if total > 0 {
		point.SortFraction = float64(st.SortTime) / float64(total)
		point.RetrieveFrac = float64(st.RetrieveTime) / float64(total)
	}
	if cst.Accesses > 0 {
		point.ShuffleSeqShare = float64(cst.Sequential) / float64(cst.Accesses)
	}
	return point, nil
}

// theoreticalOverhead is §5.2's per-read I/O cost 2k + 4k·(p+1),
// where p = ⌈log_B 2^k⌉ is the number of merge passes of the external
// sort (at least one). For the paper's geometries 2^k ≤ B, so p = 1
// and the factor is 10k — matching Table 4's 70…30.
func theoreticalOverhead(k, bufSlots int) float64 {
	passes := math.Ceil(math.Log(float64(uint64(1)<<uint(k))) / math.Log(float64(bufSlots)))
	if passes < 1 {
		passes = 1
	}
	return float64(2*k) + float64(4*k)*(passes+1)
}

// Table4 reproduces Table 4: oblivious-storage height and overhead
// factor vs buffer size.
func Table4(s Scale) (*Table, error) {
	points, err := RunObliSweep(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table4",
		Title:   "Overhead factor vs. buffer size",
		Columns: []string{"buffer size", "height", "overhead (analytic)", "I/Os per read (measured)"},
	}
	for _, p := range points {
		t.AddRow(p.Label, p.Height, fmt.Sprintf("%.0f", p.TheoryOverhead), fmt.Sprintf("%.1f", p.MeasuredIOs))
	}
	t.Note("analytic overhead is §5.2's 2k+4k(⌈log_B 2^k⌉+1); measured I/Os amortize the shuffle passes")
	return t, nil
}

// Fig12a reproduces Figure 12(a): mean per-block access time of the
// oblivious storage vs direct StegFS, across buffer sizes. The paper
// reports 5–12× (better than the analytic factor, thanks to the
// sort's sequential I/O).
func Fig12a(s Scale) (*Table, error) {
	points, err := RunObliSweep(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12a",
		Title:   "Oblivious storage — access time vs. buffer size (seconds per block)",
		Columns: []string{"buffer size", "Obli-Store", "StegFS", "ratio"},
	}
	for _, p := range points {
		t.AddRow(p.Label,
			fmt.Sprintf("%.4f", p.ObliRead.Seconds()),
			fmt.Sprintf("%.4f", p.StegRead.Seconds()),
			fmt.Sprintf("%.1fx", p.Ratio))
	}
	t.Note("working set: %d blocks read through the cache after warm-up", points[0].DistinctBlocks)
	return t, nil
}

// Fig12b reproduces Figure 12(b): the split of the oblivious
// storage's access time into retrieving and sorting overhead. The
// paper measures sorting below 30% despite its larger I/O count,
// because the external sort's I/O is mostly sequential.
func Fig12b(s Scale) (*Table, error) {
	points, err := RunObliSweep(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12b",
		Title:   "Oblivious storage — proportion of access time",
		Columns: []string{"buffer size", "retrieving overhead", "sorting overhead", "sequential share of sort I/O"},
	}
	for _, p := range points {
		t.AddRow(p.Label,
			fmt.Sprintf("%.0f%%", p.RetrieveFrac*100),
			fmt.Sprintf("%.0f%%", p.SortFraction*100),
			fmt.Sprintf("%.0f%%", p.ShuffleSeqShare*100))
	}
	return t, nil
}
