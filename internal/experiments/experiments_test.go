package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleValidation(t *testing.T) {
	for _, s := range []Scale{PaperScale(), QuickScale()} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := QuickScale()
	bad.LayoutBlockSize = 128
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny layout blocks accepted")
	}
	bad = QuickScale()
	bad.ObliBufferLabels = bad.ObliBufferLabels[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("label/buffer mismatch accepted")
	}
	bad = QuickScale()
	bad.Fig10aFileBlocks = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty file sizes accepted")
	}
}

func TestFileMB(t *testing.T) {
	s := PaperScale()
	if got := s.FileMB(2560); got != 10.0 {
		t.Fatalf("2560 blocks at 4K = %v MB, want 10", got)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"col", "value"},
	}
	tab.AddRow("a", 1.5)
	tab.AddRow("bbbb", 7)
	tab.AddRow("c", uint64(9))
	tab.Note("footnote %d", 1)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x — demo ==", "col", "bbbb", "1.500", "note: footnote 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestLookupAndAll(t *testing.T) {
	if len(All()) != 11 {
		t.Fatalf("expected 11 experiments, have %d", len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := Lookup(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("lookup %s: %v", e.ID, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestSystemsContract(t *testing.T) {
	// Every system must create, scan and update through the uniform
	// interface, and its scan stream must stay within the device.
	s := QuickScale()
	for _, name := range SystemNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, col, err := NewSystem(name, s, 11)
			if err != nil {
				t.Fatal(err)
			}
			if sys.Name() != name {
				t.Fatalf("Name = %q", sys.Name())
			}
			if err := sys.CreateFile("u00", "/t", 40); err != nil {
				t.Fatal(err)
			}
			stream, err := sys.ScanStream("u00", "/t")
			if err != nil {
				t.Fatal(err)
			}
			if len(stream) < 40 {
				t.Fatalf("scan stream of %d blocks for a 40-block file", len(stream))
			}
			for _, b := range stream {
				if b >= sys.Device().NumBlocks() {
					t.Fatalf("stream block %d beyond device", b)
				}
			}
			col.Reset()
			if err := sys.Update("u00", "/t", 3, 2); err != nil {
				t.Fatal(err)
			}
			if col.Len() == 0 {
				t.Fatal("update produced no observable I/O")
			}
			// Scanning a missing file fails.
			if _, err := sys.ScanStream("u00", "/missing"); err == nil {
				t.Fatal("missing file scanned")
			}
		})
	}
	if _, _, err := NewSystem("NoSuchSystem", s, 1); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestReplayRoundRobinDeterministic(t *testing.T) {
	s := QuickScale()
	streams := [][]ioEvent{
		readStream([]uint64{1, 2, 3, 100, 101}),
		readStream([]uint64{500, 501, 502}),
	}
	a := replayRoundRobin(s, streams)
	b := replayRoundRobin(s, streams)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay not deterministic")
		}
	}
	if a[1] >= a[0] {
		// Stream 1 is shorter; it must finish no later than stream 0
		// under round-robin.
		t.Fatalf("completion times out of order: %v", a)
	}
	if meanDuration(nil) != 0 {
		t.Fatal("mean of empty set")
	}
}

func TestSetupForUpdatesUtilization(t *testing.T) {
	// The bitmap systems must land near the requested utilization.
	s := QuickScale()
	sys, _, err := setupForUpdates(nameStegHideStar, s, 1, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1 := sys.(*c1Sys)
	src := c1.Agent().Source()
	first, n := src.SpaceBounds()
	span := n - first
	util := float64(span-src.FreeCount()) / float64(span)
	if util < 0.39 || util > 0.45 {
		t.Fatalf("utilization %.3f, want ≈0.40", util)
	}
	if _, _, err := setupForUpdates(nameStegFS, s, 1, 0, 3); err == nil {
		t.Fatal("zero utilization accepted")
	}
	if _, _, err := setupForUpdates(nameStegFS, s, 1, 0.99, 3); err == nil {
		t.Fatal("out-of-range utilization accepted")
	}
}
