package experiments

import (
	"fmt"

	"steghide/internal/baseline"
	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
	"steghide/internal/workload"
)

// System is the uniform surface the figure runners drive. The five
// implementations are the five rows of Table 3.
type System interface {
	// Name returns the Table 3 indicator.
	Name() string
	// CreateFile materializes a file of the given block count for the
	// named user.
	CreateFile(user, name string, blocks uint64) error
	// ScanStream returns the physical block sequence a whole-file read
	// issues, including open overhead (header probes, pointer blocks).
	ScanStream(user, name string) ([]uint64, error)
	// Update rewrites `blocks` consecutive logical blocks at block
	// offset off. The I/O lands on the system's device.
	Update(user, name string, off uint64, blocks int) error
	// Device returns the device the system runs on, for tracing.
	Device() blockdev.Device
}

const (
	nameStegHide     = "StegHide"  // Construction 2: volatile agent
	nameStegHideStar = "StegHide*" // Construction 1: non-volatile agent
	nameStegFS       = "StegFS"    // the 2003 system: in-place updates
	nameFragDisk     = "FragDisk"  // fragmented conventional FS
	nameCleanDisk    = "CleanDisk" // fresh conventional FS
)

// SystemNames lists all five systems in the paper's legend order.
func SystemNames() []string {
	return []string{nameStegHide, nameStegHideStar, nameStegFS, nameFragDisk, nameCleanDisk}
}

// NewSystem builds the named system on a fresh in-memory device of
// the scale's layout geometry. All of the system's I/O flows through
// the returned collector, which the concurrency runners use to build
// replayable per-user traces.
func NewSystem(name string, s Scale, seed uint64) (System, *blockdev.Collector, error) {
	col := &blockdev.Collector{}
	dev := blockdev.NewTraced(blockdev.NewMem(s.LayoutBlockSize, s.VolumeBlocks), col)
	rng := prng.NewFromUint64(seed)
	switch name {
	case nameCleanDisk:
		return &cleanSys{dev: dev, store: baseline.NewCleanDisk(dev)}, col, nil
	case nameFragDisk:
		return &fragSys{dev: dev, store: baseline.NewFragDisk(dev, rng.Child("frag"))}, col, nil
	case nameStegFS, nameStegHideStar:
		vol, err := stegfs.Format(dev, stegfs.FormatOptions{
			KDFIterations: 4, FillSeed: rng.Bytes(16), JournalBlocks: s.journalRing()})
		if err != nil {
			return nil, nil, err
		}
		if name == nameStegFS {
			return &stegfsSys{
				dev:   dev,
				vol:   vol,
				src:   stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc")),
				files: map[string]*stegfs.File{},
			}, col, nil
		}
		agent, err := steghide.NewNonVolatile(vol, rng.Bytes(32), rng.Child("agent"))
		if err != nil {
			return nil, nil, err
		}
		if s.Journal {
			if err := agent.EnableJournal(); err != nil {
				return nil, nil, err
			}
		}
		return &c1Sys{dev: dev, agent: agent}, col, nil
	case nameStegHide:
		vol, err := stegfs.Format(dev, stegfs.FormatOptions{
			KDFIterations: 4, FillSeed: rng.Bytes(16), JournalBlocks: s.journalRing()})
		if err != nil {
			return nil, nil, err
		}
		agent := steghide.NewVolatile(vol, rng.Child("agent"))
		if s.Journal {
			if err := agent.EnableJournal(steghide.JournalKey(vol, "benchrunner-admin")); err != nil {
				return nil, nil, err
			}
		}
		return &c2Sys{
			dev:      dev,
			agent:    agent,
			sessions: map[string]*steghide.Session{},
		}, col, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown system %q", name)
	}
}

// payloadFor builds deterministic content for a file of n blocks.
func payloadFor(name string, blocks uint64, payload int) []byte {
	return workload.Content(name, int(blocks)*payload)
}

// --- CleanDisk --------------------------------------------------------

type cleanSys struct {
	dev   blockdev.Device
	store *baseline.CleanDisk
}

func (c *cleanSys) Name() string            { return nameCleanDisk }
func (c *cleanSys) Device() blockdev.Device { return c.dev }

func (c *cleanSys) CreateFile(user, name string, blocks uint64) error {
	return c.store.Write(user+name, payloadFor(name, blocks, c.store.BlockPayload()))
}

func (c *cleanSys) ScanStream(user, name string) ([]uint64, error) {
	return c.store.FileBlocks(user + name)
}

func (c *cleanSys) Update(user, name string, off uint64, blocks int) error {
	return c.store.UpdateBlocks(user+name, off, make([]byte, blocks*c.store.BlockPayload()))
}

// --- FragDisk ---------------------------------------------------------

type fragSys struct {
	dev   blockdev.Device
	store *baseline.FragDisk
}

func (f *fragSys) Name() string            { return nameFragDisk }
func (f *fragSys) Device() blockdev.Device { return f.dev }

func (f *fragSys) CreateFile(user, name string, blocks uint64) error {
	return f.store.Write(user+name, payloadFor(name, blocks, f.store.BlockPayload()))
}

func (f *fragSys) ScanStream(user, name string) ([]uint64, error) {
	return f.store.FileBlocks(user + name)
}

func (f *fragSys) Update(user, name string, off uint64, blocks int) error {
	return f.store.UpdateBlocks(user+name, off, make([]byte, blocks*f.store.BlockPayload()))
}

// --- StegFS (2003 baseline: hidden, but in-place updates) -------------

type stegfsSys struct {
	dev   blockdev.Device
	vol   *stegfs.Volume
	src   *stegfs.BitmapSource
	files map[string]*stegfs.File
}

func (s *stegfsSys) Name() string            { return nameStegFS }
func (s *stegfsSys) Device() blockdev.Device { return s.dev }

func (s *stegfsSys) CreateFile(user, name string, blocks uint64) error {
	fak := stegfs.DeriveFAK(user, name, s.vol)
	f, err := stegfs.CreateFile(s.vol, fak, name, s.src)
	if err != nil {
		return err
	}
	data := payloadFor(name, blocks, s.vol.PayloadSize())
	if _, err := f.WriteAt(data, 0, stegfs.InPlacePolicy{Vol: s.vol}); err != nil {
		return err
	}
	if err := f.Save(); err != nil {
		return err
	}
	s.files[user+name] = f
	return nil
}

func stegScan(f *stegfs.File) []uint64 {
	stream := []uint64{f.HeaderLoc()}
	stream = append(stream, f.IndirectLocs()...)
	return append(stream, f.BlockLocs()...)
}

func (s *stegfsSys) ScanStream(user, name string) ([]uint64, error) {
	f, ok := s.files[user+name]
	if !ok {
		return nil, fmt.Errorf("experiments: %s%s not created", user, name)
	}
	return stegScan(f), nil
}

func (s *stegfsSys) Update(user, name string, off uint64, blocks int) error {
	f, ok := s.files[user+name]
	if !ok {
		return fmt.Errorf("experiments: %s%s not created", user, name)
	}
	data := make([]byte, blocks*s.vol.PayloadSize())
	_, err := f.WriteAt(data, off*uint64(s.vol.PayloadSize()), stegfs.InPlacePolicy{Vol: s.vol})
	return err
}

// Source exposes the allocator, so runners can sweep utilization the
// way the paper's simulation does (random bitmap fill).
func (s *stegfsSys) Source() *stegfs.BitmapSource { return s.src }

// --- StegHide* (Construction 1) ----------------------------------------

type c1Sys struct {
	dev   blockdev.Device
	agent *steghide.NonVolatileAgent
}

func (c *c1Sys) Name() string            { return nameStegHideStar }
func (c *c1Sys) Device() blockdev.Device { return c.dev }

// Agent exposes the agent for utilization sweeps and dummy updates.
func (c *c1Sys) Agent() *steghide.NonVolatileAgent { return c.agent }

func (c *c1Sys) CreateFile(user, name string, blocks uint64) error {
	path := user + name // the agent's namespace is volume-wide
	if _, err := c.agent.Create(user, path); err != nil {
		return err
	}
	data := payloadFor(name, blocks, c.agent.Vol().PayloadSize())
	if err := c.agent.Write(path, data, 0); err != nil {
		return err
	}
	return c.agent.Sync(path)
}

func (c *c1Sys) ScanStream(user, name string) ([]uint64, error) {
	f, err := c.agent.Open(user, user+name)
	if err != nil {
		return nil, err
	}
	return stegScan(f), nil
}

func (c *c1Sys) Update(user, name string, off uint64, blocks int) error {
	ps := c.agent.Vol().PayloadSize()
	return c.agent.Write(user+name, make([]byte, blocks*ps), off*uint64(ps))
}

// --- StegHide (Construction 2) ------------------------------------------

type c2Sys struct {
	dev      blockdev.Device
	agent    *steghide.VolatileAgent
	sessions map[string]*steghide.Session
	dummies  uint64 // dummy blocks created per user at first login
}

func (c *c2Sys) Name() string            { return nameStegHide }
func (c *c2Sys) Device() blockdev.Device { return c.dev }

// Agent exposes the agent for dummy-update traffic.
func (c *c2Sys) Agent() *steghide.VolatileAgent { return c.agent }

func (c *c2Sys) session(user string) (*steghide.Session, error) {
	if s, ok := c.sessions[user]; ok {
		return s, nil
	}
	s, err := c.agent.LoginWithPassphrase(user, "pw-"+user)
	if err != nil {
		return nil, err
	}
	c.sessions[user] = s
	return s, nil
}

// SetDummyBlocks fixes the dummy cover materialized per created file
// — the knob behind the utilization sweep of Fig. 11a. Zero selects
// automatic sizing: twice the file plus slack, since growing the file
// consumes dummy blocks one for one.
func (c *c2Sys) SetDummyBlocks(n uint64) { c.dummies = n }

func (c *c2Sys) CreateFile(user, name string, blocks uint64) error {
	s, err := c.session(user)
	if err != nil {
		return err
	}
	cover := c.dummies
	if cover == 0 {
		cover = blocks*2 + 32
	}
	// Dummy files are capped by the block map like any file; large
	// cover is split across several (the paper sizes dummy files
	// "approximately the size of data files").
	maxPer := c.agent.Vol().MaxFileBlocks() * 3 / 4
	for i := 0; cover > 0; i++ {
		n := cover
		if n > maxPer {
			n = maxPer
		}
		path := fmt.Sprintf("/dummy-%s%s-%d", user, name, i)
		if _, err := s.CreateDummy(path, n); err != nil {
			return err
		}
		cover -= n
	}
	if _, err := s.Create(name); err != nil {
		return err
	}
	data := payloadFor(name, blocks, c.agent.Vol().PayloadSize())
	if err := s.Write(name, data, 0); err != nil {
		return err
	}
	return s.Save(name)
}

func (c *c2Sys) ScanStream(user, name string) ([]uint64, error) {
	s, err := c.session(user)
	if err != nil {
		return nil, err
	}
	f, err := s.Disclose(name)
	if err != nil {
		return nil, err
	}
	return stegScan(f), nil
}

func (c *c2Sys) Update(user, name string, off uint64, blocks int) error {
	s, err := c.session(user)
	if err != nil {
		return err
	}
	ps := c.agent.Vol().PayloadSize()
	return s.Write(name, make([]byte, blocks*ps), off*uint64(ps))
}
