package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure, as rows of formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
