package experiments

import (
	"fmt"

	"steghide/internal/attack"
	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/workload"
)

// SecurityDef1 operationalizes Definition 1 (§3.2.4): for each
// steganographic system, compare the block-address distribution of
// the update stream under a pathological workload (P_X|Y) against
// pure dummy traffic (P_X|∅). The constructions must be
// indistinguishable; plain StegFS — which has no dummy traffic and
// updates in place — is flagged immediately.
func SecurityDef1(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "security",
		Title:   "Definition 1 — can an update-analysis attacker tell workload from idle?",
		Columns: []string{"system", "p-value", "attacker verdict", "evidence"},
	}

	for _, name := range []string{nameStegHide, nameStegHideStar, nameStegFS} {
		sys, col, err := setupForUpdates(name, s, 1, 0.25, s.Seed+6)
		if err != nil {
			return nil, err
		}

		writesOf := func(events []blockdev.Event) []uint64 {
			var out []uint64
			for _, e := range blockdev.ExpandEvents(events) {
				if e.Op == blockdev.OpWrite {
					out = append(out, e.Block)
				}
			}
			return out
		}

		// Idle period: dummy updates only. StegFS has no dummy
		// mechanism — its idle stream is empty, so the attacker
		// compares the workload against uniform noise instead.
		col.Reset()
		var idle []uint64
		switch v := sys.(type) {
		case *c1Sys:
			for i := 0; i < s.SecurityOps*2; i++ {
				if err := v.Agent().DummyUpdate(); err != nil {
					return nil, err
				}
			}
			idle = writesOf(col.Events())
		case *c2Sys:
			for i := 0; i < s.SecurityOps*2; i++ {
				if err := v.Agent().DummyUpdate(); err != nil {
					return nil, err
				}
			}
			idle = writesOf(col.Events())
		case *stegfsSys:
			// Uniform reference stream over the steg space.
			rng := prng.NewFromUint64(s.Seed + 7)
			first, n := v.Source().SpaceBounds()
			for i := 0; i < s.SecurityOps*2; i++ {
				idle = append(idle, first+rng.Uint64n(n-first))
			}
		}

		// Active period: hammer one logical block — the most regular
		// workload an application could produce.
		col.Reset()
		ops, err := workload.Updates(prng.NewFromUint64(s.Seed+8),
			[]workload.FileSpec{{Name: "/target", Blocks: s.UpdateFileBlocks}}, s.SecurityOps, 1)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			op.Off = 0 // fixed hot block
			if err := sys.Update("u00", op.Name, op.Off, op.Blocks); err != nil {
				return nil, err
			}
		}
		active := writesOf(col.Events())

		verdict, err := attack.CompareStreams(idle, active, s.VolumeBlocks, 12)
		if err != nil {
			return nil, err
		}
		decision := "cannot distinguish"
		if verdict.Detected {
			decision = "HIDDEN ACTIVITY DETECTED"
		}
		t.AddRow(name, fmt.Sprintf("%.4f", verdict.PValue), decision, verdict.Evidence)
	}
	t.Note("workload: %d updates of one fixed logical block; idle: dummy traffic (uniform reference for StegFS)", s.SecurityOps)
	return t, nil
}

// Eq1 verifies §4.1.5's expected update overhead E = N/D across
// utilizations: the measured draws per Figure-6 update must match the
// analytic value.
func Eq1(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "eq1",
		Title:   "Expected update overhead E = N/D vs. measured (Construction 1)",
		Columns: []string{"utilization", "analytic N/D", "measured E", "relative error"},
	}
	for _, util := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		sys, _, err := setupForUpdates(nameStegHideStar, s, 1, util, s.Seed+9)
		if err != nil {
			return nil, err
		}
		c1 := sys.(*c1Sys)
		src := c1.Agent().Source()
		first, n := src.SpaceBounds()
		span := n - first
		d := src.FreeCount()
		analytic := float64(span) / float64(d)

		c1.Agent().ResetStats()
		rng := prng.NewFromUint64(s.Seed + 10)
		for i := 0; i < s.UpdatesPerPoint; i++ {
			off := rng.Uint64n(s.UpdateFileBlocks)
			if err := sys.Update("u00", "/target", off, 1); err != nil {
				return nil, err
			}
		}
		measured := c1.Agent().Stats().ExpectedOverhead()
		relErr := 0.0
		if analytic > 0 {
			relErr = (measured - analytic) / analytic
		}
		t.AddRow(fmt.Sprintf("%.2f", util),
			fmt.Sprintf("%.3f", analytic),
			fmt.Sprintf("%.3f", measured),
			fmt.Sprintf("%+.1f%%", relErr*100))
	}
	t.Note("each Figure-6 iteration costs one read and one write; E counts iterations per update")
	return t, nil
}
