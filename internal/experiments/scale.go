// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each experiment returns a Table whose rows
// mirror the series the paper plots; cmd/benchrunner prints them and
// the top-level benchmarks wrap them in testing.B.
//
// Methodology. The paper's numbers come from a 2004 disk; ours come
// from internal/diskmodel. To keep the paper's axes without paying
// gigabytes of RAM, layouts are built on devices with a small
// byte-per-block footprint (LayoutBlockSize) while all timing uses the
// paper's geometry: the same number of blocks, but costed as
// TimingBlockSize-sized transfers on the 2004 drive model. Block
// addresses are what drive seek behaviour, and they are identical in
// both views, so every figure's shape — and, to first order, its
// absolute values — carries over.
package experiments

import "fmt"

// Scale fixes the geometry of an experiment run. The zero value is
// unusable; use PaperScale or QuickScale.
type Scale struct {
	// LayoutBlockSize is the bytes-per-block of the in-memory volumes
	// the systems actually run on (content correctness is exercised in
	// the unit tests; experiments only need layout + I/O streams).
	LayoutBlockSize int
	// TimingBlockSize is the block size the disk model charges for —
	// 4 KB in the paper (Table 2).
	TimingBlockSize int
	// VolumeBlocks is the number of blocks in the volume — the paper's
	// 1 GB at 4 KB blocks is 262144 (Table 2).
	VolumeBlocks uint64
	// Fig10aFileBlocks are the file sizes (in blocks) of Fig. 10a —
	// the paper sweeps 2..10 MB.
	Fig10aFileBlocks []uint64
	// Fig10bFileBlocks is the per-user file size of Fig. 10b (8 MB).
	Fig10bFileBlocks uint64
	// Concurrency is the user counts of Figs. 10b and 11c.
	Concurrency []int
	// UpdateFileBlocks is the file size updates are applied to in
	// Fig. 11.
	UpdateFileBlocks uint64
	// UpdatesPerPoint is the number of update ops averaged per point.
	UpdatesPerPoint int
	// ObliLastLevelSlots is the slot count of the oblivious storage's
	// last level — 1 GB at 4 KB in the paper (Table 4 / Fig. 12).
	ObliLastLevelSlots uint64
	// ObliBufferSlots are the buffer sizes swept in Table 4 / Fig. 12
	// — 8..128 MB in the paper.
	ObliBufferSlots []int
	// ObliBufferLabels annotate the buffer sizes (paper-scale MB).
	ObliBufferLabels []string
	// SecurityOps is the number of update ops per stream in the
	// Definition-1 experiment.
	SecurityOps int
	// Journal, when set (benchrunner -journal), runs the steg systems
	// with the sealed intent journal enabled: every volume reserves a
	// ring of VolumeBlocks/32 slots and the agents log every stream
	// element. Off by default, keeping historical outputs bit-identical.
	Journal bool
	// Seed drives all randomness.
	Seed uint64
}

// PaperScale reproduces the paper's geometry: 1 GB volume of 4 KB
// blocks, 2–10 MB files, 8 MB files for concurrency, oblivious
// storage with a 1 GB last level and 8–128 MB buffers. Memory
// footprint stays modest because layout devices use 512-byte blocks.
func PaperScale() Scale {
	return Scale{
		LayoutBlockSize:    512,
		TimingBlockSize:    4096,
		VolumeBlocks:       1 << 18, // 262144 × 4 KB = 1 GB
		Fig10aFileBlocks:   []uint64{512, 1024, 1536, 2048, 2560},
		Fig10bFileBlocks:   2048,
		Concurrency:        []int{1, 2, 4, 8, 16, 32},
		UpdateFileBlocks:   64,
		UpdatesPerPoint:    300,
		ObliLastLevelSlots: 1 << 15, // scaled last level; heights match via buffer ratios
		ObliBufferSlots:    []int{256, 512, 1024, 2048, 4096},
		ObliBufferLabels:   []string{"8M", "16M", "32M", "64M", "128M"},
		SecurityOps:        1500,
		Seed:               20040330, // the paper's first day at ICDE
	}
}

// QuickScale is a miniature geometry for tests and -bench runs: same
// ratios (N/B, utilization, fragment size, level heights), two orders
// of magnitude fewer blocks.
func QuickScale() Scale {
	return Scale{
		LayoutBlockSize:    512,
		TimingBlockSize:    4096,
		VolumeBlocks:       1 << 13, // 8192 blocks
		Fig10aFileBlocks:   []uint64{64, 128, 192, 256, 320},
		Fig10bFileBlocks:   128,
		Concurrency:        []int{1, 2, 4, 8},
		UpdateFileBlocks:   32,
		UpdatesPerPoint:    60,
		ObliLastLevelSlots: 1 << 11, // 2048 slots
		ObliBufferSlots:    []int{16, 32, 64, 128, 256},
		ObliBufferLabels:   []string{"8M", "16M", "32M", "64M", "128M"},
		SecurityOps:        400,
		Seed:               7,
	}
}

// Validate reports whether the scale is internally consistent.
func (s Scale) Validate() error {
	if s.LayoutBlockSize < 512 {
		return fmt.Errorf("experiments: layout blocks of %d bytes cannot hold the block maps", s.LayoutBlockSize)
	}
	if s.TimingBlockSize <= 0 || s.VolumeBlocks == 0 {
		return fmt.Errorf("experiments: timing geometry unset")
	}
	if len(s.Fig10aFileBlocks) == 0 || s.Fig10bFileBlocks == 0 {
		return fmt.Errorf("experiments: file sizes unset")
	}
	if len(s.ObliBufferSlots) != len(s.ObliBufferLabels) {
		return fmt.Errorf("experiments: %d buffer sizes but %d labels", len(s.ObliBufferSlots), len(s.ObliBufferLabels))
	}
	return nil
}

// FileMB renders a block count as megabytes at timing scale.
func (s Scale) FileMB(blocks uint64) float64 {
	return float64(blocks) * float64(s.TimingBlockSize) / (1 << 20)
}

// journalRing returns the ring size layout volumes reserve when the
// journal toggle is on (0 otherwise).
func (s Scale) journalRing() uint64 {
	if !s.Journal {
		return 0
	}
	return s.VolumeBlocks / 32
}
