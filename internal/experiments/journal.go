package experiments

import (
	"fmt"
	"time"

	"steghide/internal/attack"
	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
	"steghide/internal/steghide"
)

// journalBS is the block size the journaling-overhead experiment runs
// at — the paper's 4 KB (Table 2). The ring cost is dominated by the
// sealed record prefix, a fixed 256+16 bytes, so the relative
// overhead depends on the block size; measuring at the deployment
// size is the honest number.
const journalBS = 4096

// journalVolBlocks bounds the rig volume (64 MB at 4 KB blocks): the
// journal's cost is per-operation, and larger slabs only add memory
// noise (cache and TLB misses) that buries the signal being measured.
func journalVolBlocks(s Scale) uint64 {
	n := s.VolumeBlocks / 2
	if n > 1<<14 {
		n = 1 << 14
	}
	return n
}

// journalRunner drives one construction for the overhead measurement.
type journalRunner struct {
	update func(off uint64) error
	sync   func() error
	dummy  func() error
}

// buildJournalC1 builds a Construction-1 rig, journaled or not.
func buildJournalC1(s Scale, journaled bool, seed uint64) (*journalRunner, *stegfs.Volume, *blockdev.Collector, error) {
	col := &blockdev.Collector{}
	var ring uint64
	if journaled {
		ring = 256
	}
	dev := blockdev.NewTraced(blockdev.NewMem(journalBS, journalVolBlocks(s)+ring), col)
	rng := prng.NewFromUint64(seed)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{
		KDFIterations: 4, FillSeed: rng.Bytes(16), JournalBlocks: ring,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	agent, err := steghide.NewNonVolatile(vol, rng.Bytes(32), rng.Child("agent"))
	if err != nil {
		return nil, nil, nil, err
	}
	if journaled {
		if err := agent.EnableJournal(); err != nil {
			return nil, nil, nil, err
		}
	}
	if _, err := agent.Create("u", "/target"); err != nil {
		return nil, nil, nil, err
	}
	content := make([]byte, s.UpdateFileBlocks*uint64(vol.PayloadSize()))
	if err := agent.Write("/target", content, 0); err != nil {
		return nil, nil, nil, err
	}
	if err := agent.Sync("/target"); err != nil {
		return nil, nil, nil, err
	}
	ps := uint64(vol.PayloadSize())
	chunk := make([]byte, ps)
	return &journalRunner{
		update: func(off uint64) error { return agent.Write("/target", chunk, off*ps) },
		sync:   func() error { return agent.Sync("/target") },
		dummy:  agent.DummyUpdate,
	}, vol, col, nil
}

// buildJournalC2 builds a Construction-2 rig, journaled or not.
func buildJournalC2(s Scale, journaled bool, seed uint64) (*journalRunner, *stegfs.Volume, *blockdev.Collector, error) {
	col := &blockdev.Collector{}
	var ring uint64
	if journaled {
		ring = 256
	}
	dev := blockdev.NewTraced(blockdev.NewMem(journalBS, journalVolBlocks(s)+ring), col)
	rng := prng.NewFromUint64(seed)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{
		KDFIterations: 4, FillSeed: rng.Bytes(16), JournalBlocks: ring,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	agent := steghide.NewVolatile(vol, rng.Child("agent"))
	if journaled {
		if err := agent.EnableJournal(steghide.JournalKey(vol, "benchrunner-admin")); err != nil {
			return nil, nil, nil, err
		}
	}
	sess, err := agent.LoginWithPassphrase("u", "u-pass")
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := sess.CreateDummy("/cover", 4*s.UpdateFileBlocks+64); err != nil {
		return nil, nil, nil, err
	}
	if _, err := sess.Create("/target"); err != nil {
		return nil, nil, nil, err
	}
	content := make([]byte, s.UpdateFileBlocks*uint64(vol.PayloadSize()))
	if err := sess.Write("/target", content, 0); err != nil {
		return nil, nil, nil, err
	}
	if err := sess.Save("/target"); err != nil {
		return nil, nil, nil, err
	}
	ps := uint64(vol.PayloadSize())
	chunk := make([]byte, ps)
	return &journalRunner{
		update: func(off uint64) error { return sess.Write("/target", chunk, off*ps) },
		sync:   func() error { return sess.Save("/target") },
		dummy:  agent.DummyUpdate,
	}, vol, col, nil
}

// measureJournal times M random single-block updates (saving every 64
// so relocation limbo drains the way a live system's sync cadence
// would) and returns updates/second plus device writes per update.
// Three rounds, best rate: single-shot wall timing on a shared box is
// dominated by scheduling noise.
func measureJournal(r *journalRunner, col *blockdev.Collector, s Scale, updates int, seed uint64) (float64, float64, error) {
	best := 0.0
	writes := 0
	for round := 0; round < 3; round++ {
		rng := prng.NewFromUint64(seed + uint64(round))
		col.Reset()
		start := time.Now()
		for i := 0; i < updates; i++ {
			if err := r.update(rng.Uint64n(s.UpdateFileBlocks)); err != nil {
				return 0, 0, err
			}
			if (i+1)%64 == 0 {
				if err := r.sync(); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := r.sync(); err != nil {
			return 0, 0, err
		}
		if rate := float64(updates) / time.Since(start).Seconds(); rate > best {
			best = rate
			// Report the write count from the round the rate comes
			// from, so the two columns describe one measurement.
			writes = 0
			for _, e := range blockdev.ExpandEvents(col.Events()) {
				if e.Op == blockdev.OpWrite {
					writes++
				}
			}
		}
	}
	return best, float64(writes) / float64(updates), nil
}

// JournalOverhead measures what the sealed intent journal costs the
// update path — throughput and device writes per update, journaling
// off vs on — and re-runs the Definition-1 comparison with journaling
// enabled, ring traffic included in the observed stream.
func JournalOverhead(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "journal",
		Title: "Intent journal: durability overhead and stream indistinguishability",
		Columns: []string{"system", "upd/s plain", "upd/s journaled", "overhead",
			"writes/upd plain", "writes/upd journaled", "Def-1 p", "attacker verdict"},
	}
	updates := s.UpdatesPerPoint * 3
	type builder func(Scale, bool, uint64) (*journalRunner, *stegfs.Volume, *blockdev.Collector, error)
	for _, sys := range []struct {
		name  string
		build builder
	}{{nameStegHide, buildJournalC2}, {nameStegHideStar, buildJournalC1}} {
		plain, _, colP, err := sys.build(s, false, s.Seed+21)
		if err != nil {
			return nil, err
		}
		upsPlain, wpuPlain, err := measureJournal(plain, colP, s, updates, s.Seed+22)
		if err != nil {
			return nil, err
		}
		journaled, vol, colJ, err := sys.build(s, true, s.Seed+21)
		if err != nil {
			return nil, err
		}
		upsJ, wpuJ, err := measureJournal(journaled, colJ, s, updates, s.Seed+22)
		if err != nil {
			return nil, err
		}

		// Definition 1 with the ring in the observed stream: idle
		// (dummy-only) vs active write-address distributions.
		writesOf := func() []uint64 {
			var out []uint64
			for _, e := range blockdev.ExpandEvents(colJ.Events()) {
				if e.Op == blockdev.OpWrite && e.Block >= 1 {
					out = append(out, e.Block)
				}
			}
			return out
		}
		colJ.Reset()
		for i := 0; i < updates; i++ {
			if err := journaled.dummy(); err != nil {
				return nil, err
			}
		}
		idle := writesOf()
		colJ.Reset()
		rng := prng.NewFromUint64(s.Seed + 23)
		for i := 0; i < updates; i++ {
			if err := journaled.update(rng.Uint64n(s.UpdateFileBlocks)); err != nil {
				return nil, err
			}
			// The same sync cadence a live system runs: it drains the
			// relocation limbo, and its writes are part of the stream.
			if (i+1)%64 == 0 {
				if err := journaled.sync(); err != nil {
					return nil, err
				}
			}
		}
		active := writesOf()
		verdict, err := attack.CompareStreams(idle, active, vol.NumBlocks(), 12)
		if err != nil {
			return nil, err
		}
		decision := "cannot distinguish"
		if verdict.Detected {
			decision = "HIDDEN ACTIVITY DETECTED"
		}
		overhead := (upsPlain - upsJ) / upsPlain * 100
		t.AddRow(sys.name,
			fmt.Sprintf("%.0f", upsPlain),
			fmt.Sprintf("%.0f", upsJ),
			fmt.Sprintf("%+.1f%%", overhead),
			fmt.Sprintf("%.2f", wpuPlain),
			fmt.Sprintf("%.2f", wpuJ),
			fmt.Sprintf("%.4f", verdict.PValue),
			decision)
	}
	t.Note("%d random single-block updates at %d-byte blocks, save every 64; journal ring 256 slots; Def-1 streams include ring writes", updates, journalBS)
	return t, nil
}
