package experiments

import (
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/diskmodel"
)

// timingDisk builds the 2004-model drive at the scale's timing
// geometry.
func timingDisk(s Scale) *diskmodel.Disk {
	return diskmodel.MustNew(diskmodel.Params2004(s.VolumeBlocks, s.TimingBlockSize))
}

// ioEvent is one replayable access.
type ioEvent struct {
	block uint64
	write bool
}

// readStream converts a block sequence into read events.
func readStream(blocks []uint64) []ioEvent {
	out := make([]ioEvent, len(blocks))
	for i, b := range blocks {
		out[i] = ioEvent{block: b}
	}
	return out
}

// fromTrace converts captured device events into replayable ones,
// flattening batched ranged events into one access per block so the
// disk-model replay still services every block the device touched.
func fromTrace(events []blockdev.Event) []ioEvent {
	events = blockdev.ExpandEvents(events)
	out := make([]ioEvent, len(events))
	for i, e := range events {
		out[i] = ioEvent{block: e.Block, write: e.Op == blockdev.OpWrite}
	}
	return out
}

// replaySolo plays one stream on a fresh drive and returns its total
// service time.
func replaySolo(s Scale, stream []ioEvent) time.Duration {
	disk := timingDisk(s)
	for _, e := range stream {
		disk.Access(e.block, e.write)
	}
	return disk.Now()
}

// replayRoundRobin plays several users' streams through one drive in
// strict round-robin order — FCFS queueing at I/O granularity, the
// deterministic stand-in for concurrent users sharing the disk. It
// returns each stream's completion time (all streams start at zero).
func replayRoundRobin(s Scale, streams [][]ioEvent) []time.Duration {
	disk := timingDisk(s)
	done := make([]time.Duration, len(streams))
	idx := make([]int, len(streams))
	remaining := len(streams)
	for remaining > 0 {
		for u, stream := range streams {
			if idx[u] >= len(stream) {
				continue
			}
			e := stream[idx[u]]
			disk.Access(e.block, e.write)
			idx[u]++
			if idx[u] == len(stream) {
				done[u] = disk.Now()
				remaining--
			}
		}
	}
	return done
}

// meanDuration averages a set of durations.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// seconds renders a duration as a figure-friendly number of seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// millis renders a duration as milliseconds.
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
