package experiments

import (
	"fmt"
	"time"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/workload"
)

// setupForUpdates builds the named system with one update-target file
// per user and the requested space utilization. For the bitmap-backed
// systems (StegFS, StegHide*), utilization is raised the way the
// paper's own simulation does — marking random blocks as data. For
// the volatile construction, utilization is the data share of the
// disclosed space, controlled through the dummy-file size.
func setupForUpdates(name string, s Scale, users int, utilization float64, seed uint64) (System, *blockdev.Collector, error) {
	if utilization <= 0 || utilization > 0.95 {
		return nil, nil, fmt.Errorf("experiments: utilization %.2f out of range", utilization)
	}
	sys, col, err := NewSystem(name, s, seed)
	if err != nil {
		return nil, nil, err
	}
	if c2, ok := sys.(*c2Sys); ok {
		// Creating the file consumes ~data dummy blocks one for one,
		// so to end at data/(data+dummy) = u the initial cover must be
		// data/u: after creation, data remains and data·(1/u − 1)
		// dummies are left.
		data := float64(s.UpdateFileBlocks + 4)
		dummy := uint64(data / utilization)
		if floor := uint64(data) + 8; dummy < floor {
			dummy = floor
		}
		c2.SetDummyBlocks(dummy)
	}
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("u%02d", u)
		if err := sys.CreateFile(user, "/target", s.UpdateFileBlocks); err != nil {
			return nil, nil, err
		}
	}
	// Raise the volume-wide utilization for the bitmap systems.
	switch v := sys.(type) {
	case *stegfsSys:
		fillBitmap(v.Source(), utilization)
	case *c1Sys:
		fillBitmap(v.Agent().Source(), utilization)
	}
	return sys, col, nil
}

func fillBitmap(src interface {
	SpaceBounds() (uint64, uint64)
	FreeCount() uint64
	AcquireRandom() (uint64, error)
}, utilization float64) {
	first, n := src.SpaceBounds()
	span := n - first
	target := uint64(float64(span) * utilization)
	for span-src.FreeCount() < target {
		if _, err := src.AcquireRandom(); err != nil {
			return
		}
	}
}

// Fig11a reproduces Figure 11(a): single-block update time vs space
// utilization (10–50%). StegHide and StegHide* grow with utilization
// as E = N/D predicts; StegFS and the conventional systems stay flat.
func Fig11a(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11a",
		Title:   "Performance on update — sensitivity to space utilization (access time, ms)",
		Columns: append([]string{"utilization"}, SystemNames()...),
	}
	for _, util := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		row := []any{fmt.Sprintf("%.1f", util)}
		for _, name := range SystemNames() {
			avg, err := timedUpdates(name, s, util, 1, s.Seed+2)
			if err != nil {
				return nil, err
			}
			row = append(row, millis(avg))
		}
		t.AddRow(row...)
	}
	t.Note("single-block updates at random positions; steg-hide expected overhead E = N/D")
	return t, nil
}

// Fig11b reproduces Figure 11(b): update time vs number of
// consecutive blocks updated (1–5) at 25% utilization. The
// steganographic systems grow linearly with the range (no sequential
// advantage); the conventional systems barely move.
func Fig11b(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11b",
		Title:   "Performance on update — sensitivity to update range (access time, ms)",
		Columns: append([]string{"consecutive blocks"}, SystemNames()...),
	}
	for blocks := 1; blocks <= 5; blocks++ {
		row := []any{blocks}
		for _, name := range SystemNames() {
			avg, err := timedUpdates(name, s, 0.25, blocks, s.Seed+3)
			if err != nil {
				return nil, err
			}
			row = append(row, millis(avg))
		}
		t.AddRow(row...)
	}
	t.Note("space utilization fixed at 25%%")
	return t, nil
}

// timedUpdates runs the scale's update count on a fresh system and
// returns the mean access time per update op, measured by capturing
// each op's I/O and replaying it on the 2004 drive.
func timedUpdates(name string, s Scale, util float64, rangeBlocks int, seed uint64) (time.Duration, error) {
	sys, col, err := setupForUpdates(name, s, 1, util, seed)
	if err != nil {
		return 0, err
	}
	rng := prng.NewFromUint64(seed ^ 0xF16)
	files := []workload.FileSpec{{Name: "/target", Blocks: s.UpdateFileBlocks}}
	ops, err := workload.Updates(rng, files, s.UpdatesPerPoint, rangeBlocks)
	if err != nil {
		return 0, err
	}
	disk := timingDisk(s)
	for _, op := range ops {
		col.Reset()
		if err := sys.Update("u00", op.Name, op.Off, op.Blocks); err != nil {
			return 0, err
		}
		for _, e := range fromTrace(col.Events()) {
			disk.Access(e.block, e.write)
		}
	}
	return disk.Now() / time.Duration(len(ops)), nil
}

// Fig11c reproduces Figure 11(c): update time (range = 5 blocks,
// 25% utilization) vs concurrency. As with retrieval, interleaving
// erases the conventional systems' sequential advantage.
func Fig11c(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11c",
		Title:   "Performance on update — sensitivity to concurrency (mean access time, seconds)",
		Columns: append([]string{"concurrency"}, SystemNames()...),
	}
	maxUsers := 0
	for _, c := range s.Concurrency {
		if c > maxUsers {
			maxUsers = c
		}
	}
	const rangeBlocks = 5
	opsPerUser := s.UpdatesPerPoint / 10
	if opsPerUser < 5 {
		opsPerUser = 5
	}

	// One system instance per concurrency level: state evolves as the
	// ops run, so each level gets a fresh, identical start.
	for _, c := range s.Concurrency {
		row := []any{c}
		for _, name := range SystemNames() {
			sys, col, err := setupForUpdates(name, s, c, 0.25, s.Seed+4)
			if err != nil {
				return nil, err
			}
			rng := prng.NewFromUint64(s.Seed + 5)
			files := []workload.FileSpec{{Name: "/target", Blocks: s.UpdateFileBlocks}}
			// Capture each user's ops round-robin (the op order a fair
			// scheduler would produce), then replay the interleaved
			// streams at I/O granularity.
			streams := make([][]ioEvent, c)
			for round := 0; round < opsPerUser; round++ {
				for u := 0; u < c; u++ {
					ops, err := workload.Updates(rng, files, 1, rangeBlocks)
					if err != nil {
						return nil, err
					}
					col.Reset()
					if err := sys.Update(fmt.Sprintf("u%02d", u), ops[0].Name, ops[0].Off, ops[0].Blocks); err != nil {
						return nil, err
					}
					streams[u] = append(streams[u], fromTrace(col.Events())...)
				}
			}
			times := replayRoundRobin(s, streams)
			// Mean per-user time, normalized per op.
			row = append(row, seconds(meanDuration(times))/float64(opsPerUser))
		}
		t.AddRow(row...)
	}
	t.Note("update range 5 blocks, 25%% utilization, %d ops per user", opsPerUser)
	return t, nil
}
