package experiments

import (
	"io"
	"testing"
)

func TestSmokeAll(t *testing.T) {
	s := QuickScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if err := e.RunAndPrint(s, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}
