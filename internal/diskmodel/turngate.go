package diskmodel

import (
	"fmt"
	"sync"
)

// TurnGate serializes the I/Os of n concurrent workers in strict
// round-robin order, regardless of goroutine scheduling. It is the
// deterministic stand-in for FCFS queueing at a shared disk: when
// several users stream files concurrently, their requests interleave
// one-for-one, which is precisely what destroys the sequential-layout
// advantage of the baseline file systems in Figs. 10b and 11c.
//
// Each worker calls Do(id, f) around every I/O; f runs only when it is
// id's turn, then the turn passes to the next active worker. A worker
// that finishes must call Leave(id) so the rotation skips it.
type TurnGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active []bool
	n      int
	left   int // number of workers that have left
	cur    int
}

// NewTurnGate creates a gate for workers with IDs [0, n).
func NewTurnGate(n int) *TurnGate {
	if n <= 0 {
		panic(fmt.Sprintf("diskmodel: TurnGate size %d", n))
	}
	g := &TurnGate{active: make([]bool, n), n: n}
	for i := range g.active {
		g.active[i] = true
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *TurnGate) advanceLocked() {
	for i := 0; i < g.n; i++ {
		g.cur = (g.cur + 1) % g.n
		if g.active[g.cur] {
			break
		}
	}
	g.cond.Broadcast()
}

// Do blocks until it is worker id's turn, runs f, and passes the turn.
func (g *TurnGate) Do(id int, f func()) {
	if id < 0 || id >= g.n {
		panic(fmt.Sprintf("diskmodel: TurnGate worker %d out of range [0,%d)", id, g.n))
	}
	g.mu.Lock()
	for g.cur != id {
		if !g.active[id] {
			g.mu.Unlock()
			panic(fmt.Sprintf("diskmodel: worker %d used gate after Leave", id))
		}
		g.cond.Wait()
	}
	g.mu.Unlock()

	f()

	g.mu.Lock()
	g.advanceLocked()
	g.mu.Unlock()
}

// Leave removes worker id from the rotation. Idempotent.
func (g *TurnGate) Leave(id int) {
	if id < 0 || id >= g.n {
		panic(fmt.Sprintf("diskmodel: TurnGate worker %d out of range [0,%d)", id, g.n))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.active[id] {
		return
	}
	g.active[id] = false
	g.left++
	if g.left == g.n {
		return // nobody to hand the turn to
	}
	if g.cur == id {
		g.advanceLocked()
	}
}
