package diskmodel

import (
	"sync"
	"testing"
	"time"

	"steghide/internal/prng"
)

func testParams() Params { return Params2004(1<<18, 4096) } // 1 GB volume

func TestValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Params){
		"zero block":    func(p *Params) { p.BlockSize = 0 },
		"zero nblocks":  func(p *Params) { p.NumBlocks = 0 },
		"zero rate":     func(p *Params) { p.TransferRate = 0 },
		"inverted seek": func(p *Params) { p.MaxSeek = p.TrackToTrackSeek - 1 },
	} {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if _, err := New(p); err == nil {
			t.Fatalf("%s: New accepted bad params", name)
		}
	}
}

func TestSequentialVsRandomGap(t *testing.T) {
	p := testParams()
	d := MustNew(p)
	d.Access(1000, false) // position the head
	seq := d.Access(1001, false)
	rnd := d.Access(200000, false)
	if seq >= rnd {
		t.Fatalf("sequential %v not cheaper than random %v", seq, rnd)
	}
	// The paper-era gap is roughly two orders of magnitude.
	if ratio := float64(rnd) / float64(seq); ratio < 20 {
		t.Fatalf("random/sequential ratio %.1f too small to reproduce the figures", ratio)
	}
	if seq != p.TransferTime() {
		t.Fatalf("sequential access should cost exactly transfer time: %v != %v", seq, p.TransferTime())
	}
}

func TestRandomAccessCostInPaperRange(t *testing.T) {
	// The paper's numbers imply ≈10–15 ms per random 4 KB access
	// (e.g. Fig. 10a: ~25–30 s to read a 10 MB file block-by-block).
	d := MustNew(testParams())
	rng := prng.NewFromUint64(1)
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		total += d.Access(rng.Uint64n(d.Params().NumBlocks), false)
	}
	avg := total / n
	if avg < 8*time.Millisecond || avg > 18*time.Millisecond {
		t.Fatalf("average random access %v outside 2004-era range", avg)
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	p := testParams()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	last := time.Duration(0)
	for _, d := range []uint64{1, 10, 100, 1000, 10000, 100000, p.NumBlocks} {
		s := p.SeekTime(d)
		if s < last {
			t.Fatalf("seek time not monotone at distance %d", d)
		}
		last = s
	}
	if last > p.MaxSeek {
		t.Fatalf("full-stroke seek %v exceeds MaxSeek %v", last, p.MaxSeek)
	}
}

func TestClockAndStats(t *testing.T) {
	d := MustNew(testParams())
	var sum time.Duration
	sum += d.Access(5, false)
	sum += d.Access(6, true)
	sum += d.Access(7, false)
	if d.Now() != sum {
		t.Fatalf("clock %v != sum of services %v", d.Now(), sum)
	}
	st := d.Stats()
	if st.Accesses != 3 || st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("bad counts: %+v", st)
	}
	if st.Sequential != 2 {
		t.Fatalf("expected 2 sequential accesses, got %d", st.Sequential)
	}
	if st.BusyTime != sum || st.SeekTime+st.TransferTime != sum {
		t.Fatalf("time accounting inconsistent: %+v", st)
	}
	d.ResetStats()
	if d.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear")
	}
	if d.Now() != sum {
		t.Fatal("ResetStats moved the clock")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := MustNew(testParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Access(d.Params().NumBlocks, false)
}

func TestLastBlockAccess(t *testing.T) {
	d := MustNew(testParams())
	n := d.Params().NumBlocks
	d.Access(n-1, false) // head would pass the end; must not panic later
	d.Access(n-1, false)
	d.Access(0, false)
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		d := MustNew(testParams())
		rng := prng.NewFromUint64(99)
		for i := 0; i < 500; i++ {
			d.Access(rng.Uint64n(d.Params().NumBlocks), i%2 == 0)
		}
		return d.Now()
	}
	if run() != run() {
		t.Fatal("virtual clock not deterministic")
	}
}

func TestInterleavingDestroysSequentiality(t *testing.T) {
	// Two workers each reading 1000 contiguous blocks: alone, nearly
	// free; interleaved through one head, every access seeks. This is
	// the mechanism behind Fig. 10b.
	p := testParams()
	alone := MustNew(p)
	for i := uint64(0); i < 1000; i++ {
		alone.Access(i, false)
	}
	soloTime := alone.Now()

	shared := MustNew(p)
	for i := uint64(0); i < 1000; i++ {
		shared.Access(i, false)        // worker A at the start
		shared.Access(100000+i, false) // worker B far away
	}
	perWorker := shared.Now() / 2
	if perWorker < 50*soloTime {
		t.Fatalf("interleaving should dominate: solo %v vs shared-per-worker %v", soloTime, perWorker)
	}
}

func TestTurnGateRoundRobinOrder(t *testing.T) {
	const n, rounds = 4, 50
	g := NewTurnGate(n)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g.Do(id, func() {
					mu.Lock()
					order = append(order, id)
					mu.Unlock()
				})
			}
			g.Leave(id)
		}(id)
	}
	wg.Wait()
	if len(order) != n*rounds {
		t.Fatalf("got %d events, want %d", len(order), n*rounds)
	}
	for i, id := range order {
		if id != i%n {
			t.Fatalf("event %d by worker %d, want %d (strict round-robin)", i, id, i%n)
		}
	}
}

func TestTurnGateLeaveEarly(t *testing.T) {
	// Worker 1 leaves after one op; the others must keep rotating.
	g := NewTurnGate(3)
	var mu sync.Mutex
	counts := make([]int, 3)
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rounds := 30
			if id == 1 {
				rounds = 1
			}
			for r := 0; r < rounds; r++ {
				g.Do(id, func() {
					mu.Lock()
					counts[id]++
					mu.Unlock()
				})
			}
			g.Leave(id)
		}(id)
	}
	wg.Wait()
	if counts[0] != 30 || counts[1] != 1 || counts[2] != 30 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTurnGateAllLeave(t *testing.T) {
	g := NewTurnGate(2)
	done := make(chan struct{})
	go func() {
		g.Do(0, func() {})
		g.Leave(0)
		close(done)
	}()
	<-done
	g.Leave(1) // leaving last must not deadlock
	g.Leave(1) // idempotent
}

func TestTurnGatePanicsOnBadID(t *testing.T) {
	g := NewTurnGate(2)
	for _, f := range []func(){
		func() { g.Do(2, func() {}) },
		func() { g.Do(-1, func() {}) },
		func() { g.Leave(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
