// Package diskmodel simulates a 2004-era hard disk on a deterministic
// virtual clock.
//
// The paper's testbed (Table 1) is a 20 GB Ultra-ATA/100 drive on a
// Pentium 4 box. Every experimental claim in §6 is driven by the cost
// gap between sequential and random I/O on such a drive, and by FCFS
// queueing when several users share it. This package models exactly
// those effects:
//
//   - a seek whose duration grows with the square root of the distance
//     travelled (the classical first-order seek model),
//   - rotational latency on every non-sequential access,
//   - a fixed per-block transfer time from the sustained media rate,
//   - a single head position shared by all requests, so interleaved
//     workloads destroy each other's sequentiality.
//
// Time is virtual: Access returns the service duration and advances an
// internal clock, so experiments are deterministic and run at CPU
// speed regardless of the modelled hardware.
package diskmodel

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Params describes the simulated drive.
type Params struct {
	// BlockSize is the transfer unit in bytes (the file system block).
	BlockSize int
	// NumBlocks is the number of addressable blocks.
	NumBlocks uint64
	// TrackToTrackSeek is the minimum (adjacent-track) seek time.
	TrackToTrackSeek time.Duration
	// MaxSeek is the full-stroke seek time.
	MaxSeek time.Duration
	// RotationalLatency is the average rotational delay added to every
	// non-sequential access (half a revolution).
	RotationalLatency time.Duration
	// TransferRate is the sustained media rate in bytes per second.
	TransferRate float64
}

// Params2004 returns parameters matching the paper's testbed: a 20 GB
// Ultra-ATA/100 7200 RPM drive (≈0.8 ms track-to-track, ≈15 ms full
// stroke, 4.17 ms average rotational latency, ≈40 MB/s sustained).
// A random 4 KB access costs ≈12–13 ms; a sequential one ≈0.1 ms.
func Params2004(numBlocks uint64, blockSize int) Params {
	return Params{
		BlockSize:         blockSize,
		NumBlocks:         numBlocks,
		TrackToTrackSeek:  800 * time.Microsecond,
		MaxSeek:           15 * time.Millisecond,
		RotationalLatency: 4170 * time.Microsecond,
		TransferRate:      40 << 20, // 40 MiB/s
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.BlockSize <= 0 {
		return fmt.Errorf("diskmodel: BlockSize %d", p.BlockSize)
	}
	if p.NumBlocks == 0 {
		return fmt.Errorf("diskmodel: NumBlocks 0")
	}
	if p.TransferRate <= 0 {
		return fmt.Errorf("diskmodel: TransferRate %v", p.TransferRate)
	}
	if p.MaxSeek < p.TrackToTrackSeek {
		return fmt.Errorf("diskmodel: MaxSeek %v < TrackToTrackSeek %v", p.MaxSeek, p.TrackToTrackSeek)
	}
	return nil
}

// TransferTime returns the time to transfer one block at media rate.
func (p Params) TransferTime() time.Duration {
	return time.Duration(float64(p.BlockSize) / p.TransferRate * float64(time.Second))
}

// SeekTime returns the head-movement time for a travel of dist blocks:
// zero for dist == 0, otherwise track-to-track plus a √(dist/N) share
// of the remaining stroke.
func (p Params) SeekTime(dist uint64) time.Duration {
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(p.NumBlocks))
	return p.TrackToTrackSeek + time.Duration(frac*float64(p.MaxSeek-p.TrackToTrackSeek))
}

// Stats aggregates what the disk has done so far.
type Stats struct {
	Accesses     uint64        // total block accesses
	Sequential   uint64        // accesses that continued the previous one
	Reads        uint64        // accesses flagged as reads
	Writes       uint64        // accesses flagged as writes
	BusyTime     time.Duration // sum of service times
	SeekTime     time.Duration // portion spent seeking + rotating
	TransferTime time.Duration // portion spent transferring
}

// Disk is the simulated drive. All methods are safe for concurrent
// use; concurrent requests are serialized in arrival order, modelling
// a single-head FCFS drive.
type Disk struct {
	mu     sync.Mutex
	p      Params
	head   uint64 // block the head sits after (next sequential target)
	now    time.Duration
	stats  Stats
	primed bool // false until the first access sets head position
}

// New returns a Disk with the head parked at block 0 and the clock at
// zero.
func New(p Params) (*Disk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Disk{p: p}, nil
}

// MustNew is New for parameter sets known statically to be valid.
func MustNew(p Params) *Disk {
	d, err := New(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.p }

// Access services one block access and returns its duration. write
// only affects accounting; the cost model is symmetric.
func (d *Disk) Access(block uint64, write bool) time.Duration {
	return d.AccessRange(block, 1, write)
}

// AccessRange services one batched sequential pass over the n blocks
// [start, start+n): at most one seek + rotation to reach start, then n
// transfers at media rate. This is the cost model for a device-level
// batch — exactly what a drive charges for a contiguous multi-block
// request — and it is what makes batching pay on simulated hardware.
func (d *Disk) AccessRange(start uint64, n int, write bool) time.Duration {
	if n <= 0 {
		return 0
	}
	if start >= d.p.NumBlocks || start+uint64(n) > d.p.NumBlocks {
		panic(fmt.Sprintf("diskmodel: range [%d,%d) out of [0,%d)", start, start+uint64(n), d.p.NumBlocks))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	transfer := time.Duration(n) * d.p.TransferTime()
	var positioning time.Duration
	sequential := d.primed && start == d.head
	if !sequential {
		var dist uint64
		if d.primed {
			if start > d.head {
				dist = start - d.head
			} else {
				dist = d.head - start
			}
		} else {
			dist = start // initial positioning from block 0
		}
		positioning = d.p.SeekTime(dist) + d.p.RotationalLatency
	}
	cost := positioning + transfer

	d.head = start + uint64(n)
	if d.head >= d.p.NumBlocks {
		d.head = d.p.NumBlocks - 1 // park at the end; next access seeks
		d.primed = false
	} else {
		d.primed = true
	}
	d.now += cost
	d.stats.Accesses += uint64(n)
	d.stats.Sequential += uint64(n - 1)
	if sequential {
		d.stats.Sequential++
	}
	if write {
		d.stats.Writes += uint64(n)
	} else {
		d.stats.Reads += uint64(n)
	}
	d.stats.BusyTime += cost
	d.stats.SeekTime += positioning
	d.stats.TransferTime += transfer
	return cost
}

// Now returns the virtual clock: the sum of all service times so far.
func (d *Disk) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Stats returns a snapshot of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the statistics without moving the head or clock.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}
