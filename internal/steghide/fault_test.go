package steghide

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// newFaultyC2 builds a volatile agent over a fault-injectable device.
func newFaultyC2(t *testing.T) (*VolatileAgent, *blockdev.FaultDevice) {
	t.Helper()
	fd := blockdev.NewFault(blockdev.NewMem(128, 1024))
	vol, err := stegfs.Format(fd, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("f")})
	if err != nil {
		t.Fatal(err)
	}
	return NewVolatile(vol, prng.NewFromUint64(7)), fd
}

func TestWriteFaultPropagatesAndStateRecovers(t *testing.T) {
	a, fd := newFaultyC2(t)
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	content := prng.NewFromUint64(1).Bytes(10 * a.Vol().PayloadSize())
	if err := s.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}

	// Every write from now on fails; the update must surface the
	// injected error, not panic or silently succeed.
	fd.FailWritesAfter(0)
	err = s.Write("/f", content[:a.Vol().PayloadSize()], 0)
	if !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("fault not propagated: %v", err)
	}

	// After the device heals, the agent must still function and the
	// file must still be fully readable.
	fd.Heal()
	got := make([]byte, len(content))
	if _, err := s.Read("/f", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content corrupted by failed update")
	}
	if err := s.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Logout("u"); err != nil {
		t.Fatal(err)
	}
}

func TestReadFaultDuringDisclose(t *testing.T) {
	a, fd := newFaultyC2(t)
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("/f", []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Logout("u"); err != nil {
		t.Fatal(err)
	}

	s2, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	fd.FailReadsAfter(0)
	if _, err := s2.Disclose("/f"); !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("disclose fault not propagated: %v", err)
	}
	fd.Heal()
	if _, err := s2.Disclose("/f"); err != nil {
		t.Fatalf("disclose after heal: %v", err)
	}
}

func TestDummyUpdateFault(t *testing.T) {
	a, fd := newFaultyC2(t)
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 50); err != nil {
		t.Fatal(err)
	}
	fd.FailWritesAfter(0)
	if err := a.DummyUpdate(); !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("dummy-update fault not propagated: %v", err)
	}
	fd.Heal()
	if err := a.DummyUpdate(); err != nil {
		t.Fatal(err)
	}
}

// TestAblationNoCamouflage demonstrates why Figure 6's camouflage
// branch matters: a "cheaper" variant that skips dummy-updating data
// blocks (redrawing until it finds a dummy, then writing only there)
// produces a write stream concentrated on the dummy region — an
// update-analysis attacker separates it from idle traffic at once.
func TestAblationNoCamouflage(t *testing.T) {
	col := &blockdev.Collector{}
	dev := blockdev.NewTraced(blockdev.NewMem(128, 2048), col)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("ab")})
	if err != nil {
		t.Fatal(err)
	}
	src := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(3))
	fak := stegfs.DeriveFAK("u", "/f", vol)
	f, err := stegfs.CreateFile(vol, fak, "/f", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := stegfs.InPlacePolicy{Vol: vol}
	if _, err := f.WriteAt(make([]byte, 32*vol.PayloadSize()), 0, policy); err != nil {
		t.Fatal(err)
	}
	// Fill to 50% so the dummy region is half the volume, remembering
	// which blocks represent other users' data.
	first, n := src.SpaceBounds()
	otherData := map[uint64]bool{}
	for n-first-src.FreeCount() < (n-first)/2 {
		loc, err := src.AcquireRandom()
		if err != nil {
			t.Fatal(err)
		}
		otherData[loc] = true
	}

	rng := prng.NewFromUint64(4)
	seal, err := vol.NewSealer(fak.ContentKey)
	if err != nil {
		t.Fatal(err)
	}

	// The ablated update: relocate straight to a random dummy block,
	// no camouflage along the way.
	noCamouflage := func(loc uint64) uint64 {
		for {
			b2 := first + rng.Uint64n(n-first)
			if b2 == loc {
				vol.WriteSealed(loc, seal, make([]byte, vol.PayloadSize()))
				return loc
			}
			if !src.IsFree(b2) {
				continue // ablation: skip instead of camouflage
			}
			src.Acquire(b2)
			vol.WriteSealed(b2, seal, make([]byte, vol.PayloadSize()))
			src.Release(loc)
			return b2
		}
	}

	// Ablated workload: 1500 updates, observed by the attacker.
	col.Reset()
	locs := f.BlockLocs()
	for i := 0; i < 1500; i++ {
		li := rng.Intn(len(locs))
		locs[li] = noCamouflage(locs[li])
	}
	touched := map[uint64]bool{}
	for _, e := range col.Events() {
		if e.Op == blockdev.OpWrite {
			touched[e.Block] = true
		}
	}

	// The distinguisher: without camouflage, other users' data blocks
	// are NEVER written — after a long window, the untouched half of
	// the volume is exactly the hidden data, existence proven. With
	// Figure 6 proper, camouflage touches them constantly (verified
	// in TestC1UpdateStreamUniform / TestC1SecurityDefinition1).
	for loc := range otherData {
		if touched[loc] {
			t.Fatalf("ablated variant wrote to data block %d; test premise broken", loc)
		}
	}
	// Sanity: with 1500 uniform-camouflage updates, the chance that
	// zero of ~1000 data blocks would be touched is astronomically
	// small, so "no data block ever written" is a reliable detector.
	if len(touched) == 0 {
		t.Fatal("ablated workload produced no writes")
	}
}
