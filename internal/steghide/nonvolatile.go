package steghide

import (
	"fmt"
	"sync"

	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// NonVolatileAgent is Construction 1 (§4.1, "StegHide*"). It holds in
// persistent memory a single key that encrypts every block of the
// volume and a bitmap marking data blocks against dummy blocks (the
// FAK of the implicit dummy file that owns all free blocks). Users
// contribute only the locator secret that derives their headers'
// positions; all sealing uses the agent's key, so the agent can issue
// dummy updates on any block of the volume.
type NonVolatileAgent struct {
	mu     sync.Mutex
	vol    *stegfs.Volume
	source *stegfs.BitmapSource
	seal   *sealer.Sealer
	key    sealer.Key
	rng    *prng.PRNG
	stats  statsBox
	files  map[string]*stegfs.File
}

// NewNonVolatile creates the agent for a freshly formatted volume.
// secret is the agent's persistent key material; rng drives all its
// random choices.
func NewNonVolatile(vol *stegfs.Volume, secret []byte, rng *prng.PRNG) (*NonVolatileAgent, error) {
	key := sealer.DeriveKey(secret, "steghide-c1-block-key")
	seal, err := vol.NewSealer(key)
	if err != nil {
		return nil, err
	}
	return &NonVolatileAgent{
		vol:    vol,
		source: stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc")),
		seal:   seal,
		key:    key,
		rng:    rng.Child("figure6"),
		files:  map[string]*stegfs.File{},
	}, nil
}

// Vol returns the underlying volume.
func (a *NonVolatileAgent) Vol() *stegfs.Volume { return a.vol }

// Source exposes the agent's persistent data/dummy bitmap.
func (a *NonVolatileAgent) Source() *stegfs.BitmapSource { return a.source }

// Stats returns a snapshot of the agent's counters.
func (a *NonVolatileAgent) Stats() UpdateStats { return a.stats.snapshot() }

// ResetStats zeroes the counters.
func (a *NonVolatileAgent) ResetStats() { a.stats.reset() }

// fileFAK builds the FAK for Construction 1: the locator comes from
// the user's secret (so only the user can find the header), while the
// header and content keys are the agent's global block key (§4.1.2:
// one secret key encrypts all storage blocks).
func (a *NonVolatileAgent) fileFAK(locatorSecret, path string) stegfs.FAK {
	master := sealer.KeyFromPassphrase(locatorSecret, a.vol.Salt(), a.vol.KDFIterations())
	fak := stegfs.DeriveFAKFromMaster(master, path)
	fak.HeaderKey = a.key
	fak.ContentKey = a.key
	return fak
}

// Create creates a hidden file for the user identified by
// locatorSecret. The agent retains the open handle until Close.
func (a *NonVolatileAgent) Create(locatorSecret, path string) (*stegfs.File, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, open := a.files[path]; open {
		return nil, fmt.Errorf("steghide: %q already open", path)
	}
	f, err := stegfs.CreateFile(a.vol, a.fileFAK(locatorSecret, path), path, a.source)
	if err != nil {
		return nil, err
	}
	a.files[path] = f
	return f, nil
}

// Open opens an existing hidden file.
func (a *NonVolatileAgent) Open(locatorSecret, path string) (*stegfs.File, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if f, open := a.files[path]; open {
		return f, nil
	}
	f, err := stegfs.OpenFile(a.vol, a.fileFAK(locatorSecret, path), path, a.source)
	if err != nil {
		return nil, err
	}
	a.files[path] = f
	return f, nil
}

// Close saves and forgets an open file.
func (a *NonVolatileAgent) Close(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, open := a.files[path]
	if !open {
		return fmt.Errorf("steghide: %q not open", path)
	}
	delete(a.files, path)
	return f.Close()
}

// Write writes data at offset off of an open file through the
// Figure 6 update policy. The block map stays cached; per §4.1.5 the
// header is flushed only when the file is saved (Sync or Close), so
// header writes do not add a fixed hot block to every update.
func (a *NonVolatileAgent) Write(path string, data []byte, off uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, open := a.files[path]
	if !open {
		return fmt.Errorf("steghide: %q not open", path)
	}
	_, err := f.WriteAt(data, off, policyFunc(a.update))
	return err
}

// Sync flushes an open file's cached block map to the volume.
func (a *NonVolatileAgent) Sync(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, open := a.files[path]
	if !open {
		return fmt.Errorf("steghide: %q not open", path)
	}
	return f.Save()
}

// Read reads len(p) bytes at offset off of an open file.
func (a *NonVolatileAgent) Read(path string, p []byte, off uint64) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, open := a.files[path]
	if !open {
		return 0, fmt.Errorf("steghide: %q not open", path)
	}
	return f.ReadAt(p, off)
}

// Policy exposes the Figure-6 update policy, for callers that manage
// stegfs.File handles themselves (experiments, baselines harness).
func (a *NonVolatileAgent) Policy() stegfs.UpdatePolicy { return policyFunc(a.update) }

// policyFunc adapts a function to stegfs.UpdatePolicy.
type policyFunc func(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error)

// Update implements stegfs.UpdatePolicy.
func (p policyFunc) Update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	return p(loc, seal, payload)
}

// update is the Figure 6 data-update algorithm for Construction 1.
// Every draw is uniform over the whole steg space; each iteration
// costs one read and one write, matching the paper's E = N/D
// analysis.
func (a *NonVolatileAgent) update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	if a.source.FreeCount() == 0 {
		return 0, fmt.Errorf("%w: volume at 100%% utilization", ErrNoDummySpace)
	}
	first, n := a.source.SpaceBounds()
	span := n - first
	scratch := make([]byte, a.vol.BlockSize())

	a.stats.mu.Lock()
	a.stats.s.DataUpdates++
	a.stats.mu.Unlock()

	for {
		a.stats.mu.Lock()
		a.stats.s.Iterations++
		a.stats.mu.Unlock()

		b2 := first + a.rng.Uint64n(span)
		switch {
		case b2 == loc:
			// Update in place: read in B1, re-encrypt with new IV.
			if err := a.vol.Device().ReadBlock(loc, scratch); err != nil {
				return 0, err
			}
			if err := a.vol.WriteSealed(loc, seal, payload); err != nil {
				return 0, err
			}
			a.stats.mu.Lock()
			a.stats.s.InPlace++
			a.stats.mu.Unlock()
			return loc, nil

		case a.source.IsFree(b2):
			// B2 is a dummy block: the data moves there and the old
			// location joins the dummy set.
			if err := a.vol.Device().ReadBlock(loc, scratch); err != nil {
				return 0, err
			}
			if !a.source.Acquire(b2) {
				continue // raced with another update; redraw
			}
			if err := a.vol.WriteSealed(b2, seal, payload); err != nil {
				a.source.Release(b2)
				return 0, err
			}
			a.source.Release(loc)
			a.stats.mu.Lock()
			a.stats.s.Relocations++
			a.stats.mu.Unlock()
			return b2, nil

		default:
			// B2 holds data: camouflage dummy update, then redraw.
			if err := a.vol.Reseal(b2, a.seal); err != nil {
				return 0, err
			}
			a.stats.mu.Lock()
			a.stats.s.Camouflage++
			a.stats.mu.Unlock()
		}
	}
}

// DummyUpdate issues one idle-time dummy update on a uniformly random
// block of the steg space (Figure 6, else-branch).
func (a *NonVolatileAgent) DummyUpdate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	first, n := a.source.SpaceBounds()
	b3 := first + a.rng.Uint64n(n-first)
	if err := a.vol.Reseal(b3, a.seal); err != nil {
		return err
	}
	a.stats.mu.Lock()
	a.stats.s.DummyUpdates++
	a.stats.mu.Unlock()
	return nil
}

// DummyUpdateBurst issues n idle-time dummy updates in one batched
// read-reseal-write cycle: two scattered device batches instead of 2n
// single-block calls. The observable stream — n reads then n writes
// of uniformly random blocks — carries exactly the same distribution
// as n sequential DummyUpdate calls. It returns how many updates were
// issued (always n on success for this construction).
func (a *NonVolatileAgent) DummyUpdateBurst(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	first, nb := a.source.SpaceBounds()
	span := nb - first
	locs := make([]uint64, n)
	for i := range locs {
		locs[i] = first + a.rng.Uint64n(span)
	}
	if err := a.vol.ResealMany(locs, a.seal); err != nil {
		return 0, err
	}
	a.stats.mu.Lock()
	a.stats.s.DummyUpdates += uint64(n)
	a.stats.mu.Unlock()
	return n, nil
}

// State serializes the agent's persistent memory — the data/dummy
// bitmap — for storage outside the raw volume (the "non-volatile
// memory" of the construction). The caller is responsible for
// protecting it; pairing it with the agent secret is what coercion of
// the administrator would expose.
func (a *NonVolatileAgent) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.source.MarshalBinary()
}

// LoadState restores persistent memory saved by State.
func (a *NonVolatileAgent) LoadState(data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.source.UnmarshalBinary(data)
}
