package steghide

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"steghide/internal/obs"
	"steghide/internal/prng"
	"steghide/internal/sched"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// NonVolatileAgent is Construction 1 (§4.1, "StegHide*"). It holds in
// persistent memory a single key that encrypts every block of the
// volume and a bitmap marking data blocks against dummy blocks (the
// FAK of the implicit dummy file that owns all free blocks). Users
// contribute only the locator secret that derives their headers'
// positions; all sealing uses the agent's key, so the agent can issue
// dummy updates on any block of the volume.
//
// Concurrency: the Figure-6 draw loop and all update I/O live in the
// per-volume scheduler (internal/sched), whose sharded block locks
// let any number of callers update different files — and the daemon
// emit dummy traffic — concurrently. The agent itself only serializes
// per open file (block maps are single-writer) and around its file
// table; there is no agent-wide mutex on the data path.
type NonVolatileAgent struct {
	vol    *stegfs.Volume
	source *stegfs.BitmapSource
	seal   *sealer.Sealer
	key    sealer.Key
	jkey   sealer.Key // journal key (derived; used when EnableJournal runs)
	sched  *sched.Scheduler
	space  *sched.BitmapSpace

	// intents is the journal adapter, nil until EnableJournal.
	intents *c1Intents

	// files is keyed by pathname and holds one handle per locator
	// secret: two principals may legitimately own distinct hidden
	// files under the same pathname (each locator derives its own
	// header positions), and neither may shadow — or be served — the
	// other's. Path-only lookups resolve only while the path is
	// unambiguous; the FS layer disambiguates by passing the handle
	// it was issued at open time.
	mu    sync.Mutex
	files map[string][]*fileHandle

	// opMu fences the persistent-memory snapshot against in-flight
	// Figure-6 work: updates and dummy traffic hold it shared, while
	// State/LoadState hold it exclusively, so a snapshot never
	// captures a relocation between its acquire and release halves.
	opMu sync.RWMutex
}

// fileHandle serializes operations on one open file: stegfs.File is
// not safe for concurrent use, while different files may proceed in
// parallel. closed (guarded by mu) fences the lookup-then-lock gap:
// an operation that fetched the handle just before a concurrent Close
// finds the flag set and fails with "not open" instead of mutating a
// file the agent already saved and forgot.
type fileHandle struct {
	mu     sync.Mutex
	f      *stegfs.File
	closed bool
}

// lock acquires the handle for path, failing if it was closed between
// lookup and acquisition.
func (h *fileHandle) lock(path string) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("steghide: %q not open", path)
	}
	return nil
}

// NewNonVolatile creates the agent for a freshly formatted volume.
// secret is the agent's persistent key material; rng drives all its
// random choices.
func NewNonVolatile(vol *stegfs.Volume, secret []byte, rng *prng.PRNG) (*NonVolatileAgent, error) {
	key := sealer.DeriveKey(secret, "steghide-c1-block-key")
	seal, err := vol.NewSealer(key)
	if err != nil {
		return nil, err
	}
	source := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), rng.Child("alloc"))
	a := &NonVolatileAgent{
		vol:    vol,
		source: source,
		seal:   seal,
		key:    key,
		jkey:   JournalKeyFromSecret(secret, "c1"),
		files:  map[string][]*fileHandle{},
	}
	a.space = sched.NewBitmapSpace(source, seal, rng.Child("figure6"))
	a.sched = sched.New(vol, a.space)
	return a, nil
}

// Vol returns the underlying volume.
func (a *NonVolatileAgent) Vol() *stegfs.Volume { return a.vol }

// Source exposes the agent's persistent data/dummy bitmap.
func (a *NonVolatileAgent) Source() *stegfs.BitmapSource { return a.source }

// Stats returns a snapshot of the agent's counters.
func (a *NonVolatileAgent) Stats() UpdateStats { return statsFromSched(a.sched.Stats()) }

// ResetStats zeroes the counters.
func (a *NonVolatileAgent) ResetStats() { a.sched.ResetStats() }

// DataSeq reports the monotonically increasing data-update count —
// the activity signal the adaptive dummy-traffic daemon watches.
func (a *NonVolatileAgent) DataSeq() uint64 { return a.sched.DataSeq() }

// EnablePipeline switches the agent's dummy bursts to the staged seal
// pipeline (workers <= 0 selects GOMAXPROCS); the observable update
// stream is unchanged. Call before concurrent use.
func (a *NonVolatileAgent) EnablePipeline(workers int) { a.sched.EnablePipeline(workers) }

// EnableMetrics exports the agent's observability series through reg:
// the scheduler's stream counters and histograms plus the journal
// ring's occupancy when journaled. Call after EnableJournal /
// EnablePipeline, before concurrent use. Deliberately absent: any
// open-file or known-file count — for Construction 1 that number is
// exactly what the volume hides, and no attacker position observes
// it, so it must not surface on an ops endpoint either.
func (a *NonVolatileAgent) EnableMetrics(reg *obs.Registry, volume string) {
	a.sched.EnableMetrics(reg, volume)
	if a.intents != nil {
		a.intents.j.EnableMetrics(reg, volume)
	}
}

// fileFAK builds the FAK for Construction 1: the locator comes from
// the user's secret (so only the user can find the header), while the
// header and content keys are the agent's global block key (§4.1.2:
// one secret key encrypts all storage blocks).
func (a *NonVolatileAgent) fileFAK(locatorSecret, path string) stegfs.FAK {
	master := sealer.KeyFromPassphrase(locatorSecret, a.vol.Salt(), a.vol.KDFIterations())
	fak := stegfs.DeriveFAKFromMaster(master, path)
	fak.HeaderKey = a.key
	fak.ContentKey = a.key
	return fak
}

// Create creates a hidden file for the user identified by
// locatorSecret. The agent retains the open handle until Close.
// Another principal's open file under the same pathname does not
// collide: handles are keyed by (path, locator).
func (a *NonVolatileAgent) Create(locatorSecret, path string) (*stegfs.File, error) {
	fak := a.fileFAK(locatorSecret, path)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, h := range a.files[path] {
		if h.f.SameLocator(fak) {
			return nil, fmt.Errorf("steghide: %q already open", path)
		}
	}
	f, err := stegfs.CreateFile(a.vol, fak, path, a.source)
	if err != nil {
		return nil, err
	}
	a.files[path] = append(a.files[path], &fileHandle{f: f})
	return f, nil
}

// Open opens an existing hidden file. A cached handle is served only
// to a caller presenting the locator secret it was opened with: the
// locator is Construction 1's one per-user credential, and the handle
// cache must not become a way around it — a wrong secret falls
// through to the on-disk lookup and sees ErrNotFound,
// indistinguishable from the file not existing. Handles are keyed by
// (path, locator), so two principals may hold the same pathname open
// simultaneously without shadowing each other.
func (a *NonVolatileAgent) Open(locatorSecret, path string) (*stegfs.File, error) {
	fak := a.fileFAK(locatorSecret, path)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, h := range a.files[path] {
		if h.f.SameLocator(fak) {
			return h.f, nil
		}
	}
	f, err := stegfs.OpenFile(a.vol, fak, path, a.source)
	if err != nil {
		return nil, err
	}
	a.files[path] = append(a.files[path], &fileHandle{f: f})
	return f, nil
}

// HasOpen reports whether path is currently open with exactly the
// given handle — the cheap revalidation an FS-layer cache needs to
// notice the agent-level handle was closed underneath it, without
// re-deriving any keys.
func (a *NonVolatileAgent) HasOpen(path string, f *stegfs.File) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, h := range a.files[path] {
		if h.f == f {
			return true
		}
	}
	return false
}

// handle resolves (path, f) to the open handle. f == nil selects by
// path alone, which works only while the path is unambiguous — the
// compatibility mode for single-principal callers; with two
// principals holding the same pathname open, a path-only operation
// cannot tell whose file it means and fails.
func (a *NonVolatileAgent) handle(path string, f *stegfs.File) (*fileHandle, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hs := a.files[path]
	if f == nil {
		switch len(hs) {
		case 0:
			return nil, fmt.Errorf("steghide: %q not open", path)
		case 1:
			return hs[0], nil
		default:
			return nil, fmt.Errorf("steghide: %q open under %d locators; operate through the handle", path, len(hs))
		}
	}
	for _, h := range hs {
		if h.f == f {
			return h, nil
		}
	}
	return nil, fmt.Errorf("steghide: %q not open", path)
}

// drop removes (path, f)'s handle from the table, returning it; like
// handle, f == nil selects by path only while the path is unambiguous
// and reports the ambiguity otherwise.
func (a *NonVolatileAgent) drop(path string, f *stegfs.File) (*fileHandle, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hs := a.files[path]
	if f == nil && len(hs) > 1 {
		return nil, fmt.Errorf("steghide: %q open under %d locators; operate through the handle", path, len(hs))
	}
	for i, h := range hs {
		if f == nil || h.f == f {
			rest := append(hs[:i:i], hs[i+1:]...)
			if len(rest) == 0 {
				delete(a.files, path)
			} else {
				a.files[path] = rest
			}
			return h, nil
		}
	}
	return nil, fmt.Errorf("steghide: %q not open", path)
}

// Close saves and forgets an open file (path-only compatibility form;
// see CloseHandle).
func (a *NonVolatileAgent) Close(path string) error { return a.CloseHandle(path, nil) }

// CloseHandle saves and forgets the open file (path, f); f == nil
// selects by path while the path is unambiguous.
func (a *NonVolatileAgent) CloseHandle(path string, f *stegfs.File) error {
	h, err := a.drop(path, f)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	return h.f.Close()
}

// Delete removes an open file and forgets its handle (path-only
// compatibility form; see DeleteHandle).
func (a *NonVolatileAgent) Delete(path string) error { return a.DeleteHandle(path, nil) }

// DeleteHandle removes the open file (path, f) and forgets its
// handle; the released blocks rejoin the bitmap's dummy pool, their
// ciphertext staying in place as plausible cover.
func (a *NonVolatileAgent) DeleteHandle(path string, f *stegfs.File) error {
	h, err := a.drop(path, f)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	return h.f.Delete()
}

// Files lists the agent's open paths in sorted order, so listings are
// stable across runs. A path two principals hold open appears once.
func (a *NonVolatileAgent) Files() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.files))
	for p := range a.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CloseAll saves and forgets every open handle — every principal's —
// returning the first failure. This is the teardown path: Close(path)
// cannot name one principal's handle once a path is shared.
func (a *NonVolatileAgent) CloseAll() error {
	a.mu.Lock()
	var all []*fileHandle
	paths := make([]string, 0, len(a.files))
	for p := range a.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		all = append(all, a.files[p]...)
	}
	a.files = map[string][]*fileHandle{}
	a.mu.Unlock()
	var firstErr error
	for _, h := range all {
		h.mu.Lock()
		h.closed = true
		err := h.f.Close()
		h.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stat reports the current size of an open file.
func (a *NonVolatileAgent) Stat(path string) (uint64, error) {
	return a.StatHandle(path, nil)
}

// StatHandle is Stat for the specific open handle (path, f).
func (a *NonVolatileAgent) StatHandle(path string, f *stegfs.File) (uint64, error) {
	h, err := a.handle(path, f)
	if err != nil {
		return 0, err
	}
	if err := h.lock(path); err != nil {
		return 0, err
	}
	defer h.mu.Unlock()
	return h.f.Size(), nil
}

// Write writes data at offset off of an open file through the
// Figure 6 update policy. The block map stays cached; per §4.1.5 the
// header is flushed only when the file is saved (Sync or Close), so
// header writes do not add a fixed hot block to every update.
// Writes to different files proceed concurrently.
func (a *NonVolatileAgent) Write(path string, data []byte, off uint64) error {
	return a.WriteCtx(context.Background(), path, data, off)
}

// WriteCtx is Write with cooperative cancellation: the context is
// honored at the scheduler's wait point, before every draw of the
// Figure-6 loop. Blocks already updated when the context fires keep
// their new content; the cached map stays consistent.
func (a *NonVolatileAgent) WriteCtx(ctx context.Context, path string, data []byte, off uint64) error {
	return a.WriteHandleCtx(ctx, path, nil, data, off)
}

// WriteHandleCtx is WriteCtx for the specific open handle (path, f).
func (a *NonVolatileAgent) WriteHandleCtx(ctx context.Context, path string, f *stegfs.File, data []byte, off uint64) error {
	h, err := a.handle(path, f)
	if err != nil {
		return err
	}
	if err := h.lock(path); err != nil {
		return err
	}
	defer h.mu.Unlock()
	_, err = h.f.WriteAt(data, off, a.PolicyCtx(ctx))
	return err
}

// Truncate resizes an open file to size bytes through the Figure-6
// policy: growth materializes fresh blocks, shrinkage releases them
// back to the dummy pool (ciphertext staying in place as cover).
func (a *NonVolatileAgent) Truncate(path string, size uint64) error {
	return a.TruncateCtx(context.Background(), path, size)
}

// TruncateCtx is Truncate honoring the context at the scheduler's
// wait point.
func (a *NonVolatileAgent) TruncateCtx(ctx context.Context, path string, size uint64) error {
	return a.TruncateHandleCtx(ctx, path, nil, size)
}

// TruncateHandleCtx is TruncateCtx for the specific open handle
// (path, f).
func (a *NonVolatileAgent) TruncateHandleCtx(ctx context.Context, path string, f *stegfs.File, size uint64) error {
	h, err := a.handle(path, f)
	if err != nil {
		return err
	}
	if err := h.lock(path); err != nil {
		return err
	}
	defer h.mu.Unlock()
	return h.f.Resize(size, a.PolicyCtx(ctx))
}

// Sync flushes an open file's cached block map to the volume.
func (a *NonVolatileAgent) Sync(path string) error { return a.SyncHandle(path, nil) }

// SyncHandle is Sync for the specific open handle (path, f).
func (a *NonVolatileAgent) SyncHandle(path string, f *stegfs.File) error {
	h, err := a.handle(path, f)
	if err != nil {
		return err
	}
	if err := h.lock(path); err != nil {
		return err
	}
	defer h.mu.Unlock()
	return h.f.Save()
}

// Read reads len(p) bytes at offset off of an open file.
func (a *NonVolatileAgent) Read(path string, p []byte, off uint64) (int, error) {
	return a.ReadHandle(path, nil, p, off)
}

// ReadHandle is Read for the specific open handle (path, f).
func (a *NonVolatileAgent) ReadHandle(path string, f *stegfs.File, p []byte, off uint64) (int, error) {
	h, err := a.handle(path, f)
	if err != nil {
		return 0, err
	}
	if err := h.lock(path); err != nil {
		return 0, err
	}
	defer h.mu.Unlock()
	return h.f.ReadAt(p, off)
}

// Policy exposes the Figure-6 update policy, for callers that manage
// stegfs.File handles themselves (experiments, baselines harness).
func (a *NonVolatileAgent) Policy() stegfs.UpdatePolicy { return policyFunc(a.update) }

// PolicyCtx is Policy bound to a context, honored before every draw
// of the Figure-6 loop.
func (a *NonVolatileAgent) PolicyCtx(ctx context.Context) stegfs.UpdatePolicy {
	return policyFunc(func(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
		return a.updateCtx(ctx, loc, seal, payload)
	})
}

// policyFunc adapts a function to stegfs.UpdatePolicy.
type policyFunc func(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error)

// Update implements stegfs.UpdatePolicy.
func (p policyFunc) Update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	return p(loc, seal, payload)
}

// update delegates the Figure-6 data update to the scheduler,
// translating scheduler sentinels into the agent's error vocabulary.
func (a *NonVolatileAgent) update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	return a.updateCtx(context.Background(), loc, seal, payload)
}

// updateCtx is update with the caller's context threaded through to
// the scheduler's draw loop.
func (a *NonVolatileAgent) updateCtx(ctx context.Context, loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	newLoc, err := a.sched.UpdateCtx(ctx, loc, seal, payload)
	if errors.Is(err, sched.ErrNoFreeSpace) {
		return 0, fmt.Errorf("%w: volume at 100%% utilization", ErrNoDummySpace)
	}
	return newLoc, err
}

// DummyUpdate issues one idle-time dummy update on a uniformly random
// block of the steg space (Figure 6, else-branch).
func (a *NonVolatileAgent) DummyUpdate() error {
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	return a.sched.DummyUpdate()
}

// DummyUpdateBurst issues n idle-time dummy updates in one batched
// read-reseal-write cycle: two scattered device batches instead of 2n
// single-block calls. The observable stream — n reads then n writes
// of uniformly random blocks — carries exactly the same distribution
// as n sequential DummyUpdate calls. It returns how many updates were
// issued (always n on success for this construction).
func (a *NonVolatileAgent) DummyUpdateBurst(n int) (int, error) {
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	return a.sched.DummyUpdateBurst(n)
}

// State serializes the agent's persistent memory — the data/dummy
// bitmap — for storage outside the raw volume (the "non-volatile
// memory" of the construction). The caller is responsible for
// protecting it; pairing it with the agent secret is what coercion of
// the administrator would expose. The snapshot waits for in-flight
// updates and dummy traffic to drain, so it never captures a
// half-finished relocation; a snapshot taken mid-Write still records
// freshly acquired growth blocks whose headers are unsaved — a
// conservative leak on restore, so quiesce writers for an exact image.
func (a *NonVolatileAgent) State() ([]byte, error) {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	blob, err := a.source.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if a.intents != nil {
		// Mark the snapshot in the ring so fsck can bound "dirty since".
		if err := a.intents.j.AppendCheckpoint(); err != nil {
			return nil, err
		}
	}
	return blob, nil
}

// LoadState restores persistent memory saved by State. It waits for
// in-flight updates to drain; callers must not have files open, since
// their cached maps are not rewritten.
func (a *NonVolatileAgent) LoadState(data []byte) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	return a.source.UnmarshalBinary(data)
}
