package steghide

import (
	"errors"
	"testing"

	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

func TestQuotaBlocksCreateDummy(t *testing.T) {
	a, _ := newC2(t, 2048)
	a.SetDefaultQuota(50)
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	// 100 blocks + header over a 50-block budget.
	if _, err := s.CreateDummy("/dummy0", 100); !errors.Is(err, stegfs.ErrVolumeFull) {
		t.Fatalf("over-budget dummy: %v", err)
	}
	if a.Usage("alice") != 0 {
		t.Fatalf("failed create charged %d blocks", a.Usage("alice"))
	}
	if _, err := s.CreateDummy("/dummy0", 40); err != nil {
		t.Fatal(err)
	}
	if u := a.Usage("alice"); u < 41 {
		t.Fatalf("usage %d after 40-block dummy + header", u)
	}
}

func TestQuotaBlocksGrowth(t *testing.T) {
	a, _ := newC2(t, 2048)
	a.SetDefaultQuota(60)
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/dummy0", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/real"); err != nil {
		t.Fatal(err)
	}
	// Each payload block converts a dummy block (net-zero) but Save's
	// pointer blocks and the growth beyond the budget must be refused.
	big := prng.NewFromUint64(1).Bytes(30 * a.Vol().PayloadSize())
	err = s.Write("/real", big, 0)
	if err == nil {
		// Conversion is net-zero until pointer blocks push past the
		// budget; force more growth until the gate fires.
		for i := 0; i < 10 && err == nil; i++ {
			err = s.Truncate("/real", uint64(40+i*10)*uint64(a.Vol().PayloadSize()))
		}
	}
	if err != nil && !errors.Is(err, stegfs.ErrVolumeFull) && !errors.Is(err, ErrNoDummySpace) {
		t.Fatalf("growth failure has wrong type: %v", err)
	}
	if q := a.Quota("alice"); q != 60 {
		t.Fatalf("quota = %d", q)
	}
	if u := a.Usage("alice"); u > 70 {
		t.Fatalf("usage %d blew far past the 60-block budget", u)
	}
}

func TestQuotaPerLoginOverride(t *testing.T) {
	a, _ := newC2(t, 2048)
	a.SetDefaultQuota(10)
	a.SetQuota("bob", 200)
	s, err := a.LoginWithPassphrase("bob", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/dummy0", 100); err != nil {
		t.Fatal(err)
	}
	a.SetQuota("bob", 0) // back to the 10-block default
	if q := a.Quota("bob"); q != 10 {
		t.Fatalf("override not cleared: %d", q)
	}
	if _, err := s.Create("/real"); !errors.Is(err, stegfs.ErrVolumeFull) {
		t.Fatalf("create over reverted budget: %v", err)
	}
}

func TestQuotaDoesNotBlockReopen(t *testing.T) {
	// A quota below a file's existing footprint must not stop the user
	// from disclosing it again: reopening re-claims blocks the login
	// already owns, it does not allocate.
	a, _ := newC2(t, 2048)
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/dummy0", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/real"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(2).Bytes(10 * a.Vol().PayloadSize())
	if err := s.Write("/real", msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Logout("alice"); err != nil {
		t.Fatal(err)
	}

	a.SetDefaultQuota(5) // far below the existing footprint
	s2, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Disclose("/dummy0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Disclose("/real"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s2.Read("/real", got, 0); err != nil {
		t.Fatal(err)
	}
	// But new allocation is refused.
	if _, err := s2.Create("/more"); !errors.Is(err, stegfs.ErrVolumeFull) {
		t.Fatalf("create under exhausted budget: %v", err)
	}
}

func TestQuotaRelocationNetZero(t *testing.T) {
	// Dummy traffic and Figure-6 relocation swap block roles; they must
	// not leak usage in either direction.
	a, _ := newC2(t, 2048)
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/dummy0", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/real"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(3).Bytes(8 * a.Vol().PayloadSize())
	if err := s.Write("/real", msg, 0); err != nil {
		t.Fatal(err)
	}
	before := a.Usage("alice")
	for i := 0; i < 5; i++ {
		if err := s.Write("/real", msg, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.DummyUpdateBurst(20); err != nil {
			t.Fatal(err)
		}
	}
	if after := a.Usage("alice"); after != before {
		t.Fatalf("usage drifted %d -> %d across rewrites and dummy traffic", before, after)
	}
}
