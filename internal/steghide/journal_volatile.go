package steghide

import (
	"steghide/internal/journal"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// c2Intents is Construction 2's journal adapter. Unlike C1 it keeps
// its maps under the agent's registry mutex (a.mu) — the vacate hook
// runs inside CommitRelocate, which already holds it — and its limbo
// entries remember the dummy file that donated each relocation
// target, because the vacated block is promised to that file once the
// move commits.
//
// The volatile construction's recovery is necessarily incremental:
// the agent boots with no file keys, so intents resolve when users
// disclose the files they name. Until then the blocks an unresolved
// intent touches are quarantined — registered as pending, stripped
// from any disclosed dummy file's stale map — so no refill,
// allocation, or donation can destroy what might be live data.
type c2Intents struct {
	a *VolatileAgent
	j *journal.Journal

	// owner and limbo are guarded by a.mu.
	owner map[uint64]uint64
	limbo map[uint64][]c2Vacated
}

// c2Vacated is one relocation's vacated block awaiting the owning
// file's durable save.
type c2Vacated struct {
	loc   uint64
	donor *stegfs.File // dummy file owed the block
	user  string
}

// c2Recovery is the parsed ring, consumed as disclosures arrive.
type c2Recovery struct {
	// pending holds unresolved intents keyed by the header location
	// of the file whose disclosure will decide them.
	pending map[uint64][]journal.Record
	// touch counts unresolved intents per block location; a non-zero
	// count quarantines the location.
	touch map[uint64]int
	// data marks locations the ring alone proves hold live data: an
	// intent covered by a later save of its file is committed even if
	// that file is never disclosed this session.
	data map[uint64]bool
	// dataReloc maps a committed relocation's target to its vacated
	// source, so the source can be donated to whichever dummy file
	// turns out to hold the stale claim on the target.
	dataReloc map[uint64]uint64
	// donors remembers, per quarantined location, the disclosed dummy
	// file it was stripped from, for reinstatement if the intent
	// resolves to "cover".
	donors    map[uint64]*stegfs.File
	donorUser map[uint64]string
}

func (r *c2Recovery) empty() bool {
	return r == nil || (len(r.pending) == 0 && len(r.data) == 0)
}

// protects reports whether recovery still constrains loc: quarantined
// by an unresolved intent, or proven live by the ring.
func (r *c2Recovery) protects(loc uint64) bool {
	if r == nil {
		return false
	}
	return r.touch[loc] > 0 || r.data[loc]
}

// NoteOwner implements stegfs.IntentLog.
func (c *c2Intents) NoteOwner(loc, headerLoc uint64) {
	a := c.a
	a.mu.Lock()
	c.owner[loc] = headerLoc
	a.mu.Unlock()
}

// LogAlloc implements stegfs.IntentLog.
func (c *c2Intents) LogAlloc(headerLoc uint64, locs []uint64) error {
	a := c.a
	a.mu.Lock()
	for _, loc := range locs {
		c.owner[loc] = headerLoc
	}
	a.mu.Unlock()
	return c.j.AppendAlloc(headerLoc, locs)
}

// LogFree implements stegfs.IntentLog.
func (c *c2Intents) LogFree(headerLoc uint64, locs []uint64) error {
	a := c.a
	a.mu.Lock()
	for _, loc := range locs {
		delete(c.owner, loc)
	}
	a.mu.Unlock()
	return c.j.AppendFree(headerLoc, locs)
}

// LogSave implements stegfs.IntentLog: the header write is durable,
// so the file's vacated blocks finally join the dummy files they were
// promised to.
func (c *c2Intents) LogSave(headerLoc uint64) error {
	a := c.a
	a.mu.Lock()
	freed := c.limbo[headerLoc]
	delete(c.limbo, headerLoc)
	for _, v := range freed {
		// The donor must still be disclosed; a dummy file forgotten at
		// logout cannot durably claim the block, so it is abandoned
		// (conservative: unreachable cover, never data loss).
		if v.donor != nil && a.fileStillKnown(v.donor) {
			if err := v.donor.AppendBlockLoc(v.loc); err == nil {
				a.register(v.loc, &ownerInfo{file: v.donor, user: v.user, dummy: true})
				continue
			}
		}
		a.unregister(v.loc)
	}
	a.mu.Unlock()
	return c.j.AppendSave(headerLoc)
}

// BeginReloc implements sched.IntentLog.
func (c *c2Intents) BeginReloc(oldLoc, newLoc uint64) error {
	a := c.a
	a.mu.Lock()
	h := c.owner[oldLoc]
	a.mu.Unlock()
	return c.j.AppendReloc(h, oldLoc, newLoc)
}

// DummyIntent implements sched.IntentLog.
func (c *c2Intents) DummyIntent(n int) error {
	if n == 1 {
		return c.j.AppendDummy()
	}
	return c.j.AppendDummies(n)
}

// vacatedLocked is the CommitRelocate hook; the caller holds a.mu.
func (c *c2Intents) vacatedLocked(oldLoc, newLoc uint64, donor *stegfs.File, user string) {
	h := c.owner[oldLoc]
	delete(c.owner, oldLoc)
	c.owner[newLoc] = h
	c.limbo[h] = append(c.limbo[h], c2Vacated{loc: oldLoc, donor: donor, user: user})
}

// fileStillKnown reports whether f is still a disclosed file (its
// header registration points at it); the caller holds a.mu.
func (a *VolatileAgent) fileStillKnown(f *stegfs.File) bool {
	info, ok := a.known[f.HeaderLoc()]
	return ok && info.file == f
}

// EnableJournal wires the volatile agent to the volume's journal
// ring. The key is the administrator's journal key: Construction 2
// keeps no persistent secrets, so durability across crashes needs one
// secret held outside the agent — disclosing it reveals the recent
// intent window (bounded by the ring size and scrubbed by wrap), and
// nothing about undisclosed files.
func (a *VolatileAgent) EnableJournal(key sealer.Key) error {
	j, err := journal.Open(a.vol, key)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.jc2 = &c2Intents{a: a, j: j, owner: map[uint64]uint64{}, limbo: map[uint64][]c2Vacated{}}
	a.mu.Unlock()
	a.vol.SetIntentLog(a.jc2)
	a.sched.SetIntentLog(a.jc2)
	return nil
}

// Journaled reports whether EnableJournal has run.
func (a *VolatileAgent) Journaled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.jc2 != nil
}

// Recover scans the intent ring after a crash and arms the
// incremental resolution machinery: intents a later save already
// committed yield ring-proven verdicts at once (their targets are
// live data, whoever's stale dummy map still claims them); the rest
// quarantine the blocks they touch until the file they name is
// disclosed and its durable header decides them. Call after
// EnableJournal, before serving logins.
func (a *VolatileAgent) Recover() (*journal.Report, error) {
	a.structMu.Lock()
	defer a.structMu.Unlock()
	a.mu.Lock()
	jc := a.jc2
	a.mu.Unlock()
	if jc == nil {
		return nil, journal.ErrNoJournal
	}
	recs, err := jc.j.Scan()
	if err != nil {
		return nil, err
	}
	rec := &c2Recovery{
		pending:   map[uint64][]journal.Record{},
		touch:     map[uint64]int{},
		data:      map[uint64]bool{},
		dataReloc: map[uint64]uint64{},
		donors:    map[uint64]*stegfs.File{},
		donorUser: map[uint64]string{},
	}
	lastSave := map[uint64]uint64{}
	for _, r := range recs {
		if r.Op == journal.OpSave {
			lastSave[r.FileH] = r.Seq
		}
	}
	rep := &journal.Report{Records: len(recs)}
	for _, r := range recs {
		switch r.Op {
		case journal.OpReloc:
			if lastSave[r.FileH] > r.Seq {
				rec.data[r.NewLoc] = true
				delete(rec.data, r.OldLoc)
				rec.dataReloc[r.NewLoc] = r.OldLoc
				rep.RelocsCommitted++
			} else {
				rec.pending[r.FileH] = append(rec.pending[r.FileH], r)
				rec.touch[r.OldLoc]++
				rec.touch[r.NewLoc]++
				rep.Unresolved++
			}
		case journal.OpAlloc:
			if lastSave[r.FileH] > r.Seq {
				for _, loc := range r.Locs {
					rec.data[loc] = true
				}
			} else {
				rec.pending[r.FileH] = append(rec.pending[r.FileH], r)
				for _, loc := range r.Locs {
					rec.touch[loc]++
				}
				rep.Unresolved++
			}
		case journal.OpFree:
			if lastSave[r.FileH] > r.Seq {
				for _, loc := range r.Locs {
					delete(rec.data, loc)
				}
			} else {
				rec.pending[r.FileH] = append(rec.pending[r.FileH], r)
				for _, loc := range r.Locs {
					rec.touch[loc]++
				}
				rep.Unresolved++
			}
		}
	}
	a.mu.Lock()
	a.recov = rec
	a.mu.Unlock()
	return rep, nil
}

// applyRecovery resolves every pending intent naming f against f's
// freshly disclosed block map. The caller holds structMu exclusively;
// registerFile(f) must already have run.
func (a *VolatileAgent) applyRecovery(f *stegfs.File) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.recov
	if r == nil {
		return
	}
	h := f.HeaderLoc()
	recs := r.pending[h]
	if len(recs) == 0 {
		return
	}
	delete(r.pending, h)

	refs := map[uint64]bool{h: true}
	for _, loc := range f.BlockLocs() {
		refs[loc] = true
	}
	for _, loc := range f.IndirectLocs() {
		refs[loc] = true
	}

	resolve := func(loc uint64, used bool) {
		if r.touch[loc] > 0 {
			r.touch[loc]--
		}
		if r.touch[loc] > 0 {
			return // still quarantined by another unresolved intent
		}
		donor := r.donors[loc]
		delete(r.donors, loc)
		user := r.donorUser[loc]
		delete(r.donorUser, loc)
		if used {
			// Live data of f; registerFile already claimed it, and any
			// stale dummy claim was stripped at quarantine time.
			return
		}
		// Cover: reinstate the stripped donor's claim, or abandon.
		if donor != nil && a.fileStillKnown(donor) {
			if err := donor.AppendBlockLoc(loc); err == nil {
				a.register(loc, &ownerInfo{file: donor, user: user, dummy: true})
				return
			}
		}
		if info, ok := a.known[loc]; ok && info.pending && info.file == nil {
			a.unregister(loc)
		}
	}

	for _, rec := range recs {
		switch rec.Op {
		case journal.OpReloc:
			committed := refs[rec.NewLoc]
			// A committed move makes the vacated block cover owed to
			// whichever dummy file donated the target.
			if committed {
				if donor := r.donors[rec.NewLoc]; donor != nil && !refs[rec.OldLoc] {
					r.donors[rec.OldLoc] = donor
					r.donorUser[rec.OldLoc] = r.donorUser[rec.NewLoc]
				}
			}
			resolve(rec.NewLoc, committed)
			resolve(rec.OldLoc, refs[rec.OldLoc])
		default: // OpAlloc, OpFree: the durable map decides each block
			for _, loc := range rec.Locs {
				resolve(loc, refs[loc])
			}
		}
	}
}

// quarantineDummyLocked decides, under a.mu, what a freshly disclosed
// dummy file's claim on loc becomes. It returns true when the claim
// was diverted (stripped or quarantined) and the caller must not
// register it as a dummy block.
func (a *VolatileAgent) quarantineDummyLocked(f *stegfs.File, user string, loc uint64) bool {
	// A real file's live claim always beats a dummy file's stale disk
	// map (the real file's cached map is the freshest truth).
	if old, ok := a.known[loc]; ok && old.file != nil && !old.file.IsDummy() {
		_ = f.RemoveBlockLoc(loc)
		return true
	}
	r := a.recov
	if r == nil {
		return false
	}
	if r.data[loc] {
		// Ring-proven live data of an undisclosed file: strip the stale
		// claim for good, park the block as pending, and donate the
		// committed relocation's vacated source to this dummy file in
		// exchange.
		_ = f.RemoveBlockLoc(loc)
		a.register(loc, &ownerInfo{user: user, pending: true})
		if old, ok := r.dataReloc[loc]; ok {
			delete(r.dataReloc, loc)
			if _, known := a.known[old]; !known {
				if err := f.AppendBlockLoc(old); err == nil {
					a.register(old, &ownerInfo{file: f, user: user, dummy: true})
				}
			}
		}
		return true
	}
	if r.touch[loc] > 0 {
		// Unresolved intent: quarantine until the file it names is
		// disclosed; remember the donor for reinstatement.
		_ = f.RemoveBlockLoc(loc)
		a.register(loc, &ownerInfo{user: user, pending: true})
		if r.donors[loc] == nil {
			r.donors[loc] = f
			r.donorUser[loc] = user
		}
		return true
	}
	return false
}

// JournalKey derives a Construction 2 journal key from an
// administrator passphrase and the volume salt.
func JournalKey(vol *stegfs.Volume, passphrase string) sealer.Key {
	master := sealer.KeyFromPassphrase(passphrase, vol.Salt(), vol.KDFIterations())
	return sealer.DeriveKey(master[:], "steghide-c2-journal-key")
}
