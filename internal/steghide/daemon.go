package steghide

import (
	"errors"
	"sync"
	"time"

	"steghide/internal/obs"
)

// DummySource is anything that can emit one dummy update — both agent
// constructions implement it.
type DummySource interface {
	DummyUpdate() error
}

// BurstDummySource is a DummySource that can emit a whole burst of
// dummy updates through the batched I/O plane, reporting how many it
// actually issued — both agent constructions implement it.
type BurstDummySource interface {
	DummyUpdateBurst(n int) (int, error)
}

// ActivitySource reports a monotonically increasing count of real
// (data) updates on the stream — both agent constructions implement
// it by exposing the scheduler's data-update counter.
type ActivitySource interface {
	DataSeq() uint64
}

// Daemon issues dummy updates, §4.1.3's "whenever there is no user
// activity, the agent would issue dummy updates on randomly selected
// blocks". Real updates are indistinguishable from the daemon's
// traffic, so the period is a bandwidth/latency knob, not a security
// one — the stream must simply never be silent while the system is
// up.
//
// When the source also reports activity (ActivitySource — both agents
// do), the daemon is adaptive: a tick that finds real updates have
// flowed since the previous tick emits nothing, because the stream
// was demonstrably not silent; only genuinely idle gaps are filled.
// Skipping is invisible to the attacker — every stream element is
// identically distributed whether a session or the daemon produced it
// — and stops the daemon from competing with real traffic for
// bandwidth. WithAdaptive(false) restores unconditional ticking.
//
// A Daemon is restartable: Stop followed by Start begins a fresh run
// (counters accumulate across runs).
type Daemon struct {
	src      DummySource
	period   time.Duration
	burst    int
	activity ActivitySource
	adaptive bool

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	lastSeq uint64
	lastErr error // most recent tick error, guarded by mu

	// Tick counters are obs.Counter so EnableMetrics can export the
	// same atomics the accessors read — one source of truth.
	issued  obs.Counter
	skipped obs.Counter
	errs    obs.Counter
}

// NewDaemon prepares (but does not start) a dummy-traffic daemon.
// Sources that report activity get the adaptive behaviour by default.
func NewDaemon(src DummySource, period time.Duration) *Daemon {
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	d := &Daemon{src: src, period: period, burst: 1}
	if as, ok := src.(ActivitySource); ok {
		d.activity = as
		d.adaptive = true
	}
	return d
}

// WithBurst makes each tick issue n dummy updates instead of one,
// routed through the source's batched path when it has one
// (BurstDummySource) and a plain loop otherwise. On an agent with
// EnablePipeline, each burst additionally runs the staged seal
// pipeline — same observable stream, less wall-clock per tick. Must
// be called before Start. It returns the daemon for chaining.
func (d *Daemon) WithBurst(n int) *Daemon {
	if n < 1 {
		n = 1
	}
	d.burst = n
	return d
}

// WithAdaptive enables or disables idle-gap detection. Must be called
// before Start. It returns the daemon for chaining.
func (d *Daemon) WithAdaptive(on bool) *Daemon {
	d.adaptive = on && d.activity != nil
	return d
}

// Start launches the background loop. Starting a running daemon is a
// no-op; starting after Stop begins a fresh run.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	// Re-baseline the activity watermark so updates that flowed while
	// the daemon was stopped do not suppress the first tick of a
	// restarted run.
	if d.activity != nil {
		d.lastSeq = d.activity.DataSeq()
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

func (d *Daemon) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			issued, skipped, err := d.tick()
			d.issued.Add(issued) // partial bursts still count what went out
			if skipped {
				d.skipped.Inc()
			}
			switch {
			case err == nil:
			case errors.Is(err, ErrNoDummySpace):
				// Nothing disclosed yet — normal at boot; keep ticking.
			default:
				d.errs.Inc()
				d.mu.Lock()
				d.lastErr = err
				d.mu.Unlock()
			}
		}
	}
}

// tick emits one period's worth of dummy traffic, returning how many
// updates actually went out (a burst can come up short when few
// targets are eligible) and whether the tick was skipped because real
// traffic already kept the stream busy.
func (d *Daemon) tick() (uint64, bool, error) {
	if d.adaptive {
		seq := d.activity.DataSeq()
		d.mu.Lock()
		busy := seq != d.lastSeq
		d.lastSeq = seq
		d.mu.Unlock()
		if busy {
			return 0, true, nil
		}
	}
	if d.burst > 1 {
		if bs, ok := d.src.(BurstDummySource); ok {
			n, err := bs.DummyUpdateBurst(d.burst)
			return uint64(n), false, err
		}
		for i := 0; i < d.burst; i++ {
			if err := d.src.DummyUpdate(); err != nil {
				return uint64(i), false, err
			}
		}
		return uint64(d.burst), false, nil
	}
	if err := d.src.DummyUpdate(); err != nil {
		return 0, false, err
	}
	return 1, false, nil
}

// Stop halts the loop and waits for it to exit. Stopping a stopped
// daemon is a no-op.
func (d *Daemon) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Issued returns how many dummy updates the daemon has emitted.
func (d *Daemon) Issued() uint64 { return d.issued.Load() }

// Skipped returns how many ticks the adaptive daemon suppressed
// because real updates already kept the stream busy.
func (d *Daemon) Skipped() uint64 { return d.skipped.Load() }

// Errors returns the failure count and the most recent error.
func (d *Daemon) Errors() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.errs.Load(), d.lastErr
}

// EnableMetrics exports the daemon's tick counters through reg. The
// counters describe dummy traffic cadence — something the attacker
// watching the device already sees in full — and the skip counter
// only reveals that *some* real traffic flowed in a period, which the
// stream's own cadence reveals identically. Safe to call while the
// daemon runs.
func (d *Daemon) EnableMetrics(reg *obs.Registry, volume string) {
	l := []string{"volume", volume}
	reg.RegisterCounter("steghide_daemon_issued_total",
		"dummy updates the idle daemon has emitted", &d.issued, l...)
	reg.RegisterCounter("steghide_daemon_skipped_total",
		"adaptive ticks suppressed because real traffic kept the stream busy", &d.skipped, l...)
	reg.RegisterCounter("steghide_daemon_errors_total",
		"daemon ticks that failed", &d.errs, l...)
}
