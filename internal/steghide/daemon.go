package steghide

import (
	"errors"
	"sync"
	"time"
)

// DummySource is anything that can emit one dummy update — both agent
// constructions implement it.
type DummySource interface {
	DummyUpdate() error
}

// Daemon issues dummy updates on a fixed period, §4.1.3's "whenever
// there is no user activity, the agent would issue dummy updates on
// randomly selected blocks". Real updates are indistinguishable from
// the daemon's traffic, so the period is a bandwidth/latency knob,
// not a security one — the stream must simply never be silent while
// the system is up.
type Daemon struct {
	src    DummySource
	period time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	issued  uint64
	errs    uint64
	lastErr error
}

// NewDaemon prepares (but does not start) a dummy-traffic daemon.
func NewDaemon(src DummySource, period time.Duration) *Daemon {
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	return &Daemon{src: src, period: period}
}

// Start launches the background loop. Starting a running daemon is a
// no-op.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

func (d *Daemon) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			err := d.src.DummyUpdate()
			d.mu.Lock()
			switch {
			case err == nil:
				d.issued++
			case errors.Is(err, ErrNoDummySpace):
				// Nothing disclosed yet — normal at boot; keep ticking.
			default:
				d.errs++
				d.lastErr = err
			}
			d.mu.Unlock()
		}
	}
}

// Stop halts the loop and waits for it to exit. Stopping a stopped
// daemon is a no-op.
func (d *Daemon) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Issued returns how many dummy updates the daemon has emitted.
func (d *Daemon) Issued() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.issued
}

// Errors returns the failure count and the most recent error.
func (d *Daemon) Errors() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.errs, d.lastErr
}
