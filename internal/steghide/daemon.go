package steghide

import (
	"errors"
	"sync"
	"time"
)

// DummySource is anything that can emit one dummy update — both agent
// constructions implement it.
type DummySource interface {
	DummyUpdate() error
}

// BurstDummySource is a DummySource that can emit a whole burst of
// dummy updates through the batched I/O plane, reporting how many it
// actually issued — both agent constructions implement it.
type BurstDummySource interface {
	DummyUpdateBurst(n int) (int, error)
}

// Daemon issues dummy updates on a fixed period, §4.1.3's "whenever
// there is no user activity, the agent would issue dummy updates on
// randomly selected blocks". Real updates are indistinguishable from
// the daemon's traffic, so the period is a bandwidth/latency knob,
// not a security one — the stream must simply never be silent while
// the system is up.
type Daemon struct {
	src    DummySource
	period time.Duration
	burst  int

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	issued  uint64
	errs    uint64
	lastErr error
}

// NewDaemon prepares (but does not start) a dummy-traffic daemon.
func NewDaemon(src DummySource, period time.Duration) *Daemon {
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	return &Daemon{src: src, period: period, burst: 1}
}

// WithBurst makes each tick issue n dummy updates instead of one,
// routed through the source's batched path when it has one
// (BurstDummySource) and a plain loop otherwise. Must be called
// before Start. It returns the daemon for chaining.
func (d *Daemon) WithBurst(n int) *Daemon {
	if n < 1 {
		n = 1
	}
	d.burst = n
	return d
}

// Start launches the background loop. Starting a running daemon is a
// no-op.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

func (d *Daemon) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			issued, err := d.tick()
			d.mu.Lock()
			d.issued += issued // partial bursts still count what went out
			switch {
			case err == nil:
			case errors.Is(err, ErrNoDummySpace):
				// Nothing disclosed yet — normal at boot; keep ticking.
			default:
				d.errs++
				d.lastErr = err
			}
			d.mu.Unlock()
		}
	}
}

// tick emits one period's worth of dummy traffic, returning how many
// updates actually went out (a burst can come up short when few
// targets are eligible).
func (d *Daemon) tick() (uint64, error) {
	if d.burst > 1 {
		if bs, ok := d.src.(BurstDummySource); ok {
			n, err := bs.DummyUpdateBurst(d.burst)
			return uint64(n), err
		}
		for i := 0; i < d.burst; i++ {
			if err := d.src.DummyUpdate(); err != nil {
				return uint64(i), err
			}
		}
		return uint64(d.burst), nil
	}
	if err := d.src.DummyUpdate(); err != nil {
		return 0, err
	}
	return 1, nil
}

// Stop halts the loop and waits for it to exit. Stopping a stopped
// daemon is a no-op.
func (d *Daemon) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Issued returns how many dummy updates the daemon has emitted.
func (d *Daemon) Issued() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.issued
}

// Errors returns the failure count and the most recent error.
func (d *Daemon) Errors() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.errs, d.lastErr
}
