package steghide

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// pipelineFromEnv honours the STEGHIDE_PIPELINE knob the CI matrix
// sets: a worker count (0 or non-numeric selects GOMAXPROCS) that
// switches the rig's dummy bursts to the staged seal pipeline, so the
// crash-at-every-write sweeps also prove recovery is insensitive to
// the pipelined execute stage. Unset means the serial default.
func pipelineFromEnv(a interface{ EnablePipeline(int) }) {
	v := os.Getenv("STEGHIDE_PIPELINE")
	if v == "" {
		return
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		n = 0
	}
	a.EnablePipeline(n)
}

// The crash-matrix property tests: run a deterministic mixed
// real/dummy workload, power-cut the device at every single write
// index, recover, and assert that
//
//   - every file committed (saved) before the cut reads back intact:
//     each block holds one of the values legitimately written to it,
//     and the durable size is one a landed header could carry;
//   - the partition state matches the disk: Construction 1's bitmap
//     equals exactly the union of all surviving files' referenced
//     sets, and Construction 2's disclosed dummy maps never claim a
//     live data block (verified both structurally and by hammering
//     dummy traffic at the recovered volume and re-reading);
//   - the recovered agent is fully operational.
//
// A separate sweep repeats the matrix with a torn final block: the
// only admissible damage is the fatal write's own target block, and
// it must never be silent (open fails or the block is exempted).

// crashTrack records, per file, every durably-acceptable state.
type crashTrack struct {
	ps    uint64
	files map[string]*fileTrack
}

type fileTrack struct {
	allowed   map[uint64][][]byte // logical block → acceptable payloads
	mirror    map[uint64][]byte   // latest written payload
	sizes     map[uint64]bool     // acceptable durable sizes
	curSize   uint64
	mayMiss   bool // created or deleted inside the crash window
	deleteRan bool // Delete returned success: must not open
}

func newCrashTrack(ps uint64) *crashTrack {
	return &crashTrack{ps: ps, files: map[string]*fileTrack{}}
}

func (c *crashTrack) file(path string) *fileTrack {
	ft, ok := c.files[path]
	if !ok {
		ft = &fileTrack{
			allowed: map[uint64][][]byte{},
			mirror:  map[uint64][]byte{},
			sizes:   map[uint64]bool{0: true},
		}
		c.files[path] = ft
	}
	return ft
}

// noteWrite records a full-block write attempt (acceptable whether or
// not it lands; growth blocks may also read back as zeros).
func (c *crashTrack) noteWrite(path string, li uint64, payload []byte) {
	ft := c.file(path)
	if _, written := ft.mirror[li]; !written {
		ft.allowed[li] = append(ft.allowed[li], make([]byte, c.ps))
	}
	ft.allowed[li] = append(ft.allowed[li], payload)
	ft.mirror[li] = payload
	if end := (li + 1) * c.ps; end > ft.curSize {
		ft.curSize = end
	}
}

// noteSyncAttempt: the header may land with the current size.
func (c *crashTrack) noteSyncAttempt(path string) { ft := c.file(path); ft.sizes[ft.curSize] = true }

// noteSyncOK: the save returned — earlier states are no longer
// reachable through the durable header.
func (c *crashTrack) noteSyncOK(path string) {
	ft := c.file(path)
	ft.sizes = map[uint64]bool{ft.curSize: true}
	for li, v := range ft.mirror {
		ft.allowed[li] = [][]byte{v}
	}
}

// payloadFor builds a deterministic full-block payload.
func payloadFor(ps uint64, path string, li uint64, tag int) []byte {
	return prng.New([]byte(fmt.Sprintf("%s|%d|%d", path, li, tag))).Bytes(int(ps))
}

func inAllowed(allowed [][]byte, got []byte) bool {
	for _, a := range allowed {
		if bytes.Equal(a, got) {
			return true
		}
	}
	return false
}

// verifyTrackedFile checks one reopened file against its track.
// tornLoc (when torn) is the single block the cut may have corrupted.
func verifyTrackedFile(t *testing.T, path string, ft *fileTrack, f *stegfs.File,
	ps uint64, torn bool, tornLoc uint64) (refs []uint64) {
	t.Helper()
	if ft.deleteRan {
		t.Fatalf("cut=%s: deleted file %q still opens", t.Name(), path)
	}
	size := f.Size()
	if !ft.sizes[size] {
		t.Fatalf("%q: durable size %d not among acceptable %v", path, size, ft.sizes)
	}
	for li := uint64(0); li*ps < size; li++ {
		loc, err := f.BlockLoc(li)
		if err != nil {
			t.Fatalf("%q block %d: %v", path, li, err)
		}
		if torn && loc == tornLoc {
			continue // the torn block: damage is confined and located
		}
		got, err := f.ReadBlockAt(li)
		if err != nil {
			t.Fatalf("%q block %d: %v", path, li, err)
		}
		if !inAllowed(ft.allowed[li], got) {
			t.Fatalf("%q block %d (loc %d) holds none of its %d acceptable values",
				path, li, loc, len(ft.allowed[li]))
		}
	}
	refs = append(refs, f.HeaderLoc())
	refs = append(refs, f.BlockLocs()...)
	refs = append(refs, f.IndirectLocs()...)
	return refs
}

// --- Construction 1 ---------------------------------------------------

const (
	crashBS = 256
	// The ring must cover every intent since the oldest stale dummy-map
	// save (see DESIGN.md "Sizing the ring"); the test workloads append
	// ~230 records end to end.
	crashJournal = 384
	crashSteg    = 256
	crashNBlocks = 1 + crashJournal + crashSteg
)

var c1CrashSecret = []byte("crash-c1-secret")

type c1CrashRig struct {
	mem   *blockdev.Mem
	fd    *blockdev.FaultDevice
	vol   *stegfs.Volume
	agent *NonVolatileAgent
	state []byte
	track *crashTrack
	hdrs  map[string]uint64
}

// setupC1Crash formats, journals, creates the initial committed files
// and takes the external bitmap snapshot — all before the cut window.
func setupC1Crash(t *testing.T) *c1CrashRig {
	t.Helper()
	mem := blockdev.NewMem(crashBS, crashNBlocks)
	fd := blockdev.NewFault(mem)
	vol, err := stegfs.Format(fd, stegfs.FormatOptions{
		KDFIterations: 2, FillSeed: []byte("crash-c1"), JournalBlocks: crashJournal,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewNonVolatile(vol, c1CrashSecret, prng.NewFromUint64(41))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	pipelineFromEnv(agent)
	rig := &c1CrashRig{
		mem: mem, fd: fd, vol: vol, agent: agent,
		track: newCrashTrack(uint64(vol.PayloadSize())),
		hdrs:  map[string]uint64{},
	}
	ps := rig.track.ps
	for _, init := range []struct {
		path   string
		blocks uint64
	}{{"/a", 3}, {"/b", 4}, {"/c", 2}} {
		f, err := agent.Create("alice", init.path)
		if err != nil {
			t.Fatal(err)
		}
		rig.hdrs[init.path] = f.HeaderLoc()
		for li := uint64(0); li < init.blocks; li++ {
			p := payloadFor(ps, init.path, li, 0)
			if err := agent.Write(init.path, p, li*ps); err != nil {
				t.Fatal(err)
			}
			rig.track.noteWrite(init.path, li, p)
		}
		rig.track.noteSyncAttempt(init.path)
		if err := agent.Sync(init.path); err != nil {
			t.Fatal(err)
		}
		rig.track.noteSyncOK(init.path)
	}
	state, err := agent.State()
	if err != nil {
		t.Fatal(err)
	}
	rig.state = state
	return rig
}

// phaseB runs the crash-window workload, stopping at the first error
// (the power cut). Every state transition is tracked first, so the
// cut can land inside any operation.
func (rig *c1CrashRig) phaseB() error {
	a, tr := rig.agent, rig.track
	ps := tr.ps
	step := func(fn func() error) error { return fn() }
	write := func(path string, li uint64, tag int) func() error {
		return func() error {
			p := payloadFor(ps, path, li, tag)
			tr.noteWrite(path, li, p)
			return a.Write(path, p, li*ps)
		}
	}
	sync := func(path string) func() error {
		return func() error {
			tr.noteSyncAttempt(path)
			if err := a.Sync(path); err != nil {
				return err
			}
			tr.noteSyncOK(path)
			return nil
		}
	}
	ops := []func() error{
		// Rewrite committed blocks (relocations + in-place).
		write("/a", 0, 1), write("/a", 1, 1), write("/a", 2, 1),
		sync("/a"),
		func() error { return a.DummyUpdate() },
		write("/b", 1, 1), write("/b", 3, 1),
		func() error { _, err := a.DummyUpdateBurst(8); return err },
		sync("/b"),
		// Create a new file inside the window.
		func() error {
			tr.file("/d").mayMiss = true
			f, err := a.Create("alice", "/d")
			if err != nil {
				return err
			}
			rig.hdrs["/d"] = f.HeaderLoc()
			return nil
		},
		write("/d", 0, 0), write("/d", 1, 0),
		sync("/d"),
		// Grow /b past the direct slots so Save allocates an indirect
		// block inside the window.
		func() error {
			for li := uint64(4); li < 22; li++ {
				p := payloadFor(ps, "/b", li, 2)
				tr.noteWrite("/b", li, p)
				if err := a.Write("/b", p, li*ps); err != nil {
					return err
				}
			}
			return nil
		},
		sync("/b"),
		func() error { return a.DummyUpdate() },
		write("/a", 1, 2),
		// Delete /c inside the window.
		func() error {
			tr.file("/c").mayMiss = true
			h, err := a.handle("/c", nil)
			if err != nil {
				return err
			}
			if err := a.Close("/c"); err != nil {
				return err
			}
			if err := h.f.Delete(); err != nil {
				return err
			}
			tr.file("/c").deleteRan = true
			return nil
		},
		func() error { _, err := a.DummyUpdateBurst(8); return err },
		write("/a", 0, 3),
		sync("/a"),
	}
	for _, op := range ops {
		if err := step(op); err != nil {
			return err
		}
	}
	return nil
}

// verifyC1Crash reboots, recovers, and checks every guarantee.
func verifyC1Crash(t *testing.T, rig *c1CrashRig, torn bool) {
	t.Helper()
	rig.fd.Heal()
	tornLoc, tornValid := rig.fd.CutBlock()
	vol, err := stegfs.Open(rig.fd)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewNonVolatile(vol, c1CrashSecret, prng.NewFromUint64(97))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	if err := agent.LoadState(rig.state); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Recover(); err != nil {
		t.Fatal(err)
	}

	// Content: every tracked file, via an independent handle so the
	// agent's recovered bitmap stays unperturbed for the comparison.
	referenced := map[uint64]bool{}
	opened := map[string]bool{}
	for path, ft := range rig.track.files {
		scratch := stegfs.NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(1))
		f, err := stegfs.OpenFile(vol, agent.fileFAK("alice", path), path, scratch)
		if err != nil {
			switch {
			case errors.Is(err, stegfs.ErrNotFound) && (ft.mayMiss || ft.deleteRan):
			case torn && tornValid && errors.Is(err, stegfs.ErrNotFound) && rig.hdrs[path] == tornLoc:
				// torn header: the loss is located, not silent
			case torn && errors.Is(err, stegfs.ErrCorrupt):
				// torn pointer block: detected, not silent
			default:
				t.Fatalf("%q failed to open after recovery: %v", path, err)
			}
			continue
		}
		opened[path] = true
		for _, loc := range verifyTrackedFile(t, path, ft, f, rig.track.ps, torn && tornValid, tornLoc) {
			referenced[loc] = true
		}
	}

	// Partition: the recovered bitmap must equal the union of the
	// surviving files' referenced sets (exact in the atomic-write
	// model; a torn block can have detached a whole file).
	if !torn {
		src := agent.Source()
		for loc := vol.FirstDataBlock(); loc < vol.NumBlocks(); loc++ {
			used := !src.IsFree(loc)
			if used != referenced[loc] {
				t.Fatalf("bitmap disagrees with disk at block %d: used=%v referenced=%v",
					loc, used, referenced[loc])
			}
		}
	}

	// Operability: the recovered agent serves traffic, exercised on a
	// file the crash left reachable (a torn header can legitimately
	// have taken one file with it — a located, detected loss).
	for i := 0; i < 8; i++ {
		if err := agent.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"/a", "/b", "/d"} {
		if !opened[path] {
			continue
		}
		if _, err := agent.Open("alice", path); err != nil {
			t.Fatalf("reopen %q through the agent: %v", path, err)
		}
		ps := rig.track.ps
		p := payloadFor(ps, path, 0, 99)
		if err := agent.Write(path, p, 0); err != nil {
			t.Fatal(err)
		}
		if err := agent.Sync(path); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, ps)
		if _, err := agent.Read(path, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatal("post-recovery write did not read back")
		}
		break
	}
}

func TestC1CrashMatrix(t *testing.T) {
	// Reference run: no cut, learn the write count, and verify that
	// recovery after a clean run is a no-op.
	ref := setupC1Crash(t)
	base := ref.fd.Writes()
	if err := ref.phaseB(); err != nil {
		t.Fatal(err)
	}
	total := ref.fd.Writes() - base
	verifyC1Crash(t, ref, false)

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for k := int64(0); k < total; k += stride {
		rig := setupC1Crash(t)
		rig.fd.PowerCutAfterWrites(k)
		if err := rig.phaseB(); err == nil {
			t.Fatalf("cut at %d did not interrupt the workload", k)
		}
		verifyC1Crash(t, rig, false)
	}
	t.Logf("C1 crash matrix: %d write indices", total)
}

func TestC1CrashMatrixTornWrites(t *testing.T) {
	ref := setupC1Crash(t)
	base := ref.fd.Writes()
	if err := ref.phaseB(); err != nil {
		t.Fatal(err)
	}
	total := ref.fd.Writes() - base

	stride := int64(3)
	if testing.Short() {
		stride = 11
	}
	for k := int64(0); k < total; k += stride {
		rig := setupC1Crash(t)
		rig.fd.PowerCutTorn(k, 0.55)
		if err := rig.phaseB(); err == nil {
			t.Fatalf("torn cut at %d did not interrupt the workload", k)
		}
		verifyC1Crash(t, rig, true)
	}
}

// --- Construction 2 ---------------------------------------------------

type c2CrashRig struct {
	mem   *blockdev.Mem
	fd    *blockdev.FaultDevice
	vol   *stegfs.Volume
	agent *VolatileAgent
	sess  *Session
	track *crashTrack
}

const c2AdminPass = "crash-c2-admin"

// setupC2Crash formats, journals, and commits the initial disclosed
// state: one dummy file for cover and two saved real files.
func setupC2Crash(t *testing.T) *c2CrashRig {
	t.Helper()
	mem := blockdev.NewMem(crashBS, crashNBlocks)
	fd := blockdev.NewFault(mem)
	vol, err := stegfs.Format(fd, stegfs.FormatOptions{
		KDFIterations: 2, FillSeed: []byte("crash-c2"), JournalBlocks: crashJournal,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent := NewVolatile(vol, prng.NewFromUint64(43))
	if err := agent.EnableJournal(JournalKey(vol, c2AdminPass)); err != nil {
		t.Fatal(err)
	}
	pipelineFromEnv(agent)
	sess, err := agent.LoginWithPassphrase("alice", "pw-alice")
	if err != nil {
		t.Fatal(err)
	}
	rig := &c2CrashRig{
		mem: mem, fd: fd, vol: vol, agent: agent, sess: sess,
		track: newCrashTrack(uint64(vol.PayloadSize())),
	}
	ps := rig.track.ps
	// Limbo parks every vacated block until its file's next save, so
	// the cover must outsize the longest save-free run of updates.
	if _, err := sess.CreateDummy("/cover", 96); err != nil {
		t.Fatal(err)
	}
	for _, init := range []struct {
		path   string
		blocks uint64
	}{{"/a", 3}, {"/b", 4}} {
		if _, err := sess.Create(init.path); err != nil {
			t.Fatal(err)
		}
		for li := uint64(0); li < init.blocks; li++ {
			p := payloadFor(ps, init.path, li, 0)
			if err := sess.Write(init.path, p, li*ps); err != nil {
				t.Fatal(err)
			}
			rig.track.noteWrite(init.path, li, p)
		}
		rig.track.noteSyncAttempt(init.path)
		if err := sess.Save(init.path); err != nil {
			t.Fatal(err)
		}
		rig.track.noteSyncOK(init.path)
	}
	// Bring the cover's durable map up to date with the donations the
	// file creations took from it.
	if err := sess.Save("/cover"); err != nil {
		t.Fatal(err)
	}
	return rig
}

// phaseB runs the crash-window workload, stopping at the first error.
func (rig *c2CrashRig) phaseB() error {
	sess, a, tr := rig.sess, rig.agent, rig.track
	ps := tr.ps
	write := func(path string, li uint64, tag int) func() error {
		return func() error {
			p := payloadFor(ps, path, li, tag)
			tr.noteWrite(path, li, p)
			return sess.Write(path, p, li*ps)
		}
	}
	save := func(path string) func() error {
		return func() error {
			tr.noteSyncAttempt(path)
			if err := sess.Save(path); err != nil {
				return err
			}
			tr.noteSyncOK(path)
			return nil
		}
	}
	ops := []func() error{
		write("/a", 0, 1), write("/a", 2, 1),
		save("/a"),
		func() error { return a.DummyUpdate() },
		write("/b", 1, 1),
		func() error { _, err := a.DummyUpdateBurst(8); return err },
		save("/b"),
		func() error {
			tr.file("/c").mayMiss = true
			_, err := sess.Create("/c")
			return err
		},
		write("/c", 0, 0), write("/c", 1, 0),
		save("/c"),
		// Grow /b past the direct slots: allocation draws from the
		// cover's dummy blocks and Save allocates an indirect block.
		func() error {
			for li := uint64(4); li < 22; li++ {
				p := payloadFor(ps, "/b", li, 2)
				tr.noteWrite("/b", li, p)
				if err := sess.Write("/b", p, li*ps); err != nil {
					return err
				}
			}
			return nil
		},
		save("/b"),
		// Refresh the cover's durable map mid-window.
		func() error { return sess.Save("/cover") },
		func() error { return a.DummyUpdate() },
		write("/a", 1, 2),
		// Delete /c: its blocks are donated back to the cover.
		func() error {
			tr.file("/c").mayMiss = true
			if err := sess.Delete("/c"); err != nil {
				return err
			}
			tr.file("/c").deleteRan = true
			return nil
		},
		func() error { _, err := a.DummyUpdateBurst(8); return err },
		write("/a", 0, 3),
		save("/a"),
	}
	for _, op := range ops {
		if err := op(); err != nil {
			return err
		}
	}
	return nil
}

// verifyC2Crash reboots, recovers, rediscloses in the given order,
// and checks content, dummy-map hygiene, refill-safety and
// operability.
func verifyC2Crash(t *testing.T, rig *c2CrashRig, coverFirst bool) {
	t.Helper()
	rig.fd.Heal()
	vol, err := stegfs.Open(rig.fd)
	if err != nil {
		t.Fatal(err)
	}
	agent := NewVolatile(vol, prng.NewFromUint64(99))
	if err := agent.EnableJournal(JournalKey(vol, c2AdminPass)); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Recover(); err != nil {
		t.Fatal(err)
	}
	sess, err := agent.LoginWithPassphrase("alice", "pw-alice")
	if err != nil {
		t.Fatal(err)
	}

	order := []string{"/cover", "/a", "/b", "/c"}
	if !coverFirst {
		order = []string{"/a", "/b", "/c", "/cover"}
	}
	files := map[string]*stegfs.File{}
	var cover *stegfs.File
	for _, path := range order {
		f, err := sess.Disclose(path)
		if err != nil {
			ft := rig.track.files[path]
			if errors.Is(err, stegfs.ErrNotFound) && (ft == nil || ft.mayMiss || ft.deleteRan) {
				continue
			}
			t.Fatalf("disclose %q (coverFirst=%v): %v", path, coverFirst, err)
		}
		if path == "/cover" {
			cover = f
			continue
		}
		files[path] = f
	}
	if cover == nil {
		t.Fatal("cover file failed to disclose")
	}

	// Content, and the union of live references.
	referenced := map[uint64]bool{}
	for path, f := range files {
		for _, loc := range verifyTrackedFile(t, path, rig.track.files[path], f, rig.track.ps, false, 0) {
			referenced[loc] = true
		}
	}

	// Hygiene: the disclosed dummy map must never claim a live block —
	// that claim is exactly what a post-crash refill would act on.
	for _, loc := range cover.BlockLocs() {
		if referenced[loc] {
			t.Fatalf("cover claims live data block %d (coverFirst=%v)", loc, coverFirst)
		}
	}

	// Refill-safety: hammer dummy traffic at the recovered volume,
	// then re-read everything. A wrong registry destroys data here.
	for i := 0; i < 40; i++ {
		if err := agent.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := agent.DummyUpdateBurst(16); err != nil {
		t.Fatal(err)
	}
	for path, f := range files {
		ft := rig.track.files[path]
		for li := uint64(0); li*rig.track.ps < f.Size(); li++ {
			got, err := f.ReadBlockAt(li)
			if err != nil {
				t.Fatalf("%q block %d after dummy traffic: %v", path, li, err)
			}
			if !inAllowed(ft.allowed[li], got) {
				t.Fatalf("%q block %d destroyed by post-recovery dummy traffic", path, li)
			}
		}
	}

	// Operability: a fresh committed update round-trips.
	ps := rig.track.ps
	p := payloadFor(ps, "/a", 0, 99)
	if err := sess.Write("/a", p, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Save("/a"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ps)
	if _, err := sess.Read("/a", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("post-recovery write did not read back")
	}
	if err := agent.Logout("alice"); err != nil {
		t.Fatal(err)
	}
}

func TestC2CrashMatrix(t *testing.T) {
	ref := setupC2Crash(t)
	base := ref.fd.Writes()
	if err := ref.phaseB(); err != nil {
		t.Fatal(err)
	}
	total := ref.fd.Writes() - base
	verifyC2Crash(t, ref, true)

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for k := int64(0); k < total; k += stride {
		rig := setupC2Crash(t)
		rig.fd.PowerCutAfterWrites(k)
		if err := rig.phaseB(); err == nil {
			// Registry map iteration makes per-run write counts vary
			// slightly; a tail index may outlive the workload.
			verifyC2Crash(t, rig, k%2 == 0)
			continue
		}
		// Alternate the redisclosure order across cut points: both the
		// donor-first and the target-first resolution paths must hold.
		verifyC2Crash(t, rig, k%2 == 0)
	}
	t.Logf("C2 crash matrix: %d write indices", total)
}
