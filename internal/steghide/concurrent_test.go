package steghide

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"steghide/internal/prng"
)

// TestConcurrentSessionsC2 drives N sessions of real updates against
// the daemon's dummy traffic on Construction 2 and checks the paper's
// invariants under contention: every session's content intact, the
// update counters exact, and the measured overhead still ≈ N/D.
// Run with -race: the scheduler's interleaving safety is the point.
func TestConcurrentSessionsC2(t *testing.T) {
	a, _ := newC2(t, 4096)
	const nSessions = 6
	const updates = 40

	type client struct {
		sess    *Session
		path    string
		content []byte
	}
	ps := a.Vol().PayloadSize()
	clients := make([]*client, nSessions)
	for i := range clients {
		s, err := a.LoginWithPassphrase(fmt.Sprintf("u%d", i), fmt.Sprintf("pw-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.CreateDummy("/d", 120); err != nil {
			t.Fatal(err)
		}
		path := "/f"
		if _, err := s.Create(path); err != nil {
			t.Fatal(err)
		}
		content := prng.NewFromUint64(uint64(50 + i)).Bytes(10 * ps)
		if err := s.Write(path, content, 0); err != nil {
			t.Fatal(err)
		}
		clients[i] = &client{sess: s, path: path, content: content}
	}

	// Steady state: all files at final size, so the disclosed-block
	// and dummy counts only move by count-preserving relocations.
	nKnown := float64(a.KnownBlocks())
	nDummy := float64(a.DummyBlocks())
	wantE := nKnown / nDummy
	a.ResetStats()

	d := NewDaemon(a, time.Millisecond).WithBurst(8).WithAdaptive(false)
	d.Start()
	var wg sync.WaitGroup
	errCh := make(chan error, nSessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(200 + i))
			for k := 0; k < updates; k++ {
				li := rng.Intn(10)
				chunk := rng.Bytes(ps)
				copy(c.content[li*ps:], chunk)
				if err := c.sess.Write(c.path, chunk, uint64(li*ps)); err != nil {
					errCh <- err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	// The writers may outrun the first tick; keep the daemon running
	// until it has demonstrably shared the stream with them.
	deadline := time.Now().Add(2 * time.Second)
	for d.Issued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := a.Stats()
	if st.DataUpdates != nSessions*updates {
		t.Fatalf("data updates %d != %d", st.DataUpdates, nSessions*updates)
	}
	if st.DummyUpdates == 0 {
		t.Fatal("daemon never issued against the shared scheduler")
	}
	gotE := st.ExpectedOverhead()
	if gotE < wantE*0.6 || gotE > wantE*1.4 {
		t.Fatalf("measured E=%.3f, analytic N/D=%.3f under contention", gotE, wantE)
	}

	// Content of every session must survive the interleaved stream.
	for i, c := range clients {
		got := make([]byte, len(c.content))
		if _, err := c.sess.Read(c.path, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, c.content) {
			t.Fatalf("session %d content corrupted under concurrency", i)
		}
	}
	// And across a logout/login cycle (maps flushed consistently).
	for i := range clients {
		if err := a.Logout(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := a.LoginWithPassphrase("u0", "pw-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Disclose("/f"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(clients[0].content))
	if _, err := s2.Read("/f", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clients[0].content) {
		t.Fatal("content lost across post-contention logout")
	}
}

// TestConcurrentWritersC1 is the Construction 1 version: N goroutines
// updating distinct files against daemon bursts on one agent, with the
// measured overhead still ≈ N/D at 50% utilization.
func TestConcurrentWritersC1(t *testing.T) {
	a, _ := newC1(t, 2050)
	const workers = 6
	const updates = 40
	ps := a.Vol().PayloadSize()

	contents := make([][]byte, workers)
	for i := range contents {
		path := fmt.Sprintf("/w%d", i)
		if _, err := a.Create("user", path); err != nil {
			t.Fatal(err)
		}
		contents[i] = prng.NewFromUint64(uint64(70 + i)).Bytes(8 * ps)
		if err := a.Write(path, contents[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	target := (a.Vol().NumBlocks() - 1) / 2
	for a.Source().UsedCount() < target {
		if _, err := a.Source().AcquireRandom(); err != nil {
			t.Fatal(err)
		}
	}
	n := a.Vol().NumBlocks() - 1
	d := n - a.Source().UsedCount()
	wantE := float64(n) / float64(d)
	a.ResetStats()

	daemon := NewDaemon(a, time.Millisecond).WithBurst(8).WithAdaptive(false)
	daemon.Start()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", i)
			rng := prng.NewFromUint64(uint64(300 + i))
			for k := 0; k < updates; k++ {
				li := rng.Intn(8)
				chunk := rng.Bytes(ps)
				copy(contents[i][li*ps:], chunk)
				if err := a.Write(path, chunk, uint64(li*ps)); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for daemon.Issued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	daemon.Stop()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := a.Stats()
	if st.DataUpdates != workers*updates {
		t.Fatalf("data updates %d != %d", st.DataUpdates, workers*updates)
	}
	if st.DummyUpdates == 0 {
		t.Fatal("daemon never issued against the shared scheduler")
	}
	gotE := st.ExpectedOverhead()
	if gotE < wantE*0.7 || gotE > wantE*1.3 {
		t.Fatalf("measured E=%.3f, analytic N/D=%.3f under contention", gotE, wantE)
	}
	for i := 0; i < workers; i++ {
		got := make([]byte, len(contents[i]))
		if _, err := a.Read(fmt.Sprintf("/w%d", i), got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, contents[i]) {
			t.Fatalf("file %d corrupted by concurrent updates", i)
		}
	}
}
