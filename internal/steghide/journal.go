package steghide

import (
	"sync"

	"steghide/internal/journal"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// c1Intents is Construction 1's journal adapter: it implements both
// stegfs.IntentLog (file-layer hooks: allocation, free, save) and
// sched.IntentLog (stream hooks: relocation begin, dummy fillers),
// and owns the limbo of vacated blocks.
//
// Limbo is the runtime half of crash consistency: when a relocation
// commits in memory, the vacated block's old ciphertext is still what
// the on-disk header references, so the block must not rejoin the
// dummy pool — where a reallocation would overwrite it — until the
// owning file's header save makes the move durable. LogSave drains
// the file's limbo back to the bitmap.
type c1Intents struct {
	j      *journal.Journal
	source *stegfs.BitmapSource

	mu    sync.Mutex
	owner map[uint64]uint64   // data block → header of the owning file
	limbo map[uint64][]uint64 // header → vacated blocks awaiting its save
}

func newC1Intents(j *journal.Journal, source *stegfs.BitmapSource) *c1Intents {
	return &c1Intents{
		j:      j,
		source: source,
		owner:  map[uint64]uint64{},
		limbo:  map[uint64][]uint64{},
	}
}

// NoteOwner implements stegfs.IntentLog.
func (c *c1Intents) NoteOwner(loc, headerLoc uint64) {
	c.mu.Lock()
	c.owner[loc] = headerLoc
	c.mu.Unlock()
}

// LogAlloc implements stegfs.IntentLog.
func (c *c1Intents) LogAlloc(headerLoc uint64, locs []uint64) error {
	c.mu.Lock()
	for _, loc := range locs {
		c.owner[loc] = headerLoc
	}
	c.mu.Unlock()
	return c.j.AppendAlloc(headerLoc, locs)
}

// LogFree implements stegfs.IntentLog.
func (c *c1Intents) LogFree(headerLoc uint64, locs []uint64) error {
	c.mu.Lock()
	for _, loc := range locs {
		delete(c.owner, loc)
	}
	c.mu.Unlock()
	return c.j.AppendFree(headerLoc, locs)
}

// LogSave implements stegfs.IntentLog: the header write is durable,
// so the file's vacated blocks finally become dummies.
func (c *c1Intents) LogSave(headerLoc uint64) error {
	if err := c.j.AppendSave(headerLoc); err != nil {
		return err
	}
	c.mu.Lock()
	freed := c.limbo[headerLoc]
	delete(c.limbo, headerLoc)
	c.mu.Unlock()
	for _, loc := range freed {
		c.source.Release(loc)
	}
	return nil
}

// BeginReloc implements sched.IntentLog.
func (c *c1Intents) BeginReloc(oldLoc, newLoc uint64) error {
	c.mu.Lock()
	h := c.owner[oldLoc]
	c.mu.Unlock()
	return c.j.AppendReloc(h, oldLoc, newLoc)
}

// DummyIntent implements sched.IntentLog.
func (c *c1Intents) DummyIntent(n int) error {
	if n == 1 {
		return c.j.AppendDummy()
	}
	return c.j.AppendDummies(n)
}

// vacated is the BitmapSpace hook: a committed relocation's old block
// enters the owner's limbo instead of the dummy pool, and the
// ownership note follows the data.
func (c *c1Intents) vacated(oldLoc, newLoc uint64) {
	c.mu.Lock()
	h := c.owner[oldLoc]
	delete(c.owner, oldLoc)
	c.owner[newLoc] = h
	c.limbo[h] = append(c.limbo[h], oldLoc)
	c.mu.Unlock()
}

// reset drops all adapter state (after recovery rebuilt the bitmap).
func (c *c1Intents) reset() {
	c.mu.Lock()
	c.owner = map[uint64]uint64{}
	c.limbo = map[uint64][]uint64{}
	c.mu.Unlock()
}

// EnableJournal wires the agent to the volume's journal ring: every
// stream element gains a sealed intent slot write, vacated blocks are
// held in limbo until their file's save, and Recover can replay the
// ring after a crash. The journal key derives from the same agent
// secret as the block key, so the administrator who can mount the
// volume can also recover it. The volume must have been formatted
// with FormatOptions.JournalBlocks > 0.
func (a *NonVolatileAgent) EnableJournal() error {
	j, err := journal.Open(a.vol, a.jkey)
	if err != nil {
		return err
	}
	ad := newC1Intents(j, a.source)
	a.intents = ad
	a.vol.SetIntentLog(ad)
	a.sched.SetIntentLog(ad)
	a.space.SetVacateHook(ad.vacated)
	return nil
}

// Journaled reports whether EnableJournal has run.
func (a *NonVolatileAgent) Journaled() bool { return a.intents != nil }

// Recover replays the intent ring against the disk after a crash:
// every location the ring makes claims about is resolved by the
// durable header of the file the intent names — the header either
// references the location (live data) or does not (dummy cover) —
// and the agent's bitmap is corrected to match, newest intent first.
// Call it after LoadState restored the last bitmap snapshot and
// before serving traffic; it is idempotent, and a clean shutdown
// makes it a no-op.
func (a *NonVolatileAgent) Recover() (*journal.Report, error) {
	if a.intents == nil {
		return nil, journal.ErrNoJournal
	}
	a.opMu.Lock()
	defer a.opMu.Unlock()
	recs, err := a.intents.j.Scan()
	if err != nil {
		return nil, err
	}
	res, err := journal.Resolve(recs, func(fileH uint64) (map[uint64]bool, error) {
		return stegfs.ReferencedAt(a.vol, fileH, a.key)
	})
	if err != nil {
		return nil, err
	}
	rep := &journal.Report{Records: len(recs)}
	for _, v := range res.Verdicts {
		if v.Used {
			a.source.Acquire(v.Loc)
			rep.MarkedUsed++
		} else {
			a.source.Release(v.Loc)
			rep.MarkedFree++
		}
	}
	for _, committed := range res.Committed {
		if committed {
			rep.RelocsCommitted++
		} else {
			rep.RelocsRolledBack++
		}
	}
	rep.Unresolved = len(res.Unresolved)
	rep.BrokenFiles = len(res.Broken)
	a.intents.reset()
	return rep, nil
}

// JournalKeyFromSecret derives the journal key the way the agents do
// — for external tooling (fsck) that holds the agent secret.
func JournalKeyFromSecret(secret []byte, construction string) sealer.Key {
	return sealer.DeriveKey(secret, "steghide-"+construction+"-journal-key")
}
