package steghide

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stats"
	"steghide/internal/stegfs"
)

// newTracedVolume builds a small volume over a traced device so tests
// can observe the agent's I/O like an attacker would.
func newTracedVolume(t *testing.T, nBlocks uint64) (*stegfs.Volume, *blockdev.Collector) {
	t.Helper()
	col := &blockdev.Collector{}
	dev := blockdev.NewTraced(blockdev.NewMem(128, nBlocks), col)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("sh")})
	if err != nil {
		t.Fatal(err)
	}
	col.Reset()
	return vol, col
}

// --- Construction 1 ---------------------------------------------------

func newC1(t *testing.T, nBlocks uint64) (*NonVolatileAgent, *blockdev.Collector) {
	t.Helper()
	vol, col := newTracedVolume(t, nBlocks)
	a, err := NewNonVolatile(vol, []byte("agent-secret"), prng.NewFromUint64(11))
	if err != nil {
		t.Fatal(err)
	}
	return a, col
}

func TestC1WriteReadRoundTrip(t *testing.T) {
	a, _ := newC1(t, 1024)
	if _, err := a.Create("alice", "/doc"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(1).Bytes(500)
	if err := a.Write("/doc", msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := a.Read("/doc", got, 0); err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("content mismatch")
	}
	if err := a.Close("/doc"); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify persistence.
	f, err := a.Open("alice", "/doc")
	if err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(msg))
	if _, err := f.ReadAt(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("content lost across close/open")
	}
}

func TestC1UpdatesRelocateAndPreserveContent(t *testing.T) {
	a, _ := newC1(t, 1024)
	f, err := a.Create("alice", "/data")
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(2)
	content := rng.Bytes(10 * a.Vol().PayloadSize())
	if err := a.Write("/data", content, 0); err != nil {
		t.Fatal(err)
	}
	locsBefore := f.BlockLocs()

	// Many single-block rewrites: blocks must move around.
	moved := 0
	for round := 0; round < 20; round++ {
		li := rng.Intn(10)
		chunk := rng.Bytes(a.Vol().PayloadSize())
		copy(content[li*a.Vol().PayloadSize():], chunk)
		if err := a.Write("/data", chunk, uint64(li*a.Vol().PayloadSize())); err != nil {
			t.Fatal(err)
		}
	}
	locsAfter := f.BlockLocs()
	for i := range locsBefore {
		if locsBefore[i] != locsAfter[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no block relocated across 20 updates")
	}
	got := make([]byte, len(content))
	if _, err := a.Read("/data", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("relocating updates corrupted content")
	}
	st := a.Stats()
	if st.Relocations == 0 || st.DataUpdates == 0 {
		t.Fatalf("stats did not move: %+v", st)
	}
}

func TestC1DummyUpdatesPreserveAllContent(t *testing.T) {
	a, _ := newC1(t, 512)
	if _, err := a.Create("alice", "/f"); err != nil {
		t.Fatal(err)
	}
	content := prng.NewFromUint64(3).Bytes(8 * a.Vol().PayloadSize())
	if err := a.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}
	// Hammer the volume with dummy updates, including on data blocks.
	for i := 0; i < 2000; i++ {
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(content))
	if _, err := a.Read("/f", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("dummy updates corrupted data (integrity objective violated)")
	}
	if a.Stats().DummyUpdates != 2000 {
		t.Fatalf("dummy counter %d", a.Stats().DummyUpdates)
	}
}

func TestC1ExpectedOverheadMatchesND(t *testing.T) {
	// §4.1.5: E[iterations per update] = N/D. Fill to 50% → E ≈ 2.
	// Utilization is raised the way the paper's own simulation does:
	// marking random blocks as data in the bitmap.
	a, _ := newC1(t, 2050)
	if _, err := a.Create("alice", "/fill"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 20*a.Vol().PayloadSize())
	if err := a.Write("/fill", data, 0); err != nil {
		t.Fatal(err)
	}
	target := (a.Vol().NumBlocks() - 1) / 2
	for a.Source().UsedCount() < target {
		if _, err := a.Source().AcquireRandom(); err != nil {
			t.Fatal(err)
		}
	}
	used := a.Source().UsedCount()
	n := a.Vol().NumBlocks() - 1
	d := n - used
	want := float64(n) / float64(d)

	a.ResetStats()
	chunk := make([]byte, a.Vol().PayloadSize())
	rng := prng.NewFromUint64(5)
	for i := 0; i < 1500; i++ {
		off := uint64(rng.Intn(20)) * uint64(a.Vol().PayloadSize())
		if err := a.Write("/fill", chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Stats().ExpectedOverhead()
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("measured E=%.3f, analytic N/D=%.3f (util=%.2f)", got, want, float64(used)/float64(n))
	}
}

func TestC1UpdateStreamUniform(t *testing.T) {
	// Security core: the set of blocks written during data updates
	// must be uniform over the steg space (Definition 1 / the §4.1.4
	// proof). Chi-square over 16 bins.
	a, col := newC1(t, 2048)
	if _, err := a.Create("alice", "/u"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 40*a.Vol().PayloadSize())
	if err := a.Write("/u", content, 0); err != nil {
		t.Fatal(err)
	}
	col.Reset()
	rng := prng.NewFromUint64(7)
	chunk := make([]byte, a.Vol().PayloadSize())
	for i := 0; i < 3000; i++ {
		off := uint64(rng.Intn(40)) * uint64(a.Vol().PayloadSize())
		if err := a.Write("/u", chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	var writes []uint64
	for _, e := range col.Events() {
		if e.Op == blockdev.OpWrite && e.Block >= a.Vol().FirstDataBlock() {
			writes = append(writes, e.Block-a.Vol().FirstDataBlock())
		}
	}
	span := a.Vol().NumBlocks() - a.Vol().FirstDataBlock()
	hist := stats.Histogram(writes, span, 16)
	_, p, err := stats.ChiSquareUniform(hist)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("update write stream not uniform: p=%v hist=%v", p, hist)
	}
}

func TestC1SecurityDefinition1(t *testing.T) {
	// P(X|Y) vs P(X|∅): the write-location distribution under a real
	// workload must be indistinguishable from dummy-only traffic
	// (two-sample chi-square).
	a, col := newC1(t, 2048)
	if _, err := a.Create("alice", "/w"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 64*a.Vol().PayloadSize())
	if err := a.Write("/w", content, 0); err != nil {
		t.Fatal(err)
	}

	collectWrites := func() []uint64 {
		var out []uint64
		for _, e := range col.Events() {
			if e.Op == blockdev.OpWrite {
				out = append(out, e.Block)
			}
		}
		return out
	}

	// Sample 1: pure dummy traffic.
	col.Reset()
	for i := 0; i < 4000; i++ {
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	dummyWrites := collectWrites()

	// Sample 2: a pathological workload — the user hammers the same
	// logical block (maximum regularity for the attacker to find).
	col.Reset()
	chunk := make([]byte, a.Vol().PayloadSize())
	for i := 0; i < 2000; i++ {
		if err := a.Write("/w", chunk, 0); err != nil {
			t.Fatal(err)
		}
	}
	dataWrites := collectWrites()

	n := a.Vol().NumBlocks()
	h1 := stats.Histogram(dummyWrites, n, 16)
	h2 := stats.Histogram(dataWrites, n, 16)
	_, p, err := stats.ChiSquareTwoSample(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("workload distinguishable from dummy traffic: p=%v\nh1=%v\nh2=%v", p, h1, h2)
	}
}

func TestC1StatePersistence(t *testing.T) {
	a, _ := newC1(t, 512)
	if _, err := a.Create("alice", "/persist"); err != nil {
		t.Fatal(err)
	}
	msg := []byte("remember me")
	if err := a.Write("/persist", msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Close("/persist"); err != nil {
		t.Fatal(err)
	}
	state, err := a.State()
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": new agent, same secret, restore bitmap.
	b, err := NewNonVolatile(a.Vol(), []byte("agent-secret"), prng.NewFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadState(state); err != nil {
		t.Fatal(err)
	}
	if b.Source().UsedCount() != a.Source().UsedCount() {
		t.Fatal("bitmap lost across restart")
	}
	if _, err := b.Open("alice", "/persist"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := b.Read("/persist", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("content lost across restart")
	}
	// Restoring a wrong-size state must fail.
	if err := b.LoadState(state[:8]); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestC1NoDummySpace(t *testing.T) {
	a, _ := newC1(t, 64)
	if _, err := a.Create("alice", "/x"); err != nil {
		t.Fatal(err)
	}
	// Exhaust the space.
	for {
		if _, err := a.Source().AcquireRandom(); err != nil {
			break
		}
	}
	err := a.Write("/x", []byte("no room"), 0)
	if !errors.Is(err, ErrNoDummySpace) && !errors.Is(err, stegfs.ErrVolumeFull) {
		t.Fatalf("full volume update: %v", err)
	}
}

func TestC1QuickArbitraryWritePattern(t *testing.T) {
	a, _ := newC1(t, 2048)
	if _, err := a.Create("alice", "/q"); err != nil {
		t.Fatal(err)
	}
	mirror := []byte{}
	check := func(seed uint64, offRaw uint16, nRaw uint16) bool {
		off := uint64(offRaw) % 3000
		n := int(nRaw)%400 + 1
		chunk := prng.NewFromUint64(seed).Bytes(n)
		if err := a.Write("/q", chunk, off); err != nil {
			return false
		}
		if int(off)+n > len(mirror) {
			grown := make([]byte, int(off)+n)
			copy(grown, mirror)
			mirror = grown
		}
		copy(mirror[off:], chunk)
		got := make([]byte, len(mirror))
		if _, err := a.Read("/q", got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, mirror)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Construction 2 ---------------------------------------------------

func newC2(t *testing.T, nBlocks uint64) (*VolatileAgent, *blockdev.Collector) {
	t.Helper()
	vol, col := newTracedVolume(t, nBlocks)
	return NewVolatile(vol, prng.NewFromUint64(21)), col
}

func TestC2SessionLifecycle(t *testing.T) {
	a, _ := newC2(t, 2048)
	s, err := a.LoginWithPassphrase("alice", "pw-alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoginWithPassphrase("alice", "pw-alice"); err == nil {
		t.Fatal("double login accepted")
	}
	if _, err := s.CreateDummy("/dummy0", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/real"); err != nil {
		t.Fatal(err)
	}
	msg := prng.NewFromUint64(4).Bytes(5 * a.Vol().PayloadSize())
	if err := s.Write("/real", msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s.Read("/real", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("content mismatch")
	}
	if err := a.Logout("alice"); err != nil {
		t.Fatal(err)
	}
	if a.KnownBlocks() != 0 {
		t.Fatalf("agent retains %d blocks after logout (volatility violated)", a.KnownBlocks())
	}
	if err := a.Logout("alice"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("double logout: %v", err)
	}

	// Second session: disclose and read back.
	s2, err := a.LoginWithPassphrase("alice", "pw-alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Disclose("/dummy0"); err != nil {
		t.Fatal(err)
	}
	f, err := s2.Disclose("/real")
	if err != nil {
		t.Fatal(err)
	}
	if f.IsDummy() {
		t.Fatal("real file classified dummy")
	}
	got2 := make([]byte, len(msg))
	if _, err := s2.Read("/real", got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("content lost across sessions")
	}
}

func TestC2RequiresDummyDisclosure(t *testing.T) {
	a, _ := newC2(t, 1024)
	s, err := a.LoginWithPassphrase("bob", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/only-real"); err != nil {
		t.Fatal(err)
	}
	err = s.Write("/only-real", make([]byte, 300), 0)
	if !errors.Is(err, ErrNoDummySpace) {
		t.Fatalf("write without dummy space: %v", err)
	}
}

func TestC2UpdatesStayWithinDisclosedBlocks(t *testing.T) {
	// §4.2.2: the agent can only touch blocks of files disclosed in
	// the current session. Set up two users; after Bob logs out, only
	// Alice's blocks may appear in the trace.
	a, col := newC2(t, 4096)

	bob, err := a.LoginWithPassphrase("bob", "pw-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.CreateDummy("/b-dummy", 180); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Create("/b-file"); err != nil {
		t.Fatal(err)
	}
	if err := bob.Write("/b-file", make([]byte, 10*a.Vol().PayloadSize()), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Logout("bob"); err != nil {
		t.Fatal(err)
	}

	alice, err := a.LoginWithPassphrase("alice", "pw-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.CreateDummy("/a-dummy", 180); err != nil {
		t.Fatal(err)
	}
	fa, err := alice.Create("/a-file")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Write("/a-file", make([]byte, 10*a.Vol().PayloadSize()), 0); err != nil {
		t.Fatal(err)
	}
	_ = fa

	// Steady state: capture the disclosed set, then update + dummy.
	disclosed := map[uint64]bool{}
	a.mu.Lock()
	for loc := range a.known {
		disclosed[loc] = true
	}
	a.mu.Unlock()

	col.Reset()
	chunk := make([]byte, a.Vol().PayloadSize())
	rng := prng.NewFromUint64(8)
	for i := 0; i < 300; i++ {
		off := uint64(rng.Intn(10)) * uint64(a.Vol().PayloadSize())
		if err := alice.Write("/a-file", chunk, off); err != nil {
			t.Fatal(err)
		}
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range col.Events() {
		if !disclosed[e.Block] {
			t.Fatalf("agent touched undisclosed block %d (%s)", e.Block, e.Op)
		}
	}
}

func TestC2SwapKeepsDummyFileConsistent(t *testing.T) {
	a, _ := newC2(t, 2048)
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	df, err := s.CreateDummy("/d", 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	content := prng.NewFromUint64(5).Bytes(20 * a.Vol().PayloadSize())
	if err := s.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}
	nDummy := df.NumBlocks()
	chunk := make([]byte, a.Vol().PayloadSize())
	rng := prng.NewFromUint64(6)
	for i := 0; i < 500; i++ {
		off := uint64(rng.Intn(20)) * uint64(a.Vol().PayloadSize())
		if err := s.Write("/f", chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	// Relocation swaps preserve the dummy file's block count and the
	// agent's total dummy count.
	if df.NumBlocks() != nDummy {
		t.Fatalf("dummy file block count drifted: %d -> %d", nDummy, df.NumBlocks())
	}
	// No block may be owned twice.
	ownedOnce := map[uint64]int{}
	for _, loc := range df.BlockLocs() {
		ownedOnce[loc]++
	}
	f2, _ := s.Disclose("/f")
	for _, loc := range f2.BlockLocs() {
		ownedOnce[loc]++
	}
	for loc, c := range ownedOnce {
		if c > 1 {
			t.Fatalf("block %d owned by both files after swaps", loc)
		}
	}
	// Logout persists the dummy file's map; a fresh session must load
	// a consistent file. Note that saving the real file's block map at
	// logout may consume a few dummy blocks for pointer blocks, so the
	// reference count is taken after logout from the still-visible
	// handle.
	if err := a.Logout("u"); err != nil {
		t.Fatal(err)
	}
	nFinal := df.NumBlocks()
	s2, _ := a.LoginWithPassphrase("u", "pw")
	df2, err := s2.Disclose("/d")
	if err != nil {
		t.Fatal(err)
	}
	if df2.NumBlocks() != nFinal {
		t.Fatalf("dummy map lost across logout: %d != %d", df2.NumBlocks(), nFinal)
	}
	if _, err := s2.Disclose("/f"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if _, err := s2.Read("/f", got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // the loop overwrote every block with chunk
		copy(content[i*a.Vol().PayloadSize():], chunk)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content inconsistent after swap-heavy session")
	}
}

func TestC2PlausibleDeniability(t *testing.T) {
	// A coerced user can disclose a dummy file, or a real file under a
	// wrong content key, and the agent/attacker cannot tell it apart
	// from a genuine dummy.
	a, _ := newC2(t, 2048)
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/cover", 50); err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("/secret")
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("real secret data")
	if err := s.Write("/secret", secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Logout("alice"); err != nil {
		t.Fatal(err)
	}
	_ = f

	// Under coercion, Alice reveals only the dummy file's FAK.
	s2, _ := a.LoginWithPassphrase("alice", "pw")
	cover, err := s2.Disclose("/cover")
	if err != nil {
		t.Fatal(err)
	}
	if !cover.IsDummy() {
		t.Fatal("cover file should be a dummy")
	}
	// The header decodes, the content is noise — exactly like a real
	// file whose content key is withheld. Nothing distinguishes them.
	payload, err := cover.ReadBlockAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(payload, secret) {
		t.Fatal("dummy leaked real data?!")
	}
}

func TestC2GrowthConsumesDummyBlocks(t *testing.T) {
	a, _ := newC2(t, 1024)
	s, _ := a.LoginWithPassphrase("u", "pw")
	if _, err := s.CreateDummy("/d", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	before := a.DummyBlocks()
	if err := s.Write("/f", make([]byte, 10*a.Vol().PayloadSize()), 0); err != nil {
		t.Fatal(err)
	}
	after := a.DummyBlocks()
	if after >= before {
		t.Fatalf("growth did not consume dummy blocks: %d -> %d", before, after)
	}
	// Deleting the file returns its blocks to the dummy pool.
	if err := s.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if a.DummyBlocks() <= after {
		t.Fatal("delete did not return blocks to dummy pool")
	}
}

func TestC2SecurityDefinition1(t *testing.T) {
	// Within the disclosed region, workload traffic must match dummy
	// traffic (Definition 1 restricted to the visible space).
	a, col := newC2(t, 2048)
	s, _ := a.LoginWithPassphrase("u", "pw")
	if _, err := s.CreateDummy("/d", 150); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("/f", make([]byte, 60*a.Vol().PayloadSize()), 0); err != nil {
		t.Fatal(err)
	}

	collect := func() []uint64 {
		var out []uint64
		for _, e := range col.Events() {
			if e.Op == blockdev.OpWrite {
				out = append(out, e.Block)
			}
		}
		return out
	}
	col.Reset()
	for i := 0; i < 4000; i++ {
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	dummyW := collect()

	col.Reset()
	chunk := make([]byte, a.Vol().PayloadSize())
	for i := 0; i < 1500; i++ {
		if err := s.Write("/f", chunk, 0); err != nil { // pathological: same block
			t.Fatal(err)
		}
	}
	dataW := collect()

	n := a.Vol().NumBlocks()
	h1 := stats.Histogram(dummyW, n, 12)
	h2 := stats.Histogram(dataW, n, 12)
	_, p, err := stats.ChiSquareTwoSample(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("volatile workload distinguishable: p=%v\nh1=%v\nh2=%v", p, h1, h2)
	}
}

func TestC2ReadAfterManySwapsAcrossUsers(t *testing.T) {
	// Two concurrent sessions sharing the agent: swaps may cross user
	// boundaries (a's data may land in b's dummy blocks). Content of
	// both users must survive.
	a, _ := newC2(t, 4096)
	sa, _ := a.LoginWithPassphrase("a", "pa")
	sb, _ := a.LoginWithPassphrase("b", "pb")
	if _, err := sa.CreateDummy("/da", 150); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.CreateDummy("/db", 150); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Create("/fa"); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Create("/fb"); err != nil {
		t.Fatal(err)
	}
	ps := a.Vol().PayloadSize()
	ca := prng.NewFromUint64(31).Bytes(15 * ps)
	cb := prng.NewFromUint64(32).Bytes(15 * ps)
	if err := sa.Write("/fa", ca, 0); err != nil {
		t.Fatal(err)
	}
	if err := sb.Write("/fb", cb, 0); err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(33)
	for i := 0; i < 400; i++ {
		li := rng.Intn(15)
		chunk := rng.Bytes(ps)
		if i%2 == 0 {
			copy(ca[li*ps:], chunk)
			if err := sa.Write("/fa", chunk, uint64(li*ps)); err != nil {
				t.Fatal(err)
			}
		} else {
			copy(cb[li*ps:], chunk)
			if err := sb.Write("/fb", chunk, uint64(li*ps)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ga := make([]byte, len(ca))
	gb := make([]byte, len(cb))
	if _, err := sa.Read("/fa", ga, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Read("/fb", gb, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, ca) || !bytes.Equal(gb, cb) {
		t.Fatal("cross-user swaps corrupted content")
	}
	// Logout both; a fresh pair of sessions still reads both files.
	a.Logout("a")
	a.Logout("b")
	sa2, _ := a.LoginWithPassphrase("a", "pa")
	if _, err := sa2.Disclose("/fa"); err != nil {
		t.Fatal(err)
	}
	ga2 := make([]byte, len(ca))
	if _, err := sa2.Read("/fa", ga2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga2, ca) {
		t.Fatal("content lost after cross-user session")
	}
}

func TestC2WriteUndisclosedFails(t *testing.T) {
	a, _ := newC2(t, 512)
	s, _ := a.LoginWithPassphrase("u", "pw")
	if err := s.Write("/nope", []byte("x"), 0); !errors.Is(err, ErrNotDisclosed) {
		t.Fatalf("write undisclosed: %v", err)
	}
	if _, err := s.Read("/nope", make([]byte, 1), 0); !errors.Is(err, ErrNotDisclosed) {
		t.Fatalf("read undisclosed: %v", err)
	}
	if err := s.Delete("/nope"); !errors.Is(err, ErrNotDisclosed) {
		t.Fatalf("delete undisclosed: %v", err)
	}
	if err := a.DummyUpdate(); !errors.Is(err, ErrNoDummySpace) {
		t.Fatalf("dummy update with empty registry: %v", err)
	}
}
