package steghide

import (
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stats"
	"steghide/internal/stegfs"
)

// The journal must not buy durability with secrecy: with journaling
// enabled, (1) the update stream over the steg space keeps the exact
// uniform distribution Definition 1 requires, (2) the full observable
// stream — ring writes included — is indistinguishable between idle
// and active periods, because every stream element carries exactly
// one ring write whatever it is.

func newJournaledC1(t *testing.T, nBlocks, ringBlocks uint64) (*NonVolatileAgent, *blockdev.Collector) {
	t.Helper()
	col := &blockdev.Collector{}
	dev := blockdev.NewTraced(blockdev.NewMem(128, nBlocks), col)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{
		KDFIterations: 4, FillSeed: []byte("sh-j"), JournalBlocks: ringBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNonVolatile(vol, []byte("agent-secret"), prng.NewFromUint64(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	col.Reset()
	return a, col
}

// splitWrites separates a traced event stream into steg-space and
// ring writes.
func splitWrites(vol *stegfs.Volume, events []blockdev.Event) (steg, ring []uint64) {
	first := vol.FirstDataBlock()
	for _, e := range blockdev.ExpandEvents(events) {
		if e.Op != blockdev.OpWrite {
			continue
		}
		switch {
		case e.Block >= first:
			steg = append(steg, e.Block)
		case e.Block >= 1:
			ring = append(ring, e.Block)
		}
	}
	return steg, ring
}

func TestJournaledC1Definition1(t *testing.T) {
	a, col := newJournaledC1(t, 2048+256, 256)
	vol := a.Vol()
	if _, err := a.Create("alice", "/w"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 64*vol.PayloadSize())
	if err := a.Write("/w", content, 0); err != nil {
		t.Fatal(err)
	}

	// Idle period: dummy traffic only.
	col.Reset()
	for i := 0; i < 4000; i++ {
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	idleSteg, idleRing := splitWrites(vol, col.Events())

	// Active period: the most regular workload imaginable. Save-free,
	// and sized under the dummy pool — limbo parks one block per
	// relocation until the next save.
	col.Reset()
	chunk := make([]byte, vol.PayloadSize())
	for i := 0; i < 1500; i++ {
		if err := a.Write("/w", chunk, 0); err != nil {
			t.Fatal(err)
		}
	}
	activeSteg, activeRing := splitWrites(vol, col.Events())

	// (1) Steg-space uniformity under load, journaling on.
	span := vol.NumBlocks() - vol.FirstDataBlock()
	rel := make([]uint64, len(activeSteg))
	for i, b := range activeSteg {
		rel[i] = b - vol.FirstDataBlock()
	}
	hist := stats.Histogram(rel, span, 16)
	if _, p, err := stats.ChiSquareUniform(hist); err != nil || p < 0.001 {
		t.Fatalf("journaled update stream not uniform: p=%v err=%v", p, err)
	}

	// (2) Definition 1 over the whole device, ring included.
	n := vol.NumBlocks()
	h1 := stats.Histogram(append(append([]uint64{}, idleSteg...), idleRing...), n, 16)
	h2 := stats.Histogram(append(append([]uint64{}, activeSteg...), activeRing...), n, 16)
	if _, p, err := stats.ChiSquareTwoSample(h1, h2); err != nil || p < 0.001 {
		t.Fatalf("journaled workload distinguishable from idle: p=%v err=%v", p, err)
	}

	// (3) The ring cadence itself carries no signal: exactly one slot
	// write per stream element in both periods.
	if len(idleRing) != len(idleSteg) {
		t.Fatalf("idle: %d ring writes for %d stream elements", len(idleRing), len(idleSteg))
	}
	if len(activeRing) != len(activeSteg) {
		t.Fatalf("active: %d ring writes for %d stream elements", len(activeRing), len(activeSteg))
	}
}

func TestJournaledC2Definition1(t *testing.T) {
	col := &blockdev.Collector{}
	dev := blockdev.NewTraced(blockdev.NewMem(256, 2048+128), col)
	vol, err := stegfs.Format(dev, stegfs.FormatOptions{
		KDFIterations: 4, FillSeed: []byte("sh-j2"), JournalBlocks: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewVolatile(vol, prng.NewFromUint64(5))
	if err := a.EnableJournal(JournalKey(vol, "admin")); err != nil {
		t.Fatal(err)
	}
	s, err := a.LoginWithPassphrase("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 700); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/w"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 40*vol.PayloadSize())
	if err := s.Write("/w", content, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("/w"); err != nil {
		t.Fatal(err)
	}

	col.Reset()
	for i := 0; i < 3000; i++ {
		if err := a.DummyUpdate(); err != nil {
			t.Fatal(err)
		}
	}
	idleSteg, idleRing := splitWrites(vol, col.Events())

	// Save-free and under the disclosed dummy pool (limbo parks one
	// block per relocation until the next save).
	col.Reset()
	chunk := make([]byte, vol.PayloadSize())
	for i := 0; i < 600; i++ {
		if err := s.Write("/w", chunk, 0); err != nil {
			t.Fatal(err)
		}
	}
	activeSteg, activeRing := splitWrites(vol, col.Events())

	n := vol.NumBlocks()
	h1 := stats.Histogram(append(append([]uint64{}, idleSteg...), idleRing...), n, 12)
	h2 := stats.Histogram(append(append([]uint64{}, activeSteg...), activeRing...), n, 12)
	if _, p, err := stats.ChiSquareTwoSample(h1, h2); err != nil || p < 0.001 {
		t.Fatalf("journaled C2 workload distinguishable from idle: p=%v err=%v", p, err)
	}
	if len(idleRing) != len(idleSteg) || len(activeRing) != len(activeSteg) {
		t.Fatalf("ring cadence broke 1:1: idle %d/%d active %d/%d",
			len(idleRing), len(idleSteg), len(activeRing), len(activeSteg))
	}
}

// TestJournaledC1LimboHoldsVacatedBlocks pins the runtime half of the
// protocol: a relocation's vacated block stays out of the dummy pool
// until the owning file's save commits the move.
func TestJournaledC1LimboHoldsVacatedBlocks(t *testing.T) {
	a, _ := newJournaledC1(t, 512+64, 64)
	vol := a.Vol()
	if _, err := a.Create("alice", "/f"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 8*vol.PayloadSize())
	if err := a.Write("/f", content, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync("/f"); err != nil {
		t.Fatal(err)
	}
	free0 := a.Source().FreeCount()
	a.ResetStats()

	// Every relocation from here on must park one block in limbo.
	chunk := make([]byte, vol.PayloadSize())
	for i := 0; i < 16; i++ {
		if err := a.Write("/f", chunk, 0); err != nil {
			t.Fatal(err)
		}
	}
	relocs := a.Stats().Relocations
	if relocs == 0 {
		t.Skip("no relocation in 16 updates (astronomically unlikely)")
	}
	if got := a.Source().FreeCount(); got != free0-relocs {
		t.Fatalf("free count %d after %d relocations, want %d (vacated blocks must sit in limbo)",
			got, relocs, free0-relocs)
	}
	if err := a.Sync("/f"); err != nil {
		t.Fatal(err)
	}
	if got := a.Source().FreeCount(); got != free0 {
		t.Fatalf("free count %d after save, want %d (limbo must drain)", got, free0)
	}
}
