package steghide

import (
	"fmt"
	"sync"

	"steghide/internal/prng"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// VolatileAgent is Construction 2 (§4.2, "StegHide" — the construction
// the paper implemented as a real file system). The agent keeps no
// persistent secrets: it boots knowing nothing, learns files as users
// disclose FAKs at login, and forgets everything at logout. Every
// block it knows belongs to some disclosed file — real files (whose
// data, header and pointer blocks it can reseal with the disclosed
// keys) or dummy files (whose blocks are meaningless random bytes it
// may overwrite freely and, crucially, relocate data into).
//
// All operations are serialized by one agent-wide mutex: the agent of
// the system model is a single trusted process in front of the
// storage, and the Figure 6 algorithm's bookkeeping (ownership swaps
// between files) must be atomic with respect to dummy traffic.
type VolatileAgent struct {
	mu  sync.Mutex
	vol *stegfs.Volume
	rng *prng.PRNG

	// known maps every disclosed block to its owner. list/pos give
	// O(1) uniform sampling and membership maintenance.
	known map[uint64]*ownerInfo
	list  []uint64
	pos   map[uint64]int

	dummyData uint64 // count of relocatable dummy-data blocks

	sessions map[string]*Session
	stats    statsBox
}

// ownerInfo records what the agent may do with a disclosed block.
type ownerInfo struct {
	file *stegfs.File
	user string
	// seal re-encrypts the block for camouflage updates: the content
	// sealer for data blocks, the header sealer for header/pointer
	// blocks, nil for dummy-data blocks (freshly drawn random bytes
	// are the reseal of meaningless content).
	seal *sealer.Sealer
	// dummy marks a relocatable dummy-data block.
	dummy bool
	// pending marks a block acquired mid-operation whose final role
	// is not yet classified; it is skipped as a camouflage target.
	pending bool
}

// NewVolatile creates an empty volatile agent over a volume.
func NewVolatile(vol *stegfs.Volume, rng *prng.PRNG) *VolatileAgent {
	return &VolatileAgent{
		vol:      vol,
		rng:      rng.Child("figure6-volatile"),
		known:    map[uint64]*ownerInfo{},
		pos:      map[uint64]int{},
		sessions: map[string]*Session{},
	}
}

// Vol returns the underlying volume.
func (a *VolatileAgent) Vol() *stegfs.Volume { return a.vol }

// Stats returns a snapshot of the agent's counters.
func (a *VolatileAgent) Stats() UpdateStats { return a.stats.snapshot() }

// ResetStats zeroes the counters.
func (a *VolatileAgent) ResetStats() { a.stats.reset() }

// KnownBlocks returns how many blocks the agent currently knows.
func (a *VolatileAgent) KnownBlocks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.list)
}

// DummyBlocks returns how many relocatable dummy blocks are visible.
func (a *VolatileAgent) DummyBlocks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dummyData
}

// --- block registry -------------------------------------------------

func (a *VolatileAgent) register(loc uint64, info *ownerInfo) {
	if old, ok := a.known[loc]; ok {
		if old.dummy {
			a.dummyData--
		}
		a.known[loc] = info
	} else {
		a.known[loc] = info
		a.pos[loc] = len(a.list)
		a.list = append(a.list, loc)
	}
	if info.dummy {
		a.dummyData++
	}
}

func (a *VolatileAgent) unregister(loc uint64) {
	info, ok := a.known[loc]
	if !ok {
		return
	}
	if info.dummy {
		a.dummyData--
	}
	delete(a.known, loc)
	i := a.pos[loc]
	last := len(a.list) - 1
	if i != last {
		moved := a.list[last]
		a.list[i] = moved
		a.pos[moved] = i
	}
	a.list = a.list[:last]
	delete(a.pos, loc)
}

// registerFile (re)classifies every block of a disclosed file.
func (a *VolatileAgent) registerFile(user string, f *stegfs.File) {
	hseal := f.HeaderSealer()
	cseal := f.ContentSealer()
	a.register(f.HeaderLoc(), &ownerInfo{file: f, user: user, seal: hseal})
	for _, loc := range f.BlockLocs() {
		if f.IsDummy() {
			a.register(loc, &ownerInfo{file: f, user: user, dummy: true})
		} else {
			a.register(loc, &ownerInfo{file: f, user: user, seal: cseal})
		}
	}
	for _, loc := range f.IndirectLocs() {
		a.register(loc, &ownerInfo{file: f, user: user, seal: hseal})
	}
}

// forgetFile removes every registration pointing at f.
func (a *VolatileAgent) forgetFile(f *stegfs.File) {
	var gone []uint64
	for loc, info := range a.known {
		if info.file == f {
			gone = append(gone, loc)
		}
	}
	for _, loc := range gone {
		a.unregister(loc)
	}
}

// --- BlockSource for disclosed space ---------------------------------

// volatileSource adapts the agent's disclosed-block registry to
// stegfs.BlockSource. Allocation draws from disclosed dummy blocks
// (withdrawing them from their dummy file); release donates blocks to
// a disclosed dummy file of the same user when one exists.
type volatileSource struct {
	a    *VolatileAgent
	user string
	// allowUnknown lets AcquireRandom claim abandoned (undisclosed)
	// blocks; set only on the source used to materialize dummy files.
	allowUnknown bool
}

// SpaceBounds implements stegfs.BlockSource: header candidates range
// over the whole steg space regardless of disclosure.
func (s *volatileSource) SpaceBounds() (uint64, uint64) {
	return s.a.vol.FirstDataBlock(), s.a.vol.NumBlocks()
}

// FreeCount implements stegfs.BlockSource.
func (s *volatileSource) FreeCount() uint64 { return s.a.dummyData }

// IsFree implements stegfs.BlockSource.
func (s *volatileSource) IsFree(loc uint64) bool {
	info, ok := s.a.known[loc]
	return ok && info.dummy
}

// Acquire implements stegfs.BlockSource. Dummy blocks are withdrawn
// from their dummy file; unknown blocks are claimed optimistically —
// the residual stomping risk for undisclosed files is inherent to
// StegFS creation (the 2003 paper mitigates it with replication) and
// documented in DESIGN.md.
func (s *volatileSource) Acquire(loc uint64) bool {
	a := s.a
	if loc < a.vol.FirstDataBlock() || loc >= a.vol.NumBlocks() {
		return false
	}
	info, ok := a.known[loc]
	if !ok {
		a.register(loc, &ownerInfo{user: s.user, pending: true})
		return true
	}
	if !info.dummy {
		return false
	}
	if err := info.file.RemoveBlockLoc(loc); err != nil {
		return false
	}
	a.register(loc, &ownerInfo{user: s.user, pending: true})
	return true
}

// AcquireRandom implements stegfs.BlockSource: a uniformly random
// disclosed dummy block. Sources created with allowUnknown (used only
// while materializing new dummy files) claim unknown — abandoned —
// blocks instead, so new cover extends the disclosed space rather
// than cannibalizing other dummy files; ordinary file growth never
// touches unknown blocks, keeping data within disclosed space
// (§4.2.2).
func (s *volatileSource) AcquireRandom() (uint64, error) {
	a := s.a
	if s.allowUnknown {
		first, n := a.vol.FirstDataBlock(), a.vol.NumBlocks()
		for try := 0; try < 4096; try++ {
			loc := first + a.rng.Uint64n(n-first)
			if _, ok := a.known[loc]; ok {
				continue
			}
			a.register(loc, &ownerInfo{user: s.user, pending: true})
			return loc, nil
		}
		// The volume is almost fully disclosed; fall through to the
		// dummy pool.
	}
	if a.dummyData == 0 {
		return 0, fmt.Errorf("%w: disclose a dummy file first", ErrNoDummySpace)
	}
	for {
		loc := a.list[a.rng.Intn(len(a.list))]
		info := a.known[loc]
		if !info.dummy {
			continue
		}
		if err := info.file.RemoveBlockLoc(loc); err != nil {
			return 0, err
		}
		a.register(loc, &ownerInfo{user: s.user, pending: true})
		return loc, nil
	}
}

// Release implements stegfs.BlockSource: the block joins one of the
// user's disclosed dummy files; with none disclosed it becomes
// unknown again (forgotten, unreachable until redisclosed).
func (s *volatileSource) Release(loc uint64) {
	a := s.a
	sess := a.sessions[s.user]
	if sess != nil {
		for _, df := range sess.dummyFiles {
			if err := df.AppendBlockLoc(loc); err == nil {
				a.register(loc, &ownerInfo{file: df, user: s.user, dummy: true})
				return
			}
		}
	}
	a.unregister(loc)
}

// --- sessions ---------------------------------------------------------

// Session is one user's login: the set of FAKs they disclosed and the
// open file handles. All methods funnel through the agent's mutex.
type Session struct {
	agent      *VolatileAgent
	user       string
	master     sealer.Key
	source     *volatileSource
	files      map[string]*stegfs.File
	dummyFiles map[string]*stegfs.File
}

// Login opens a session for user; master is the stretched passphrase
// key from which the user's per-file FAKs derive.
func (a *VolatileAgent) Login(user string, master sealer.Key) (*Session, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.sessions[user]; dup {
		return nil, fmt.Errorf("steghide: user %q already logged in", user)
	}
	s := &Session{
		agent:      a,
		user:       user,
		master:     master,
		source:     &volatileSource{a: a, user: user},
		files:      map[string]*stegfs.File{},
		dummyFiles: map[string]*stegfs.File{},
	}
	a.sessions[user] = s
	return s, nil
}

// LoginWithPassphrase stretches the passphrase against the volume salt
// and logs in.
func (a *VolatileAgent) LoginWithPassphrase(user, passphrase string) (*Session, error) {
	master := sealer.KeyFromPassphrase(passphrase, a.vol.Salt(), a.vol.KDFIterations())
	return a.Login(user, master)
}

// Logout flushes all of the user's files and erases the agent's
// knowledge of them — the volatility that protects the administrator
// from coercion.
func (a *VolatileAgent) Logout(user string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sessions[user]
	if !ok {
		return ErrUnknownUser
	}
	var firstErr error
	closeAll := func(m map[string]*stegfs.File) {
		for _, f := range m {
			if err := f.Save(); err != nil && firstErr == nil {
				firstErr = err
			}
			// Save may have allocated pointer blocks (registered as
			// pending); classify them before forgetting the file so
			// nothing leaks in the registry.
			a.registerFile(s.user, f)
			a.forgetFile(f)
		}
	}
	closeAll(s.files)
	closeAll(s.dummyFiles)
	delete(a.sessions, user)
	s.master = sealer.Key{} // best-effort erasure
	return firstErr
}

// fak derives the FAK for one of the session user's paths.
func (s *Session) fak(path string) stegfs.FAK {
	return stegfs.DeriveFAKFromMaster(s.master, path)
}

// Create creates and disclosed-registers a hidden file.
func (s *Session) Create(path string) (*stegfs.File, error) {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := s.files[path]; dup {
		return nil, fmt.Errorf("steghide: %q already open", path)
	}
	f, err := stegfs.CreateFile(a.vol, s.fak(path), path, s.source)
	if err != nil {
		return nil, err
	}
	s.files[path] = f
	a.registerFile(s.user, f)
	return f, nil
}

// CreateDummy creates a dummy file of nBlocks blocks and discloses it.
// Its blocks immediately become relocation targets and camouflage
// material for the whole agent. New dummy files may claim abandoned
// (undisclosed) blocks — that is how cover is bootstrapped.
func (s *Session) CreateDummy(path string, nBlocks uint64) (*stegfs.File, error) {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := s.dummyFiles[path]; dup {
		return nil, fmt.Errorf("steghide: dummy %q already open", path)
	}
	boot := &volatileSource{a: a, user: s.user, allowUnknown: true}
	f, err := stegfs.CreateDummyFile(a.vol, s.fak(path), path, boot, nBlocks)
	if err != nil {
		return nil, err
	}
	s.dummyFiles[path] = f
	a.registerFile(s.user, f)
	return f, nil
}

// Disclose opens an existing file (real or dummy — the header says
// which) and registers its blocks with the agent.
func (s *Session) Disclose(path string) (*stegfs.File, error) {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	if f, dup := s.files[path]; dup {
		return f, nil
	}
	if f, dup := s.dummyFiles[path]; dup {
		return f, nil
	}
	f, err := stegfs.OpenFile(a.vol, s.fak(path), path, s.source)
	if err != nil {
		return nil, err
	}
	if f.IsDummy() {
		s.dummyFiles[path] = f
	} else {
		s.files[path] = f
	}
	a.registerFile(s.user, f)
	return f, nil
}

// Write writes data at offset off of a disclosed file via Figure 6,
// then re-registers any blocks whose roles changed (growth). The
// block map stays cached; per §4.1.5 the header is flushed only when
// the file is saved (Save, or implicitly at Logout).
func (s *Session) Write(path string, data []byte, off uint64) error {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	if _, err := f.WriteAt(data, off, policyFunc(a.update)); err != nil {
		return err
	}
	a.registerFile(s.user, f)
	return nil
}

// Save flushes a disclosed file's cached block map (header and
// pointer blocks) to the volume and re-registers freshly allocated
// pointer blocks.
func (s *Session) Save(path string) error {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		if df, isDummy := s.dummyFiles[path]; isDummy {
			if err := df.Save(); err != nil {
				return err
			}
			a.registerFile(s.user, df)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	if err := f.Save(); err != nil {
		return err
	}
	a.registerFile(s.user, f)
	return nil
}

// Read reads len(p) bytes at offset off of a disclosed file.
func (s *Session) Read(path string, p []byte, off uint64) (int, error) {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	return f.ReadAt(p, off)
}

// Delete removes a disclosed file, donating its blocks to the user's
// dummy files.
func (s *Session) Delete(path string) error {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	a.forgetFile(f)
	if err := f.Delete(); err != nil {
		return err
	}
	delete(s.files, path)
	return nil
}

// Files lists the session's disclosed real-file paths.
func (s *Session) Files() []string {
	a := s.agent
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	return out
}

// --- Figure 6 over disclosed blocks -----------------------------------

// update is the Figure 6 data-update algorithm for Construction 2:
// identical in shape to Construction 1, but every draw is uniform
// over the blocks disclosed in the current sessions (§4.2.2 — the
// agent can only update files users have disclosed, so an attacker
// sees only part of the storage being touched, which discloses
// nothing since updated blocks need not contain useful data).
func (a *VolatileAgent) update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	if a.dummyData == 0 {
		return 0, fmt.Errorf("%w: disclose a dummy file first", ErrNoDummySpace)
	}
	scratch := make([]byte, a.vol.BlockSize())

	a.stats.mu.Lock()
	a.stats.s.DataUpdates++
	a.stats.mu.Unlock()

	for {
		a.stats.mu.Lock()
		a.stats.s.Iterations++
		a.stats.mu.Unlock()

		b2 := a.list[a.rng.Intn(len(a.list))]
		info := a.known[b2]
		switch {
		case b2 == loc:
			if err := a.vol.Device().ReadBlock(loc, scratch); err != nil {
				return 0, err
			}
			if err := a.vol.WriteSealed(loc, seal, payload); err != nil {
				return 0, err
			}
			a.stats.mu.Lock()
			a.stats.s.InPlace++
			a.stats.mu.Unlock()
			return loc, nil

		case info.dummy:
			// Swap: the data moves to the dummy slot; the old location
			// joins the donating dummy file.
			if err := a.vol.Device().ReadBlock(loc, scratch); err != nil {
				return 0, err
			}
			dv := info.file
			if err := dv.ReplaceBlockLoc(b2, loc); err != nil {
				return 0, err
			}
			if err := a.vol.WriteSealed(b2, seal, payload); err != nil {
				return 0, err
			}
			old := a.known[loc]
			a.register(b2, &ownerInfo{file: ownedFile(old), user: ownedUser(old), seal: seal})
			a.register(loc, &ownerInfo{file: dv, user: info.user, dummy: true})
			a.stats.mu.Lock()
			a.stats.s.Relocations++
			a.stats.mu.Unlock()
			return b2, nil

		case info.pending:
			// Mid-operation block with an unclassified role: not a
			// safe camouflage target; redraw.
			continue

		default:
			if err := a.vol.Reseal(b2, info.seal); err != nil {
				return 0, err
			}
			a.stats.mu.Lock()
			a.stats.s.Camouflage++
			a.stats.mu.Unlock()
		}
	}
}

func ownedFile(o *ownerInfo) *stegfs.File {
	if o == nil {
		return nil
	}
	return o.file
}

func ownedUser(o *ownerInfo) string {
	if o == nil {
		return ""
	}
	return o.user
}

// DummyUpdate issues one idle-time dummy update on a uniformly random
// disclosed block.
func (a *VolatileAgent) DummyUpdate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.list) == 0 {
		return fmt.Errorf("%w: nothing disclosed", ErrNoDummySpace)
	}
	scratch := make([]byte, a.vol.BlockSize())
	for try := 0; try < 64; try++ {
		b3 := a.list[a.rng.Intn(len(a.list))]
		info := a.known[b3]
		if info.pending {
			continue
		}
		var err error
		if info.dummy {
			// Meaningless content: fresh random bytes are its reseal.
			// Read first so the observable I/O matches a reseal.
			if err = a.vol.Device().ReadBlock(b3, scratch); err == nil {
				err = a.vol.RewriteRandom(b3)
			}
		} else {
			err = a.vol.Reseal(b3, info.seal)
		}
		if err != nil {
			return err
		}
		a.stats.mu.Lock()
		a.stats.s.DummyUpdates++
		a.stats.mu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: only pending blocks visible", ErrNoDummySpace)
}

// DummyUpdateBurst issues up to n idle-time dummy updates over the
// disclosed blocks in one batched read-modify-write cycle (two
// scattered device batches instead of 2n single-block calls). Each
// target is drawn exactly as DummyUpdate draws it, so the observable
// stream keeps the same uniform-over-disclosed distribution. It
// returns how many updates were issued — fewer than n when few
// non-pending targets are visible.
func (a *VolatileAgent) DummyUpdateBurst(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.list) == 0 {
		return 0, fmt.Errorf("%w: nothing disclosed", ErrNoDummySpace)
	}
	locs := make([]uint64, 0, n)
	infos := make([]*ownerInfo, 0, n)
	for try := 0; try < 64*n && len(locs) < n; try++ {
		b3 := a.list[a.rng.Intn(len(a.list))]
		info := a.known[b3]
		if info.pending {
			continue
		}
		locs = append(locs, b3)
		infos = append(infos, info)
	}
	if len(locs) == 0 {
		return 0, fmt.Errorf("%w: only pending blocks visible", ErrNoDummySpace)
	}
	var iv [sealer.IVSize]byte
	if err := a.vol.UpdateMany(locs, func(i int, raw []byte) error {
		if infos[i].dummy {
			// Meaningless content: fresh random bytes are its reseal.
			a.vol.FillRandom(raw)
			return nil
		}
		a.vol.NextIV(iv[:])
		return infos[i].seal.Reseal(raw, iv[:], nil)
	}); err != nil {
		return 0, err
	}
	a.stats.mu.Lock()
	a.stats.s.DummyUpdates += uint64(len(locs))
	a.stats.mu.Unlock()
	return len(locs), nil
}
