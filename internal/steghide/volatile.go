package steghide

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"steghide/internal/obs"
	"steghide/internal/prng"
	"steghide/internal/sched"
	"steghide/internal/sealer"
	"steghide/internal/stegfs"
)

// VolatileAgent is Construction 2 (§4.2, "StegHide" — the construction
// the paper implemented as a real file system). The agent keeps no
// persistent secrets: it boots knowing nothing, learns files as users
// disclose FAKs at login, and forgets everything at logout. Every
// block it knows belongs to some disclosed file — real files (whose
// data, header and pointer blocks it can reseal with the disclosed
// keys) or dummy files (whose blocks are meaningless random bytes it
// may overwrite freely and, crucially, relocate data into).
//
// Concurrency model (see also DESIGN.md):
//
//   - The Figure-6 draw loop and all update I/O live in the per-volume
//     scheduler; its sharded block locks let sessions and the dummy
//     daemon overlap their crypto and device work on different blocks.
//   - mu guards the disclosed-block registry (known/list/pos,
//     dummyData), the session table, and the in-memory block maps of
//     dummy files — the state every relocation and allocation touches.
//     Critical sections are memory-only and tiny.
//   - Each Session serializes its own file operations (stegfs.File is
//     single-writer); different sessions run concurrently.
//   - structMu divides operations into a data plane (Write, Read,
//     dummy traffic — shared lock) and a control plane (Login, Logout,
//     Create, CreateDummy, Disclose, Save, Delete — exclusive lock),
//     so structural changes to disclosure never interleave with
//     in-flight updates.
type VolatileAgent struct {
	structMu sync.RWMutex

	mu        sync.Mutex
	vol       *stegfs.Volume
	rng       *prng.PRNG // guarded by mu
	known     map[uint64]*ownerInfo
	list      []uint64
	pos       map[uint64]int
	dummyData uint64 // count of relocatable dummy-data blocks
	sessions  map[string]*Session

	// Per-login capacity quotas (guarded by mu). usage counts every
	// block registered to a login — real, dummy and pending alike, so
	// the budget bounds a user's total disclosed footprint and deleting
	// a file (whose blocks stay as the user's cover) frees nothing.
	// quota holds per-login overrides; defaultQuota applies to the
	// rest; zero means unlimited.
	usage        map[string]uint64
	quota        map[string]uint64
	defaultQuota uint64

	sched *sched.Scheduler

	// jc2 is the journal adapter (nil without EnableJournal); recov is
	// the armed post-crash resolution state (nil after a clean boot or
	// once fully consumed). Both guarded by mu.
	jc2   *c2Intents
	recov *c2Recovery
}

// ownerInfo records what the agent may do with a disclosed block.
type ownerInfo struct {
	file *stegfs.File
	user string
	// seal re-encrypts the block for camouflage updates: the content
	// sealer for data blocks, the header sealer for header/pointer
	// blocks, nil for dummy-data blocks (freshly drawn random bytes
	// are the reseal of meaningless content).
	seal *sealer.Sealer
	// dummy marks a relocatable dummy-data block.
	dummy bool
	// pending marks a block acquired mid-operation whose final role
	// is not yet classified; it is skipped as a camouflage target.
	pending bool
	// reloc remembers the dummy file a pending relocation target was
	// withdrawn from, so the swap can complete (the vacated block
	// joins that file) or abort (the target returns to it).
	reloc *stegfs.File
}

// NewVolatile creates an empty volatile agent over a volume.
func NewVolatile(vol *stegfs.Volume, rng *prng.PRNG) *VolatileAgent {
	a := &VolatileAgent{
		vol:      vol,
		rng:      rng.Child("figure6-volatile"),
		known:    map[uint64]*ownerInfo{},
		pos:      map[uint64]int{},
		sessions: map[string]*Session{},
		usage:    map[string]uint64{},
		quota:    map[string]uint64{},
	}
	a.sched = sched.New(vol, &volatileSpace{a: a})
	return a
}

// Vol returns the underlying volume.
func (a *VolatileAgent) Vol() *stegfs.Volume { return a.vol }

// Stats returns a snapshot of the agent's counters.
func (a *VolatileAgent) Stats() UpdateStats { return statsFromSched(a.sched.Stats()) }

// ResetStats zeroes the counters.
func (a *VolatileAgent) ResetStats() { a.sched.ResetStats() }

// DataSeq reports the monotonically increasing data-update count —
// the activity signal the adaptive dummy-traffic daemon watches.
func (a *VolatileAgent) DataSeq() uint64 { return a.sched.DataSeq() }

// EnablePipeline switches the agent's dummy bursts to the staged seal
// pipeline (workers <= 0 selects GOMAXPROCS); the observable update
// stream is unchanged. Call before concurrent use.
func (a *VolatileAgent) EnablePipeline(workers int) { a.sched.EnablePipeline(workers) }

// EnableMetrics exports the agent's observability series through reg:
// the scheduler's stream counters and histograms, the journal ring's
// occupancy (when journaled), and a live session-count gauge. Call
// after EnableJournal/EnablePipeline so every layer is covered, and
// before concurrent use. Series are labeled by volume name only —
// usernames, pathnames and locator material never reach the registry
// (the session gauge is a count; login frames are wire-visible
// anyway, their number discloses nothing new).
func (a *VolatileAgent) EnableMetrics(reg *obs.Registry, volume string) {
	a.sched.EnableMetrics(reg, volume)
	a.mu.Lock()
	jc := a.jc2
	a.mu.Unlock()
	if jc != nil {
		jc.j.EnableMetrics(reg, volume)
	}
	reg.GaugeFunc("steghide_sessions",
		"users currently logged in", func() float64 {
			return float64(len(a.Users()))
		}, "volume", volume)
}

// KnownBlocks returns how many blocks the agent currently knows.
func (a *VolatileAgent) KnownBlocks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.list)
}

// DummyBlocks returns how many relocatable dummy blocks are visible.
func (a *VolatileAgent) DummyBlocks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dummyData
}

// --- block registry -------------------------------------------------

// register records loc's ownership; the caller holds a.mu.
func (a *VolatileAgent) register(loc uint64, info *ownerInfo) {
	if old, ok := a.known[loc]; ok {
		if old.dummy {
			a.dummyData--
		}
		a.chargeLocked(old.user, -1)
		a.known[loc] = info
	} else {
		a.known[loc] = info
		a.pos[loc] = len(a.list)
		a.list = append(a.list, loc)
	}
	a.chargeLocked(info.user, +1)
	if info.dummy {
		a.dummyData++
	}
}

// unregister forgets loc; the caller holds a.mu.
func (a *VolatileAgent) unregister(loc uint64) {
	info, ok := a.known[loc]
	if !ok {
		return
	}
	if info.dummy {
		a.dummyData--
	}
	a.chargeLocked(info.user, -1)
	delete(a.known, loc)
	i := a.pos[loc]
	last := len(a.list) - 1
	if i != last {
		moved := a.list[last]
		a.list[i] = moved
		a.pos[moved] = i
	}
	a.list = a.list[:last]
	delete(a.pos, loc)
}

// --- per-login quotas -------------------------------------------------

// chargeLocked adjusts a login's block-usage counter; the caller holds
// a.mu. Blocks with no recorded login (crash limbo) are not charged.
func (a *VolatileAgent) chargeLocked(user string, delta int) {
	if user == "" {
		return
	}
	if delta > 0 {
		a.usage[user] += uint64(delta)
		return
	}
	if a.usage[user] >= uint64(-delta) {
		a.usage[user] -= uint64(-delta)
	} else {
		a.usage[user] = 0
	}
}

// quotaLocked returns the effective block budget for a login (0 =
// unlimited); the caller holds a.mu.
func (a *VolatileAgent) quotaLocked(user string) uint64 {
	if q, ok := a.quota[user]; ok {
		return q
	}
	return a.defaultQuota
}

// overBudgetLocked reports whether charging need more blocks to the
// login would exceed its budget; the caller holds a.mu.
func (a *VolatileAgent) overBudgetLocked(user string, need uint64) bool {
	q := a.quotaLocked(user)
	return q != 0 && a.usage[user]+need > q
}

// SetDefaultQuota sets the block budget applied to logins without a
// per-login override. Zero (the default) means unlimited. The budget
// bounds a login's total registered footprint — real files, dummy
// cover and in-flight allocations alike; overage surfaces as
// stegfs.ErrVolumeFull, which round-trips the wire. The check is a
// memory-only comparison on the allocation path, so a quota rejection
// takes the same observable time as any other full-volume rejection.
func (a *VolatileAgent) SetDefaultQuota(blocks uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.defaultQuota = blocks
}

// SetQuota sets a per-login block budget override; zero removes the
// override (the default budget applies again).
func (a *VolatileAgent) SetQuota(user string, blocks uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if blocks == 0 {
		delete(a.quota, user)
		return
	}
	a.quota[user] = blocks
}

// Quota returns the login's effective block budget (0 = unlimited).
func (a *VolatileAgent) Quota(user string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quotaLocked(user)
}

// Usage returns how many blocks are currently registered to the login.
func (a *VolatileAgent) Usage(user string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage[user]
}

// checkBudget pre-checks that the login can take on need more blocks,
// so Create/CreateDummy fail before touching the device (the header
// hunt acquires candidates directly, bypassing AcquireRandom's gate).
func (a *VolatileAgent) checkBudget(user string, need uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.overBudgetLocked(user, need) {
		return fmt.Errorf("steghide: login block budget exhausted: %w", stegfs.ErrVolumeFull)
	}
	return nil
}

// registerFile (re)classifies every block of a disclosed file. A
// dummy file's blocks pass the quarantine gate first: its on-disk map
// may be stale after a crash, claiming blocks that now hold (or may
// hold) another file's live data.
func (a *VolatileAgent) registerFile(user string, f *stegfs.File) {
	hseal := f.HeaderSealer()
	cseal := f.ContentSealer()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.register(f.HeaderLoc(), &ownerInfo{file: f, user: user, seal: hseal})
	for _, loc := range f.BlockLocs() {
		if f.IsDummy() {
			if a.quarantineDummyLocked(f, user, loc) {
				continue
			}
			a.register(loc, &ownerInfo{file: f, user: user, dummy: true})
		} else {
			a.register(loc, &ownerInfo{file: f, user: user, seal: cseal})
		}
	}
	for _, loc := range f.IndirectLocs() {
		a.register(loc, &ownerInfo{file: f, user: user, seal: hseal})
	}
}

// forgetFile removes every registration pointing at f.
func (a *VolatileAgent) forgetFile(f *stegfs.File) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var gone []uint64
	for loc, info := range a.known {
		if info.file == f {
			gone = append(gone, loc)
		}
	}
	for _, loc := range gone {
		a.unregister(loc)
	}
}

// --- BlockSource for disclosed space ---------------------------------

// volatileSource adapts the agent's disclosed-block registry to
// stegfs.BlockSource. Allocation draws from disclosed dummy blocks
// (withdrawing them from their dummy file); release donates blocks to
// a disclosed dummy file of the same user when one exists. Methods
// serialize on the agent's registry mutex internally.
type volatileSource struct {
	a    *VolatileAgent
	user string
	// allowUnknown lets AcquireRandom claim abandoned (undisclosed)
	// blocks; set only on the source used to materialize dummy files.
	allowUnknown bool
}

// SpaceBounds implements stegfs.BlockSource: header candidates range
// over the whole steg space regardless of disclosure.
func (s *volatileSource) SpaceBounds() (uint64, uint64) {
	return s.a.vol.FirstDataBlock(), s.a.vol.NumBlocks()
}

// FreeCount implements stegfs.BlockSource.
func (s *volatileSource) FreeCount() uint64 { return s.a.DummyBlocks() }

// IsFree implements stegfs.BlockSource.
func (s *volatileSource) IsFree(loc uint64) bool {
	a := s.a
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.known[loc]
	return ok && info.dummy
}

// Acquire implements stegfs.BlockSource. Dummy blocks are withdrawn
// from their dummy file; unknown blocks are claimed optimistically —
// the residual stomping risk for undisclosed files is inherent to
// StegFS creation (the 2003 paper mitigates it with replication) and
// documented in DESIGN.md.
func (s *volatileSource) Acquire(loc uint64) bool {
	a := s.a
	if loc < a.vol.FirstDataBlock() || loc >= a.vol.NumBlocks() {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.known[loc]
	if !ok {
		a.register(loc, &ownerInfo{user: s.user, pending: true})
		return true
	}
	if !info.dummy {
		return false
	}
	if err := info.file.RemoveBlockLoc(loc); err != nil {
		return false
	}
	a.register(loc, &ownerInfo{user: s.user, pending: true})
	return true
}

// AcquireRandom implements stegfs.BlockSource: a uniformly random
// disclosed dummy block. Sources created with allowUnknown (used only
// while materializing new dummy files) claim unknown — abandoned —
// blocks instead, so new cover extends the disclosed space rather
// than cannibalizing other dummy files; ordinary file growth never
// touches unknown blocks, keeping data within disclosed space
// (§4.2.2).
func (s *volatileSource) AcquireRandom() (uint64, error) {
	a := s.a
	a.mu.Lock()
	defer a.mu.Unlock()
	// The quota gate lives here — the only path that grows a login's
	// footprint. Acquire (above) stays ungated because opening or
	// disclosing an existing file re-claims blocks the login already
	// owns through it.
	if a.overBudgetLocked(s.user, 1) {
		return 0, fmt.Errorf("steghide: login block budget exhausted: %w", stegfs.ErrVolumeFull)
	}
	if s.allowUnknown {
		first, n := a.vol.FirstDataBlock(), a.vol.NumBlocks()
		for try := 0; try < 4096; try++ {
			loc := first + a.rng.Uint64n(n-first)
			if _, ok := a.known[loc]; ok {
				continue
			}
			// After a crash the ring may prove (or leave open) that an
			// abandoned-looking block holds live data: never claim it.
			if a.recov.protects(loc) {
				continue
			}
			a.register(loc, &ownerInfo{user: s.user, pending: true})
			return loc, nil
		}
		// The volume is almost fully disclosed; fall through to the
		// dummy pool.
	}
	if a.dummyData == 0 {
		return 0, fmt.Errorf("%w: disclose a dummy file first", ErrNoDummySpace)
	}
	for {
		loc := a.list[a.rng.Intn(len(a.list))]
		info := a.known[loc]
		if !info.dummy {
			continue
		}
		if err := info.file.RemoveBlockLoc(loc); err != nil {
			return 0, err
		}
		a.register(loc, &ownerInfo{user: s.user, pending: true})
		return loc, nil
	}
}

// Release implements stegfs.BlockSource: the block joins one of the
// user's disclosed dummy files; with none disclosed it becomes
// unknown again (forgotten, unreachable until redisclosed).
func (s *volatileSource) Release(loc uint64) {
	a := s.a
	a.mu.Lock()
	defer a.mu.Unlock()
	sess := a.sessions[s.user]
	if sess != nil {
		for _, df := range sess.dummyFiles {
			if err := df.AppendBlockLoc(loc); err == nil {
				a.register(loc, &ownerInfo{file: df, user: s.user, dummy: true})
				return
			}
		}
	}
	a.unregister(loc)
}

// --- sessions ---------------------------------------------------------

// Session is one user's login: the set of FAKs they disclosed and the
// open file handles. Structural operations (Create, CreateDummy,
// Disclose, Save, Delete) take the agent's control-plane lock; Write
// and Read run on the shared data plane, serialized per session only,
// so many sessions update concurrently through the scheduler.
type Session struct {
	agent  *VolatileAgent
	user   string
	master sealer.Key
	source *volatileSource

	mu         sync.Mutex // serializes this session's file operations
	files      map[string]*stegfs.File
	dummyFiles map[string]*stegfs.File
}

// Login opens a session for user; master is the stretched passphrase
// key from which the user's per-file FAKs derive.
func (a *VolatileAgent) Login(user string, master sealer.Key) (*Session, error) {
	a.structMu.Lock()
	defer a.structMu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.sessions[user]; dup {
		return nil, fmt.Errorf("%w: %q", ErrUserBusy, user)
	}
	s := &Session{
		agent:      a,
		user:       user,
		master:     master,
		source:     &volatileSource{a: a, user: user},
		files:      map[string]*stegfs.File{},
		dummyFiles: map[string]*stegfs.File{},
	}
	a.sessions[user] = s
	return s, nil
}

// LoginWithPassphrase stretches the passphrase against the volume salt
// and logs in.
func (a *VolatileAgent) LoginWithPassphrase(user, passphrase string) (*Session, error) {
	master := sealer.KeyFromPassphrase(passphrase, a.vol.Salt(), a.vol.KDFIterations())
	return a.Login(user, master)
}

// Logout flushes all of the user's files and erases the agent's
// knowledge of them — the volatility that protects the administrator
// from coercion. It waits for the user's in-flight updates to drain.
func (a *VolatileAgent) Logout(user string) error {
	a.structMu.Lock()
	defer a.structMu.Unlock()
	a.mu.Lock()
	s, ok := a.sessions[user]
	a.mu.Unlock()
	if !ok {
		return ErrUnknownUser
	}
	var firstErr error
	closeAll := func(m map[string]*stegfs.File) {
		for _, f := range m {
			if err := f.Save(); err != nil && firstErr == nil {
				firstErr = err
			}
			// Save may have allocated pointer blocks (registered as
			// pending); classify them before forgetting the file so
			// nothing leaks in the registry.
			a.registerFile(s.user, f)
			a.forgetFile(f)
		}
	}
	closeAll(s.files)
	closeAll(s.dummyFiles)
	a.mu.Lock()
	delete(a.sessions, user)
	a.mu.Unlock()
	s.master = sealer.Key{} // best-effort erasure
	return firstErr
}

// Users lists the users with active sessions, sorted.
func (a *VolatileAgent) Users() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.sessions))
	for u := range a.sessions {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// LogoutAll logs every active session out (flushing its files),
// returning the first failure. Mount-built stacks call it on Close so
// no session outlives the stack.
func (a *VolatileAgent) LogoutAll() error {
	var firstErr error
	for _, u := range a.Users() {
		if err := a.Logout(u); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fak derives the FAK for one of the session user's paths.
func (s *Session) fak(path string) stegfs.FAK {
	return stegfs.DeriveFAKFromMaster(s.master, path)
}

// Create creates and disclosed-registers a hidden file.
func (s *Session) Create(path string) (*stegfs.File, error) {
	a := s.agent
	a.structMu.Lock()
	defer a.structMu.Unlock()
	if _, dup := s.files[path]; dup {
		return nil, fmt.Errorf("steghide: %q already open", path)
	}
	if err := a.checkBudget(s.user, 1); err != nil {
		return nil, err
	}
	f, err := stegfs.CreateFile(a.vol, s.fak(path), path, s.source)
	if err != nil {
		return nil, err
	}
	s.files[path] = f
	a.registerFile(s.user, f)
	a.applyRecovery(f)
	return f, nil
}

// CreateDummy creates a dummy file of nBlocks blocks and discloses it.
// Its blocks immediately become relocation targets and camouflage
// material for the whole agent. New dummy files may claim abandoned
// (undisclosed) blocks — that is how cover is bootstrapped.
func (s *Session) CreateDummy(path string, nBlocks uint64) (*stegfs.File, error) {
	a := s.agent
	a.structMu.Lock()
	defer a.structMu.Unlock()
	if _, dup := s.dummyFiles[path]; dup {
		return nil, fmt.Errorf("steghide: dummy %q already open", path)
	}
	if err := a.checkBudget(s.user, nBlocks+1); err != nil {
		return nil, err
	}
	boot := &volatileSource{a: a, user: s.user, allowUnknown: true}
	f, err := stegfs.CreateDummyFile(a.vol, s.fak(path), path, boot, nBlocks)
	if err != nil {
		return nil, err
	}
	s.dummyFiles[path] = f
	a.registerFile(s.user, f)
	a.applyRecovery(f)
	return f, nil
}

// Disclose opens an existing file (real or dummy — the header says
// which) and registers its blocks with the agent.
func (s *Session) Disclose(path string) (*stegfs.File, error) {
	a := s.agent
	a.structMu.Lock()
	defer a.structMu.Unlock()
	if f, dup := s.files[path]; dup {
		return f, nil
	}
	if f, dup := s.dummyFiles[path]; dup {
		return f, nil
	}
	f, err := stegfs.OpenFile(a.vol, s.fak(path), path, s.source)
	if err != nil {
		return nil, err
	}
	if f.IsDummy() {
		s.dummyFiles[path] = f
	} else {
		s.files[path] = f
	}
	a.registerFile(s.user, f)
	// The freshly loaded map is the disk truth for this file: decide
	// any crash-time intents that were waiting for it.
	a.applyRecovery(f)
	return f, nil
}

// Write writes data at offset off of a disclosed file via Figure 6,
// then re-registers any blocks whose roles changed (growth). The
// block map stays cached; per §4.1.5 the header is flushed only when
// the file is saved (Save, or implicitly at Logout). Writes of
// different sessions proceed concurrently; the scheduler merges their
// update intents into one uniformly random stream.
func (s *Session) Write(path string, data []byte, off uint64) error {
	return s.WriteCtx(context.Background(), path, data, off)
}

// WriteCtx is Write with cooperative cancellation: the context is
// honored at the scheduler's wait point, before every draw of the
// Figure-6 loop, so a caller's deadline can abort an update that is
// still hunting for a relocation target. Blocks already updated when
// the context fires keep their new content (partial-write semantics,
// like an interrupted POSIX write); the file's map stays consistent.
func (s *Session) WriteCtx(ctx context.Context, path string, data []byte, off uint64) error {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	policy := policyFunc(func(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
		return a.sched.UpdateCtx(ctx, loc, seal, payload)
	})
	if _, err := f.WriteAt(data, off, policy); err != nil {
		return err
	}
	a.registerFile(s.user, f)
	return nil
}

// Truncate resizes a disclosed real file to size bytes: growth draws
// fresh blocks from the disclosed dummy space, shrinkage donates
// blocks back to the user's dummy files.
func (s *Session) Truncate(path string, size uint64) error {
	return s.TruncateCtx(context.Background(), path, size)
}

// TruncateCtx is Truncate honoring the context at the scheduler's
// wait point. Like Write (whose growth path runs the same Resize), it
// holds the data-plane lock only: the registry and source serialize
// internally, so other sessions keep flowing during a large resize.
func (s *Session) TruncateCtx(ctx context.Context, path string, size uint64) error {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	policy := policyFunc(func(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
		return a.sched.UpdateCtx(ctx, loc, seal, payload)
	})
	if err := f.Resize(size, policy); err != nil {
		return err
	}
	a.registerFile(s.user, f)
	return nil
}

// Save flushes a disclosed file's cached block map (header and
// pointer blocks) to the volume and re-registers freshly allocated
// pointer blocks.
func (s *Session) Save(path string) error {
	a := s.agent
	a.structMu.Lock()
	defer a.structMu.Unlock()
	f, ok := s.files[path]
	if !ok {
		if df, isDummy := s.dummyFiles[path]; isDummy {
			if err := df.Save(); err != nil {
				return err
			}
			a.registerFile(s.user, df)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	if err := f.Save(); err != nil {
		return err
	}
	a.registerFile(s.user, f)
	return nil
}

// Read reads len(p) bytes at offset off of a disclosed file.
func (s *Session) Read(path string, p []byte, off uint64) (int, error) {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	return f.ReadAt(p, off)
}

// Delete removes a disclosed file, donating its blocks to the user's
// dummy files.
func (s *Session) Delete(path string) error {
	a := s.agent
	a.structMu.Lock()
	defer a.structMu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDisclosed, path)
	}
	a.forgetFile(f)
	if err := f.Delete(); err != nil {
		return err
	}
	delete(s.files, path)
	return nil
}

// Files lists the session's disclosed real-file paths in sorted
// order, so listings are stable across runs (map iteration order must
// not leak into user-visible output or golden tests).
func (s *Session) Files() []string {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// User returns the name this session was logged in as.
func (s *Session) User() string { return s.user }

// Stat reports the size and kind of a disclosed file, serialized with
// the session's own operations.
func (s *Session) Stat(path string) (size uint64, dummy bool, err error) {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[path]; ok {
		return f.Size(), false, nil
	}
	if f, ok := s.dummyFiles[path]; ok {
		return f.Size(), true, nil
	}
	return 0, false, fmt.Errorf("%w: %q", ErrNotDisclosed, path)
}

// Open returns the session's open handle for path — real or dummy —
// without touching the device, and reports whether one exists. Like
// every session operation it serializes with the agent's control
// plane (Create/Disclose/Delete mutate the maps under structMu).
func (s *Session) Open(path string) (*stegfs.File, bool) {
	a := s.agent
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[path]; ok {
		return f, true
	}
	if f, ok := s.dummyFiles[path]; ok {
		return f, true
	}
	return nil, false
}

// --- Figure 6 over disclosed blocks -----------------------------------

// update delegates a data update to the scheduler; the draw loop runs
// there, against this agent's disclosed-block space (§4.2.2 — the
// agent can only update files users have disclosed, so an attacker
// sees only part of the storage being touched, which discloses
// nothing since updated blocks need not contain useful data).
func (a *VolatileAgent) update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	return a.sched.Update(loc, seal, payload)
}

// DummyUpdate issues one idle-time dummy update on a uniformly random
// disclosed block.
func (a *VolatileAgent) DummyUpdate() error {
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	err := a.sched.DummyUpdate()
	if errors.Is(err, sched.ErrNoTarget) {
		return fmt.Errorf("%w: only pending blocks visible", ErrNoDummySpace)
	}
	return err
}

// DummyUpdateBurst issues up to n idle-time dummy updates over the
// disclosed blocks in one batched read-modify-write cycle (two
// scattered device batches instead of 2n single-block calls). Each
// target is drawn exactly as DummyUpdate draws it, so the observable
// stream keeps the same uniform-over-disclosed distribution. It
// returns how many updates were issued — fewer than n when few
// non-pending targets are visible.
func (a *VolatileAgent) DummyUpdateBurst(n int) (int, error) {
	a.structMu.RLock()
	defer a.structMu.RUnlock()
	issued, err := a.sched.DummyUpdateBurst(n)
	if errors.Is(err, sched.ErrNoTarget) {
		return issued, fmt.Errorf("%w: only pending blocks visible", ErrNoDummySpace)
	}
	return issued, err
}

// --- scheduler space over the disclosed registry ----------------------

// volatileSpace adapts the disclosed-block registry to sched.Space.
// All methods serialize on the agent's registry mutex; none perform
// I/O.
type volatileSpace struct {
	a *VolatileAgent
}

// DrawUpdate implements sched.Space: one uniform draw over the
// disclosed blocks. A draw that lands on a relocatable dummy block
// atomically withdraws it from its dummy file (first phase of the
// swap) so no concurrent draw — relocation or allocation — can claim
// it twice.
func (sp *volatileSpace) DrawUpdate(loc uint64) (sched.Target, error) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dummyData == 0 {
		return sched.Target{}, fmt.Errorf("%w: disclose a dummy file first", ErrNoDummySpace)
	}
	b2 := a.list[a.rng.Intn(len(a.list))]
	info := a.known[b2]
	switch {
	case b2 == loc:
		return sched.Target{Loc: loc, Kind: sched.Self}, nil
	case info.dummy:
		if err := info.file.RemoveBlockLoc(b2); err != nil {
			return sched.Target{}, err
		}
		a.register(b2, &ownerInfo{user: info.user, pending: true, reloc: info.file})
		return sched.Target{Loc: b2, Kind: sched.Relocate}, nil
	case info.pending:
		// Mid-operation block with an unclassified role: not a safe
		// camouflage target; redraw.
		return sched.Target{Kind: sched.Redraw}, nil
	default:
		return sched.Target{Loc: b2, Kind: sched.Camouflage}, nil
	}
}

// CommitRelocate implements sched.Space: the payload landed on newLoc,
// so it takes over oldLoc's ownership, and oldLoc joins the dummy
// file that donated newLoc.
func (sp *volatileSpace) CommitRelocate(oldLoc, newLoc uint64, seal *sealer.Sealer) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	pend := a.known[newLoc]
	old := a.known[oldLoc]
	a.register(newLoc, &ownerInfo{file: ownedFile(old), user: ownedUser(old), seal: seal})
	if a.jc2 != nil {
		// Journaled: the vacated block stays in limbo — pending, owed
		// to the donor — until the owning file's header save makes the
		// move durable; until then the on-disk header still references
		// oldLoc, so no refill or reallocation may touch it.
		var donor *stegfs.File
		user := ownedUser(old)
		if pend != nil && pend.reloc != nil {
			donor = pend.reloc
			user = pend.user
		}
		a.jc2.vacatedLocked(oldLoc, newLoc, donor, user)
		a.register(oldLoc, &ownerInfo{user: user, pending: true})
		return
	}
	if pend != nil && pend.reloc != nil {
		if err := pend.reloc.AppendBlockLoc(oldLoc); err == nil {
			a.register(oldLoc, &ownerInfo{file: pend.reloc, user: pend.user, dummy: true})
			return
		}
	}
	// No donor to give the vacated block to (should not happen for a
	// committed relocation): forget it rather than corrupt a map.
	a.unregister(oldLoc)
}

// AbortRelocate implements sched.Space: the payload write failed, so
// the withdrawn target returns to its dummy file and the data stays
// where it was.
func (sp *volatileSpace) AbortRelocate(_, newLoc uint64) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	pend := a.known[newLoc]
	if pend == nil {
		return
	}
	if pend.reloc != nil {
		if err := pend.reloc.AppendBlockLoc(newLoc); err == nil {
			a.register(newLoc, &ownerInfo{file: pend.reloc, user: pend.user, dummy: true})
			return
		}
	}
	a.unregister(newLoc)
}

// DrawDummy implements sched.Space: a uniform draw over the disclosed
// blocks; eligibility is decided at execution time by Classify.
func (sp *volatileSpace) DrawDummy() (uint64, error) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.list) == 0 {
		return 0, fmt.Errorf("%w: nothing disclosed", ErrNoDummySpace)
	}
	return a.list[a.rng.Intn(len(a.list))], nil
}

// DrawDummyBatch implements sched.Space, drawing each target exactly
// as DrawDummy does and pre-filtering mid-operation blocks.
func (sp *volatileSpace) DrawDummyBatch(locs []uint64) (int, error) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.list) == 0 {
		return 0, fmt.Errorf("%w: nothing disclosed", ErrNoDummySpace)
	}
	n := 0
	for try := 0; try < 64*len(locs) && n < len(locs); try++ {
		b3 := a.list[a.rng.Intn(len(a.list))]
		if a.known[b3].pending {
			continue
		}
		locs[n] = b3
		n++
	}
	return n, nil
}

// Classify implements sched.Space: decided under the block's I/O lock,
// so a role change between draw and execution reseals under the
// current key — or skips a mid-operation block — never acts on stale
// state.
func (sp *volatileSpace) Classify(loc uint64) (sched.Action, *sealer.Sealer) {
	a := sp.a
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.known[loc]
	switch {
	case !ok || info.pending:
		return sched.ActSkip, nil
	case info.dummy:
		// Meaningless content: fresh random bytes are its reseal.
		return sched.ActRefill, nil
	default:
		return sched.ActReseal, info.seal
	}
}

func ownedFile(o *ownerInfo) *stegfs.File {
	if o == nil {
		return nil
	}
	return o.file
}

func ownedUser(o *ownerInfo) string {
	if o == nil {
		return ""
	}
	return o.user
}
