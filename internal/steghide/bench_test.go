package steghide

import (
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
	"steghide/internal/stegfs"
)

// benchC1 builds a Construction 1 agent at the given utilization with
// one 32-block file to update.
func benchC1(b *testing.B, utilization float64) *NonVolatileAgent {
	b.Helper()
	vol, err := stegfs.Format(blockdev.NewMem(512, 8192),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("bench")})
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewNonVolatile(vol, []byte("s"), prng.NewFromUint64(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a.Create("u", "/f"); err != nil {
		b.Fatal(err)
	}
	if err := a.Write("/f", make([]byte, 32*vol.PayloadSize()), 0); err != nil {
		b.Fatal(err)
	}
	first, n := a.Source().SpaceBounds()
	span := n - first
	for span-a.Source().FreeCount() < uint64(float64(span)*utilization) {
		if _, err := a.Source().AcquireRandom(); err != nil {
			b.Fatal(err)
		}
	}
	return a
}

// BenchmarkFigure6Update measures the full Figure-6 data update
// (camouflage draws included) at the paper's utilization endpoints.
func BenchmarkFigure6Update(b *testing.B) {
	for _, util := range []float64{0.1, 0.5, 0.9} {
		b.Run(map[float64]string{0.1: "util10", 0.5: "util50", 0.9: "util90"}[util], func(b *testing.B) {
			a := benchC1(b, util)
			ps := a.Vol().PayloadSize()
			chunk := make([]byte, ps)
			rng := prng.NewFromUint64(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Intn(32)) * uint64(ps)
				if err := a.Write("/f", chunk, off); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(a.Stats().ExpectedOverhead(), "iterations/update")
		})
	}
}

// BenchmarkDummyUpdate measures the idle-traffic primitive.
func BenchmarkDummyUpdate(b *testing.B) {
	a := benchC1(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.DummyUpdate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVolatileSessionWrite measures Construction 2's end-to-end
// write path (registry bookkeeping included).
func BenchmarkVolatileSessionWrite(b *testing.B) {
	vol, err := stegfs.Format(blockdev.NewMem(512, 8192),
		stegfs.FormatOptions{KDFIterations: 4, FillSeed: []byte("b2")})
	if err != nil {
		b.Fatal(err)
	}
	a := NewVolatile(vol, prng.NewFromUint64(3))
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 256); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Create("/f"); err != nil {
		b.Fatal(err)
	}
	ps := vol.PayloadSize()
	if err := s.Write("/f", make([]byte, 32*ps), 0); err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, ps)
	rng := prng.NewFromUint64(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(rng.Intn(32)) * uint64(ps)
		if err := s.Write("/f", chunk, off); err != nil {
			b.Fatal(err)
		}
	}
}
