// Package steghide implements the paper's primary contribution: the
// update-analysis countermeasure of §4, in both constructions.
//
// The threat: an attacker who can snapshot the raw storage repeatedly
// sees which blocks changed between snapshots. Even with StegFS
// hiding the directory structure, a stable set of changing blocks
// betrays the existence (and extent) of hidden files.
//
// The defence (Figure 6):
//
//   - When idle, the agent issues dummy updates on randomly selected
//     blocks: read, decrypt, fresh IV, re-encrypt, write. Without the
//     key, a dummy update is indistinguishable from a data update.
//   - When a data block is updated, it is relocated to a uniformly
//     random block: the agent repeatedly draws a random block B2;
//     if B2 is the block itself it updates in place; if B2 is a dummy
//     block the data moves there (the old location becomes a dummy);
//     otherwise B2 gets a camouflage dummy update and the draw
//     repeats.
//
// Under this algorithm every observable update touches a uniformly
// random block, whether or not real work is happening — the scheme is
// perfectly secure in the sense of Definition 1 (§3.2.4). The expected
// I/O overhead is N/D, where D of N blocks are dummies (§4.1.5).
//
// Two constructions differ in where secrets live:
//
//   - NonVolatileAgent (Construction 1, "StegHide*"): the agent keeps
//     one global block-encryption key and the dummy file's identity in
//     persistent memory, so it can reseal any block and knows the
//     data/dummy partition at all times.
//   - VolatileAgent (Construction 2, "StegHide"): the agent boots with
//     zero knowledge. Users disclose per-file FAKs (and dummy-file
//     FAKs) at login; the agent operates strictly on disclosed blocks
//     and forgets everything at logout. A coerced user can disclose
//     dummy files — or real files with a wrong content key — and
//     plausibly deny everything else.
package steghide

import (
	"errors"

	"steghide/internal/sched"
)

// Sentinel errors.
var (
	// ErrNoDummySpace reports that the update algorithm cannot make
	// progress because no dummy blocks are visible: Construction 1 at
	// 100% utilization, or Construction 2 before any dummy file has
	// been disclosed.
	ErrNoDummySpace = errors.New("steghide: no dummy blocks available to the agent")
	// ErrUnknownUser reports an operation for a user with no session.
	ErrUnknownUser = errors.New("steghide: user has no active session")
	// ErrNotDisclosed reports an operation on a file that has not been
	// disclosed in the current session.
	ErrNotDisclosed = errors.New("steghide: file not disclosed in this session")
	// ErrUserBusy reports a login for a user who already has an active
	// session. Over the wire this is usually transient: the user's old
	// connection died and its implicit logout is still flushing, so a
	// reconnecting client briefly retries logins that report it.
	ErrUserBusy = errors.New("steghide: user already logged in")
)

// UpdateStats aggregates the observable work of an agent. The
// relationship Iterations/DataUpdates ≈ N/D is the paper's expected
// overhead E (§4.1.5); each iteration costs one read and one write.
type UpdateStats struct {
	// DataUpdates is the number of Figure-6 data updates performed.
	DataUpdates uint64
	// Iterations is the total number of block draws across updates.
	Iterations uint64
	// Relocations counts updates whose block moved to a dummy slot.
	Relocations uint64
	// InPlace counts updates where the draw hit the block itself.
	InPlace uint64
	// Camouflage counts dummy updates issued on other data blocks
	// while searching for a target.
	Camouflage uint64
	// DummyUpdates counts idle-time dummy updates.
	DummyUpdates uint64
}

// ExpectedOverhead returns measured Iterations per data update — the
// empirical counterpart of E = N/D. Returns 0 before any update.
func (s UpdateStats) ExpectedOverhead() float64 {
	if s.DataUpdates == 0 {
		return 0
	}
	return float64(s.Iterations) / float64(s.DataUpdates)
}

// statsFromSched converts the scheduler's counter snapshot into the
// agent-facing UpdateStats.
func statsFromSched(s sched.Stats) UpdateStats {
	return UpdateStats{
		DataUpdates:  s.DataUpdates,
		Iterations:   s.Iterations,
		Relocations:  s.Relocations,
		InPlace:      s.InPlace,
		Camouflage:   s.Camouflage,
		DummyUpdates: s.DummyUpdates,
	}
}
