package steghide

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSource counts calls and can be switched to failing.
type countingSource struct {
	mu    sync.Mutex
	calls int
	err   error
}

func (c *countingSource) DummyUpdate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	return c.err
}

func (c *countingSource) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestDaemonEmitsAndStops(t *testing.T) {
	src := &countingSource{}
	d := NewDaemon(src, time.Millisecond)
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for d.Issued() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Issued() < 5 {
		t.Fatalf("daemon issued only %d updates", d.Issued())
	}
	d.Stop()
	d.Stop() // idempotent
	after := src.count()
	time.Sleep(20 * time.Millisecond)
	if src.count() != after {
		t.Fatal("daemon kept running after Stop")
	}
}

func TestDaemonTolleratesNoDummySpace(t *testing.T) {
	src := &countingSource{err: ErrNoDummySpace}
	d := NewDaemon(src, time.Millisecond)
	d.Start()
	deadline := time.Now().Add(2 * time.Second)
	for src.count() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	if n, _ := d.Errors(); n != 0 {
		t.Fatalf("boot-state ErrNoDummySpace counted as %d errors", n)
	}
	if d.Issued() != 0 {
		t.Fatal("failed updates counted as issued")
	}
}

func TestDaemonRecordsRealErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	src := &countingSource{err: boom}
	d := NewDaemon(src, time.Millisecond)
	d.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := d.Errors(); n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	n, last := d.Errors()
	if n == 0 || !errors.Is(last, boom) {
		t.Fatalf("errors not recorded: n=%d last=%v", n, last)
	}
}

func TestDaemonRestart(t *testing.T) {
	src := &countingSource{}
	d := NewDaemon(src, time.Millisecond)
	for round := 0; round < 3; round++ {
		before := d.Issued()
		d.Start()
		deadline := time.Now().Add(2 * time.Second)
		for d.Issued() < before+3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		d.Stop()
		if d.Issued() < before+3 {
			t.Fatalf("round %d: daemon issued %d (had %d) after restart", round, d.Issued(), before)
		}
		after := src.count()
		time.Sleep(10 * time.Millisecond)
		if src.count() != after {
			t.Fatalf("round %d: daemon kept running after Stop", round)
		}
	}
}

// seqSource is a DummySource whose activity counter tests can drive.
type seqSource struct {
	countingSource
	seq atomic.Uint64
}

func (s *seqSource) DataSeq() uint64 { return s.seq.Load() }

func TestDaemonAdaptiveFillsOnlyIdleGaps(t *testing.T) {
	src := &seqSource{}
	d := NewDaemon(src, time.Millisecond)
	d.Start()

	// Busy phase: real updates flow between ticks, so the daemon must
	// suppress its own traffic.
	stopBusy := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopBusy:
				return
			default:
				src.seq.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for d.Skipped() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	busyIssued := d.Issued()
	close(stopBusy)
	if d.Skipped() < 5 {
		t.Fatalf("adaptive daemon skipped only %d busy ticks", d.Skipped())
	}

	// Idle phase: the stream would fall silent, so the daemon must
	// resume filling it.
	deadline = time.Now().Add(2 * time.Second)
	for d.Issued() < busyIssued+5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	if d.Issued() < busyIssued+5 {
		t.Fatalf("adaptive daemon did not fill the idle gap (issued %d, was %d)", d.Issued(), busyIssued)
	}
}

func TestDaemonAgainstRealAgent(t *testing.T) {
	a, _ := newC2(t, 1024)
	s, err := a.LoginWithPassphrase("u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDummy("/d", 64); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(a, time.Millisecond)
	d.Start()
	deadline := time.Now().Add(2 * time.Second)
	for d.Issued() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	if d.Issued() < 10 {
		t.Fatalf("daemon issued only %d updates against the real agent", d.Issued())
	}
	if got := a.Stats().DummyUpdates; got < 10 {
		t.Fatalf("agent recorded %d dummy updates", got)
	}
}
