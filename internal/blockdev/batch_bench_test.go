package blockdev

import (
	"path/filepath"
	"testing"
)

// Paired loop-vs-batched benchmarks: the same 64-block transfer
// through the per-block Device interface and through the batch plane.

const (
	benchBS    = 4096
	benchBatch = 64
)

func benchDeviceRead(b *testing.B, d Device, batched bool) {
	b.Helper()
	bufs := AllocBlocks(benchBatch, d.BlockSize())
	seed := AllocBlocks(benchBatch, d.BlockSize())
	fillPattern(seed, 5)
	if err := WriteBlocks(d, 0, seed); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(benchBatch * d.BlockSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if err := ReadBlocks(d, 0, bufs); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for j := range bufs {
			if err := d.ReadBlock(uint64(j), bufs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDeviceWrite(b *testing.B, d Device, batched bool) {
	b.Helper()
	data := AllocBlocks(benchBatch, d.BlockSize())
	fillPattern(data, 5)
	b.SetBytes(int64(benchBatch * d.BlockSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if err := WriteBlocks(d, 0, data); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for j := range data {
			if err := d.WriteBlock(uint64(j), data[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchRead(b *testing.B) {
	b.Run("mem/loop", func(b *testing.B) { benchDeviceRead(b, NewMem(benchBS, 1<<10), false) })
	b.Run("mem/batched", func(b *testing.B) { benchDeviceRead(b, NewMem(benchBS, 1<<10), true) })
	b.Run("file/loop", func(b *testing.B) {
		d, err := CreateFile(filepath.Join(b.TempDir(), "v"), benchBS, 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		benchDeviceRead(b, d, false)
	})
	b.Run("file/batched", func(b *testing.B) {
		d, err := CreateFile(filepath.Join(b.TempDir(), "v"), benchBS, 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		benchDeviceRead(b, d, true)
	})
	b.Run("striped-mem/loop", func(b *testing.B) {
		s, err := NewStriped(NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9))
		if err != nil {
			b.Fatal(err)
		}
		benchDeviceRead(b, s, false)
	})
	b.Run("striped-mem/batched", func(b *testing.B) {
		s, err := NewStriped(NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9))
		if err != nil {
			b.Fatal(err)
		}
		benchDeviceRead(b, s, true)
	})
}

// benchDeviceReadAt measures the scattered-batch path (the shape dummy
// bursts and oblivious probes use) against the per-block loop.
func benchDeviceReadAt(b *testing.B, d Device, batched bool) {
	b.Helper()
	bufs := AllocBlocks(benchBatch, d.BlockSize())
	idx := make([]uint64, benchBatch)
	for i := range idx {
		idx[i] = uint64(i*7) % d.NumBlocks() // scattered, deterministic
	}
	b.SetBytes(int64(benchBatch * d.BlockSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if err := ReadBlocksAt(d, idx, bufs); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for j, x := range idx {
			if err := d.ReadBlock(x, bufs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStripedScattered pairs the scattered loop against the
// batched path on all-memory members — the case where goroutine
// fan-out used to cost more than it hid; the cheap-member heuristic
// keeps these sub-batches inline.
func BenchmarkStripedScattered(b *testing.B) {
	newStriped := func(b *testing.B) *Striped {
		s, err := NewStriped(NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9), NewMem(benchBS, 1<<9))
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("mem/loop", func(b *testing.B) { benchDeviceReadAt(b, newStriped(b), false) })
	b.Run("mem/batched", func(b *testing.B) { benchDeviceReadAt(b, newStriped(b), true) })
}

func BenchmarkBatchWrite(b *testing.B) {
	b.Run("mem/loop", func(b *testing.B) { benchDeviceWrite(b, NewMem(benchBS, 1<<10), false) })
	b.Run("mem/batched", func(b *testing.B) { benchDeviceWrite(b, NewMem(benchBS, 1<<10), true) })
	b.Run("file/loop", func(b *testing.B) {
		d, err := CreateFile(filepath.Join(b.TempDir(), "v"), benchBS, 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		benchDeviceWrite(b, d, false)
	})
	b.Run("file/batched", func(b *testing.B) {
		d, err := CreateFile(filepath.Join(b.TempDir(), "v"), benchBS, 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		benchDeviceWrite(b, d, true)
	})
}
