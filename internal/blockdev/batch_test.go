package blockdev

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"steghide/internal/diskmodel"
)

// loopOnly hides a device's batch fast path, forcing the helpers onto
// their per-block fallback.
type loopOnly struct{ Device }

func fillPattern(bufs [][]byte, seed byte) {
	for i, b := range bufs {
		for j := range b {
			b[j] = seed + byte(i) + byte(j)*3
		}
	}
}

// TestBatchHelpersMatchLoop verifies the fast paths and the loop
// fallback produce identical device contents and identical reads.
func TestBatchHelpersMatchLoop(t *testing.T) {
	const bs, n = 64, 32
	fast := NewMem(bs, n)
	slow := NewMem(bs, n)

	data := AllocBlocks(8, bs)
	fillPattern(data, 7)
	if err := WriteBlocks(fast, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlocks(loopOnly{slow}, 5, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Snapshot(), slow.Snapshot()) {
		t.Fatal("batched and looped writes diverge")
	}

	idx := []uint64{30, 2, 17, 25, 9}
	scattered := AllocBlocks(len(idx), bs)
	fillPattern(scattered, 101)
	if err := WriteBlocksAt(fast, idx, scattered); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlocksAt(loopOnly{slow}, idx, scattered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Snapshot(), slow.Snapshot()) {
		t.Fatal("batched and looped scattered writes diverge")
	}

	got1 := AllocBlocks(8, bs)
	got2 := AllocBlocks(8, bs)
	if err := ReadBlocks(fast, 5, got1); err != nil {
		t.Fatal(err)
	}
	if err := ReadBlocks(loopOnly{fast}, 5, got2); err != nil {
		t.Fatal(err)
	}
	for i := range got1 {
		if !bytes.Equal(got1[i], got2[i]) {
			t.Fatalf("read %d diverges", i)
		}
	}
	sg1 := AllocBlocks(len(idx), bs)
	if err := ReadBlocksAt(fast, idx, sg1); err != nil {
		t.Fatal(err)
	}
	for i := range sg1 {
		if !bytes.Equal(sg1[i], scattered[i]) {
			t.Fatalf("scattered read %d diverges", i)
		}
	}
}

// TestBatchValidation exercises the up-front argument checks: nothing
// may be transferred on a malformed batch.
func TestBatchValidation(t *testing.T) {
	m := NewMem(64, 8)
	good := AllocBlocks(4, 64)

	if err := WriteBlocks(m, 6, good); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrun batch: %v", err)
	}
	if err := ReadBlocks(m, 6, good); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrun read batch: %v", err)
	}
	bad := [][]byte{make([]byte, 64), make([]byte, 63)}
	if err := WriteBlocks(m, 0, bad); !errors.Is(err, ErrBufSize) {
		t.Fatalf("short buffer: %v", err)
	}
	if err := ReadBlocksAt(m, []uint64{1, 2}, good[:1]); !errors.Is(err, ErrBatchShape) {
		t.Fatalf("shape mismatch: %v", err)
	}
	if err := WriteBlocksAt(m, []uint64{1, 9}, good[:2]); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("scattered overrun: %v", err)
	}
	// Empty batches are no-ops.
	if err := ReadBlocks(m, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlocksAt(m, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSubDeviceBatchBounds verifies out-of-range batches on a
// SubDevice fail in the sub's own address space and never leak into
// the parent's surrounding blocks.
func TestSubDeviceBatchBounds(t *testing.T) {
	const bs = 64
	parent := NewMem(bs, 20)
	before := parent.Snapshot()
	sub, err := NewSub(parent, 5, 8)
	if err != nil {
		t.Fatal(err)
	}

	data := AllocBlocks(4, bs)
	fillPattern(data, 1)
	// Contiguous: [6, 10) exceeds the 8-block window.
	if err := WriteBlocks(sub, 6, data); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	// Scattered: index 8 is one past the window even though parent
	// block 13 exists.
	if err := WriteBlocksAt(sub, []uint64{0, 8, 2, 3}, data); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := ReadBlocksAt(sub, []uint64{7, 8}, data[:2]); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if !bytes.Equal(parent.Snapshot(), before) {
		t.Fatal("failed batch mutated the parent")
	}

	// An in-range batch lands at the right parent offset.
	if err := WriteBlocks(sub, 4, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, bs)
	if err := parent.ReadBlock(5+4, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[0]) {
		t.Fatal("sub batch landed at wrong parent block")
	}
}

// TestStripedBatchSpansBoundaries verifies a contiguous batch that
// wraps several times around the stripe is ordered correctly and each
// member receives exactly its residue class.
func TestStripedBatchSpansBoundaries(t *testing.T) {
	const bs = 32
	members := []*Mem{NewMem(bs, 8), NewMem(bs, 8), NewMem(bs, 8)}
	s, err := NewStriped(members[0], members[1], members[2])
	if err != nil {
		t.Fatal(err)
	}

	// Batch [4, 17): 13 blocks crossing the stripe 5 times.
	const start, count = 4, 13
	data := AllocBlocks(count, bs)
	fillPattern(data, 9)
	if err := WriteBlocks(s, start, data); err != nil {
		t.Fatal(err)
	}

	// Per-block readback through the striped view.
	one := make([]byte, bs)
	for i := 0; i < count; i++ {
		if err := s.ReadBlock(start+uint64(i), one); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, data[i]) {
			t.Fatalf("block %d misordered after striped batch", start+i)
		}
	}
	// Per-member distribution: volume block i must sit on member i%3
	// at local index i/3, and only the batch's blocks may be non-zero.
	zero := make([]byte, bs)
	for v := uint64(0); v < s.NumBlocks(); v++ {
		m, local := s.Locate(v)
		if err := members[m].ReadBlock(local, one); err != nil {
			t.Fatal(err)
		}
		switch {
		case v >= start && v < start+count:
			if !bytes.Equal(one, data[v-start]) {
				t.Fatalf("volume block %d not on member %d/%d", v, m, local)
			}
		default:
			if !bytes.Equal(one, zero) {
				t.Fatalf("batch leaked into volume block %d", v)
			}
		}
	}

	// Scattered batch across members round-trips too.
	idx := []uint64{22, 1, 14, 9, 2}
	sd := AllocBlocks(len(idx), bs)
	fillPattern(sd, 77)
	if err := WriteBlocksAt(s, idx, sd); err != nil {
		t.Fatal(err)
	}
	got := AllocBlocks(len(idx), bs)
	if err := ReadBlocksAt(s, idx, got); err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if !bytes.Equal(got[i], sd[i]) {
			t.Fatalf("scattered striped block %d diverges", idx[i])
		}
	}
}

// TestFaultMidBatchPrefix verifies a fault firing inside a batch
// leaves the documented prefix: blocks before the failing index
// transferred, blocks at and after it untouched.
func TestFaultMidBatchPrefix(t *testing.T) {
	const bs, n = 64, 16
	base := NewMem(bs, n)
	f := NewFault(base)

	data := AllocBlocks(6, bs)
	fillPattern(data, 3)
	f.FailWritesAfter(4)
	err := WriteBlocks(f, 2, data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	one := make([]byte, bs)
	zero := make([]byte, bs)
	for i := 0; i < 6; i++ {
		if err := base.ReadBlock(2+uint64(i), one); err != nil {
			t.Fatal(err)
		}
		if i < 4 {
			if !bytes.Equal(one, data[i]) {
				t.Fatalf("prefix block %d not written", i)
			}
		} else if !bytes.Equal(one, zero) {
			t.Fatalf("block %d written past the fault", i)
		}
	}

	// Read side: the prefix is filled, the rest untouched.
	f.Heal()
	f.FailReadsAfter(2)
	bufs := AllocBlocks(4, bs)
	fillPattern(bufs, 200) // sentinel
	sentinel := append([]byte(nil), bufs[2]...)
	err = ReadBlocksAt(f, []uint64{2, 3, 4, 5}, bufs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !bytes.Equal(bufs[0], data[0]) || !bytes.Equal(bufs[1], data[1]) {
		t.Fatal("read prefix not filled before the fault")
	}
	if !bytes.Equal(bufs[2], sentinel) {
		t.Fatal("buffer past the fault was touched")
	}
}

// TestTracedBatchEvents verifies contiguous batches trace as one
// ranged event, scattered batches as per-block events, and that both
// Counter and ExpandEvents agree on the per-block view.
func TestTracedBatchEvents(t *testing.T) {
	var col Collector
	var cnt Counter
	d := NewTraced(NewMem(64, 32), MultiTracer{&col, &cnt})

	data := AllocBlocks(5, 64)
	if err := WriteBlocks(d, 10, data); err != nil {
		t.Fatal(err)
	}
	if err := ReadBlocksAt(d, []uint64{3, 8, 1}, data[:3]); err != nil {
		t.Fatal(err)
	}

	events := col.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (1 ranged + 3 scattered)", len(events))
	}
	if events[0].Op != OpWrite || events[0].Block != 10 || events[0].Span() != 5 {
		t.Fatalf("ranged event = %+v", events[0])
	}
	flat := ExpandEvents(events)
	if len(flat) != 8 {
		t.Fatalf("expanded to %d events, want 8", len(flat))
	}
	for i := 0; i < 5; i++ {
		if flat[i].Block != 10+uint64(i) || flat[i].Span() != 1 {
			t.Fatalf("expanded event %d = %+v", i, flat[i])
		}
	}
	if cnt.Writes() != 5 || cnt.Reads() != 3 {
		t.Fatalf("counter saw %d writes / %d reads", cnt.Writes(), cnt.Reads())
	}
	// A failed batch must not be traced.
	if err := ReadBlocks(d, 30, data); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if col.Len() != 4 {
		t.Fatal("failed batch was traced")
	}
}

// TestFileBatchRoundTrip verifies the file device's contiguous and
// run-coalescing scattered batch paths against per-block access.
func TestFileBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	d, err := CreateFile(path, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	data := AllocBlocks(10, 128)
	fillPattern(data, 13)
	if err := WriteBlocks(d, 20, data); err != nil {
		t.Fatal(err)
	}
	// Mixed runs: [20,21,22], [40], [25,26].
	idx := []uint64{20, 21, 22, 40, 25, 26}
	bufs := AllocBlocks(len(idx), 128)
	if err := ReadBlocksAt(d, idx, bufs); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 128)
	for i, x := range idx {
		if err := d.ReadBlock(x, one); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, bufs[i]) {
			t.Fatalf("coalesced read %d (block %d) diverges", i, x)
		}
	}
	// Scattered write through run coalescing, re-read per block.
	fillPattern(bufs, 91)
	if err := WriteBlocksAt(d, idx, bufs); err != nil {
		t.Fatal(err)
	}
	for i, x := range idx {
		if err := d.ReadBlock(x, one); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, bufs[i]) {
			t.Fatalf("coalesced write %d (block %d) diverges", i, x)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestSimBatchChargesOneSeek verifies a contiguous batch costs one
// positioning plus n transfers on the disk model.
func TestSimBatchChargesOneSeek(t *testing.T) {
	const bs, n = 512, 1024
	disk := diskmodel.MustNew(diskmodel.Params2004(n, bs))
	s := NewSim(NewMem(bs, n), disk)

	bufs := AllocBlocks(64, bs)
	if err := ReadBlocks(s, 512, bufs); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	if st.Accesses != 64 {
		t.Fatalf("accesses = %d, want 64", st.Accesses)
	}
	if st.Sequential != 63 {
		t.Fatalf("sequential = %d, want 63 (one seek to start)", st.Sequential)
	}
	wantTransfer := 64 * disk.Params().TransferTime()
	if st.TransferTime != wantTransfer {
		t.Fatalf("transfer time %v, want %v", st.TransferTime, wantTransfer)
	}
}
