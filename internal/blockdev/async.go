package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"steghide/internal/obs"
)

// Async submit/complete plane. Synchronous Device calls alternate CPU
// with I/O: the caller seals a block, then sits idle while the write
// lands, then seals the next. The Async ring decouples the two — the
// caller submits operations tagged for later completion and keeps
// computing while ring workers drive the device — the io_uring shape,
// built from goroutines.
//
// How "native" the overlap is depends on the wrapped device:
//
//   - File: positional pread/pwrite are independent syscalls, so ring
//     workers genuinely overlap in the kernel's I/O queue.
//   - wire.RemoteDevice on a v2 connection: each in-flight op is an
//     outstanding request ID on the one connection — the ring drives
//     the mux's existing pipelining, turning submission depth directly
//     into wire depth.
//   - Memory-speed devices (Mem, Sim, …): pure emulation; ops complete
//     at memcpy speed and the ring only buys the submit/complete
//     calling convention.
//
// Ordering: a ring with Workers()==1 executes operations strictly in
// submission order (one FIFO worker), which is what makes it usable on
// an *observed* device — the trace and the on-disk write order are
// exactly what a serial caller would have produced, while the
// submitter's CPU work overlaps the queue. This is the mode the update
// scheduler uses, because Definition 1's regression oracle compares
// the observable stream bit for bit. Rings with more workers complete
// out of order and must stay off tap-audited paths.
//
// Backpressure: Submit blocks once queue-capacity operations are
// waiting to execute; the caller can never run unboundedly ahead of
// the device. Completions, by contrast, accumulate without bound until
// reaped, so a caller may submit an entire batch before its first
// Complete — workers never stall on an unreaped completion.
type Async struct {
	dev     Device
	workers int

	ops chan asyncOp

	mu        sync.Mutex
	cond      *sync.Cond
	completed []Completion

	nextTag   atomic.Uint64
	inflight  atomic.Int64
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Observability hooks, nil until Instrument. Rings are often
	// ephemeral (one per scheduler burst), so they report into
	// caller-owned series rather than registering their own.
	submits   *obs.Counter
	completes *obs.Counter
	depth     *obs.Gauge
}

// Instrument attaches submit/complete counters and a queue-depth
// gauge, typically shared across many short-lived rings. Install
// before the first Submit; nil hooks stay silent. Only op counts and
// queue depth are reported — block addresses never leave the ring.
func (a *Async) Instrument(submits, completes *obs.Counter, depth *obs.Gauge) {
	a.submits = submits
	a.completes = completes
	a.depth = depth
}

// AsyncOp is one asynchronous block transfer: a single block (Bufs nil) or
// a scattered batch (Bufs set, paired with Idx exactly like
// ReadBlocksAt/WriteBlocksAt). The buffers belong to the ring from
// Submit until the op's Completion is returned.
type AsyncOp struct {
	// Write selects the transfer direction.
	Write bool
	// Block and Buf describe a single-block op (used when Bufs is nil).
	Block uint64
	Buf   []byte
	// Idx and Bufs describe a scattered batch op.
	Idx  []uint64
	Bufs [][]byte
}

// Completion reports one finished op.
type Completion struct {
	// Tag is the value Submit returned for the op.
	Tag uint64
	// Err is the device error, or nil.
	Err error
}

type asyncOp struct {
	tag uint64
	op  AsyncOp
}

// AsyncDevice is the submit/complete view of a device. *Async is the
// one implementation; the interface is what schedulers and pipelines
// program against.
type AsyncDevice interface {
	Device
	// Submit enqueues op and returns its tag, blocking for
	// backpressure when the ring is full.
	Submit(op AsyncOp) uint64
	// Complete blocks until an op finishes and returns its tag and
	// error. With one worker, completions arrive in submission order.
	Complete() (uint64, error)
}

// ErrAsyncClosed reports use of a closed ring.
var ErrAsyncClosed = errors.New("blockdev: async ring closed")

// NewAsync builds a submit/complete ring over dev: `workers` goroutines
// drain a queue of `queue` pending ops (workers <= 0 and queue <= 0
// select 1 and 2×workers). workers == 1 gives the deterministic FIFO
// ring; more workers trade ordering for overlap on devices with real
// parallelism. The wrapped device's own methods must be safe for
// concurrent use (every Device in this package is).
func NewAsync(dev Device, workers, queue int) *Async {
	if workers <= 0 {
		workers = 1
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	a := &Async{
		dev:     dev,
		workers: workers,
		ops:     make(chan asyncOp, queue),
	}
	a.cond = sync.NewCond(&a.mu)
	for i := 0; i < workers; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a
}

func (a *Async) worker() {
	defer a.wg.Done()
	for pending := range a.ops {
		var err error
		op := pending.op
		switch {
		case op.Bufs != nil && op.Write:
			err = WriteBlocksAt(a.dev, op.Idx, op.Bufs)
		case op.Bufs != nil:
			err = ReadBlocksAt(a.dev, op.Idx, op.Bufs)
		case op.Write:
			err = a.dev.WriteBlock(op.Block, op.Buf)
		default:
			err = a.dev.ReadBlock(op.Block, op.Buf)
		}
		a.mu.Lock()
		a.completed = append(a.completed, Completion{Tag: pending.tag, Err: err})
		a.mu.Unlock()
		a.cond.Signal()
	}
}

// Workers returns the ring's worker count (1 means FIFO-ordered).
func (a *Async) Workers() int { return a.workers }

// Submit implements AsyncDevice. Tags count up from 1 in submission
// order. Submitting to a closed ring panics (like sending on a closed
// channel — a caller bug, not a runtime condition).
func (a *Async) Submit(op AsyncOp) uint64 {
	tag := a.nextTag.Add(1)
	a.inflight.Add(1)
	if a.submits != nil {
		a.submits.Inc()
		a.depth.Inc()
	}
	a.ops <- asyncOp{tag: tag, op: op}
	return tag
}

// Complete implements AsyncDevice.
func (a *Async) Complete() (uint64, error) {
	a.mu.Lock()
	for len(a.completed) == 0 {
		a.cond.Wait()
	}
	c := a.completed[0]
	a.completed = a.completed[1:]
	a.mu.Unlock()
	a.inflight.Add(-1)
	if a.completes != nil {
		a.completes.Inc()
		a.depth.Dec()
	}
	return c.Tag, c.Err
}

// Drain completes every outstanding op and returns the first error.
// Intended for the submitting goroutine once it has stopped
// submitting.
func (a *Async) Drain() error {
	var first error
	for a.inflight.Load() > 0 {
		if _, err := a.Complete(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BlockSize implements Device.
func (a *Async) BlockSize() int { return a.dev.BlockSize() }

// NumBlocks implements Device.
func (a *Async) NumBlocks() uint64 { return a.dev.NumBlocks() }

// ReadBlock implements Device — the synchronous path stays available
// and runs inline, not through the ring.
func (a *Async) ReadBlock(i uint64, buf []byte) error { return a.dev.ReadBlock(i, buf) }

// WriteBlock implements Device.
func (a *Async) WriteBlock(i uint64, data []byte) error { return a.dev.WriteBlock(i, data) }

// Close shuts the ring down after draining outstanding ops. It does
// not close the wrapped device (the ring is a view, like SubDevice).
func (a *Async) Close() error {
	err := a.Drain()
	a.closeOnce.Do(func() {
		close(a.ops)
		a.wg.Wait()
	})
	return err
}

// AsAsync returns d's submit/complete view: d itself when it already
// is one, otherwise a fresh ring of the given geometry.
func AsAsync(d Device, workers, queue int) AsyncDevice {
	if ad, ok := d.(AsyncDevice); ok {
		return ad
	}
	return NewAsync(d, workers, queue)
}

// String aids debugging.
func (a *Async) String() string {
	return fmt.Sprintf("async(workers=%d, inflight=%d)", a.workers, a.inflight.Load())
}
