// Package blockdev abstracts the raw storage of the system model
// (§3.2): a shared volume of fixed-size blocks that the trusted agent
// reads and writes, and that attackers can observe.
//
// Implementations:
//
//   - Mem: an in-memory volume, the workhorse for tests and simulation.
//   - File: a file-backed volume using positional I/O.
//   - Sim: wraps any device and charges simulated 2004-era disk time
//     on a virtual clock (see internal/diskmodel).
//   - Traced: wraps any device and publishes every access to a Tracer —
//     this is the attacker's observation point for traffic analysis, and
//     the probe used by the experiment harness for I/O accounting.
//   - Gated: wraps any device so a TurnGate serializes concurrent
//     workers' I/Os deterministically.
package blockdev

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"steghide/internal/diskmodel"
)

// Device is a fixed-geometry block store. ReadBlock and WriteBlock
// must be safe for concurrent use by multiple goroutines.
type Device interface {
	// BlockSize returns the size of every block in bytes.
	BlockSize() int
	// NumBlocks returns the number of addressable blocks.
	NumBlocks() uint64
	// ReadBlock fills buf (len == BlockSize) with block i.
	ReadBlock(i uint64, buf []byte) error
	// WriteBlock stores data (len == BlockSize) as block i.
	WriteBlock(i uint64, data []byte) error
	// Close releases underlying resources.
	Close() error
}

// ErrOutOfRange reports a block index beyond the device.
var ErrOutOfRange = errors.New("blockdev: block index out of range")

// ErrBufSize reports a buffer whose length is not exactly one block.
var ErrBufSize = errors.New("blockdev: buffer length != block size")

func checkArgs(d Device, i uint64, buf []byte) error {
	if i >= d.NumBlocks() {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, d.NumBlocks())
	}
	if len(buf) != d.BlockSize() {
		return fmt.Errorf("%w: %d != %d", ErrBufSize, len(buf), d.BlockSize())
	}
	return nil
}

// Mem is an in-memory device backed by a single slab.
type Mem struct {
	mu        sync.RWMutex
	slab      []byte
	blockSize int
	numBlocks uint64
}

// NewMem allocates an in-memory device of n blocks, zero-filled.
func NewMem(blockSize int, n uint64) *Mem {
	if blockSize <= 0 || n == 0 {
		panic(fmt.Sprintf("blockdev: NewMem(%d, %d)", blockSize, n))
	}
	return &Mem{
		slab:      make([]byte, uint64(blockSize)*n),
		blockSize: blockSize,
		numBlocks: n,
	}
}

// BlockSize implements Device.
func (m *Mem) BlockSize() int { return m.blockSize }

// NumBlocks implements Device.
func (m *Mem) NumBlocks() uint64 { return m.numBlocks }

// ReadBlock implements Device.
func (m *Mem) ReadBlock(i uint64, buf []byte) error {
	if err := checkArgs(m, i, buf); err != nil {
		return err
	}
	off := i * uint64(m.blockSize)
	m.mu.RLock()
	copy(buf, m.slab[off:off+uint64(m.blockSize)])
	m.mu.RUnlock()
	return nil
}

// WriteBlock implements Device.
func (m *Mem) WriteBlock(i uint64, data []byte) error {
	if err := checkArgs(m, i, data); err != nil {
		return err
	}
	off := i * uint64(m.blockSize)
	m.mu.Lock()
	copy(m.slab[off:off+uint64(m.blockSize)], data)
	m.mu.Unlock()
	return nil
}

// Close implements Device. It is a no-op for Mem.
func (m *Mem) Close() error { return nil }

// Snapshot copies the entire volume; this is the update-analysis
// attacker's primitive (§3.1: "compare consecutive snapshots").
func (m *Mem) Snapshot() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.slab))
	copy(out, m.slab)
	return out
}

// File is a device backed by an operating-system file, using
// positional reads and writes so concurrent access needs no seeking
// state.
type File struct {
	f         *os.File
	blockSize int
	numBlocks uint64
	scratch   sync.Pool // *[]byte slabs for batched transfers
}

// CreateFile creates (or truncates) a file-backed device of n blocks.
func CreateFile(path string, blockSize int, n uint64) (*File, error) {
	if blockSize <= 0 || n == 0 {
		return nil, fmt.Errorf("blockdev: CreateFile(%d, %d)", blockSize, n)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("blockdev: %w", err)
	}
	if err := f.Truncate(int64(blockSize) * int64(n)); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: truncate: %w", err)
	}
	return &File{f: f, blockSize: blockSize, numBlocks: n}, nil
}

// OpenFile opens an existing file-backed device, inferring the block
// count from the file size.
func OpenFile(path string, blockSize int) (*File, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockdev: OpenFile block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("blockdev: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: stat: %w", err)
	}
	if st.Size()%int64(blockSize) != 0 || st.Size() == 0 {
		f.Close()
		return nil, fmt.Errorf("blockdev: file size %d not a positive multiple of block size %d", st.Size(), blockSize)
	}
	return &File{f: f, blockSize: blockSize, numBlocks: uint64(st.Size() / int64(blockSize))}, nil
}

// BlockSize implements Device.
func (d *File) BlockSize() int { return d.blockSize }

// NumBlocks implements Device.
func (d *File) NumBlocks() uint64 { return d.numBlocks }

// ReadBlock implements Device.
func (d *File) ReadBlock(i uint64, buf []byte) error {
	if err := checkArgs(d, i, buf); err != nil {
		return err
	}
	if _, err := d.f.ReadAt(buf, int64(i)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("blockdev: read block %d: %w", i, err)
	}
	return nil
}

// WriteBlock implements Device.
func (d *File) WriteBlock(i uint64, data []byte) error {
	if err := checkArgs(d, i, data); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(data, int64(i)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("blockdev: write block %d: %w", i, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (d *File) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *File) Close() error { return d.f.Close() }

// Sim wraps a device and charges simulated disk time for every access.
type Sim struct {
	Device
	disk *diskmodel.Disk
}

// NewSim wraps base so each access advances disk's virtual clock.
func NewSim(base Device, disk *diskmodel.Disk) *Sim {
	if disk.Params().NumBlocks != base.NumBlocks() {
		panic("blockdev: disk model geometry does not match device")
	}
	return &Sim{Device: base, disk: disk}
}

// Disk exposes the underlying disk model (clock, stats).
func (s *Sim) Disk() *diskmodel.Disk { return s.disk }

// ReadBlock implements Device, charging simulated time.
func (s *Sim) ReadBlock(i uint64, buf []byte) error {
	if err := s.Device.ReadBlock(i, buf); err != nil {
		return err
	}
	s.disk.Access(i, false)
	return nil
}

// WriteBlock implements Device, charging simulated time.
func (s *Sim) WriteBlock(i uint64, data []byte) error {
	if err := s.Device.WriteBlock(i, data); err != nil {
		return err
	}
	s.disk.Access(i, true)
	return nil
}

// SubDevice exposes a contiguous window [start, start+count) of a
// parent device as a device of its own. It is how one raw volume is
// split into a StegFS partition and an oblivious-storage partition
// (§5: "we carve out a partition on the raw storage").
type SubDevice struct {
	parent Device
	start  uint64
	count  uint64
}

// NewSub returns a view of count blocks of parent starting at start.
func NewSub(parent Device, start, count uint64) (*SubDevice, error) {
	if count == 0 || start+count > parent.NumBlocks() || start+count < start {
		return nil, fmt.Errorf("blockdev: sub-device [%d,%d) exceeds parent of %d blocks",
			start, start+count, parent.NumBlocks())
	}
	return &SubDevice{parent: parent, start: start, count: count}, nil
}

// BlockSize implements Device.
func (s *SubDevice) BlockSize() int { return s.parent.BlockSize() }

// NumBlocks implements Device.
func (s *SubDevice) NumBlocks() uint64 { return s.count }

// ReadBlock implements Device.
func (s *SubDevice) ReadBlock(i uint64, buf []byte) error {
	if i >= s.count {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, s.count)
	}
	return s.parent.ReadBlock(s.start+i, buf)
}

// WriteBlock implements Device.
func (s *SubDevice) WriteBlock(i uint64, data []byte) error {
	if i >= s.count {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, s.count)
	}
	return s.parent.WriteBlock(s.start+i, data)
}

// Close implements Device; it does not close the parent.
func (s *SubDevice) Close() error { return nil }

// Gated wraps a device so that every I/O of worker `id` passes through
// a TurnGate, giving deterministic round-robin interleaving across
// concurrent workers.
type Gated struct {
	Device
	gate *diskmodel.TurnGate
	id   int
}

// NewGated binds worker id's view of base to gate.
func NewGated(base Device, gate *diskmodel.TurnGate, id int) *Gated {
	return &Gated{Device: base, gate: gate, id: id}
}

// ReadBlock implements Device.
func (g *Gated) ReadBlock(i uint64, buf []byte) error {
	var err error
	g.gate.Do(g.id, func() { err = g.Device.ReadBlock(i, buf) })
	return err
}

// WriteBlock implements Device.
func (g *Gated) WriteBlock(i uint64, data []byte) error {
	var err error
	g.gate.Do(g.id, func() { err = g.Device.WriteBlock(i, data) })
	return err
}
