package blockdev

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"steghide/internal/diskmodel"
	"steghide/internal/prng"
)

// deviceContract exercises the Device interface invariants common to
// all implementations.
func deviceContract(t *testing.T, d Device) {
	t.Helper()
	bs := d.BlockSize()
	n := d.NumBlocks()
	rng := prng.NewFromUint64(1)

	// Write then read several blocks, including the boundaries.
	idxs := []uint64{0, 1, n / 2, n - 1}
	written := map[uint64][]byte{}
	for _, i := range idxs {
		data := rng.Bytes(bs)
		if err := d.WriteBlock(i, data); err != nil {
			t.Fatalf("WriteBlock(%d): %v", i, err)
		}
		written[i] = data
	}
	buf := make([]byte, bs)
	for _, i := range idxs {
		if err := d.ReadBlock(i, buf); err != nil {
			t.Fatalf("ReadBlock(%d): %v", i, err)
		}
		if !bytes.Equal(buf, written[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}

	// Out-of-range and wrong-size arguments must fail cleanly.
	if err := d.ReadBlock(n, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read out of range: %v", err)
	}
	if err := d.WriteBlock(n, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write out of range: %v", err)
	}
	if err := d.ReadBlock(0, buf[:bs-1]); !errors.Is(err, ErrBufSize) {
		t.Fatalf("short read buf: %v", err)
	}
	if err := d.WriteBlock(0, append(buf, 0)); !errors.Is(err, ErrBufSize) {
		t.Fatalf("long write buf: %v", err)
	}
}

func TestMemContract(t *testing.T) {
	deviceContract(t, NewMem(512, 64))
}

func TestFileContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	d, err := CreateFile(path, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	deviceContract(t, d)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	d, err := CreateFile(path, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(2)
	want := rng.Bytes(256)
	if err := d.WriteBlock(7, want); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumBlocks() != 16 {
		t.Fatalf("NumBlocks = %d, want 16", re.NumBlocks())
	}
	got := make([]byte, 256)
	if err := re.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across reopen")
	}
}

func TestOpenFileRejectsBadGeometry(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing"), 512); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(dir, "odd.img")
	d, err := CreateFile(path, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenFile(path, 512); err == nil {
		t.Fatal("misaligned size accepted")
	}
	if _, err := OpenFile(path, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := CreateFile(filepath.Join(dir, "zero"), 0, 4); err == nil {
		t.Fatal("CreateFile with zero block size accepted")
	}
}

func TestMemSnapshotIsolated(t *testing.T) {
	m := NewMem(64, 4)
	rng := prng.NewFromUint64(3)
	m.WriteBlock(1, rng.Bytes(64))
	snap := m.Snapshot()
	m.WriteBlock(1, rng.Bytes(64))
	snap2 := m.Snapshot()
	if bytes.Equal(snap, snap2) {
		t.Fatal("snapshots should differ after write")
	}
	if len(snap) != 64*4 {
		t.Fatalf("snapshot length %d", len(snap))
	}
}

func TestSimChargesTime(t *testing.T) {
	base := NewMem(4096, 1024)
	disk := diskmodel.MustNew(diskmodel.Params2004(1024, 4096))
	sim := NewSim(base, disk)
	buf := make([]byte, 4096)
	if err := sim.ReadBlock(500, buf); err != nil {
		t.Fatal(err)
	}
	if sim.Disk().Now() == 0 {
		t.Fatal("read charged no time")
	}
	before := sim.Disk().Now()
	if err := sim.WriteBlock(501, buf); err != nil {
		t.Fatal(err)
	}
	if sim.Disk().Now() <= before {
		t.Fatal("write charged no time")
	}
	st := sim.Disk().Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Failed accesses must not advance the clock.
	begin := sim.Disk().Now()
	if err := sim.ReadBlock(99999, buf); err == nil {
		t.Fatal("expected error")
	}
	if sim.Disk().Now() != begin {
		t.Fatal("failed access charged time")
	}
}

func TestNewSimGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSim(NewMem(4096, 10), diskmodel.MustNew(diskmodel.Params2004(20, 4096)))
}

func TestTracedPublishesEvents(t *testing.T) {
	var col Collector
	d := NewTraced(NewMem(128, 8), &col)
	buf := make([]byte, 128)
	d.WriteBlock(3, buf)
	d.ReadBlock(3, buf)
	d.ReadBlock(5, buf)
	events := col.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	want := []Event{{Seq: 1, Op: OpWrite, Block: 3}, {Seq: 2, Op: OpRead, Block: 3}, {Seq: 3, Op: OpRead, Block: 5}}
	for i, e := range events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	// Failed accesses are not observable I/O and must not be traced.
	if err := d.ReadBlock(100, buf); err == nil {
		t.Fatal("expected error")
	}
	if col.Len() != 3 {
		t.Fatal("failed access was traced")
	}
	col.Reset()
	if col.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterAndMultiTracer(t *testing.T) {
	var cnt Counter
	var col Collector
	d := NewTraced(NewMem(128, 8), MultiTracer{&cnt, &col})
	buf := make([]byte, 128)
	for i := 0; i < 5; i++ {
		d.ReadBlock(uint64(i), buf)
	}
	d.WriteBlock(0, buf)
	if cnt.Reads() != 5 || cnt.Writes() != 1 || cnt.Total() != 6 {
		t.Fatalf("counter %d/%d", cnt.Reads(), cnt.Writes())
	}
	if col.Len() != 6 {
		t.Fatalf("collector %d", col.Len())
	}
	cnt.Reset()
	if cnt.Total() != 0 {
		t.Fatal("counter reset failed")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String broken")
	}
}

func TestGatedDeterministicInterleaving(t *testing.T) {
	// Two workers write distinct blocks through a gate; the trace must
	// alternate exactly.
	var col Collector
	base := NewTraced(NewMem(64, 100), &col)
	gate := diskmodel.NewTurnGate(2)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dev := NewGated(base, gate, id)
			buf := make([]byte, 64)
			for i := 0; i < 20; i++ {
				if err := dev.WriteBlock(uint64(id*50+i), buf); err != nil {
					t.Error(err)
					break
				}
			}
			gate.Leave(id)
		}(id)
	}
	wg.Wait()
	events := col.Events()
	if len(events) != 40 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		wantWorker := uint64(i % 2)
		if e.Block/50 != wantWorker {
			t.Fatalf("event %d touched block %d; interleaving not strict", i, e.Block)
		}
	}
}

func TestMemConcurrentAccess(t *testing.T) {
	// Race-detector workout: concurrent disjoint writers + readers.
	m := NewMem(64, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := prng.NewFromUint64(uint64(w))
			buf := make([]byte, 64)
			for i := 0; i < 200; i++ {
				idx := uint64(w*32 + i%32)
				if i%2 == 0 {
					m.WriteBlock(idx, rng.Bytes(64))
				} else {
					m.ReadBlock(idx, buf)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestQuickMemRoundTrip(t *testing.T) {
	m := NewMem(32, 128)
	f := func(seed uint64, idxRaw uint16) bool {
		idx := uint64(idxRaw) % m.NumBlocks()
		data := prng.NewFromUint64(seed).Bytes(32)
		if err := m.WriteBlock(idx, data); err != nil {
			return false
		}
		got := make([]byte, 32)
		if err := m.ReadBlock(idx, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
