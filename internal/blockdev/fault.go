package blockdev

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDevice returns when a fault fires.
var ErrInjected = errors.New("blockdev: injected fault")

// FaultDevice wraps a device and fails operations on demand — the
// failure-injection harness used to verify that every layer above
// propagates storage errors instead of panicking or corrupting its
// in-memory state.
type FaultDevice struct {
	Device
	mu sync.Mutex
	// failReadsAfter / failWritesAfter count down on each operation;
	// when a counter is zero the operation fails (and keeps failing).
	// Negative counters never fire.
	readsLeft  int64
	writesLeft int64
}

// NewFault wraps base with no faults armed.
func NewFault(base Device) *FaultDevice {
	return &FaultDevice{Device: base, readsLeft: -1, writesLeft: -1}
}

// FailReadsAfter arms the read fault: the next n reads succeed, every
// read after that fails. n = 0 fails immediately.
func (f *FaultDevice) FailReadsAfter(n int64) {
	f.mu.Lock()
	f.readsLeft = n
	f.mu.Unlock()
}

// FailWritesAfter arms the write fault analogously.
func (f *FaultDevice) FailWritesAfter(n int64) {
	f.mu.Lock()
	f.writesLeft = n
	f.mu.Unlock()
}

// Heal disarms all faults.
func (f *FaultDevice) Heal() {
	f.mu.Lock()
	f.readsLeft = -1
	f.writesLeft = -1
	f.mu.Unlock()
}

func (f *FaultDevice) tick(counter *int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if *counter < 0 {
		return false
	}
	if *counter == 0 {
		return true
	}
	*counter--
	return false
}

// ReadBlock implements Device.
func (f *FaultDevice) ReadBlock(i uint64, buf []byte) error {
	if f.tick(&f.readsLeft) {
		return ErrInjected
	}
	return f.Device.ReadBlock(i, buf)
}

// WriteBlock implements Device.
func (f *FaultDevice) WriteBlock(i uint64, data []byte) error {
	if f.tick(&f.writesLeft) {
		return ErrInjected
	}
	return f.Device.WriteBlock(i, data)
}
