package blockdev

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDevice returns when a fault fires.
var ErrInjected = errors.New("blockdev: injected fault")

// ErrPowerCut is the error every operation returns once a power-cut
// fault has fired: the host is "down" until Heal simulates the reboot.
var ErrPowerCut = errors.New("blockdev: power cut")

// FaultDevice wraps a device and fails operations on demand — the
// failure-injection harness used to verify that every layer above
// propagates storage errors instead of panicking or corrupting its
// in-memory state, and (power-cut mode) that mount-time recovery can
// repair a volume cut off at any write whatsoever.
type FaultDevice struct {
	Device
	mu sync.Mutex
	// failReadsAfter / failWritesAfter count down on each operation;
	// when a counter is zero the operation fails (and keeps failing).
	// Negative counters never fire.
	readsLeft  int64
	writesLeft int64

	// Power-cut state: after cutAfter successful writes the device
	// dies — the fatal write optionally stores a torn prefix first,
	// and every operation after it fails with ErrPowerCut.
	cutAfter int64 // -1: disarmed
	tornFrac float64
	dead     bool
	writes   int64 // successful block-writes since construction
	cutBlock uint64
	cutValid bool
}

// NewFault wraps base with no faults armed.
func NewFault(base Device) *FaultDevice {
	return &FaultDevice{Device: base, readsLeft: -1, writesLeft: -1, cutAfter: -1}
}

// PowerCutAfterWrites arms the power-cut fault: the next k block-level
// writes succeed, then the device dies — every later operation (reads
// included) fails with ErrPowerCut until Heal "reboots" the host.
// Batched operations transfer per block, so the cut lands mid-batch
// with strict prefix semantics: blocks before the cut are durable,
// none after. k counts from now, not from construction.
func (f *FaultDevice) PowerCutAfterWrites(k int64) {
	f.mu.Lock()
	f.cutAfter = f.writes + k
	f.tornFrac = 0
	f.dead = false
	f.mu.Unlock()
}

// PowerCutTorn arms the power-cut fault like PowerCutAfterWrites, but
// the fatal (k+1)-th write tears: a prefix of frac of the new block
// reaches the medium before the cut, splicing new bytes over old —
// the classic torn sector a non-atomic disk leaves behind.
func (f *FaultDevice) PowerCutTorn(k int64, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f.mu.Lock()
	f.cutAfter = f.writes + k
	f.tornFrac = frac
	f.dead = false
	f.mu.Unlock()
}

// Writes returns how many block-level writes have succeeded — the
// count crash-matrix tests sweep their cut index over.
func (f *FaultDevice) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// CutBlock returns the block the fatal power-cut write targeted —
// the only block a torn cut can have corrupted.
func (f *FaultDevice) CutBlock() (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutBlock, f.cutValid
}

// alive reports whether the device still works, failing reads that
// arrive after the cut.
func (f *FaultDevice) alive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.dead
}

// tickWrite accounts one write attempt on block i: it reports whether
// the write may proceed, and on the fatal write returns the number of
// bytes of the new block to splice in before dying.
func (f *FaultDevice) tickWrite(i uint64) (proceed bool, torn int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return false, 0, ErrPowerCut
	}
	if f.cutAfter >= 0 && f.writes >= f.cutAfter {
		f.dead = true
		f.cutBlock, f.cutValid = i, true
		return false, int(f.tornFrac * float64(f.BlockSize())), ErrPowerCut
	}
	if f.writesLeft == 0 {
		return false, 0, ErrInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	f.writes++
	return true, 0, nil
}

// FailReadsAfter arms the read fault: the next n reads succeed, every
// read after that fails. n = 0 fails immediately.
func (f *FaultDevice) FailReadsAfter(n int64) {
	f.mu.Lock()
	f.readsLeft = n
	f.mu.Unlock()
}

// FailWritesAfter arms the write fault analogously.
func (f *FaultDevice) FailWritesAfter(n int64) {
	f.mu.Lock()
	f.writesLeft = n
	f.mu.Unlock()
}

// Heal disarms all faults; for a power cut it is the reboot that
// brings the medium back with whatever the cut left on it.
func (f *FaultDevice) Heal() {
	f.mu.Lock()
	f.readsLeft = -1
	f.writesLeft = -1
	f.cutAfter = -1
	f.tornFrac = 0
	f.dead = false
	f.mu.Unlock()
}

func (f *FaultDevice) tick(counter *int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if *counter < 0 {
		return false
	}
	if *counter == 0 {
		return true
	}
	*counter--
	return false
}

// ReadBlock implements Device.
func (f *FaultDevice) ReadBlock(i uint64, buf []byte) error {
	if !f.alive() {
		return ErrPowerCut
	}
	if f.tick(&f.readsLeft) {
		return ErrInjected
	}
	return f.Device.ReadBlock(i, buf)
}

// WriteBlock implements Device.
func (f *FaultDevice) WriteBlock(i uint64, data []byte) error {
	proceed, torn, err := f.tickWrite(i)
	if !proceed {
		if torn > 0 {
			// The fatal write tears: a prefix of the new block lands
			// over the old content before the host dies.
			old := make([]byte, f.BlockSize())
			if e := f.Device.ReadBlock(i, old); e == nil {
				copy(old[:torn], data[:torn])
				_ = f.Device.WriteBlock(i, old)
			}
		}
		return err
	}
	return f.Device.WriteBlock(i, data)
}

// Batched operations fault per block, so an armed counter fires in
// the middle of a batch and leaves a strict prefix: every block
// before the failing one transferred, none after. (This holds because
// FaultDevice transfers sequentially; see the batch-plane note about
// concurrent composites like Striped.) That partial-batch state is
// exactly the scenario the layers above must survive, so the fault
// device deliberately forgoes the inner device's fast path.

// ReadBlocks implements BatchDevice.
func (f *FaultDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(f.Device, start, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := f.ReadBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BatchDevice.
func (f *FaultDevice) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(f.Device, start, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := f.WriteBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocksAt implements BatchDevice.
func (f *FaultDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(f.Device, idx, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := f.ReadBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksAt implements BatchDevice.
func (f *FaultDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(f.Device, idx, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := f.WriteBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}
