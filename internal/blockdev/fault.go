package blockdev

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDevice returns when a fault fires.
var ErrInjected = errors.New("blockdev: injected fault")

// FaultDevice wraps a device and fails operations on demand — the
// failure-injection harness used to verify that every layer above
// propagates storage errors instead of panicking or corrupting its
// in-memory state.
type FaultDevice struct {
	Device
	mu sync.Mutex
	// failReadsAfter / failWritesAfter count down on each operation;
	// when a counter is zero the operation fails (and keeps failing).
	// Negative counters never fire.
	readsLeft  int64
	writesLeft int64
}

// NewFault wraps base with no faults armed.
func NewFault(base Device) *FaultDevice {
	return &FaultDevice{Device: base, readsLeft: -1, writesLeft: -1}
}

// FailReadsAfter arms the read fault: the next n reads succeed, every
// read after that fails. n = 0 fails immediately.
func (f *FaultDevice) FailReadsAfter(n int64) {
	f.mu.Lock()
	f.readsLeft = n
	f.mu.Unlock()
}

// FailWritesAfter arms the write fault analogously.
func (f *FaultDevice) FailWritesAfter(n int64) {
	f.mu.Lock()
	f.writesLeft = n
	f.mu.Unlock()
}

// Heal disarms all faults.
func (f *FaultDevice) Heal() {
	f.mu.Lock()
	f.readsLeft = -1
	f.writesLeft = -1
	f.mu.Unlock()
}

func (f *FaultDevice) tick(counter *int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if *counter < 0 {
		return false
	}
	if *counter == 0 {
		return true
	}
	*counter--
	return false
}

// ReadBlock implements Device.
func (f *FaultDevice) ReadBlock(i uint64, buf []byte) error {
	if f.tick(&f.readsLeft) {
		return ErrInjected
	}
	return f.Device.ReadBlock(i, buf)
}

// WriteBlock implements Device.
func (f *FaultDevice) WriteBlock(i uint64, data []byte) error {
	if f.tick(&f.writesLeft) {
		return ErrInjected
	}
	return f.Device.WriteBlock(i, data)
}

// Batched operations fault per block, so an armed counter fires in
// the middle of a batch and leaves a strict prefix: every block
// before the failing one transferred, none after. (This holds because
// FaultDevice transfers sequentially; see the batch-plane note about
// concurrent composites like Striped.) That partial-batch state is
// exactly the scenario the layers above must survive, so the fault
// device deliberately forgoes the inner device's fast path.

// ReadBlocks implements BatchDevice.
func (f *FaultDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(f.Device, start, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := f.ReadBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BatchDevice.
func (f *FaultDevice) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(f.Device, start, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := f.WriteBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocksAt implements BatchDevice.
func (f *FaultDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(f.Device, idx, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := f.ReadBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksAt implements BatchDevice.
func (f *FaultDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(f.Device, idx, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := f.WriteBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}
