package blockdev

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/prng"
)

func TestStripedContract(t *testing.T) {
	members := []Device{NewMem(128, 32), NewMem(128, 32), NewMem(128, 40)}
	s, err := NewStriped(members...)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity: 3 × min(32,32,40) = 96.
	if s.NumBlocks() != 96 || s.BlockSize() != 128 {
		t.Fatalf("geometry %d/%d", s.NumBlocks(), s.BlockSize())
	}
	deviceContract(t, s)
}

func TestStripedValidation(t *testing.T) {
	if _, err := NewStriped(); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewStriped(NewMem(128, 8), NewMem(256, 8)); err == nil {
		t.Fatal("mismatched block sizes accepted")
	}
}

func TestStripedDistribution(t *testing.T) {
	// Uniform volume addresses must land uniformly on members.
	a, b, c := NewMem(64, 100), NewMem(64, 100), NewMem(64, 100)
	var ca, cb, cc Counter
	s, err := NewStriped(NewTraced(a, &ca), NewTraced(b, &cb), NewTraced(c, &cc))
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(1)
	buf := make([]byte, 64)
	const ops = 3000
	for i := 0; i < ops; i++ {
		if err := s.ReadBlock(rng.Uint64n(s.NumBlocks()), buf); err != nil {
			t.Fatal(err)
		}
	}
	for name, cnt := range map[string]*Counter{"a": &ca, "b": &cb, "c": &cc} {
		share := float64(cnt.Reads()) / ops
		if share < 0.28 || share > 0.39 {
			t.Fatalf("member %s saw %.0f%% of traffic", name, share*100)
		}
	}
}

func TestStripedLocateRoundTrip(t *testing.T) {
	s, err := NewStriped(NewMem(64, 10), NewMem(64, 10))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]uint64]bool{}
	for i := uint64(0); i < s.NumBlocks(); i++ {
		m, local := s.Locate(i)
		key := [2]uint64{uint64(m), local}
		if seen[key] {
			t.Fatalf("block %d collides at member %d local %d", i, m, local)
		}
		seen[key] = true
	}
}

func TestStripedWithVolumeStack(t *testing.T) {
	// A striped volume is a drop-in Device: verify data written via
	// the stripe is readable and actually spread across members.
	members := []Device{NewMem(128, 512), NewMem(128, 512), NewMem(128, 512), NewMem(128, 512)}
	s, err := NewStriped(members...)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewFromUint64(2)
	want := map[uint64][]byte{}
	for i := 0; i < 200; i++ {
		idx := rng.Uint64n(s.NumBlocks())
		data := rng.Bytes(128)
		if err := s.WriteBlock(idx, data); err != nil {
			t.Fatal(err)
		}
		want[idx] = data
	}
	buf := make([]byte, 128)
	for idx, data := range want {
		if err := s.ReadBlock(idx, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("block %d mismatch", idx)
		}
	}
	// Out-of-range still errors.
	if err := s.ReadBlock(s.NumBlocks(), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFastMemberProbe(t *testing.T) {
	mem := NewMem(128, 64)
	sub, err := NewSub(mem, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	fastStripe, err := NewStriped(NewMem(128, 32), sub)
	if err != nil {
		t.Fatal(err)
	}
	if !fastStripe.allFast {
		t.Fatal("all-memory stripe not detected as fast")
	}
	if !fastMember(fastStripe) {
		t.Fatal("nested fast stripe not detected as fast")
	}
	// A member with real I/O latency keeps the concurrent fan-out.
	f, err := CreateFile(t.TempDir()+"/member", 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slowStripe, err := NewStriped(NewMem(128, 32), f)
	if err != nil {
		t.Fatal(err)
	}
	if slowStripe.allFast {
		t.Fatal("file-backed member misclassified as memory-speed")
	}
}
