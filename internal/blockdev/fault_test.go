package blockdev

import (
	"errors"
	"testing"
)

func TestFaultDeviceCountdown(t *testing.T) {
	fd := NewFault(NewMem(64, 8))
	buf := make([]byte, 64)

	// Unarmed: everything works.
	for i := 0; i < 5; i++ {
		if err := fd.WriteBlock(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := fd.ReadBlock(0, buf); err != nil {
			t.Fatal(err)
		}
	}

	// Two reads succeed, the third and later fail.
	fd.FailReadsAfter(2)
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fd.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// Writes unaffected.
	if err := fd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}

	fd.FailWritesAfter(0)
	if err := fd.WriteBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: %v", err)
	}
	fd.Heal()
	if err := fd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestPowerCutAfterWrites(t *testing.T) {
	mem := NewMem(64, 8)
	fd := NewFault(mem)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0x11
	}

	fd.PowerCutAfterWrites(2)
	if err := fd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if got := fd.Writes(); got != 2 {
		t.Fatalf("Writes() = %d, want 2", got)
	}
	// The third write dies, and nothing lands.
	if err := fd.WriteBlock(2, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("fatal write: %v", err)
	}
	// The host is down: reads fail too, and so do later writes.
	if err := fd.ReadBlock(0, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("read after cut: %v", err)
	}
	if err := fd.WriteBlock(3, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}

	// Reboot: the medium holds exactly the pre-cut prefix.
	fd.Heal()
	got := make([]byte, 64)
	if err := fd.ReadBlock(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Fatal("write before the cut did not survive")
	}
	if err := fd.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("write at the cut index leaked through")
	}
}

func TestPowerCutMidBatchPrefix(t *testing.T) {
	mem := NewMem(64, 8)
	fd := NewFault(mem)
	data := AllocBlocks(6, 64)
	for i := range data {
		for k := range data[i] {
			data[i][k] = byte(i + 1)
		}
	}
	fd.PowerCutAfterWrites(3)
	if err := WriteBlocks(fd, 0, data); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("batched write across the cut: %v", err)
	}
	fd.Heal()
	buf := make([]byte, 64)
	for i := uint64(0); i < 6; i++ {
		if err := fd.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
		want := byte(0)
		if i < 3 {
			want = byte(i + 1)
		}
		if buf[0] != want {
			t.Fatalf("block %d holds %#x after mid-batch cut, want %#x", i, buf[0], want)
		}
	}
}

func TestPowerCutTornFinalWrite(t *testing.T) {
	mem := NewMem(64, 8)
	fd := NewFault(mem)
	old := make([]byte, 64)
	for i := range old {
		old[i] = 0xAA
	}
	if err := fd.WriteBlock(0, old); err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, 64)
	for i := range fresh {
		fresh[i] = 0xBB
	}
	fd.PowerCutTorn(0, 0.5)
	if err := fd.WriteBlock(0, fresh); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("torn write: %v", err)
	}
	fd.Heal()
	got := make([]byte, 64)
	if err := fd.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if got[i] != 0xBB {
			t.Fatalf("byte %d = %#x, want torn-in new data", i, got[i])
		}
	}
	for i := 32; i < 64; i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d = %#x, want surviving old data", i, got[i])
		}
	}
}
