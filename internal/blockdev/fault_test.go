package blockdev

import (
	"errors"
	"testing"
)

func TestFaultDeviceCountdown(t *testing.T) {
	fd := NewFault(NewMem(64, 8))
	buf := make([]byte, 64)

	// Unarmed: everything works.
	for i := 0; i < 5; i++ {
		if err := fd.WriteBlock(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := fd.ReadBlock(0, buf); err != nil {
			t.Fatal(err)
		}
	}

	// Two reads succeed, the third and later fail.
	fd.FailReadsAfter(2)
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fd.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// Writes unaffected.
	if err := fd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}

	fd.FailWritesAfter(0)
	if err := fd.WriteBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: %v", err)
	}
	fd.Heal()
	if err := fd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
}
