package blockdev

import (
	"sync"
	"sync/atomic"
)

// Op is the direction of a traced access.
type Op uint8

// Access directions.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Event is one observed access: what an attacker tapping the
// agent⇄storage channel sees (§3.2.2, second attacker group). The
// payload is deliberately absent — it is ciphertext and carries no
// pattern beyond its existence. A batched contiguous access is one
// event covering Count blocks; Count of 0 or 1 is a single block.
type Event struct {
	Seq   uint64
	Op    Op
	Block uint64
	Count uint64
}

// Span returns how many blocks the event covers (at least 1).
func (e Event) Span() uint64 {
	if e.Count < 2 {
		return 1
	}
	return e.Count
}

// ExpandEvents flattens ranged events into one event per block, for
// consumers that analyze per-block address streams. Single-block
// streams are returned unchanged (no copy).
func ExpandEvents(events []Event) []Event {
	total := 0
	for _, e := range events {
		total += int(e.Span())
	}
	if total == len(events) {
		return events
	}
	out := make([]Event, 0, total)
	for _, e := range events {
		n := e.Span()
		for i := uint64(0); i < n; i++ {
			out = append(out, Event{Seq: e.Seq, Op: e.Op, Block: e.Block + i})
		}
	}
	return out
}

// Tracer receives every access on a Traced device.
type Tracer interface {
	Record(Event)
}

// Traced wraps a device and publishes every access to a Tracer.
type Traced struct {
	Device
	tracer Tracer
	seq    atomic.Uint64
}

// NewTraced wraps base; every access is forwarded to tracer.
func NewTraced(base Device, tracer Tracer) *Traced {
	return &Traced{Device: base, tracer: tracer}
}

// ReadBlock implements Device.
func (t *Traced) ReadBlock(i uint64, buf []byte) error {
	if err := t.Device.ReadBlock(i, buf); err != nil {
		return err
	}
	t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpRead, Block: i})
	return nil
}

// WriteBlock implements Device.
func (t *Traced) WriteBlock(i uint64, data []byte) error {
	if err := t.Device.WriteBlock(i, data); err != nil {
		return err
	}
	t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpWrite, Block: i})
	return nil
}

// Collector is a Tracer that retains every event in memory.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Tracer.
func (c *Collector) Record(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.mu.Unlock()
}

// Counter is a Tracer that only counts reads and writes; cheaper than
// Collector for long experiments.
type Counter struct {
	reads  atomic.Uint64
	writes atomic.Uint64
}

// Record implements Tracer.
func (c *Counter) Record(e Event) {
	if e.Op == OpRead {
		c.reads.Add(e.Span())
	} else {
		c.writes.Add(e.Span())
	}
}

// Reads returns the number of read events seen.
func (c *Counter) Reads() uint64 { return c.reads.Load() }

// Writes returns the number of write events seen.
func (c *Counter) Writes() uint64 { return c.writes.Load() }

// Total returns reads + writes.
func (c *Counter) Total() uint64 { return c.Reads() + c.Writes() }

// Reset zeroes the counters.
func (c *Counter) Reset() {
	c.reads.Store(0)
	c.writes.Store(0)
}

// MultiTracer fans one event stream out to several tracers.
type MultiTracer []Tracer

// Record implements Tracer.
func (m MultiTracer) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}
