package blockdev

import "fmt"

// Striped aggregates several devices into one volume, distributing
// blocks round-robin — the data-grid / P2P storage substrate the
// paper's §7 names as future deployment ground ("extend the proposed
// mechanisms to various kinds of networked storage systems"). Block i
// lives on member i mod n at local index i div n, so the uniform
// access patterns the hiding constructions emit spread uniformly
// across nodes, and no single node observes more than 1/n of the
// (already pattern-free) stream.
type Striped struct {
	members   []Device
	blockSize int
	perMember uint64
	// allFast records that every member completes I/O at memory speed,
	// so batch fan-out runs the sub-batches inline instead of paying
	// goroutine scheduling that costs more than the memcpys it hides.
	allFast bool
}

// NewStriped combines the members. All must share a block size; the
// common capacity is n × the smallest member.
func NewStriped(members ...Device) (*Striped, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("blockdev: striped volume needs members")
	}
	bs := members[0].BlockSize()
	per := members[0].NumBlocks()
	allFast := true
	for i, m := range members {
		if m.BlockSize() != bs {
			return nil, fmt.Errorf("blockdev: member %d block size %d != %d", i, m.BlockSize(), bs)
		}
		if m.NumBlocks() < per {
			per = m.NumBlocks()
		}
		allFast = allFast && fastMember(m)
	}
	if per == 0 {
		return nil, fmt.Errorf("blockdev: striped member with zero blocks")
	}
	return &Striped{members: members, blockSize: bs, perMember: per, allFast: allFast}, nil
}

// fastMember reports whether d serves batch I/O at memory speed — no
// syscalls, no network, no simulated latency — so concurrent fan-out
// over it would only add goroutine overhead. Devices with real I/O
// latency (File, RemoteDevice, and anything unknown) report false and
// keep the concurrent fan-out.
func fastMember(d Device) bool {
	switch v := d.(type) {
	case *Mem:
		return true
	case *SubDevice:
		return fastMember(v.parent)
	case *Striped:
		return v.allFast
	default:
		return false
	}
}

// BlockSize implements Device.
func (s *Striped) BlockSize() int { return s.blockSize }

// NumBlocks implements Device.
func (s *Striped) NumBlocks() uint64 { return s.perMember * uint64(len(s.members)) }

// Locate maps a volume block to (member ordinal, local index).
func (s *Striped) Locate(i uint64) (member int, local uint64) {
	n := uint64(len(s.members))
	return int(i % n), i / n
}

// ReadBlock implements Device.
func (s *Striped) ReadBlock(i uint64, buf []byte) error {
	if i >= s.NumBlocks() {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, s.NumBlocks())
	}
	m, local := s.Locate(i)
	return s.members[m].ReadBlock(local, buf)
}

// WriteBlock implements Device.
func (s *Striped) WriteBlock(i uint64, data []byte) error {
	if i >= s.NumBlocks() {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, s.NumBlocks())
	}
	m, local := s.Locate(i)
	return s.members[m].WriteBlock(local, data)
}

// Close implements Device, closing every member (first error wins).
func (s *Striped) Close() error {
	var firstErr error
	for _, m := range s.members {
		if err := m.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
