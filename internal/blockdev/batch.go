package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Batch I/O plane. The constructions of the paper are throughput-bound
// on bulk block movement — §4's relocation and dummy traffic, §5's
// reshuffle (external merge sort) — so every device offers an optional
// multi-block fast path: one lock acquisition on Mem, one positional
// syscall on File, one round trip on wire.RemoteDevice, one
// sequential-pass charge on Sim, one gate turn on Gated. Callers go
// through the package-level helpers ReadBlocks/WriteBlocks (and the
// scattered-index *At variants), which use the fast path when the
// device provides one and fall back to a per-block loop otherwise.
//
// Error semantics: helpers validate the whole batch up front (no I/O
// on a malformed request). On sequential devices (Mem, File, Sub,
// the loop fallback, FaultDevice) a device error mid-batch leaves a
// well-defined prefix — every block before the failing one has been
// transferred, none at or after it. Concurrent composites (Striped
// over members with real I/O latency, and anything built on them) fan
// sub-batches out in parallel, so a failed batch there may have
// transferred an arbitrary subset; each member's own sub-batch is
// still prefix-consistent. A Striped whose members are all
// memory-speed runs its sub-batches inline (see fanOut), in member
// order.

// BatchDevice is implemented by devices with a native multi-block
// fast path. ReadBlocks/WriteBlocks move the contiguous block range
// [start, start+len(bufs)); the *At variants move an arbitrary index
// set (idx[i] pairs with bufs[i]). Like Device's single-block methods,
// all four must be safe for concurrent use.
type BatchDevice interface {
	Device
	ReadBlocks(start uint64, bufs [][]byte) error
	WriteBlocks(start uint64, data [][]byte) error
	ReadBlocksAt(idx []uint64, bufs [][]byte) error
	WriteBlocksAt(idx []uint64, data [][]byte) error
}

// ErrBatchShape reports index and buffer slices of different lengths.
var ErrBatchShape = errors.New("blockdev: index count != buffer count")

// checkBatch validates a contiguous batch against a device.
func checkBatch(d Device, start uint64, bufs [][]byte) error {
	n := uint64(len(bufs))
	if n == 0 {
		return nil
	}
	if start+n > d.NumBlocks() || start+n < start {
		return fmt.Errorf("%w: [%d,%d) beyond %d", ErrOutOfRange, start, start+n, d.NumBlocks())
	}
	bs := d.BlockSize()
	for _, b := range bufs {
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", ErrBufSize, len(b), bs)
		}
	}
	return nil
}

// checkBatchAt validates a scattered batch against a device.
func checkBatchAt(d Device, idx []uint64, bufs [][]byte) error {
	if len(idx) != len(bufs) {
		return fmt.Errorf("%w: %d != %d", ErrBatchShape, len(idx), len(bufs))
	}
	bs := d.BlockSize()
	for i, b := range bufs {
		if idx[i] >= d.NumBlocks() {
			return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, idx[i], d.NumBlocks())
		}
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", ErrBufSize, len(b), bs)
		}
	}
	return nil
}

// ReadBlocks fills bufs with the contiguous blocks [start,
// start+len(bufs)), using the device's native fast path when it has
// one and a per-block loop otherwise.
func ReadBlocks(d Device, start uint64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	if bd, ok := d.(BatchDevice); ok {
		return bd.ReadBlocks(start, bufs)
	}
	if err := checkBatch(d, start, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := d.ReadBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks stores data as the contiguous blocks [start,
// start+len(data)); fast path when available, loop otherwise.
func WriteBlocks(d Device, start uint64, data [][]byte) error {
	if len(data) == 0 {
		return nil
	}
	if bd, ok := d.(BatchDevice); ok {
		return bd.WriteBlocks(start, data)
	}
	if err := checkBatch(d, start, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := d.WriteBlock(start+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocksAt fills bufs[i] with block idx[i] for every i; fast path
// when available, loop otherwise.
func ReadBlocksAt(d Device, idx []uint64, bufs [][]byte) error {
	if len(idx) == 0 && len(bufs) == 0 {
		return nil
	}
	if bd, ok := d.(BatchDevice); ok {
		return bd.ReadBlocksAt(idx, bufs)
	}
	if err := checkBatchAt(d, idx, bufs); err != nil {
		return err
	}
	for i, b := range bufs {
		if err := d.ReadBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksAt stores data[i] as block idx[i] for every i; fast path
// when available, loop otherwise.
func WriteBlocksAt(d Device, idx []uint64, data [][]byte) error {
	if len(idx) == 0 && len(data) == 0 {
		return nil
	}
	if bd, ok := d.(BatchDevice); ok {
		return bd.WriteBlocksAt(idx, data)
	}
	if err := checkBatchAt(d, idx, data); err != nil {
		return err
	}
	for i, b := range data {
		if err := d.WriteBlock(idx[i], b); err != nil {
			return err
		}
	}
	return nil
}

// AllocBlocks returns n block buffers carved out of one allocation —
// the standard way batch callers build their buffer vectors without
// paying one make per block.
func AllocBlocks(n, blockSize int) [][]byte {
	slab := make([]byte, n*blockSize)
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = slab[i*blockSize : (i+1)*blockSize]
	}
	return bufs
}

// BufPool recycles single-block buffers across batched operations.
type BufPool struct {
	size int
	pool sync.Pool
}

// NewBufPool returns a pool of blockSize-byte buffers.
func NewBufPool(blockSize int) *BufPool {
	p := &BufPool{size: blockSize}
	p.pool.New = func() any {
		b := make([]byte, blockSize)
		return &b
	}
	return p
}

// Get returns a zero-copy buffer of the pool's block size.
func (p *BufPool) Get() []byte { return *(p.pool.Get().(*[]byte)) }

// Put returns a buffer obtained from Get. Buffers of the wrong size
// are dropped.
func (p *BufPool) Put(b []byte) {
	if len(b) != p.size {
		return
	}
	p.pool.Put(&b)
}

// --- Mem ----------------------------------------------------------------

// ReadBlocks implements BatchDevice: one lock acquisition, one slab
// scan, however many blocks.
func (m *Mem) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(m, start, bufs); err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	off := start * bs
	m.mu.RLock()
	for _, b := range bufs {
		copy(b, m.slab[off:off+bs])
		off += bs
	}
	m.mu.RUnlock()
	return nil
}

// WriteBlocks implements BatchDevice.
func (m *Mem) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(m, start, data); err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	off := start * bs
	m.mu.Lock()
	for _, b := range data {
		copy(m.slab[off:off+bs], b)
		off += bs
	}
	m.mu.Unlock()
	return nil
}

// ReadBlocksAt implements BatchDevice.
func (m *Mem) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(m, idx, bufs); err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	m.mu.RLock()
	for i, b := range bufs {
		off := idx[i] * bs
		copy(b, m.slab[off:off+bs])
	}
	m.mu.RUnlock()
	return nil
}

// WriteBlocksAt implements BatchDevice.
func (m *Mem) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(m, idx, data); err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	m.mu.Lock()
	for i, b := range data {
		off := idx[i] * bs
		copy(m.slab[off:off+bs], b)
	}
	m.mu.Unlock()
	return nil
}

// --- File ---------------------------------------------------------------

// slab borrows a contiguous scratch buffer of at least n bytes from
// the file's pool.
func (d *File) slab(n int) []byte {
	if v := d.scratch.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (d *File) releaseSlab(b []byte) {
	b = b[:cap(b)]
	d.scratch.Put(&b)
}

// ReadBlocks implements BatchDevice: one contiguous pread instead of
// len(bufs) syscalls.
func (d *File) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(d, start, bufs); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs) * d.blockSize
	slab := d.slab(n)
	if _, err := d.f.ReadAt(slab, int64(start)*int64(d.blockSize)); err != nil {
		d.releaseSlab(slab)
		return fmt.Errorf("blockdev: read blocks [%d,%d): %w", start, start+uint64(len(bufs)), err)
	}
	for i, b := range bufs {
		copy(b, slab[i*d.blockSize:])
	}
	d.releaseSlab(slab)
	return nil
}

// WriteBlocks implements BatchDevice: one contiguous pwrite.
func (d *File) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(d, start, data); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	slab := d.slab(len(data) * d.blockSize)
	for i, b := range data {
		copy(slab[i*d.blockSize:], b)
	}
	_, err := d.f.WriteAt(slab, int64(start)*int64(d.blockSize))
	d.releaseSlab(slab)
	if err != nil {
		return fmt.Errorf("blockdev: write blocks [%d,%d): %w", start, start+uint64(len(data)), err)
	}
	return nil
}

// ReadBlocksAt implements BatchDevice, coalescing ascending runs of
// consecutive indices into contiguous preads.
func (d *File) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(d, idx, bufs); err != nil {
		return err
	}
	for lo := 0; lo < len(idx); {
		hi := lo + 1
		for hi < len(idx) && idx[hi] == idx[hi-1]+1 {
			hi++
		}
		if err := d.ReadBlocks(idx[lo], bufs[lo:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// WriteBlocksAt implements BatchDevice, coalescing runs like
// ReadBlocksAt.
func (d *File) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(d, idx, data); err != nil {
		return err
	}
	for lo := 0; lo < len(idx); {
		hi := lo + 1
		for hi < len(idx) && idx[hi] == idx[hi-1]+1 {
			hi++
		}
		if err := d.WriteBlocks(idx[lo], data[lo:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// --- SubDevice ----------------------------------------------------------

// ReadBlocks implements BatchDevice by translating into the parent's
// address space; the parent's fast path (if any) does the work.
func (s *SubDevice) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(s, start, bufs); err != nil {
		return err
	}
	return ReadBlocks(s.parent, s.start+start, bufs)
}

// WriteBlocks implements BatchDevice.
func (s *SubDevice) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(s, start, data); err != nil {
		return err
	}
	return WriteBlocks(s.parent, s.start+start, data)
}

// translate maps sub-relative indices to parent indices.
func (s *SubDevice) translate(idx []uint64) ([]uint64, error) {
	out := make([]uint64, len(idx))
	for i, x := range idx {
		if x >= s.count {
			return nil, fmt.Errorf("%w: %d >= %d", ErrOutOfRange, x, s.count)
		}
		out[i] = s.start + x
	}
	return out, nil
}

// ReadBlocksAt implements BatchDevice.
func (s *SubDevice) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(s, idx, bufs); err != nil {
		return err
	}
	abs, err := s.translate(idx)
	if err != nil {
		return err
	}
	return ReadBlocksAt(s.parent, abs, bufs)
}

// WriteBlocksAt implements BatchDevice.
func (s *SubDevice) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(s, idx, data); err != nil {
		return err
	}
	abs, err := s.translate(idx)
	if err != nil {
		return err
	}
	return WriteBlocksAt(s.parent, abs, data)
}

// --- Striped ------------------------------------------------------------

// memberBatch is one member's share of a striped batch.
type memberBatch struct {
	member int
	start  uint64   // local start (contiguous batches)
	idx    []uint64 // local indices (scattered batches)
	bufs   [][]byte
}

// splitContiguous partitions the volume range [start, start+n) into
// per-member sub-batches. Block start+j lives on member (start+j) mod
// k; the local indices each member receives are themselves contiguous,
// so every sub-batch can use the member's contiguous fast path.
func (s *Striped) splitContiguous(start uint64, bufs [][]byte) []memberBatch {
	k := uint64(len(s.members))
	n := uint64(len(bufs))
	var parts []memberBatch
	for m := uint64(0); m < k; m++ {
		firstJ := (m + k - start%k) % k
		if firstJ >= n {
			continue
		}
		count := (n - firstJ + k - 1) / k
		mb := memberBatch{
			member: int(m),
			start:  (start + firstJ) / k,
			bufs:   make([][]byte, 0, count),
		}
		for j := firstJ; j < n; j += k {
			mb.bufs = append(mb.bufs, bufs[j])
		}
		parts = append(parts, mb)
	}
	return parts
}

// splitScattered groups a scattered batch by owning member.
func (s *Striped) splitScattered(idx []uint64, bufs [][]byte) []memberBatch {
	parts := make([]*memberBatch, len(s.members))
	var order []*memberBatch
	for i, x := range idx {
		m, local := s.Locate(x)
		if parts[m] == nil {
			parts[m] = &memberBatch{member: m}
			order = append(order, parts[m])
		}
		parts[m].idx = append(parts[m].idx, local)
		parts[m].bufs = append(parts[m].bufs, bufs[i])
	}
	out := make([]memberBatch, len(order))
	for i, p := range order {
		out[i] = *p
	}
	return out
}

// fanOut runs one function per member sub-batch, concurrently when
// several members are involved, and returns the first error. Callers
// have already routed all-memory stripes to the direct per-block
// path, so every batch arriving here has real I/O latency to hide.
func (s *Striped) fanOut(parts []memberBatch, f func(memberBatch) error) error {
	if len(parts) == 1 {
		return f(parts[0])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p memberBatch) {
			defer wg.Done()
			errs[i] = f(p)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// directContiguous moves a contiguous batch block by block without
// building the per-member split — the cheap-member fast path, where
// split allocation and goroutine fan-out both cost more than the
// members' memcpy-speed I/O.
func (s *Striped) directContiguous(start uint64, bufs [][]byte, write bool) error {
	k := uint64(len(s.members))
	for j := range bufs {
		i := start + uint64(j)
		m, local := int(i%k), i/k
		var err error
		if write {
			err = s.members[m].WriteBlock(local, bufs[j])
		} else {
			err = s.members[m].ReadBlock(local, bufs[j])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// directScattered is directContiguous for an arbitrary index set.
func (s *Striped) directScattered(idx []uint64, bufs [][]byte, write bool) error {
	k := uint64(len(s.members))
	for j, i := range idx {
		m, local := int(i%k), i/k
		var err error
		if write {
			err = s.members[m].WriteBlock(local, bufs[j])
		} else {
			err = s.members[m].ReadBlock(local, bufs[j])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocks implements BatchDevice: the batch fans out to the
// members concurrently, each receiving one contiguous sub-batch;
// all-memory stripes skip the split and move blocks inline.
func (s *Striped) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := checkBatch(s, start, bufs); err != nil {
		return err
	}
	if s.allFast {
		return s.directContiguous(start, bufs, false)
	}
	return s.fanOut(s.splitContiguous(start, bufs), func(mb memberBatch) error {
		return ReadBlocks(s.members[mb.member], mb.start, mb.bufs)
	})
}

// WriteBlocks implements BatchDevice.
func (s *Striped) WriteBlocks(start uint64, data [][]byte) error {
	if err := checkBatch(s, start, data); err != nil {
		return err
	}
	if s.allFast {
		return s.directContiguous(start, data, true)
	}
	return s.fanOut(s.splitContiguous(start, data), func(mb memberBatch) error {
		return WriteBlocks(s.members[mb.member], mb.start, mb.bufs)
	})
}

// ReadBlocksAt implements BatchDevice.
func (s *Striped) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := checkBatchAt(s, idx, bufs); err != nil {
		return err
	}
	if len(idx) == 0 {
		return nil
	}
	if s.allFast {
		return s.directScattered(idx, bufs, false)
	}
	return s.fanOut(s.splitScattered(idx, bufs), func(mb memberBatch) error {
		return ReadBlocksAt(s.members[mb.member], mb.idx, mb.bufs)
	})
}

// WriteBlocksAt implements BatchDevice.
func (s *Striped) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := checkBatchAt(s, idx, data); err != nil {
		return err
	}
	if len(idx) == 0 {
		return nil
	}
	if s.allFast {
		return s.directScattered(idx, data, true)
	}
	return s.fanOut(s.splitScattered(idx, data), func(mb memberBatch) error {
		return WriteBlocksAt(s.members[mb.member], mb.idx, mb.bufs)
	})
}

// --- Traced -------------------------------------------------------------

// Batched trace events are recorded only when the inner batch
// succeeds as a whole: a batch failing at block k transferred a
// k-block prefix (on sequential devices) that the trace does not
// show. Analyzers only consume traces from healthy runs, where the
// recorded stream is exactly the per-block loop's.

// ReadBlocks implements BatchDevice: the inner device's fast path
// runs, then a single ranged event is recorded.
func (t *Traced) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := ReadBlocks(t.Device, start, bufs); err != nil {
		return err
	}
	if len(bufs) > 0 {
		t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpRead, Block: start, Count: uint64(len(bufs))})
	}
	return nil
}

// WriteBlocks implements BatchDevice.
func (t *Traced) WriteBlocks(start uint64, data [][]byte) error {
	if err := WriteBlocks(t.Device, start, data); err != nil {
		return err
	}
	if len(data) > 0 {
		t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpWrite, Block: start, Count: uint64(len(data))})
	}
	return nil
}

// ReadBlocksAt implements BatchDevice. Scattered accesses have no
// compact range form, so one event per block is recorded, in batch
// order — exactly the stream a looping caller would have produced.
func (t *Traced) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := ReadBlocksAt(t.Device, idx, bufs); err != nil {
		return err
	}
	for _, i := range idx {
		t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpRead, Block: i})
	}
	return nil
}

// WriteBlocksAt implements BatchDevice.
func (t *Traced) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := WriteBlocksAt(t.Device, idx, data); err != nil {
		return err
	}
	for _, i := range idx {
		t.tracer.Record(Event{Seq: t.seq.Add(1), Op: OpWrite, Block: i})
	}
	return nil
}

// --- Sim ----------------------------------------------------------------

// ReadBlocks implements BatchDevice, charging the disk model a single
// sequential pass (one seek, len(bufs) transfers).
func (s *Sim) ReadBlocks(start uint64, bufs [][]byte) error {
	if err := ReadBlocks(s.Device, start, bufs); err != nil {
		return err
	}
	s.disk.AccessRange(start, len(bufs), false)
	return nil
}

// WriteBlocks implements BatchDevice.
func (s *Sim) WriteBlocks(start uint64, data [][]byte) error {
	if err := WriteBlocks(s.Device, start, data); err != nil {
		return err
	}
	s.disk.AccessRange(start, len(data), true)
	return nil
}

// ReadBlocksAt implements BatchDevice; scattered batches are charged
// block by block (the head really must visit every index).
func (s *Sim) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	if err := ReadBlocksAt(s.Device, idx, bufs); err != nil {
		return err
	}
	for _, i := range idx {
		s.disk.Access(i, false)
	}
	return nil
}

// WriteBlocksAt implements BatchDevice.
func (s *Sim) WriteBlocksAt(idx []uint64, data [][]byte) error {
	if err := WriteBlocksAt(s.Device, idx, data); err != nil {
		return err
	}
	for _, i := range idx {
		s.disk.Access(i, true)
	}
	return nil
}

// --- Gated --------------------------------------------------------------

// ReadBlocks implements BatchDevice: the whole batch is one turn of
// the gate, so batches stay atomic under deterministic interleaving.
func (g *Gated) ReadBlocks(start uint64, bufs [][]byte) error {
	var err error
	g.gate.Do(g.id, func() { err = ReadBlocks(g.Device, start, bufs) })
	return err
}

// WriteBlocks implements BatchDevice.
func (g *Gated) WriteBlocks(start uint64, data [][]byte) error {
	var err error
	g.gate.Do(g.id, func() { err = WriteBlocks(g.Device, start, data) })
	return err
}

// ReadBlocksAt implements BatchDevice.
func (g *Gated) ReadBlocksAt(idx []uint64, bufs [][]byte) error {
	var err error
	g.gate.Do(g.id, func() { err = ReadBlocksAt(g.Device, idx, bufs) })
	return err
}

// WriteBlocksAt implements BatchDevice.
func (g *Gated) WriteBlocksAt(idx []uint64, data [][]byte) error {
	var err error
	g.gate.Do(g.id, func() { err = WriteBlocksAt(g.Device, idx, data) })
	return err
}
