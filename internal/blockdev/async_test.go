package blockdev

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"steghide/internal/prng"
)

func fillBlock(buf []byte, i uint64) {
	rng := prng.NewFromUint64(i * 2654435761)
	rng.Read(buf)
}

// TestAsyncRoundTrip drives mixed single and batched ops through rings
// of several widths over Mem and File and checks every byte.
func TestAsyncRoundTrip(t *testing.T) {
	const bs, n = 512, 128
	mkFile := func(t *testing.T) Device {
		f, err := CreateFile(filepath.Join(t.TempDir(), "vol"), bs, n)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	for _, tc := range []struct {
		name string
		dev  func(t *testing.T) Device
	}{
		{"mem", func(t *testing.T) Device { return NewMem(bs, n) }},
		{"file", mkFile},
	} {
		for _, workers := range []int{1, 4} {
			dev := tc.dev(t)
			a := NewAsync(dev, workers, 8)

			// Writes: half singles, half one scattered batch.
			want := AllocBlocks(n, bs)
			for i := range want {
				fillBlock(want[i], uint64(i))
			}
			for i := 0; i < n/2; i++ {
				a.Submit(AsyncOp{Write: true, Block: uint64(i), Buf: want[i]})
			}
			idx := make([]uint64, 0, n/2)
			for i := n / 2; i < n; i++ {
				idx = append(idx, uint64(i))
			}
			a.Submit(AsyncOp{Write: true, Idx: idx, Bufs: want[n/2:]})
			if err := a.Drain(); err != nil {
				t.Fatalf("%s workers=%d: write drain: %v", tc.name, workers, err)
			}

			// Reads back through the ring.
			got := AllocBlocks(n, bs)
			a.Submit(AsyncOp{Idx: idx, Bufs: got[n/2:]})
			for i := 0; i < n/2; i++ {
				a.Submit(AsyncOp{Block: uint64(i), Buf: got[i]})
			}
			if err := a.Close(); err != nil {
				t.Fatalf("%s workers=%d: close: %v", tc.name, workers, err)
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("%s workers=%d: block %d mismatch", tc.name, workers, i)
				}
			}
		}
	}
}

// TestAsyncFIFOOrder pins the determinism contract: a one-worker ring
// hits the device in exact submission order, whatever the queue depth,
// and completions arrive in that same order.
func TestAsyncFIFOOrder(t *testing.T) {
	const bs, n = 64, 64
	tap := &Collector{}
	dev := NewTraced(NewMem(bs, n), tap)
	a := NewAsync(dev, 1, 16)
	buf := make([]byte, bs)
	var tags []uint64
	for i := 0; i < n; i++ {
		// Alternate reads and writes over a shuffled block order.
		blk := uint64((i * 17) % n)
		tags = append(tags, a.Submit(AsyncOp{Write: i%2 == 0, Block: blk, Buf: buf}))
	}
	for i := 0; i < n; i++ {
		tag, err := a.Complete()
		if err != nil {
			t.Fatal(err)
		}
		if tag != tags[i] {
			t.Fatalf("completion %d: tag %d, want %d (FIFO)", i, tag, tags[i])
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	events := tap.Events()
	if len(events) != n {
		t.Fatalf("%d trace events, want %d", len(events), n)
	}
	for i, ev := range events {
		wantBlk := uint64((i * 17) % n)
		wantOp := OpRead
		if i%2 == 0 {
			wantOp = OpWrite
		}
		if ev.Block != wantBlk || ev.Op != wantOp {
			t.Fatalf("event %d: %v block %d, want %v block %d (submission order)",
				i, ev.Op, ev.Block, wantOp, wantBlk)
		}
	}
}

// TestAsyncErrorDelivery pins that a failing op reports through its
// completion and Drain aggregates the first error.
func TestAsyncErrorDelivery(t *testing.T) {
	a := NewAsync(NewMem(64, 8), 2, 4)
	buf := make([]byte, 64)
	good := a.Submit(AsyncOp{Block: 0, Buf: buf})
	bad := a.Submit(AsyncOp{Block: 99, Buf: buf}) // out of range
	seen := map[uint64]error{}
	for i := 0; i < 2; i++ {
		tag, err := a.Complete()
		seen[tag] = err
	}
	if seen[good] != nil {
		t.Fatalf("good op failed: %v", seen[good])
	}
	if !errors.Is(seen[bad], ErrOutOfRange) {
		t.Fatalf("bad op error = %v, want ErrOutOfRange", seen[bad])
	}
	a.Submit(AsyncOp{Block: 77, Buf: buf})
	if err := a.Close(); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Close drained error = %v, want ErrOutOfRange", err)
	}
}

// TestAsyncBackpressure pins that Submit cannot run unboundedly ahead:
// with the ring saturated by a blocked device, the queue+workers bound
// holds.
func TestAsyncBackpressure(t *testing.T) {
	release := make(chan struct{})
	dev := &stallDevice{
		Device:  NewMem(64, 8),
		release: release,
		started: make(chan struct{}, 1),
	}
	a := NewAsync(dev, 1, 2)
	buf := make([]byte, 64)
	submitted := make(chan int, 16)
	go func() {
		for i := 0; i < 8; i++ {
			a.Submit(AsyncOp{Block: 0, Buf: buf})
			submitted <- i
		}
		close(submitted)
	}()
	// Worker stalls on op 1; the queue holds 2 more; the 4th Submit
	// must block until the device is released.
	<-dev.started
	for i := 0; i < 3; i++ {
		<-submitted
	}
	select {
	case i := <-submitted:
		t.Fatalf("submit %d went through against a stalled full ring", i+1)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	for range submitted {
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// stallDevice blocks every op until released, signalling the first.
type stallDevice struct {
	Device
	release chan struct{}
	started chan struct{}
}

func (s *stallDevice) ReadBlock(i uint64, buf []byte) error {
	select {
	case s.started <- struct{}{}:
	default:
	}
	<-s.release
	return s.Device.ReadBlock(i, buf)
}

// TestAsAsync pins the pass-through.
func TestAsAsync(t *testing.T) {
	mem := NewMem(64, 8)
	a := NewAsync(mem, 1, 2)
	defer a.Close()
	if got := AsAsync(a, 4, 4); got != AsyncDevice(a) {
		t.Fatal("AsAsync re-wrapped an AsyncDevice")
	}
	wrapped := AsAsync(mem, 1, 2)
	if _, ok := wrapped.(*Async); !ok {
		t.Fatal("AsAsync did not wrap a plain device")
	}
	wrapped.(*Async).Close()
}

// TestAsyncFileOverlap sanity-checks the ring over File with real
// batched payloads: interleaved scattered writes then verification via
// a plain read pass.
func TestAsyncFileOverlap(t *testing.T) {
	const bs, n = 4096, 64
	path := filepath.Join(t.TempDir(), "vol")
	f, err := CreateFile(path, bs, n)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a := NewAsync(f, 4, 8)
	bufs := AllocBlocks(n, bs)
	for i := range bufs {
		binary.BigEndian.PutUint64(bufs[i], uint64(i)|0xFEED0000)
	}
	for i := 0; i < n; i++ {
		a.Submit(AsyncOp{Write: true, Block: uint64(i), Buf: bufs[i]})
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := binary.BigEndian.Uint64(raw[i*bs:]); got != uint64(i)|0xFEED0000 {
			t.Fatalf("block %d: %#x on disk", i, got)
		}
	}
}
