// Package stegfs implements the steganographic file system of
// Pang/Tan/Zhou (ICDE 2003) that the paper builds on, extended with
// the hooks the access-hiding constructions of the 2004 paper need.
//
// On-disk model (§4.1.1 of the paper):
//
//   - The volume is partitioned into fixed-size blocks. Block 0 is a
//     plaintext superblock (geometry + key-derivation salt); attackers
//     are assumed to understand the scheme completely (§3.2.2), so the
//     superblock reveals nothing they do not already know.
//   - Every other block — data or dummy — is `IV ‖ CBC-AES(data
//     field)`. At format time each block is filled with random bytes,
//     so unused (dummy) blocks are indistinguishable from ciphertext.
//   - A hidden file is a tree of blocks rooted at a header block whose
//     location is derived from the file's access key (FAK) and path
//     name. Without the FAK neither the header nor the existence of
//     the file can be established.
//   - Dummy files (headers that describe runs of random blocks) give
//     the volatile agent something to update when no real work exists,
//     and give coerced users something safe to disclose.
//
// The package deliberately does not decide *where* updated blocks go:
// that is the UpdatePolicy, supplied by the update-hiding layer
// (internal/steghide) or by the in-place baseline.
package stegfs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"steghide/internal/blockdev"
	"steghide/internal/mempool"
	"steghide/internal/prng"
	"steghide/internal/sealer"
)

// Superblock constants.
const (
	superMagic   = "STEGVOL1"
	superBlock   = 0 // block index of the superblock
	saltSize     = 32
	currentVer   = 2 // v2 added the journal-region length
	defaultIters = 4096
)

// Sentinel errors returned by the package.
var (
	// ErrNotFound reports that no file with the given FAK/path exists —
	// deliberately indistinguishable from "wrong key" (plausible
	// deniability).
	ErrNotFound = errors.New("stegfs: no such file (or wrong access key)")
	// ErrVolumeFull reports that no free block could be acquired.
	ErrVolumeFull = errors.New("stegfs: volume full")
	// ErrCorrupt reports a structurally invalid volume or block.
	ErrCorrupt = errors.New("stegfs: corrupt volume")
	// ErrTooLarge reports a file size beyond the block map's reach.
	ErrTooLarge = errors.New("stegfs: file too large for block map")
)

// FormatOptions control volume creation.
type FormatOptions struct {
	// KDFIterations for passphrase stretching; defaults to 4096.
	KDFIterations int
	// FillSeed seeds the random fill of the volume. A zero value uses
	// an arbitrary fixed seed; callers wanting irreproducible volumes
	// should pass entropy.
	FillSeed []byte
	// JournalBlocks reserves a ring of blocks right after the
	// superblock for the sealed intent journal (internal/journal).
	// Zero — the default — reserves nothing; the steg space then
	// starts at block 1, exactly as before v2.
	JournalBlocks uint64
}

// Volume is an open steganographic volume. Its block-level primitives
// (ReadSealed, WriteSealed, Reseal) are safe for concurrent use; the
// File layer serializes itself per file.
//
// When a BlockLocker is installed (SetBlockLocker — the update
// scheduler does this), every sealed read and every write primitive
// additionally serializes per block through it, so file-layer I/O
// (growth, header and pointer saves, reads) cannot interleave with a
// concurrent read-modify-write on the same block.
type Volume struct {
	dev       blockdev.Device
	blockSize int
	payload   int
	nBlocks   uint64
	salt      [saltSize]byte
	kdfIters  int
	journal   uint64 // blocks reserved for the intent journal ring

	mu  sync.Mutex
	rng *prng.PRNG // IV / fill generator

	locker atomic.Value // BlockLocker
	intent atomic.Value // IntentLog
}

// BlockLocker serializes block I/O per block number. internal/sched
// implements it with a sharded lock map shared between the update
// scheduler and the volume, so all writers of a block agree on one
// lock regardless of which layer they sit in.
type BlockLocker interface {
	// LockBlock locks the given block for a read-modify-write cycle.
	LockBlock(loc uint64)
	// UnlockBlock releases a LockBlock acquisition.
	UnlockBlock(loc uint64)
	// LockBlocks locks every block in locs (deduplicated, deadlock-free
	// ordering) and returns the matching unlock.
	LockBlocks(locs []uint64) (unlock func())
}

// SetBlockLocker installs l as the volume's per-block serializer.
// Install before concurrent use; a nil-to-set transition is safe at
// any time, replacing a live locker concurrently with I/O is not.
func (v *Volume) SetBlockLocker(l BlockLocker) { v.locker.Store(l) }

// blockLocker returns the installed locker, or nil.
func (v *Volume) blockLocker() BlockLocker {
	if x := v.locker.Load(); x != nil {
		return x.(BlockLocker)
	}
	return nil
}

// IntentLog is the durability plane's view of the file layer: the
// journaled agents (internal/steghide over internal/journal) install
// one so that every block-map mutation leaves a sealed intent record
// before the blocks it concerns are referenced by a durable header.
// All methods must be safe for concurrent use. A volume with no
// intent log installed behaves exactly as before — the file layer
// only consults the hooks, it never requires them.
type IntentLog interface {
	// NoteOwner records that data block loc currently belongs to the
	// file whose header sits at headerLoc, so a subsequent relocation
	// intent for loc can name the header recovery must inspect.
	NoteOwner(loc, headerLoc uint64)
	// LogAlloc durably records that the file at headerLoc acquired
	// locs (growth, indirect blocks, creation), before any of them is
	// written or referenced.
	LogAlloc(headerLoc uint64, locs []uint64) error
	// LogFree durably records that the file at headerLoc is giving up
	// locs (shrink, delete), before they are released.
	LogFree(headerLoc uint64, locs []uint64) error
	// LogSave marks the file's header save as durable: every earlier
	// intent of this file is now decided by the on-disk header, and
	// blocks the save vacated may rejoin the dummy pool.
	LogSave(headerLoc uint64) error
}

// SetIntentLog installs il as the volume's durability hooks; nil-to-set
// before concurrent use, like SetBlockLocker.
func (v *Volume) SetIntentLog(il IntentLog) { v.intent.Store(il) }

// IntentHooks returns the installed intent log, or nil.
func (v *Volume) IntentHooks() IntentLog {
	if x := v.intent.Load(); x != nil {
		return x.(IntentLog)
	}
	return nil
}

// MinBlockSize is the smallest supported block size: the header's
// fixed fields plus at least one direct pointer must fit the payload.
const MinBlockSize = 128

// Format initializes a steganographic volume on dev: it writes the
// superblock and fills every other block with random bytes, the
// "abandoned blocks" of the construction. Existing content is
// destroyed.
func Format(dev blockdev.Device, opts FormatOptions) (*Volume, error) {
	bs := dev.BlockSize()
	if bs < MinBlockSize {
		return nil, fmt.Errorf("stegfs: block size %d < minimum %d", bs, MinBlockSize)
	}
	if (bs-sealer.IVSize)%16 != 0 {
		return nil, fmt.Errorf("stegfs: block size %d leaves unaligned data field", bs)
	}
	if dev.NumBlocks() < 8 {
		return nil, fmt.Errorf("stegfs: volume of %d blocks too small", dev.NumBlocks())
	}
	if opts.JournalBlocks > 0 && dev.NumBlocks() < opts.JournalBlocks+9 {
		return nil, fmt.Errorf("stegfs: %d-block journal leaves no steg space on a %d-block volume",
			opts.JournalBlocks, dev.NumBlocks())
	}
	iters := opts.KDFIterations
	if iters <= 0 {
		iters = defaultIters
	}
	seed := opts.FillSeed
	if len(seed) == 0 {
		seed = []byte("stegfs-default-fill-seed")
	}
	rng := prng.New(seed)

	v := &Volume{
		dev:       dev,
		blockSize: bs,
		payload:   bs - sealer.IVSize,
		nBlocks:   dev.NumBlocks(),
		kdfIters:  iters,
		journal:   opts.JournalBlocks,
		rng:       rng.Child("volume-iv"),
	}
	rng.Read(v.salt[:])

	// Random-fill the steg space. Fresh random bytes are
	// indistinguishable from CBC ciphertext, so after this pass every
	// block plausibly holds hidden data. The fill goes out in batched
	// sequential passes; the PRNG is a byte stream, so the volume's
	// contents are bit-identical to a block-at-a-time fill.
	fill := rng.Child("fill")
	const fillBatch = 256
	bufs := blockdev.AllocBlocks(fillBatch, bs)
	for i := uint64(1); i < v.nBlocks; {
		n := min(uint64(fillBatch), v.nBlocks-i)
		fill.Read(bufs[0][: n*uint64(bs) : n*uint64(bs)])
		if err := blockdev.WriteBlocks(dev, i, bufs[:n]); err != nil {
			return nil, fmt.Errorf("stegfs: format fill: %w", err)
		}
		i += n
	}
	if err := v.writeSuper(); err != nil {
		return nil, err
	}
	return v, nil
}

// Open reads the superblock of an existing volume on dev.
func Open(dev blockdev.Device) (*Volume, error) {
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	if err := dev.ReadBlock(superBlock, buf); err != nil {
		return nil, fmt.Errorf("stegfs: read superblock: %w", err)
	}
	if string(buf[:8]) != superMagic {
		return nil, fmt.Errorf("%w: bad superblock magic", ErrCorrupt)
	}
	ver := binary.BigEndian.Uint32(buf[8:])
	if ver != 1 && ver != currentVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	gotBS := int(binary.BigEndian.Uint32(buf[12:]))
	n := binary.BigEndian.Uint64(buf[16:])
	iters := int(binary.BigEndian.Uint32(buf[24:]))
	if gotBS != bs {
		return nil, fmt.Errorf("%w: superblock block size %d != device %d", ErrCorrupt, gotBS, bs)
	}
	if n != dev.NumBlocks() {
		return nil, fmt.Errorf("%w: superblock claims %d blocks, device has %d", ErrCorrupt, n, dev.NumBlocks())
	}
	v := &Volume{
		dev:       dev,
		blockSize: bs,
		payload:   bs - sealer.IVSize,
		nBlocks:   n,
		kdfIters:  iters,
	}
	// v1 had no journal field: the salt starts at 28. v2 inserts the
	// journal-ring length before the salt.
	saltOff := 28
	if ver == currentVer {
		v.journal = binary.BigEndian.Uint64(buf[28:])
		saltOff = 36
	}
	if v.journal >= n {
		return nil, fmt.Errorf("%w: journal of %d blocks exceeds volume", ErrCorrupt, v.journal)
	}
	copy(v.salt[:], buf[saltOff:saltOff+saltSize])
	sum := sha256.Sum256(buf[:saltOff+saltSize])
	if !bytes.Equal(buf[saltOff+saltSize:saltOff+saltSize+8], sum[:8]) {
		return nil, fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	// Per-volume IV stream; seeded from the salt so it differs between
	// volumes, forked from clock-free material so reopening does not
	// repeat IVs only if callers supply entropy — acceptable for a
	// simulation-grade volume and deterministic for experiments.
	v.rng = prng.New(v.salt[:]).Child("volume-iv-reopen")
	return v, nil
}

func (v *Volume) writeSuper() error {
	buf := make([]byte, v.blockSize)
	copy(buf, superMagic)
	binary.BigEndian.PutUint32(buf[8:], currentVer)
	binary.BigEndian.PutUint32(buf[12:], uint32(v.blockSize))
	binary.BigEndian.PutUint64(buf[16:], v.nBlocks)
	binary.BigEndian.PutUint32(buf[24:], uint32(v.kdfIters))
	binary.BigEndian.PutUint64(buf[28:], v.journal)
	copy(buf[36:], v.salt[:])
	sum := sha256.Sum256(buf[:36+saltSize])
	copy(buf[36+saltSize:], sum[:8])
	if err := v.dev.WriteBlock(superBlock, buf); err != nil {
		return fmt.Errorf("stegfs: write superblock: %w", err)
	}
	return nil
}

// Device returns the underlying block device.
func (v *Volume) Device() blockdev.Device { return v.dev }

// BlockSize returns the on-disk block size.
func (v *Volume) BlockSize() int { return v.blockSize }

// PayloadSize returns the per-block usable data-field size.
func (v *Volume) PayloadSize() int { return v.payload }

// NumBlocks returns the number of blocks including the superblock.
func (v *Volume) NumBlocks() uint64 { return v.nBlocks }

// FirstDataBlock returns the first block of the steg space: the block
// after the superblock and, when present, the journal ring.
func (v *Volume) FirstDataBlock() uint64 { return superBlock + 1 + v.journal }

// JournalBlocks returns the size of the reserved journal ring (0 when
// the volume was formatted without one).
func (v *Volume) JournalBlocks() uint64 { return v.journal }

// JournalRegion returns the journal ring as a device of its own — the
// fixed window [1, 1+JournalBlocks) of the volume. It fails on
// volumes formatted without a journal.
func (v *Volume) JournalRegion() (*blockdev.SubDevice, error) {
	if v.journal == 0 {
		return nil, errors.New("stegfs: volume has no journal region")
	}
	return blockdev.NewSub(v.dev, superBlock+1, v.journal)
}

// Salt returns the volume's key-derivation salt.
func (v *Volume) Salt() []byte { return append([]byte(nil), v.salt[:]...) }

// KDFIterations returns the passphrase-stretching iteration count.
func (v *Volume) KDFIterations() int { return v.kdfIters }

// NewSealer builds a block sealer for this volume's geometry.
func (v *Volume) NewSealer(key sealer.Key) (*sealer.Sealer, error) {
	return sealer.New(key, v.blockSize)
}

// NextIV draws a fresh IV from the volume's generator; the hook the
// hiding layers use when sealing blocks they batch themselves.
func (v *Volume) NextIV(dst []byte) {
	v.mu.Lock()
	v.rng.Read(dst[:sealer.IVSize])
	v.mu.Unlock()
}

// nextIV draws a fresh IV from the volume's generator.
func (v *Volume) nextIV(dst []byte) { v.NextIV(dst) }

// ReadSealed reads block loc and decrypts it with seal, returning the
// payload in a fresh buffer.
func (v *Volume) ReadSealed(loc uint64, seal *sealer.Sealer) ([]byte, error) {
	raw := mempool.Get(v.blockSize)
	defer mempool.Recycle(raw)
	out := make([]byte, v.payload)
	if err := v.ReadSealedInto(loc, seal, raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSealedInto is ReadSealed with caller-owned buffers — the
// alloc-free form the scan paths (File.ReadAt batches, recovery's
// header walk) loop over. raw must be BlockSize bytes of scratch; the
// payload decrypts into out, which must be PayloadSize bytes.
func (v *Volume) ReadSealedInto(loc uint64, seal *sealer.Sealer, raw, out []byte) error {
	l := v.blockLocker()
	if l != nil {
		l.LockBlock(loc)
	}
	err := v.dev.ReadBlock(loc, raw)
	if l != nil {
		l.UnlockBlock(loc)
	}
	if err != nil {
		return err
	}
	return seal.Open(out, raw)
}

// WriteSealed encrypts payload under seal with a fresh IV and writes
// it to block loc.
func (v *Volume) WriteSealed(loc uint64, seal *sealer.Sealer, payload []byte) error {
	raw := make([]byte, v.blockSize)
	var iv [sealer.IVSize]byte
	v.nextIV(iv[:])
	if err := seal.Seal(raw, iv[:], payload); err != nil {
		return err
	}
	l := v.blockLocker()
	if l != nil {
		l.LockBlock(loc)
		defer l.UnlockBlock(loc)
	}
	return v.dev.WriteBlock(loc, raw)
}

// Reseal performs a dummy update on block loc (§4.1.3): decrypt,
// fresh IV, re-encrypt, write back. Every byte of the stored block
// changes while the plaintext is preserved.
func (v *Volume) Reseal(loc uint64, seal *sealer.Sealer) error {
	l := v.blockLocker()
	if l != nil {
		l.LockBlock(loc)
		defer l.UnlockBlock(loc)
	}
	raw := make([]byte, v.blockSize)
	if err := v.dev.ReadBlock(loc, raw); err != nil {
		return err
	}
	var iv [sealer.IVSize]byte
	v.nextIV(iv[:])
	if err := seal.Reseal(raw, iv[:], nil); err != nil {
		return err
	}
	return v.dev.WriteBlock(loc, raw)
}

// RewriteRandom overwrites block loc with fresh random bytes — the
// dummy update available when no key for the block is held (used on
// dummy-file blocks, whose plaintext is meaningless by construction).
func (v *Volume) RewriteRandom(loc uint64) error {
	buf := make([]byte, v.blockSize)
	v.mu.Lock()
	v.rng.Read(buf)
	v.mu.Unlock()
	l := v.blockLocker()
	if l != nil {
		l.LockBlock(loc)
		defer l.UnlockBlock(loc)
	}
	return v.dev.WriteBlock(loc, buf)
}

// FillRandom fills buf from the volume's random stream — the in-memory
// half of RewriteRandom, for callers that batch the device write.
func (v *Volume) FillRandom(buf []byte) {
	v.mu.Lock()
	v.rng.Read(buf)
	v.mu.Unlock()
}

// ReadSealedMany reads the blocks at locs in one scattered device
// batch and decrypts each with seal, returning the payloads in fresh
// buffers carved from a single allocation.
func (v *Volume) ReadSealedMany(locs []uint64, seal *sealer.Sealer) ([][]byte, error) {
	if len(locs) == 0 {
		return nil, nil
	}
	// The ciphertext slab is transient — borrowed from the memory
	// plane and returned before we hand the payloads (which the caller
	// owns) back.
	slab := mempool.Get(len(locs) * v.blockSize)
	defer mempool.Recycle(slab)
	raws := carveBlocks(nil, slab, len(locs), v.blockSize)
	out := blockdev.AllocBlocks(len(locs), v.payload)
	if err := v.ReadSealedManyInto(locs, seal, raws, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSealedManyInto is ReadSealedMany with caller-owned buffers:
// raws must hold len(locs) BlockSize scratch buffers, out len(locs)
// PayloadSize destination buffers. Nothing is allocated, which is what
// turns a sequential hidden-file scan into pure device I/O + crypto.
func (v *Volume) ReadSealedManyInto(locs []uint64, seal *sealer.Sealer, raws, out [][]byte) error {
	if len(locs) == 0 {
		return nil
	}
	var err error
	if l := v.blockLocker(); l != nil {
		unlock := l.LockBlocks(locs)
		err = blockdev.ReadBlocksAt(v.dev, locs, raws)
		unlock()
	} else {
		err = blockdev.ReadBlocksAt(v.dev, locs, raws)
	}
	if err != nil {
		return err
	}
	return seal.OpenMany(out, raws)
}

// carveBlocks appends n size-byte slices carved from slab to dst.
// slab must hold n·size bytes; capacities are clamped so adjacent
// carves cannot bleed into each other via append.
func carveBlocks(dst [][]byte, slab []byte, n, size int) [][]byte {
	for i := 0; i < n; i++ {
		dst = append(dst, slab[i*size:(i+1)*size:(i+1)*size])
	}
	return dst
}

// WriteSealedMany seals payloads[i] under seal with fresh IVs and
// writes them to locs[i], all in one scattered device batch.
func (v *Volume) WriteSealedMany(locs []uint64, seal *sealer.Sealer, payloads [][]byte) error {
	if len(locs) != len(payloads) {
		return fmt.Errorf("stegfs: %d locations for %d payloads", len(locs), len(payloads))
	}
	if len(locs) == 0 {
		return nil
	}
	raws := blockdev.AllocBlocks(len(locs), v.blockSize)
	if err := seal.SealMany(raws, v.NextIV, payloads); err != nil {
		return err
	}
	if l := v.blockLocker(); l != nil {
		defer l.LockBlocks(locs)()
	}
	return blockdev.WriteBlocksAt(v.dev, locs, raws)
}

// UpdateMany is the batched read-modify-write primitive: it reads the
// blocks at locs in one batch, lets apply rewrite each raw block in
// memory (reseal, random refill, …), and writes them all back in one
// batch. The observable stream is the same reads-then-writes a
// per-block loop would emit, at a fraction of the device round trips.
func (v *Volume) UpdateMany(locs []uint64, apply func(i int, raw []byte) error) error {
	if len(locs) == 0 {
		return nil
	}
	if l := v.blockLocker(); l != nil {
		defer l.LockBlocks(locs)()
	}
	raws := blockdev.AllocBlocks(len(locs), v.blockSize)
	if err := blockdev.ReadBlocksAt(v.dev, locs, raws); err != nil {
		return err
	}
	for i, raw := range raws {
		if err := apply(i, raw); err != nil {
			return err
		}
	}
	return blockdev.WriteBlocksAt(v.dev, locs, raws)
}

// ResealMany performs a dummy update on every block in locs (§4.1.3)
// with two scattered device batches instead of 2·len(locs) single-block
// calls — the bulk form the dummy-traffic daemon burns idle time with.
func (v *Volume) ResealMany(locs []uint64, seal *sealer.Sealer) error {
	var iv [sealer.IVSize]byte
	return v.UpdateMany(locs, func(_ int, raw []byte) error {
		v.NextIV(iv[:])
		return seal.Reseal(raw, iv[:], nil)
	})
}
