package stegfs

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"steghide/internal/sealer"
)

// FAK is a file access key (§4.2.1). It comprises three components:
//
//   - Locator: the secret from which the header's candidate locations
//     on the volume are derived;
//   - HeaderKey: encrypts the header and the pointer (indirect)
//     blocks;
//   - ContentKey: encrypts the data blocks.
//
// The split enables plausible deniability: a coerced owner can reveal
// the Locator and HeaderKey of a file but a wrong ContentKey and claim
// the file is a dummy — dummy files genuinely have no meaningful
// ContentKey.
type FAK struct {
	Locator    [32]byte
	HeaderKey  sealer.Key
	ContentKey sealer.Key
}

// DeriveFAK derives a file's FAK from the owner's passphrase, the
// volume salt, and the file's path name. The same inputs always yield
// the same FAK, so users need only remember their passphrase.
func DeriveFAK(passphrase, pathname string, vol *Volume) FAK {
	master := sealer.KeyFromPassphrase(passphrase, vol.Salt(), vol.KDFIterations())
	return DeriveFAKFromMaster(master, pathname)
}

// DeriveFAKFromMaster derives a file FAK from an already-stretched
// master key; used when one login session opens many files.
func DeriveFAKFromMaster(master sealer.Key, pathname string) FAK {
	var fak FAK
	loc := hmac.New(sha256.New, master[:])
	loc.Write([]byte("locator\x00"))
	loc.Write([]byte(pathname))
	copy(fak.Locator[:], loc.Sum(nil))
	fak.HeaderKey = sealer.DeriveKey(master[:], "header\x00"+pathname)
	fak.ContentKey = sealer.DeriveKey(master[:], "content\x00"+pathname)
	return fak
}

// HeaderProbeLimit is the number of candidate header locations tried
// before concluding a file does not exist. With ≤50% utilization the
// probability that all candidates are occupied is ≤ 2^-64.
const HeaderProbeLimit = 64

// HeaderCandidate returns the i-th candidate block for the header of
// the file keyed by fak on a volume of n blocks whose steg space
// starts at first. Candidates are pseudo-random in the steg space and
// derivable only with the Locator secret.
func (fak *FAK) HeaderCandidate(i int, first, n uint64) uint64 {
	mac := hmac.New(sha256.New, fak.Locator[:])
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(i))
	mac.Write(idx[:])
	h := mac.Sum(nil)
	span := n - first
	return first + binary.BigEndian.Uint64(h[:8])%span
}

// PathHash binds a header to its path name so that a FAK reused for a
// different path cannot silently open the wrong file.
func PathHash(pathname string) [32]byte {
	return sha256.Sum256([]byte("stegfs-path\x00" + pathname))
}
