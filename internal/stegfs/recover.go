package stegfs

import (
	"errors"

	"steghide/internal/mempool"
	"steghide/internal/sealer"
)

// ReferencedAt loads the file rooted at headerLoc under the given
// header key and returns every block location its durable on-disk map
// references: the header itself, all data blocks, and the indirect
// (pointer) chain. It is the oracle journal recovery resolves intents
// against — whatever the saved header reaches is, by definition, the
// committed state a reopened file will see.
//
// It returns ErrNotFound when no header decodes at headerLoc under
// key (the file was never created, was deleted, or the key is wrong —
// indistinguishable by design), and ErrCorrupt when a header decodes
// but its pointer chain does not: such a file is unreadable, so none
// of its blocks count as live.
func ReferencedAt(vol *Volume, headerLoc uint64, key sealer.Key) (map[uint64]bool, error) {
	if headerLoc < superBlock+1+vol.journal || headerLoc >= vol.nBlocks {
		return nil, ErrNotFound
	}
	hseal, err := vol.NewSealer(key)
	if err != nil {
		return nil, err
	}
	// One raw/payload pair serves the whole walk — header, single and
	// double indirect, and every inner pointer block. Each decode copies
	// what it keeps before the next read overwrites the scratch.
	raw := mempool.Get(vol.BlockSize())
	defer mempool.Recycle(raw)
	payload := mempool.Get(vol.PayloadSize())
	defer mempool.Recycle(payload)
	if err := vol.ReadSealedInto(headerLoc, hseal, raw, payload); err != nil {
		return nil, err
	}
	h, err := vol.decodeHeaderAny(payload, key)
	if err != nil {
		return nil, err
	}

	refs := map[uint64]bool{headerLoc: true}
	count := h.blockCount
	taken := uint64(0)
	take := func(ptrs []uint64) {
		for _, p := range ptrs {
			if taken == count {
				return
			}
			refs[p] = true
			taken++
		}
	}
	take(h.direct)
	per := uint64(vol.ptrsPerBlock())
	if taken < count {
		if h.single == 0 {
			return nil, errors.Join(ErrCorrupt, errors.New("stegfs: missing single-indirect block"))
		}
		refs[h.single] = true
		if err := vol.ReadSealedInto(h.single, hseal, raw, payload); err != nil {
			return nil, err
		}
		n := min(count-taken, per)
		ptrs, err := vol.decodePtrBlock(payload, int(n), key)
		if err != nil {
			return nil, err
		}
		take(ptrs)
	} else if h.single != 0 {
		refs[h.single] = true // over-provisioned, still owned
	}
	if h.double != 0 {
		refs[h.double] = true
		if err := vol.ReadSealedInto(h.double, hseal, raw, payload); err != nil {
			return nil, err
		}
		outer, err := vol.decodePtrBlock(payload, int(h.outerCount), key)
		if err != nil {
			return nil, err
		}
		for _, op := range outer {
			if op == 0 {
				return nil, errors.Join(ErrCorrupt, errors.New("stegfs: nil pointer in double-indirect chain"))
			}
			refs[op] = true
			if taken == count {
				continue // over-provisioned inner block, still owned
			}
			if err := vol.ReadSealedInto(op, hseal, raw, payload); err != nil {
				return nil, err
			}
			n := min(count-taken, per)
			ptrs, err := vol.decodePtrBlock(payload, int(n), key)
			if err != nil {
				return nil, err
			}
			take(ptrs)
		}
	}
	if taken != count {
		return nil, errors.Join(ErrCorrupt, errors.New("stegfs: block map incomplete"))
	}
	return refs, nil
}
