package stegfs

import (
	"fmt"
	"sync"

	"steghide/internal/bitmap"
	"steghide/internal/prng"
)

// BlockSource is the allocator's view of the steg space: which blocks
// currently hold live data and which are dummies. The non-volatile
// agent (Construction 1) backs it with a persistent bitmap over the
// whole volume; the volatile agent (Construction 2) backs it with the
// union of blocks belonging to files disclosed in the current session.
type BlockSource interface {
	// AcquireRandom picks a uniformly random free block, marks it used,
	// and returns it. It fails with ErrVolumeFull when no block is free.
	AcquireRandom() (uint64, error)
	// Acquire marks a specific free block used, reporting success.
	Acquire(loc uint64) bool
	// Release marks a block free (a dummy, in steg terms).
	Release(loc uint64)
	// IsFree reports whether loc currently holds no live data.
	IsFree(loc uint64) bool
	// FreeCount returns the number of free blocks.
	FreeCount() uint64
	// SpaceBounds returns the steg space [first, n) the source manages.
	SpaceBounds() (first, n uint64)
}

// BitmapSource is the standard BlockSource over an in-memory bitmap.
// It is safe for concurrent use.
type BitmapSource struct {
	mu    sync.Mutex
	used  *bitmap.Bitmap
	first uint64
	rng   *prng.PRNG
}

// NewBitmapSource creates a source for the steg space [first, n);
// blocks below first are permanently reserved.
func NewBitmapSource(first, n uint64, rng *prng.PRNG) *BitmapSource {
	if first >= n {
		panic(fmt.Sprintf("stegfs: bitmap source bounds [%d,%d)", first, n))
	}
	used := bitmap.New(n)
	used.SetRange(0, first)
	return &BitmapSource{used: used, first: first, rng: rng}
}

// SpaceBounds implements BlockSource.
func (s *BitmapSource) SpaceBounds() (uint64, uint64) { return s.first, s.used.Len() }

// FreeCount implements BlockSource.
func (s *BitmapSource) FreeCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used.Len() - s.used.Count()
}

// UsedCount returns the number of live blocks in the steg space.
func (s *BitmapSource) UsedCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used.Count() - s.first
}

// IsFree implements BlockSource.
func (s *BitmapSource) IsFree(loc uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if loc >= s.used.Len() {
		return false
	}
	return !s.used.Get(loc)
}

// Acquire implements BlockSource.
func (s *BitmapSource) Acquire(loc uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if loc >= s.used.Len() {
		return false
	}
	return s.used.Set(loc)
}

// Release implements BlockSource.
func (s *BitmapSource) Release(loc uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if loc < s.first || loc >= s.used.Len() {
		return // reserved blocks never become free
	}
	s.used.Clear(loc)
}

// MarshalBinary serializes the bitmap — the persistent memory of the
// non-volatile agent.
func (s *BitmapSource) MarshalBinary() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used.MarshalBinary()
}

// UnmarshalBinary restores a bitmap saved by MarshalBinary. The
// restored bitmap must cover the same space.
func (s *BitmapSource) UnmarshalBinary(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	restored := new(bitmap.Bitmap)
	if err := restored.UnmarshalBinary(data); err != nil {
		return err
	}
	if restored.Len() != s.used.Len() {
		return fmt.Errorf("stegfs: restored bitmap covers %d blocks, want %d", restored.Len(), s.used.Len())
	}
	s.used = restored
	return nil
}

// AcquireRandom implements BlockSource. It draws uniformly from the
// free set: rejection sampling over the steg space, falling back to a
// scan from a random origin when the volume is nearly full (the scan
// start being uniform keeps the choice unbiased enough for the
// fallback's rarity).
func (s *BitmapSource) AcquireRandom() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.used.Len()
	if s.used.Count() == n {
		return 0, ErrVolumeFull
	}
	span := n - s.first
	for try := 0; try < 128; try++ {
		loc := s.first + s.rng.Uint64n(span)
		if s.used.Set(loc) {
			return loc, nil
		}
	}
	start := s.first + s.rng.Uint64n(span)
	if idx, ok := s.used.NextClear(start); ok {
		s.used.Set(idx)
		return idx, nil
	}
	if idx, ok := s.used.NextClear(s.first); ok {
		s.used.Set(idx)
		return idx, nil
	}
	return 0, ErrVolumeFull
}
