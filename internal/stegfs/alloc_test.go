package stegfs

import (
	"testing"

	"steghide/internal/prng"
	"steghide/internal/race"
)

// TestAllocBudgets pins the sequential-scan read path: a full ReadAt
// over a 128-block file runs its batched reads out of pooled slabs and
// the file's cached carve tables, so the whole 64-KB-payload scan must
// stay within a small constant of allocations — not the
// one-raw-one-payload-per-block it used to cost.
func TestAllocBudgets(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc ceilings don't hold under -race (the race runtime randomizes sync.Pool reuse)")
	}
	vol, src := benchVolume(t, 1<<14)
	fak := DeriveFAK("u", "/alloc", vol)
	f, err := CreateFile(vol, fak, "/alloc", src)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 128
	data := prng.NewFromUint64(3).Bytes(blocks * vol.PayloadSize())
	if _, err := f.WriteAt(data, 0, InPlacePolicy{Vol: vol}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil { // warm the carve tables
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("ReadAt(%d blocks): %.1f allocs/scan (%.3f/block)", blocks, allocs, allocs/blocks)
	if allocs > 16 {
		t.Errorf("ReadAt(%d blocks) = %.1f allocs/scan, budget 16", blocks, allocs)
	}
}
