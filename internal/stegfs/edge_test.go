package stegfs

import (
	"bytes"
	"errors"
	"testing"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
)

// TestDummyFileSelfSourcingSave reproduces the trickiest Save path: a
// dummy file whose pointer blocks are allocated out of its own data
// blocks (the volatile construction's self-donating source).
type selfSource struct {
	*BitmapSource
	f *File
}

func (s *selfSource) AcquireRandom() (uint64, error) {
	// Donate the dummy file's own blocks when it has any.
	if s.f != nil && s.f.NumBlocks() > 0 {
		locs := s.f.BlockLocs()
		loc := locs[len(locs)-1]
		if err := s.f.RemoveBlockLoc(loc); err == nil {
			return loc, nil
		}
	}
	return s.BitmapSource.AcquireRandom()
}

func TestDummyFileSelfSourcingSave(t *testing.T) {
	vol, src := testVolume(t, 1024)
	fak := DeriveFAK("u", "/selfdummy", vol)
	wrapped := &selfSource{BitmapSource: src}
	// Big enough to need single + double indirection (payload 112 →
	// 3 direct + 14 single; 60 blocks forces the double chain).
	f, err := CreateDummyFile(vol, fak, "/selfdummy", wrapped, 60)
	if err != nil {
		t.Fatal(err)
	}
	wrapped.f = f

	// Mutate and save repeatedly: every save may consume the file's
	// own tail blocks for pointer blocks.
	for round := 0; round < 5; round++ {
		locs := f.BlockLocs()
		if err := f.ReplaceBlockLoc(locs[0], locs[0]+0); err == nil {
			// same-loc replace is a no-op error path; ignore result
			_ = err
		}
		// Force dirtiness through a legitimate mutation.
		if err := f.RemoveBlockLoc(locs[len(locs)-1]); err != nil {
			t.Fatal(err)
		}
		src.Release(locs[len(locs)-1])
		if err := f.Save(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Reload and verify the map is exactly what the handle says.
		g, err := OpenFile(vol, fak, "/selfdummy", NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(9)))
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		if g.NumBlocks() != f.NumBlocks() {
			t.Fatalf("round %d: reloaded %d blocks, handle has %d", round, g.NumBlocks(), f.NumBlocks())
		}
		want := f.BlockLocs()
		got := g.BlockLocs()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d: map diverges at %d", round, i)
			}
		}
	}
}

func TestOverProvisionedIndirectsSurviveReload(t *testing.T) {
	// Grow a file into the double-indirect range, shrink it back below
	// the direct range, save, reload: the over-provisioned indirect
	// blocks must be recorded and reusable, not leaked.
	vol, src := testVolume(t, 2048)
	fak := DeriveFAK("u", "/shrink", vol)
	f, err := CreateFile(vol, fak, "/shrink", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	big := prng.NewFromUint64(4).Bytes(60 * vol.PayloadSize())
	if _, err := f.WriteAt(big, 0, policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	indirects := f.IndirectLocs()
	if len(indirects) < 3 {
		t.Fatalf("expected single+outer+double, have %v", indirects)
	}

	if err := f.Resize(uint64(2*vol.PayloadSize()), policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	// Indirects are kept (never released by Save), still recorded.
	if got := f.IndirectLocs(); len(got) != len(indirects) {
		t.Fatalf("indirects changed on shrink: %v -> %v", indirects, got)
	}

	g, err := OpenFile(vol, fak, "/shrink", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.IndirectLocs()) != len(indirects) {
		t.Fatalf("reload lost indirects: %v vs %v", g.IndirectLocs(), indirects)
	}
	// Growing again reuses them rather than acquiring new ones.
	used := src.UsedCount()
	if _, err := g.WriteAt(big, 0, policy); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(); err != nil {
		t.Fatal(err)
	}
	grewBy := src.UsedCount() - used
	if grewBy > 60 {
		t.Fatalf("regrow acquired %d blocks; indirects not reused", grewBy)
	}
	got := make([]byte, len(big))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("content mismatch after shrink/regrow cycle")
	}
	// Delete releases everything including the spares.
	before := src.UsedCount()
	if err := g.Delete(); err != nil {
		t.Fatal(err)
	}
	released := before - src.UsedCount()
	if released < 60+uint64(len(indirects)) {
		t.Fatalf("delete released only %d blocks", released)
	}
}

func TestCorruptIndirectChainFailsClosed(t *testing.T) {
	vol, src := testVolume(t, 1024)
	fak := DeriveFAK("u", "/chain", vol)
	f, err := CreateFile(vol, fak, "/chain", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	if _, err := f.WriteAt(make([]byte, 40*vol.PayloadSize()), 0, policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	// Smash the single-indirect block with random bytes: the open
	// must fail with a structural error, never return wrong data.
	if err := vol.RewriteRandom(f.IndirectLocs()[0]); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFile(vol, fak, "/chain", src)
	if err == nil {
		t.Fatal("corrupt chain opened successfully")
	}
	if errors.Is(err, ErrNotFound) {
		// Header still decodes; the failure must be structural, not a
		// silent "no such file".
		t.Fatalf("corrupt chain reported as not-found: %v", err)
	}
}

func TestRewriteRandomChangesBlock(t *testing.T) {
	vol, _ := testVolume(t, 64)
	before := make([]byte, vol.BlockSize())
	if err := vol.Device().ReadBlock(5, before); err != nil {
		t.Fatal(err)
	}
	if err := vol.RewriteRandom(5); err != nil {
		t.Fatal(err)
	}
	after := make([]byte, vol.BlockSize())
	if err := vol.Device().ReadBlock(5, after); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, after) {
		t.Fatal("RewriteRandom left the block unchanged")
	}
}

func TestOpenOnFaultyDevice(t *testing.T) {
	fd := blockdev.NewFault(blockdev.NewMem(128, 256))
	vol, err := Format(fd, FormatOptions{KDFIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(1))
	fak := DeriveFAK("u", "/x", vol)
	f, err := CreateFile(vol, fak, "/x", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0, InPlacePolicy{Vol: vol}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	fd.FailReadsAfter(0)
	if _, err := OpenFile(vol, fak, "/x", src); !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("device fault not surfaced by open: %v", err)
	}
}
