package stegfs

import "steghide/internal/sealer"

// UpdatePolicy decides where an updated block lands and what extra
// I/O accompanies the update. It is the seam between the base file
// system and the access-hiding constructions:
//
//   - the original StegFS (and the conventional baselines) update in
//     place — see InPlacePolicy;
//   - the update-hiding constructions (§4, Figure 6) relocate the
//     block to a uniformly random position and emit camouflage I/O —
//     see internal/steghide.
type UpdatePolicy interface {
	// Update writes payload as the new sealed content of the block
	// currently at loc, returning the block's (possibly new) location.
	// Implementations that relocate must transfer allocation ownership
	// of the old and new locations themselves.
	Update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error)
}

// InPlacePolicy is the conventional read-modify-write: blocks never
// move. This is the update behaviour of the original StegFS baseline,
// which hides existence but not access patterns.
type InPlacePolicy struct {
	Vol *Volume
}

// Update implements UpdatePolicy.
func (p InPlacePolicy) Update(loc uint64, seal *sealer.Sealer, payload []byte) (uint64, error) {
	if err := p.Vol.WriteSealed(loc, seal, payload); err != nil {
		return 0, err
	}
	return loc, nil
}
