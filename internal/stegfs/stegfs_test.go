package stegfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"steghide/internal/blockdev"
	"steghide/internal/prng"
)

// testVolume formats a small volume (block size 128 so the indirect
// paths are exercised by small files) and returns it with a source.
func testVolume(t *testing.T, nBlocks uint64) (*Volume, *BitmapSource) {
	t.Helper()
	dev := blockdev.NewMem(128, nBlocks)
	vol, err := Format(dev, FormatOptions{KDFIterations: 4, FillSeed: []byte("t")})
	if err != nil {
		t.Fatal(err)
	}
	src := NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(1))
	return vol, src
}

func TestFormatAndOpen(t *testing.T) {
	dev := blockdev.NewMem(128, 256)
	vol, err := Format(dev, FormatOptions{KDFIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if vol.PayloadSize() != 128-16 {
		t.Fatalf("payload %d", vol.PayloadSize())
	}
	re, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumBlocks() != vol.NumBlocks() || re.KDFIterations() != vol.KDFIterations() {
		t.Fatal("geometry lost across reopen")
	}
	if !bytes.Equal(re.Salt(), vol.Salt()) {
		t.Fatal("salt lost across reopen")
	}
}

func TestFormatRejectsBadGeometry(t *testing.T) {
	if _, err := Format(blockdev.NewMem(64, 256), FormatOptions{}); err == nil {
		t.Fatal("tiny block size accepted")
	}
	if _, err := Format(blockdev.NewMem(136, 256), FormatOptions{}); err == nil {
		t.Fatal("unaligned data field accepted")
	}
	if _, err := Format(blockdev.NewMem(128, 4), FormatOptions{}); err == nil {
		t.Fatal("tiny volume accepted")
	}
}

func TestOpenRejectsCorruptSuperblock(t *testing.T) {
	dev := blockdev.NewMem(128, 64)
	if _, err := Format(dev, FormatOptions{KDFIterations: 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	dev.ReadBlock(0, buf)
	orig := append([]byte(nil), buf...)

	buf[0] ^= 0xFF // magic
	dev.WriteBlock(0, buf)
	if _, err := Open(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	copy(buf, orig)
	buf[30] ^= 0x01 // salt byte → checksum mismatch
	dev.WriteBlock(0, buf)
	if _, err := Open(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad checksum: %v", err)
	}

	copy(buf, orig)
	buf[11] = 99 // version
	dev.WriteBlock(0, buf)
	if _, err := Open(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestFormatFillLooksRandom(t *testing.T) {
	// After format every steg block should be high-entropy noise:
	// check no block is all-zero and blocks differ from each other.
	vol, _ := testVolume(t, 64)
	buf1 := make([]byte, 128)
	buf2 := make([]byte, 128)
	zero := make([]byte, 128)
	for i := uint64(1); i < 64; i++ {
		if err := vol.Device().ReadBlock(i, buf1); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(buf1, zero) {
			t.Fatalf("block %d left zeroed by format", i)
		}
	}
	vol.Device().ReadBlock(1, buf1)
	vol.Device().ReadBlock(2, buf2)
	if bytes.Equal(buf1, buf2) {
		t.Fatal("fill repeats across blocks")
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("passphrase", "/secret/report.doc", vol)
	f, err := CreateFile(vol, fak, "/secret/report.doc", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := f.WriteAt(msg, 0, policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh source (simulating a new session).
	src2 := NewBitmapSource(vol.FirstDataBlock(), vol.NumBlocks(), prng.NewFromUint64(2))
	g, err := OpenFile(vol, fak, "/secret/report.doc", src2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != uint64(len(msg)) {
		t.Fatalf("size %d, want %d", g.Size(), len(msg))
	}
	got := make([]byte, len(msg))
	if n, err := g.ReadAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("content mismatch: %q", got)
	}
}

func TestOpenWrongKeyOrPathIsNotFound(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("right", "/a", vol)
	f, err := CreateFile(vol, fak, "/a", src)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("data"), 0, InPlacePolicy{Vol: vol})
	f.Close()

	wrong := DeriveFAK("wrong", "/a", vol)
	if _, err := OpenFile(vol, wrong, "/a", src); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong key: %v", err)
	}
	otherPath := DeriveFAK("right", "/b", vol)
	if _, err := OpenFile(vol, otherPath, "/b", src); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}
	// Right key, wrong path binding: FAK for /a used with path /b.
	if _, err := OpenFile(vol, fak, "/b", src); !errors.Is(err, ErrNotFound) {
		t.Fatalf("path binding: %v", err)
	}
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	// payload 112 → 3 direct, 14 per pointer block. 100 blocks forces
	// the double-indirect path (3 + 14 + 83).
	vol, src := testVolume(t, 2048)
	fak := DeriveFAK("p", "/big", vol)
	f, err := CreateFile(vol, fak, "/big", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	rng := prng.NewFromUint64(7)
	data := rng.Bytes(100 * vol.PayloadSize())
	if _, err := f.WriteAt(data, 0, policy); err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != 100 {
		t.Fatalf("blocks = %d", f.NumBlocks())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(vol, fak, "/big", src)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file content mismatch")
	}
}

func TestFileTooLarge(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("p", "/huge", vol)
	f, err := CreateFile(vol, fak, "/huge", src)
	if err != nil {
		t.Fatal(err)
	}
	max := vol.MaxFileBlocks()
	if err := f.Resize((max+1)*uint64(vol.PayloadSize()), InPlacePolicy{Vol: vol}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize resize: %v", err)
	}
}

func TestResizeShrinkReleasesBlocks(t *testing.T) {
	vol, src := testVolume(t, 2048)
	fak := DeriveFAK("p", "/f", vol)
	f, err := CreateFile(vol, fak, "/f", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	data := prng.NewFromUint64(3).Bytes(50 * vol.PayloadSize())
	if _, err := f.WriteAt(data, 0, policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	usedBefore := src.UsedCount()
	if err := f.Resize(uint64(2*vol.PayloadSize()), policy); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	usedAfter := src.UsedCount()
	if usedAfter >= usedBefore {
		t.Fatalf("shrink did not release blocks: %d -> %d", usedBefore, usedAfter)
	}
	// Content within the new size must be intact.
	got := make([]byte, 2*vol.PayloadSize())
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("shrink corrupted remaining content")
	}
}

func TestPartialAndUnalignedIO(t *testing.T) {
	vol, src := testVolume(t, 1024)
	fak := DeriveFAK("p", "/u", vol)
	f, err := CreateFile(vol, fak, "/u", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	ps := vol.PayloadSize()

	// Build a reference image with scattered unaligned writes.
	img := make([]byte, 5*ps)
	rng := prng.NewFromUint64(12)
	writes := []struct{ off, n int }{
		{0, 10}, {ps - 3, 7}, {2*ps + 5, ps}, {17, 3 * ps}, {5*ps - 9, 9},
	}
	for _, w := range writes {
		chunk := rng.Bytes(w.n)
		copy(img[w.off:], chunk)
		if _, err := f.WriteAt(chunk, uint64(w.off), policy); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(img))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("unaligned write pattern mismatch")
	}
	// Read past EOF truncates.
	over := make([]byte, 100)
	n, err := f.ReadAt(over, uint64(len(img))-10)
	if err != nil || n != 10 {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
	// Read entirely past EOF returns 0.
	n, err = f.ReadAt(over, uint64(len(img))+5)
	if err != nil || n != 0 {
		t.Fatalf("beyond-EOF read = %d, %v", n, err)
	}
}

func TestDeleteMakesFileUnopenable(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("p", "/gone", vol)
	f, err := CreateFile(vol, fak, "/gone", src)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("short-lived"), 0, InPlacePolicy{Vol: vol})
	f.Save()
	used := src.UsedCount()
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if src.UsedCount() >= used {
		t.Fatal("delete did not release blocks")
	}
	if _, err := OpenFile(vol, fak, "/gone", src); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file still opens: %v", err)
	}
}

func TestDummyFile(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("user", "/dummy/0", vol)
	df, err := CreateDummyFile(vol, fak, "/dummy/0", src, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !df.IsDummy() || df.NumBlocks() != 20 {
		t.Fatalf("dummy=%v blocks=%d", df.IsDummy(), df.NumBlocks())
	}
	if _, err := df.WriteAt([]byte("x"), 0, InPlacePolicy{Vol: vol}); err == nil {
		t.Fatal("write to dummy file accepted")
	}
	// Reopen: flag and map survive.
	g, err := OpenFile(vol, fak, "/dummy/0", src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDummy() || g.NumBlocks() != 20 {
		t.Fatal("dummy metadata lost across reopen")
	}
}

func TestReplaceBlockLocAndOwnsBlock(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("p", "/swap", vol)
	f, err := CreateFile(vol, fak, "/swap", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	f.WriteAt(prng.NewFromUint64(1).Bytes(3*vol.PayloadSize()), 0, policy)
	locs := f.BlockLocs()
	if !f.OwnsBlock(locs[1]) || f.OwnsBlock(99999) {
		t.Fatal("OwnsBlock broken")
	}
	if err := f.ReplaceBlockLoc(locs[1], 77); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.BlockLoc(1); got != 77 {
		t.Fatalf("map entry = %d", got)
	}
	if f.OwnsBlock(locs[1]) || !f.OwnsBlock(77) {
		t.Fatal("reverse index stale after replace")
	}
	if err := f.ReplaceBlockLoc(12345, 1); err == nil {
		t.Fatal("replacing unknown loc accepted")
	}
}

func TestRelocateBlockUpdatesMap(t *testing.T) {
	vol, src := testVolume(t, 512)
	fak := DeriveFAK("p", "/rel", vol)
	f, _ := CreateFile(vol, fak, "/rel", src)
	f.WriteAt(make([]byte, 2*vol.PayloadSize()), 0, InPlacePolicy{Vol: vol})
	if err := f.RelocateBlock(5, 1); err == nil {
		t.Fatal("out-of-range relocate accepted")
	}
	old, _ := f.BlockLoc(0)
	_ = old
	if err := f.RelocateBlock(0, 42); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.BlockLoc(0); got != 42 {
		t.Fatal("relocate ignored")
	}
	if !f.Dirty() {
		t.Fatal("relocate did not mark dirty")
	}
}

func TestHeaderCandidatesInSpace(t *testing.T) {
	vol, _ := testVolume(t, 512)
	fak := DeriveFAK("p", "/c", vol)
	for i := 0; i < HeaderProbeLimit; i++ {
		c := fak.HeaderCandidate(i, vol.FirstDataBlock(), vol.NumBlocks())
		if c < vol.FirstDataBlock() || c >= vol.NumBlocks() {
			t.Fatalf("candidate %d = %d out of steg space", i, c)
		}
	}
	// Candidates must differ across FAKs.
	other := DeriveFAK("q", "/c", vol)
	same := 0
	for i := 0; i < 8; i++ {
		if fak.HeaderCandidate(i, vol.FirstDataBlock(), vol.NumBlocks()) ==
			other.HeaderCandidate(i, vol.FirstDataBlock(), vol.NumBlocks()) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("candidate sequences identical across FAKs")
	}
}

func TestBitmapSource(t *testing.T) {
	src := NewBitmapSource(1, 101, prng.NewFromUint64(5))
	first, n := src.SpaceBounds()
	if first != 1 || n != 101 {
		t.Fatal("bounds")
	}
	if src.FreeCount() != 100 {
		t.Fatalf("free = %d", src.FreeCount())
	}
	if src.IsFree(0) {
		t.Fatal("reserved block reported free")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		loc, err := src.AcquireRandom()
		if err != nil {
			t.Fatal(err)
		}
		if loc < 1 || loc >= 101 || seen[loc] {
			t.Fatalf("bad acquire %d", loc)
		}
		seen[loc] = true
	}
	if _, err := src.AcquireRandom(); !errors.Is(err, ErrVolumeFull) {
		t.Fatalf("full volume: %v", err)
	}
	src.Release(50)
	if loc, err := src.AcquireRandom(); err != nil || loc != 50 {
		t.Fatalf("re-acquire after release = %d, %v", loc, err)
	}
	src.Release(0) // reserved: must stay used
	if src.IsFree(0) {
		t.Fatal("released reserved block")
	}
	if src.Acquire(200) || src.IsFree(200) {
		t.Fatal("out-of-range acquire")
	}
}

func TestAcquireRandomUniform(t *testing.T) {
	// Acquire (and re-release) many times; the distribution over the
	// space must be uniform — this is what makes creation placement
	// indistinguishable from relocation targets.
	src := NewBitmapSource(1, 1025, prng.NewFromUint64(9))
	counts := make([]uint64, 16)
	for i := 0; i < 32000; i++ {
		loc, err := src.AcquireRandom()
		if err != nil {
			t.Fatal(err)
		}
		counts[(loc-1)*16/1024]++
		src.Release(loc)
	}
	// Chi-square against uniform over 16 bins, df=15, p=0.001 → 37.7.
	expected := 32000.0 / 16
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("allocation skewed: chi2=%.1f counts=%v", chi2, counts)
	}
}

func TestQuickWriteReadAnywhere(t *testing.T) {
	vol, src := testVolume(t, 2048)
	fak := DeriveFAK("p", "/q", vol)
	f, err := CreateFile(vol, fak, "/q", src)
	if err != nil {
		t.Fatal(err)
	}
	policy := InPlacePolicy{Vol: vol}
	mirror := make([]byte, 0, 4096)
	check := func(seed uint64, offRaw uint16, nRaw uint16) bool {
		off := uint64(offRaw) % 2000
		n := int(nRaw)%300 + 1
		chunk := prng.NewFromUint64(seed).Bytes(n)
		if _, err := f.WriteAt(chunk, off, policy); err != nil {
			return false
		}
		if int(off)+n > len(mirror) {
			grown := make([]byte, int(off)+n)
			copy(grown, mirror)
			mirror = grown
		}
		copy(mirror[off:], chunk)
		got := make([]byte, len(mirror))
		if _, err := f.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, mirror)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	vol, _ := testVolume(t, 256)
	fak := DeriveFAK("p", "/h", vol)
	h := &header{
		flags:      flagDummy,
		fileSize:   123456,
		blockCount: 3,
		pathHash:   PathHash("/h"),
		single:     42,
		double:     77,
		direct:     make([]uint64, vol.directSlots()),
	}
	h.direct[0], h.direct[1], h.direct[2] = 5, 9, 13
	payload := vol.encodeHeader(h, fak.HeaderKey)
	got, err := vol.decodeHeader(payload, fak.HeaderKey, PathHash("/h"))
	if err != nil {
		t.Fatal(err)
	}
	if got.flags != h.flags || got.fileSize != h.fileSize || got.blockCount != h.blockCount ||
		got.single != h.single || got.double != h.double || got.direct[2] != 13 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	// Tampered payload fails closed.
	payload[20] ^= 1
	if _, err := vol.decodeHeader(payload, fak.HeaderKey, PathHash("/h")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tampered header: %v", err)
	}
}

func TestDeriveFAKDeterministic(t *testing.T) {
	vol, _ := testVolume(t, 256)
	a := DeriveFAK("p", "/x", vol)
	b := DeriveFAK("p", "/x", vol)
	if a != b {
		t.Fatal("FAK derivation not deterministic")
	}
	c := DeriveFAK("p", "/y", vol)
	if a.HeaderKey == c.HeaderKey || a.ContentKey == c.ContentKey || a.Locator == c.Locator {
		t.Fatal("FAKs for different paths must differ entirely")
	}
}

func TestVolumeFullOnCreate(t *testing.T) {
	vol, src := testVolume(t, 16)
	// Exhaust the space.
	for {
		if _, err := src.AcquireRandom(); err != nil {
			break
		}
	}
	fak := DeriveFAK("p", "/full", vol)
	if _, err := CreateFile(vol, fak, "/full", src); !errors.Is(err, ErrVolumeFull) {
		t.Fatalf("create on full volume: %v", err)
	}
}
